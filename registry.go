package listset

import (
	"fmt"
	"sort"
	"strings"
)

// Impl describes one registered set implementation, for use by the
// benchmark harness, the CLI tools and cross-implementation tests.
type Impl struct {
	// Name is the canonical identifier accepted by the tools' -impl flag.
	Name string
	// Aliases are additional accepted identifiers.
	Aliases []string
	// New constructs a fresh empty instance.
	New func() Set
	// NewSharded, when non-nil, constructs the implementation behind
	// the order-preserving range partitioner of internal/shard: shards
	// independent lists splitting the focus range [lo, hi) evenly, with
	// out-of-range keys clamping to the edge shards. Tools pass the
	// workload's key range as [lo, hi) so traversals walk O(n/S) nodes.
	NewSharded func(shards int, lo, hi int64) Set
	// NewArena, when non-nil, constructs the implementation with
	// arena-backed node lifetimes (internal/mem): slab allocation,
	// per-worker free lists, epoch-based reclamation. Nil means the
	// implementation has no arena mode (e.g. the lock-free lists, whose
	// identity CAS makes node reuse an ABA hazard).
	NewArena func() Set
	// NewShardedArena combines NewSharded and NewArena: one private
	// arena per shard. Non-nil only when both modes exist.
	NewShardedArena func(shards int, lo, hi int64) Set
	// ThreadSafe reports whether the implementation may be used from
	// multiple goroutines. Only the sequential reference list is not.
	ThreadSafe bool
	// LockFree reports whether the implementation is lock-free (the
	// progress condition, not merely "uses no sync.Mutex").
	LockFree bool
	// Batch reports whether New's sets implement Batcher natively (the
	// amortized one-pass multi-window traversal). Implementations
	// without the flag still serve batches through AsBatcher's per-key
	// fallback.
	Batch bool
	// Scan reports whether New's sets implement Ranger natively
	// (wait-free RangeScan/Ascend on the ordered traversal).
	Scan bool
	// BulkLoad reports whether New's sets implement Loader natively
	// (O(n+k) merge-walk population).
	BulkLoad bool
	// Desc is a one-line human description used in tool output.
	Desc string
}

// impls is the registry, in the order used by reports.
var impls = []Impl{
	{
		Name:            "vbl",
		New:             NewVBL,
		NewSharded:      NewVBLShardedRange,
		NewArena:        NewVBLArena,
		NewShardedArena: NewVBLShardedArenaRange,
		ThreadSafe:      true,
		Batch:           true,
		Scan:            true,
		BulkLoad:        true,
		Desc:            "VBL — concurrency-optimal value-based list (this paper)",
	},
	{
		Name:            "lazy",
		New:             NewLazy,
		NewSharded:      NewLazyShardedRange,
		NewArena:        NewLazyArena,
		NewShardedArena: NewLazyShardedArenaRange,
		ThreadSafe:      true,
		Batch:           true,
		Scan:            true,
		BulkLoad:        true,
		Desc:            "Lazy Linked List (Heller et al. 2006)",
	},
	{
		Name:       "harris",
		Aliases:    []string{"harris-marker", "harris-rtti"},
		New:        NewHarrisMarker,
		NewSharded: NewHarrisShardedRange,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		LockFree:   true,
		Desc:       "Harris-Michael, RTTI-style marker nodes (paper's optimized Java variant)",
	},
	{
		Name:       "harris-amr",
		New:        NewHarrisAMR,
		ThreadSafe: true,
		LockFree:   true,
		Desc:       "Harris-Michael, AtomicMarkableReference cells (extra indirection)",
	},
	{
		Name:       "fomitchev",
		Aliases:    []string{"fr", "selfish", "backlink"},
		New:        NewFomitchev,
		ThreadSafe: true,
		LockFree:   true,
		Desc:       "Fomitchev-Ruppert backlink list with selfish wait-free contains",
	},
	{
		Name:       "optimistic",
		New:        NewOptimistic,
		ThreadSafe: true,
		Desc:       "Optimistic locking list — lock window, validate by re-traversal",
	},
	{
		Name:       "coarse",
		New:        NewCoarse,
		ThreadSafe: true,
		Desc:       "sequential list behind a single global mutex",
	},
	{
		Name:       "hoh",
		Aliases:    []string{"fine", "hand-over-hand"},
		New:        NewHOH,
		ThreadSafe: true,
		Desc:       "hand-over-hand fine-grained locking list",
	},
	{
		Name:       "seq",
		Aliases:    []string{"sequential", "ll"},
		New:        NewSequential,
		ThreadSafe: false,
		Desc:       "Algorithm 1 — sequential reference list (single goroutine only)",
	},
	{
		Name:            "vbskip",
		Aliases:         []string{"skiplist", "vb-skiplist"},
		New:             NewVBSkip,
		NewSharded:      NewVBSkipShardedRange,
		NewArena:        NewVBSkipArena,
		NewShardedArena: NewVBSkipShardedArenaRange,
		ThreadSafe:      true,
		Batch:           true,
		Scan:            true,
		BulkLoad:        true,
		Desc:            "value-aware skip list — §5 conjecture: VBL as the membership level",
	},
	{
		Name:       "lazyskip",
		Aliases:    []string{"lazy-skiplist"},
		New:        NewLazySkip,
		NewSharded: NewLazySkipShardedRange,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "LazySkipList (Herlihy & Shavit ch. 14.3) — lock-all-preds baseline",
	},
	{
		Name:       "vbl-headrestart",
		New:        NewVBLHeadRestart,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "ablation: VBL restarting failed validations from head",
	},
	{
		Name:       "vbl-noprevalidate",
		New:        NewVBLNoPreValidation,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "ablation: VBL locking before validating (no lock-free pre-check)",
	},
	{
		Name:       "vbl-mutex",
		New:        NewVBLMutex,
		ThreadSafe: true,
		Desc:       "ablation: VBL with sync.Mutex node locks instead of the CAS try-lock",
	},
	{
		Name:       "vbl-arena",
		Aliases:    []string{"arena"},
		New:        NewVBLArena,
		NewSharded: NewVBLShardedArenaRange,
		NewArena:   NewVBLArena,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "VBL with slab arenas and epoch-based node recycling (near-zero allocs/op)",
	},
	{
		Name:       "lazy-arena",
		New:        NewLazyArena,
		NewSharded: NewLazyShardedArenaRange,
		NewArena:   NewLazyArena,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "Lazy list with slab arenas and epoch-based node recycling",
	},
	{
		Name:            "vbl-sharded",
		Aliases:         []string{"sharded"},
		New:             func() Set { return NewVBLSharded(DefaultShards) },
		NewSharded:      NewVBLShardedRange,
		NewShardedArena: NewVBLShardedArenaRange,
		ThreadSafe:      true,
		Batch:           true,
		Scan:            true,
		BulkLoad:        true,
		Desc:            "VBL behind the order-preserving range partitioner (O(n/S) traversals)",
	},
	{
		Name:            "lazy-sharded",
		New:             func() Set { return NewLazySharded(DefaultShards) },
		NewSharded:      NewLazyShardedRange,
		NewShardedArena: NewLazyShardedArenaRange,
		ThreadSafe:      true,
		Batch:           true,
		Scan:            true,
		BulkLoad:        true,
		Desc:            "Lazy list behind the range partitioner",
	},
	{
		Name:       "harris-sharded",
		New:        func() Set { return NewHarrisSharded(DefaultShards) },
		NewSharded: NewHarrisShardedRange,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		LockFree:   true,
		Desc:       "Harris-Michael marker list behind the range partitioner (lock-free preserved)",
	},
	{
		Name:       "vbskip-arena",
		New:        NewVBSkipArena,
		NewSharded: NewVBSkipShardedArenaRange,
		NewArena:   NewVBSkipArena,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "value-aware skip list with height-classed tower arenas and epoch recycling",
	},
	{
		Name:            "vbskip-sharded",
		Aliases:         []string{"skip-sharded"},
		New:             func() Set { return NewVBSkipSharded(DefaultShards) },
		NewSharded:      NewVBSkipShardedRange,
		NewShardedArena: NewVBSkipShardedArenaRange,
		ThreadSafe:      true,
		Batch:           true,
		Scan:            true,
		BulkLoad:        true,
		Desc:            "value-aware skip list behind the range partitioner (log-time per shard)",
	},
	{
		Name:       "lazyskip-sharded",
		New:        func() Set { return NewLazySkipSharded(DefaultShards) },
		NewSharded: NewLazySkipShardedRange,
		ThreadSafe: true,
		Batch:      true,
		Scan:       true,
		BulkLoad:   true,
		Desc:       "LazySkipList behind the range partitioner",
	},
}

// Implementations returns all registered implementations in report order.
func Implementations() []Impl {
	out := make([]Impl, len(impls))
	copy(out, impls)
	return out
}

// Lookup resolves an implementation by name or alias (case-insensitive).
func Lookup(name string) (Impl, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, im := range impls {
		if im.Name == want {
			return im, nil
		}
		for _, a := range im.Aliases {
			if a == want {
				return im, nil
			}
		}
	}
	var names []string
	for _, im := range impls {
		names = append(names, im.Name)
	}
	sort.Strings(names)
	return Impl{}, fmt.Errorf("listset: unknown implementation %q (have: %s)", name, strings.Join(names, ", "))
}
