module listset

go 1.22
