package listset

import (
	"math/rand"
	"sync"
	"testing"

	"listset/internal/failpoint"
	"listset/internal/lincheck"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// TestChaosConformance is the chaos acceptance gate: every thread-safe
// registry entry, run under each shipped chaos scenario with the
// linearizability checker on. Injected failures may only slow an
// operation down — forcing the restart, helping and escalation paths
// the paper's figures argue about — never change what it returns, so
// any corruption the faults provoke surfaces as a non-linearizable
// history.
func TestChaosConformance(t *testing.T) {
	for _, sc := range failpoint.Shipped(99) {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
				runChaosTrial(t, im, sc)
			})
		})
	}
}

func runChaosTrial(t *testing.T, im Impl, sc failpoint.Scenario) {
	t.Helper()
	s := im.New()
	fps := failpoint.NewSet()
	attached := failpoint.Attach(s, fps)
	if sc.Site == failpoint.SiteTryLockAcquire {
		// The try-lock site is process-wide (the one-word SpinLock has no
		// room for a per-instance pointer), so it reaches every lock-based
		// implementation regardless of Injectable support. Tests sharing
		// it must not run in parallel.
		trylock.SetChaos(fps)
		defer trylock.SetChaos(nil)
		attached = true
	}
	if !attached {
		t.Skip("implementation carries no failpoints")
	}
	// A bounded retry budget keeps escalation in play under the forced
	// failures (and is itself under test: escalating to head restarts
	// must not change results).
	obs.AttachRetryBudget(s, 4)

	const keyRange = 12
	initial := map[int64]bool{}
	for k := int64(0); k < keyRange; k += 2 {
		s.Insert(k)
		initial[k] = true
	}
	if err := fps.Arm(sc); err != nil {
		t.Fatal(err)
	}
	defer fps.DisarmAll()

	ops := 400
	if testing.Short() {
		ops = 150
	}
	rec := lincheck.NewRecorder()
	const goroutines = 4
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		sess := rec.NewSession(s)
		wg.Add(1)
		go func(seed int64, sess *lincheck.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < ops; j++ {
				k := int64(rng.Intn(keyRange))
				switch rng.Intn(4) {
				case 0:
					sess.Insert(k)
				case 1:
					sess.Remove(k)
				default:
					sess.Contains(k)
				}
			}
		}(int64(i)+5000, sess)
	}
	wg.Wait()
	if err := lincheck.Check(rec.History(), initial); err != nil {
		t.Fatalf("scenario %s: %v", sc, err)
	}
}

// TestChaosShardSeamFaults aims forced validation failures exactly at
// the shard seams: a 16-shard VBL façade whose fail scenario is
// key-filtered to the partition's boundary keys, with every worker's
// keys drawn from the boundaries ±1. A routing bug at the seams — a
// key escalated to the wrong shard after a forced restart, say — would
// surface as a non-linearizable history or a broken snapshot order.
func TestChaosShardSeamFaults(t *testing.T) {
	const shards = 16
	s := NewVBLShardedRange(shards, 0, 64)
	b, ok := s.(interface{ Boundaries() []int64 })
	if !ok {
		t.Fatal("sharded façade does not expose Boundaries")
	}
	boundaries := b.Boundaries()
	if len(boundaries) != shards {
		t.Fatalf("Boundaries() returned %d bounds, want %d", len(boundaries), shards)
	}

	fps := failpoint.NewSet()
	if !failpoint.Attach(s, fps) {
		t.Fatal("sharded façade is not Injectable")
	}
	obs.AttachRetryBudget(s, 4)
	if err := fps.ArmAll([]failpoint.Scenario{
		{Site: failpoint.SiteVBLLockNextAt, Action: failpoint.ActFail, Probability: 0.5, Keys: boundaries, Seed: 7},
		{Site: failpoint.SiteVBLLockNextAtValue, Action: failpoint.ActFail, Probability: 0.5, Keys: boundaries, Seed: 8},
		{Site: failpoint.SiteShardRoute, Action: failpoint.ActYield, Probability: 0.2, Seed: 9},
	}); err != nil {
		t.Fatal(err)
	}
	defer fps.DisarmAll()

	// Candidate keys hug every boundary from both sides.
	var candidates []int64
	for _, bd := range boundaries {
		candidates = append(candidates, bd-1, bd, bd+1)
	}
	initial := map[int64]bool{}
	for i, k := range candidates {
		if i%2 == 0 && k >= 0 {
			s.Insert(k)
			initial[k] = true
		}
	}

	ops := 500
	if testing.Short() {
		ops = 150
	}
	rec := lincheck.NewRecorder()
	const goroutines = 4
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		sess := rec.NewSession(s)
		wg.Add(1)
		go func(seed int64, sess *lincheck.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < ops; j++ {
				k := candidates[rng.Intn(len(candidates))]
				switch rng.Intn(4) {
				case 0:
					sess.Insert(k)
				case 1:
					sess.Remove(k)
				default:
					sess.Contains(k)
				}
			}
		}(int64(i)+6000, sess)
	}
	wg.Wait()
	if err := lincheck.Check(rec.History(), initial); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("Snapshot not strictly ascending across seams under faults: %v", snap)
		}
	}
}
