package listset

import (
	"testing"

	"listset/internal/lincheck"
	"listset/internal/obs/trace"
	"listset/internal/schedule"
)

// roundTrip captures a replay and lifts it both ways: the operation
// history through the linearizability checker, the checkpointed spans
// through schedule.Lift under the given algorithm.
func roundTrip(t *testing.T, replay func(*trace.Tracer) ([]int64, error)) ([]int64, *trace.Capture, schedule.Schedule) {
	t.Helper()
	tr := trace.NewTracer(2, 1<<10)
	initial, err := replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Snapshot()
	if c.Drops != 0 {
		t.Fatalf("replay capture dropped %d records; ring too small", c.Drops)
	}

	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	init := make(map[int64]bool, len(initial))
	for _, k := range initial {
		init[k] = true
	}
	if v := lincheck.Check(h, init); v != nil {
		t.Fatalf("reconstructed history not linearizable: %v", v)
	}

	ops, err := c.ScheduleOps()
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Lift(schedule.AlgVBL, initial, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !schedule.Accepts(schedule.AlgVBL, s) {
		t.Fatalf("lifted schedule not VBL-accepted: %v", s)
	}
	return initial, c, s
}

// TestFigure2TraceRoundTrip replays Figure 2 under the flight recorder
// and checks the full audit chain: the capture's history is
// linearizable, and its checkpointed spans lift to a VBL-accepted
// schedule that Lazy REJECTS — the separation the figure exists to
// show, recovered from a real execution's trace.
func TestFigure2TraceRoundTrip(t *testing.T) {
	_, c, s := roundTrip(t, ReplayFigure2)

	// The parked insert must carry both phase constraints: its reads
	// closed at the failpoint fire, its writes opened at the release.
	ops, err := c.ScheduleOps()
	if err != nil {
		t.Fatal(err)
	}
	var constrained int
	for _, op := range ops {
		if op.ReadsBefore > 0 && op.WritesAfter > 0 {
			constrained++
			if op.Spec.Kind != schedule.OpInsert || op.Spec.Arg != 2 {
				t.Errorf("phase constraints on %v, want insert(2)", op.Spec)
			}
		}
	}
	if constrained != 1 {
		t.Fatalf("ops with both phase constraints = %d, want 1", constrained)
	}

	if schedule.Accepts(schedule.AlgLazy, s) {
		t.Fatal("Figure 2 schedule lifted from the trace must be Lazy-rejected")
	}
}

// TestFigure3TraceRoundTrip replays Figure 3 (both phases, four ops)
// under the flight recorder: the history checks out, and the spans —
// including the remove whose window was invalidated mid-flight, which
// restarts and therefore keeps only its WritesAfter constraint — lift
// to a VBL-accepted schedule.
func TestFigure3TraceRoundTrip(t *testing.T) {
	_, c, _ := roundTrip(t, ReplayFigure3)

	ops, err := c.ScheduleOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("reconstructed ops = %d, want 4", len(ops))
	}
	// The paused remove restarted once after its release, so its reads
	// are NOT all pre-fire: ReadsBefore must have been dropped while
	// WritesAfter survives.
	for _, op := range ops {
		if op.Spec.Kind == schedule.OpRemove && op.Spec.Arg == 2 {
			if op.WritesAfter == 0 {
				t.Error("paused remove lost its WritesAfter constraint")
			}
			if op.ReadsBefore != 0 {
				t.Error("restarted remove must not claim ReadsBefore: its re-read postdates the fire")
			}
		}
	}
}
