// Package listset provides concurrent list-based implementations of the
// integer set type, reproducing "Optimal Concurrency for List-Based Sets"
// (Aksenov, Gramoli, Kuznetsov, Shang, Ravi — PACT 2021).
//
// The headline implementation is the VBL (Value-Based List), the paper's
// concurrency-optimal algorithm built on a value-aware try-lock
// (NewVBL). The package also ships the two state-of-the-art baselines
// the paper evaluates against — the Lazy Linked List (NewLazy) and the
// lock-free Harris-Michael list in both its AtomicMarkableReference
// (NewHarrisAMR) and RTTI-style marker (NewHarrisMarker) forms — plus
// coarse-grained and hand-over-hand locking lists as sanity baselines.
//
// All implementations store int64 keys in ascending order between two
// sentinel nodes holding MinKey-1 and MaxKey+1 conceptually; the extreme
// values math.MinInt64 and math.MaxInt64 are reserved for the sentinels
// and must not be passed to any operation.
//
// Quick start:
//
//	s := listset.NewVBL()
//	s.Insert(42)        // true: 42 was absent
//	s.Contains(42)      // true
//	s.Remove(42)        // true: 42 was present
//
// Every constructor returns a Set that is safe for concurrent use by any
// number of goroutines (except NewSequential, which is the single-thread
// reference implementation of the paper's Algorithm 1).
package listset

import (
	"math"

	"listset/internal/coarse"
	"listset/internal/core"
	"listset/internal/fomitchev"
	"listset/internal/harris"
	"listset/internal/hoh"
	"listset/internal/lazy"
	"listset/internal/optimistic"
	"listset/internal/seqlist"
	"listset/internal/shard"
	"listset/internal/skiplist"
)

// MinKey and MaxKey bound the keys a Set accepts. The two int64 extremes
// are reserved for the head/tail sentinels.
const (
	MinKey = math.MinInt64 + 1
	MaxKey = math.MaxInt64 - 1
)

// Set is an integer set. Insert and Remove report whether they changed
// the set; Contains reports membership. Implementations returned by this
// package's constructors (other than NewSequential) are linearizable and
// safe for concurrent use.
//
// Len and Snapshot traverse the list without synchronization barriers:
// under concurrent updates they observe some valid interleaving and are
// exact once the set is quiescent. They are intended for tests, examples
// and reporting, not hot paths (both are O(n)).
type Set interface {
	// Insert adds v and reports whether v was absent.
	Insert(v int64) bool
	// Remove deletes v and reports whether v was present.
	Remove(v int64) bool
	// Contains reports whether v is in the set.
	Contains(v int64) bool
	// Len returns the number of elements (O(n); exact at quiescence).
	Len() int
	// Snapshot returns the elements in ascending order (O(n); exact at
	// quiescence).
	Snapshot() []int64
}

// NewVBL returns the paper's contribution: the concurrency-optimal
// Value-Based List. Updates validate the list by value before and after
// taking a CAS-based per-node try-lock, traversals are wait-free, and
// removal separates logical deletion from physical unlinking.
func NewVBL() Set { return core.New() }

// NewVBLHeadRestart returns the ablation variant of VBL that restarts
// failed validations from the head instead of from prev, pricing the
// paper's restart-locality optimization.
func NewVBLHeadRestart() Set { return core.NewVariant(core.WithHeadRestart()) }

// NewVBLNoPreValidation returns the ablation variant of VBL whose
// try-lock skips the lock-free pre-validation, so every validation pays
// for the lock first (the Lazy list's lock-then-validate discipline on
// VBL's structure).
func NewVBLNoPreValidation() Set { return core.NewVariant(core.WithoutPreValidation()) }

// NewVBLMutex returns the ablation variant of VBL built on sync.Mutex
// node locks instead of the CAS spin try-lock.
func NewVBLMutex() Set { return core.NewMutex() }

// NewVBLArena returns VBL with arena-backed node lifetimes
// (internal/mem): inserts draw nodes from slab-backed per-worker free
// lists, removed nodes recycle after an epoch-based grace period, and
// the steady-state allocation rate drops to near zero. Semantics are
// identical to NewVBL.
func NewVBLArena() Set { return core.NewArena() }

// NewLazy returns the Lazy Linked List baseline (Heller et al., OPODIS
// 2006): wait-free traversals, but updates lock the window before
// validating — the post-locking validation the paper proves concurrency
// sub-optimal (Figure 2).
func NewLazy() Set { return lazy.New() }

// NewLazyArena returns the Lazy list with arena-backed node lifetimes
// (internal/mem), the allocation-rate counterpart of NewVBLArena for
// the lock-based baseline.
func NewLazyArena() Set { return lazy.NewArena() }

// NewHarrisAMR returns the lock-free Harris-Michael list built on an
// AtomicMarkableReference equivalent: each (next, marked) pair is an
// immutable cell, costing one extra indirection per traversal hop.
func NewHarrisAMR() Set { return harris.NewAMR() }

// NewHarrisMarker returns the lock-free Harris-Michael list with the
// RTTI-style optimization the paper benchmarks: deletion marks live in
// dedicated marker nodes, so traversal hops are single pointer loads.
func NewHarrisMarker() Set { return harris.NewMarker() }

// NewOptimistic returns the Optimistic locking list (Herlihy & Shavit,
// ch. 9.6): lock-free traversal, but every operation — contains
// included — locks its window and validates it by re-traversing from
// head.
func NewOptimistic() Set { return optimistic.New() }

// NewFomitchev returns the lock-free list of Fomitchev & Ruppert (PODC
// 2004) with backlink-based backtracking and the wait-free contains of
// the "selfish" variant (Gibson & Gramoli, DISC 2015) — the §5
// related-work algorithms.
func NewFomitchev() Set { return fomitchev.New() }

// NewVBSkip returns the value-aware skip list: the paper's §5
// conjecture ("skip-lists ... may allow for similar optimizations")
// made concrete. Its membership level is the VBL list verbatim; the
// upper index levels are maintained best-effort with single-node
// try-locks.
func NewVBSkip() Set { return skiplist.NewVB() }

// NewLazySkip returns the LazySkipList of Herlihy & Shavit (ch. 14.3),
// the lock-based skip-list baseline: every update locks all its
// predecessor levels before deciding anything.
func NewLazySkip() Set { return skiplist.NewLazy() }

// NewVBSkipArena returns the value-aware skip list with arena-backed
// tower lifetimes: towers are drawn from height-classed slabs
// (internal/mem) and recycled after the epoch-based grace period once
// provably unreachable at every level. Semantics are identical to
// NewVBSkip; see DESIGN.md §15 for the reclamation argument.
func NewVBSkipArena() Set { return skiplist.NewVBArena() }

// NewCoarse returns the sequential list behind one global mutex — the
// scalability floor.
func NewCoarse() Set { return coarse.New() }

// NewHOH returns the hand-over-hand (fine-grained locking) list, which
// locks every node on every path, including for contains.
func NewHOH() Set { return hoh.New() }

// NewSequential returns the paper's Algorithm 1 — the plain sequential
// sorted linked list LL. It is NOT safe for concurrent use; it exists as
// the semantic reference and single-thread baseline.
func NewSequential() Set { return seqlist.New() }

// DefaultShards is the shard count the convenience sharded
// constructors use, re-exported from internal/shard for tools.
const DefaultShards = shard.DefaultShards

// NewVBLSharded returns shards independent VBL lists behind the
// order-preserving range partitioner of internal/shard: each key is
// owned by exactly one shard, so traversals walk O(n/S) nodes and
// contended try-locks spread across S separate head regions, while the
// Set contract is preserved end to end (Snapshot stays ascending, Len
// sums, per-shard contention events aggregate into one probe set).
// The shard count is rounded up to a power of two; the partition
// splits the default focus range [0, 65536) evenly, with out-of-range
// keys clamping to the edge shards. Workloads over a different key
// range should use NewVBLShardedRange so the partition fits their
// keys.
func NewVBLSharded(shards int) Set {
	return shard.New(shards, func() shard.Set { return core.New() })
}

// NewVBLShardedRange is NewVBLSharded with the focus range [lo, hi)
// the partitioner splits evenly across shards. Keys outside [lo, hi)
// remain valid; they route to the first or last shard.
func NewVBLShardedRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return core.New() })
}

// NewVBLShardedArenaRange is NewVBLShardedRange with arena-backed node
// lifetimes: each shard owns a private arena (allocation stays
// shard-local, like the lists' own hot fields), so the façade's
// contention isolation extends to the memory layer.
func NewVBLShardedArenaRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return core.NewArena() })
}

// NewLazySharded returns the Lazy list behind the same sharded façade,
// so the partitioner's effect can be priced on the paper's lock-based
// baseline under identical routing.
func NewLazySharded(shards int) Set {
	return shard.New(shards, func() shard.Set { return lazy.New() })
}

// NewLazyShardedRange is NewLazySharded with an explicit focus range.
func NewLazyShardedRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return lazy.New() })
}

// NewLazyShardedArenaRange is NewLazyShardedRange with a private arena
// per shard, mirroring NewVBLShardedArenaRange.
func NewLazyShardedArenaRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return lazy.NewArena() })
}

// NewHarrisSharded returns the lock-free Harris-Michael marker list
// behind the sharded façade. The façade adds no locks, so the
// composition remains lock-free.
func NewHarrisSharded(shards int) Set {
	return shard.New(shards, func() shard.Set { return harris.NewMarker() })
}

// NewHarrisShardedRange is NewHarrisSharded with an explicit focus range.
func NewHarrisShardedRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return harris.NewMarker() })
}

// NewVBSkipSharded returns the value-aware skip list behind the range
// partitioner: S independent log-time indexes, each over 1/S of the
// focus range — the composition the ROADMAP's large-range milestone
// calls for, since both the traversal length AND the index height
// shrink with the per-shard key count.
func NewVBSkipSharded(shards int) Set {
	return shard.New(shards, func() shard.Set { return skiplist.NewVB() })
}

// NewVBSkipShardedRange is NewVBSkipSharded with the focus range
// [lo, hi) the partitioner splits evenly across shards.
func NewVBSkipShardedRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return skiplist.NewVB() })
}

// NewVBSkipShardedArenaRange is NewVBSkipShardedRange with a private
// height-classed tower arena per shard.
func NewVBSkipShardedArenaRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return skiplist.NewVBArena() })
}

// NewLazySkipSharded returns the Lazy skip list behind the range
// partitioner, so the sharding effect can be priced on the lock-based
// skip baseline under identical routing.
func NewLazySkipSharded(shards int) Set {
	return shard.New(shards, func() shard.Set { return skiplist.NewLazy() })
}

// NewLazySkipShardedRange is NewLazySkipSharded with an explicit focus
// range.
func NewLazySkipShardedRange(shards int, lo, hi int64) Set {
	return shard.NewRange(shards, lo, hi, func() shard.Set { return skiplist.NewLazy() })
}
