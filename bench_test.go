package listset

// One testing.B benchmark per evaluation exhibit of the paper, plus the
// ablations DESIGN.md calls out. Each figure's full sweep (all thread
// counts, paper durations) lives in cmd/figures; these benches are the
// `go test -bench` entry points that regenerate each exhibit's series
// at testing.B granularity:
//
//	BenchmarkFigure1        — Lazy vs VBL, 20% updates, ~25-node list
//	BenchmarkFigure4        — the 3×4 throughput grid, all lists
//	BenchmarkHarrisVariants — §4 RTTI discussion: AMR vs marker reads
//	BenchmarkAblation*      — lock substrate, restart policy, validation
//
// Results land in ns/op (inverse throughput); EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"fmt"
	"sync"
	"testing"

	"listset/internal/workload"
)

// benchCell drives b.N operations of the given workload against a fresh
// pre-populated set from `threads` goroutines.
func benchCell(b *testing.B, im Impl, threads int, wl workload.Config) {
	b.Helper()
	b.ReportAllocs()
	s := im.New()
	workload.Prepopulate(wl, 1, s.Insert)
	perG := b.N/threads + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := workload.NewGenerator(wl, uint64(id)*0x9E37+11)
			for i := 0; i < perG; i++ {
				op, k := gen.Next()
				switch op {
				case workload.Contains:
					s.Contains(k)
				case workload.Insert:
					s.Insert(k)
				case workload.Remove:
					s.Remove(k)
				}
			}
		}(t)
	}
	wg.Wait()
}

func mustLookup(b *testing.B, name string) Impl {
	b.Helper()
	im, err := Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	return im
}

// BenchmarkFigure1 regenerates Figure 1: VBL vs Lazy on a ~25-node list
// (key range 50) under 20% updates across a goroutine sweep. The paper's
// shape: Lazy collapses under contention, VBL keeps scaling (~1.6x at
// 72 threads on the 72-core Intel box).
func BenchmarkFigure1(b *testing.B) {
	wl := workload.Config{UpdatePercent: 20, Range: 50}
	for _, name := range []string{"vbl", "lazy"} {
		im := mustLookup(b, name)
		for _, threads := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("impl=%s/threads=%d", name, threads), func(b *testing.B) {
				benchCell(b, im, threads, wl)
			})
		}
	}
}

// BenchmarkFigure4 regenerates the Figure 4 grid: update ratios
// {0,20,100}% × key ranges {50, 200, 2000, 20000} for VBL, Lazy and the
// two Harris-Michael variants. (Thread counts are kept to {1, 4} here;
// cmd/figures sweeps the full axis.)
func BenchmarkFigure4(b *testing.B) {
	impls := []string{"vbl", "lazy", "harris", "harris-amr"}
	for _, update := range []int{0, 20, 100} {
		for _, keyRange := range []int64{50, 200, 2000, 20000} {
			wl := workload.Config{UpdatePercent: update, Range: keyRange}
			for _, name := range impls {
				im := mustLookup(b, name)
				for _, threads := range []int{1, 4} {
					b.Run(fmt.Sprintf("u=%d/r=%d/impl=%s/threads=%d", update, keyRange, name, threads), func(b *testing.B) {
						benchCell(b, im, threads, wl)
					})
				}
			}
		}
	}
}

// BenchmarkHarrisVariants isolates the §4 "Comparison against
// Harris-Michael" observation: on read-dominated workloads the AMR
// variant pays one extra indirection per traversal hop, which the
// RTTI-style marker variant eliminates.
func BenchmarkHarrisVariants(b *testing.B) {
	for _, keyRange := range []int64{200, 20000} {
		wl := workload.Config{UpdatePercent: 0, Range: keyRange}
		for _, name := range []string{"harris", "harris-amr"} {
			im := mustLookup(b, name)
			b.Run(fmt.Sprintf("r=%d/impl=%s", keyRange, name), func(b *testing.B) {
				benchCell(b, im, 2, wl)
			})
		}
	}
}

// BenchmarkAblationLock prices the lock substrate: the paper's CAS spin
// try-lock vs sync.Mutex, same algorithm.
func BenchmarkAblationLock(b *testing.B) {
	wl := workload.Config{UpdatePercent: 100, Range: 200}
	for _, name := range []string{"vbl", "vbl-mutex"} {
		im := mustLookup(b, name)
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("impl=%s/threads=%d", name, threads), func(b *testing.B) {
				benchCell(b, im, threads, wl)
			})
		}
	}
}

// BenchmarkAblationRestart prices the restart-from-prev locality
// optimization against restarting from head, on a long list where the
// difference is the re-traversed prefix.
func BenchmarkAblationRestart(b *testing.B) {
	wl := workload.Config{UpdatePercent: 100, Range: 2000}
	for _, name := range []string{"vbl", "vbl-headrestart"} {
		im := mustLookup(b, name)
		for _, threads := range []int{4, 8} {
			b.Run(fmt.Sprintf("impl=%s/threads=%d", name, threads), func(b *testing.B) {
				benchCell(b, im, threads, wl)
			})
		}
	}
}

// BenchmarkAblationValidation prices validate-then-lock against
// lock-then-validate on a small hot list where most updates fail and
// the pre-validation's early exit matters most.
func BenchmarkAblationValidation(b *testing.B) {
	wl := workload.Config{UpdatePercent: 100, Range: 16}
	for _, name := range []string{"vbl", "vbl-noprevalidate", "lazy"} {
		im := mustLookup(b, name)
		for _, threads := range []int{4, 8} {
			b.Run(fmt.Sprintf("impl=%s/threads=%d", name, threads), func(b *testing.B) {
				benchCell(b, im, threads, wl)
			})
		}
	}
}

// BenchmarkSkipLists evaluates the paper's §5 conjecture: the
// value-aware discipline carried into a skip list (vbskip) against the
// lock-all-preds LazySkipList, with the flat VBL as the O(n) yardstick.
// At range 2*10^4 the index turns list traversals from thousands of
// hops into tens.
func BenchmarkSkipLists(b *testing.B) {
	for _, keyRange := range []int64{2000, 20000, 200000} {
		for _, update := range []int{0, 20} {
			wl := workload.Config{UpdatePercent: update, Range: keyRange}
			impls := []string{"vbskip", "lazyskip"}
			if keyRange <= 20000 {
				impls = append(impls, "vbl") // the flat list for scale
			}
			for _, name := range impls {
				im := mustLookup(b, name)
				for _, threads := range []int{1, 4} {
					b.Run(fmt.Sprintf("u=%d/r=%d/impl=%s/threads=%d", update, keyRange, name, threads), func(b *testing.B) {
						benchCell(b, im, threads, wl)
					})
				}
			}
		}
	}
}

// BenchmarkAlloc prices the arena (internal/mem): GC-backed vs
// arena-backed node lifetimes for VBL and Lazy under 100% updates —
// every operation is an insert or remove, so the GC mode allocates at
// the workload's effective-update rate while the arena recycles. The
// headline column is allocs/op (b.ReportAllocs); EXPERIMENTS.md §
// records the measured series.
func BenchmarkAlloc(b *testing.B) {
	for _, keyRange := range []int64{200, 20000} {
		wl := workload.Config{UpdatePercent: 100, Range: keyRange}
		for _, name := range []string{"vbl", "lazy"} {
			im := mustLookup(b, name)
			for _, mode := range []struct {
				tag string
				new func() Set
			}{
				{"gc", im.New},
				{"arena", im.NewArena},
			} {
				for _, threads := range []int{1, 2} {
					b.Run(fmt.Sprintf("r=%d/impl=%s/mem=%s/threads=%d", keyRange, name, mode.tag, threads), func(b *testing.B) {
						b.ReportAllocs()
						s := mode.new()
						workload.Prepopulate(wl, 1, s.Insert)
						perG := b.N/threads + 1
						b.ResetTimer()
						var wg sync.WaitGroup
						for t := 0; t < threads; t++ {
							wg.Add(1)
							go func(id int) {
								defer wg.Done()
								gen := workload.NewGenerator(wl, uint64(id)*0x9E37+11)
								for i := 0; i < perG; i++ {
									op, k := gen.Next()
									switch op {
									case workload.Insert:
										s.Insert(k)
									case workload.Remove:
										s.Remove(k)
									}
								}
							}(t)
						}
						wg.Wait()
					})
				}
			}
		}
	}
}

// BenchmarkOperations is the per-operation microbenchmark: the cost of
// each op in isolation on a mid-size list, for every implementation.
func BenchmarkOperations(b *testing.B) {
	const keyRange = 1000
	for _, im := range Implementations() {
		if !im.ThreadSafe {
			continue
		}
		im := im
		b.Run("impl="+im.Name+"/op=contains-hit", func(b *testing.B) {
			b.ReportAllocs()
			s := im.New()
			for k := int64(0); k < keyRange; k += 2 {
				s.Insert(k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Contains(int64(i*2) % keyRange)
			}
		})
		b.Run("impl="+im.Name+"/op=contains-miss", func(b *testing.B) {
			b.ReportAllocs()
			s := im.New()
			for k := int64(0); k < keyRange; k += 2 {
				s.Insert(k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Contains(int64(i*2+1) % keyRange)
			}
		})
		b.Run("impl="+im.Name+"/op=insert-remove", func(b *testing.B) {
			b.ReportAllocs()
			s := im.New()
			for k := int64(0); k < keyRange; k += 2 {
				s.Insert(k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i*2+1) % keyRange
				s.Insert(k)
				s.Remove(k)
			}
		})
	}
}
