// Quickstart: the basic public API of the listset package — create a
// set, use it from several goroutines, inspect it afterwards.
package main

import (
	"fmt"
	"sync"

	"listset"
)

func main() {
	// The paper's concurrency-optimal Value-Based List. Swap NewVBL for
	// NewLazy, NewHarrisMarker, ... — same interface, same semantics.
	s := listset.NewVBL()

	// Single-goroutine basics: updates report whether they changed the
	// set.
	fmt.Println("insert 3:", s.Insert(3)) // true — was absent
	fmt.Println("insert 3:", s.Insert(3)) // false — already present
	fmt.Println("contains 3:", s.Contains(3))
	fmt.Println("remove 3:", s.Remove(3)) // true — was present
	fmt.Println("remove 3:", s.Remove(3)) // false — already gone

	// Concurrent use: every goroutine owns a stripe of keys, so each
	// outcome is exactly predictable even though all goroutines share
	// one list.
	const goroutines, perG = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for k := int64(0); k < perG; k++ {
				s.Insert(base + k)
			}
			for k := int64(1); k < perG; k += 2 {
				s.Remove(base + k) // drop the odd ones again
			}
		}(int64(g * perG))
	}
	wg.Wait()

	fmt.Println("final size:", s.Len()) // goroutines * perG / 2
	snap := s.Snapshot()
	fmt.Println("first five elements:", snap[:5])
	fmt.Println("snapshot is sorted and duplicate-free, length", len(snap))
}
