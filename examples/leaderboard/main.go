// Leaderboard: the value-aware skip list (the §5 extension) as the
// index of a concurrent score board. Scores are 64-bit keys; the skip
// list keeps them ordered so "top N" is a prefix scan, while inserts,
// cancellations and membership probes hammer it from many goroutines.
//
// The same program runs against the flat VBL by flipping one
// constructor — and takes dramatically longer once the board is large,
// which is the whole point of the index.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"listset"
)

const (
	players   = 8
	rounds    = 4000
	scoreBits = 20 // score space: ~1M distinct values
)

func main() {
	board := listset.NewVBSkip()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < players; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				score := rng.Int63n(1 << scoreBits)
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // post a new score
					board.Insert(score)
				case 6: // a score gets disqualified
					board.Remove(score)
				default: // check whether a score is on the board
					board.Contains(score)
				}
			}
		}(int64(p) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := board.Snapshot() // ascending
	fmt.Printf("players            %d × %d rounds in %v\n", players, rounds, elapsed.Round(time.Millisecond))
	fmt.Printf("scores on board    %d\n", len(snap))
	fmt.Printf("lowest / highest   %d / %d\n", snap[0], snap[len(snap)-1])
	fmt.Print("top five           ")
	for i := 0; i < 5 && i < len(snap); i++ {
		fmt.Printf("%d ", snap[len(snap)-1-i])
	}
	fmt.Println()

	// Sanity: the snapshot is strictly ascending and agrees with
	// membership probes.
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			panic("snapshot out of order")
		}
	}
	for _, probe := range []int64{snap[0], snap[len(snap)/2], snap[len(snap)-1]} {
		if !board.Contains(probe) {
			panic("board lost a score")
		}
	}
	fmt.Println("order + membership verified ✓")
}
