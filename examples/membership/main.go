// Membership: a concurrent deduplication service built on the VBL list —
// the kind of small hot set (session IDs, recently-seen message IDs)
// the paper's workloads model with their 20%-update mix.
//
// A pool of producer goroutines emits events with IDs drawn from a
// Zipf-ish hot range; each event must be processed exactly once, so
// producers claim an ID by Insert (first insert wins) and a janitor
// expires old IDs with Remove to keep the set small. A pool of auditors
// runs wait-free Contains probes throughout.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"listset"
)

const (
	producers = 6
	auditors  = 2
	events    = 5000 // per producer
	idRange   = 512
)

func main() {
	seen := listset.NewVBL()

	var (
		processed  atomic.Int64 // events claimed and handled
		duplicates atomic.Int64 // events skipped as already claimed
		expired    atomic.Int64 // ids expired by the janitor
		probes     atomic.Int64
		producerWG sync.WaitGroup
		bgWG       sync.WaitGroup
		done       atomic.Bool
	)

	// Producers: claim-by-insert gives exactly-once processing without
	// any coordination beyond the set itself.
	for p := 0; p < producers; p++ {
		producerWG.Add(1)
		go func(seed int64) {
			defer producerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < events; i++ {
				id := int64(rng.Intn(idRange))
				if seen.Insert(id) {
					processed.Add(1) // we own this event
				} else {
					duplicates.Add(1) // someone else was first
				}
				if i%64 == 0 {
					// Keep the run fair on single-core hosts so the
					// janitor and auditors interleave visibly.
					runtime.Gosched()
				}
			}
		}(int64(p) + 1)
	}

	// Janitor: expire random IDs so the hot set stays small; every
	// successful Remove re-opens that ID for processing.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		rng := rand.New(rand.NewSource(99))
		for !done.Load() {
			if seen.Remove(int64(rng.Intn(idRange))) {
				expired.Add(1)
			}
		}
	}()

	// Auditors: wait-free reads all along.
	for a := 0; a < auditors; a++ {
		bgWG.Add(1)
		go func(seed int64) {
			defer bgWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				seen.Contains(int64(rng.Intn(idRange)))
				probes.Add(1)
			}
		}(int64(a) + 500)
	}

	// Wait for the producers, then stop the unbounded goroutines.
	producerWG.Wait()
	done.Store(true)
	bgWG.Wait()

	// Accounting invariant: every claimed ID is either still in the set
	// or was expired. (processed - expired == current size)
	size := int64(seen.Len())
	fmt.Printf("events emitted:      %d\n", producers*events)
	fmt.Printf("processed (claims):  %d\n", processed.Load())
	fmt.Printf("duplicates skipped:  %d\n", duplicates.Load())
	fmt.Printf("ids expired:         %d\n", expired.Load())
	fmt.Printf("audit probes:        %d\n", probes.Load())
	fmt.Printf("current set size:    %d\n", size)
	if processed.Load()-expired.Load() == size {
		fmt.Println("balance: processed - expired == size ✓")
	} else {
		fmt.Printf("balance VIOLATED: %d - %d != %d\n", processed.Load(), expired.Load(), size)
	}
}
