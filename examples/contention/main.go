// Contention: the Figure-1 story at miniature scale — a ~25-node list
// (key range 50) under 20% updates, Lazy Linked List versus VBL, as the
// number of goroutines grows. On a small list every update lands on the
// same few nodes, so the Lazy list's lock-then-validate discipline makes
// even the updates that change nothing serialize on hot locks, while
// VBL's validate-before-lock lets them return lock-free.
package main

import (
	"fmt"
	"time"

	"listset"
	"listset/internal/harness"
	"listset/internal/stats"
	"listset/internal/workload"
)

func main() {
	wl := workload.Config{UpdatePercent: 20, Range: 50}
	threads := []int{1, 2, 4, 8, 16, 32}

	fmt.Printf("20%% updates over a ~25-node list (key range %d)\n\n", wl.Range)
	fmt.Printf("%8s  %14s  %14s  %8s\n", "threads", "vbl (ops/s)", "lazy (ops/s)", "vbl/lazy")

	for _, th := range threads {
		vbl := cell("vbl", th, wl)
		lazy := cell("lazy", th, wl)
		fmt.Printf("%8d  %14s  %14s  %7.2fx\n",
			th, stats.HumanCount(vbl), stats.HumanCount(lazy), stats.Speedup(vbl, lazy))
	}
	fmt.Println("\n(On a single-core host the two stay close — the paper's 1.6x gap")
	fmt.Println("needs real cross-core cache-line contention; see EXPERIMENTS.md.)")
}

func cell(impl string, threads int, wl workload.Config) float64 {
	im, err := listset.Lookup(impl)
	if err != nil {
		panic(err)
	}
	res, err := harness.Run(harness.Config{
		Name:     im.Name,
		New:      func() harness.Set { return im.New() },
		Threads:  threads,
		Workload: wl,
		Duration: 150 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Runs:     2,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	return res.Summary.Mean
}
