// Schedules: a guided tour of the paper's Section 2 — what a schedule
// is, what makes one correct, and how the Lazy list and Harris-Michael
// reject correct schedules that VBL accepts. It walks the Figure 2 and
// Figure 3 schedules through the schedule interpreter step by step.
package main

import (
	"fmt"

	"listset/internal/schedule"
)

func main() {
	fmt.Println("A *schedule* is an interleaving of the sequential list code's")
	fmt.Println("steps. Here is Figure 2 of the paper — insert(2) ∥ insert(1)")
	fmt.Println("on the list {1}:")
	fmt.Println()

	fig2 := schedule.Figure2()
	fmt.Print(fig2)
	fmt.Println()

	correct, reason := schedule.Correct(fig2)
	fmt.Printf("oracle (Definition 1): correct = %v %s\n", correct, reason)
	fmt.Println("  - locally serializable: each op saw ascending values")
	fmt.Println("  - linearizable even when extended with contains(v) for all v")
	fmt.Println()
	fmt.Printf("VBL accepts it:  %v  (insert(1) returns false without locking)\n",
		schedule.Accepts(schedule.AlgVBL, fig2))
	fmt.Printf("Lazy accepts it: %v  (insert(1) would need the lock insert(2) holds)\n",
		schedule.Accepts(schedule.AlgLazy, fig2))
	fmt.Println()

	final := schedule.FinalMembers(fig2)
	fmt.Printf("replaying the schedule leaves the list holding: %v\n", keys(final))
	fmt.Println()

	fmt.Println("And Figure 3, in the adjusted model (marks + delegated unlinks),")
	fmt.Println("which Harris-Michael rejects because the second helping unlink is")
	fmt.Println("a CAS that must fail and restart:")
	fmt.Println()
	fig3 := schedule.Figure3()
	fmt.Print(fig3)
	correct3, _ := schedule.Correct(fig3)
	fmt.Printf("\noracle: correct = %v\n", correct3)
	fmt.Printf("Harris-Michael accepts it: %v\n", schedule.Accepts(schedule.AlgHarris, fig3))
	fmt.Printf("final list contents: %v\n", keys(schedule.FinalMembers(fig3)))
}

func keys(m map[int64]bool) []int64 {
	var out []int64
	for v := int64(-100); v <= 100; v++ {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}
