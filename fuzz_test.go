package listset

import (
	"testing"

	"listset/internal/core"
	"listset/internal/lazy"
	"listset/internal/mem"
)

// Fuzz targets interpret a byte string as a program of set operations
// and cross-check every implementation against a map oracle (sequential
// fuzzing) and against each other. They run over the seed corpus in
// ordinary `go test` runs and explore further with `go test -fuzz`.

// decodeOp maps two bytes to (operation, key).
func decodeOp(op, key byte) (kind int, k int64) {
	return int(op % 3), int64(key % 32)
}

func seedCorpus(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{0, 5, 2, 5, 1, 5, 1, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 2, 2, 1, 2, 3})
	// Insert/remove churn on one key.
	churn := make([]byte, 0, 64)
	for i := 0; i < 16; i++ {
		churn = append(churn, 0, 7, 1, 7)
	}
	f.Add(churn)
	// Ascending then descending inserts.
	var sweep []byte
	for i := byte(0); i < 30; i++ {
		sweep = append(sweep, 0, i)
	}
	for i := byte(30); i > 0; i-- {
		sweep = append(sweep, 1, i-1)
	}
	f.Add(sweep)
}

// FuzzSequentialVsOracle runs the program on every implementation and
// requires the result stream to match the map oracle exactly.
func FuzzSequentialVsOracle(f *testing.F) {
	seedCorpus(f)
	impls := Implementations()
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 4096 {
			t.Skip()
		}
		for _, im := range impls {
			s := im.New()
			oracle := map[int64]bool{}
			for i := 0; i+1 < len(prog); i += 2 {
				kind, k := decodeOp(prog[i], prog[i+1])
				switch kind {
				case 0:
					want := !oracle[k]
					if got := s.Insert(k); got != want {
						t.Fatalf("%s: step %d Insert(%d) = %v, want %v", im.Name, i/2, k, got, want)
					}
					oracle[k] = true
				case 1:
					want := oracle[k]
					if got := s.Remove(k); got != want {
						t.Fatalf("%s: step %d Remove(%d) = %v, want %v", im.Name, i/2, k, got, want)
					}
					delete(oracle, k)
				default:
					if got := s.Contains(k); got != oracle[k] {
						t.Fatalf("%s: step %d Contains(%d) = %v, want %v", im.Name, i/2, k, got, oracle[k])
					}
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("%s: final Len = %d, want %d", im.Name, s.Len(), len(oracle))
			}
			snap := s.Snapshot()
			if len(snap) != len(oracle) {
				t.Fatalf("%s: final Snapshot size %d, want %d", im.Name, len(snap), len(oracle))
			}
			for i, v := range snap {
				if !oracle[v] {
					t.Fatalf("%s: Snapshot holds %d which the oracle lacks", im.Name, v)
				}
				if i > 0 && snap[i-1] >= v {
					t.Fatalf("%s: Snapshot not strictly ascending: %v", im.Name, snap)
				}
			}
		}
	})
}

// FuzzShardedVsOracle runs the program on every implementation's
// sharded form with the partition squeezed onto the fuzz key domain
// (4 shards over [0, 32), boundaries 8/16/24), so fuzzed op sequences
// constantly cross shard seams; results must match the map oracle
// exactly and the snapshot must stay ascending across shards.
func FuzzShardedVsOracle(f *testing.F) {
	seedCorpus(f)
	var shardable []Impl
	for _, im := range Implementations() {
		if im.NewSharded != nil {
			shardable = append(shardable, im)
		}
	}
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 4096 {
			t.Skip()
		}
		for _, im := range shardable {
			s := im.NewSharded(4, 0, 32)
			oracle := map[int64]bool{}
			for i := 0; i+1 < len(prog); i += 2 {
				kind, k := decodeOp(prog[i], prog[i+1])
				switch kind {
				case 0:
					want := !oracle[k]
					if got := s.Insert(k); got != want {
						t.Fatalf("%s/4x8: step %d Insert(%d) = %v, want %v", im.Name, i/2, k, got, want)
					}
					oracle[k] = true
				case 1:
					want := oracle[k]
					if got := s.Remove(k); got != want {
						t.Fatalf("%s/4x8: step %d Remove(%d) = %v, want %v", im.Name, i/2, k, got, want)
					}
					delete(oracle, k)
				default:
					if got := s.Contains(k); got != oracle[k] {
						t.Fatalf("%s/4x8: step %d Contains(%d) = %v, want %v", im.Name, i/2, k, got, oracle[k])
					}
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("%s/4x8: final Len = %d, want %d", im.Name, s.Len(), len(oracle))
			}
			snap := s.Snapshot()
			if len(snap) != len(oracle) {
				t.Fatalf("%s/4x8: final Snapshot size %d, want %d", im.Name, len(snap), len(oracle))
			}
			for i, v := range snap {
				if !oracle[v] {
					t.Fatalf("%s/4x8: Snapshot holds %d which the oracle lacks", im.Name, v)
				}
				if i > 0 && snap[i-1] >= v {
					t.Fatalf("%s/4x8: Snapshot not strictly ascending: %v", im.Name, snap)
				}
			}
		}
	})
}

// FuzzArenaVsOracle runs the program on the arena-backed VBL and Lazy
// lists with the op stream repeated enough times that retired nodes
// cross their two-epoch grace period and recycle mid-program — the
// result stream must keep matching the map oracle through reuse, and
// the arena's conservation invariant (Recycled <= Retired) must hold
// at the end.
func FuzzArenaVsOracle(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 1024 {
			t.Skip()
		}
		for _, im := range []struct {
			name string
			s    interface {
				Set
				ArenaStats() (mem.Stats, bool)
			}
		}{
			{"vbl-arena", core.NewArena()},
			{"lazy-arena", lazy.NewArena()},
		} {
			oracle := map[int64]bool{}
			// Repeat the program: the first pass seeds retirements, the
			// later passes run against recycled nodes.
			for round := 0; round < 6; round++ {
				for i := 0; i+1 < len(prog); i += 2 {
					kind, k := decodeOp(prog[i], prog[i+1])
					switch kind {
					case 0:
						want := !oracle[k]
						if got := im.s.Insert(k); got != want {
							t.Fatalf("%s: round %d step %d Insert(%d) = %v, want %v", im.name, round, i/2, k, got, want)
						}
						oracle[k] = true
					case 1:
						want := oracle[k]
						if got := im.s.Remove(k); got != want {
							t.Fatalf("%s: round %d step %d Remove(%d) = %v, want %v", im.name, round, i/2, k, got, want)
						}
						delete(oracle, k)
					default:
						if got := im.s.Contains(k); got != oracle[k] {
							t.Fatalf("%s: round %d step %d Contains(%d) = %v, want %v", im.name, round, i/2, k, got, oracle[k])
						}
					}
				}
			}
			if im.s.Len() != len(oracle) {
				t.Fatalf("%s: final Len = %d, want %d", im.name, im.s.Len(), len(oracle))
			}
			snap := im.s.Snapshot()
			for i, v := range snap {
				if !oracle[v] {
					t.Fatalf("%s: Snapshot holds %d which the oracle lacks", im.name, v)
				}
				if i > 0 && snap[i-1] >= v {
					t.Fatalf("%s: Snapshot not strictly ascending: %v", im.name, snap)
				}
			}
			st, ok := im.s.ArenaStats()
			if !ok {
				t.Fatalf("%s: ArenaStats reports no arena", im.name)
			}
			if st.Recycled > st.Retired {
				t.Fatalf("%s: Recycled %d > Retired %d", im.name, st.Recycled, st.Retired)
			}
		}
	})
}

// FuzzImplementationsAgree splits the program into two goroutine-bound
// halves operating on DISJOINT key halves concurrently, then checks all
// implementations converge to the same final contents.
func FuzzImplementationsAgree(f *testing.F) {
	seedCorpus(f)
	impls := Implementations()
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 2048 {
			t.Skip()
		}
		var finals [][]int64
		for _, im := range impls {
			if !im.ThreadSafe {
				continue
			}
			s := im.New()
			done := make(chan struct{}, 2)
			// Two workers, keys partitioned by parity so the outcome is
			// deterministic regardless of interleaving.
			for w := 0; w < 2; w++ {
				go func(w int) {
					defer func() { done <- struct{}{} }()
					for i := 0; i+1 < len(prog); i += 2 {
						kind, k := decodeOp(prog[i], prog[i+1])
						if int(k%2) != w {
							continue
						}
						switch kind {
						case 0:
							s.Insert(k)
						case 1:
							s.Remove(k)
						default:
							s.Contains(k)
						}
					}
				}(w)
			}
			<-done
			<-done
			finals = append(finals, s.Snapshot())
		}
		for i := 1; i < len(finals); i++ {
			if len(finals[i]) != len(finals[0]) {
				t.Fatalf("final contents diverge: %v vs %v", finals[0], finals[i])
			}
			for j := range finals[i] {
				if finals[i][j] != finals[0][j] {
					t.Fatalf("final contents diverge: %v vs %v", finals[0], finals[i])
				}
			}
		}
	})
}
