package listset

import (
	"math/rand"
	"testing"
)

// forEachImpl runs f as a subtest for every registered implementation.
func forEachImpl(t *testing.T, f func(t *testing.T, im Impl)) {
	t.Helper()
	for _, im := range Implementations() {
		im := im
		t.Run(im.Name, func(t *testing.T) { f(t, im) })
	}
}

// forEachConcurrentImpl is forEachImpl restricted to thread-safe
// implementations.
func forEachConcurrentImpl(t *testing.T, f func(t *testing.T, im Impl)) {
	t.Helper()
	for _, im := range Implementations() {
		if !im.ThreadSafe {
			continue
		}
		im := im
		t.Run(im.Name, func(t *testing.T) { f(t, im) })
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, im := range Implementations() {
		got, err := Lookup(im.Name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", im.Name, err)
		}
		if got.Name != im.Name {
			t.Fatalf("Lookup(%q) resolved to %q", im.Name, got.Name)
		}
		for _, alias := range im.Aliases {
			got, err := Lookup(alias)
			if err != nil {
				t.Fatalf("Lookup(alias %q): %v", alias, err)
			}
			if got.Name != im.Name {
				t.Fatalf("Lookup(alias %q) resolved to %q, want %q", alias, got.Name, im.Name)
			}
		}
	}
	if _, err := Lookup("no-such-list"); err == nil {
		t.Fatal("Lookup of unknown name did not error")
	}
	if _, err := Lookup("VBL"); err != nil {
		t.Fatalf("Lookup should be case-insensitive: %v", err)
	}
}

func TestRegistryConstructorsIndependent(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		a, b := im.New(), im.New()
		a.Insert(7)
		if b.Contains(7) {
			t.Fatal("two instances from the same constructor share state")
		}
	})
}

func TestEmptySet(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		if s.Len() != 0 {
			t.Fatalf("Len() of empty set = %d", s.Len())
		}
		if s.Contains(1) {
			t.Fatal("empty set Contains(1) = true")
		}
		if s.Remove(1) {
			t.Fatal("empty set Remove(1) = true")
		}
		if snap := s.Snapshot(); len(snap) != 0 {
			t.Fatalf("empty set Snapshot() = %v", snap)
		}
	})
}

func TestBasicSemantics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		if !s.Insert(5) {
			t.Fatal("Insert(5) on empty set = false")
		}
		if s.Insert(5) {
			t.Fatal("second Insert(5) = true")
		}
		if !s.Contains(5) {
			t.Fatal("Contains(5) = false after insert")
		}
		if s.Contains(4) || s.Contains(6) {
			t.Fatal("Contains of absent neighbours = true")
		}
		if !s.Insert(3) || !s.Insert(7) || !s.Insert(4) {
			t.Fatal("fresh inserts returned false")
		}
		wantSnap := []int64{3, 4, 5, 7}
		snap := s.Snapshot()
		if len(snap) != len(wantSnap) {
			t.Fatalf("Snapshot = %v, want %v", snap, wantSnap)
		}
		for i := range wantSnap {
			if snap[i] != wantSnap[i] {
				t.Fatalf("Snapshot = %v, want %v", snap, wantSnap)
			}
		}
		if !s.Remove(4) {
			t.Fatal("Remove(4) = false")
		}
		if s.Remove(4) {
			t.Fatal("second Remove(4) = true")
		}
		if s.Contains(4) {
			t.Fatal("Contains(4) = true after removal")
		}
		if s.Len() != 3 {
			t.Fatalf("Len = %d, want 3", s.Len())
		}
		// Reinsertion after removal must succeed (exercises logical
		// deletion + value-aware revalidation paths).
		if !s.Insert(4) {
			t.Fatal("reinsert of removed value = false")
		}
		if !s.Contains(4) {
			t.Fatal("Contains(4) = false after reinsert")
		}
	})
}

func TestNegativeKeysAndExtremes(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		vals := []int64{MinKey, -12345, -1, 0, 1, 12345, MaxKey}
		for _, v := range vals {
			if !s.Insert(v) {
				t.Fatalf("Insert(%d) = false", v)
			}
		}
		for _, v := range vals {
			if !s.Contains(v) {
				t.Fatalf("Contains(%d) = false", v)
			}
		}
		if s.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(vals))
		}
		snap := s.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				t.Fatalf("Snapshot not strictly ascending: %v", snap)
			}
		}
		for _, v := range vals {
			if !s.Remove(v) {
				t.Fatalf("Remove(%d) = false", v)
			}
		}
		if s.Len() != 0 {
			t.Fatalf("Len after removing all = %d", s.Len())
		}
	})
}

// TestMapOracle drives each implementation single-threaded against a map
// with a long random operation sequence.
func TestMapOracle(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		rng := rand.New(rand.NewSource(42))
		s := im.New()
		oracle := map[int64]bool{}
		for i := 0; i < 30000; i++ {
			v := int64(rng.Intn(128)) - 64
			switch rng.Intn(3) {
			case 0:
				want := !oracle[v]
				if got := s.Insert(v); got != want {
					t.Fatalf("step %d: Insert(%d) = %v, want %v", i, v, got, want)
				}
				oracle[v] = true
			case 1:
				want := oracle[v]
				if got := s.Remove(v); got != want {
					t.Fatalf("step %d: Remove(%d) = %v, want %v", i, v, got, want)
				}
				delete(oracle, v)
			case 2:
				if got := s.Contains(v); got != oracle[v] {
					t.Fatalf("step %d: Contains(%d) = %v, want %v", i, v, got, oracle[v])
				}
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("final Len = %d, want %d", s.Len(), len(oracle))
		}
		snap := s.Snapshot()
		if len(snap) != len(oracle) {
			t.Fatalf("final Snapshot has %d elements, want %d", len(snap), len(oracle))
		}
		for _, v := range snap {
			if !oracle[v] {
				t.Fatalf("Snapshot contains %d which the oracle lacks", v)
			}
		}
	})
}

// TestShardedBoundaryOracle drives every implementation's sharded form
// with a tight partition (4 shards over [0, 32), boundaries at 8, 16,
// 24) against a map oracle, biasing keys to land on and around the
// shard boundaries and outside the focus range, so routing errors at
// the seams — a key owned by two shards, or by none — surface as
// semantic failures.
func TestShardedBoundaryOracle(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		if im.NewSharded == nil {
			t.Skip("no sharded form")
		}
		s := im.NewSharded(4, 0, 32)
		rng := rand.New(rand.NewSource(7))
		// Candidate keys cluster on the boundaries ±1, the focus edges,
		// and a few keys beyond them (clamped to the edge shards).
		candidates := []int64{
			-40, -1, 0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 30, 31, 32, 33, 90,
		}
		oracle := map[int64]bool{}
		for i := 0; i < 20000; i++ {
			v := candidates[rng.Intn(len(candidates))]
			switch rng.Intn(3) {
			case 0:
				want := !oracle[v]
				if got := s.Insert(v); got != want {
					t.Fatalf("step %d: Insert(%d) = %v, want %v", i, v, got, want)
				}
				oracle[v] = true
			case 1:
				want := oracle[v]
				if got := s.Remove(v); got != want {
					t.Fatalf("step %d: Remove(%d) = %v, want %v", i, v, got, want)
				}
				delete(oracle, v)
			case 2:
				if got := s.Contains(v); got != oracle[v] {
					t.Fatalf("step %d: Contains(%d) = %v, want %v", i, v, got, oracle[v])
				}
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("final Len = %d, want %d", s.Len(), len(oracle))
		}
		snap := s.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				t.Fatalf("Snapshot not strictly ascending across shard seams: %v", snap)
			}
		}
		for _, v := range snap {
			if !oracle[v] {
				t.Fatalf("Snapshot contains %d which the oracle lacks", v)
			}
		}
	})
}

// TestGrowShrinkCycles fills and drains the set repeatedly, a pattern
// that exercises unlink-behind-traversal paths.
func TestGrowShrinkCycles(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const n = 300
		for cycle := 0; cycle < 4; cycle++ {
			for i := int64(0); i < n; i++ {
				if !s.Insert(i) {
					t.Fatalf("cycle %d: Insert(%d) = false", cycle, i)
				}
			}
			if s.Len() != n {
				t.Fatalf("cycle %d: Len = %d, want %d", cycle, s.Len(), n)
			}
			// Drain in an order that alternates ends to vary windows.
			for i := int64(0); i < n/2; i++ {
				if !s.Remove(i) || !s.Remove(n-1-i) {
					t.Fatalf("cycle %d: Remove pair %d failed", cycle, i)
				}
			}
			if s.Len() != 0 {
				t.Fatalf("cycle %d: Len after drain = %d", cycle, s.Len())
			}
		}
	})
}
