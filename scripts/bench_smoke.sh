#!/usr/bin/env bash
# Benchmark smoke test: short probe-enabled runs over the paper's three
# protagonists (VBL, Lazy, Harris-Michael) and the sharded VBL façade,
# emitting one JSON array of schema-stable reports to BENCH_smoke.json.
#
# Usage: scripts/bench_smoke.sh [outfile]       (default BENCH_smoke.json)
#
# This is a smoke test, not a benchmark: it exists so CI exercises the
# full observability path (probes, latency sampling, JSON report) end to
# end and so the report schema breaks loudly, not silently. Numbers from
# CI machines are noise — see EXPERIMENTS.md for the real protocol. The
# one exception is the sharding gate at the bottom: the O(n/S)
# traversal saving is large and machine-independent enough to assert
# even here (S=16 at ≥3x the flat list on a 10^4-node range, and the
# S=1 façade within 10% of it).
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_smoke.json}"

go build -o /tmp/listset-synchrobench ./cmd/synchrobench

# Row layout (index: impl/shards @ range) — the gates below index into
# this order, so append new rows at the END and keep it in sync:
#   0 vbl          @ 2048
#   1 lazy         @ 2048
#   2 harris       @ 2048
#   3 vbl-sharded 8  @ 2048
#   4 vbl          @ 20000
#   5 vbl-sharded 1  @ 20000   (façade overhead: within 10% of row 4)
#   6 vbl-sharded 16 @ 20000   (O(n/S) payoff: >= 3x row 4)
#   7 vbl GC       @ 20000, 100% updates   (arena gate baseline)
#   8 vbl arena    @ 20000, 100% updates   (allocs/op <= 0.25x row 7;
#                                           throughput gated separately
#                                           via interleaved pairs below)
#   9 vbl traced   @ 2048   (flight recorder + interval streaming on:
#                            exercises -trace/-stream and the report's
#                            timeseries section end to end)
rows=(
  "-impl vbl          -range 2048  -duration 500ms -warmup 100ms -runs 1"
  "-impl lazy         -range 2048  -duration 500ms -warmup 100ms -runs 1"
  "-impl harris       -range 2048  -duration 500ms -warmup 100ms -runs 1"
  "-impl vbl-sharded  -range 2048  -duration 500ms -warmup 100ms -runs 1 -shards 8"
  "-impl vbl          -range 20000 -duration 900ms -warmup 300ms -runs 3"
  "-impl vbl-sharded  -range 20000 -duration 900ms -warmup 300ms -runs 3 -shards 1"
  "-impl vbl-sharded  -range 20000 -duration 900ms -warmup 300ms -runs 3 -shards 16"
  "-impl vbl          -range 20000 -duration 900ms -warmup 300ms -runs 3 -update-ratio 100"
  "-impl vbl          -range 20000 -duration 900ms -warmup 300ms -runs 3 -update-ratio 100 -arena"
  "-impl vbl          -range 2048  -duration 500ms -warmup 100ms -runs 1 -trace /tmp/listset-smoke.trace -stream 100ms"
)

# Wrap the per-row JSON objects into one array without external tools.
# Common flags go first so a row's own flags (e.g. -update-ratio 100)
# override them — the flag package takes the last occurrence.
{
  printf '[\n'
  for i in "${!rows[@]}"; do
    [ "$i" -gt 0 ] && printf ',\n'
    # shellcheck disable=SC2086  # rows are flag lists, word-split on purpose
    /tmp/listset-synchrobench -threads 4 -update-ratio 20 -json ${rows[$i]}
  done
  printf ']\n'
} >"$out"

# Minimal schema sanity: every report carries the schema tag, the shard
# count, and the events section the probes fill in.
for key in '"schema": "listset/bench/v1"' '"shards"' '"events"' '"latency_ns"'; do
  n=$(grep -c "$key" "$out") || true
  if [ "$n" -lt "${#rows[@]}" ]; then
    echo "bench_smoke: expected $key in every report of $out (found $n)" >&2
    exit 1
  fi
done

# Sharding gate: extract the median throughputs in file order (one
# "median" per report; the median shrugs off the odd descheduled run
# on shared CI machines) and check rows 4..6 against each other.
awk -F': ' '/"median"/ { gsub(/,/, "", $2); m[n++] = $2 }
END {
  if (n != '"${#rows[@]}"') {
    printf "bench_smoke: expected %d mean entries, found %d\n", '"${#rows[@]}"', n > "/dev/stderr"
    exit 1
  }
  flat = m[4]; facade = m[5]; sharded = m[6]
  if (sharded < 3 * flat) {
    printf "bench_smoke: vbl-sharded S=16 (%.0f ops/s) is below 3x flat vbl (%.0f ops/s) at range 20000\n", sharded, flat > "/dev/stderr"
    exit 1
  }
  rel = (facade - flat) / flat; if (rel < 0) rel = -rel
  if (rel > 0.10) {
    printf "bench_smoke: vbl-sharded S=1 (%.0f ops/s) deviates %.1f%% from flat vbl (%.0f ops/s), want <= 10%%\n", facade, 100 * rel, flat > "/dev/stderr"
    exit 1
  }
  printf "bench_smoke: sharding gate ok — S=16 %.1fx flat, S=1 within %.1f%%\n", sharded / flat, 100 * rel
}' "$out"

# Arena gate, allocation side: rows 7 (GC) and 8 (arena) run the same
# 100%-update cell, so the MemStats deltas are comparable. The arena
# must cut allocs/op to a quarter or better (measured: ~100x).
awk -F': ' '
/"allocs_per_op"/ { gsub(/,/, "", $2); a[an++] = $2 }
END {
  if (an != '"${#rows[@]}"') {
    printf "bench_smoke: expected %d allocs_per_op entries, found %d\n", '"${#rows[@]}"', an > "/dev/stderr"
    exit 1
  }
  gcAllocs = a[7]; arAllocs = a[8]
  if (gcAllocs <= 0) {
    printf "bench_smoke: GC vbl reports %.4f allocs/op on a 100%%-update run; MemStats bracketing is broken\n", gcAllocs > "/dev/stderr"
    exit 1
  }
  if (arAllocs > 0.25 * gcAllocs) {
    printf "bench_smoke: arena vbl at %.4f allocs/op exceeds 0.25x GC vbl (%.4f allocs/op)\n", arAllocs, gcAllocs > "/dev/stderr"
    exit 1
  }
  printf "bench_smoke: arena alloc gate ok — %.4f vs %.4f allocs/op (%.1fx cut)\n", arAllocs, gcAllocs, gcAllocs / arAllocs
}' "$out"

# Arena gate, throughput side: the arena must not give up more than 5%
# throughput against the GC build on the same cell. Rows 7 and 8 run
# ~3s apart, so turbo and thermal drift bias a sequential comparison —
# interleave best-of-3 GC/arena pairs instead, the same methodology the
# trace-overhead gate below uses.
acell="-impl vbl -range 20000 -threads 4 -update-ratio 100 -duration 600ms -warmup 200ms -runs 1 -quiet"
best_gc=0
best_ar=0
for _ in 1 2 3; do
  # -quiet prints "impl threads workload mean"; the mean is last.
  # shellcheck disable=SC2086
  gc=$(/tmp/listset-synchrobench $acell | awk '{ print $NF }')
  # shellcheck disable=SC2086
  ar=$(/tmp/listset-synchrobench $acell -arena | awk '{ print $NF }')
  best_gc=$(awk -v a="$best_gc" -v b="$gc" 'BEGIN { print (b > a) ? b : a }')
  best_ar=$(awk -v a="$best_ar" -v b="$ar" 'BEGIN { print (b > a) ? b : a }')
done
awk -v gc="$best_gc" -v ar="$best_ar" 'BEGIN {
  if (gc <= 0 || ar <= 0) {
    printf "bench_smoke: arena throughput gate got non-positive throughput (gc=%.0f arena=%.0f)\n", gc, ar > "/dev/stderr"
    exit 1
  }
  if (ar < 0.95 * gc) {
    printf "bench_smoke: arena vbl best %.0f ops/s is below 0.95x GC vbl (best %.0f ops/s)\n", ar, gc > "/dev/stderr"
    exit 1
  }
  printf "bench_smoke: arena throughput gate ok — %.2fx GC (best-of-3 interleaved)\n", ar / gc
}'

# Row 9 sanity: the traced row must have produced a non-empty trace
# file and a timeseries section in its report.
if [ ! -s /tmp/listset-smoke.trace ]; then
  echo "bench_smoke: traced row left no trace at /tmp/listset-smoke.trace" >&2
  exit 1
fi
if ! grep -q '"timeseries"' "$out"; then
  echo "bench_smoke: traced row report carries no timeseries section" >&2
  exit 1
fi

# Trace-overhead gate: the flight recorder's disabled cost is the nil
# branch per probe site, so a binary with tracing compiled in but no
# -trace flag must keep pace with the obsoff build (which compiles the
# whole observability layer away). The paper-grade claim is <= 2% on a
# quiet machine (DESIGN.md section 12); CI boxes are noisy, so the gate
# interleaves best-of-3 pairs and allows 15%.
go build -tags obsoff -o /tmp/listset-synchrobench-obsoff ./cmd/synchrobench
ocell="-impl vbl -range 2048 -threads 4 -update-ratio 20 -duration 400ms -warmup 100ms -runs 1 -quiet"
best_on=0
best_off=0
for _ in 1 2 3; do
  # -quiet prints "impl threads workload mean"; the mean is last.
  # shellcheck disable=SC2086
  off=$(/tmp/listset-synchrobench-obsoff $ocell | awk '{ print $NF }')
  # shellcheck disable=SC2086
  on=$(/tmp/listset-synchrobench $ocell | awk '{ print $NF }')
  best_off=$(awk -v a="$best_off" -v b="$off" 'BEGIN { print (b > a) ? b : a }')
  best_on=$(awk -v a="$best_on" -v b="$on" 'BEGIN { print (b > a) ? b : a }')
done
awk -v on="$best_on" -v off="$best_off" 'BEGIN {
  if (off <= 0 || on <= 0) {
    printf "bench_smoke: trace-overhead gate got non-positive throughput (on=%.0f off=%.0f)\n", on, off > "/dev/stderr"
    exit 1
  }
  if (on < 0.85 * off) {
    printf "bench_smoke: disabled tracing (%.0f ops/s) is below 0.85x obsoff (%.0f ops/s)\n", on, off > "/dev/stderr"
    exit 1
  }
  printf "bench_smoke: trace-overhead gate ok — disabled tracing at %.2fx obsoff\n", on / off
}'

echo "bench_smoke: wrote $out (${#rows[@]} reports)"
