#!/usr/bin/env bash
# Benchmark smoke test: short probe-enabled runs over the paper's three
# protagonists (VBL, Lazy, Harris-Michael) and the sharded VBL façade,
# emitting one JSON array of schema-stable reports to BENCH_smoke.json.
#
# Usage: scripts/bench_smoke.sh [outfile]       (default BENCH_smoke.json)
#
# This is a smoke test, not a benchmark: it exists so CI exercises the
# full observability path (probes, latency sampling, JSON report) end to
# end and so the report schema breaks loudly, not silently. Numbers from
# CI machines are noise — see EXPERIMENTS.md for the real protocol. The
# one exception is the sharding gate at the bottom: the O(n/S)
# traversal saving is large and machine-independent enough to assert
# even here (S=16 at ≥3x the flat list on a 10^4-node range, and the
# S=1 façade within 10% of it).
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_smoke.json}"

go build -o /tmp/listset-synchrobench ./cmd/synchrobench

# Row layout (index: impl/shards @ range) — the gates below index into
# this order, so append new rows at the END and keep it in sync:
#   0 vbl          @ 2048
#   1 lazy         @ 2048
#   2 harris       @ 2048
#   3 vbl-sharded 8  @ 2048
#   4 vbl          @ 20000
#   5 vbl-sharded 1  @ 20000   (façade overhead: within 10% of row 4)
#   6 vbl-sharded 16 @ 20000   (O(n/S) payoff: >= 3x row 4)
#   7 vbl GC       @ 20000, 100% updates   (arena gate baseline)
#   8 vbl arena    @ 20000, 100% updates   (allocs/op <= 0.25x row 7,
#                                           median >= 0.95x row 7)
rows=(
  "-impl vbl          -range 2048  -duration 500ms -warmup 100ms -runs 1"
  "-impl lazy         -range 2048  -duration 500ms -warmup 100ms -runs 1"
  "-impl harris       -range 2048  -duration 500ms -warmup 100ms -runs 1"
  "-impl vbl-sharded  -range 2048  -duration 500ms -warmup 100ms -runs 1 -shards 8"
  "-impl vbl          -range 20000 -duration 900ms -warmup 300ms -runs 3"
  "-impl vbl-sharded  -range 20000 -duration 900ms -warmup 300ms -runs 3 -shards 1"
  "-impl vbl-sharded  -range 20000 -duration 900ms -warmup 300ms -runs 3 -shards 16"
  "-impl vbl          -range 20000 -duration 900ms -warmup 300ms -runs 3 -update-ratio 100"
  "-impl vbl          -range 20000 -duration 900ms -warmup 300ms -runs 3 -update-ratio 100 -arena"
)

# Wrap the per-row JSON objects into one array without external tools.
# Common flags go first so a row's own flags (e.g. -update-ratio 100)
# override them — the flag package takes the last occurrence.
{
  printf '[\n'
  for i in "${!rows[@]}"; do
    [ "$i" -gt 0 ] && printf ',\n'
    # shellcheck disable=SC2086  # rows are flag lists, word-split on purpose
    /tmp/listset-synchrobench -threads 4 -update-ratio 20 -json ${rows[$i]}
  done
  printf ']\n'
} >"$out"

# Minimal schema sanity: every report carries the schema tag, the shard
# count, and the events section the probes fill in.
for key in '"schema": "listset/bench/v1"' '"shards"' '"events"' '"latency_ns"'; do
  n=$(grep -c "$key" "$out") || true
  if [ "$n" -lt "${#rows[@]}" ]; then
    echo "bench_smoke: expected $key in every report of $out (found $n)" >&2
    exit 1
  fi
done

# Sharding gate: extract the median throughputs in file order (one
# "median" per report; the median shrugs off the odd descheduled run
# on shared CI machines) and check rows 4..6 against each other.
awk -F': ' '/"median"/ { gsub(/,/, "", $2); m[n++] = $2 }
END {
  if (n != '"${#rows[@]}"') {
    printf "bench_smoke: expected %d mean entries, found %d\n", '"${#rows[@]}"', n > "/dev/stderr"
    exit 1
  }
  flat = m[4]; facade = m[5]; sharded = m[6]
  if (sharded < 3 * flat) {
    printf "bench_smoke: vbl-sharded S=16 (%.0f ops/s) is below 3x flat vbl (%.0f ops/s) at range 20000\n", sharded, flat > "/dev/stderr"
    exit 1
  }
  rel = (facade - flat) / flat; if (rel < 0) rel = -rel
  if (rel > 0.10) {
    printf "bench_smoke: vbl-sharded S=1 (%.0f ops/s) deviates %.1f%% from flat vbl (%.0f ops/s), want <= 10%%\n", facade, 100 * rel, flat > "/dev/stderr"
    exit 1
  }
  printf "bench_smoke: sharding gate ok — S=16 %.1fx flat, S=1 within %.1f%%\n", sharded / flat, 100 * rel
}' "$out"

# Arena gate: rows 7 (GC) and 8 (arena) run the same 100%-update cell,
# so the MemStats deltas are comparable. The arena must cut allocs/op
# to a quarter or better (measured: ~100x) without giving up more than
# 5% median throughput.
awk -F': ' '
/"median"/        { gsub(/,/, "", $2); m[mn++] = $2 }
/"allocs_per_op"/ { gsub(/,/, "", $2); a[an++] = $2 }
END {
  if (an != '"${#rows[@]}"') {
    printf "bench_smoke: expected %d allocs_per_op entries, found %d\n", '"${#rows[@]}"', an > "/dev/stderr"
    exit 1
  }
  gcAllocs = a[7]; arAllocs = a[8]
  gcTput = m[7]; arTput = m[8]
  if (gcAllocs <= 0) {
    printf "bench_smoke: GC vbl reports %.4f allocs/op on a 100%%-update run; MemStats bracketing is broken\n", gcAllocs > "/dev/stderr"
    exit 1
  }
  if (arAllocs > 0.25 * gcAllocs) {
    printf "bench_smoke: arena vbl at %.4f allocs/op exceeds 0.25x GC vbl (%.4f allocs/op)\n", arAllocs, gcAllocs > "/dev/stderr"
    exit 1
  }
  if (arTput < 0.95 * gcTput) {
    printf "bench_smoke: arena vbl median %.0f ops/s is below 0.95x GC vbl (%.0f ops/s)\n", arTput, gcTput > "/dev/stderr"
    exit 1
  }
  printf "bench_smoke: arena gate ok — allocs/op %.4f vs %.4f (%.1fx cut), throughput %.2fx GC\n", arAllocs, gcAllocs, gcAllocs / arAllocs, arTput / gcTput
}' "$out"

echo "bench_smoke: wrote $out (${#rows[@]} reports)"
