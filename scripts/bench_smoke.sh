#!/usr/bin/env bash
# Benchmark smoke test: a ~2-second probe-enabled run over the paper's
# three protagonists (VBL, Lazy, Harris-Michael), emitting one JSON
# array of schema-stable reports to BENCH_smoke.json.
#
# Usage: scripts/bench_smoke.sh [outfile]       (default BENCH_smoke.json)
#
# This is a smoke test, not a benchmark: it exists so CI exercises the
# full observability path (probes, latency sampling, JSON report) end to
# end and so the report schema breaks loudly, not silently. Numbers from
# CI machines are noise — see EXPERIMENTS.md for the real protocol.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_smoke.json}"
impls=(vbl lazy harris)

go build -o /tmp/listset-synchrobench ./cmd/synchrobench

# Wrap the per-impl JSON objects into one array without external tools.
{
  printf '[\n'
  for i in "${!impls[@]}"; do
    [ "$i" -gt 0 ] && printf ',\n'
    /tmp/listset-synchrobench \
      -impl "${impls[$i]}" -threads 4 -update-ratio 20 -range 2048 \
      -duration 500ms -warmup 100ms -runs 1 -json
  done
  printf ']\n'
} >"$out"

# Minimal schema sanity: every report carries the schema tag and the
# events section the probes fill in.
for key in '"schema": "listset/bench/v1"' '"events"' '"latency_ns"'; do
  n=$(grep -c "$key" "$out") || true
  if [ "$n" -lt "${#impls[@]}" ]; then
    echo "bench_smoke: expected $key in every report of $out (found $n)" >&2
    exit 1
  fi
done

echo "bench_smoke: wrote $out (${#impls[@]} reports)"
