#!/usr/bin/env bash
# Tier-2 verification gate: build, vet, the vblvet concurrency-invariant
# suite, and a short race-enabled pass over the lock-based lists.
#
# Usage: scripts/check.sh            (from the repo root or anywhere)
#
# Mirrors .github/workflows/ci.yml; keep the two in sync.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { printf '\n== %s\n' "$*"; }

step "go build ./..."
go build ./...

step "go build -tags obsoff ./... (probe-free build)"
go build -tags obsoff ./...

step "go build -tags nofailpoint ./... (site-free build)"
go build -tags nofailpoint ./...

step "go vet ./..."
go vet ./...

step "vblvet corpora self-test (every analyzer fires on its seeded-bad corpus)"
go test -count=1 -run 'TestAnalyzers|TestEveryAnalyzerFiresOnCorpus|TestCrossPackageContracts' ./internal/analysis

step "vblvet (concurrency-invariant static analysis, ratchet baseline)"
go run ./cmd/vblvet -timing -baseline scripts/vblvet_baseline.json ./...

step "unit tests"
go test -count=1 ./...

step "race gate (short stress, lock-based lists + arena reclamation)"
go test -race -short -count=1 ./internal/core ./internal/lazy ./internal/harris ./internal/mem ./internal/trylock ./internal/obs ./internal/obs/trace ./internal/stats ./internal/failpoint ./internal/harness ./internal/batch ./internal/shard ./internal/workload ./internal/adapt ./internal/skiplist

step "race gate (batch/scan conformance, root package)"
go test -race -short -count=1 -run 'TestBatch|TestRangeScan|TestShardSeam|TestLoad|TestCapabilityFlags|FuzzBatchVsOracle|TestChaosSkipShardSeamFaults|FuzzSkipVsOracle' .

step "benchmark smoke (probes + JSON report, end to end)"
scripts/bench_smoke.sh

step "batch amortization gate (batch surface, per-key accounting)"
scripts/bench_batch.sh

step "adaptive contention gate (controller vs static under skew)"
scripts/bench_adapt.sh

step "index dominance gate (log-time structures vs every list)"
scripts/bench_index.sh

step "chaos smoke (failpoints + retry ladder + watchdog, end to end)"
scripts/chaos_smoke.sh

step "trace smoke (flight recorder: replays, tracecat, exports, streaming)"
scripts/trace_smoke.sh

printf '\nAll checks passed.\n'
