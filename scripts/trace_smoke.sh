#!/usr/bin/env bash
# Trace smoke test: the flight recorder's three consumers end to end —
# the deterministic Figure 2/3 failpoint replays reconstructed into the
# paper's accepted schedules (capture → history → linearizability and
# capture → schedule.Lift), the tracecat offline auditor over the same
# captures, and a live synchrobench run exporting both the compact
# binary and the Chrome trace-event JSON plus interval streaming.
#
# Usage: scripts/trace_smoke.sh
#
# This is a smoke test: throughput is noise, only the round trips are
# asserted. The replay leg is the strong one — it machine-checks that a
# failpoint-steered Figure 2 execution lifts to a VBL-accepted,
# Lazy-rejected schedule, which is the paper's separation claim.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp=$(mktemp -d /tmp/listset-trace.XXXXXX)
trap 'rm -rf "$tmp"' EXIT

bin=/tmp/listset-synchrobench-trace
go build -o "$bin" ./cmd/synchrobench
cat=/tmp/listset-tracecat
go build -o "$cat" ./cmd/tracecat

# Leg 1: deterministic replays. figures -fig replay runs Figure 2/3
# under the tracer and already asserts the full round trip (history
# linearizable, schedule VBL-accepted, Figure 2 Lazy-rejected); here we
# additionally keep the captures for the offline auditor.
echo "trace_smoke: figure replays (capture -> lincheck -> schedule.Lift)"
go run ./cmd/figures -fig replay -traceout "$tmp"

# Leg 2: the offline auditor re-derives linearizability from the
# serialized captures alone — no shared state with the replay process.
echo "trace_smoke: tracecat audit of the replay captures"
"$cat" -lincheck -initial 1 "$tmp/figure2.trace"
"$cat" -lincheck -initial 2,3,4 "$tmp/figure3.trace"

# Leg 3: live capture under chaos. A short fault-injected run with the
# recorder attached must produce a decodable binary capture whose
# summary tracecat can print (wraparound and drops are fine here — the
# ring is sized small on purpose).
echo "trace_smoke: live capture under shipped chaos scenarios"
"$bin" -impl vbl -threads 4 -update-ratio 40 -range 256 \
  -duration 300ms -warmup 50ms -runs 1 \
  -chaos shipped -retry-budget 4 -watchdog 30s \
  -trace "$tmp/bench.trace" >/dev/null
out=$("$cat" "$tmp/bench.trace")
grep -q 'records' <<<"$out" || {
  echo "trace_smoke: tracecat summary lacks a records line:" >&2
  head -5 <<<"$out" >&2
  exit 1
}

# Leg 3b: the same live-capture round trip over the skip list, whose
# probe stream carries the skip-specific events (tower heights, index
# link retries, level-0 restarts) — the recorder and auditor must
# handle the log-time structure's event mix exactly like a flat list's.
echo "trace_smoke: live skip-list capture under shipped chaos scenarios"
"$bin" -impl vbskip -threads 4 -update-ratio 40 -range 4096 \
  -duration 300ms -warmup 50ms -runs 1 \
  -chaos shipped -retry-budget 4 -watchdog 30s \
  -trace "$tmp/skip.trace" >/dev/null
out=$("$cat" -dump "$tmp/skip.trace")
grep -q 'op_' <<<"$out" || {
  echo "trace_smoke: skip-list dump shows no op spans:" >&2
  head -5 <<<"$out" >&2
  exit 1
}

# Leg 4: Chrome trace-event export. A .json suffix selects the Chrome
# format; the file must be valid JSON with at least one complete span.
echo "trace_smoke: Chrome trace-event export"
"$bin" -impl vbl -threads 2 -update-ratio 20 -range 256 \
  -duration 200ms -warmup 50ms -runs 1 \
  -trace "$tmp/bench.json" >/dev/null
grep -q '"ph":"X"' "$tmp/bench.json" || {
  echo "trace_smoke: Chrome export has no complete spans" >&2
  exit 1
}
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$tmp/bench.json" || {
    echo "trace_smoke: Chrome export is not valid JSON" >&2
    exit 1
  }
fi

# Leg 5: interval streaming. Windowed rows go to stdout as JSONL; each
# row carries the stream schema tag and the per-stripe heatmap.
echo "trace_smoke: interval metrics streaming"
rows=$("$bin" -impl vbl -threads 2 -update-ratio 20 -range 256 \
  -duration 300ms -warmup 50ms -runs 1 -stream 100ms | grep 'listset/stream/v1' || true)
if [ -z "$rows" ]; then
  echo "trace_smoke: streaming run emitted no schema-tagged rows" >&2
  exit 1
fi
grep -q '"stripes"' <<<"$rows" || {
  echo "trace_smoke: stream rows lack the per-stripe heatmap" >&2
  exit 1
}

echo "trace_smoke: all trace gates passed"
