#!/usr/bin/env bash
# Adaptive contention-control gate: static vs adaptive sharded VBL under
# skewed load, emitting one JSON array of schema-stable reports to
# BENCH_adapt.json.
#
# Usage: scripts/bench_adapt.sh [outfile]       (default BENCH_adapt.json)
#
# Like the other bench gates this asserts structure, not speed — CI
# numbers are noise (EXPERIMENTS.md has the real protocol). The
# machine-independent claim is the SEAM cell: a hot window parked at the
# key-space midpoint sits at the deep end of shard 7's list, so every
# hot op pays a half-shard traversal that no lock tuning can remove.
# The controller's rebalance splits the hot window across fresh shard
# boundaries, shortening those traversals structurally — a win that
# survives any core count. Gates:
#
#   1. seam skew: adaptive median >= 1.3x static median OR adaptive
#      p999(contains) <= 0.7x static p999 on sharded VBL, 50% updates,
#      range 2*10^4 (measured: ~2.3x throughput on a 1-CPU container);
#   2. uniform tax: adaptive within 5% of static under uniform keys —
#      the controller must be a bystander when there is nothing to fix;
#   3. presence: adaptive rows carry an "adapt" section and the skewed
#      ones record at least one rebalance.
#
# The zipf theta=0.99 pair rides along WITHOUT a ratio gate: zipf's hot
# keys are the smallest keys, which sit at shard 0's list HEAD, so the
# static partition is already near-optimal for traversal length — and
# on uniprocessor CI containers trylock parks ceilings behind
# runtime.Gosched(), removing the backoff lever too. A cost-weighted
# analysis puts the best achievable split at ~1.2x there; gating on it
# would institutionalize a flaky margin. The rows stay in the artifact
# so the numbers are auditable.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_adapt.json}"

go build -o /tmp/listset-synchrobench ./cmd/synchrobench

# Row layout (index: workload x controller) — the gates below index
# into this order, so append new rows at the END:
#   0 uniform            static
#   1 uniform            adaptive
#   2 seam hotspot       static     (hot 64-key window at the midpoint)
#   3 seam hotspot       adaptive   (the 1.3x / 0.7x gate pair is 2,3)
#   4 zipf theta=0.99    static     (informational, no ratio gate)
#   5 zipf theta=0.99    adaptive
rows=(
  ""
  "-adapt"
  "-dist hotspot -hot-lo 9968 -hot-width 64"
  "-dist hotspot -hot-lo 9968 -hot-width 64 -adapt"
  "-dist zipf -theta 0.99"
  "-dist zipf -theta 0.99 -adapt"
)

{
  printf '[\n'
  for i in "${!rows[@]}"; do
    [ "$i" -gt 0 ] && printf ',\n'
    # shellcheck disable=SC2086  # rows are flag lists, word-split on purpose
    /tmp/listset-synchrobench -impl vbl-sharded -shards 16 -threads 4 \
      -range 20000 -update-ratio 50 -retry-budget 32 -sample-every 64 \
      -duration 700ms -warmup 200ms -runs 3 -json ${rows[$i]}
  done
  printf ']\n'
} >"$out"

# Schema sanity: every report tagged and counted; the adaptive rows
# must surface the controller tally and the skewed ones a rebalance.
for key in '"schema": "listset/bench/v1"' '"events"'; do
  n=$(grep -c "$key" "$out") || true
  if [ "$n" -lt "${#rows[@]}" ]; then
    echo "bench_adapt: expected $key in every report of $out (found $n)" >&2
    exit 1
  fi
done
if [ "$(grep -c '"adapt"' "$out")" -lt 3 ]; then
  echo "bench_adapt: adaptive rows are missing the adapt section" >&2
  exit 1
fi
if ! grep -q '"rebalances": [1-9]' "$out"; then
  echo "bench_adapt: no adaptive row recorded a rebalance under skew" >&2
  exit 1
fi

# Ratio gates over medians and contains-p999s (one of each per report,
# in file order; medians shrug off the odd descheduled CI run).
awk -F': ' '
/"median"/ { gsub(/,/, "", $2); m[nm++] = $2 }
/"contains"/ { incontains = 1 }
incontains && /"p999"/ { gsub(/,/, "", $2); p[np++] = $2; incontains = 0 }
END {
  if (nm != '"${#rows[@]}"' || np != '"${#rows[@]}"') {
    printf "bench_adapt: expected %d median and p999 entries, found %d/%d\n", '"${#rows[@]}"', nm, np > "/dev/stderr"
    exit 1
  }
  su = m[0]; au = m[1]; ss = m[2]; as = m[3]
  tput_ok = (as >= 1.3 * ss)
  p999_ok = (p[2] > 0 && p[3] <= 0.7 * p[2])
  if (!tput_ok && !p999_ok) {
    printf "bench_adapt: seam gate failed — adaptive %.0f ops/s vs static %.0f (%.2fx, want >=1.3x) AND p999 %d ns vs %d (want <=0.7x)\n", as, ss, as / ss, p[3], p[2] > "/dev/stderr"
    exit 1
  }
  rel = (su - au) / su; if (rel < 0) rel = -rel
  if (rel > 0.05) {
    printf "bench_adapt: uniform tax %.1f%% (adaptive %.0f vs static %.0f ops/s), want <= 5%%\n", 100 * rel, au, su > "/dev/stderr"
    exit 1
  }
  printf "bench_adapt: gates ok — seam adaptive %.2fx static (p999 %d vs %d ns), uniform tax %.1f%%\n", as / ss, p[3], p[2], 100 * rel
}' "$out"

echo "bench_adapt: wrote $out (${#rows[@]} reports)"
