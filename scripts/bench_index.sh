#!/usr/bin/env bash
# Index dominance gate: the log-time structures against every flat list
# at ranges where O(log n) beats O(n), emitting one JSON array of
# schema-stable reports to BENCH_index.json.
#
# Usage: scripts/bench_index.sh [outfile]       (default BENCH_index.json)
#
# Like bench_smoke.sh this is a gate, not a benchmark — numbers from CI
# machines are noise (see EXPERIMENTS.md for the real protocol). But
# the skip-list claim is asymptotic and machine-independent enough to
# assert even here: at range 2*10^4 a list traversal averages ~5000
# node hops while a skip-list descent does ~30, so the gates:
#
#   1. dominance at range 20000: the best sharded skip cell (plain or
#      arena-backed) strictly exceeds EVERY list — vbl, lazy, harris
#      AND the 16-way sharded VBL, whose per-shard lists still walk
#      ~625 nodes a hop;
#   2. dominance persists at range 200000, sharded skip vs sharded VBL
#      head to head (the gap should widen with the range);
#   3. disabled-probe overhead on vbskip: the default build with probes
#      compiled in but not attached keeps pace with the obsoff build —
#      <= 2% on a quiet machine (DESIGN.md section 15), 15% here for
#      CI-noise headroom.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_index.json}"

go build -o /tmp/listset-synchrobench ./cmd/synchrobench

# Row layout (impl @ range) — the gates below index into this order,
# so append new rows at the END and keep it in sync:
#   0 vbl                      range 20000   (flat list baselines...)
#   1 lazy                     range 20000
#   2 harris                   range 20000
#   3 vbl,    16 shards        range 20000   (the strongest list cell)
#   4 vbskip                   range 20000   (...log-time structures)
#   5 vbskip, arena            range 20000
#   6 vbskip, 16 shards        range 20000
#   7 vbskip, 16 shards, arena range 20000
#   8 vbl,    16 shards        range 200000  (scale-up head-to-head)
#   9 vbskip, 16 shards        range 200000
rows=(
  "-impl vbl"
  "-impl lazy"
  "-impl harris"
  "-impl vbl -shards 16"
  "-impl vbskip"
  "-impl vbskip -arena"
  "-impl vbskip -shards 16"
  "-impl vbskip -shards 16 -arena"
  "-impl vbl -shards 16 -range 200000"
  "-impl vbskip -shards 16 -range 200000"
)

# Common flags first so a row's own flags override them (the flag
# package takes the last occurrence).
{
  printf '[\n'
  for i in "${!rows[@]}"; do
    [ "$i" -gt 0 ] && printf ',\n'
    # shellcheck disable=SC2086  # rows are flag lists, word-split on purpose
    /tmp/listset-synchrobench -threads 4 -range 20000 -update-ratio 20 \
      -duration 700ms -warmup 200ms -runs 3 -json ${rows[$i]}
  done
  printf ']\n'
} >"$out"

# Schema sanity: every report carries the schema tag and events; the
# arena rows must record arena stats.
for key in '"schema": "listset/bench/v1"' '"events"'; do
  n=$(grep -c "$key" "$out") || true
  if [ "$n" -lt "${#rows[@]}" ]; then
    echo "bench_index: expected $key in every report of $out (found $n)" >&2
    exit 1
  fi
done

# Dominance gates over the median throughputs (one "median" per
# report, in file order; the median shrugs off the odd descheduled run
# on shared CI machines).
awk -F': ' '/"median"/ { gsub(/,/, "", $2); m[n++] = $2 + 0 }
END {
  if (n != '"${#rows[@]}"') {
    printf "bench_index: expected %d median entries, found %d\n", '"${#rows[@]}"', n > "/dev/stderr"
    exit 1
  }
  best = (m[6] > m[7]) ? m[6] : m[7]
  split("vbl lazy harris vbl-sharded", lists, " ")
  for (i = 0; i < 4; i++) {
    if (best <= m[i]) {
      printf "bench_index: sharded skip (%.0f ops/s) does not dominate %s (%.0f ops/s) at range 20000\n", best, lists[i+1], m[i] > "/dev/stderr"
      exit 1
    }
  }
  if (m[9] <= m[8]) {
    printf "bench_index: sharded skip (%.0f ops/s) does not dominate sharded vbl (%.0f ops/s) at range 200000\n", m[9], m[8] > "/dev/stderr"
    exit 1
  }
  printf "bench_index: dominance gate ok — sharded skip at %.1fx the best list (range 20000), %.1fx sharded vbl (range 200000)\n", best / m[3], m[9] / m[8]
}' "$out"

# Disabled-probe overhead gate on the skip list: probes compiled in but
# never attached must be the nil-check per site, nothing more. Same
# interleaved best-of-3 protocol as bench_smoke.sh.
go build -tags obsoff -o /tmp/listset-synchrobench-obsoff ./cmd/synchrobench
ocell="-impl vbskip -range 20000 -threads 4 -update-ratio 20 -duration 400ms -warmup 100ms -runs 1 -quiet"
best_on=0
best_off=0
for _ in 1 2 3; do
  # -quiet prints "impl threads workload mean"; the mean is last.
  # shellcheck disable=SC2086
  off=$(/tmp/listset-synchrobench-obsoff $ocell | awk '{ print $NF }')
  # shellcheck disable=SC2086
  on=$(/tmp/listset-synchrobench $ocell | awk '{ print $NF }')
  best_off=$(awk -v a="$best_off" -v b="$off" 'BEGIN { print (b > a) ? b : a }')
  best_on=$(awk -v a="$best_on" -v b="$on" 'BEGIN { print (b > a) ? b : a }')
done
awk -v on="$best_on" -v off="$best_off" 'BEGIN {
  if (off <= 0 || on <= 0) {
    printf "bench_index: probe-overhead gate got non-positive throughput (on=%.0f off=%.0f)\n", on, off > "/dev/stderr"
    exit 1
  }
  if (on < 0.85 * off) {
    printf "bench_index: disabled probes on vbskip (%.0f ops/s) below 0.85x obsoff (%.0f ops/s)\n", on, off > "/dev/stderr"
    exit 1
  }
  printf "bench_index: probe-overhead gate ok — disabled probes at %.2fx obsoff\n", on / off
}'

echo "bench_index: wrote $out (${#rows[@]} reports)"
