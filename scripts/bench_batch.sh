#!/usr/bin/env bash
# Batch amortization gate: short runs of the VBL list's batch surface at
# a real range (2*10^4 keys, 100% updates), emitting one JSON array of
# schema-stable reports to BENCH_batch.json.
#
# Usage: scripts/bench_batch.sh [outfile]       (default BENCH_batch.json)
#
# Like bench_smoke.sh this is a gate, not a benchmark — numbers from CI
# machines are noise (see EXPERIMENTS.md for the real protocol). But the
# batch surface's claim is structural and machine-independent enough to
# assert even here: a batch of k keys walks the list ONCE instead of k
# times, so per-KEY throughput (the harness accounts batched cells per
# key, not per call) must grow with k. The two gates:
#
#   1. amortization: batch=64 per-key throughput >= 3x batch=1 on VBL
#      at range 20000 (measured: ~10-15x; 3x leaves noise headroom);
#   2. no batch tax: batch=1 — every key through the batch entry points
#      in a one-key window — within 10% of the plain per-key loop, so
#      the batch plumbing itself costs nothing.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_batch.json}"

go build -o /tmp/listset-synchrobench ./cmd/synchrobench

# Row layout (index: impl @ batch size) — the gates below index into
# this order, so append new rows at the END and keep it in sync:
#   0 vbl   batch 0   (plain per-key loop: the no-batch-tax baseline)
#   1 vbl   batch 1   (single-key batches through the batch surface)
#   2 vbl   batch 64  (the amortized cell the >=3x gate reads)
#   3 vbl   batch 0, 50% updates + 10% scans of width 200   (exercises
#                        RangeScan + scan accounting end to end)
#   4 vbl   batch 8, zipf theta 0.9   (skewed batches: duplicate-heavy
#                                      after dedup, no gate, schema only)
rows=(
  "-impl vbl -batch 0"
  "-impl vbl -batch 1"
  "-impl vbl -batch 64"
  "-impl vbl -batch 0  -update-ratio 50 -scan 10 -scan-width 200"
  "-impl vbl -batch 8  -dist zipf -theta 0.9"
)

# Common flags first so a row's own flags override them (the flag
# package takes the last occurrence).
{
  printf '[\n'
  for i in "${!rows[@]}"; do
    [ "$i" -gt 0 ] && printf ',\n'
    # shellcheck disable=SC2086  # rows are flag lists, word-split on purpose
    /tmp/listset-synchrobench -threads 4 -range 20000 -update-ratio 100 \
      -duration 900ms -warmup 300ms -runs 3 -json ${rows[$i]}
  done
  printf ']\n'
} >"$out"

# Schema sanity: every report carries the schema tag and events; the
# batched rows must record their batch size, the scan row its scans.
for key in '"schema": "listset/bench/v1"' '"events"'; do
  n=$(grep -c "$key" "$out") || true
  if [ "$n" -lt "${#rows[@]}" ]; then
    echo "bench_batch: expected $key in every report of $out (found $n)" >&2
    exit 1
  fi
done
if ! grep -q '"batch_size": 64' "$out"; then
  echo "bench_batch: no report carries batch_size 64" >&2
  exit 1
fi
if ! grep -q '"scans"' "$out"; then
  echo "bench_batch: scan row recorded no scans" >&2
  exit 1
fi

# Amortization gates over the median per-key throughputs (one "median"
# per report, in file order; the median shrugs off the odd descheduled
# run on shared CI machines).
awk -F': ' '/"median"/ { gsub(/,/, "", $2); m[n++] = $2 }
END {
  if (n != '"${#rows[@]}"') {
    printf "bench_batch: expected %d median entries, found %d\n", '"${#rows[@]}"', n > "/dev/stderr"
    exit 1
  }
  plain = m[0]; one = m[1]; batched = m[2]
  if (batched < 3 * one) {
    printf "bench_batch: batch=64 (%.0f keys/s) is below 3x batch=1 (%.0f keys/s) on vbl at range 20000\n", batched, one > "/dev/stderr"
    exit 1
  }
  rel = (one - plain) / plain; if (rel < 0) rel = -rel
  if (rel > 0.10) {
    printf "bench_batch: batch=1 (%.0f keys/s) deviates %.1f%% from the plain loop (%.0f keys/s), want <= 10%%\n", one, 100 * rel, plain > "/dev/stderr"
    exit 1
  }
  printf "bench_batch: amortization gate ok — batch=64 at %.1fx batch=1, batch=1 within %.1f%% of plain\n", batched / one, 100 * rel
}' "$out"

echo "bench_batch: wrote $out (${#rows[@]} reports)"
