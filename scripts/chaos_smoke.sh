#!/usr/bin/env bash
# Chaos smoke test: short fault-injected runs proving the failure paths
# work end to end — the shipped scenario suite over the paper's three
# protagonists and the sharded façade (with the bounded-retry ladder
# and the liveness watchdog armed), then a deliberate livelock that the
# watchdog must convert into a nonzero exit naming itself.
#
# Usage: scripts/chaos_smoke.sh
#
# This is a smoke test, not a benchmark: it exists so CI exercises the
# chaos layer the way operators will (flags, not Go APIs) and so a
# regression in scenario parsing, retry escalation or watchdog firing
# breaks loudly. Throughput numbers are noise; only completion, the
# retry section's presence, and the watchdog verdicts are asserted.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=/tmp/listset-synchrobench-chaos
go build -o "$bin" ./cmd/synchrobench

# Shipped-suite rows: every implementation family that carries
# failpoints, under the full shipped scenario set. The watchdog is far
# above any healthy stall; it exists here to catch a real livelock.
for impl in vbl lazy harris vbl-sharded vbskip lazyskip vbskip-sharded; do
  echo "chaos_smoke: $impl under shipped scenarios"
  out=$("$bin" -impl "$impl" -threads 4 -update-ratio 40 -range 256 \
    -duration 300ms -warmup 50ms -runs 1 \
    -chaos shipped -retry-budget 4 -watchdog 30s -json)
  grep -q '"chaos"' <<<"$out" || {
    echo "chaos_smoke: $impl report lacks the chaos protocol section" >&2
    exit 1
  }
  grep -q '"retry"' <<<"$out" || {
    echo "chaos_smoke: $impl report lacks the retry section" >&2
    exit 1
  }
done

# Arena pass: the same shipped suite (which arms the epoch-advance
# failpoint) against the arena-backed lists, so fault-stretched grace
# periods and recycling churn run together under the watchdog. The
# watchdog also guards the arena's liveness: a stuck epoch must degrade
# to no-recycling, never to a stalled operation.
for impl in vbl lazy vbskip; do
  echo "chaos_smoke: $impl -arena under shipped scenarios"
  out=$("$bin" -impl "$impl" -arena -threads 4 -update-ratio 40 -range 256 \
    -duration 300ms -warmup 50ms -runs 1 \
    -chaos shipped -retry-budget 4 -watchdog 30s -json)
  grep -q '"arena": true' <<<"$out" || {
    echo "chaos_smoke: $impl -arena report does not carry arena=true" >&2
    exit 1
  }
  grep -q '"epoch-advance:fail' <<<"$out" || {
    echo "chaos_smoke: $impl -arena shipped suite does not arm the epoch-advance failpoint" >&2
    exit 1
  }
done

# Adaptive storm: a 50% validation-failure storm on the sharded VBL
# with the controller armed. The controller must absorb the storm —
# tighten the retry budget (injected failures mirror into the valfail
# counters, so the controller sees the storm exactly as a real one) —
# and the run must complete WITHOUT the watchdog firing. The whole
# control history must be auditable offline: tracecat -dump over the
# flight-recorder capture shows the controller's decisions interleaved
# with the failures that caused them. (Zero warmup so the first tick,
# where the tightening lands, falls inside the traced interval; the
# deep rings keep the one decision record from being overwritten by
# the storm's restart records.)
echo "chaos_smoke: adaptive storm (controller must tighten, watchdog must stay quiet)"
cat=/tmp/listset-tracecat-chaos
go build -o "$cat" ./cmd/tracecat
storm_trace=/tmp/listset-chaos-adapt.trace
out=$("$bin" -impl vbl-sharded -shards 16 -threads 4 -update-ratio 60 \
  -range 256 -duration 150ms -warmup 0s -runs 1 \
  -chaos vbl-lock-next-at:fail:0.5 -retry-budget 8 -watchdog 5s \
  -adapt -adapt-interval 20ms -trace-depth 524288 -trace "$storm_trace" -json)
grep -q '"budget_tighten": [1-9]' <<<"$out" || {
  echo "chaos_smoke: adaptive storm did not tighten the retry budget" >&2
  echo "$out" | grep -A12 '"adapt"' | head -14 >&2 || true
  exit 1
}
# Plain grep, not -q: under pipefail an early-exiting grep -q would
# kill tracecat with SIGPIPE and fail the pipeline on a found match.
"$cat" -dump "$storm_trace" | grep 'adapt_budget_tighten' >/dev/null || {
  echo "chaos_smoke: tracecat dump shows no adapt_budget_tighten decision record" >&2
  exit 1
}
rm -f "$storm_trace"

# The same storm on the sharded skip list: the skip sites mirror their
# injected failures into the valfail counters too, so the controller
# must see a level-0 lock storm on the log-time structure exactly as a
# flat-list one and tighten the budget without a watchdog fire.
echo "chaos_smoke: adaptive skip storm (controller must tighten on vbskip-sharded)"
out=$("$bin" -impl vbskip -shards 16 -threads 4 -update-ratio 60 \
  -range 256 -duration 150ms -warmup 0s -runs 1 \
  -chaos skip-lock-next-at:fail:0.5 -retry-budget 8 -watchdog 5s \
  -adapt -adapt-interval 20ms -json)
grep -q '"budget_tighten": [1-9]' <<<"$out" || {
  echo "chaos_smoke: adaptive skip storm did not tighten the retry budget" >&2
  echo "$out" | grep -A12 '"adapt"' | head -14 >&2 || true
  exit 1
}

# Watchdog gate: a probability-1 validation failure livelocks every
# update; the run must FAIL, quickly, with an error naming the
# watchdog. (|| true captures the exit code under set -e.)
echo "chaos_smoke: seeded livelock (watchdog must fire)"
rc=0
err=$("$bin" -impl vbl -threads 2 -update-ratio 100 -range 64 \
  -duration 10s -warmup 0s -runs 1 \
  -chaos vbl-lock-next-at:fail -retry-budget 2 -watchdog 2s \
  2>&1 >/dev/null) || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "chaos_smoke: seeded livelock exited 0; watchdog did not fire" >&2
  exit 1
fi
grep -qi 'watchdog' <<<"$err" || {
  echo "chaos_smoke: livelock failed without naming the watchdog:" >&2
  head -5 <<<"$err" >&2
  exit 1
}

echo "chaos_smoke: all chaos gates passed"
