package listset

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentDisjointKeys gives each goroutine a disjoint key stripe.
// Operations on disjoint keys must not interfere, so every per-goroutine
// result is exactly predictable and the final contents are exact.
func TestConcurrentDisjointKeys(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const (
			goroutines   = 8
			keysPerGorou = 64
			rounds       = 50
		)
		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				base := int64(g * keysPerGorou)
				for r := 0; r < rounds; r++ {
					for k := int64(0); k < keysPerGorou; k++ {
						v := base + k
						if !s.Insert(v) {
							errs <- "Insert of owned absent key returned false"
							return
						}
						if !s.Contains(v) {
							errs <- "Contains of just-inserted owned key returned false"
							return
						}
					}
					for k := int64(0); k < keysPerGorou; k++ {
						v := base + k
						if r == rounds-1 && k%2 == 0 {
							continue // leave evens in on the final round
						}
						if !s.Remove(v) {
							errs <- "Remove of owned present key returned false"
							return
						}
						if s.Contains(v) {
							errs <- "Contains of just-removed owned key returned true"
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		// Exactly the even keys of every stripe remain.
		want := goroutines * keysPerGorou / 2
		if got := s.Len(); got != want {
			t.Fatalf("final Len = %d, want %d", got, want)
		}
		for g := 0; g < goroutines; g++ {
			for k := int64(0); k < keysPerGorou; k++ {
				v := int64(g*keysPerGorou) + k
				if s.Contains(v) != (k%2 == 0) {
					t.Fatalf("final Contains(%d) = %v, want %v", v, s.Contains(v), k%2 == 0)
				}
			}
		}
	})
}

// TestConcurrentBalance hammers a small shared key range from many
// goroutines and checks the fundamental set invariant: for every key,
// successful inserts and successful removes must alternate, so
//
//	inserts(k) - removes(k) == 1  if k is in the final set
//	inserts(k) - removes(k) == 0  otherwise
//
// A lost update, double insert, or double remove breaks the balance.
func TestConcurrentBalance(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const (
			keyRange   = 32
			goroutines = 8
			opsPerG    = 30000
		)
		var inserts, removes [keyRange]atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerG; i++ {
					k := rng.Intn(keyRange)
					switch rng.Intn(3) {
					case 0:
						if s.Insert(int64(k)) {
							inserts[k].Add(1)
						}
					case 1:
						if s.Remove(int64(k)) {
							removes[k].Add(1)
						}
					default:
						s.Contains(int64(k))
					}
				}
			}(int64(g) + 1)
		}
		wg.Wait()
		for k := 0; k < keyRange; k++ {
			diff := inserts[k].Load() - removes[k].Load()
			var want int64
			if s.Contains(int64(k)) {
				want = 1
			}
			if diff != want {
				t.Fatalf("key %d: inserts-removes = %d, want %d (present=%v)",
					k, diff, want, want == 1)
			}
		}
		// The snapshot must agree with Contains at quiescence.
		snap := s.Snapshot()
		inSnap := map[int64]bool{}
		for i, v := range snap {
			inSnap[v] = true
			if i > 0 && snap[i-1] >= v {
				t.Fatalf("Snapshot not strictly ascending: %v", snap)
			}
		}
		for k := int64(0); k < keyRange; k++ {
			if s.Contains(k) != inSnap[k] {
				t.Fatalf("key %d: Contains=%v but Snapshot membership=%v", k, s.Contains(k), inSnap[k])
			}
		}
	})
}

// TestConcurrentReadersDuringChurn runs wait-free readers concurrently
// with writers that continuously remove and reinsert a band of keys.
// Keys outside the churn band are permanent: readers must always find
// them, no matter what unlinking is in flight around them.
func TestConcurrentReadersDuringChurn(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const (
			permanent  = 64 // keys 0,2,4,... are never touched
			churn      = 64 // odd keys churn
			readers    = 4
			writers    = 4
			roundsPerW = 4000
		)
		for k := int64(0); k < permanent+churn; k++ {
			s.Insert(k)
		}
		var stop atomic.Bool
		var writerWG, readerWG sync.WaitGroup
		errs := make(chan string, readers+writers)
		for w := 0; w < writers; w++ {
			writerWG.Add(1)
			go func(seed int64) {
				defer writerWG.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < roundsPerW; i++ {
					k := int64(rng.Intn(churn))*2 + 1 // odd keys only
					if s.Remove(k) {
						if !s.Insert(k) {
							errs <- "reinsert of removed churn key failed"
							return
						}
					}
				}
			}(int64(w) + 100)
		}
		for r := 0; r < readers; r++ {
			readerWG.Add(1)
			go func(seed int64) {
				defer readerWG.Done()
				rng := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					k := int64(rng.Intn(permanent)) * 2 // even keys only
					if !s.Contains(k) {
						errs <- "permanent key vanished during churn"
						return
					}
				}
			}(int64(r) + 200)
		}
		writerWG.Wait()
		stop.Store(true)
		readerWG.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		for k := int64(0); k < permanent; k++ {
			if !s.Contains(k * 2) {
				t.Fatalf("permanent key %d missing at quiescence", k*2)
			}
		}
	})
}

// TestConcurrentInsertersSameKey has every goroutine insert the same key;
// exactly one may win each generation.
func TestConcurrentInsertersSameKey(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const (
			goroutines  = 8
			generations = 2000
		)
		var wins atomic.Int64
		for gen := 0; gen < generations; gen++ {
			key := int64(gen % 7)
			var wg sync.WaitGroup
			wins.Store(0)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if s.Insert(key) {
						wins.Add(1)
					}
				}()
			}
			wg.Wait()
			if w := wins.Load(); w != 1 {
				t.Fatalf("generation %d: %d successful inserts of the same absent key, want 1", gen, w)
			}
			if !s.Remove(key) {
				t.Fatalf("generation %d: cleanup Remove failed", gen)
			}
		}
	})
}

// TestConcurrentRemoversSameKey mirrors the above for removes.
func TestConcurrentRemoversSameKey(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const (
			goroutines  = 8
			generations = 2000
		)
		var wins atomic.Int64
		for gen := 0; gen < generations; gen++ {
			key := int64(gen % 7)
			if !s.Insert(key) {
				t.Fatalf("generation %d: setup Insert failed", gen)
			}
			var wg sync.WaitGroup
			wins.Store(0)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if s.Remove(key) {
						wins.Add(1)
					}
				}()
			}
			wg.Wait()
			if w := wins.Load(); w != 1 {
				t.Fatalf("generation %d: %d successful removes of the same present key, want 1", gen, w)
			}
		}
	})
}

// TestConcurrentShardBoundaryChurn hammers the seams of a tight
// sharded partition (4 shards over [0, 64), boundaries 16/32/48):
// writers churn the key pairs straddling each boundary plus keys
// outside the focus range (which clamp to the edge shards), while
// readers verify a permanent key in the middle of every shard. A
// routing bug — boundary key owned by two shards or by none — shows up
// as a lost permanent key, a failed owned-key reinsert, or a
// non-ascending snapshot.
func TestConcurrentShardBoundaryChurn(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		if im.NewSharded == nil {
			t.Skip("no sharded form")
		}
		s := im.NewSharded(4, 0, 64)
		permanent := []int64{8, 24, 40, 56} // one mid-shard key per shard
		for _, k := range permanent {
			s.Insert(k)
		}
		// Each writer exclusively owns one boundary-straddling or
		// out-of-range key, so both halves of its churn must succeed.
		churn := []int64{15, 16, 31, 32, 47, 48, -5, 70}
		const rounds = 10000
		var stop atomic.Bool
		var writerWG, readerWG sync.WaitGroup
		errs := make(chan string, len(churn)+2)
		for _, k := range churn {
			writerWG.Add(1)
			go func(k int64) {
				defer writerWG.Done()
				for i := 0; i < rounds; i++ {
					if !s.Insert(k) || !s.Remove(k) {
						errs <- "owned boundary-key churn failed"
						return
					}
				}
			}(k)
		}
		for r := 0; r < 2; r++ {
			readerWG.Add(1)
			go func(seed int64) {
				defer readerWG.Done()
				rng := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					k := permanent[rng.Intn(len(permanent))]
					if !s.Contains(k) {
						errs <- "mid-shard permanent key vanished during boundary churn"
						return
					}
				}
			}(int64(r) + 300)
		}
		writerWG.Wait()
		stop.Store(true)
		readerWG.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		if got, want := s.Len(), len(permanent); got != want {
			t.Fatalf("final Len = %d, want %d", got, want)
		}
		snap := s.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				t.Fatalf("Snapshot not strictly ascending across seams: %v", snap)
			}
		}
	})
}

// TestConcurrentNeighbourUpdates stresses the windows the paper's
// validation arguments are about: adjacent keys inserted and removed
// concurrently, so unlinks race with links into the same window.
func TestConcurrentNeighbourUpdates(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		// Anchor nodes so every churn key has stable far neighbours.
		s.Insert(-100)
		s.Insert(100)
		const rounds = 20000
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Goroutine g churns key g; neighbours churn
				// concurrently, hitting shared windows constantly.
				k := int64(g)
				for i := 0; i < rounds; i++ {
					ok1 := s.Insert(k)
					ok2 := s.Remove(k)
					if ok1 != true && ok2 != true {
						// Each goroutine exclusively owns k, so both must
						// always succeed; sanity-checked below.
						panic("owned-key operation failed")
					}
				}
			}(g)
		}
		wg.Wait()
		if !s.Contains(-100) || !s.Contains(100) {
			t.Fatal("anchor keys lost during neighbour churn")
		}
		for k := int64(0); k < 4; k++ {
			if s.Contains(k) {
				t.Fatalf("churn key %d present after balanced insert/remove rounds", k)
			}
		}
	})
}
