package listset

import (
	"testing"
	"time"

	"listset/internal/core"
	"listset/internal/failpoint"
	"listset/internal/obs"
)

// pauseTimeout bounds every wait on a parked goroutine; well past any
// scheduler hiccup, far under the package test timeout.
const pauseTimeout = 5 * time.Second

// TestFigure2ScheduleVBLAccepts replays the paper's Figure 2: a
// schedule with an unsuccessful insert running concurrently with a
// successful one, which the Lazy list REJECTS — Lazy's failed insert
// still acquires the window locks, so it cannot complete while another
// update holds them — and which VBL ACCEPTS, because a failed insert
// returns from the wait-free traversal without touching a single lock.
//
// The schedule, pinned with a one-shot failpoint pause:
//
//	T1: Insert(2) traverses {1}, then parks at vbl-lock-next-at,
//	    i.e. mid-update, about to lock node 1    (step 1)
//	T2: Insert(1) runs to completion → false     (step 2)  ← the step
//	    Lazy would block on T1's window
//	T1: resumes, links 2 → true                  (step 3)
//
// VBL must accept the interleaving with ZERO restarts: T2 never
// conflicts, T1 never revalidates.
func TestFigure2ScheduleVBLAccepts(t *testing.T) {
	s := core.New()
	fps := failpoint.NewSet()
	probes := obs.NewProbes()
	s.SetFailpoints(fps)
	s.SetProbes(probes)
	if !s.Insert(1) {
		t.Fatal("seeding Insert(1) failed")
	}

	pause, err := fps.PauseAt(failpoint.SiteVBLLockNextAt, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() { done <- s.Insert(2) }() // step 1: parks pre-lock
	if err := pause.AwaitReached(pauseTimeout); err != nil {
		t.Fatal(err)
	}

	// Step 2: with T1 parked mid-update, the failed insert completes
	// inline. If this call could block (as in Lazy) the test would hang.
	if s.Insert(1) {
		t.Fatal("Insert(1) = true with 1 present")
	}

	pause.Resume() // step 3
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Insert(2) = false on a set without 2")
		}
	case <-time.After(pauseTimeout):
		t.Fatal("Insert(2) did not complete after Resume")
	}

	if snap := s.Snapshot(); len(snap) != 2 || snap[0] != 1 || snap[1] != 2 {
		t.Fatalf("final Snapshot = %v, want [1 2]", snap)
	}
	events := probes.Snapshot()
	if n := events[obs.EvRestartPrev] + events[obs.EvRestartHead]; n != 0 {
		t.Fatalf("VBL restarted %d times accepting the Figure 2 schedule; want 0", n)
	}
}

// TestFigure3ScheduleVBLAccepts replays the paper's Figure 3 in two
// phases against VBL.
//
// Phase 1 — the interleaving Harris-Michael REJECTS outright: a
// remove's window changes under it between traversal and commit.
// Harris's commit is an identity CAS on prev's next pointer, so ANY
// change — even one that leaves the removed value's presence intact —
// loses the CAS and forces a restart from head. VBL's value-aware lock
// re-validates by VALUE and restarts locally from prev:
//
//	T1: Remove(2) traverses {2,3,4}, parks at vbl-lock-next-at-value
//	    with window (head, 2)                       (step 1)
//	T2: Insert(1) links 1 between head and 2 → true (step 2)
//	T1: resumes; the value validation sees head.next = 1 ≠ 2, restarts
//	    ONCE from prev, re-finds window (1, 2), unlinks 2 → true
//
// Exactly one prev-restart and no head-restart may occur.
//
// Phase 2 — the Figure 2 flavour of the same schedule on the remove
// path: with an insert parked mid-operation (at its vbl-traverse
// anchor), failed updates of other keys run to completion wait-free.
func TestFigure3ScheduleVBLAccepts(t *testing.T) {
	s := core.New()
	fps := failpoint.NewSet()
	probes := obs.NewProbes()
	s.SetFailpoints(fps)
	s.SetProbes(probes)
	for _, v := range []int64{2, 3, 4} {
		if !s.Insert(v) {
			t.Fatalf("seeding Insert(%d) failed", v)
		}
	}

	// Phase 1.
	base := probes.Snapshot()
	pause, err := fps.PauseAt(failpoint.SiteVBLLockNextAtValue, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() { done <- s.Remove(2) }() // step 1: parks pre-value-lock
	if err := pause.AwaitReached(pauseTimeout); err != nil {
		t.Fatal(err)
	}
	if !s.Insert(1) { // step 2: invalidates the remover's window
		t.Fatal("Insert(1) = false with 1 absent")
	}
	pause.Resume()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Remove(2) = false with 2 present")
		}
	case <-time.After(pauseTimeout):
		t.Fatal("Remove(2) did not complete after Resume")
	}
	events := probes.Snapshot().Sub(base)
	if got := events[obs.EvRestartPrev]; got != 1 {
		t.Fatalf("prev-restarts accepting the Figure 3 schedule = %d, want exactly 1", got)
	}
	if got := events[obs.EvRestartHead]; got != 0 {
		t.Fatalf("head-restarts = %d; VBL must recover locally, not from head", got)
	}

	// Phase 2.
	pause, err = fps.PauseAt(failpoint.SiteVBLTraverse, 4)
	if err != nil {
		t.Fatal(err)
	}
	go func() { done <- s.Insert(4) }() // parks at the attempt anchor
	if err := pause.AwaitReached(pauseTimeout); err != nil {
		t.Fatal(err)
	}
	if s.Insert(3) { // completes wait-free alongside the parked insert
		t.Fatal("Insert(3) = true with 3 present")
	}
	pause.Resume()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Insert(4) = true with 4 present")
		}
	case <-time.After(pauseTimeout):
		t.Fatal("Insert(4) did not complete after Resume")
	}

	want := []int64{1, 3, 4}
	snap := s.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("final Snapshot = %v, want %v", snap, want)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("final Snapshot = %v, want %v", snap, want)
		}
	}
}
