package listset

import (
	"math/rand"
	"sync"
	"testing"

	"listset/internal/lincheck"
)

// TestLinearizability records real concurrent executions of every
// thread-safe implementation and verifies them with the Wing-Gong
// checker — the executable counterpart of the paper's Theorem 1.
func TestLinearizability(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		for trial := 0; trial < 3; trial++ {
			runLinearizabilityTrial(t, im, int64(trial))
		}
	})
}

func runLinearizabilityTrial(t *testing.T, im Impl, trial int64) {
	t.Helper()
	s := im.New()
	// Pre-populate a known initial state: even keys present.
	const keyRange = 12
	initial := map[int64]bool{}
	for k := int64(0); k < keyRange; k += 2 {
		s.Insert(k)
		initial[k] = true
	}

	rec := lincheck.NewRecorder()
	const goroutines = 6
	sessions := make([]*lincheck.Session, goroutines)
	for i := range sessions {
		sessions[i] = rec.NewSession(s)
	}
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(seed int64, sess *lincheck.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 1500; j++ {
				k := int64(rng.Intn(keyRange))
				switch rng.Intn(4) {
				case 0:
					sess.Insert(k)
				case 1:
					sess.Remove(k)
				default:
					sess.Contains(k)
				}
			}
		}(trial*100+int64(i), sess)
	}
	wg.Wait()
	if err := lincheck.Check(rec.History(), initial); err != nil {
		t.Fatalf("trial %d: %v", trial, err)
	}
}

// TestLinearizabilitySharded records concurrent executions against
// sharded façades whose partition is squeezed into the trial's 12-key
// range (4 shards over [0, 12), spans of 4), so operations race on
// both sides of every shard seam. The registry's *-sharded entries are
// already checked by TestLinearizability, but with their wide default
// focus range all 12 keys fall in one shard; this pins the composition
// argument (DESIGN.md §8) where it actually bites.
func TestLinearizabilitySharded(t *testing.T) {
	shardedImpls := []Impl{
		{Name: "vbl-sharded-tight", New: func() Set { return NewVBLShardedRange(4, 0, 12) }},
		{Name: "lazy-sharded-tight", New: func() Set { return NewLazyShardedRange(4, 0, 12) }},
		{Name: "harris-sharded-tight", New: func() Set { return NewHarrisShardedRange(4, 0, 12) }},
	}
	for _, im := range shardedImpls {
		im := im
		t.Run(im.Name, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				runLinearizabilityTrial(t, im, int64(trial))
			}
		})
	}
}

// TestLinearizabilityHighContention narrows the key range to 3 so nearly
// every operation contends — the regime in which validation bugs (lost
// updates, phantom members) would surface.
func TestLinearizabilityHighContention(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		rec := lincheck.NewRecorder()
		const goroutines = 8
		sessions := make([]*lincheck.Session, goroutines)
		for i := range sessions {
			sessions[i] = rec.NewSession(s)
		}
		var wg sync.WaitGroup
		for i, sess := range sessions {
			wg.Add(1)
			go func(seed int64, sess *lincheck.Session) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for j := 0; j < 1000; j++ {
					k := int64(rng.Intn(3))
					switch rng.Intn(3) {
					case 0:
						sess.Insert(k)
					case 1:
						sess.Remove(k)
					default:
						sess.Contains(k)
					}
				}
			}(int64(i)+1000, sess)
		}
		wg.Wait()
		if err := lincheck.Check(rec.History(), nil); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLinearizabilityUpdateOnly removes the read smokescreen: inserts
// and removes only, over two keys, where every anomaly is structural.
func TestLinearizabilityUpdateOnly(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		rec := lincheck.NewRecorder()
		const goroutines = 8
		sessions := make([]*lincheck.Session, goroutines)
		for i := range sessions {
			sessions[i] = rec.NewSession(s)
		}
		var wg sync.WaitGroup
		for i, sess := range sessions {
			wg.Add(1)
			go func(seed int64, sess *lincheck.Session) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for j := 0; j < 1200; j++ {
					k := int64(rng.Intn(2))
					if rng.Intn(2) == 0 {
						sess.Insert(k)
					} else {
						sess.Remove(k)
					}
				}
			}(int64(i)+2000, sess)
		}
		wg.Wait()
		if err := lincheck.Check(rec.History(), nil); err != nil {
			t.Fatal(err)
		}
	})
}
