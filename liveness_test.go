package listset

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeadlockFreedom is the executable counterpart of the paper's
// deadlock-freedom observation (§3.2): under saturating contention on a
// tiny key range, system-wide progress must continue — a watchdog
// requires the global completed-operations counter to keep moving until
// every worker finishes its quota. A lock-ordering bug or a lost-wakeup
// spin would freeze the counter and fail the test within the timeout.
func TestDeadlockFreedom(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		const (
			goroutines = 12 // oversubscribed on any host
			opsPerG    = 8000
			keyRange   = 4 // nearly every operation conflicts
		)
		var completed atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerG; i++ {
					k := int64(rng.Intn(keyRange))
					switch rng.Intn(3) {
					case 0:
						s.Insert(k)
					case 1:
						s.Remove(k)
					default:
						s.Contains(k)
					}
					completed.Add(1)
				}
			}(int64(g) + 77)
		}

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()

		// Watchdog: the counter must advance between consecutive checks.
		last := int64(-1)
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		stalls := 0
		for {
			select {
			case <-done:
				if got := completed.Load(); got != goroutines*opsPerG {
					t.Fatalf("completed %d ops, want %d", got, goroutines*opsPerG)
				}
				return
			case <-ticker.C:
				now := completed.Load()
				if now == last {
					stalls++
					if stalls >= 40 { // 10s of zero progress
						buf := make([]byte, 1<<16)
						n := runtime.Stack(buf, true)
						t.Fatalf("no progress for 10s at %d/%d ops — deadlock?\n%s",
							now, goroutines*opsPerG, buf[:n])
					}
				} else {
					stalls = 0
				}
				last = now
			}
		}
	})
}

// TestOversubscribedProgress pushes far more goroutines than cores
// through a mixed workload; every goroutine must finish (no starvation
// of any single worker) within the test timeout.
func TestOversubscribedProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("oversubscription soak skipped in -short mode")
	}
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		goroutines := 16 * runtime.GOMAXPROCS(0)
		if goroutines > 128 {
			goroutines = 128
		}
		var wg sync.WaitGroup
		var finished atomic.Int64
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 2000; i++ {
					k := int64(rng.Intn(16))
					switch rng.Intn(3) {
					case 0:
						s.Insert(k)
					case 1:
						s.Remove(k)
					default:
						s.Contains(k)
					}
				}
				finished.Add(1)
			}(int64(g) + 500)
		}
		wg.Wait()
		if got := finished.Load(); got != int64(goroutines) {
			t.Fatalf("%d of %d workers finished", got, goroutines)
		}
	})
}
