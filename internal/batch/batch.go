// Package batch holds the pooled scratch buffers the batch operations
// (InsertAll/RemoveAll/ContainsAll/Load) share: every batch entry point
// sorts and deduplicates its keys before the one-pass multi-window
// traversal, and doing that into a pooled buffer keeps the steady-state
// batch path allocation-free — the same discipline the arena
// (internal/mem) applies to list nodes, applied to the harness-side
// scratch.
//
// The unit is a Buf, not a bare slice: sync.Pool stores pointers, and
// returning a bare []int64 through an interface would re-box the slice
// header on every Put. A Buf round-trips as one stable pointer.
package batch

import (
	"slices"
	"sync"
)

// Buf is a pooled scratch key buffer. Use Get (or Prep) to obtain one
// and Put to return it; K is valid until Put.
type Buf struct {
	// K is the scratch key slice. Callers may re-slice it freely; Put
	// restores it from the retained backing array.
	K []int64
}

var pool = sync.Pool{
	New: func() any { return &Buf{K: make([]int64, 0, 128)} },
}

// Get returns an empty scratch buffer (len(K) == 0) from the pool.
func Get() *Buf {
	b := pool.Get().(*Buf)
	b.K = b.K[:0]
	return b
}

// Put returns b to the pool. b.K must not be used afterwards.
func (b *Buf) Put() {
	pool.Put(b)
}

// Prep returns a pooled buffer holding a copy of keys, sorted
// ascending with duplicates removed — the canonical form every batch
// operation works on. The input is not modified. Release the result
// with Put.
func Prep(keys []int64) *Buf {
	b := Get()
	b.K = append(b.K, keys...)
	slices.Sort(b.K)
	b.K = slices.Compact(b.K)
	return b
}

// Span returns the sub-slice of ks (which must be sorted ascending)
// whose keys fall in the half-open range [lo, hi), found by binary
// search. The result aliases ks; no copy is made. This is how the
// sharded façade splits one sorted batch into per-shard sub-batches.
func Span(ks []int64, lo, hi int64) []int64 {
	i, _ := slices.BinarySearch(ks, lo)
	j, _ := slices.BinarySearch(ks, hi)
	return ks[i:j]
}
