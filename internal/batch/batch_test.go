package batch

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestPrepSortsAndDedups(t *testing.T) {
	in := []int64{5, 1, 5, 3, 1, 9, 3, 3}
	b := Prep(in)
	defer b.Put()
	want := []int64{1, 3, 5, 9}
	if !slices.Equal(b.K, want) {
		t.Fatalf("Prep(%v).K = %v, want %v", in, b.K, want)
	}
	// The input must be untouched.
	if !slices.Equal(in, []int64{5, 1, 5, 3, 1, 9, 3, 3}) {
		t.Fatalf("Prep modified its input: %v", in)
	}
}

func TestPrepEmpty(t *testing.T) {
	b := Prep(nil)
	defer b.Put()
	if len(b.K) != 0 {
		t.Fatalf("Prep(nil).K = %v, want empty", b.K)
	}
}

func TestPrepQuick(t *testing.T) {
	f := func(keys []int64) bool {
		b := Prep(keys)
		defer b.Put()
		if !slices.IsSorted(b.K) {
			return false
		}
		seen := map[int64]bool{}
		for _, k := range b.K {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		// Same key set as the input.
		for _, k := range keys {
			if !seen[k] {
				return false
			}
		}
		return len(seen) <= len(keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpan(t *testing.T) {
	ks := []int64{1, 3, 5, 7, 9}
	cases := []struct {
		lo, hi int64
		want   []int64
	}{
		{0, 10, []int64{1, 3, 5, 7, 9}},
		{3, 8, []int64{3, 5, 7}},
		{3, 7, []int64{3, 5}}, // hi exclusive
		{4, 5, []int64{}},     // empty window between keys
		{10, 20, []int64{}},   // past the end
		{-5, 1, []int64{}},    // before the start, hi exclusive
		{-5, 2, []int64{1}},   //
		{9, 10, []int64{9}},   // exactly the last key
		{5, 5, []int64{}},     // degenerate range
	}
	for _, c := range cases {
		got := Span(ks, c.lo, c.hi)
		if len(got) != len(c.want) || (len(got) > 0 && !slices.Equal(got, c.want)) {
			t.Errorf("Span(%v, %d, %d) = %v, want %v", ks, c.lo, c.hi, got, c.want)
		}
	}
}

// TestSpanCoversPartition checks that splitting a sorted batch at a
// boundary list loses and duplicates nothing — the property the
// sharded façade's batch split depends on.
func TestSpanCoversPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ks := make([]int64, 200)
	for i := range ks {
		ks[i] = int64(rng.Intn(1000))
	}
	b := Prep(ks)
	defer b.Put()
	bounds := []int64{0, 128, 256, 512, 640, 1024}
	var rebuilt []int64
	for i := 0; i+1 < len(bounds); i++ {
		rebuilt = append(rebuilt, Span(b.K, bounds[i], bounds[i+1])...)
	}
	if !slices.Equal(rebuilt, b.K) {
		t.Fatalf("partition by spans lost keys: got %d, want %d", len(rebuilt), len(b.K))
	}
}

func TestBufReuse(t *testing.T) {
	b := Get()
	b.K = append(b.K, 1, 2, 3)
	b.Put()
	c := Get()
	defer c.Put()
	if len(c.K) != 0 {
		t.Fatalf("recycled Buf not reset: K = %v", c.K)
	}
}

func BenchmarkPrep64(b *testing.B) {
	keys := make([]int64, 64)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = int64(rng.Intn(20000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Prep(keys)
		buf.Put()
	}
}
