package lazy

import (
	"testing"
	"unsafe"
)

// TestSentinelLayout pins the cache-line padding of the sentinel
// allocation (see the core list's twin test): whole cache lines, hot
// fields first, head and tail on distinct lines.
func TestSentinelLayout(t *testing.T) {
	if sz := unsafe.Sizeof(paddedNode{}); sz%cacheLine != 0 {
		t.Fatalf("paddedNode size %d is not a multiple of the %d-byte cache line", sz, cacheLine)
	}
	var p paddedNode
	if off := unsafe.Offsetof(p.node); off != 0 {
		t.Fatalf("embedded node at offset %d, want 0 (padding must trail the hot fields)", off)
	}
	l := New()
	h := uintptr(unsafe.Pointer(l.head))
	tl := uintptr(unsafe.Pointer(l.tail))
	if h/cacheLine == tl/cacheLine {
		t.Fatalf("head (%#x) and tail (%#x) share a cache line", h, tl)
	}
}
