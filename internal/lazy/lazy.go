// Package lazy implements the Lazy Linked List of Heller, Herlihy,
// Luchangco, Moir, Scherer and Shavit (OPODIS 2006), the lock-based
// state-of-the-art baseline the paper compares VBL against.
//
// The algorithm follows "The Art of Multiprocessor Programming", ch. 9:
// traversals are wait-free; an update locates the window (prev, curr),
// locks BOTH nodes, and only then validates that prev is not marked, curr
// is not marked, and prev.next == curr. Crucially — and this is the
// concurrency sub-optimality the paper exploits (Figure 2) — the locks
// are acquired before the operation knows whether it will modify the
// list at all: a failed insert (value already present) and a failed
// remove (value absent) still serialize on prev's and curr's locks.
//
// Removal is lazy: the node is first marked (logical deletion), then
// unlinked (physical deletion); contains checks the mark of the node it
// lands on.
package lazy

import (
	"sync/atomic"
	"unsafe"

	"listset/internal/failpoint"
	"listset/internal/mem"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// Sentinel values stored in the head and tail nodes.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

type node struct {
	val    int64
	next   atomic.Pointer[node]
	marked atomic.Bool
	lock   trylock.SpinLock
}

// cacheLine is the coherence granularity the sentinel layout targets.
const cacheLine = 64

// paddedNode rounds a node up to a whole number of cache lines; the
// two sentinels are allocated this way so the head's hot fields (next,
// lock) never share a line with the tail or a neighbouring allocation
// — in particular with another list's head when many Lazy lists sit
// side by side behind the internal/shard partitioner.
type paddedNode struct {
	node
	_ [(cacheLine - unsafe.Sizeof(node{})%cacheLine) % cacheLine]byte
}

// newSentinel allocates one cache-line-padded sentinel node.
func newSentinel(v int64) *node {
	p := &paddedNode{node: node{val: v}}
	return &p.node
}

// List is the Lazy Linked List.
type List struct {
	head *node
	tail *node

	// probes, when non-nil, receives contention events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the chaos failpoints (internal/failpoint).
	fps *failpoint.Set
	// arena, when non-nil, supplies nodes from slab-backed per-worker
	// free lists and recycles unlinked nodes after the epoch-based
	// grace period (internal/mem). Nil delegates lifetimes to the GC.
	arena *mem.Arena[node]

	// budget is the failed-validation retry budget K (0 = unbounded
	// retries), atomic so the adaptive controller (internal/adapt) can
	// retune it mid-run; retry aggregates what the escalators saw.
	// Lazy's native restart already goes to head, so the ladder's only
	// live stage is the backoff, which begins at K.
	budget atomic.Int32
	retry  obs.RetryCounter

	// backoff, when non-nil, supplies the per-list spin bounds for
	// contended window-lock acquisitions; nil means package defaults.
	backoff *trylock.Backoff
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the list between goroutines.
func (l *List) SetProbes(p *obs.Probes) {
	l.probes = p
	if a := l.arena; a != nil {
		a.SetProbes(p)
	}
}

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the list between goroutines.
func (l *List) SetFailpoints(fp *failpoint.Set) {
	l.fps = fp
	if a := l.arena; a != nil {
		a.SetFailpoints(fp)
	}
}

// SetRetryBudget sets the failed-validation retry budget K: past K
// restarts an update backs off between attempts. 0 restores unbounded
// retries. The budget is atomic and may be retuned while the list is
// shared; in-flight operations keep the budget they started with.
func (l *List) SetRetryBudget(k int) { l.budget.Store(int32(k)) }

// SetBackoff attaches (or with nil detaches) the per-list backoff
// policy for contended window-lock acquisitions. Call before sharing
// the list; retuning the attached policy afterwards is safe.
func (l *List) SetBackoff(b *trylock.Backoff) { l.backoff = b }

// RetryStats reports the aggregated restart/escalation tallies.
func (l *List) RetryStats() obs.RetryStats { return l.retry.Stats() }

// New returns an empty Lazy list.
func New() *List {
	l := &List{
		head: newSentinel(MinSentinel),
		tail: newSentinel(MaxSentinel),
	}
	l.head.next.Store(l.tail)
	return l
}

// find traverses from head without locks or mark checks and returns the
// window (prev, curr) with prev.val < v <= curr.val.
func (l *List) find(v int64) (prev, curr *node) {
	prev = l.head
	curr = prev.next.Load()
	for curr.val < v {
		prev = curr
		curr = curr.next.Load()
	}
	return prev, curr
}

// validate re-checks the locked window: neither node is marked and they
// are still adjacent. Per the original algorithm this runs AFTER the
// locks are taken.
func validate(prev, curr *node) bool {
	return !prev.marked.Load() && !curr.marked.Load() && prev.next.Load() == curr
}

// lockWindow locks prev then curr, counting contended acquisitions
// when probes are attached. It returns holding both locks by contract;
// the callers release them on every path.
func (l *List) lockWindow(prev, curr *node) {
	bo := l.backoff
	if p := l.probes; obs.On(p) {
		if prev.lock.LockContendedWith(bo) {
			p.Inc(obs.EvTryLockContended, prev.val)
		}
		if curr.lock.LockContendedWith(bo) {
			p.Inc(obs.EvTryLockContended, curr.val)
		}
		return
	}
	prev.lock.LockWith(bo)
	curr.lock.LockWith(bo)
}

// countValFail classifies a failed window validation for the probe
// report: a marked node (logical deletion won the race) or a changed
// successor. The re-read is racy; a counter tolerates that. Every Lazy
// validation failure restarts from head — the locality the paper's VBL
// recovers with its prev-restart.
func (l *List) countValFail(prev, curr *node, v int64) {
	if p := l.probes; obs.On(p) {
		if prev.marked.Load() || curr.marked.Load() {
			p.Inc(obs.EvValFailDeleted, curr.val)
		} else {
			p.Inc(obs.EvValFailSucc, curr.val)
		}
		p.Inc(obs.EvRestartHead, v)
	}
}

// Contains reports whether v is in the set. Wait-free.
func (l *List) Contains(v int64) bool {
	g := l.arena.Pin()
	curr := l.head
	for curr.val < v {
		curr = curr.next.Load()
	}
	found := curr.val == v && !curr.marked.Load()
	g.Unpin()
	return found
}

// Insert adds v to the set and reports whether v was absent.
func (l *List) Insert(v int64) bool {
	g := l.arena.Pin()
	esc := obs.Escalator{Budget: int(l.budget.Load()), HeadNative: true}
	// The speculative node is allocated once and reused across failed
	// validations; it stays unpublished until the successful link.
	var n *node
	for {
		prev, curr := l.find(v)
		l.lockWindow(prev, curr)
		ok := validate(prev, curr)
		if fp := l.fps; failpoint.On(fp) && ok && fp.Fail(failpoint.SiteLazyValidate, v) {
			ok = false
		}
		if !ok {
			curr.lock.Unlock()
			prev.lock.Unlock()
			l.countValFail(prev, curr, v)
			esc.Failed(l.probes, v)
			continue
		}
		if curr.val == v {
			// Value already present — but the locks were taken anyway.
			curr.lock.Unlock()
			prev.lock.Unlock()
			if n != nil && g.Active() {
				g.Free(n) // never published: no grace period needed
			}
			esc.Done(&l.retry)
			g.Unpin()
			return false
		}
		if n == nil {
			n = l.newNode(g, v)
		}
		n.next.Store(curr)
		prev.next.Store(n)
		curr.lock.Unlock()
		prev.lock.Unlock()
		esc.Done(&l.retry)
		g.Unpin()
		return true
	}
}

// Remove deletes v from the set and reports whether v was present.
func (l *List) Remove(v int64) bool {
	g := l.arena.Pin()
	esc := obs.Escalator{Budget: int(l.budget.Load()), HeadNative: true}
	for {
		prev, curr := l.find(v)
		l.lockWindow(prev, curr)
		ok := validate(prev, curr)
		if fp := l.fps; failpoint.On(fp) && ok && fp.Fail(failpoint.SiteLazyValidate, v) {
			ok = false
		}
		if !ok {
			curr.lock.Unlock()
			prev.lock.Unlock()
			l.countValFail(prev, curr, v)
			esc.Failed(l.probes, v)
			continue
		}
		if curr.val != v {
			curr.lock.Unlock()
			prev.lock.Unlock()
			esc.Done(&l.retry)
			g.Unpin()
			return false
		}
		// The mark+unlink run under both locks and must not be skipped,
		// so the site is Do-only: delays and pauses, never forced failure.
		if fp := l.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteUnlink, v)
		}
		curr.marked.Store(true)           // logical deletion
		prev.next.Store(curr.next.Load()) // physical unlink
		curr.lock.Unlock()
		prev.lock.Unlock()
		if p := l.probes; obs.On(p) {
			p.Inc(obs.EvLogicalDelete, v)
			p.Inc(obs.EvPhysicalUnlink, v)
		}
		// Retire only after curr's lock is released: the node's next
		// life must find its lock free. The unlink under both locks
		// makes this the node's unique retirement.
		if g.Active() {
			g.Retire(curr)
		}
		esc.Done(&l.retry)
		g.Unpin()
		return true
	}
}

// Len counts the unmarked elements by traversal; exact at quiescence.
func (l *List) Len() int {
	g := l.arena.Pin()
	n := 0
	for curr := l.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	g.Unpin()
	return n
}

// Snapshot returns the unmarked elements in ascending order; exact at
// quiescence.
func (l *List) Snapshot() []int64 {
	g := l.arena.Pin()
	var out []int64
	for curr := l.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		if !curr.marked.Load() {
			out = append(out, curr.val)
		}
	}
	g.Unpin()
	return out
}
