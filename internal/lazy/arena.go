package lazy

import (
	"listset/internal/mem"
	"listset/internal/obs"
)

// Arena-backed node lifetimes for the Lazy list (internal/mem): slab
// allocation, per-worker free lists, epoch-based reclamation.
//
// Why reuse is safe here (the same argument as core's VBL, adapted):
// Lazy is lock-based — both structural writes (link, mark+unlink)
// happen under prev's and curr's locks after a validation that
// re-reads the *current* marks and adjacency. No conclusion is ever
// drawn from remembered pointer identity without the locks held, so a
// recycled node reappearing at an old address cannot fool an update
// the way it fools Harris's unlink CAS. The wait-free traversals
// (find, Contains, Len, Snapshot) are the remaining hazard: they
// dereference nodes with no locks at all. The epoch pin closes it —
// every operation pins for its whole duration, and a retired node is
// recycled only two epochs later, when every pin that could have
// reached it has provably unpinned.

// NewArena returns an empty Lazy list with arena-backed node
// lifetimes: inserts draw nodes from slab-backed per-worker free
// lists, removed nodes recycle after the epoch grace period.
func NewArena() *List {
	l := New()
	l.arena = mem.New[node](mem.Options{})
	return l
}

// ArenaStats reports the arena's allocation/reclamation tallies and
// whether an arena is attached at all.
func (l *List) ArenaStats() (mem.Stats, bool) {
	if a := l.arena; a != nil {
		return a.Stats(), true
	}
	return mem.Stats{}, false
}

// newNode returns an initialized, unpublished node holding v: heap
// allocated in GC mode, slab-carved or recycled in arena mode.
func (l *List) newNode(g mem.Guard[node], v int64) *node {
	if !g.Active() {
		if p := l.probes; obs.On(p) {
			p.Inc(obs.EvNodeAlloc, v)
		}
		return &node{val: v}
	}
	n := g.Get()
	// Re-initialize what the node's previous life left behind. The
	// writes are unobservable: the node is unreachable until the
	// successful prev.next store publishes it, and the grace period
	// guarantees no traversal from its previous life still holds it.
	//lint:ignore valimmutable re-initializing a recycled node before publication; the arena's two-epoch grace period guarantees exclusivity
	n.val = v
	n.marked.Store(false)
	n.next.Store(nil)
	return n
}
