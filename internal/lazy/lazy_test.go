package lazy

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestValidateSemantics(t *testing.T) {
	l := New()
	l.Insert(10)
	prev, curr := l.find(10)
	if !validate(prev, curr) {
		t.Fatal("fresh window failed validation")
	}
	// Window broken by an intervening insert: prev.next != curr.
	l.Insert(5)
	if validate(prev, curr) {
		t.Fatal("validation passed though a node was inserted into the window")
	}
	// Marked curr fails validation even with adjacency restored.
	prev2, curr2 := l.find(10)
	l.Remove(10)
	if !curr2.marked.Load() {
		t.Fatal("removed node not marked")
	}
	if validate(prev2, curr2) {
		t.Fatal("validation passed on marked curr")
	}
}

func TestLogicalThenPhysicalDeletion(t *testing.T) {
	l := New()
	l.Insert(10)
	l.Insert(20)
	_, n10 := l.find(10)
	if !l.Remove(10) {
		t.Fatal("Remove(10) failed")
	}
	if !n10.marked.Load() {
		t.Fatal("node not logically deleted")
	}
	// Physically unlinked: head's successor skips to 20.
	if got := l.head.next.Load().val; got != 20 {
		t.Fatalf("head.next.val = %d, want 20", got)
	}
	// The unlinked node still points into the list (readers parked on it
	// can finish their traversal).
	if got := n10.next.Load().val; got != 20 {
		t.Fatalf("unlinked node's next.val = %d, want 20", got)
	}
}

func TestContainsChecksMark(t *testing.T) {
	l := New()
	l.Insert(10)
	_, n10 := l.find(10)
	// Simulate the window where a remover has marked but not yet
	// unlinked: contains must already report absence (the mark is the
	// linearization point of remove in the Lazy list).
	n10.marked.Store(true)
	if l.Contains(10) {
		t.Fatal("Contains(10) = true for marked-but-linked node")
	}
	n10.marked.Store(false)
	if !l.Contains(10) {
		t.Fatal("Contains(10) = false after unmarking")
	}
}

func TestFindWindow(t *testing.T) {
	l := New()
	for _, v := range []int64{10, 20, 30} {
		l.Insert(v)
	}
	cases := []struct {
		v          int64
		prev, curr int64
	}{
		{5, MinSentinel, 10},
		{10, MinSentinel, 10},
		{15, 10, 20},
		{30, 20, 30},
		{35, 30, MaxSentinel},
	}
	for _, c := range cases {
		p, cu := l.find(c.v)
		if p.val != c.prev || cu.val != c.curr {
			t.Fatalf("find(%d) = (%d, %d), want (%d, %d)", c.v, p.val, cu.val, c.prev, c.curr)
		}
	}
}

func TestQuickEquivalentToMap(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(prog []op) bool {
		l := New()
		oracle := map[int64]bool{}
		for _, o := range prog {
			k := int64(o.Key % 16)
			switch o.Kind % 3 {
			case 0:
				if l.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if l.Remove(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if l.Contains(k) != oracle[k] {
					return false
				}
			}
		}
		return l.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSmokeLazy(t *testing.T) {
	l := New()
	const keyRange = 24
	iterations := 20000
	if testing.Short() {
		iterations = 2000
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				k := int64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					l.Insert(k)
				case 1:
					l.Remove(k)
				default:
					l.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Quiescent invariants: reachable chain strictly sorted, unmarked,
	// all locks free.
	prev := l.head
	for curr := l.head.next.Load(); ; curr = curr.next.Load() {
		if curr.marked.Load() {
			t.Fatal("reachable node marked at quiescence")
		}
		if curr.val <= prev.val {
			t.Fatalf("order violation: %d after %d", curr.val, prev.val)
		}
		if curr.val == MaxSentinel {
			break
		}
		if curr.lock.Locked() {
			t.Fatal("reachable node lock held at quiescence")
		}
		prev = curr
	}
}
