package lazy

import (
	"listset/internal/batch"
	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Batched and ranged operations for the Lazy list: the same one-pass
// multi-window protocol as core's VBL batch (see core/batch.go for the
// anchor argument), adapted to Lazy's discipline — the window is
// locked BOTH sides (prev and curr) before the validation, and a
// failed validation restarts from head, because Lazy has no
// value-aware validation to make a stale anchor safe to re-validate
// locally. The anchor still pays off on the common success path: after
// a served key the pass resumes from the still-adjacent window edge
// instead of from head.

// findFrom traverses from the anchor — or from head if the anchor has
// been marked since the caller last held it — and returns the window
// (prev, curr) with prev.val < v <= curr.val.
func (l *List) findFrom(anchor *node, v int64) (prev, curr *node) {
	prev = anchor
	if prev.marked.Load() {
		prev = l.head
	}
	curr = prev.next.Load()
	for curr.val < v {
		prev = curr
		curr = curr.next.Load()
	}
	return prev, curr
}

// InsertAll adds every key of keys to the set and returns how many
// were absent (and are now present). The batch is sorted and
// deduplicated first; each key's insert linearizes individually, in
// ascending key order, within the call.
func (l *List) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := l.arena.Pin()
	inserted := 0
	anchor := l.head
	i := 0
	for i < len(ks) {
		v := ks[i]
		esc := obs.Escalator{Budget: int(l.budget.Load()), HeadNative: true}
		for {
			prev, curr := l.findFrom(anchor, v)
			l.lockWindow(prev, curr)
			ok := validate(prev, curr)
			if fp := l.fps; failpoint.On(fp) && ok && fp.Fail(failpoint.SiteLazyValidate, v) {
				ok = false
			}
			if !ok {
				curr.lock.Unlock()
				prev.lock.Unlock()
				l.countValFail(prev, curr, v)
				if p := l.probes; obs.On(p) {
					p.Inc(obs.EvBatchWindowRestart, v)
				}
				esc.Failed(l.probes, v)
				anchor = l.head // Lazy's native restart locality
				continue
			}
			if curr.val == v {
				curr.lock.Unlock()
				prev.lock.Unlock()
				esc.Done(&l.retry)
				anchor = curr
				i++
				break
			}
			// Window (prev, curr) is locked and validated: every batch
			// key in (prev.val, curr.val) is absent. Build the run as a
			// private ascending chain and publish it with one store.
			n := l.newNode(g, v)
			n.next.Store(curr)
			chainHead, chainTail := n, n
			inserted++
			i++
			for i < len(ks) && ks[i] < curr.val {
				m := l.newNode(g, ks[i])
				m.next.Store(curr)
				chainTail.next.Store(m)
				chainTail = m
				inserted++
				i++
			}
			prev.next.Store(chainHead)
			curr.lock.Unlock()
			prev.lock.Unlock()
			esc.Done(&l.retry)
			anchor = chainTail
			break
		}
	}
	g.Unpin()
	b.Put()
	return inserted
}

// RemoveAll deletes every key of keys from the set and returns how
// many were present (and are now absent). The batch is sorted and
// deduplicated first; each key's remove linearizes individually, in
// ascending key order, within the call.
func (l *List) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := l.arena.Pin()
	removed := 0
	anchor := l.head
	for _, v := range ks {
		esc := obs.Escalator{Budget: int(l.budget.Load()), HeadNative: true}
		for {
			prev, curr := l.findFrom(anchor, v)
			l.lockWindow(prev, curr)
			ok := validate(prev, curr)
			if fp := l.fps; failpoint.On(fp) && ok && fp.Fail(failpoint.SiteLazyValidate, v) {
				ok = false
			}
			if !ok {
				curr.lock.Unlock()
				prev.lock.Unlock()
				l.countValFail(prev, curr, v)
				if p := l.probes; obs.On(p) {
					p.Inc(obs.EvBatchWindowRestart, v)
				}
				esc.Failed(l.probes, v)
				anchor = l.head
				continue
			}
			if curr.val != v {
				curr.lock.Unlock()
				prev.lock.Unlock()
				esc.Done(&l.retry)
				anchor = prev
				break
			}
			if fp := l.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteUnlink, v)
			}
			curr.marked.Store(true)           // logical deletion
			prev.next.Store(curr.next.Load()) // physical unlink
			curr.lock.Unlock()
			prev.lock.Unlock()
			if p := l.probes; obs.On(p) {
				p.Inc(obs.EvLogicalDelete, v)
				p.Inc(obs.EvPhysicalUnlink, v)
			}
			if g.Active() {
				g.Retire(curr)
			}
			removed++
			esc.Done(&l.retry)
			anchor = prev
			break
		}
	}
	g.Unpin()
	b.Put()
	return removed
}

// ContainsAll reports how many of the keys are in the set. One
// wait-free pass serves the whole sorted batch; each key's query
// linearizes individually at the load that reached its position.
func (l *List) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := l.arena.Pin()
	found := 0
	curr := l.head
	for _, v := range ks {
		for curr.val < v {
			curr = curr.next.Load()
		}
		if curr.val == v && !curr.marked.Load() {
			found++
		}
	}
	g.Unpin()
	b.Put()
	return found
}

// RangeScan returns the unmarked keys in [lo, hi) in ascending order.
// Wait-free; sorted and duplicate-free by construction (values along
// any next-chain strictly increase). Each key's presence linearizes
// individually at the load that passed its position.
func (l *List) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	g := l.arena.Pin()
	var out []int64
	curr := l.head
	for curr.val < lo {
		curr = curr.next.Load()
	}
	for curr.val < hi {
		if !curr.marked.Load() {
			out = append(out, curr.val)
		}
		curr = curr.next.Load()
	}
	g.Unpin()
	return out
}

// Ascend calls yield for every unmarked key >= from in ascending order
// until yield returns false or the list ends. Wait-free; the epoch
// stays pinned for the duration, so yield should be short.
func (l *List) Ascend(from int64, yield func(int64) bool) {
	g := l.arena.Pin()
	curr := l.head
	for curr.val < from {
		curr = curr.next.Load()
	}
	for curr.val != MaxSentinel {
		if !curr.marked.Load() && !yield(curr.val) {
			break
		}
		curr = curr.next.Load()
	}
	g.Unpin()
}

// Load bulk-inserts keys with a single merge walk: O(n + k) total,
// O(k) on an empty set. It takes no locks and must only be used at
// quiescence (setup/population), before the list is shared. Returns
// how many keys were absent.
func (l *List) Load(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := l.arena.Pin()
	added := 0
	prev := l.head
	curr := prev.next.Load()
	for _, v := range ks {
		for curr.val < v {
			prev = curr
			curr = curr.next.Load()
		}
		if curr.val == v {
			continue
		}
		n := l.newNode(g, v)
		n.next.Store(curr)
		prev.next.Store(n)
		prev = n
		added++
	}
	g.Unpin()
	b.Put()
	return added
}
