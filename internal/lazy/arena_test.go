package lazy

import (
	"math/rand"
	"sync"
	"testing"
)

// TestArenaLazyOracle checks the arena-backed Lazy list against a map
// oracle through a long sequential mixed workload with enough churn
// that nodes demonstrably recycle mid-run.
func TestArenaLazyOracle(t *testing.T) {
	l := NewArena()
	oracle := map[int64]bool{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(64)
		switch rng.Intn(3) {
		case 0:
			if got, want := l.Insert(v), !oracle[v]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, oracle says %v", i, v, got, want)
			}
			oracle[v] = true
		case 1:
			if got, want := l.Remove(v), oracle[v]; got != want {
				t.Fatalf("op %d: Remove(%d) = %v, oracle says %v", i, v, got, want)
			}
			delete(oracle, v)
		default:
			if got, want := l.Contains(v), oracle[v]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, oracle says %v", i, v, got, want)
			}
		}
	}
	if got, want := l.Len(), len(oracle); got != want {
		t.Fatalf("Len = %d, oracle has %d", got, want)
	}
	st, ok := l.ArenaStats()
	if !ok {
		t.Fatal("ArenaStats reports no arena on NewArena()")
	}
	if st.Recycled == 0 {
		t.Errorf("20000 mixed ops recycled nothing: %+v", st)
	}
	if got, want := len(l.Snapshot()), len(oracle); got != want {
		t.Fatalf("Snapshot has %d elements, oracle %d", got, want)
	}
}

// TestRaceArenaLazyRecycleVsTraversal hammers Lazy's node recycling
// against its wait-free traversals under the race detector, mirroring
// the core VBL stress: mutators over a small key range for maximum
// recycle pressure, readers exercising every unprotected-dereference
// path (Contains, Len, Snapshot).
func TestRaceArenaLazyRecycleVsTraversal(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	l := NewArena()

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				v := rng.Int63n(32)
				if rng.Intn(2) == 0 {
					l.Insert(v)
				} else {
					l.Remove(v)
				}
			}
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < iters; i++ {
				switch rng.Intn(8) {
				case 0:
					l.Len()
				case 1:
					l.Snapshot()
				default:
					l.Contains(rng.Int63n(32))
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Quiescent drain: under heavy machine load (the full race gate runs
	// many packages at once) the concurrent phase can end before the
	// epoch advances far enough for any limbo bucket to come back. A few
	// single-threaded churn rounds force retire + advance + recycle
	// deterministically; the race pressure above is what the test is for.
	for round := 0; round < 8; round++ {
		for v := int64(0); v < 32; v++ {
			l.Insert(v)
		}
		for v := int64(0); v < 32; v++ {
			l.Remove(v)
		}
	}

	st, ok := l.ArenaStats()
	if !ok {
		t.Fatal("no arena attached")
	}
	if st.Recycled == 0 {
		t.Errorf("stress run recycled nothing (epoch %d, retired %d): the hazard went unexercised", st.Epoch, st.Retired)
	}
	if st.Recycled > st.Retired {
		t.Errorf("Recycled %d > Retired %d", st.Recycled, st.Retired)
	}
}
