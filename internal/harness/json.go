package harness

import (
	"encoding/json"
	"io"

	"listset/internal/adapt"
	"listset/internal/obs"
	"listset/internal/obs/trace"
)

// ReportSchema identifies the JSON layout emitted by this package.
// Bump the suffix when a field is renamed or removed; adding fields is
// compatible and does not bump it.
const ReportSchema = "listset/bench/v1"

// JSONReport is the machine-readable form of one Result, stable enough
// to be committed as BENCH_*.json and diffed across revisions. All maps
// carry every key every time (zeros included), so consumers need no
// presence checks.
type JSONReport struct {
	Schema  string `json:"schema"`
	Impl    string `json:"impl"`
	Threads int    `json:"threads"`
	// Shards is the shard count of the partitioned façade (0 =
	// unsharded). Added for the sharded VBL; a new field, so the
	// schema string is unchanged.
	Shards int `json:"shards"`
	// Arena reports whether the cell ran with arena-backed node
	// lifetimes (internal/mem). A new field; schema string unchanged.
	Arena    bool         `json:"arena"`
	Workload JSONWorkload `json:"workload"`
	Protocol JSONProtocol `json:"protocol"`
	// InitialSize is the pre-population size of the last run.
	InitialSize int            `json:"initial_size"`
	Throughput  JSONThroughput `json:"throughput"`
	Counts      JSONCounts     `json:"counts"`
	// Events maps stable event names (obs.Event.String) to counts over
	// the measured intervals; nil when the run had no probes attached.
	Events map[string]uint64 `json:"events,omitempty"`
	// LatencyNS maps op kind (contains/insert/remove) to sampled
	// percentiles in nanoseconds; nil when sampling was off.
	LatencyNS map[string]JSONLatency `json:"latency_ns,omitempty"`
	// Retry is the bounded-retry ladder's aggregate over the set's
	// lifetime; nil when the implementation has no retry ladder. A new
	// optional field, so the schema string is unchanged.
	Retry *JSONRetry `json:"retry,omitempty"`
	// Mem is the process-wide heap accounting over the measured
	// intervals. A new field; schema string unchanged.
	Mem JSONMem `json:"mem"`
	// Timeseries holds the interval-metrics windows (one row per
	// streaming tick over the measured drives); nil unless the run
	// streamed. A new optional field; schema string unchanged.
	Timeseries []trace.StreamRow `json:"timeseries,omitempty"`
	// Adapt is the contention controller's decision tally for the last
	// run; nil unless the cell ran adaptively. A new optional field;
	// schema string unchanged.
	Adapt *adapt.Stats `json:"adapt,omitempty"`
}

// JSONMem is the runtime.MemStats delta summed over the measured
// intervals (population and warm-up excluded). Process-wide: compare
// across cells only when each cell ran in its own process (the smoke
// scripts and cmd/synchrobench do).
type JSONMem struct {
	Mallocs     uint64  `json:"mallocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// JSONWorkload mirrors workload.Config. The distribution and scan
// fields are new and omitted at their defaults, so pre-existing
// reports parse and diff unchanged (schema string unchanged).
type JSONWorkload struct {
	UpdatePercent int     `json:"update_percent"`
	Range         int64   `json:"range"`
	Dist          string  `json:"dist,omitempty"`
	Theta         float64 `json:"theta,omitempty"`
	ScanPercent   int     `json:"scan_percent,omitempty"`
	ScanWidth     int64   `json:"scan_width,omitempty"`
	InsertShare   int     `json:"insert_share,omitempty"`
	HotPercent    int     `json:"hot_percent,omitempty"`
	HotLo         int64   `json:"hot_lo,omitempty"`
	HotWidth      int64   `json:"hot_width,omitempty"`
}

// JSONProtocol records the measurement protocol of the run.
type JSONProtocol struct {
	DurationSec float64 `json:"duration_s"`
	WarmupSec   float64 `json:"warmup_s"`
	Runs        int     `json:"runs"`
	Seed        int64   `json:"seed"`
	// SampleEvery is the latency sampling period (0 = off).
	SampleEvery int `json:"sample_every"`
	// Chaos lists the armed failpoint scenarios in their flag syntax
	// (site:action[:probability][:delay]); empty when the run was
	// fault-free. New optional fields: schema string unchanged.
	Chaos []string `json:"chaos,omitempty"`
	// RetryBudget is the bounded-retry budget K (0 = unbounded).
	RetryBudget int `json:"retry_budget,omitempty"`
	// WatchdogSec is the liveness watchdog deadline (0 = off).
	WatchdogSec float64 `json:"watchdog_s,omitempty"`
	// BatchSize is the batched-mode batch size (0 = per-key mode).
	// Counts stay per-key either way; see harness.Config.BatchSize.
	BatchSize int `json:"batch_size,omitempty"`
	// AdaptIntervalSec is the adaptive controller's tick period; 0
	// means the cell ran without adaptive control.
	AdaptIntervalSec float64 `json:"adapt_interval_s,omitempty"`
	// Phases renders the time-varying schedule's cycle; empty for a
	// fixed workload.
	Phases string `json:"phases,omitempty"`
}

// JSONRetry mirrors obs.RetryStats.
type JSONRetry struct {
	Ops              uint64 `json:"ops"`
	Restarts         uint64 `json:"restarts"`
	EscalatedHead    uint64 `json:"escalated_head"`
	EscalatedBackoff uint64 `json:"escalated_backoff"`
	MaxRestarts      uint64 `json:"max_restarts"`
}

// JSONThroughput summarizes per-run throughputs in ops/sec.
type JSONThroughput struct {
	Mean   float64   `json:"mean"`
	StdDev float64   `json:"stddev"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Median float64   `json:"median"`
	Runs   []float64 `json:"runs"`
}

// JSONCounts mirrors Counts plus the derived totals.
type JSONCounts struct {
	ContainsHit          int64   `json:"contains_hit"`
	ContainsMiss         int64   `json:"contains_miss"`
	InsertOK             int64   `json:"insert_ok"`
	InsertFail           int64   `json:"insert_fail"`
	RemoveOK             int64   `json:"remove_ok"`
	RemoveFail           int64   `json:"remove_fail"`
	Scans                int64   `json:"scans,omitempty"`
	ScanKeys             int64   `json:"scan_keys,omitempty"`
	Total                int64   `json:"total"`
	EffectiveUpdateRatio float64 `json:"effective_update_ratio"`
}

// JSONLatency is one op kind's sampled latency distribution.
type JSONLatency struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
}

// Report converts a Result into its JSON form.
func Report(res Result) JSONReport {
	cfg := res.Config
	rep := JSONReport{
		Schema:  ReportSchema,
		Impl:    cfg.Name,
		Threads: cfg.Threads,
		Shards:  cfg.Shards,
		Arena:   cfg.Arena,
		Workload: JSONWorkload{
			UpdatePercent: cfg.Workload.UpdatePercent,
			Range:         cfg.Workload.Range,
			Dist:          cfg.Workload.Dist,
			Theta:         cfg.Workload.Theta,
			ScanPercent:   cfg.Workload.ScanPercent,
			ScanWidth:     cfg.Workload.ScanWidth,
			InsertShare:   cfg.Workload.InsertShare,
			HotPercent:    cfg.Workload.HotPercent,
			HotLo:         cfg.Workload.HotLo,
			HotWidth:      cfg.Workload.HotWidth,
		},
		Protocol: JSONProtocol{
			DurationSec: cfg.Duration.Seconds(),
			WarmupSec:   cfg.Warmup.Seconds(),
			Runs:        cfg.Runs,
			Seed:        cfg.Seed,
			SampleEvery: cfg.LatencySampleEvery,
			RetryBudget: cfg.RetryBudget,
			WatchdogSec: cfg.Watchdog.Seconds(),
			BatchSize:   cfg.BatchSize,
		},
		InitialSize: res.InitialSize,
		Throughput: JSONThroughput{
			Mean:   res.Summary.Mean,
			StdDev: res.Summary.StdDev,
			Min:    res.Summary.Min,
			Max:    res.Summary.Max,
			Median: res.Summary.Median,
			Runs:   res.Throughputs,
		},
		Counts: JSONCounts{
			ContainsHit:          res.Counts.ContainsHit,
			ContainsMiss:         res.Counts.ContainsMiss,
			InsertOK:             res.Counts.InsertOK,
			InsertFail:           res.Counts.InsertFail,
			RemoveOK:             res.Counts.RemoveOK,
			RemoveFail:           res.Counts.RemoveFail,
			Scans:                res.Counts.Scans,
			ScanKeys:             res.Counts.ScanKeys,
			Total:                res.Counts.Total(),
			EffectiveUpdateRatio: res.Counts.EffectiveUpdateRatio(),
		},
	}
	rep.Mem = JSONMem{
		Mallocs:     res.Mallocs,
		AllocBytes:  res.AllocBytes,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.BytesPerOp(),
	}
	for _, sc := range cfg.Chaos {
		rep.Protocol.Chaos = append(rep.Protocol.Chaos, sc.String())
	}
	if cfg.Adapt != nil {
		// Report the effective interval (defaults resolved), not the
		// possibly-zero configured one.
		acfg := cfg.Adapt.WithDefaults()
		rep.Protocol.AdaptIntervalSec = acfg.Interval.Seconds()
	}
	if cfg.Phases != nil {
		rep.Protocol.Phases = cfg.Phases.String()
	}
	rep.Adapt = res.Adapt
	if res.HasRetry {
		rep.Retry = &JSONRetry{
			Ops:              res.Retry.Ops,
			Restarts:         res.Retry.Restarts,
			EscalatedHead:    res.Retry.EscalatedHead,
			EscalatedBackoff: res.Retry.EscalatedBackoff,
			MaxRestarts:      res.Retry.MaxRestarts,
		}
	}
	if cfg.Probes != nil {
		rep.Events = res.Events.Map()
	}
	rep.Timeseries = res.Timeseries
	if res.Latency != nil {
		rep.LatencyNS = make(map[string]JSONLatency, int(obs.NumOps))
		for op := obs.OpKind(0); op < obs.NumOps; op++ {
			p := res.Latency.Percentiles(op)
			rep.LatencyNS[op.String()] = JSONLatency{
				Count: p.Count,
				P50:   uint64(p.P50),
				P90:   uint64(p.P90),
				P99:   uint64(p.P99),
				P999:  uint64(p.P999),
			}
		}
	}
	return rep
}

// WriteJSON writes res as one indented JSON object followed by a
// newline — the format of the committed BENCH_*.json files.
func WriteJSON(w io.Writer, res Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report(res))
}

// JSONReports flattens a sweep into one report per cell, in candidate-
// major order (matching SweepResult.Results).
func (r SweepResult) JSONReports() []JSONReport {
	var out []JSONReport
	for _, row := range r.Results {
		for _, res := range row {
			out = append(out, Report(res))
		}
	}
	return out
}
