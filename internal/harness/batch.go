package harness

import (
	"sync/atomic"
	"time"

	"listset/internal/obs"
	"listset/internal/obs/trace"
	"listset/internal/workload"
)

// Batched workload mode: when Config.BatchSize > 1 (or the workload
// carves out range scans) the workers stop issuing one point operation
// at a time and instead draw k keys per step, handing them to the
// set's batch surface in one call. Throughput accounting stays per
// KEY, not per call — a batch of k submitted keys counts as k
// operations — so batched and per-key cells are directly comparable
// and the speedup visible in reports is the amortization itself, not
// an accounting artifact. A scan counts as one operation (its cost is
// proportional to the width, which the scan_keys tally exposes).

// BatchSet is the batch surface the harness drives in batched mode.
// The root package's native implementations and the sharded façade
// satisfy it structurally; sets that do not are driven by an
// equivalent per-key loop over the same draws, which is exactly the
// unamortized baseline the batch gate compares against.
type BatchSet interface {
	InsertAll(keys []int64) int
	RemoveAll(keys []int64) int
	ContainsAll(keys []int64) int
}

// RangeSet is the ordered-scan surface scan workloads require. There
// is no per-key emulation — a Contains sweep over the width would
// measure something else entirely — so runOnce rejects scan workloads
// on sets without it.
type RangeSet interface {
	RangeScan(lo, hi int64) []int64
}

// batchMode reports whether drive must run the batched worker loop.
func (c Config) batchMode() bool {
	return c.BatchSize >= 1 || c.Workload.ScanPercent > 0
}

// applyBatch applies one batched operation (len(ks) raw draws — the
// set's batch entry points sort and deduplicate) and tallies per-key:
// the set reports how many keys took effect; the rest are failures,
// the same totals a sequential per-key application would produce.
func applyBatch(set Set, bs BatchSet, op workload.Op, ks []int64, c *Counts) {
	k := int64(len(ks))
	var n int
	switch op {
	case workload.Insert:
		if bs != nil {
			n = bs.InsertAll(ks)
		} else {
			for _, v := range ks {
				if set.Insert(v) {
					n++
				}
			}
		}
		c.InsertOK += int64(n)
		c.InsertFail += k - int64(n)
	case workload.Remove:
		if bs != nil {
			n = bs.RemoveAll(ks)
		} else {
			for _, v := range ks {
				if set.Remove(v) {
					n++
				}
			}
		}
		c.RemoveOK += int64(n)
		c.RemoveFail += k - int64(n)
	default: // Contains
		if bs != nil {
			n = bs.ContainsAll(ks)
		} else {
			for _, v := range ks {
				if set.Contains(v) {
					n++
				}
			}
		}
		c.ContainsHit += int64(n)
		c.ContainsMiss += k - int64(n)
	}
}

// batchedLoop is the worker body for batched/scan mode. Latency
// samples time the whole call — one batch or one scan — under the
// call's op kind (scans under obs.OpScan), so batched latency rows
// read as per-call, while throughput stays per-key.
func batchedLoop(set Set, cfg Config, id int, gen *workload.Generator, stop *atomic.Bool, local *Counts, shard *obs.Recorder, mask uint64, myBeat *beat, tr *trace.Tracer) {
	k := cfg.BatchSize
	if k < 1 {
		k = 1
	}
	width := cfg.Workload.ScanSpan()
	rs, _ := set.(RangeSet)
	bs, _ := set.(BatchSet)
	buf := make([]int64, 0, k)
	var n uint64
	for !stop.Load() {
		// Fewer steps per stop-check than the point loop's 32: each
		// step is up to k operations already.
		for i := 0; i < 4; i++ {
			op, ks := gen.NextBatch(buf, k)
			kind := opKind(op)
			if tr != nil {
				tr.OpBegin(id, kind, ks[0])
			}
			var t0 time.Time
			sampled := false
			if shard != nil && n&mask == 0 {
				sampled = true
				t0 = time.Now()
			}
			ok := false
			if op == workload.Scan {
				lo := ks[0]
				got := len(rs.RangeScan(lo, lo+width))
				local.Scans++
				local.ScanKeys += int64(got)
				ok = got > 0
			} else {
				// "ok" for a traced batch = at least one key took
				// effect; the per-key detail is in the tallies.
				before := local.InsertOK + local.RemoveOK + local.ContainsHit
				applyBatch(set, bs, op, ks, local)
				ok = local.InsertOK+local.RemoveOK+local.ContainsHit > before
			}
			if shard != nil {
				if sampled {
					shard.Record(kind, time.Since(t0))
				}
			}
			n++
			if tr != nil {
				tr.OpEnd(id, kind, ks[0], ok)
			}
		}
		if myBeat != nil {
			myBeat.n.Add(1)
		}
	}
}
