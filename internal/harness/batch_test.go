package harness

import (
	"strings"
	"testing"
	"time"

	"listset/internal/core"
	"listset/internal/obs"
	"listset/internal/workload"
)

func batchConfig(batch int) Config {
	return Config{
		Name:      "vbl",
		New:       func() Set { return core.New() },
		Threads:   4,
		Workload:  workload.Config{UpdatePercent: 50, Range: 256},
		Duration:  30 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		Runs:      2,
		Seed:      1,
		BatchSize: batch,
	}
}

// TestBatchedModeCountsPerKey checks the central accounting invariant:
// a batched run's tallies are per key, so the per-call step count times
// the batch size bounds Total from below (scans aside, every step lands
// exactly BatchSize tallies).
func TestBatchedModeCountsPerKey(t *testing.T) {
	res, err := Run(batchConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	total := res.Counts.Total()
	if total == 0 {
		t.Fatal("batched run completed no operations")
	}
	if total%16 != 0 {
		t.Errorf("total %d not a multiple of the batch size 16; accounting is per-call, not per-key?", total)
	}
	if res.Counts.InsertOK == 0 || res.Counts.RemoveOK == 0 || res.Counts.ContainsHit == 0 {
		t.Errorf("batched mix missing outcomes: %+v", res.Counts)
	}
}

// TestBatchedModeFallback drives a set with no batch surface: the
// harness must fall back to an equivalent per-key loop, not fail.
func TestBatchedModeFallback(t *testing.T) {
	cfg := testConfig()
	cfg.BatchSize = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() == 0 {
		t.Fatal("fallback batched run completed no operations")
	}
	if res.Counts.Total()%8 != 0 {
		t.Errorf("fallback total %d not a multiple of 8", res.Counts.Total())
	}
}

// TestScanWorkload drives a scan-bearing mix against the native VBL
// and checks scans complete, return keys, and land in the scan latency
// histogram.
func TestScanWorkload(t *testing.T) {
	cfg := batchConfig(0)
	cfg.Workload.ScanPercent = 20
	cfg.Workload.ScanWidth = 64
	cfg.LatencySampleEvery = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Scans == 0 {
		t.Fatal("no scans completed with ScanPercent=20")
	}
	if res.Counts.ScanKeys == 0 {
		t.Error("scans over a half-full range returned no keys")
	}
	// Width 64 over a half-full 256-key range: a scan returns ~32 keys.
	if avg := float64(res.Counts.ScanKeys) / float64(res.Counts.Scans); avg < 8 || avg > 64 {
		t.Errorf("average scan returned %.1f keys, want roughly 32", avg)
	}
	if got := res.Latency.Percentiles(obs.OpScan).Count; got == 0 {
		t.Error("no scan latency samples with sampling on")
	}
}

// TestScanWorkloadNeedsRangeSet checks the harness rejects scan
// workloads on sets without a native scan surface instead of silently
// measuring something else.
func TestScanWorkloadNeedsRangeSet(t *testing.T) {
	cfg := testConfig() // mapSet: no RangeScan
	cfg.Workload.ScanPercent = 10
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("scan workload on a scanless set did not error")
	}
	if !strings.Contains(err.Error(), "RangeScan") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestBatchSizeOneMatchesSemantics drives batch=1 (single-key batches
// through the batch entry points) and checks the run behaves like a
// point run: outcomes of every kind, per-key totals.
func TestBatchSizeOneMatchesSemantics(t *testing.T) {
	res, err := Run(batchConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() == 0 {
		t.Fatal("batch=1 run completed no operations")
	}
	if res.Counts.InsertOK == 0 || res.Counts.RemoveOK == 0 {
		t.Errorf("batch=1 mix missing outcomes: %+v", res.Counts)
	}
}

func TestBatchConfigValidate(t *testing.T) {
	cfg := testConfig()
	cfg.BatchSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative BatchSize accepted")
	}
}

// TestZipfWorkloadRuns drives the Zipfian distribution end to end
// through the harness.
func TestZipfWorkloadRuns(t *testing.T) {
	cfg := batchConfig(8)
	cfg.Workload.Dist = workload.DistZipf
	cfg.Workload.Theta = 0.9
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() == 0 {
		t.Fatal("zipf run completed no operations")
	}
}
