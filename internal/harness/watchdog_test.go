package harness

import (
	"strings"
	"testing"
	"time"

	"listset/internal/core"
	"listset/internal/failpoint"
	"listset/internal/workload"
)

// TestWatchdogFiresOnSeededLivelock seeds a genuine livelock — a
// probability-1 injected failure of VBL's identity validation, so every
// update spins through restarts forever (the retry ladder escalates and
// backs off, but escalation cannot outrun an always-failing site) —
// and asserts the watchdog converts it into a run error instead of a
// hung process. The fire path disarms the failpoints, which is what
// lets the stalled workers drain and this test return at all.
func TestWatchdogFiresOnSeededLivelock(t *testing.T) {
	cfg := Config{
		Name:     "vbl-livelock",
		New:      func() Set { return core.New() },
		Threads:  2,
		Workload: workload.Config{UpdatePercent: 100, Range: 64},
		Duration: 500 * time.Millisecond,
		Runs:     1,
		Seed:     1,
		Chaos: []failpoint.Scenario{
			{Site: failpoint.SiteVBLLockNextAt, Action: failpoint.ActFail},
		},
		RetryBudget: 2,
		Watchdog:    100 * time.Millisecond,
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("probability-1 validation failure did not trip the watchdog")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error does not name the watchdog: %v", err)
	}
}

// TestWatchdogQuietOnHealthyRun pins the other half of the contract:
// an armed watchdog on a fault-free run must stay silent, and the
// retry ladder's stats must surface in the result.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := Config{
		Name:        "vbl",
		New:         func() Set { return core.New() },
		Threads:     4,
		Workload:    workload.Config{UpdatePercent: 50, Range: 128},
		Duration:    100 * time.Millisecond,
		Runs:        1,
		Seed:        2,
		RetryBudget: 8,
		Watchdog:    5 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if !res.HasRetry {
		t.Fatal("VBL exposes a retry ladder but HasRetry is false")
	}
	if res.Counts.Total() == 0 {
		t.Fatal("healthy run completed no operations")
	}
}

// TestChaosArmsAfterPopulate proves a hostile scenario cannot livelock
// pre-population: keys are inserted before arming, so a probability-1
// insert-validation failure leaves the populated size intact and only
// the measured phase (here emptied of stall risk by the watchdog)
// feels the faults.
func TestChaosArmsAfterPopulate(t *testing.T) {
	cfg := Config{
		Name:     "vbl-chaos-populate",
		New:      func() Set { return core.New() },
		Threads:  1,
		Workload: workload.Config{UpdatePercent: 0, Range: 256},
		Duration: 50 * time.Millisecond,
		Runs:     1,
		Seed:     3,
		Chaos: []failpoint.Scenario{
			{Site: failpoint.SiteVBLLockNextAt, Action: failpoint.ActFail},
		},
		Watchdog: 5 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("read-only chaos run failed: %v", err)
	}
	if res.InitialSize == 0 {
		t.Fatal("pre-population inserted nothing — the chaos arm hit the setup phase")
	}
}
