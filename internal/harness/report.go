package harness

import (
	"fmt"
	"io"
	"strings"

	"listset/internal/stats"
)

// humanThroughput renders ops/sec compactly.
func humanThroughput(v float64) string { return stats.HumanCount(v) }

// WriteTable renders a sweep as an aligned text table: one row per
// thread count, one column per candidate, entries mean±rel% throughput.
func (r SweepResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s  (workload %s, %v x%d runs after %v warm-up)\n",
		r.Sweep.Title, r.Sweep.Workload.String(), r.Sweep.Duration, r.Sweep.Runs, r.Sweep.Warmup)
	// Header.
	fmt.Fprintf(w, "%8s", "threads")
	for _, c := range r.Sweep.Candidates {
		fmt.Fprintf(w, "  %16s", c.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%8s", strings.Repeat("-", 7))
	for range r.Sweep.Candidates {
		fmt.Fprintf(w, "  %16s", strings.Repeat("-", 16))
	}
	fmt.Fprintln(w)
	for j, th := range r.Sweep.Threads {
		fmt.Fprintf(w, "%8d", th)
		for i := range r.Sweep.Candidates {
			res := r.Results[i][j]
			cell := fmt.Sprintf("%s ±%2.0f%%", humanThroughput(res.Summary.Mean), 100*res.Summary.RelStdDev())
			fmt.Fprintf(w, "  %16s", cell)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the sweep as CSV: title, workload, candidate, threads,
// run index, throughput — one row per measured run, ready for plotting.
func (r SweepResult) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "title,workload,impl,threads,run,throughput_ops_per_sec")
	for i, c := range r.Sweep.Candidates {
		for j, th := range r.Sweep.Threads {
			for k, tput := range r.Results[i][j].Throughputs {
				fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.0f\n",
					csvEscape(r.Sweep.Title), r.Sweep.Workload.String(), c.Name, th, k, tput)
			}
		}
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteSpeedups writes, for each thread count, the factor by which the
// reference candidate's mean throughput exceeds each other candidate's —
// the "VBL outperforms Lazy by 1.6x" style numbers in the paper.
func (r SweepResult) WriteSpeedups(w io.Writer, reference string) {
	ref := r.CandidateIndex(reference)
	if ref < 0 {
		fmt.Fprintf(w, "speedups: unknown reference %q\n", reference)
		return
	}
	fmt.Fprintf(w, "speedup of %s over:\n", reference)
	fmt.Fprintf(w, "%8s", "threads")
	for i, c := range r.Sweep.Candidates {
		if i == ref {
			continue
		}
		fmt.Fprintf(w, "  %12s", c.Name)
	}
	fmt.Fprintln(w)
	for j, th := range r.Sweep.Threads {
		fmt.Fprintf(w, "%8d", th)
		refMean := r.Results[ref][j].Summary.Mean
		for i := range r.Sweep.Candidates {
			if i == ref {
				continue
			}
			fmt.Fprintf(w, "  %11.2fx", stats.Speedup(refMean, r.Results[i][j].Summary.Mean))
		}
		fmt.Fprintln(w)
	}
}
