// Package harness is the Go equivalent of the Synchrobench measurement
// loop the paper uses (Gramoli, PPoPP 2015): N worker goroutines apply a
// randomized operation mix to one shared set for a fixed wall-clock
// duration after a warm-up, repeated several times; the metric is
// aggregate throughput in operations per second.
//
// The harness is deliberately boring: per-worker xorshift generators,
// per-worker counters merged after the run, an atomic stop flag, and a
// start barrier so all workers begin together. Anything cleverer would
// risk measuring the harness.
package harness

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"listset/internal/adapt"
	"listset/internal/failpoint"
	"listset/internal/obs"
	"listset/internal/obs/trace"
	"listset/internal/stats"
	"listset/internal/trylock"
	"listset/internal/workload"
)

// Set is the operation surface the harness drives. listset.Set satisfies
// it structurally; the harness deliberately does not depend on the root
// package.
type Set interface {
	Insert(v int64) bool
	Remove(v int64) bool
	Contains(v int64) bool
}

// Config describes one benchmark cell: an implementation, a thread
// count, a workload, and the measurement protocol.
type Config struct {
	// Name identifies the implementation in reports.
	Name string
	// New constructs a fresh, empty set.
	New func() Set
	// Threads is the number of worker goroutines.
	Threads int
	// Shards records the shard count of the partitioned façade New
	// constructs, so reports can distinguish sharded cells. 0 means
	// unsharded; the harness itself only validates and reports it —
	// the sharding happens inside New.
	Shards int
	// Arena records that New constructs arena-backed sets
	// (internal/mem), so reports can distinguish arena cells. Like
	// Shards, the harness only reports it — the arena lives inside New.
	Arena bool
	// Workload is the operation mix and key range.
	Workload workload.Config
	// BatchSize, when >= 1, switches the workers to batched mode: each
	// step draws BatchSize keys and applies them through the set's
	// batch surface (BatchSet) in one call — or an equivalent per-key
	// loop when the set has none. Throughput accounting stays per key
	// (a batch of k counts as k operations), so batched and per-key
	// cells are directly comparable; BatchSize 1 exercises the batch
	// entry points with single-key batches (the "batch=1 within 10% of
	// plain" regression cell). 0 means classic per-key mode. Scan
	// workloads (Workload.ScanPercent > 0) also use the batched loop
	// and require the set to implement RangeSet.
	BatchSize int
	// Duration is the measured interval per run.
	Duration time.Duration
	// Warmup runs the same load without counting before each
	// measurement. The paper warms up for as long as it measures.
	Warmup time.Duration
	// Runs is how many times the (warmup, measure) pair repeats; the
	// paper uses 5.
	Runs int
	// Seed makes population and op streams reproducible.
	Seed int64
	// Probes, when non-nil, is attached to every freshly constructed
	// set that implements obs.Instrumented; Result.Events reports the
	// counter deltas accumulated over the measured intervals (warm-up
	// events are excluded).
	Probes *obs.Probes
	// LatencySampleEvery, when positive, times every Nth operation of
	// each worker (N rounded up to a power of two) into per-worker
	// histogram shards, merged into Result.Latency. 0 disables
	// sampling, which is the zero-overhead default.
	LatencySampleEvery int
	// Chaos, when non-empty, arms these failpoint scenarios on each
	// run's freshly constructed set (via failpoint.Attach, plus
	// trylock.SetChaos when a scenario targets SiteTryLockAcquire).
	// Arming happens AFTER pre-population, so a hostile scenario can
	// never livelock the setup phase it was not meant to test.
	Chaos []failpoint.Scenario
	// RetryBudget, when positive, is forwarded to implementations with
	// a bounded-retry ladder (obs.RetryBudgeted); Result.Retry reports
	// what the ladder saw over the measured intervals only — the
	// interval is bracketed with ladder snapshots, so population and
	// warm-up restarts never pollute the report.
	RetryBudget int
	// Adapt, when non-nil, runs the adaptive contention controller
	// (internal/adapt) alongside every run: bound to the fresh set
	// before population, started before warm-up — so the loop has
	// already converged when measurement begins — and stopped after the
	// measured drive, with the final run's decision tally in
	// Result.Adapt. Requires Probes (the controller's signals ARE the
	// event counters). When RetryBudget is also set it becomes the
	// controller's budget baseline unless Adapt.BudgetBase overrides.
	Adapt *adapt.Config
	// Phases, when non-nil, replaces the fixed Workload mix with a
	// time-varying schedule: a driver goroutine advances the shared
	// phase clock through warm-up and measurement, and every worker's
	// generator follows it with one atomic load per draw. Workload
	// still describes pre-population and the report row (pass the
	// schedule's base config there); size its Range to
	// Phases.MaxRange() so no phase draws outside the populated space.
	Phases *workload.Schedule
	// Watchdog, when positive, enables the liveness watchdog: a run in
	// which any worker makes no progress for this long fails with a
	// goroutine dump (see watchdog.go). 0 disables it.
	Watchdog time.Duration
	// Trace, when non-nil, records the measured intervals into the
	// flight recorder: each worker emits op-begin/op-end span records
	// around every operation, and the tracer is attached as the probe
	// and failpoint sink for the duration of the measured drive (warm-up
	// and population are not traced). Workers are identified by their
	// harness ids, so the tracer should be sized with at least Threads
	// rings.
	Trace *trace.Tracer
	// Stream, when positive, emits interval metrics during the measured
	// drives: every Stream the harness digests the probe counters and
	// latency shards into a windowed trace.StreamRow, collected in
	// Result.Timeseries and forwarded to StreamSink. Latency windows
	// need LatencySampleEvery > 0; event windows need Probes.
	Stream time.Duration
	// StreamSink, when non-nil, receives each StreamRow as its window
	// closes (called from the streaming goroutine).
	StreamSink func(trace.StreamRow)
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.New == nil {
		return fmt.Errorf("harness: Config.New is nil")
	}
	if c.Threads <= 0 {
		return fmt.Errorf("harness: Threads = %d, must be positive", c.Threads)
	}
	if c.Shards < 0 {
		return fmt.Errorf("harness: Shards = %d, must be non-negative", c.Shards)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("harness: Duration = %v, must be positive", c.Duration)
	}
	if c.Runs <= 0 {
		return fmt.Errorf("harness: Runs = %d, must be positive", c.Runs)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("harness: RetryBudget = %d, must be non-negative", c.RetryBudget)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("harness: BatchSize = %d, must be non-negative", c.BatchSize)
	}
	if c.Watchdog < 0 {
		return fmt.Errorf("harness: Watchdog = %v, must be non-negative", c.Watchdog)
	}
	if c.Stream < 0 {
		return fmt.Errorf("harness: Stream = %v, must be non-negative", c.Stream)
	}
	if c.Adapt != nil && c.Probes == nil {
		return fmt.Errorf("harness: Adapt requires Probes (the controller samples the event counters)")
	}
	if c.Phases != nil {
		if len(c.Phases.Phases) == 0 {
			return fmt.Errorf("harness: Phases has no phases (construct with workload.NewSchedule)")
		}
		if r := c.Phases.MaxRange(); r > c.Workload.Range {
			return fmt.Errorf("harness: phase range %d exceeds Workload.Range %d; population would not cover it", r, c.Workload.Range)
		}
	}
	for _, sc := range c.Chaos {
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	return c.Workload.Validate()
}

// Counts aggregates per-operation tallies across all workers of one run.
// In batched mode the point-op tallies count KEYS (a batch of k
// submitted keys lands k tallies), so Total stays per-key comparable
// with classic mode.
type Counts struct {
	ContainsHit  int64
	ContainsMiss int64
	InsertOK     int64 // effective inserts (value was absent)
	InsertFail   int64
	RemoveOK     int64 // effective removes (value was present)
	RemoveFail   int64
	Scans        int64 // completed range scans (each counts as one op)
	ScanKeys     int64 // keys returned across all scans
}

// Total returns the total number of completed operations.
func (c Counts) Total() int64 {
	return c.ContainsHit + c.ContainsMiss + c.InsertOK + c.InsertFail + c.RemoveOK + c.RemoveFail + c.Scans
}

// EffectiveUpdateRatio returns the fraction of all operations that
// actually modified the structure — the "effective update ratio"
// Synchrobench reports.
func (c Counts) EffectiveUpdateRatio() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.InsertOK+c.RemoveOK) / float64(t)
}

func (c *Counts) add(o Counts) {
	c.ContainsHit += o.ContainsHit
	c.ContainsMiss += o.ContainsMiss
	c.InsertOK += o.InsertOK
	c.InsertFail += o.InsertFail
	c.RemoveOK += o.RemoveOK
	c.RemoveFail += o.RemoveFail
	c.Scans += o.Scans
	c.ScanKeys += o.ScanKeys
}

// Result is the outcome of running one Config.
type Result struct {
	Config Config
	// Throughputs holds ops/sec for each measured run.
	Throughputs []float64
	// Summary summarizes Throughputs.
	Summary stats.Summary
	// Counts aggregates operation tallies over all measured runs.
	Counts Counts
	// InitialSize is the set size after pre-population of the last run.
	InitialSize int
	// Events holds the probe-counter deltas over the measured runs;
	// all zero unless Config.Probes was set (and the implementation
	// implements obs.Instrumented).
	Events obs.Snapshot
	// Latency holds the sampled per-operation-kind latency histograms;
	// nil unless Config.LatencySampleEvery was positive.
	Latency *obs.Recorder
	// Retry aggregates the restart/escalation tallies over all runs;
	// meaningful only when HasRetry is true.
	Retry obs.RetryStats
	// HasRetry reports whether the implementation exposes a retry
	// ladder (obs.RetryBudgeted).
	HasRetry bool
	// Timeseries holds the interval-metrics windows emitted over all
	// measured drives, in order; empty unless Config.Stream was
	// positive.
	Timeseries []trace.StreamRow
	// Adapt is the contention controller's decision tally for the LAST
	// run (each run gets a fresh set, hence a fresh controller); nil
	// unless Config.Adapt was set.
	Adapt *adapt.Stats
	// Mallocs and AllocBytes are the runtime.MemStats deltas summed
	// over the measured intervals (population and warm-up excluded).
	// They count the whole process, so they are meaningful for
	// single-cell runs, not for concurrent cells in one process.
	Mallocs    uint64
	AllocBytes uint64
}

// AllocsPerOp returns heap allocations per completed operation over
// the measured intervals.
func (r Result) AllocsPerOp() float64 {
	if t := r.Counts.Total(); t > 0 {
		return float64(r.Mallocs) / float64(t)
	}
	return 0
}

// BytesPerOp returns heap bytes allocated per completed operation over
// the measured intervals.
func (r Result) BytesPerOp() float64 {
	if t := r.Counts.Total(); t > 0 {
		return float64(r.AllocBytes) / float64(t)
	}
	return 0
}

// Run executes the full protocol for cfg: Runs × (populate fresh set,
// warm up, measure), and returns the per-run throughputs.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg}
	if cfg.LatencySampleEvery > 0 {
		res.Latency = obs.NewRecorder()
	}
	for r := 0; r < cfg.Runs; r++ {
		counts, elapsed, err := runOnce(cfg, r, &res)
		if err != nil {
			return res, err
		}
		tput := float64(counts.Total()) / elapsed.Seconds()
		res.Throughputs = append(res.Throughputs, tput)
		res.Counts.add(counts)
	}
	res.Summary = stats.Summarize(res.Throughputs)
	return res, nil
}

// runOnce executes one (populate, warm up, measure) cycle of the
// protocol, folding probe/retry tallies into res as it goes.
func runOnce(cfg Config, r int, res *Result) (Counts, time.Duration, error) {
	set := cfg.New()
	if cfg.Workload.ScanPercent > 0 {
		if _, ok := set.(RangeSet); !ok {
			// No per-key emulation: a Contains sweep over the scan
			// width would measure a different algorithm.
			return Counts{}, 0, fmt.Errorf("harness: %s has no RangeScan; scan workloads need a native scan surface", cfg.Name)
		}
	}
	if cfg.Probes != nil {
		obs.Attach(set, cfg.Probes)
	}
	var fps *failpoint.Set
	if len(cfg.Chaos) > 0 {
		fps = failpoint.NewSet()
		failpoint.Attach(set, fps)
		if chaosTargets(cfg.Chaos, failpoint.SiteTryLockAcquire) {
			// The try-lock hook is process-wide (the lock is one word,
			// with no room for a pointer); scope it to this run.
			trylock.SetChaos(fps)
			defer trylock.SetChaos(nil)
		}
	}
	if cfg.RetryBudget > 0 {
		obs.AttachRetryBudget(set, cfg.RetryBudget)
	}
	var rb obs.RetryBudgeted
	if b, ok := set.(obs.RetryBudgeted); ok {
		rb = b
		res.HasRetry = true
	}
	// The beat counters serve double duty: liveness signal for the
	// watchdog and cumulative progress signal for the controller. They
	// persist across the warm-up and measured drives of one run so the
	// controller's op counter stays monotone.
	var beats []beat
	if cfg.Watchdog > 0 || cfg.Adapt != nil {
		beats = make([]beat, cfg.Threads)
	}
	var ctl *adapt.Controller
	if cfg.Adapt != nil {
		acfg := *cfg.Adapt
		if acfg.BudgetBase == 0 && cfg.RetryBudget > 0 {
			acfg.BudgetBase = cfg.RetryBudget
		}
		// One beat tick is one worker step: 32 point ops, or up to
		// 4×BatchSize keys in batched mode. The controller only
		// normalizes counter deltas by this, so the per-step estimate
		// is all it needs.
		perBeat := uint64(32)
		if cfg.batchMode() {
			k := cfg.BatchSize
			if k < 1 {
				k = 1
			}
			perBeat = uint64(4 * k)
		}
		ctl = adapt.New(set, cfg.Probes, func() uint64 {
			var t uint64
			for i := range beats {
				t += beats[i].n.Load()
			}
			return t * perBeat
		}, acfg)
	}
	stopCtl := func() {
		if ctl != nil {
			st := ctl.Stop()
			res.Adapt = &st
			ctl = nil
		}
	}
	defer stopCtl()
	res.InitialSize = workload.Prepopulate(cfg.Workload, cfg.Seed+int64(r), set.Insert)
	// Arm only now, after population, so the setup phase is never the
	// victim of the faults the measured phase is meant to absorb.
	if fps != nil {
		if err := fps.ArmAll(cfg.Chaos); err != nil {
			return Counts{}, 0, err
		}
	}
	// The phase clock restarts from phase 0 every run (reproducibility)
	// and keeps cycling through warm-up and measurement alike.
	if cfg.Phases != nil {
		cfg.Phases.Advance(0)
		phaseStop := make(chan struct{})
		go cfg.Phases.Drive(phaseStop)
		defer close(phaseStop)
	}
	if ctl != nil {
		ctl.Start()
	}
	if cfg.Warmup > 0 {
		if _, _, err := drive(set, cfg, cfg.Warmup, uint64(cfg.Seed)+uint64(r)*1000, nil, nil, fps, nil, beats); err != nil {
			return Counts{}, 0, err
		}
		// Between intervals, restore the configured retry baseline: a
		// warm-up excursion (chaos storm, cold-start contention) must
		// not leak a tightened ladder into the measured interval. Under
		// adaptive control the controller owns the budget instead.
		if cfg.RetryBudget > 0 && ctl == nil {
			obs.AttachRetryBudget(set, cfg.RetryBudget)
		}
	}
	// Bracket the measured interval with counter snapshots so that
	// warm-up and population events are excluded from the report. The
	// MemStats bracket rides the same boundary; ReadMemStats stops the
	// world, so both reads sit outside the timed drive.
	var before obs.Snapshot
	if cfg.Probes != nil {
		before = cfg.Probes.Snapshot()
	}
	// Pre-allocate the per-worker latency shards so the streamer can
	// window them while the drive is still running.
	var shards []*obs.Recorder
	if res.Latency != nil {
		shards = make([]*obs.Recorder, cfg.Threads)
		for i := range shards {
			shards[i] = obs.NewRecorder()
		}
	}
	var str *trace.Streamer
	if cfg.Stream > 0 {
		str = trace.NewStreamer(cfg.Stream, cfg.Probes, shards, func(row trace.StreamRow) {
			// Appends from the streaming goroutine are joined by
			// str.Stop before runOnce reads Timeseries back.
			res.Timeseries = append(res.Timeseries, row)
			if cfg.StreamSink != nil {
				cfg.StreamSink(row)
			}
		})
	}
	// Attach the tracer as probe/failpoint sink only around the measured
	// drive: SetSink happens-before the workers start and the detach
	// happens after they drain, the plain-field discipline both sinks
	// document.
	if tr := cfg.Trace; tr != nil {
		if cfg.Probes != nil {
			cfg.Probes.SetSink(tr)
		}
		if fps != nil {
			fps.SetSink(tr)
		}
		tr.RunBegin(r)
	}
	if str != nil {
		str.Start()
	}
	// Bracket the measured drive with ladder snapshots so Result.Retry
	// reports the measured interval only (warm-up restarts excluded).
	var retryBefore obs.RetryStats
	if rb != nil {
		retryBefore = rb.RetryStats()
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	counts, elapsed, err := drive(set, cfg, cfg.Duration, uint64(cfg.Seed)+uint64(r)*1000+500, res.Latency, shards, fps, cfg.Trace, beats)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if rb != nil {
		res.Retry = res.Retry.Add(rb.RetryStats().Sub(retryBefore))
	}
	// Stop the controller before detaching the trace sink: the
	// controller emits probe events from its own goroutine, and the
	// sink's plain-field discipline allows no concurrent writers at
	// detach time.
	stopCtl()
	if str != nil {
		str.Stop()
	}
	if tr := cfg.Trace; tr != nil {
		if cfg.Probes != nil {
			cfg.Probes.SetSink(nil)
		}
		if fps != nil {
			fps.SetSink(nil)
		}
	}
	res.Mallocs += memAfter.Mallocs - memBefore.Mallocs
	res.AllocBytes += memAfter.TotalAlloc - memBefore.TotalAlloc
	if cfg.Probes != nil {
		res.Events = res.Events.Add(cfg.Probes.Snapshot().Sub(before))
	}
	return counts, elapsed, err
}

// chaosTargets reports whether any scenario arms the given site.
func chaosTargets(scs []failpoint.Scenario, site failpoint.Site) bool {
	for _, sc := range scs {
		if sc.Site == site {
			return true
		}
	}
	return false
}

// applyOp applies one generated operation to set, tallies the result,
// and returns it (the traced loop stamps it into the op-end record).
func applyOp(set Set, op workload.Op, k int64, c *Counts) bool {
	switch op {
	case workload.Contains:
		if set.Contains(k) {
			c.ContainsHit++
			return true
		}
		c.ContainsMiss++
		return false
	case workload.Insert:
		if set.Insert(k) {
			c.InsertOK++
			return true
		}
		c.InsertFail++
		return false
	case workload.Remove:
		if set.Remove(k) {
			c.RemoveOK++
			return true
		}
		c.RemoveFail++
		return false
	}
	return false
}

// opKind maps a workload op to its latency-recorder kind.
func opKind(op workload.Op) obs.OpKind {
	switch op {
	case workload.Insert:
		return obs.OpInsert
	case workload.Remove:
		return obs.OpRemove
	case workload.Scan:
		return obs.OpScan
	default:
		return obs.OpContains
	}
}

// sampleMask returns the and-mask implementing "every Nth op" with N
// rounded up to a power of two, so the sampling decision on the hot
// path is a single mask-and-compare instead of a modulo.
func sampleMask(every int) uint64 {
	if every <= 1 {
		return 0 // sample every op
	}
	return 1<<bits.Len64(uint64(every-1)) - 1
}

// drive runs cfg.Threads workers against set for roughly d and returns
// the merged counts and the actual elapsed time measured from the start
// barrier's release to the last worker's finish line crossing.
//
// When rec is non-nil, each worker times every Nth of its operations
// (N = cfg.LatencySampleEvery rounded up to a power of two) into a
// private obs.Recorder shard; shards are merged into rec after the
// workers drain, so the hot path never shares histogram cache lines.
//
// When cfg.Watchdog is positive, every worker bumps a padded beat
// counter once per operation batch and a liveness watchdog samples
// them; a worker stalled past the deadline fails the interval with a
// goroutine dump, after disarming fps (may be nil) so the stalled
// workers can drain.
//
// shards, when non-nil, supplies the pre-allocated per-worker recorder
// shards (len cfg.Threads) so a concurrent streamer can window them;
// when nil and rec is non-nil, drive allocates its own. tr, when
// non-nil, makes every worker bracket each operation with
// op-begin/op-end trace records.
//
// beats, when non-nil, supplies the per-worker progress counters (len
// cfg.Threads), owned by the caller so the adaptive controller can sum
// them across the warm-up and measured drives of one run; the workers
// bump them, and the watchdog (when armed) samples them.
func drive(set Set, cfg Config, d time.Duration, seedBase uint64, rec *obs.Recorder, shards []*obs.Recorder, fps *failpoint.Set, tr *trace.Tracer, beats []beat) (Counts, time.Duration, error) {
	var (
		stop  atomic.Bool
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		total Counts
	)
	if rec != nil && shards == nil {
		shards = make([]*obs.Recorder, cfg.Threads)
		for i := range shards {
			shards[i] = obs.NewRecorder()
		}
	}
	labels := pprof.Labels(
		"impl", cfg.Name,
		"workload", cfg.Workload.String(),
		"threads", fmt.Sprint(cfg.Threads),
	)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Labels make worker samples separable in CPU, mutex and
			// block profiles when several cells run in one process.
			pprof.Do(context.Background(), labels, func(context.Context) {
				var gen *workload.Generator
				if cfg.Phases != nil {
					gen = workload.NewPhasedGenerator(cfg.Phases, seedBase+uint64(id)*0x9E37+1)
				} else {
					gen = workload.NewGenerator(cfg.Workload, seedBase+uint64(id)*0x9E37+1)
				}
				var (
					local Counts
					shard *obs.Recorder
					mask  uint64
					n     uint64
				)
				if rec != nil {
					shard = shards[id]
					mask = sampleMask(cfg.LatencySampleEvery)
				}
				var myBeat *beat
				if beats != nil {
					myBeat = &beats[id]
				}
				<-start
				if cfg.batchMode() {
					batchedLoop(set, cfg, id, gen, &stop, &local, shard, sampleMask(cfg.LatencySampleEvery), myBeat, tr)
				} else if tr != nil {
					for !stop.Load() {
						for i := 0; i < 32; i++ {
							op, k := gen.Next()
							kind := opKind(op)
							tr.OpBegin(id, kind, k)
							var ok bool
							if shard != nil && n&mask == 0 {
								t0 := time.Now()
								ok = applyOp(set, op, k, &local)
								shard.Record(kind, time.Since(t0))
							} else {
								ok = applyOp(set, op, k, &local)
							}
							n++
							tr.OpEnd(id, kind, k, ok)
						}
						if myBeat != nil {
							myBeat.n.Add(1)
						}
					}
				} else if shard == nil {
					for !stop.Load() {
						// A small batch per stop-check keeps the flag read off
						// the hot path without stretching run tails.
						for i := 0; i < 32; i++ {
							op, k := gen.Next()
							applyOp(set, op, k, &local)
						}
						if myBeat != nil {
							myBeat.n.Add(1)
						}
					}
				} else {
					for !stop.Load() {
						for i := 0; i < 32; i++ {
							op, k := gen.Next()
							if n&mask == 0 {
								t0 := time.Now()
								applyOp(set, op, k, &local)
								shard.Record(opKind(op), time.Since(t0))
							} else {
								applyOp(set, op, k, &local)
							}
							n++
						}
						if myBeat != nil {
							myBeat.n.Add(1)
						}
					}
				}
				mu.Lock()
				total.add(local)
				mu.Unlock()
			})
		}(t)
	}
	var wd *watchdog
	if beats != nil && cfg.Watchdog > 0 {
		wd = newWatchdog(beats, cfg.Watchdog, func() {
			stop.Store(true)
			if fps != nil {
				fps.DisarmAll()
			}
			// Restore the configured retry baseline so the drain (and
			// any interval after a survivable fire) does not inherit a
			// ladder the storm had tightened.
			if cfg.RetryBudget > 0 {
				obs.AttachRetryBudget(set, cfg.RetryBudget)
			}
		})
	}
	begin := time.Now()
	close(start)
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)
	if rec != nil {
		for _, shard := range shards {
			rec.Merge(shard)
		}
	}
	var err error
	if wd != nil {
		err = wd.stop()
	}
	return total, elapsed, err
}
