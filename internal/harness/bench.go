// Package harness is the Go equivalent of the Synchrobench measurement
// loop the paper uses (Gramoli, PPoPP 2015): N worker goroutines apply a
// randomized operation mix to one shared set for a fixed wall-clock
// duration after a warm-up, repeated several times; the metric is
// aggregate throughput in operations per second.
//
// The harness is deliberately boring: per-worker xorshift generators,
// per-worker counters merged after the run, an atomic stop flag, and a
// start barrier so all workers begin together. Anything cleverer would
// risk measuring the harness.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"listset/internal/stats"
	"listset/internal/workload"
)

// Set is the operation surface the harness drives. listset.Set satisfies
// it structurally; the harness deliberately does not depend on the root
// package.
type Set interface {
	Insert(v int64) bool
	Remove(v int64) bool
	Contains(v int64) bool
}

// Config describes one benchmark cell: an implementation, a thread
// count, a workload, and the measurement protocol.
type Config struct {
	// Name identifies the implementation in reports.
	Name string
	// New constructs a fresh, empty set.
	New func() Set
	// Threads is the number of worker goroutines.
	Threads int
	// Workload is the operation mix and key range.
	Workload workload.Config
	// Duration is the measured interval per run.
	Duration time.Duration
	// Warmup runs the same load without counting before each
	// measurement. The paper warms up for as long as it measures.
	Warmup time.Duration
	// Runs is how many times the (warmup, measure) pair repeats; the
	// paper uses 5.
	Runs int
	// Seed makes population and op streams reproducible.
	Seed int64
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.New == nil {
		return fmt.Errorf("harness: Config.New is nil")
	}
	if c.Threads <= 0 {
		return fmt.Errorf("harness: Threads = %d, must be positive", c.Threads)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("harness: Duration = %v, must be positive", c.Duration)
	}
	if c.Runs <= 0 {
		return fmt.Errorf("harness: Runs = %d, must be positive", c.Runs)
	}
	return c.Workload.Validate()
}

// Counts aggregates per-operation tallies across all workers of one run.
type Counts struct {
	ContainsHit  int64
	ContainsMiss int64
	InsertOK     int64 // effective inserts (value was absent)
	InsertFail   int64
	RemoveOK     int64 // effective removes (value was present)
	RemoveFail   int64
}

// Total returns the total number of completed operations.
func (c Counts) Total() int64 {
	return c.ContainsHit + c.ContainsMiss + c.InsertOK + c.InsertFail + c.RemoveOK + c.RemoveFail
}

// EffectiveUpdateRatio returns the fraction of all operations that
// actually modified the structure — the "effective update ratio"
// Synchrobench reports.
func (c Counts) EffectiveUpdateRatio() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.InsertOK+c.RemoveOK) / float64(t)
}

func (c *Counts) add(o Counts) {
	c.ContainsHit += o.ContainsHit
	c.ContainsMiss += o.ContainsMiss
	c.InsertOK += o.InsertOK
	c.InsertFail += o.InsertFail
	c.RemoveOK += o.RemoveOK
	c.RemoveFail += o.RemoveFail
}

// Result is the outcome of running one Config.
type Result struct {
	Config Config
	// Throughputs holds ops/sec for each measured run.
	Throughputs []float64
	// Summary summarizes Throughputs.
	Summary stats.Summary
	// Counts aggregates operation tallies over all measured runs.
	Counts Counts
	// InitialSize is the set size after pre-population of the last run.
	InitialSize int
}

// Run executes the full protocol for cfg: Runs × (populate fresh set,
// warm up, measure), and returns the per-run throughputs.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg}
	for r := 0; r < cfg.Runs; r++ {
		set := cfg.New()
		res.InitialSize = workload.Prepopulate(cfg.Workload, cfg.Seed+int64(r), set.Insert)
		if cfg.Warmup > 0 {
			_, _ = drive(set, cfg, cfg.Warmup, uint64(cfg.Seed)+uint64(r)*1000)
		}
		counts, elapsed := drive(set, cfg, cfg.Duration, uint64(cfg.Seed)+uint64(r)*1000+500)
		tput := float64(counts.Total()) / elapsed.Seconds()
		res.Throughputs = append(res.Throughputs, tput)
		res.Counts.add(counts)
	}
	res.Summary = stats.Summarize(res.Throughputs)
	return res, nil
}

// drive runs cfg.Threads workers against set for roughly d and returns
// the merged counts and the actual elapsed time measured from the start
// barrier's release to the last worker's finish line crossing.
func drive(set Set, cfg Config, d time.Duration, seedBase uint64) (Counts, time.Duration) {
	var (
		stop  atomic.Bool
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		total Counts
	)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := workload.NewGenerator(cfg.Workload, seedBase+uint64(id)*0x9E37+1)
			var local Counts
			<-start
			for !stop.Load() {
				// A small batch per stop-check keeps the flag read off
				// the hot path without stretching run tails.
				for i := 0; i < 32; i++ {
					op, k := gen.Next()
					switch op {
					case workload.Contains:
						if set.Contains(k) {
							local.ContainsHit++
						} else {
							local.ContainsMiss++
						}
					case workload.Insert:
						if set.Insert(k) {
							local.InsertOK++
						} else {
							local.InsertFail++
						}
					case workload.Remove:
						if set.Remove(k) {
							local.RemoveOK++
						} else {
							local.RemoveFail++
						}
					}
				}
			}
			mu.Lock()
			total.add(local)
			mu.Unlock()
		}(t)
	}
	begin := time.Now()
	close(start)
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)
	return total, elapsed
}
