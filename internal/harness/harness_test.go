package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"listset/internal/workload"
)

// mapSet is a mutex-protected map set, a trivially correct Set for
// harness tests.
type mapSet struct {
	mu sync.Mutex
	m  map[int64]bool
}

func newMapSet() Set { return &mapSet{m: map[int64]bool{}} }

func (s *mapSet) Insert(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[v] {
		return false
	}
	s.m[v] = true
	return true
}

func (s *mapSet) Remove(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[v] {
		return false
	}
	delete(s.m, v)
	return true
}

func (s *mapSet) Contains(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[v]
}

func testConfig() Config {
	return Config{
		Name:     "map",
		New:      newMapSet,
		Threads:  4,
		Workload: workload.Config{UpdatePercent: 20, Range: 64},
		Duration: 30 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Runs:     2,
		Seed:     1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.New = nil },
		func(c *Config) { c.Threads = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Runs = 0 },
		func(c *Config) { c.Workload.Range = 0 },
		func(c *Config) { c.Workload.UpdatePercent = 120 },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunProducesThroughputs(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Throughputs) != cfg.Runs {
		t.Fatalf("got %d throughputs, want %d", len(res.Throughputs), cfg.Runs)
	}
	for i, tput := range res.Throughputs {
		if tput <= 0 {
			t.Fatalf("run %d throughput = %v", i, tput)
		}
	}
	if res.Counts.Total() == 0 {
		t.Fatal("no operations counted")
	}
	if res.Summary.N != cfg.Runs {
		t.Fatalf("summary over %d runs, want %d", res.Summary.N, cfg.Runs)
	}
	// Prepopulation put roughly half the range in.
	if res.InitialSize < 16 || res.InitialSize > 48 {
		t.Fatalf("initial size %d implausible for range 64", res.InitialSize)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Threads = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted invalid config")
	}
}

// TestCountsMixPlausible checks that the op mix the harness measures
// matches the workload: with 20% updates, contains ops dominate, and at
// steady state insert and remove successes are balanced.
func TestCountsMixPlausible(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 80 * time.Millisecond
	cfg.Runs = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	total := float64(c.Total())
	containsFrac := float64(c.ContainsHit+c.ContainsMiss) / total
	if containsFrac < 0.7 || containsFrac > 0.9 {
		t.Fatalf("contains fraction %.2f, want about 0.8", containsFrac)
	}
	// Steady state: inserts that succeed ~= removes that succeed (the set
	// size is stationary around range/2).
	ins, rem := float64(c.InsertOK), float64(c.RemoveOK)
	if ins == 0 || rem == 0 {
		t.Fatal("no effective updates measured")
	}
	if ratio := ins / rem; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("effective insert/remove ratio %.2f, want about 1", ratio)
	}
	if eur := c.EffectiveUpdateRatio(); eur <= 0 || eur >= 0.2 {
		t.Fatalf("effective update ratio %.3f, want in (0, 0.2)", eur)
	}
}

func TestCountsTotalAndAdd(t *testing.T) {
	a := Counts{ContainsHit: 1, ContainsMiss: 2, InsertOK: 3, InsertFail: 4, RemoveOK: 5, RemoveFail: 6}
	if a.Total() != 21 {
		t.Fatalf("Total = %d, want 21", a.Total())
	}
	var b Counts
	b.add(a)
	b.add(a)
	if b.Total() != 42 {
		t.Fatalf("after two adds Total = %d, want 42", b.Total())
	}
	if (Counts{}).EffectiveUpdateRatio() != 0 {
		t.Fatal("EffectiveUpdateRatio of zero Counts != 0")
	}
}

func TestRunSweepShapesAndReports(t *testing.T) {
	s := Sweep{
		Title:      "test sweep",
		Candidates: []Candidate{{Name: "map", New: newMapSet}, {Name: "map2", New: newMapSet}},
		Threads:    []int{1, 2},
		Workload:   workload.Config{UpdatePercent: 50, Range: 32},
		Duration:   15 * time.Millisecond,
		Warmup:     0,
		Runs:       1,
		Seed:       2,
	}
	res, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 || len(res.Results[0]) != 2 {
		t.Fatalf("result shape %dx%d, want 2x2", len(res.Results), len(res.Results[0]))
	}
	if got := res.Series(0); len(got) != 2 || got[0] <= 0 {
		t.Fatalf("Series(0) = %v", got)
	}
	if res.CandidateIndex("map2") != 1 || res.CandidateIndex("nope") != -1 {
		t.Fatal("CandidateIndex wrong")
	}

	var table bytes.Buffer
	res.WriteTable(&table)
	out := table.String()
	for _, want := range []string{"test sweep", "threads", "map", "map2", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	res.WriteCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + 2 candidates × 2 threads × 1 run
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "title,workload,impl,threads,run,") {
		t.Fatalf("CSV header = %q", lines[0])
	}

	var sp bytes.Buffer
	res.WriteSpeedups(&sp, "map")
	if !strings.Contains(sp.String(), "speedup of map over:") {
		t.Fatalf("speedups output = %q", sp.String())
	}
	var spBad bytes.Buffer
	res.WriteSpeedups(&spBad, "nope")
	if !strings.Contains(spBad.String(), "unknown reference") {
		t.Fatal("missing unknown-reference diagnostic")
	}
}

func TestSweepProgressWriter(t *testing.T) {
	var progress bytes.Buffer
	s := Sweep{
		Title:      "progress",
		Candidates: []Candidate{{Name: "map", New: newMapSet}},
		Threads:    []int{1},
		Workload:   workload.Config{UpdatePercent: 0, Range: 16},
		Duration:   10 * time.Millisecond,
		Runs:       1,
		Progress:   &progress,
	}
	if _, err := RunSweep(s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "map") {
		t.Fatalf("progress output = %q", progress.String())
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain string escaped")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Fatal("comma not quoted")
	}
	if csvEscape(`a"b`) != `"a""b"` {
		t.Fatal("quote not doubled")
	}
}
