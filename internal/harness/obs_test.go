package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"listset/internal/core"
	"listset/internal/obs"
	"listset/internal/workload"
)

// obsConfig drives the instrumented VBL so probe events actually fire.
func obsConfig() Config {
	cfg := Config{
		Name:               "vbl",
		New:                func() Set { return core.New() },
		Threads:            4,
		Workload:           workload.Config{UpdatePercent: 50, Range: 64},
		Duration:           30 * time.Millisecond,
		Warmup:             5 * time.Millisecond,
		Runs:               2,
		Seed:               1,
		Probes:             obs.NewProbes(),
		LatencySampleEvery: 4,
	}
	return cfg
}

func TestRunWithProbesAndLatency(t *testing.T) {
	res, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Compiled {
		t.Skip("built with -tags obsoff: no events to assert on")
	}
	// 50% updates over a 64-key range must log deletes; physical unlinks
	// accompany every VBL remove.
	if res.Events[obs.EvLogicalDelete] == 0 {
		t.Error("no logical deletes counted over an update-heavy run")
	}
	if res.Events[obs.EvPhysicalUnlink] != res.Events[obs.EvLogicalDelete] {
		t.Errorf("unlinks = %d, deletes = %d; VBL removes unlink inline",
			res.Events[obs.EvPhysicalUnlink], res.Events[obs.EvLogicalDelete])
	}
	if res.Counts.RemoveOK <= 0 {
		t.Fatal("no successful removes — workload misconfigured")
	}
	// Events are measured-interval deltas: warm-up removes must not be
	// included, so deletes cannot exceed the counted removes by much
	// (Snapshot is racy only within a run's own tail).
	if got, want := res.Events[obs.EvLogicalDelete], uint64(res.Counts.RemoveOK); got > want {
		t.Errorf("logical deletes %d > counted successful removes %d: warm-up leaked into the delta", got, want)
	}
	if res.Latency == nil {
		t.Fatal("Latency nil with LatencySampleEvery set")
	}
	if res.Latency.Count() == 0 {
		t.Error("no latency samples with LatencySampleEvery=4")
	}
	for _, op := range []obs.OpKind{obs.OpContains, obs.OpInsert, obs.OpRemove} {
		if res.Latency.Percentiles(op).Count == 0 {
			t.Errorf("no %s samples over a mixed workload", op)
		}
	}
	if res.Latency.Percentiles(obs.OpScan).Count != 0 {
		t.Error("scan samples recorded by a scan-free workload")
	}
}

func TestRunWithoutProbesZero(t *testing.T) {
	cfg := testConfig() // mapSet: not Instrumented, no probes
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != (obs.Snapshot{}) {
		t.Errorf("Events = %v without probes, want all zero", res.Events)
	}
	if res.Latency != nil {
		t.Error("Latency non-nil without sampling")
	}
}

func TestSampleMask(t *testing.T) {
	cases := []struct {
		every int
		mask  uint64
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 3}, {4, 3}, {5, 7}, {64, 63}, {100, 127},
	}
	for _, c := range cases {
		if got := sampleMask(c.every); got != c.mask {
			t.Errorf("sampleMask(%d) = %d, want %d", c.every, got, c.mask)
		}
	}
}

// TestJSONReportSchema pins the report layout: committed BENCH_*.json
// files and downstream tooling parse these exact keys.
func TestJSONReportSchema(t *testing.T) {
	res, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if doc["schema"] != ReportSchema {
		t.Fatalf("schema = %v, want %q", doc["schema"], ReportSchema)
	}
	for _, key := range []string{"impl", "threads", "workload", "protocol", "initial_size", "throughput", "counts", "events", "latency_ns"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing top-level key %q", key)
		}
	}
	events, ok := doc["events"].(map[string]any)
	if !ok {
		t.Fatalf("events is %T, want object", doc["events"])
	}
	if len(events) != int(obs.NumEvents) {
		t.Errorf("events has %d keys, want %d (zeros must be present)", len(events), obs.NumEvents)
	}
	lat, ok := doc["latency_ns"].(map[string]any)
	if !ok {
		t.Fatalf("latency_ns is %T, want object", doc["latency_ns"])
	}
	for _, op := range []string{"contains", "insert", "remove"} {
		entry, ok := lat[op].(map[string]any)
		if !ok {
			t.Fatalf("latency_ns[%q] is %T, want object", op, lat[op])
		}
		for _, key := range []string{"count", "p50", "p90", "p99", "p999"} {
			if _, ok := entry[key]; !ok {
				t.Errorf("latency_ns[%q] missing %q", op, key)
			}
		}
	}
	counts, ok := doc["counts"].(map[string]any)
	if !ok {
		t.Fatalf("counts is %T, want object", doc["counts"])
	}
	for _, key := range []string{"contains_hit", "contains_miss", "insert_ok", "insert_fail", "remove_ok", "remove_fail", "total", "effective_update_ratio"} {
		if _, ok := counts[key]; !ok {
			t.Errorf("counts missing %q", key)
		}
	}
}

// TestSweepObserve checks that Observe gives each cell its own probes,
// so event counts are per cell rather than conflated across the grid.
func TestSweepObserve(t *testing.T) {
	s := Sweep{
		Title:      "observe",
		Candidates: []Candidate{{Name: "vbl", New: func() Set { return core.New() }}},
		Threads:    []int{1, 2},
		Workload:   workload.Config{UpdatePercent: 100, Range: 32},
		Duration:   20 * time.Millisecond,
		Runs:       1,
		Seed:       7,
		Observe:    true,
	}
	res, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Compiled {
		t.Skip("built with -tags obsoff: no events to assert on")
	}
	for j, cell := range res.Results[0] {
		if cell.Events[obs.EvLogicalDelete] == 0 {
			t.Errorf("cell %d: no deletes under a 100%%-update workload", j)
		}
		if cell.Config.Probes == nil {
			t.Errorf("cell %d: Observe did not install probes", j)
		}
	}
	if res.Results[0][0].Config.Probes == res.Results[0][1].Config.Probes {
		t.Error("cells share one Probes; Observe must give each its own")
	}
	reps := res.JSONReports()
	if len(reps) != 2 {
		t.Fatalf("JSONReports = %d entries, want 2", len(reps))
	}
}
