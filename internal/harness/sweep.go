package harness

import (
	"fmt"
	"io"
	"time"

	"listset/internal/adapt"
	"listset/internal/failpoint"
	"listset/internal/obs"
	"listset/internal/workload"
)

// Candidate names one implementation entered into a sweep. Shards is
// the shard count of the partitioned façade New constructs (0 =
// unsharded); it flows into each cell's Config and report unchanged.
// Adapt, when non-nil, runs this candidate's cells under the adaptive
// contention controller — per candidate, so one sweep can hold the
// static and adaptive columns of the same implementation side by side.
type Candidate struct {
	Name   string
	New    func() Set
	Shards int
	Adapt  *adapt.Config
}

// Sweep describes a grid of benchmark cells: every candidate × every
// thread count, for one workload. This is the unit from which the
// paper's figures are assembled (each panel of Figure 4 is one Sweep).
type Sweep struct {
	Title      string
	Candidates []Candidate
	Threads    []int
	Workload   workload.Config
	Duration   time.Duration
	Warmup     time.Duration
	Runs       int
	Seed       int64
	// Progress, if non-nil, receives a line per completed cell.
	Progress io.Writer
	// Observe gives every cell a fresh obs.Probes so per-cell event
	// counts land in each Result.Events (cells run sequentially, so a
	// shared counter set would conflate them).
	Observe bool
	// LatencySampleEvery forwards to Config.LatencySampleEvery.
	LatencySampleEvery int
	// Chaos, RetryBudget, Watchdog and BatchSize forward to the
	// matching Config fields of every cell.
	Chaos       []failpoint.Scenario
	RetryBudget int
	Watchdog    time.Duration
	BatchSize   int
	// Phases forwards the time-varying schedule to every cell. Cells
	// run sequentially, so sharing one schedule is safe — each run
	// rewinds the clock to phase 0.
	Phases *workload.Schedule
}

// SweepResult holds one sweep's results indexed [candidate][thread].
type SweepResult struct {
	Sweep   Sweep
	Results [][]Result
}

// RunSweep executes every cell of the sweep sequentially (cells must not
// overlap in time — they'd contend for the same cores).
func RunSweep(s Sweep) (SweepResult, error) {
	out := SweepResult{Sweep: s}
	for _, cand := range s.Candidates {
		var row []Result
		for _, th := range s.Threads {
			cfg := Config{
				Name:               cand.Name,
				New:                cand.New,
				Shards:             cand.Shards,
				Threads:            th,
				Workload:           s.Workload,
				Duration:           s.Duration,
				Warmup:             s.Warmup,
				Runs:               s.Runs,
				Seed:               s.Seed,
				LatencySampleEvery: s.LatencySampleEvery,
				Chaos:              s.Chaos,
				RetryBudget:        s.RetryBudget,
				Watchdog:           s.Watchdog,
				BatchSize:          s.BatchSize,
				Adapt:              cand.Adapt,
				Phases:             s.Phases,
			}
			if s.Observe || cand.Adapt != nil {
				// Adaptive candidates need probes regardless: the
				// counters are the controller's only signal.
				cfg.Probes = obs.NewProbes()
			}
			res, err := Run(cfg)
			if err != nil {
				return SweepResult{}, fmt.Errorf("sweep %q cell (%s, %d threads): %w", s.Title, cand.Name, th, err)
			}
			if s.Progress != nil {
				fmt.Fprintf(s.Progress, "  %-14s %2d threads  %s ops/s\n",
					cand.Name, th, humanThroughput(res.Summary.Mean))
			}
			row = append(row, res)
		}
		out.Results = append(out.Results, row)
	}
	return out, nil
}

// Series returns the mean-throughput series for candidate i, one value
// per thread count.
func (r SweepResult) Series(i int) []float64 {
	out := make([]float64, len(r.Results[i]))
	for j, res := range r.Results[i] {
		out[j] = res.Summary.Mean
	}
	return out
}

// CandidateIndex returns the row index of the named candidate, or -1.
func (r SweepResult) CandidateIndex(name string) int {
	for i, c := range r.Sweep.Candidates {
		if c.Name == name {
			return i
		}
	}
	return -1
}
