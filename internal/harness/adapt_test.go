package harness

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"listset/internal/adapt"
	"listset/internal/obs"
	"listset/internal/shard"
	"listset/internal/workload"
)

// TestRunWithAdaptOnSharded runs a full adaptive cell end to end: a
// sharded set, a hotspot workload, and the controller alive across
// warm-up and measurement. The cell must complete, report a ticking
// controller, and surface everything in the JSON row.
func TestRunWithAdaptOnSharded(t *testing.T) {
	cfg := testConfig()
	cfg.Name = "sharded-map"
	cfg.Shards = 4
	cfg.New = func() Set {
		return shard.NewRange(4, 0, 4096, func() shard.Set { return &shardMapSet{m: map[int64]bool{}} })
	}
	cfg.Workload = workload.Config{
		UpdatePercent: 20, Range: 4096,
		Dist: workload.DistHotspot, HotLo: 0, HotWidth: 64,
	}
	cfg.Probes = obs.NewProbes()
	cfg.Adapt = &adapt.Config{Interval: 2 * time.Millisecond, Rebalance: true, HotStreak: 2, Cooldown: 2}
	cfg.Duration = 60 * time.Millisecond
	cfg.Warmup = 20 * time.Millisecond
	cfg.Runs = 1

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapt == nil {
		t.Fatal("adaptive cell produced no controller stats")
	}
	if res.Adapt.Ticks == 0 {
		t.Fatal("controller never ticked during the run")
	}
	if len(res.Adapt.FinalCeilings) != 4 {
		t.Fatalf("final ceilings = %v, want one per shard", res.Adapt.FinalCeilings)
	}
	rep := Report(res)
	if rep.Adapt == nil || rep.Adapt.Ticks != res.Adapt.Ticks {
		t.Fatal("JSON row dropped the adapt section")
	}
	if rep.Protocol.AdaptIntervalSec <= 0 {
		t.Fatalf("adapt_interval_s = %v, want positive", rep.Protocol.AdaptIntervalSec)
	}
	if rep.Workload.HotWidth != 64 || rep.Workload.Dist != workload.DistHotspot {
		t.Fatalf("workload row lost the hotspot shape: %+v", rep.Workload)
	}
}

// TestRunWithPhases drives a cell through the bursts schedule and
// checks the protocol row names the cycle.
func TestRunWithPhases(t *testing.T) {
	cfg := testConfig()
	base := workload.Config{UpdatePercent: 20, Range: 64}
	sched, err := workload.Preset("bursts", base, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = base
	cfg.Phases = sched
	cfg.Duration = 40 * time.Millisecond
	cfg.Runs = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() == 0 {
		t.Fatal("phased run counted no operations")
	}
	rep := Report(res)
	if !strings.Contains(rep.Protocol.Phases, "write-burst") {
		t.Fatalf("protocol phases = %q, want the cycle string", rep.Protocol.Phases)
	}
}

// TestValidateAdaptNeedsProbes pins the coupling: the controller's
// signals are the probe counters, so Adapt without Probes is a config
// error, not a silent no-op.
func TestValidateAdaptNeedsProbes(t *testing.T) {
	cfg := testConfig()
	cfg.Adapt = &adapt.Config{}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Adapt without Probes accepted")
	}
	cfg.Probes = obs.NewProbes()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Adapt with Probes rejected: %v", err)
	}
}

// TestValidatePhasesRangeCovered: a schedule drawing past the
// populated range is rejected up front.
func TestValidatePhasesRangeCovered(t *testing.T) {
	cfg := testConfig()
	sched, err := workload.NewSchedule([]workload.Phase{
		{Name: "wide", Dur: time.Millisecond, Cfg: workload.Config{UpdatePercent: 10, Range: 1 << 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Phases = sched
	if err := cfg.Validate(); err == nil {
		t.Fatal("phase range beyond Workload.Range accepted")
	}
}

// shardMapSet is mapSet's shard.Set twin (Len/Snapshot/RangeScan for
// the façade's migration machinery).
type shardMapSet struct {
	mu sync.Mutex
	m  map[int64]bool
}

func (s *shardMapSet) Insert(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[v] {
		return false
	}
	s.m[v] = true
	return true
}

func (s *shardMapSet) Remove(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[v] {
		return false
	}
	delete(s.m, v)
	return true
}

func (s *shardMapSet) Contains(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[v]
}

func (s *shardMapSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *shardMapSet) Snapshot() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
