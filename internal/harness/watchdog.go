package harness

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

// beat is one worker's progress counter, bumped once per operation
// batch and sampled by the watchdog. Padded to a cache line so the
// workers' bumps never share a line with each other (or with the
// monitor's reads of a neighbour).
type beat struct {
	n atomic.Uint64
	_ [120]byte
}

// watchdog is the harness's liveness monitor: a goroutine that samples
// every worker's beat counter and fires when any worker makes no
// progress for the configured deadline — the observable symptom of a
// livelock (an update spinning through failed validations forever, a
// goroutine parked at an unreleased pause gate) that a throughput
// number alone would report as a mysteriously idle run.
//
// On firing it writes a full goroutine dump to stderr (the stacks ARE
// the diagnosis: they name the site the stalled ops are spinning at),
// invokes onFire — the harness uses this to raise the stop flag and
// disarm every failpoint so the stalled workers drain instead of
// hanging the process — and reports the breach as the run's error.
type watchdog struct {
	deadline time.Duration
	beats    []beat
	onFire   func()
	quit     chan struct{}
	done     chan struct{}
	err      error // written by the monitor goroutine before done closes
}

// newWatchdog starts monitoring the given beat counters. The caller
// must call stop exactly once to end monitoring and read the verdict.
func newWatchdog(beats []beat, deadline time.Duration, onFire func()) *watchdog {
	w := &watchdog{
		deadline: deadline,
		beats:    beats,
		onFire:   onFire,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

// run samples the beats at deadline/8 (clamped below at 1ms): fine
// enough that a breach is detected within ~1/8 of the deadline of
// becoming true, coarse enough that the monitor is invisible in the
// profile.
func (w *watchdog) run() {
	defer close(w.done)
	tick := w.deadline / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := make([]uint64, len(w.beats))
	since := make([]time.Time, len(w.beats))
	now := time.Now()
	for i := range since {
		last[i] = w.beats[i].n.Load()
		since[i] = now
	}
	for {
		select {
		case <-w.quit:
			return
		case now := <-t.C:
			for i := range w.beats {
				n := w.beats[i].n.Load()
				if n != last[i] {
					last[i], since[i] = n, now
					continue
				}
				if stalled := now.Sub(since[i]); stalled > w.deadline {
					w.fire(i, stalled)
					return
				}
			}
		}
	}
}

// fire reports the liveness breach: goroutine dump to stderr, error for
// the caller, onFire to unwedge the workers.
func (w *watchdog) fire(worker int, stalled time.Duration) {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(os.Stderr,
		"harness: liveness watchdog fired: worker %d made no progress for %v (deadline %v); goroutine dump:\n%s\n",
		worker, stalled.Round(time.Millisecond), w.deadline, buf[:n])
	w.err = fmt.Errorf(
		"harness: liveness watchdog fired: worker %d made no progress for %v (deadline %v)",
		worker, stalled.Round(time.Millisecond), w.deadline)
	if w.onFire != nil {
		w.onFire()
	}
}

// stop ends monitoring and returns nil, or the breach if the watchdog
// fired. Call exactly once, after the workers have drained.
func (w *watchdog) stop() error {
	close(w.quit)
	<-w.done
	return w.err
}
