package hoh

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	l := New()
	if !l.Insert(2) || l.Insert(2) || !l.Contains(2) || l.Contains(3) {
		t.Fatal("basic insert/contains semantics wrong")
	}
	if !l.Remove(2) || l.Remove(2) || l.Contains(2) {
		t.Fatal("basic remove semantics wrong")
	}
	if l.Len() != 0 || len(l.Snapshot()) != 0 {
		t.Fatal("empty after balanced ops expected")
	}
}

func TestFindLeavesLocksBalanced(t *testing.T) {
	l := New()
	for _, v := range []int64{10, 20, 30} {
		l.Insert(v)
	}
	// After any sequence of operations every lock must be free again;
	// exercise all landing positions.
	for _, v := range []int64{5, 10, 15, 20, 25, 30, 35} {
		l.Contains(v)
	}
	// A second full pass would deadlock instantly if any lock leaked.
	for _, v := range []int64{5, 10, 15, 20, 25, 30, 35} {
		l.Contains(v)
	}
	if got := l.Snapshot(); len(got) != 3 {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestQuickVsMap(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(prog []op) bool {
		l := New()
		oracle := map[int64]bool{}
		for _, o := range prog {
			k := int64(o.Key % 16)
			switch o.Kind % 3 {
			case 0:
				if l.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if l.Remove(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if l.Contains(k) != oracle[k] {
					return false
				}
			}
		}
		return l.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedTraversals: hand-over-hand admits multiple concurrent
// traversals in flight; this must neither deadlock nor corrupt.
func TestPipelinedTraversals(t *testing.T) {
	l := New()
	for k := int64(0); k < 50; k++ {
		l.Insert(k * 2)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := int64(rng.Intn(100))
				switch rng.Intn(3) {
				case 0:
					l.Insert(k)
				case 1:
					l.Remove(k)
				default:
					l.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("snapshot not ascending: %v", snap)
		}
	}
}
