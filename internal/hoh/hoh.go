// Package hoh implements the hand-over-hand (fine-grained locking) list:
// every traversal holds two adjacent node locks and "walks" them down the
// list, releasing the one behind as it acquires the one ahead.
//
// It is the classic pedagogical step between coarse-grained locking and
// optimistic/lazy designs ("The Art of Multiprocessor Programming",
// ch. 9.5) and serves here as an additional baseline: it admits pipelined
// traversals but every operation — including read-only contains — locks
// every node on its path, the extreme opposite of VBL's metadata
// discipline.
package hoh

import "sync"

// Sentinel values stored in the head and tail nodes.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

type node struct {
	val  int64
	next *node
	mu   sync.Mutex
}

// List is the hand-over-hand locking list.
type List struct {
	head *node
}

// New returns an empty hand-over-hand locking set.
func New() *List {
	tail := &node{val: MaxSentinel}
	head := &node{val: MinSentinel, next: tail}
	return &List{head: head}
}

// find returns the window (prev, curr) with both locks held.
// The caller must unlock curr then prev.
func (l *List) find(v int64) (prev, curr *node) {
	prev = l.head
	prev.mu.Lock()
	curr = prev.next
	curr.mu.Lock()
	for curr.val < v {
		prev.mu.Unlock()
		prev = curr
		curr = curr.next
		curr.mu.Lock()
	}
	return prev, curr
}

// Insert adds v to the set and reports whether v was absent.
func (l *List) Insert(v int64) bool {
	prev, curr := l.find(v)
	defer prev.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.val == v {
		return false
	}
	//lint:ignore hotalloc the insert path must materialize the new node; the hand-over-hand baseline has no arena mode
	prev.next = &node{val: v, next: curr}
	return true
}

// Remove deletes v from the set and reports whether v was present.
func (l *List) Remove(v int64) bool {
	prev, curr := l.find(v)
	defer prev.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.val != v {
		return false
	}
	prev.next = curr.next
	return true
}

// Contains reports whether v is in the set.
func (l *List) Contains(v int64) bool {
	prev, curr := l.find(v)
	defer prev.mu.Unlock()
	defer curr.mu.Unlock()
	return curr.val == v
}

// Len returns the number of elements. It locks hand-over-hand to the end.
func (l *List) Len() int {
	n := 0
	prev := l.head
	prev.mu.Lock()
	curr := prev.next
	curr.mu.Lock()
	for curr.val != MaxSentinel {
		n++
		prev.mu.Unlock()
		prev = curr
		curr = curr.next
		curr.mu.Lock()
	}
	curr.mu.Unlock()
	prev.mu.Unlock()
	return n
}

// Snapshot returns the elements in ascending order.
func (l *List) Snapshot() []int64 {
	var out []int64
	prev := l.head
	prev.mu.Lock()
	curr := prev.next
	curr.mu.Lock()
	for curr.val != MaxSentinel {
		out = append(out, curr.val)
		prev.mu.Unlock()
		prev = curr
		curr = curr.next
		curr.mu.Lock()
	}
	curr.mu.Unlock()
	prev.mu.Unlock()
	return out
}
