package trylock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffMutualExclusion hammers one lock from many goroutines
// with a plain (non-atomic) shared counter in the critical section.
// Run under -race (the CI race gate does) this doubles as the data-race
// proof that the backoff rewrite still establishes happens-before
// edges through the lock word.
func TestBackoffMutualExclusion(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var (
		l       SpinLock
		counter int // deliberately unsynchronized; the lock must protect it
		wg      sync.WaitGroup
	)
	const (
		goroutines = 8
		increments = 5000
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := goroutines * increments; counter != want {
		t.Fatalf("counter = %d, want %d (lost increments => mutual exclusion broken)", counter, want)
	}
}

// TestLockContendedCountsUnderBackoff verifies the contended-
// acquisition signal the observability layer counts still fires with
// exponential backoff on the slow path, and that every LockContended
// call nevertheless ends holding the lock. Contention is not left to
// scheduling luck (on a single-core runner a worker can finish its
// whole loop inside one quantum): the test holds the lock itself while
// the workers start, so their first attempts must fail.
func TestLockContendedCountsUnderBackoff(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var (
		l         SpinLock
		contended atomic.Int64
		held      int // protected by l; validates each acquisition
		wg        sync.WaitGroup
	)
	const (
		goroutines   = 8
		acquisitions = 2000
	)
	l.Lock()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < acquisitions; i++ {
				if l.LockContended() {
					contended.Add(1)
				}
				held++
				l.Unlock()
			}
		}()
	}
	// Yield long enough for the workers to run into the held lock, then
	// release it and let the hammer loop finish.
	time.Sleep(20 * time.Millisecond)
	l.Unlock()
	wg.Wait()
	if want := goroutines * acquisitions; held != want {
		t.Fatalf("held = %d, want %d", held, want)
	}
	if contended.Load() == 0 {
		t.Fatal("no contended acquisitions observed across 8 goroutines x 2000 acquisitions; LockContended no longer reports contention")
	}
}

// TestBackoffSpinPathMutualExclusion forces the multiprocessor spin
// path (the uniprocessor flag short-circuits it on single-core CI
// machines) and re-proves mutual exclusion through the exponential
// backoff loop itself. The flag flips happen before the workers start
// and after they join, so they are race-free.
func TestBackoffSpinPathMutualExclusion(t *testing.T) {
	old := uniprocessor
	uniprocessor = false
	defer func() { uniprocessor = old }()
	var (
		l       SpinLock
		counter int
		wg      sync.WaitGroup
	)
	const (
		goroutines = 4
		increments = 2000
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := goroutines * increments; counter != want {
		t.Fatalf("counter = %d, want %d", counter, want)
	}
}

// TestBackoffEventuallyAcquiresAfterLongHold pins the liveness of the
// capped backoff: a waiter whose budget has escalated to the maximum
// must still acquire promptly once the lock frees.
func TestBackoffEventuallyAcquiresAfterLongHold(t *testing.T) {
	var l SpinLock
	l.Lock()
	done := make(chan struct{})
	go func() {
		// This waiter spins through the whole exponential range and
		// into the yield regime while the test goroutine holds on.
		l.Lock()
		l.Unlock()
		close(done)
	}()
	// Force the waiter past maxSpin: yield the CPU to it repeatedly
	// while the lock stays held.
	for i := 0; i < 200; i++ {
		runtime.Gosched()
	}
	l.Unlock()
	<-done
}

// TestBackoffPerInstance pins the satellite fix of PR 9: backoff
// bounds are per-policy, not process-wide, so two sets (or two shards)
// tuned independently never observe each other's ceilings.
func TestBackoffPerInstance(t *testing.T) {
	a, b := NewBackoff(), NewBackoff()
	a.SetCeiling(1 << 12)
	if got := a.Ceiling(); got != 1<<12 {
		t.Fatalf("a.Ceiling() = %d, want %d", got, 1<<12)
	}
	if got := b.Ceiling(); got != DefaultMaxSpin {
		t.Fatalf("b.Ceiling() = %d after tuning a, want the default %d (policies share state)", got, DefaultMaxSpin)
	}
	// Clamping: below the floor and above the hard limit.
	a.SetCeiling(0)
	if got := a.Ceiling(); got != DefaultMinSpin {
		t.Fatalf("SetCeiling(0) => Ceiling() = %d, want clamp to %d", got, DefaultMinSpin)
	}
	a.SetCeiling(1 << 30)
	if got := a.Ceiling(); got != CeilingLimit {
		t.Fatalf("SetCeiling(1<<30) => Ceiling() = %d, want clamp to %d", got, CeilingLimit)
	}
	// Nil and zero-value policies behave as the defaults.
	var nilB *Backoff
	min, max := nilB.bounds()
	if min != DefaultMinSpin || max != DefaultMaxSpin {
		t.Fatalf("nil policy bounds = (%d, %d), want defaults (%d, %d)", min, max, DefaultMinSpin, DefaultMaxSpin)
	}
	var zero Backoff
	min, max = zero.bounds()
	if min != DefaultMinSpin || max != DefaultMaxSpin {
		t.Fatalf("zero policy bounds = (%d, %d), want defaults (%d, %d)", min, max, DefaultMinSpin, DefaultMaxSpin)
	}
}

// TestLockWithMutualExclusion re-proves mutual exclusion through the
// policy-taking acquisition path while a concurrent tuner retunes the
// ceiling — the exact interleaving the adaptive controller produces.
func TestLockWithMutualExclusion(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var (
		l       SpinLock
		counter int // protected by l
		wg      sync.WaitGroup
		stop    atomic.Bool
	)
	bo := NewBackoff()
	const (
		goroutines = 4
		increments = 3000
	)
	go func() {
		for i := 0; !stop.Load(); i++ {
			bo.SetCeiling(DefaultMinSpin << (i % 8))
			runtime.Gosched()
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				if id%2 == 0 {
					l.LockWith(bo)
				} else if l.LockContendedWith(bo) {
					_ = id // contended signal exercised; value irrelevant here
				}
				counter++
				l.Unlock()
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	if want := goroutines * increments; counter != want {
		t.Fatalf("counter = %d, want %d (lost increments under live retuning)", counter, want)
	}
}
