package trylock

import (
	"sync/atomic"

	"listset/internal/failpoint"
)

// chaos is the package-global failpoint set consulted by blocking lock
// acquisitions. SpinLock is a single word embedded per node — there is
// no room for a per-lock pointer, and threading one through every
// acquisition call site would put a dead argument on the hottest path
// in the repository — so the hook is process-wide, like the fault it
// models (scheduler jitter around lock acquisition hits every lock).
var chaos atomic.Pointer[failpoint.Set]

// SetChaos installs (or with nil removes) the process-wide failpoint
// set consulted at the SiteTryLockAcquire hook in Lock and
// LockContended. Benchmarks install it for the duration of a chaos run
// and remove it afterwards; overlapping runs would share the arms.
func SetChaos(fp *failpoint.Set) { chaos.Store(fp) }

// chaosPoint is the acquisition hook: a delay/yield/pause injected
// before the first CAS attempt widens the lock-held windows the paper's
// validation schedules race against. Site keys are lock identities
// (not list keys), so key-filtered scenarios do not apply here; arms
// fire on every acquisition their probability admits.
func chaosPoint() {
	if fp := chaos.Load(); failpoint.On(fp) {
		fp.Do(failpoint.SiteTryLockAcquire, 0)
	}
}
