package trylock

import (
	"sync"
	"testing"
	"time"
)

func TestSpinLockBasic(t *testing.T) {
	var l SpinLock
	if l.Locked() {
		t.Fatal("zero-value SpinLock reports locked")
	}
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if !l.Locked() {
		t.Fatal("lock not reported held after TryLock")
	}
	//lint:ignore locksafe this second TryLock must fail — the test asserts non-reentrancy on a deliberately held lock
	if l.TryLock() {
		t.Fatal("TryLock succeeded on held lock")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("lock reported held after Unlock")
	}
}

func TestSpinLockLockBlocksUntilUnlock(t *testing.T) {
	var l SpinLock
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		//lint:ignore locksafe deliberate cross-goroutine transfer: the test body unlocks on this goroutine's behalf after observing `acquired`
		l.Lock()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second Lock acquired while first still held")
	case <-time.After(20 * time.Millisecond):
	}
	l.Unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not acquire after Unlock")
	}
	l.Unlock()
}

// TestSpinLockTryLockUnderContention pins the non-blocking contract:
// while another owner holds the lock, TryLock must return false
// promptly rather than spin. A thousand failed attempts completing
// within the (generous) deadline proves TryLock never blocks.
func TestSpinLockTryLockUnderContention(t *testing.T) {
	var l SpinLock
	l.Lock()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		//lint:ignore locksafe this TryLock must fail — the test holds the lock for the whole loop to probe the non-blocking failure path
		if l.TryLock() {
			l.Unlock()
			t.Fatal("TryLock succeeded while the lock was held")
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("1000 TryLock attempts took %v; TryLock appears to block", elapsed)
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on a free lock after contention")
	}
	l.Unlock()
}

// TestSpinLockRaceSmoke is the minimal -race fixture: exactly two
// goroutines hammer one SpinLock around a plain int. The race
// detector validates the happens-before edge Unlock publishes for the
// next Lock; the final count validates mutual exclusion.
func TestSpinLockRaceSmoke(t *testing.T) {
	const iterations = 5000
	var l SpinLock
	shared := 0
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				l.Lock()
				shared++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := 2 * iterations; shared != want {
		t.Fatalf("shared = %d, want %d", shared, want)
	}
}

func TestSpinLockUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked SpinLock did not panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

// TestSpinLockDoubleUnlockPanics pins the release protocol from the
// other side: a correctly paired Unlock must succeed and a SECOND
// Unlock of the now-free lock must panic — a double release is a
// corrupted critical section, not a no-op.
func TestSpinLockDoubleUnlockPanics(t *testing.T) {
	var l SpinLock
	l.Lock()
	l.Unlock() // paired: must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("second Unlock of a released SpinLock did not panic")
		}
	}()
	l.Unlock()
}

// TestSpinLockMutualExclusion hammers a counter from many goroutines;
// with correct mutual exclusion the final count is exact. Run with -race.
func TestSpinLockMutualExclusion(t *testing.T) {
	testMutualExclusion(t, &SpinLock{})
}

func TestMutexLockMutualExclusion(t *testing.T) {
	testMutualExclusion(t, &MutexLock{})
}

func testMutualExclusion(t *testing.T, l TryLocker) {
	t.Helper()
	const (
		goroutines = 8
		iterations = 20000
	)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Alternate blocking and non-blocking acquisition so both
				// paths are exercised under contention.
				if (i+seed)%2 == 0 {
					l.Lock()
				} else {
					for !l.TryLock() {
					}
				}
				counter++
				l.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if want := goroutines * iterations; counter != want {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, want)
	}
}

func TestMutexLockTryLock(t *testing.T) {
	var l MutexLock
	if !l.TryLock() {
		t.Fatal("TryLock on free MutexLock failed")
	}
	//lint:ignore locksafe this second TryLock must fail — the test asserts non-reentrancy on a deliberately held lock
	if l.TryLock() {
		t.Fatal("TryLock succeeded on held MutexLock")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed after Unlock")
	}
	l.Unlock()
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	var l SpinLock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkMutexLockUncontended(b *testing.B) {
	var l MutexLock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkSpinLockContended(b *testing.B) {
	var l SpinLock
	var shared int
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			shared++
			l.Unlock()
		}
	})
	_ = shared
}

func BenchmarkMutexLockContended(b *testing.B) {
	var l MutexLock
	var shared int
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			shared++
			l.Unlock()
		}
	})
	_ = shared
}

func TestSpinLockLockContended(t *testing.T) {
	var l SpinLock
	if l.LockContended() {
		t.Fatal("LockContended on a free lock reported contention")
	}
	if !l.Locked() {
		t.Fatal("LockContended did not acquire the lock")
	}
	acquired := make(chan bool, 1)
	go func() {
		//lint:ignore locksafe deliberate cross-goroutine transfer: the main test goroutine unlocks after reading `acquired`
		acquired <- l.LockContended()
	}()
	// Give the second acquirer time to fail its first try-lock, then
	// release; it must then acquire and report the contention.
	time.Sleep(10 * time.Millisecond)
	l.Unlock()
	if contended := <-acquired; !contended {
		t.Fatal("LockContended on a held lock reported no contention")
	}
	if !l.Locked() {
		t.Fatal("second LockContended did not end up holding the lock")
	}
	l.Unlock()
}

func TestMutexLockLockContended(t *testing.T) {
	var l MutexLock
	if l.LockContended() {
		t.Fatal("LockContended on a free mutex reported contention")
	}
	acquired := make(chan bool, 1)
	go func() {
		//lint:ignore locksafe deliberate cross-goroutine transfer: the main test goroutine unlocks after reading `acquired`
		acquired <- l.LockContended()
	}()
	time.Sleep(10 * time.Millisecond)
	l.Unlock()
	if contended := <-acquired; !contended {
		t.Fatal("LockContended on a held mutex reported no contention")
	}
	l.Unlock()
}
