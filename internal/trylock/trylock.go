// Package trylock provides the CAS-based try-lock that underpins the
// value-aware synchronization of the VBL list (Aksenov et al., PACT 2021).
//
// The paper implements its per-node lock "using compare-and-swap"; this
// package is the direct Go translation: a single-word spin lock whose
// TryLock is one CompareAndSwap, plus a blocking Lock that spins with
// exponential back-off onto the scheduler. A sync.Mutex-backed twin
// (MutexLock) is provided so benchmarks can ablate the choice of lock
// substrate (see BenchmarkAblationLock).
package trylock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// A TryLocker is a mutual-exclusion lock that additionally supports a
// non-blocking acquisition attempt.
type TryLocker interface {
	sync.Locker
	// TryLock attempts to acquire the lock without blocking and reports
	// whether it succeeded. On success the caller must eventually Unlock.
	TryLock() bool
}

// SpinLock is a CAS-based spin lock. The zero value is an unlocked lock.
//
// It is intentionally minimal: one word of state, acquisition by a single
// CompareAndSwap, release by a single Store. Under contention Lock yields
// to the Go scheduler between attempts so that spinning goroutines do not
// starve the lock holder on oversubscribed machines (the paper's thread
// counts exceed core counts at the top of its sweeps).
type SpinLock struct {
	state atomic.Int32
}

const (
	unlocked int32 = 0
	locked   int32 = 1
)

// TryLock attempts to acquire l without blocking.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(unlocked, locked)
}

// uniprocessor reports whether only one goroutine can run at a time; in
// that case busy-waiting can never observe the holder make progress, so
// Lock yields immediately instead of spinning.
var uniprocessor = runtime.GOMAXPROCS(0) == 1

// Bounds of the contended path's exponential backoff. A waiter that
// loses the acquisition CAS watches the lock word for up to its
// current spin budget, doubling the budget each contended round from
// minSpin loads up to maxSpin; once the budget is maxed the waiter
// yields to the scheduler between attempts instead of burning the
// core. The doubling desynchronizes waiters — after a release, the
// waiter with the smallest budget retries first while the others are
// still backing off — so N spinners do not stampede the lock word with
// N simultaneous CASes, each of which would bounce the cache line even
// when it fails. The critical sections these locks guard are a handful
// of instructions, so the budget starts small: the lock usually frees
// up within the first round.
const (
	minSpin = 4
	maxSpin = 1 << 9
)

// Lock acquires l, spinning with bounded exponential backoff until it
// is available.
func (l *SpinLock) Lock() {
	chaosPoint()
	spin := minSpin
	for {
		if l.TryLock() {
			return
		}
		// On a uniprocessor the holder cannot run while we spin —
		// yield straight away.
		if uniprocessor {
			runtime.Gosched()
			continue
		}
		// Contended: watch the lock word for up to the current budget,
		// leaving early if it frees up, then escalate.
		for i := 0; i < spin; i++ {
			if l.state.Load() == unlocked {
				break
			}
		}
		if spin < maxSpin {
			spin <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// LockContended acquires l like Lock and additionally reports whether
// the immediate first attempt failed — the "try-lock acquisition
// failure" signal the observability layer (internal/obs) counts. The
// extra return is the only difference from Lock; use it at probe-
// enabled call sites and plain Lock everywhere else.
func (l *SpinLock) LockContended() (contended bool) {
	chaosPoint()
	if l.TryLock() {
		return false
	}
	l.Lock()
	return true
}

// Unlock releases l. It must only be called while holding the lock;
// unlocking an unlocked SpinLock panics, mirroring sync.Mutex.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(locked, unlocked) {
		panic("trylock: unlock of unlocked SpinLock")
	}
}

// Locked reports whether l is currently held by some goroutine. It is a
// racy snapshot intended for tests and assertions only.
func (l *SpinLock) Locked() bool {
	return l.state.Load() == locked
}

// MutexLock adapts sync.Mutex to TryLocker. It exists so the benchmark
// suite can compare the paper's CAS try-lock against the runtime mutex
// under identical algorithms.
type MutexLock struct {
	mu sync.Mutex
}

// TryLock attempts to acquire l without blocking.
func (l *MutexLock) TryLock() bool { return l.mu.TryLock() }

// Lock acquires l, blocking until it is available.
func (l *MutexLock) Lock() { l.mu.Lock() }

// LockContended acquires l, reporting whether the immediate first
// attempt failed (SpinLock parity for the observability layer).
func (l *MutexLock) LockContended() (contended bool) {
	if l.TryLock() {
		return false
	}
	l.mu.Lock()
	return true
}

// Unlock releases l.
func (l *MutexLock) Unlock() { l.mu.Unlock() }

var (
	_ TryLocker = (*SpinLock)(nil)
	_ TryLocker = (*MutexLock)(nil)
)
