// Package trylock provides the CAS-based try-lock that underpins the
// value-aware synchronization of the VBL list (Aksenov et al., PACT 2021).
//
// The paper implements its per-node lock "using compare-and-swap"; this
// package is the direct Go translation: a single-word spin lock whose
// TryLock is one CompareAndSwap, plus a blocking Lock that spins with
// exponential back-off onto the scheduler. A sync.Mutex-backed twin
// (MutexLock) is provided so benchmarks can ablate the choice of lock
// substrate (see BenchmarkAblationLock).
package trylock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// A TryLocker is a mutual-exclusion lock that additionally supports a
// non-blocking acquisition attempt.
type TryLocker interface {
	sync.Locker
	// TryLock attempts to acquire the lock without blocking and reports
	// whether it succeeded. On success the caller must eventually Unlock.
	TryLock() bool
}

// SpinLock is a CAS-based spin lock. The zero value is an unlocked lock.
//
// It is intentionally minimal: one word of state, acquisition by a single
// CompareAndSwap, release by a single Store. Under contention Lock yields
// to the Go scheduler between attempts so that spinning goroutines do not
// starve the lock holder on oversubscribed machines (the paper's thread
// counts exceed core counts at the top of its sweeps).
type SpinLock struct {
	state atomic.Int32
}

const (
	unlocked int32 = 0
	locked   int32 = 1
)

// TryLock attempts to acquire l without blocking.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(unlocked, locked)
}

// uniprocessor reports whether only one goroutine can run at a time; in
// that case busy-waiting can never observe the holder make progress, so
// Lock yields immediately instead of spinning.
var uniprocessor = runtime.GOMAXPROCS(0) == 1

// Default bounds of the contended path's exponential backoff. A waiter
// that loses the acquisition CAS watches the lock word for up to its
// current spin budget, doubling the budget each contended round from
// DefaultMinSpin loads up to the ceiling; once the budget is maxed the
// waiter yields to the scheduler between attempts instead of burning
// the core. The doubling desynchronizes waiters — after a release, the
// waiter with the smallest budget retries first while the others are
// still backing off — so N spinners do not stampede the lock word with
// N simultaneous CASes, each of which would bounce the cache line even
// when it fails. The critical sections these locks guard are a handful
// of instructions, so the budget starts small: the lock usually frees
// up within the first round.
const (
	// DefaultMinSpin is the first contended round's spin budget.
	DefaultMinSpin int32 = 4
	// DefaultMaxSpin is the default spin ceiling: the budget at which a
	// waiter stops doubling and starts yielding to the scheduler.
	DefaultMaxSpin int32 = 1 << 9
	// CeilingLimit is the hard upper bound SetCeiling clamps to, so a
	// runaway tuner can never park waiters in a near-unbounded spin.
	CeilingLimit int32 = 1 << 14
)

// Backoff is a per-instance, runtime-tunable backoff policy: the spin
// bounds a SpinLock's contended path uses when acquired through
// LockWith/LockContendedWith. Historically these bounds were package
// constants — process-wide, so two independent sharded sets in one
// process shared backoff state and per-shard tuning was impossible.
// A Backoff is owned by one list (hence one shard); its fields are
// atomics, so a controller (internal/adapt) may retune the ceiling
// while operations are in flight. A nil *Backoff means the package
// defaults; the zero value also behaves as the defaults.
type Backoff struct {
	min atomic.Int32
	max atomic.Int32
}

// NewBackoff returns a policy initialized to the package defaults.
func NewBackoff() *Backoff {
	b := &Backoff{}
	b.min.Store(DefaultMinSpin)
	b.max.Store(DefaultMaxSpin)
	return b
}

// bounds returns the current (min, ceiling) spin bounds, substituting
// the package defaults for a nil policy or unset (zero) fields.
func (b *Backoff) bounds() (int32, int32) {
	if b == nil {
		return DefaultMinSpin, DefaultMaxSpin
	}
	min, max := b.min.Load(), b.max.Load()
	if min <= 0 {
		min = DefaultMinSpin
	}
	if max <= 0 {
		max = DefaultMaxSpin
	}
	return min, max
}

// Ceiling returns the current spin ceiling.
func (b *Backoff) Ceiling() int32 {
	_, max := b.bounds()
	return max
}

// SetCeiling sets the spin ceiling, clamped to [DefaultMinSpin,
// CeilingLimit]. Safe to call concurrently with lock operations; a
// waiter mid-backoff picks the new ceiling up on its next round.
func (b *Backoff) SetCeiling(max int32) {
	if max < DefaultMinSpin {
		max = DefaultMinSpin
	}
	if max > CeilingLimit {
		max = CeilingLimit
	}
	b.max.Store(max)
	if b.min.Load() <= 0 {
		b.min.Store(DefaultMinSpin)
	}
}

// Tunable is implemented by sets whose node locks draw their contended
// backoff bounds from a per-set Backoff policy. SetBackoff(nil)
// restores the package defaults; call it before sharing the set (the
// policy's own fields are atomic, so retuning an attached policy is
// safe mid-run).
type Tunable interface {
	SetBackoff(*Backoff)
}

// AttachBackoff connects b to set if the algorithm supports per-
// instance backoff tuning and reports whether it did.
func AttachBackoff(set any, b *Backoff) bool {
	if tu, ok := set.(Tunable); ok {
		tu.SetBackoff(b)
		return true
	}
	return false
}

// Lock acquires l, spinning with bounded exponential backoff until it
// is available.
func (l *SpinLock) Lock() {
	chaosPoint()
	l.lockSlow(DefaultMinSpin, DefaultMaxSpin)
}

// LockWith is Lock drawing its spin bounds from b (nil = defaults).
func (l *SpinLock) LockWith(b *Backoff) {
	chaosPoint()
	min, max := b.bounds()
	l.lockSlow(min, max)
}

// lockSlow is the shared contended-acquisition loop.
func (l *SpinLock) lockSlow(minSpin, maxSpin int32) {
	spin := minSpin
	for {
		if l.TryLock() {
			return
		}
		// On a uniprocessor the holder cannot run while we spin —
		// yield straight away.
		if uniprocessor {
			runtime.Gosched()
			continue
		}
		// Contended: watch the lock word for up to the current budget,
		// leaving early if it frees up, then escalate.
		for i := int32(0); i < spin; i++ {
			if l.state.Load() == unlocked {
				break
			}
		}
		if spin < maxSpin {
			spin <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// LockContended acquires l like Lock and additionally reports whether
// the immediate first attempt failed — the "try-lock acquisition
// failure" signal the observability layer (internal/obs) counts. The
// extra return is the only difference from Lock; use it at probe-
// enabled call sites and plain Lock everywhere else.
func (l *SpinLock) LockContended() (contended bool) {
	chaosPoint()
	if l.TryLock() {
		return false
	}
	l.lockSlow(DefaultMinSpin, DefaultMaxSpin)
	return true
}

// LockContendedWith is LockContended drawing its spin bounds from b
// (nil = defaults).
func (l *SpinLock) LockContendedWith(b *Backoff) (contended bool) {
	chaosPoint()
	if l.TryLock() {
		return false
	}
	min, max := b.bounds()
	l.lockSlow(min, max)
	return true
}

// Unlock releases l. It must only be called while holding the lock;
// unlocking an unlocked SpinLock panics, mirroring sync.Mutex.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(locked, unlocked) {
		panic("trylock: unlock of unlocked SpinLock")
	}
}

// Locked reports whether l is currently held by some goroutine. It is a
// racy snapshot intended for tests and assertions only.
func (l *SpinLock) Locked() bool {
	return l.state.Load() == locked
}

// MutexLock adapts sync.Mutex to TryLocker. It exists so the benchmark
// suite can compare the paper's CAS try-lock against the runtime mutex
// under identical algorithms.
type MutexLock struct {
	mu sync.Mutex
}

// TryLock attempts to acquire l without blocking.
func (l *MutexLock) TryLock() bool { return l.mu.TryLock() }

// Lock acquires l, blocking until it is available.
func (l *MutexLock) Lock() { l.mu.Lock() }

// LockContended acquires l, reporting whether the immediate first
// attempt failed (SpinLock parity for the observability layer).
func (l *MutexLock) LockContended() (contended bool) {
	if l.TryLock() {
		return false
	}
	l.mu.Lock()
	return true
}

// Unlock releases l.
func (l *MutexLock) Unlock() { l.mu.Unlock() }

var (
	_ TryLocker = (*SpinLock)(nil)
	_ TryLocker = (*MutexLock)(nil)
)
