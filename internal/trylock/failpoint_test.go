package trylock

import (
	"testing"
	"time"

	"listset/internal/failpoint"
)

// TestChaosHookPausesAcquisition proves the SiteTryLockAcquire hook is
// live: a one-shot pause armed on the global chaos set parks the next
// Lock before its first CAS, and Resume releases it.
func TestChaosHookPausesAcquisition(t *testing.T) {
	fp := failpoint.NewSet()
	SetChaos(fp)
	defer SetChaos(nil)
	p, err := fp.PauseAt(failpoint.SiteTryLockAcquire)
	if err != nil {
		t.Fatal(err)
	}
	var l SpinLock
	acquired := make(chan struct{})
	go func() {
		//lint:ignore locksafe deliberate cross-goroutine transfer: the test body unlocks after observing `acquired`
		l.Lock()
		close(acquired)
	}()
	if err := p.AwaitReached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if l.Locked() {
		t.Fatal("lock acquired while parked at the acquisition failpoint")
	}
	p.Resume()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("Lock did not complete after Resume")
	}
	l.Unlock()
}

// TestChaosHookDetached proves SetChaos(nil) fully detaches: Lock and
// LockContended run with no failpoint consultation afterwards.
func TestChaosHookDetached(t *testing.T) {
	fp := failpoint.NewSet()
	if err := fp.Arm(failpoint.Scenario{Site: failpoint.SiteTryLockAcquire, Action: failpoint.ActDelay, Delay: time.Hour}); err != nil {
		t.Fatal(err)
	}
	SetChaos(fp)
	SetChaos(nil)
	var l SpinLock
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		l.LockContended()
		l.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("detached chaos set still delayed an acquisition")
	}
}
