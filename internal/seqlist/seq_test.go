package seqlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New()
	if l.Len() != 0 {
		t.Fatalf("Len of empty list = %d", l.Len())
	}
	if l.Contains(5) {
		t.Fatal("empty list contains 5")
	}
	if l.Remove(5) {
		t.Fatal("Remove from empty list returned true")
	}
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot of empty list = %v", got)
	}
}

func TestInsertRemoveContains(t *testing.T) {
	l := New()
	if !l.Insert(3) || !l.Insert(1) || !l.Insert(2) {
		t.Fatal("fresh inserts returned false")
	}
	if l.Insert(2) {
		t.Fatal("duplicate insert returned true")
	}
	want := []int64{1, 2, 3}
	got := l.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v (sorted)", got, want)
		}
	}
	if !l.Contains(1) || !l.Contains(2) || !l.Contains(3) || l.Contains(0) || l.Contains(4) {
		t.Fatal("Contains gave wrong answers")
	}
	if !l.Remove(2) {
		t.Fatal("Remove of present value returned false")
	}
	if l.Remove(2) {
		t.Fatal("Remove of absent value returned true")
	}
	if l.Contains(2) {
		t.Fatal("Contains(2) true after removal")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestNegativeAndBoundaryValues(t *testing.T) {
	l := New()
	vals := []int64{-1000, 0, 1000, MinSentinel + 1, MaxSentinel - 1}
	for _, v := range vals {
		if !l.Insert(v) {
			t.Fatalf("Insert(%d) = false", v)
		}
	}
	for _, v := range vals {
		if !l.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	if l.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(vals))
	}
}

// TestAgainstMapOracle drives the list and a map with the same random
// operation sequence and requires identical answers throughout.
func TestAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := New()
	oracle := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		v := int64(rng.Intn(64))
		switch rng.Intn(3) {
		case 0:
			want := !oracle[v]
			if got := l.Insert(v); got != want {
				t.Fatalf("step %d: Insert(%d) = %v, want %v", i, v, got, want)
			}
			oracle[v] = true
		case 1:
			want := oracle[v]
			if got := l.Remove(v); got != want {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", i, v, got, want)
			}
			delete(oracle, v)
		case 2:
			if got := l.Contains(v); got != oracle[v] {
				t.Fatalf("step %d: Contains(%d) = %v, want %v", i, v, got, oracle[v])
			}
		}
	}
	if l.Len() != len(oracle) {
		t.Fatalf("final Len = %d, want %d", l.Len(), len(oracle))
	}
}

// TestQuickSortedSnapshot property: for any batch of inserts, Snapshot is
// sorted, duplicate-free, and contains exactly the distinct values.
func TestQuickSortedSnapshot(t *testing.T) {
	f := func(vals []int64) bool {
		l := New()
		distinct := map[int64]bool{}
		for _, v := range vals {
			if v == MinSentinel || v == MaxSentinel {
				continue
			}
			l.Insert(v)
			distinct[v] = true
		}
		snap := l.Snapshot()
		if len(snap) != len(distinct) {
			return false
		}
		for i, v := range snap {
			if !distinct[v] {
				return false
			}
			if i > 0 && snap[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertRemoveInverse property: inserting then removing a fresh
// value restores the previous membership everywhere.
func TestQuickInsertRemoveInverse(t *testing.T) {
	f := func(base []int64, v int64) bool {
		if v == MinSentinel || v == MaxSentinel {
			return true
		}
		l := New()
		for _, b := range base {
			if b != MinSentinel && b != MaxSentinel && b != v {
				l.Insert(b)
			}
		}
		before := l.Snapshot()
		if !l.Insert(v) {
			return false
		}
		if !l.Remove(v) {
			return false
		}
		after := l.Snapshot()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
