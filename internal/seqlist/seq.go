// Package seqlist implements Algorithm 1 of the paper: the sequential
// sorted linked list LL that implements the integer set type.
//
// LL is the reference point for everything else in this repository. The
// concurrent algorithms (VBL, Lazy, Harris-Michael) are analyzed as
// schedulers of LL's reads and writes, and the property-based tests use
// LL (cross-checked against a map) as the semantic oracle for the
// concurrent implementations.
//
// The type is NOT safe for concurrent use; that is the point.
package seqlist

import "math"

// Sentinel values stored in the head and tail nodes. They stand in for
// the paper's -inf and +inf and therefore cannot be stored in the set.
const (
	MinSentinel = math.MinInt64
	MaxSentinel = math.MaxInt64
)

type node struct {
	val  int64
	next *node
}

// List is the sequential sorted linked list LL of Algorithm 1.
type List struct {
	head *node
	size int
}

// New returns an empty sequential list: head(-inf) -> tail(+inf).
func New() *List {
	tail := &node{val: MaxSentinel}
	head := &node{val: MinSentinel, next: tail}
	return &List{head: head}
}

// find walks the list and returns the first node whose value is >= v,
// together with its predecessor. It is the shared traversal of
// Algorithm 1's insert/remove/contains.
func (l *List) find(v int64) (prev, curr *node) {
	prev = l.head
	curr = prev.next
	for curr.val < v {
		prev = curr
		curr = curr.next
	}
	return prev, curr
}

// Insert adds v to the set and reports whether v was absent.
// v must be strictly between MinSentinel and MaxSentinel.
func (l *List) Insert(v int64) bool {
	prev, curr := l.find(v)
	if curr.val == v {
		return false
	}
	//lint:ignore hotalloc the insert path must materialize the new node; the sequential reference list stays allocation-simple
	prev.next = &node{val: v, next: curr}
	l.size++
	return true
}

// Remove deletes v from the set and reports whether v was present.
func (l *List) Remove(v int64) bool {
	prev, curr := l.find(v)
	if curr.val != v {
		return false
	}
	prev.next = curr.next
	l.size--
	return true
}

// Contains reports whether v is in the set.
func (l *List) Contains(v int64) bool {
	_, curr := l.find(v)
	return curr.val == v
}

// Len returns the number of elements in the set.
func (l *List) Len() int { return l.size }

// Snapshot returns the elements in ascending order.
func (l *List) Snapshot() []int64 {
	out := make([]int64, 0, l.size)
	for n := l.head.next; n.val != MaxSentinel; n = n.next {
		out = append(out, n.val)
	}
	return out
}
