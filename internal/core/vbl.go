// Package core implements the paper's primary contribution: the VBL
// (Value-Based List) concurrency-optimal list-based set of Aksenov,
// Gramoli, Kuznetsov, Shang and Ravi (PACT 2021), Algorithm 2.
//
// VBL combines three ingredients:
//
//   - the wait-free traversal of the Lazy list: readers (and the locate
//     phase of updates) follow next pointers without taking locks or
//     consulting deletion marks;
//   - the logical-deletion technique of Harris-Michael: removal first
//     marks a node deleted and only then unlinks it, so concurrent
//     traversals parked on the node stay on a well-defined path;
//   - a novel value-aware try-lock: an update acquires a per-node
//     CAS-based lock and then validates the successor either by identity
//     (lockNextAt) or by value (lockNextAtValue), releasing the lock and
//     restarting the traversal from prev on mismatch.
//
// Validating by value is what makes the list concurrency-optimal: a
// remove(v) whose successor node was removed and re-inserted by other
// threads can still proceed, because all that matters to the set's
// semantics is that *some* node holding v follows prev.
//
// Memory reclamation is delegated to the Go garbage collector, exactly as
// the paper delegates it to the Java GC: an unlinked node remains valid
// for the traversals still standing on it until it becomes unreachable.
// Alternatively, NewArena (or the WithArena option) attaches a
// slab-backed arena with epoch-based reclamation (internal/mem):
// unlinked nodes are retired and recycled after a two-epoch grace
// period, trading the GC's allocation and scan costs for a pin/unpin
// pair per operation. Reuse is safe precisely because VBL is
// lock-based and value-validating — see arena.go and DESIGN.md §10.
package core

import (
	"sync/atomic"
	"unsafe"

	"listset/internal/failpoint"
	"listset/internal/mem"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// Sentinel values stored in the head and tail nodes; they represent the
// paper's -inf/+inf and cannot be inserted.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

// node is a list node. val is immutable; next and deleted are read by
// wait-free traversals while being written by lock holders, so both are
// atomics. lock serializes writers of next and deleted.
type node struct {
	val     int64
	next    atomic.Pointer[node]
	deleted atomic.Bool
	lock    trylock.SpinLock
}

// cacheLine is the coherence granularity the sentinel layout targets;
// 64 bytes covers x86-64 and the common arm64 parts.
const cacheLine = 64

// paddedNode embeds a node and rounds its size up to a whole number of
// cache lines. Only the sentinels are allocated this way: interior
// nodes are numerous and churn through the GC, but the head is the
// hottest allocation in the structure — every operation's traversal
// starts by loading head.next, and updates near the front contend on
// head.lock. An unpadded head (a ~40-byte allocation) can share its
// line with a neighbouring small object — in particular with another
// list's head when many lists sit side by side (internal/shard) —
// turning independent per-list traffic into false sharing.
type paddedNode struct {
	node
	_ [(cacheLine - unsafe.Sizeof(node{})%cacheLine) % cacheLine]byte
}

// newSentinel allocates one cache-line-padded sentinel node.
func newSentinel(v int64) *node {
	p := &paddedNode{node: node{val: v}}
	return &p.node
}

// lockNextAt implements the identity-validating half of the value-aware
// try-lock (Section 3.1, operation (1)): acquire n's lock, then verify
// that n is not logically deleted and that n.next still points at succ.
// On validation failure the lock is released and false is returned.
//
// A cheap lock-free pre-validation runs first (unless disabled by the
// WithoutPreValidation ablation): if the condition already fails there
// is no point bouncing the lock's cache line. This is the "validate
// before locking, not after" property the paper credits for VBL's
// behaviour under contention.
func (n *node) lockNextAt(succ *node, preValidate bool, p *obs.Probes, bo *trylock.Backoff) bool {
	if preValidate && (n.deleted.Load() || n.next.Load() != succ) {
		if obs.On(p) {
			n.countIdentityFail(p)
		}
		return false
	}
	n.acquire(p, bo)
	if n.deleted.Load() || n.next.Load() != succ {
		n.lock.Unlock()
		if obs.On(p) {
			n.countIdentityFail(p)
		}
		return false
	}
	return true
}

// acquire takes n's lock, counting a contended acquisition when probes
// are attached and drawing the contended path's spin bounds from the
// list's backoff policy bo (nil = package defaults). Like the lock
// helpers it wraps, it returns holding the lock by contract.
func (n *node) acquire(p *obs.Probes, bo *trylock.Backoff) {
	if obs.On(p) {
		if n.lock.LockContendedWith(bo) {
			p.Inc(obs.EvTryLockContended, n.val)
		}
		return
	}
	n.lock.LockWith(bo)
}

// countIdentityFail classifies a failed identity validation for the
// probe report: the locked-for node was logically deleted, or its
// successor changed. The re-read is racy — a borderline case may be
// classified either way — which is fine for a counter.
func (n *node) countIdentityFail(p *obs.Probes) {
	if n.deleted.Load() {
		p.Inc(obs.EvValFailDeleted, n.val)
	} else {
		p.Inc(obs.EvValFailSucc, n.val)
	}
}

// countValueFail classifies a failed value validation analogously.
func (n *node) countValueFail(p *obs.Probes) {
	if n.deleted.Load() {
		p.Inc(obs.EvValFailDeleted, n.val)
	} else {
		p.Inc(obs.EvValFailValue, n.val)
	}
}

// countInjectedFail mirrors a chaos-injected validation failure into
// the probe counters. An injected failure short-circuits the real
// validation, so without this the fault would be observationally
// invisible — consumers of the valfail signal (the adaptive
// controller, the flight recorder) must see an injected storm exactly
// as they would a real one.
func (s *VBL) countInjectedFail(ev obs.Event, v int64) {
	if p := s.probes; obs.On(p) {
		p.Inc(ev, v)
	}
}

// lockNextAtValue implements the value-validating half of the try-lock
// (Section 3.1, operation (2)): acquire n's lock, then verify that n is
// not logically deleted and that the *value* of n's successor is v. The
// successor node's identity is allowed to have changed — that is the
// value-awareness that distinguishes VBL from the Lazy list.
func (n *node) lockNextAtValue(v int64, preValidate bool, p *obs.Probes, bo *trylock.Backoff) bool {
	if preValidate && (n.deleted.Load() || n.next.Load().val != v) {
		if obs.On(p) {
			n.countValueFail(p)
		}
		return false
	}
	n.acquire(p, bo)
	if n.deleted.Load() || n.next.Load().val != v {
		n.lock.Unlock()
		if obs.On(p) {
			n.countValueFail(p)
		}
		return false
	}
	return true
}

// VBL is the Value-Based List. The zero value is not usable; call New.
type VBL struct {
	head *node
	tail *node

	// Ablation knobs (see Option); both false for the paper's algorithm.
	headRestart   bool // restart failed validations from head, not prev
	noPreValidate bool // skip the lock-free check before locking

	// probes, when non-nil, receives contention events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the chaos failpoints (internal/failpoint).
	fps *failpoint.Set
	// arena, when non-nil, supplies nodes from slab-backed per-worker
	// free lists and recycles unlinked nodes after the epoch-based
	// grace period (internal/mem). Nil delegates lifetimes to the GC.
	arena *mem.Arena[node]

	// budget is the failed-validation retry budget K (0 = the paper's
	// unbounded retries), atomic so the adaptive controller
	// (internal/adapt) can retune it while operations are in flight;
	// retry aggregates what the escalators saw.
	budget atomic.Int32
	retry  obs.RetryCounter

	// backoff, when non-nil, supplies the per-set spin bounds for
	// contended node-lock acquisitions; nil means the package defaults.
	// One policy per set makes backoff per-shard under the sharded
	// façade — the process-wide constants are only the fallback.
	backoff *trylock.Backoff
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the set between goroutines: the
// field is read without synchronization by every operation.
func (s *VBL) SetProbes(p *obs.Probes) {
	s.probes = p
	if a := s.arena; a != nil {
		a.SetProbes(p)
	}
}

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the set between goroutines.
func (s *VBL) SetFailpoints(fp *failpoint.Set) {
	s.fps = fp
	if a := s.arena; a != nil {
		a.SetFailpoints(fp)
	}
}

// SetRetryBudget sets the failed-validation retry budget K: after K
// restarts an update escalates from the prev-restart to head-restarts,
// and after 2K it also backs off between attempts. 0 restores the
// paper's unbounded retry loop. The budget is atomic: it may be
// retuned while the set is shared (each in-flight operation keeps the
// budget it started with).
func (s *VBL) SetRetryBudget(k int) { s.budget.Store(int32(k)) }

// SetBackoff attaches (or with nil detaches) the per-set backoff
// policy for contended node-lock acquisitions. Call before sharing the
// set; retuning the attached policy's ceiling afterwards is safe.
func (s *VBL) SetBackoff(b *trylock.Backoff) { s.backoff = b }

// RetryStats reports the aggregated restart/escalation tallies.
func (s *VBL) RetryStats() obs.RetryStats { return s.retry.Stats() }

// New returns an empty VBL set.
func New() *VBL {
	s := &VBL{
		head: newSentinel(MinSentinel),
		tail: newSentinel(MaxSentinel),
	}
	s.head.next.Store(s.tail)
	return s
}

// traverse is the waitfreeTraversal of Algorithm 2 (lines 14-21): starting
// from prev — or from head if prev has been logically deleted since the
// caller last held it — follow next pointers until curr.val >= v, taking
// no locks and ignoring deletion marks along the way.
//
// Restarting from prev rather than head after a failed validation is the
// paper's locality optimization: the failed window is almost always
// adjacent to where the conflict happened.
func (s *VBL) traverse(v int64, prev *node) (*node, *node) {
	if prev.deleted.Load() {
		prev = s.head
	}
	curr := prev.next.Load()
	for curr.val < v {
		prev = curr
		curr = curr.next.Load()
	}
	return prev, curr
}

// Contains reports whether v is in the set (Algorithm 2, lines 9-13).
// It is wait-free: a pure pointer chase with no locks and no mark checks.
//
// Linearization: at the read of the next pointer that first reached a
// node with value >= v (for hits, the node holding v was reachable at
// that moment or was logically deleted after the traversal passed its
// predecessor, in which case the operation linearizes just before the
// delete's mark).
func (s *VBL) Contains(v int64) bool {
	g := s.arena.Pin()
	curr := s.head
	for curr.val < v {
		curr = curr.next.Load()
	}
	found := curr.val == v
	g.Unpin()
	return found
}

// Insert adds v to the set and reports whether v was absent
// (Algorithm 2, lines 22-32).
func (s *VBL) Insert(v int64) bool {
	g := s.arena.Pin()
	prev := s.head
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: s.headRestart}
	// The speculative node is allocated once and reused across failed
	// validations; it is unpublished until the successful link, so no
	// traversal can observe the reuse.
	var n *node
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteVBLTraverse, v)
		}
		var curr *node
		prev, curr = s.traverse(v, prev)
		if curr.val == v {
			// Present already: return without touching any metadata.
			// (The Lazy list would have locked prev first — this early
			// return is exactly the schedule of Figure 2 that Lazy
			// rejects and VBL accepts.)
			if n != nil && g.Active() {
				g.Free(n) // never published: no grace period needed
			}
			esc.Done(&s.retry)
			g.Unpin()
			return false
		}
		if n == nil {
			n = s.newNode(g, v)
		}
		n.next.Store(curr)
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			if injected = fp.Fail(failpoint.SiteVBLLockNextAt, v); injected {
				s.countInjectedFail(obs.EvValFailSucc, v)
			}
		}
		if injected || !prev.lockNextAt(curr, !s.noPreValidate, s.probes, s.backoff) {
			prev = s.restart(prev, &esc, v)
			continue // revalidate from prev (traverse handles deleted prev)
		}
		prev.next.Store(n)
		prev.lock.Unlock()
		esc.Done(&s.retry)
		g.Unpin()
		return true
	}
}

// restart applies the restart policy after a failed validation — the
// paper's prev-restart, the ablation's head-restart, or the escalation
// ladder's forced head-restart once the retry budget is spent — and
// records the restart, split by where the retry resumes (the paper's
// locality optimization is exactly the prev-vs-head distinction).
func (s *VBL) restart(prev *node, esc *obs.Escalator, v int64) *node {
	head := esc.Failed(s.probes, v)
	if s.headRestart {
		head = true
	}
	if p := s.probes; obs.On(p) {
		if head {
			p.Inc(obs.EvRestartHead, v)
		} else {
			p.Inc(obs.EvRestartPrev, v)
		}
	}
	if head {
		return s.head
	}
	return prev
}

// Remove deletes v from the set and reports whether v was present
// (Algorithm 2, lines 33-48).
func (s *VBL) Remove(v int64) bool {
	g := s.arena.Pin()
	prev := s.head
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: s.headRestart}
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteVBLTraverse, v)
		}
		var curr *node
		prev, curr = s.traverse(v, prev)
		if curr.val != v {
			esc.Done(&s.retry)
			g.Unpin()
			return false
		}
		next := curr.next.Load()
		// Lock prev validating BY VALUE: any node holding v will do,
		// even if the one we saw during traversal was removed and a new
		// one inserted meanwhile.
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			if injected = fp.Fail(failpoint.SiteVBLLockNextAtValue, v); injected {
				s.countInjectedFail(obs.EvValFailValue, v)
			}
		}
		if injected || !prev.lockNextAtValue(v, !s.noPreValidate, s.probes, s.backoff) {
			prev = s.restart(prev, &esc, v)
			continue
		}
		// Re-read the successor under prev's lock (Algorithm 2, line 40):
		// it is the (possibly different) node holding v whose presence
		// the validation just established. It cannot change or become
		// deleted while we hold prev's lock, because both require
		// locking prev.
		curr = prev.next.Load()
		// Lock curr validating that its successor is still the next read
		// at line 38, so the unlink below cannot lose a concurrent
		// insert after curr (line 41).
		injected = false
		if fp := s.fps; failpoint.On(fp) {
			if injected = fp.Fail(failpoint.SiteVBLLockNextAt, v); injected {
				s.countInjectedFail(obs.EvValFailSucc, v)
			}
		}
		if injected || !curr.lockNextAt(next, !s.noPreValidate, s.probes, s.backoff) {
			prev.lock.Unlock()
			prev = s.restart(prev, &esc, v)
			continue
		}
		// The unlink itself runs under both locks and must not be skipped
		// — a missing unlink would leave a marked node reachable — so the
		// site is Do-only: delays and pauses, never forced failure.
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteUnlink, v)
		}
		curr.deleted.Store(true) // logical deletion
		prev.next.Store(next)    // physical unlink
		curr.lock.Unlock()
		prev.lock.Unlock()
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvLogicalDelete, v)
			p.Inc(obs.EvPhysicalUnlink, v)
		}
		if g.Active() {
			// curr is unlinked (unreachable for new traversals) and its
			// lock is free again: retire it into limbo. It recycles only
			// after the two-epoch grace period, so the pinned traversals
			// that may still stand on it stay safe.
			g.Retire(curr)
		}
		esc.Done(&s.retry)
		g.Unpin()
		return true
	}
}

// Len counts the elements by traversal. Under concurrent updates the
// result is a best-effort snapshot; it is exact at quiescence. O(n).
func (s *VBL) Len() int {
	g := s.arena.Pin()
	n := 0
	for curr := s.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		n++
	}
	g.Unpin()
	return n
}

// Snapshot returns the elements reachable from head in ascending order.
// Under concurrent updates it is a best-effort snapshot; it is exact at
// quiescence.
func (s *VBL) Snapshot() []int64 {
	g := s.arena.Pin()
	var out []int64
	for curr := s.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		out = append(out, curr.val)
	}
	g.Unpin()
	return out
}
