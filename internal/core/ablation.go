package core

import (
	"sync"
	"sync/atomic"
)

// Ablation variants of VBL, used by the benchmark suite to price the
// design choices the paper highlights:
//
//   - Option-configured VBL variants: restart from head instead of prev
//     after a failed validation, and skip the lock-free pre-validation
//     before taking the try-lock;
//   - MutexVBL: the identical algorithm with sync.Mutex per node instead
//     of the CAS spin try-lock.

// Option configures an ablation variant of the VBL list.
type Option func(*VBL)

// WithHeadRestart makes failed validations restart the traversal from
// the head rather than from prev, disabling the paper's locality
// optimization (Algorithm 2 restarts at line 24/35 with the retained
// prev).
func WithHeadRestart() Option {
	return func(s *VBL) { s.headRestart = true }
}

// WithoutPreValidation removes the lock-free check performed before
// acquiring the try-lock, so every validation pays for the lock's cache
// line first — the Lazy list's lock-then-validate discipline grafted
// onto VBL's locking structure.
func WithoutPreValidation() Option {
	return func(s *VBL) { s.noPreValidate = true }
}

// NewVariant returns a VBL configured with the given ablation options.
// NewVariant() with no options is equivalent to New.
func NewVariant(opts ...Option) *VBL {
	s := New()
	for _, o := range opts {
		o(s)
	}
	return s
}

// MutexVBL is the VBL algorithm with sync.Mutex node locks in place of
// the CAS spin try-lock. Everything else — wait-free traversal,
// value-aware validation, logical deletion before unlinking — is
// identical, so benchmarking it against VBL isolates the lock substrate.
type MutexVBL struct {
	head *mnode
	tail *mnode
}

type mnode struct {
	val     int64
	next    atomic.Pointer[mnode]
	deleted atomic.Bool
	mu      sync.Mutex
}

// NewMutex returns an empty mutex-locked VBL set.
func NewMutex() *MutexVBL {
	s := &MutexVBL{
		head: &mnode{val: MinSentinel},
		tail: &mnode{val: MaxSentinel},
	}
	s.head.next.Store(s.tail)
	return s
}

func (n *mnode) lockNextAt(succ *mnode) bool {
	if n.deleted.Load() || n.next.Load() != succ {
		return false
	}
	n.mu.Lock()
	if n.deleted.Load() || n.next.Load() != succ {
		n.mu.Unlock()
		return false
	}
	return true
}

func (n *mnode) lockNextAtValue(v int64) bool {
	if n.deleted.Load() || n.next.Load().val != v {
		return false
	}
	n.mu.Lock()
	if n.deleted.Load() || n.next.Load().val != v {
		n.mu.Unlock()
		return false
	}
	return true
}

func (s *MutexVBL) traverse(v int64, prev *mnode) (*mnode, *mnode) {
	if prev.deleted.Load() {
		prev = s.head
	}
	curr := prev.next.Load()
	for curr.val < v {
		prev = curr
		curr = curr.next.Load()
	}
	return prev, curr
}

// Contains reports whether v is in the set.
func (s *MutexVBL) Contains(v int64) bool {
	curr := s.head
	for curr.val < v {
		curr = curr.next.Load()
	}
	return curr.val == v
}

// Insert adds v to the set and reports whether v was absent.
func (s *MutexVBL) Insert(v int64) bool {
	prev := s.head
	for {
		var curr *mnode
		prev, curr = s.traverse(v, prev)
		if curr.val == v {
			return false
		}
		//lint:ignore hotalloc the insert path must materialize the new node; the mutex ablation has no arena mode
		n := &mnode{val: v}
		n.next.Store(curr)
		if !prev.lockNextAt(curr) {
			continue
		}
		prev.next.Store(n)
		prev.mu.Unlock()
		return true
	}
}

// Remove deletes v from the set and reports whether v was present.
func (s *MutexVBL) Remove(v int64) bool {
	prev := s.head
	for {
		var curr *mnode
		prev, curr = s.traverse(v, prev)
		if curr.val != v {
			return false
		}
		next := curr.next.Load()
		if !prev.lockNextAtValue(v) {
			continue
		}
		curr = prev.next.Load()
		if !curr.lockNextAt(next) {
			prev.mu.Unlock()
			continue
		}
		curr.deleted.Store(true)
		prev.next.Store(next)
		curr.mu.Unlock()
		prev.mu.Unlock()
		return true
	}
}

// Len counts the elements by traversal; exact at quiescence.
func (s *MutexVBL) Len() int {
	n := 0
	for curr := s.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		n++
	}
	return n
}

// Snapshot returns the elements in ascending order; exact at quiescence.
func (s *MutexVBL) Snapshot() []int64 {
	var out []int64
	for curr := s.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		out = append(out, curr.val)
	}
	return out
}
