package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"listset/internal/failpoint"
	"listset/internal/mem"
)

// TestArenaVBLOracle checks the arena-backed VBL against a map oracle
// through a long sequential mixed workload, with enough churn that
// nodes demonstrably recycle mid-run.
func TestArenaVBLOracle(t *testing.T) {
	s := NewArena()
	oracle := map[int64]bool{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(64)
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(v), !oracle[v]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, oracle says %v", i, v, got, want)
			}
			oracle[v] = true
		case 1:
			if got, want := s.Remove(v), oracle[v]; got != want {
				t.Fatalf("op %d: Remove(%d) = %v, oracle says %v", i, v, got, want)
			}
			delete(oracle, v)
		default:
			if got, want := s.Contains(v), oracle[v]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, oracle says %v", i, v, got, want)
			}
		}
	}
	if got, want := s.Len(), len(oracle); got != want {
		t.Fatalf("Len = %d, oracle has %d", got, want)
	}
	for i, v := range s.Snapshot() {
		if !oracle[v] {
			t.Fatalf("Snapshot[%d] = %d not in oracle", i, v)
		}
	}
	st, ok := s.ArenaStats()
	if !ok {
		t.Fatal("ArenaStats reports no arena on NewArena()")
	}
	if st.Recycled == 0 {
		t.Errorf("20000 mixed ops recycled nothing: %+v", st)
	}
}

// TestArenaGraceAcrossPausedTraversal is the deterministic replay of
// the reclamation contract: a traversal parked at the SiteVBLTraverse
// failpoint holds its epoch pin, so no amount of concurrent churn may
// advance the epoch past pin+1 or recycle anything; releasing the
// pause lets the grace period expire and recycling resume.
func TestArenaGraceAcrossPausedTraversal(t *testing.T) {
	const pauseKey = 1000
	s := New()
	s.arena = mem.New[node](mem.Options{AdvanceEvery: 1})
	fps := failpoint.NewSet()
	s.SetFailpoints(fps)

	pause, err := fps.PauseAt(failpoint.SiteVBLTraverse, pauseKey)
	if err != nil {
		t.Fatal(err)
	}
	e0 := mustStats(t, s).Epoch

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Insert(pauseKey) // pins at entry, parks mid-traversal
	}()
	if err := pause.AwaitReached(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Churn other keys hard: every Remove retires a node, AdvanceEvery=1
	// attempts an advance per retire — all must refuse past e0+1.
	for i := int64(0); i < 50; i++ {
		s.Insert(i)
		s.Remove(i)
	}
	st := mustStats(t, s)
	if st.Epoch > e0+1 {
		t.Errorf("epoch advanced to %d across a traversal pinned at %d (max legal %d)", st.Epoch, e0, e0+1)
	}
	if st.Recycled != 0 {
		t.Errorf("%d nodes recycled while a pinned traversal was parked", st.Recycled)
	}

	pause.Resume()
	<-done
	for i := int64(0); i < 50; i++ {
		s.Insert(i)
		s.Remove(i)
	}
	st = mustStats(t, s)
	if st.Epoch < e0+2 {
		t.Errorf("epoch %d after resume and churn, want >= %d", st.Epoch, e0+2)
	}
	if st.Recycled == 0 {
		t.Errorf("nothing recycled after the parked traversal resumed")
	}
}

func mustStats(t *testing.T, s *VBL) mem.Stats {
	t.Helper()
	st, ok := s.ArenaStats()
	if !ok {
		t.Fatal("no arena attached")
	}
	return st
}

// TestRaceArenaRecycleVsTraversal hammers node recycling against
// concurrent wait-free traversals under the race detector: mutators
// Insert/Remove over a small key range (maximum recycle pressure)
// while readers run Contains/Len/Snapshot, whose unprotected
// dereferences are exactly what the epoch pin must keep safe.
func TestRaceArenaRecycleVsTraversal(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	s := New()
	s.arena = mem.New[node](mem.Options{SlabSize: 32, AdvanceEvery: 4})

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				v := rng.Int63n(32)
				if rng.Intn(2) == 0 {
					s.Insert(v)
				} else {
					s.Remove(v)
				}
			}
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < iters; i++ {
				switch rng.Intn(8) {
				case 0:
					s.Len()
				case 1:
					s.Snapshot()
				default:
					s.Contains(rng.Int63n(32))
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Quiescent drain: under heavy machine load the concurrent phase can
	// end before the epoch advances far enough for any limbo bucket to
	// come back. A few single-threaded churn rounds force retire +
	// advance + recycle deterministically; the race pressure above is
	// what the test is for.
	for round := 0; round < 8; round++ {
		for v := int64(0); v < 32; v++ {
			s.Insert(v)
		}
		for v := int64(0); v < 32; v++ {
			s.Remove(v)
		}
	}

	st := mustStats(t, s)
	if st.Recycled == 0 {
		t.Errorf("stress run recycled nothing (epoch %d, retired %d): the hazard went unexercised", st.Epoch, st.Retired)
	}
	if st.Recycled > st.Retired {
		t.Errorf("Recycled %d > Retired %d", st.Recycled, st.Retired)
	}
}
