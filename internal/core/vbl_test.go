package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestLockNextAtValidatesIdentity(t *testing.T) {
	s := New()
	s.Insert(10)
	prev, curr := s.traverse(10, s.head)
	if prev != s.head || curr.val != 10 {
		t.Fatalf("traverse(10) window wrong: prev.val=%d curr.val=%d", prev.val, curr.val)
	}
	if !prev.lockNextAt(curr, true, nil, nil) {
		t.Fatal("lockNextAt with valid window failed")
	}
	if !prev.lock.Locked() {
		t.Fatal("lock not held after successful lockNextAt")
	}
	prev.lock.Unlock()

	// Stale successor: validation must fail and leave the lock free.
	if prev.lockNextAt(s.tail, true, nil, nil) {
		t.Fatal("lockNextAt succeeded with stale successor")
	}
	if prev.lock.Locked() {
		t.Fatal("lock left held after failed lockNextAt")
	}
}

func TestLockNextAtRejectsDeletedNode(t *testing.T) {
	s := New()
	s.Insert(10)
	s.Insert(20)
	_, n10 := s.traverse(10, s.head)
	succ := n10.next.Load()
	s.Remove(10) // marks n10 deleted and unlinks it
	if !n10.deleted.Load() {
		t.Fatal("removed node not marked deleted")
	}
	if n10.lockNextAt(succ, true, nil, nil) {
		t.Fatal("lockNextAt succeeded on a logically deleted node")
	}
	if n10.lock.Locked() {
		t.Fatal("lock left held after failed lockNextAt on deleted node")
	}
}

// TestLockNextAtValueAcceptsReincarnatedSuccessor is the heart of
// value-awareness: after the successor holding v is removed and a NEW
// node holding v is inserted, identity validation would fail but value
// validation must succeed.
func TestLockNextAtValueAcceptsReincarnatedSuccessor(t *testing.T) {
	s := New()
	s.Insert(10)
	prev, oldCurr := s.traverse(10, s.head)
	// Reincarnate 10: remove the node, insert a fresh one.
	s.Remove(10)
	s.Insert(10)
	_, newCurr := s.traverse(10, s.head)
	if oldCurr == newCurr {
		t.Fatal("expected a fresh node after remove+insert")
	}
	// Identity-based validation against the stale node fails...
	if prev.lockNextAt(oldCurr, true, nil, nil) {
		t.Fatal("lockNextAt accepted a stale successor identity")
	}
	// ...but value-based validation succeeds: some node with value 10
	// still follows prev, which is all the set semantics care about.
	if !prev.lockNextAtValue(10, true, nil, nil) {
		t.Fatal("lockNextAtValue rejected a reincarnated successor")
	}
	prev.lock.Unlock()
}

func TestLockNextAtValueRejectsChangedValue(t *testing.T) {
	s := New()
	s.Insert(10)
	prev, _ := s.traverse(10, s.head)
	s.Remove(10)
	// prev(head)'s successor is now tail (+inf), not 10.
	if prev.lockNextAtValue(10, true, nil, nil) {
		t.Fatal("lockNextAtValue succeeded though the successor value changed")
	}
	if prev.lock.Locked() {
		t.Fatal("lock left held after failed lockNextAtValue")
	}
	// An intervening insert of a different value must also fail it.
	s.Insert(7)
	if prev.lockNextAtValue(10, true, nil, nil) {
		t.Fatal("lockNextAtValue(10) succeeded though successor holds 7")
	}
}

func TestTraverseRestartsFromHeadWhenPrevDeleted(t *testing.T) {
	s := New()
	s.Insert(5)
	s.Insert(10)
	prev5, _ := s.traverse(10, s.head) // prev5 holds 5
	if prev5.val != 5 {
		t.Fatalf("expected prev.val=5, got %d", prev5.val)
	}
	s.Remove(5)
	// prev5 is now deleted; traversal must fall back to head and still
	// find 10.
	p, c := s.traverse(10, prev5)
	if c.val != 10 {
		t.Fatalf("traverse from deleted prev found curr.val=%d, want 10", c.val)
	}
	if p == prev5 {
		t.Fatal("traverse kept a deleted node as prev")
	}
}

func TestTraverseFromLaterPrevSkipsPrefix(t *testing.T) {
	s := New()
	for _, v := range []int64{10, 20, 30, 40} {
		s.Insert(v)
	}
	p20, _ := s.traverse(30, s.head)
	if p20.val != 20 {
		t.Fatalf("prev for 30 should hold 20, got %d", p20.val)
	}
	// Restarting the traversal from node 20 for a larger key works
	// without visiting the prefix.
	p, c := s.traverse(40, p20)
	if p.val != 30 || c.val != 40 {
		t.Fatalf("traverse(40, n20) = (%d, %d), want (30, 40)", p.val, c.val)
	}
}

func TestContainsSeesLogicallyDeletedWindowConsistently(t *testing.T) {
	// A reader standing on an unlinked node must still terminate and
	// give an answer consistent with some linearization. We simulate the
	// paused reader by capturing the node before removal.
	s := New()
	for _, v := range []int64{10, 20, 30} {
		s.Insert(v)
	}
	_, n20 := s.traverse(20, s.head)
	s.Remove(20)
	// n20 is unlinked but its next pointer still leads back into the
	// list, so traversal from it reaches 30.
	curr := n20
	for curr.val < 30 {
		curr = curr.next.Load()
	}
	if curr.val != 30 {
		t.Fatalf("traversal from unlinked node reached %d, want 30", curr.val)
	}
}

func TestRemoveUnlinksExactlyOneNode(t *testing.T) {
	s := New()
	for v := int64(0); v < 10; v++ {
		s.Insert(v)
	}
	if !s.Remove(4) {
		t.Fatal("Remove(4) failed")
	}
	snap := s.Snapshot()
	if len(snap) != 9 {
		t.Fatalf("Snapshot length = %d, want 9", len(snap))
	}
	for _, v := range snap {
		if v == 4 {
			t.Fatal("removed value still reachable")
		}
	}
}

func TestInsertAtBothEnds(t *testing.T) {
	s := New()
	s.Insert(0)
	if !s.Insert(MinSentinel + 1) {
		t.Fatal("Insert just above -inf failed")
	}
	if !s.Insert(MaxSentinel - 1) {
		t.Fatal("Insert just below +inf failed")
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0] != MinSentinel+1 || snap[2] != MaxSentinel-1 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

// TestQuickEquivalentToMap: sequential random programs over a small key
// universe behave exactly like a map.
func TestQuickEquivalentToMap(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(prog []op) bool {
		s := New()
		oracle := map[int64]bool{}
		for _, o := range prog {
			k := int64(o.Key % 16)
			switch o.Kind % 3 {
			case 0:
				if s.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if s.Remove(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if s.Contains(k) != oracle[k] {
					return false
				}
			}
		}
		return s.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSmokeVBL is a package-local stress of the white-box kind:
// it checks the deleted/next invariants of surviving nodes afterwards.
func TestConcurrentSmokeVBL(t *testing.T) {
	s := New()
	const keyRange = 24
	iterations := 20000
	if testing.Short() {
		iterations = 2000
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				k := int64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					s.Insert(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Invariants at quiescence: the reachable chain is strictly sorted,
	// contains no deleted nodes, and ends at tail.
	prev := s.head
	for curr := s.head.next.Load(); ; curr = curr.next.Load() {
		if curr.deleted.Load() {
			t.Fatal("reachable node is marked deleted at quiescence")
		}
		if curr.val <= prev.val {
			t.Fatalf("order violation: %d after %d", curr.val, prev.val)
		}
		if curr == s.tail {
			break
		}
		if curr.lock.Locked() {
			t.Fatal("reachable node lock still held at quiescence")
		}
		prev = curr
	}
}
