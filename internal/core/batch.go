package core

import (
	"listset/internal/batch"
	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Batched and ranged operations for VBL: the paper's one-window
// validation protocol (Section 3.1) generalized to k windows in one
// ordered pass.
//
// The idea: a batch of k keys, sorted and deduplicated, visits its
// windows in ascending list order. The pass keeps an *anchor* — the
// last node known to precede every remaining key — and traverses from
// it instead of from head, so the whole batch costs one O(n) walk plus
// k window validations instead of k full traversals. Each key is
// applied with the SAME value-aware try-lock protocol the single-key
// operations use, so each key linearizes individually at its window's
// store (there is no whole-batch atomicity — that would demand locking
// all k windows at once, exactly the coarse serialization the paper
// proves unnecessary). On a failed validation the pass restarts from
// the anchor, not from head: the anchor's node may since have been
// deleted, in which case traverse() falls back to head on its own.
//
// InsertAll adds one more amortization on top: while prev's lock is
// held with prev.next == curr validated, every key of the batch that
// falls strictly inside the open interval (prev.val, curr.val) is
// provably absent, so the pass builds the whole run as a private chain
// and publishes it with a single prev.next store — k' inserts for one
// lock acquisition, all linearizing (in ascending order) at that
// store.

// InsertAll adds every key of keys to the set and returns how many
// were absent (and are now present). The batch is sorted and
// deduplicated first; each key's insert linearizes individually, in
// ascending key order, within the call.
func (s *VBL) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	inserted := 0
	prev := s.head
	i := 0
	for i < len(ks) {
		v := ks[i]
		esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: s.headRestart}
		for {
			if fp := s.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteVBLTraverse, v)
			}
			var curr *node
			prev, curr = s.traverse(v, prev)
			if curr.val == v {
				// Present: nothing to lock. The node holding v becomes
				// the anchor — it precedes every remaining (larger) key.
				esc.Done(&s.retry)
				prev = curr
				i++
				break
			}
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				if injected = fp.Fail(failpoint.SiteVBLLockNextAt, v); injected {
					s.countInjectedFail(obs.EvValFailSucc, v)
				}
			}
			if injected || !prev.lockNextAt(curr, !s.noPreValidate, s.probes, s.backoff) {
				prev = s.restartBatch(prev, &esc, v)
				continue
			}
			// Window (prev, curr) is locked and validated: every batch
			// key in (prev.val, curr.val) is absent. Build the run as a
			// private ascending chain and publish it with one store.
			n := s.newNode(g, v)
			n.next.Store(curr)
			chainHead, chainTail := n, n
			inserted++
			i++
			for i < len(ks) && ks[i] < curr.val {
				m := s.newNode(g, ks[i])
				m.next.Store(curr)
				chainTail.next.Store(m)
				chainTail = m
				inserted++
				i++
			}
			prev.next.Store(chainHead)
			prev.lock.Unlock()
			esc.Done(&s.retry)
			// The chain's tail precedes every remaining key (its value
			// is below curr.val <= ks[i]), so it is the next anchor.
			prev = chainTail
			break
		}
	}
	g.Unpin()
	b.Put()
	return inserted
}

// RemoveAll deletes every key of keys from the set and returns how
// many were present (and are now absent). The batch is sorted and
// deduplicated first; each key's remove linearizes individually, in
// ascending key order, within the call.
func (s *VBL) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	removed := 0
	prev := s.head
	for _, v := range ks {
		esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: s.headRestart}
		for {
			if fp := s.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteVBLTraverse, v)
			}
			var curr *node
			prev, curr = s.traverse(v, prev)
			if curr.val != v {
				// Absent: prev precedes every remaining key and stays
				// the anchor.
				esc.Done(&s.retry)
				break
			}
			// From here this is the single-key Remove window protocol
			// verbatim: lock prev by value, re-read the successor under
			// the lock, lock it by identity, then mark and unlink.
			next := curr.next.Load()
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				if injected = fp.Fail(failpoint.SiteVBLLockNextAtValue, v); injected {
					s.countInjectedFail(obs.EvValFailValue, v)
				}
			}
			if injected || !prev.lockNextAtValue(v, !s.noPreValidate, s.probes, s.backoff) {
				prev = s.restartBatch(prev, &esc, v)
				continue
			}
			curr = prev.next.Load()
			injected = false
			if fp := s.fps; failpoint.On(fp) {
				if injected = fp.Fail(failpoint.SiteVBLLockNextAt, v); injected {
					s.countInjectedFail(obs.EvValFailSucc, v)
				}
			}
			if injected || !curr.lockNextAt(next, !s.noPreValidate, s.probes, s.backoff) {
				prev.lock.Unlock()
				prev = s.restartBatch(prev, &esc, v)
				continue
			}
			if fp := s.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteUnlink, v)
			}
			curr.deleted.Store(true) // logical deletion
			prev.next.Store(next)    // physical unlink
			curr.lock.Unlock()
			prev.lock.Unlock()
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvLogicalDelete, v)
				p.Inc(obs.EvPhysicalUnlink, v)
			}
			if g.Active() {
				g.Retire(curr)
			}
			removed++
			esc.Done(&s.retry)
			// prev still precedes every remaining key: keep it as the
			// anchor.
			break
		}
	}
	g.Unpin()
	b.Put()
	return removed
}

// restartBatch applies the batch pass's restart policy after a failed
// window validation: restart from the anchor (traverse falls back to
// head if the anchor has been deleted), escalating exactly like the
// single-key restart, and counts the batch-specific event on top.
func (s *VBL) restartBatch(prev *node, esc *obs.Escalator, v int64) *node {
	if p := s.probes; obs.On(p) {
		p.Inc(obs.EvBatchWindowRestart, v)
	}
	return s.restart(prev, esc, v)
}

// ContainsAll reports how many of the keys are in the set. One
// wait-free pass serves the whole sorted batch: the walk simply does
// not rewind between keys. Each key's query linearizes individually at
// the pointer load that reached the first node with val >= key.
func (s *VBL) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	found := 0
	curr := s.head
	for _, v := range ks {
		for curr.val < v {
			curr = curr.next.Load()
		}
		if curr.val == v {
			found++
		}
	}
	g.Unpin()
	b.Put()
	return found
}

// RangeScan returns the keys in [lo, hi) in ascending order. The scan
// is wait-free — the same unsynchronized pointer chase as Contains —
// and the result is sorted and duplicate-free by construction: values
// along any next-chain are strictly increasing, even through nodes
// unlinked mid-scan. Each reported (and each skipped) key linearizes
// individually at the load that passed its position.
func (s *VBL) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	g := s.arena.Pin()
	var out []int64
	curr := s.head
	for curr.val < lo {
		curr = curr.next.Load()
	}
	for curr.val < hi {
		out = append(out, curr.val)
		curr = curr.next.Load()
	}
	g.Unpin()
	return out
}

// Ascend calls yield for every key >= from in ascending order until
// yield returns false or the list ends. The traversal is wait-free;
// the epoch stays pinned for the duration of the iteration, so yield
// should be short.
func (s *VBL) Ascend(from int64, yield func(int64) bool) {
	g := s.arena.Pin()
	curr := s.head
	for curr.val < from {
		curr = curr.next.Load()
	}
	for curr.val != MaxSentinel {
		if !yield(curr.val) {
			break
		}
		curr = curr.next.Load()
	}
	g.Unpin()
}

// Load bulk-inserts keys with a single merge walk: O(n + k) total, and
// O(k) on an empty set, where each new node is appended at the frozen
// tail of the walk. It takes no locks and must only be used at
// quiescence (setup/population), before the set is shared. Returns how
// many keys were absent.
func (s *VBL) Load(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	added := 0
	prev := s.head
	curr := prev.next.Load()
	for _, v := range ks {
		for curr.val < v {
			prev = curr
			curr = curr.next.Load()
		}
		if curr.val == v {
			prev = curr
			curr = curr.next.Load()
			continue
		}
		n := s.newNode(g, v)
		n.next.Store(curr)
		prev.next.Store(n)
		prev = n
		added++
	}
	g.Unpin()
	b.Put()
	return added
}
