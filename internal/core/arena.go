package core

import (
	"listset/internal/mem"
	"listset/internal/obs"
)

// Arena-backed node lifetimes for VBL (internal/mem): slab allocation,
// per-worker free lists, epoch-based reclamation.
//
// Why reuse is safe here and not in Harris-Michael: recycling a node
// re-introduces ABA for algorithms that draw conclusions from pointer
// *identity* without holding locks — Harris's unlink CAS succeeds
// whenever prev.next still equals a remembered pointer, and a recycled
// node makes that equality stop meaning "same logical node". VBL has
// no unprotected identity CAS: every structural write happens under
// per-node try-locks whose validation re-reads the current list state,
// and the Remove-side validation is by *value* (lockNextAtValue), so a
// successor that was recycled into a new node holding the same value
// is accepted by design — the paper's Section 3.1 argument is exactly
// that such schedules are semantically welcome. The only remaining
// hazard — a wait-free traversal dereferencing a node after reuse — is
// closed by the grace period: every operation pins the epoch for its
// whole duration, and a node recycles only two epochs after its
// retirement, by which point no pin that could have seen it survives.

// WithArena attaches a freshly created default-sized arena, enabling
// slab allocation and epoch-based node recycling.
func WithArena() Option {
	return func(s *VBL) { s.arena = mem.New[node](mem.Options{}) }
}

// NewArena returns an empty VBL set with arena-backed node lifetimes.
func NewArena() *VBL { return NewVariant(WithArena()) }

// ArenaStats reports the arena's allocation/reclamation tallies and
// whether an arena is attached at all.
func (s *VBL) ArenaStats() (mem.Stats, bool) {
	if a := s.arena; a != nil {
		return a.Stats(), true
	}
	return mem.Stats{}, false
}

// newNode returns an initialized, unpublished node holding v: heap
// allocated in GC mode, slab-carved or recycled in arena mode.
func (s *VBL) newNode(g mem.Guard[node], v int64) *node {
	if !g.Active() {
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvNodeAlloc, v)
		}
		return &node{val: v}
	}
	n := g.Get()
	// Re-initialize what the node's previous life left behind. The
	// writes are unobservable: the node is unreachable until the
	// successful prev.next store publishes it, and the grace period
	// guarantees no traversal from its previous life still holds it.
	//lint:ignore valimmutable re-initializing a recycled node before publication; the arena's two-epoch grace period guarantees exclusivity
	n.val = v
	n.deleted.Store(false)
	n.next.Store(nil)
	return n
}
