package core

import (
	"testing"
	"unsafe"
)

// TestSentinelLayout pins the cache-line padding of the sentinel
// allocation so the layout cannot silently regress: a paddedNode must
// stay a whole number of cache lines with the node's hot fields at its
// front, and a fresh list's head and tail must land on distinct lines.
func TestSentinelLayout(t *testing.T) {
	if sz := unsafe.Sizeof(paddedNode{}); sz%cacheLine != 0 {
		t.Fatalf("paddedNode size %d is not a multiple of the %d-byte cache line", sz, cacheLine)
	}
	var p paddedNode
	if off := unsafe.Offsetof(p.node); off != 0 {
		t.Fatalf("embedded node at offset %d, want 0 (padding must trail the hot fields)", off)
	}
	if unsafe.Sizeof(paddedNode{}) < unsafe.Sizeof(node{}) {
		t.Fatal("paddedNode smaller than node")
	}
	s := New()
	h := uintptr(unsafe.Pointer(s.head))
	tl := uintptr(unsafe.Pointer(s.tail))
	if h/cacheLine == tl/cacheLine {
		t.Fatalf("head (%#x) and tail (%#x) share a cache line", h, tl)
	}
}
