// Package skiplist carries the paper's concluding conjecture into code:
// "generalizations of linked lists, such as skip-lists ... may allow for
// optimizations similar to the ones proposed in this paper" (§5).
//
// Two implementations are provided:
//
//   - VB (vbskip.go): a skip list whose membership level — level 0 — IS
//     the VBL list: wait-free traversal, logical deletion, and the
//     value-aware try-lock protocol verbatim. The upper levels are a
//     best-effort navigation index maintained with single-node
//     try-locks: an index level is linked or unlinked one lock at a
//     time, never while holding another node's lock, so the deadlock
//     freedom of the flat VBL carries over. Index imperfections
//     (not-yet-linked or not-yet-unlinked entries) affect only search
//     speed, never membership.
//   - Lazy (lazyskip.go): the LazySkipList of Herlihy & Shavit
//     (ch. 14.3), the established lock-based baseline, which locks every
//     predecessor level before deciding anything — the skip-list
//     analogue of the Lazy list's lock-then-validate discipline.
//
// Both are full citizens of the repository's cross-cutting layers: obs
// probes at the decision points, chaos failpoints mirroring the flat
// lists' sites, the bounded-retry escalation ladder, per-set backoff
// policies, and (for VB) a height-classed arena with epoch-based
// reclamation. DESIGN.md §15 holds the acceptance and reclamation
// arguments.
package skiplist

import (
	"math/bits"
	"sync/atomic"

	"listset/internal/failpoint"
	"listset/internal/mem"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// Sentinel values stored in the head and tail towers.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

// maxLevel is the hard tower-height cap (the next-array size).
// DefaultLevels is the default working height: 18 levels index ~e^18 ≈
// 66M expected elements, the million-user key spaces the index exists
// for; NewVBLevels tunes it per instance within [1, maxLevel].
const (
	maxLevel      = 20
	DefaultLevels = 18
)

// vbNode is a tower. val is immutable while the node is reachable;
// next[l] for l < height are the per-level successor pointers; deleted
// and lock implement the VBL protocol on level 0 (and guard this node's
// unlinking at every level).
//
// linked, idxDone and retired exist for the arena's sake: they let the
// last unlinker prove a deleted tower unreachable (see maybeRetire).
// linked is a bitmask of EVERY level the tower is published at,
// level 0 included — the bit is set under the predecessor's lock
// BEFORE the link is stored, so any unlink of that level (which must
// lock the then-current predecessor) happens-after the set and the
// clear can never be lost. Bit 0 matters most: deleted is set inside
// the remover's critical section BEFORE the level-0 unlink store, so
// without it a concurrent index unlinker clearing the last index bit
// in that window would retire a tower still linked at level 0 — a
// retire-before-unreachable that breaks the arena's grace-period
// contract (the bucket is stamped before the node is unreachable, so
// a reader pinned one epoch later can stand on the tower when it
// recycles). Bit 0 is cleared by the remover only AFTER the unlink
// store, restoring retire-happens-after-unreachable.
type vbNode struct {
	val     int64
	height  int
	next    [maxLevel]atomic.Pointer[vbNode]
	deleted atomic.Bool
	lock    trylock.SpinLock
	linked  atomic.Uint32
	idxDone atomic.Bool
	retired atomic.Bool
}

// setLinked marks level l as published (CAS loop: Go 1.22 has no
// atomic Or).
func (n *vbNode) setLinked(l int) {
	for {
		old := n.linked.Load()
		if n.linked.CompareAndSwap(old, old|1<<uint(l)) {
			return
		}
	}
}

// clearLinked marks level l as unlinked again.
func (n *vbNode) clearLinked(l int) {
	for {
		old := n.linked.Load()
		if n.linked.CompareAndSwap(old, old&^(1<<uint(l))) {
			return
		}
	}
}

// acquire takes n's lock, counting a contended acquisition when probes
// are attached and drawing the contended path's spin bounds from the
// list's backoff policy bo (nil = package defaults).
func (n *vbNode) acquire(p *obs.Probes, bo *trylock.Backoff) {
	if obs.On(p) {
		if n.lock.LockContendedWith(bo) {
			p.Inc(obs.EvTryLockContended, n.val)
		}
		return
	}
	n.lock.LockWith(bo)
}

// countIdentityFail classifies a failed identity validation for the
// probe report. The re-read is racy — a borderline case may be
// classified either way — which is fine for a counter.
func (n *vbNode) countIdentityFail(p *obs.Probes) {
	if n.deleted.Load() {
		p.Inc(obs.EvValFailDeleted, n.val)
	} else {
		p.Inc(obs.EvValFailSucc, n.val)
	}
}

// countValueFail classifies a failed value validation analogously.
func (n *vbNode) countValueFail(p *obs.Probes) {
	if n.deleted.Load() {
		p.Inc(obs.EvValFailDeleted, n.val)
	} else {
		p.Inc(obs.EvValFailValue, n.val)
	}
}

// lockNextAt is the identity-validating value-aware try-lock at level
// l: lock-free pre-validation, acquire, revalidate under the lock.
func (n *vbNode) lockNextAt(l int, succ *vbNode, p *obs.Probes, bo *trylock.Backoff) bool {
	if n.deleted.Load() || n.next[l].Load() != succ {
		if obs.On(p) {
			n.countIdentityFail(p)
		}
		return false
	}
	n.acquire(p, bo)
	if n.deleted.Load() || n.next[l].Load() != succ {
		n.lock.Unlock()
		if obs.On(p) {
			n.countIdentityFail(p)
		}
		return false
	}
	return true
}

// lockNextAtValue is the value-validating try-lock on level 0 — the
// paper's central novelty, applied verbatim to the membership level.
func (n *vbNode) lockNextAtValue(v int64, p *obs.Probes, bo *trylock.Backoff) bool {
	if n.deleted.Load() || n.next[0].Load().val != v {
		if obs.On(p) {
			n.countValueFail(p)
		}
		return false
	}
	n.acquire(p, bo)
	if n.deleted.Load() || n.next[0].Load().val != v {
		n.lock.Unlock()
		if obs.On(p) {
			n.countValueFail(p)
		}
		return false
	}
	return true
}

// numTowerClasses is the number of arena size classes towers bucket
// into by height: 1, 2-3, 4-7, >= 8. Roughly half of all towers are
// height 1 and recycle within their own dense class; the rare tall
// towers never have to wait behind them.
const numTowerClasses = 4

// towerClass maps a height to its arena size class.
func towerClass(h int) int {
	c := bits.Len(uint(h)) - 1
	if c >= numTowerClasses {
		c = numTowerClasses - 1
	}
	return c
}

// VB is the value-aware skip list.
type VB struct {
	head   *vbNode
	tail   *vbNode
	seed   atomic.Uint64
	levels int

	// probes, when non-nil, receives contention events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the chaos failpoints (internal/failpoint).
	fps *failpoint.Set
	// arena, when non-nil, supplies towers from height-classed slabs and
	// recycles unlinked towers after the epoch-based grace period
	// (internal/mem). Nil delegates lifetimes to the GC.
	arena *mem.Arena[vbNode]

	// budget is the failed-validation retry budget K (0 = unbounded),
	// atomic so the adaptive controller can retune it while operations
	// are in flight; retry aggregates what the escalators saw.
	budget atomic.Int32
	retry  obs.RetryCounter

	// backoff, when non-nil, supplies the per-set spin bounds for
	// contended node-lock acquisitions; nil means package defaults.
	backoff *trylock.Backoff
}

// NewVB returns an empty value-aware skip list with DefaultLevels
// index levels.
func NewVB() *VB { return newVB(DefaultLevels, nil) }

// NewVBLevels returns an empty value-aware skip list with the given
// number of levels, clamped to [1, 20]. One level is the flat VBL;
// levels ~ log2 of the expected element count is the classic sizing.
func NewVBLevels(levels int) *VB { return newVB(levels, nil) }

// NewVBArena returns a value-aware skip list whose towers live in a
// height-classed slab arena with epoch-based reclamation. Reuse is safe
// for the same reason as the flat vbl-arena — the protocol is
// lock-based and the per-operation epoch pin keeps every node an
// operation discovered alive (and its val immutable) until the
// operation unpins — see DESIGN.md §15.
func NewVBArena() *VB {
	return newVB(DefaultLevels, mem.New[vbNode](mem.Options{Classes: numTowerClasses}))
}

func newVB(levels int, arena *mem.Arena[vbNode]) *VB {
	if levels < 1 {
		levels = 1
	}
	if levels > maxLevel {
		levels = maxLevel
	}
	s := &VB{
		head:   &vbNode{val: MinSentinel, height: maxLevel},
		tail:   &vbNode{val: MaxSentinel, height: maxLevel},
		levels: levels,
		arena:  arena,
	}
	for l := 0; l < maxLevel; l++ {
		s.head.next[l].Store(s.tail)
	}
	s.seed.Store(0x9E3779B97F4A7C15)
	return s
}

// Levels returns the working index height.
func (s *VB) Levels() int { return s.levels }

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the set between goroutines.
func (s *VB) SetProbes(p *obs.Probes) {
	s.probes = p
	if a := s.arena; a != nil {
		a.SetProbes(p)
	}
}

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the set between goroutines.
func (s *VB) SetFailpoints(fp *failpoint.Set) {
	s.fps = fp
	if a := s.arena; a != nil {
		a.SetFailpoints(fp)
	}
}

// SetRetryBudget sets the failed-validation retry budget K. The skip
// list's native restart is already the full descent from head, so the
// ladder is head-native: past K restarts an operation backs off between
// attempts. 0 restores unbounded retries.
func (s *VB) SetRetryBudget(k int) { s.budget.Store(int32(k)) }

// SetBackoff attaches (or with nil detaches) the per-set backoff policy
// for contended node-lock acquisitions. Call before sharing the set;
// retuning the attached policy's ceiling afterwards is safe.
func (s *VB) SetBackoff(b *trylock.Backoff) { s.backoff = b }

// RetryStats reports the aggregated restart/escalation tallies.
func (s *VB) RetryStats() obs.RetryStats { return s.retry.Stats() }

// ArenaStats reports the arena's reclamation counters; ok is false when
// the set is GC-backed.
func (s *VB) ArenaStats() (mem.Stats, bool) {
	if s.arena == nil {
		return mem.Stats{}, false
	}
	return s.arena.Stats(), true
}

// randomHeight draws a capped geometric(1/2) tower height.
func (s *VB) randomHeight() int {
	// splitmix64 over a shared counter: cheap, contention is one
	// uncontended-ish atomic add per insert.
	z := s.seed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	h := 1 + bits.TrailingZeros64(z|1<<uint(s.levels-1))
	if h > s.levels {
		h = s.levels
	}
	return h
}

// newTower materializes a tower of height h holding v: from the heap,
// or recycled out of the arena's height class when one is attached. A
// recycled tower's levels below h are re-stored by the caller before
// the level-0 link publishes it; levels at or above h are never read,
// because a node is only reachable at levels it was linked at.
func (s *VB) newTower(g mem.Guard[vbNode], v int64, h int) *vbNode {
	if p := s.probes; obs.On(p) {
		p.Inc(obs.EvSkipTowerHeight, int64(h))
	}
	if !g.Active() {
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvNodeAlloc, v)
		}
		//lint:ignore hotalloc without an arena the insert path must materialize the new tower on the heap
		return &vbNode{val: v, height: h}
	}
	n := g.GetClass(towerClass(h))
	//lint:ignore valimmutable the tower is recycled: it is unpublished and fully re-initialized before the level-0 link publishes it
	n.val = v
	n.height = h
	n.deleted.Store(false)
	n.linked.Store(0)
	n.idxDone.Store(false)
	n.retired.Store(false)
	return n
}

// maybeRetire retires a deleted tower into the arena's limbo once it is
// provably unreachable for new traversals: the remover marked it
// (deleted), the inserter finished its index maintenance (idxDone),
// and every level it was published at — level 0 included — has been
// unlinked again (linked == 0; the remover clears bit 0 only after
// storing the level-0 unlink, so linked == 0 happens-after the tower
// became unreachable). Each level is linked at most once per life —
// only the inserter links it — and unlinked at most once, so the mask
// is monotone toward zero after idxDone and the condition is stable;
// the CAS makes the retirement exclusive among the remover, the
// inserter and the opportunistic unlinkers who may all observe it. A
// tower whose sweep transiently missed a level is simply never
// retired — it leaks to its slab, which is safe, just not recycled.
func (s *VB) maybeRetire(g mem.Guard[vbNode], n *vbNode) {
	if !g.Active() || !n.deleted.Load() || !n.idxDone.Load() || n.linked.Load() != 0 {
		return
	}
	if n.retired.CompareAndSwap(false, true) {
		g.RetireClass(n, towerClass(n.height))
	}
}

// find locates, at every level, the window preds[l].val < v <=
// succs[l].val, descending from the top. Two disciplines keep the
// level-0 window sound in the face of deferred index unlinking:
//
//   - only nodes observed LIVE during this call are adopted as pred —
//     a deleted index tower is routed through but never anchors the
//     descent, so the level-0 walk always starts from a node that was
//     in the set during the operation (the anchor of the flat list's
//     linearizability argument);
//   - deleted towers encountered on upper levels are opportunistically
//     detached (with a non-blocking try-lock, so navigation never
//     waits).
func (s *VB) find(g mem.Guard[vbNode], v int64) (preds, succs [maxLevel]*vbNode) {
	pred := s.head
	for l := s.levels - 1; l >= 0; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			if l > 0 && curr.deleted.Load() {
				if s.tryUnlinkLevel(g, pred, curr, l) {
					curr = pred.next[l].Load()
				} else {
					curr = curr.next[l].Load() // route through, don't adopt
				}
				continue
			}
			pred = curr
			curr = pred.next[l].Load()
		}
		preds[l], succs[l] = pred, curr
	}
	return preds, succs
}

// tryUnlinkLevel detaches the deleted tower curr from level l if pred's
// lock is immediately available and the window still holds. An injected
// SiteSkipIndexLink failure abandons the attempt like a lost try-lock
// race.
func (s *VB) tryUnlinkLevel(g mem.Guard[vbNode], pred, curr *vbNode, l int) bool {
	if fp := s.fps; failpoint.On(fp) {
		if fp.Fail(failpoint.SiteSkipIndexLink, curr.val) {
			return false
		}
	}
	if pred.deleted.Load() || pred.next[l].Load() != curr {
		return false
	}
	if !pred.lock.TryLock() {
		return false
	}
	ok := !pred.deleted.Load() && pred.next[l].Load() == curr
	if ok {
		pred.next[l].Store(curr.next[l].Load())
	}
	pred.lock.Unlock()
	if ok {
		curr.clearLinked(l)
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvSkipIndexUnlink, curr.val)
		}
		s.maybeRetire(g, curr)
	}
	return ok
}

// Contains reports whether v is in the set. Wait-free: the index levels
// are used strictly for navigation (a tower matching v at an upper
// level is NOT trusted — it may be a deleted orphan coexisting with a
// fresh live tower for the same value); the verdict is delivered by the
// level-0 walk, where the flat Lazy/VBL linearizability argument
// applies verbatim. Unlike the flat VBL the deletion mark must be
// consulted, because index unlinking is deferred.
func (s *VB) Contains(v int64) bool {
	g := s.arena.Pin()
	pred := s.head
	for l := s.levels - 1; l >= 1; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			if curr.deleted.Load() {
				curr = curr.next[l].Load() // route through, don't adopt
				continue
			}
			pred = curr
			curr = pred.next[l].Load()
		}
	}
	curr := pred.next[0].Load()
	for curr.val < v {
		curr = curr.next[0].Load()
	}
	found := curr.val == v && !curr.deleted.Load()
	g.Unpin()
	return found
}

// restart records one failed level-0 validation. The skip list's native
// restart locality is the head — the descent re-derives every level's
// predecessor — so the escalation ladder is head-native and collapses
// to backoff-at-K.
func (s *VB) restart(esc *obs.Escalator, v int64) {
	esc.Failed(s.probes, v)
	if p := s.probes; obs.On(p) {
		p.Inc(obs.EvSkipRestartL0, v)
	}
}

// Insert adds v to the set and reports whether v was absent. The
// linearization point is the level-0 link performed under the
// value-aware try-lock — exactly the flat VBL's insert — after which
// the upper index levels are linked one try-lock at a time.
func (s *VB) Insert(v int64) bool {
	g := s.arena.Pin()
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	// The speculative tower is allocated once and reused across failed
	// validations; it is unpublished until the successful level-0 link,
	// so no traversal can observe the reuse.
	var n *vbNode
	var h int
	var preds, succs [maxLevel]*vbNode
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteSkipTraverse, v)
		}
		preds, succs = s.find(g, v)
		if succs[0].val == v {
			if n != nil && g.Active() {
				g.FreeClass(n, towerClass(h)) // never published: no grace period needed
			}
			esc.Done(&s.retry)
			g.Unpin()
			return false
		}
		if n == nil {
			h = s.randomHeight()
			n = s.newTower(g, v, h)
		}
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
		}
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			if injected = fp.Fail(failpoint.SiteSkipLockNextAt, v); injected {
				s.countInjectedFail(obs.EvValFailSucc, v)
			}
		}
		if injected || !preds[0].lockNextAt(0, succs[0], s.probes, s.backoff) {
			s.restart(&esc, v)
			continue
		}
		n.setLinked(0)
		preds[0].next[0].Store(n)
		preds[0].lock.Unlock()
		break
	}

	s.linkIndex(g, n, h, preds, succs)
	esc.Done(&s.retry)
	g.Unpin()
	return true
}

// linkIndex links n's upper levels best-effort after the level-0 link
// published the tower, then finishes the tower's lifecycle
// bookkeeping. A level that cannot be linked after a re-find is
// skipped — the tower stays findable through level 0 regardless. The
// linked bit for a level is set under the predecessor's lock BEFORE
// the link is stored, so the eventual unlink's clear always
// happens-after it (see vbNode).
func (s *VB) linkIndex(g mem.Guard[vbNode], n *vbNode, h int, preds, succs [maxLevel]*vbNode) {
	v := n.val
index:
	for l := 1; l < h; l++ {
		for attempt := 0; ; attempt++ {
			if n.deleted.Load() {
				// A concurrent remove already claimed the node; linking
				// more index levels would only create orphans.
				break index
			}
			n.next[l].Store(succs[l])
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				injected = fp.Fail(failpoint.SiteSkipIndexLink, v)
			}
			if !injected && preds[l].lockNextAt(l, succs[l], s.probes, s.backoff) {
				n.setLinked(l)
				preds[l].next[l].Store(n)
				preds[l].lock.Unlock()
				break
			}
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvSkipIndexLinkRetry, v)
			}
			if attempt >= 2 {
				// Give up: the index stays sparse at this level. Park the
				// level's pointer on tail rather than leaving the last
				// speculative succ frozen there: descents through a live
				// tower read next[j] for every level below the adoption
				// level, linked or not (bottom-up linking means any such
				// level was processed — linked, or parked here), and once
				// this insert unpins a frozen succ could be unlinked,
				// retired and recycled under a later reader, whose
				// mutated val would break the value-ordered navigation
				// invariant (arena-only: the GC keeps a stale target's
				// val immutable). tail is a terminal the walk treats as
				// "drop a level", which is exactly what a sparse index
				// level means.
				n.next[l].Store(s.tail)
				break
			}
			preds, succs = s.find(g, v)
			if succs[l] == n {
				break // someone (a helper) already linked it
			}
		}
	}
	n.idxDone.Store(true)
	// If a remove raced us, sweep our own index entries; whoever of the
	// racers observes the fully-unlinked state retires the tower.
	if n.deleted.Load() {
		s.sweep(g, n)
		s.maybeRetire(g, n)
	}
}

// countInjectedFail mirrors a chaos-injected validation failure into
// the probe counters, so consumers of the valfail signal (the adaptive
// controller, the flight recorder) see an injected storm exactly as
// they would a real one.
func (s *VB) countInjectedFail(ev obs.Event, v int64) {
	if p := s.probes; obs.On(p) {
		p.Inc(ev, v)
	}
}

// Remove deletes v from the set and reports whether v was present. The
// level-0 protocol is the flat VBL's remove verbatim (value-aware lock
// on the predecessor, identity-validating lock on the victim, mark then
// unlink); the index levels are detached afterwards, one try-lock at a
// time.
func (s *VB) Remove(v int64) bool {
	g := s.arena.Pin()
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteSkipTraverse, v)
		}
		preds, succs := s.find(g, v)
		if succs[0].val != v {
			esc.Done(&s.retry)
			g.Unpin()
			return false
		}
		curr := succs[0]
		next := curr.next[0].Load()
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			if injected = fp.Fail(failpoint.SiteSkipLockNextAt, v); injected {
				s.countInjectedFail(obs.EvValFailValue, v)
			}
		}
		if injected || !preds[0].lockNextAtValue(v, s.probes, s.backoff) {
			s.restart(&esc, v)
			continue
		}
		// Re-read the successor under pred's lock: it is the (possibly
		// different) node holding v whose presence the value validation
		// just established.
		curr = preds[0].next[0].Load()
		injected = false
		if fp := s.fps; failpoint.On(fp) {
			if injected = fp.Fail(failpoint.SiteSkipLockNextAt, v); injected {
				s.countInjectedFail(obs.EvValFailSucc, v)
			}
		}
		if injected || !curr.lockNextAt(0, next, s.probes, s.backoff) {
			preds[0].lock.Unlock()
			s.restart(&esc, v)
			continue
		}
		// The level-0 unlink runs under both locks and must not be
		// skipped, so the site is Do-only: delays and pauses, never
		// forced failure.
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteUnlink, v)
		}
		curr.deleted.Store(true) // logical deletion: v is out, now
		preds[0].next[0].Store(next)
		curr.clearLinked(0) // after the unlink store: linked==0 now implies unreachable
		curr.lock.Unlock()
		preds[0].lock.Unlock()
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvLogicalDelete, v)
			p.Inc(obs.EvPhysicalUnlink, v)
		}
		s.sweep(g, curr)
		s.maybeRetire(g, curr)
		esc.Done(&s.retry)
		g.Unpin()
		return true
	}
}

// sweep detaches a deleted tower from every index level, one
// single-node lock at a time (never holding two locks, so no deadlock).
// An injected SiteSkipIndexLink failure abandons the level — membership
// is unaffected, the orphan is collected by later traversals.
func (s *VB) sweep(g mem.Guard[vbNode], n *vbNode) {
	for l := n.height - 1; l >= 1; l-- {
		for {
			pred, linked := s.findPredAtLevel(g, n, l)
			if !linked {
				break // not (or no longer) linked at this level
			}
			if fp := s.fps; failpoint.On(fp) {
				if fp.Fail(failpoint.SiteSkipIndexLink, n.val) {
					break
				}
			}
			if pred.lockNextAt(l, n, s.probes, s.backoff) {
				pred.next[l].Store(n.next[l].Load())
				pred.lock.Unlock()
				n.clearLinked(l)
				if p := s.probes; obs.On(p) {
					p.Inc(obs.EvSkipIndexUnlink, n.val)
				}
				break
			}
			// Window moved or pred deleted; re-locate and retry.
		}
	}
}

// findPredAtLevel locates the node whose level-l successor is exactly
// n, descending the index from the top (O(log n), not a level scan);
// it reports false if n is not linked at level l. A deleted tower on
// the walk is never adopted as pred — its lock can never be taken, so
// a sweep that adopted it would spin forever once it is the last
// active thread (the shard façade's pending-writer freeze-out makes
// that state reachable). Instead the walk helps detach it, and when
// the help fails (lost try-lock race, injected failure) it reports
// false: sweep abandons the level and traversals' opportunistic
// unlinking collects the orphan.
func (s *VB) findPredAtLevel(g mem.Guard[vbNode], n *vbNode, l int) (*vbNode, bool) {
	pred := s.head
	for lev := s.levels - 1; lev > l; lev-- {
		curr := pred.next[lev].Load()
		for curr.val < n.val {
			if curr.deleted.Load() {
				// Route through without adopting: a deleted pred handed
				// down to the level-l walk would be returned with its
				// lock forever untakeable, and sweep's retry loop would
				// spin on it (fatal when sweep is the only runnable
				// thread — see the level-l rule below).
				curr = curr.next[lev].Load()
				continue
			}
			pred = curr
			curr = pred.next[lev].Load()
		}
	}
	for {
		curr := pred.next[l].Load()
		if curr == n {
			return pred, true
		}
		// Equal values can coexist transiently (deleted tower + fresh
		// insert), so walk past non-identical equal values too.
		if curr.val > n.val || curr == s.tail {
			return nil, false
		}
		if curr.deleted.Load() {
			if !s.tryUnlinkLevel(g, pred, curr, l) {
				return nil, false
			}
			continue // re-read pred's level-l successor
		}
		pred = curr
	}
}

// Len counts the live elements by a level-0 traversal; exact at
// quiescence.
func (s *VB) Len() int {
	g := s.arena.Pin()
	n := 0
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if !curr.deleted.Load() {
			n++
		}
	}
	g.Unpin()
	return n
}

// Snapshot returns the live elements in ascending order; exact at
// quiescence.
func (s *VB) Snapshot() []int64 {
	g := s.arena.Pin()
	var out []int64
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if !curr.deleted.Load() {
			out = append(out, curr.val)
		}
	}
	g.Unpin()
	return out
}

var (
	_ obs.Instrumented     = (*VB)(nil)
	_ obs.RetryBudgeted    = (*VB)(nil)
	_ failpoint.Injectable = (*VB)(nil)
)
