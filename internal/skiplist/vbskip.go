// Package skiplist carries the paper's concluding conjecture into code:
// "generalizations of linked lists, such as skip-lists ... may allow for
// optimizations similar to the ones proposed in this paper" (§5).
//
// Two implementations are provided:
//
//   - VB (vbskip.go): a skip list whose membership level — level 0 — IS
//     the VBL list: wait-free traversal, logical deletion, and the
//     value-aware try-lock protocol verbatim. The upper levels are a
//     best-effort navigation index maintained with single-node
//     try-locks: an index level is linked or unlinked one lock at a
//     time, never while holding another node's lock, so the deadlock
//     freedom of the flat VBL carries over. Index imperfections
//     (not-yet-linked or not-yet-unlinked entries) affect only search
//     speed, never membership.
//   - Lazy (lazyskip.go): the LazySkipList of Herlihy & Shavit
//     (ch. 14.3), the established lock-based baseline, which locks every
//     predecessor level before deciding anything — the skip-list
//     analogue of the Lazy list's lock-then-validate discipline.
package skiplist

import (
	"math/bits"
	"sync/atomic"

	"listset/internal/trylock"
)

// Sentinel values stored in the head and tail towers.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

// maxLevel is the tower height cap; 2^16 expected elements per head
// slot is plenty for the benchmark ranges.
const maxLevel = 16

// vbNode is a tower. val is immutable; next[l] for l < height are the
// per-level successor pointers; deleted and lock implement the VBL
// protocol on level 0 (and guard this node's unlinking at every level).
type vbNode struct {
	val     int64
	height  int
	next    [maxLevel]atomic.Pointer[vbNode]
	deleted atomic.Bool
	lock    trylock.SpinLock
}

// lockNextAt is the identity-validating value-aware try-lock at level l.
func (n *vbNode) lockNextAt(l int, succ *vbNode) bool {
	if n.deleted.Load() || n.next[l].Load() != succ {
		return false
	}
	n.lock.Lock()
	if n.deleted.Load() || n.next[l].Load() != succ {
		n.lock.Unlock()
		return false
	}
	return true
}

// lockNextAtValue is the value-validating try-lock on level 0.
func (n *vbNode) lockNextAtValue(v int64) bool {
	if n.deleted.Load() || n.next[0].Load().val != v {
		return false
	}
	n.lock.Lock()
	if n.deleted.Load() || n.next[0].Load().val != v {
		n.lock.Unlock()
		return false
	}
	return true
}

// VB is the value-aware skip list.
type VB struct {
	head *vbNode
	tail *vbNode
	seed atomic.Uint64
}

// NewVB returns an empty value-aware skip list.
func NewVB() *VB {
	s := &VB{
		head: &vbNode{val: MinSentinel, height: maxLevel},
		tail: &vbNode{val: MaxSentinel, height: maxLevel},
	}
	for l := 0; l < maxLevel; l++ {
		s.head.next[l].Store(s.tail)
	}
	s.seed.Store(0x9E3779B97F4A7C15)
	return s
}

// randomHeight draws a capped geometric(1/2) tower height.
func (s *VB) randomHeight() int {
	// splitmix64 over a shared counter: cheap, contention is one
	// uncontended-ish atomic add per insert.
	z := s.seed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	h := 1 + bits.TrailingZeros64(z|1<<(maxLevel-1))
	if h > maxLevel {
		h = maxLevel
	}
	return h
}

// find locates, at every level, the window preds[l].val < v <=
// succs[l].val, descending from the top. Two disciplines keep the
// level-0 window sound in the face of deferred index unlinking:
//
//   - only nodes observed LIVE during this call are adopted as pred —
//     a deleted index tower is routed through but never anchors the
//     descent, so the level-0 walk always starts from a node that was
//     in the set during the operation (the anchor of the flat list's
//     linearizability argument);
//   - deleted towers encountered on upper levels are opportunistically
//     detached (with a non-blocking try-lock, so navigation never
//     waits).
func (s *VB) find(v int64) (preds, succs [maxLevel]*vbNode) {
	pred := s.head
	for l := maxLevel - 1; l >= 0; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			if l > 0 && curr.deleted.Load() {
				if s.tryUnlinkLevel(pred, curr, l) {
					curr = pred.next[l].Load()
				} else {
					curr = curr.next[l].Load() // route through, don't adopt
				}
				continue
			}
			pred = curr
			curr = pred.next[l].Load()
		}
		preds[l], succs[l] = pred, curr
	}
	return preds, succs
}

// tryUnlinkLevel detaches the deleted tower curr from level l if pred's
// lock is immediately available and the window still holds.
func (s *VB) tryUnlinkLevel(pred, curr *vbNode, l int) bool {
	if pred.deleted.Load() || pred.next[l].Load() != curr {
		return false
	}
	if !pred.lock.TryLock() {
		return false
	}
	ok := !pred.deleted.Load() && pred.next[l].Load() == curr
	if ok {
		pred.next[l].Store(curr.next[l].Load())
	}
	pred.lock.Unlock()
	return ok
}

// Contains reports whether v is in the set. Wait-free: the index levels
// are used strictly for navigation (a tower matching v at an upper
// level is NOT trusted — it may be a deleted orphan coexisting with a
// fresh live tower for the same value); the verdict is delivered by the
// level-0 walk, where the flat Lazy/VBL linearizability argument
// applies verbatim. Unlike the flat VBL the deletion mark must be
// consulted, because index unlinking is deferred.
func (s *VB) Contains(v int64) bool {
	pred := s.head
	for l := maxLevel - 1; l >= 1; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			if curr.deleted.Load() {
				curr = curr.next[l].Load() // route through, don't adopt
				continue
			}
			pred = curr
			curr = pred.next[l].Load()
		}
	}
	curr := pred.next[0].Load()
	for curr.val < v {
		curr = curr.next[0].Load()
	}
	return curr.val == v && !curr.deleted.Load()
}

// Insert adds v to the set and reports whether v was absent. The
// linearization point is the level-0 link performed under the
// value-aware try-lock — exactly the flat VBL's insert — after which
// the upper index levels are linked one try-lock at a time.
func (s *VB) Insert(v int64) bool {
	for {
		preds, succs := s.find(v)
		if succs[0].val == v {
			return false
		}
		h := s.randomHeight()
		//lint:ignore hotalloc the insert path must materialize the new tower; the skip lists have no arena mode
		n := &vbNode{val: v, height: h}
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
		}
		if !preds[0].lockNextAt(0, succs[0]) {
			continue
		}
		preds[0].next[0].Store(n)
		preds[0].lock.Unlock()

		// Index maintenance: link the upper levels best-effort. A level
		// that cannot be linked after a re-find is skipped — the tower
		// stays findable through level 0 regardless.
		for l := 1; l < h; l++ {
			for attempt := 0; ; attempt++ {
				if n.deleted.Load() {
					// A concurrent remove already claimed the node;
					// linking more index levels would only create
					// orphans.
					return true
				}
				n.next[l].Store(succs[l])
				if preds[l].lockNextAt(l, succs[l]) {
					preds[l].next[l].Store(n)
					preds[l].lock.Unlock()
					break
				}
				if attempt >= 2 {
					break // give up on this level; index stays sparse
				}
				preds, succs = s.find(v)
				if succs[l] == n {
					break // someone (a helper) already linked it
				}
			}
		}
		// If a remove raced us, sweep our own index entries.
		if n.deleted.Load() {
			s.sweep(n)
		}
		return true
	}
}

// Remove deletes v from the set and reports whether v was present. The
// level-0 protocol is the flat VBL's remove verbatim (value-aware lock
// on the predecessor, identity-validating lock on the victim, mark then
// unlink); the index levels are detached afterwards, one try-lock at a
// time.
func (s *VB) Remove(v int64) bool {
	for {
		preds, succs := s.find(v)
		if succs[0].val != v {
			return false
		}
		curr := succs[0]
		next := curr.next[0].Load()
		if !preds[0].lockNextAtValue(v) {
			continue
		}
		curr = preds[0].next[0].Load()
		if !curr.lockNextAt(0, next) {
			preds[0].lock.Unlock()
			continue
		}
		curr.deleted.Store(true) // logical deletion: v is out, now
		preds[0].next[0].Store(next)
		curr.lock.Unlock()
		preds[0].lock.Unlock()

		s.sweep(curr)
		return true
	}
}

// sweep detaches a deleted tower from every index level, one
// single-node lock at a time (never holding two locks, so no deadlock).
func (s *VB) sweep(n *vbNode) {
	for l := n.height - 1; l >= 1; l-- {
		for {
			pred, linked := s.findPredAtLevel(n, l)
			if !linked {
				break // not (or no longer) linked at this level
			}
			if pred.lockNextAt(l, n) {
				pred.next[l].Store(n.next[l].Load())
				pred.lock.Unlock()
				break
			}
			// Window moved or pred deleted; re-locate and retry.
		}
	}
}

// findPredAtLevel locates the node whose level-l successor is exactly
// n, descending the index from the top (O(log n), not a level scan);
// it reports false if n is not linked at level l. Under concurrent
// mutation a linked tower can transiently be missed — sweep treats
// that as "someone else's problem": traversals' opportunistic
// unlinking eventually collects any such orphan.
func (s *VB) findPredAtLevel(n *vbNode, l int) (*vbNode, bool) {
	pred := s.head
	for lev := maxLevel - 1; lev > l; lev-- {
		curr := pred.next[lev].Load()
		for curr.val < n.val {
			pred = curr
			curr = pred.next[lev].Load()
		}
	}
	for {
		curr := pred.next[l].Load()
		if curr == n {
			return pred, true
		}
		// Equal values can coexist transiently (deleted tower + fresh
		// insert), so walk past non-identical equal values too.
		if curr.val > n.val || curr == s.tail {
			return nil, false
		}
		pred = curr
	}
}

// Len counts the live elements by a level-0 traversal; exact at
// quiescence.
func (s *VB) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if !curr.deleted.Load() {
			n++
		}
	}
	return n
}

// Snapshot returns the live elements in ascending order; exact at
// quiescence.
func (s *VB) Snapshot() []int64 {
	var out []int64
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if !curr.deleted.Load() {
			out = append(out, curr.val)
		}
	}
	return out
}
