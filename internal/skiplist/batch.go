package skiplist

import (
	"runtime"

	"listset/internal/batch"
	"listset/internal/failpoint"
	"listset/internal/mem"
	"listset/internal/obs"
)

// Batched and ranged operations for the skip lists: the one-pass
// multi-window discipline of DESIGN.md §13 lifted to log-time.
//
// A flat list amortizes a batch by never rewinding its single cursor.
// A skip list amortizes by FINGER SEARCH: the per-level predecessors of
// the previous key are remembered, and the next (strictly larger) key's
// descent starts its horizontal walk from each remembered finger
// instead of from head — expected O(log d) per key for distance d
// between consecutive keys, so a dense sorted batch costs ~O(k + log n)
// instead of O(k log n).
//
// Fingers obey the same adoption rule as find(): a finger is only
// trusted if it was observed LIVE (not deleted/marked) during this
// pinned pass and still precedes the key — otherwise the descent for
// that level falls back to wherever the level above landed, exactly as
// if the finger had never been recorded. Deleted fingers therefore cost
// speed, never correctness. On a failed level-0 validation the pass
// restarts from the fingers (the skip-list analogue of PR 8's
// anchor-restart), counting obs.EvBatchWindowRestart on top of the
// usual restart events.
//
// There is no whole-batch atomicity: each key linearizes individually,
// in ascending key order, with the very same per-key window protocol
// the single-key operations use.

// adoptFinger returns the descent start for one level: the finger when
// it is live and strictly precedes v (and does not sit behind the
// position inherited from the level above), else the inherited pred.
func adoptVBFinger(pred, f *vbNode, v int64) *vbNode {
	if f != nil && f.val >= pred.val && f.val < v && !f.deleted.Load() {
		return f
	}
	return pred
}

// findFrom is find() with finger search: fingers[l], when valid, seeds
// the level-l walk. It updates fingers to the new per-level preds.
func (s *VB) findFrom(g mem.Guard[vbNode], v int64, fingers *[maxLevel]*vbNode) (preds, succs [maxLevel]*vbNode) {
	pred := s.head
	for l := s.levels - 1; l >= 0; l-- {
		pred = adoptVBFinger(pred, fingers[l], v)
		curr := pred.next[l].Load()
		for curr.val < v {
			if l > 0 && curr.deleted.Load() {
				if s.tryUnlinkLevel(g, pred, curr, l) {
					curr = pred.next[l].Load()
				} else {
					curr = curr.next[l].Load() // route through, don't adopt
				}
				continue
			}
			pred = curr
			curr = pred.next[l].Load()
		}
		preds[l], succs[l] = pred, curr
		fingers[l] = pred
	}
	return preds, succs
}

// restartBatch counts a batch-window restart on top of the usual
// level-0 restart accounting. The fingers stay as they are: adoption
// re-validates them on the next descent, falling back to head exactly
// when they died.
func (s *VB) restartBatch(esc *obs.Escalator, v int64) {
	if p := s.probes; obs.On(p) {
		p.Inc(obs.EvBatchWindowRestart, v)
	}
	s.restart(esc, v)
}

// InsertAll adds every key of keys to the set and returns how many
// were absent (and are now present). The batch is sorted and
// deduplicated first; each key's insert linearizes individually, in
// ascending key order, within the call.
func (s *VB) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	inserted := 0
	var fingers [maxLevel]*vbNode
	for _, v := range ks {
		esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
		var n *vbNode
		var h int
		for {
			if fp := s.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteSkipTraverse, v)
			}
			preds, succs := s.findFrom(g, v, &fingers)
			if succs[0].val == v {
				if n != nil && g.Active() {
					g.FreeClass(n, towerClass(h)) // never published
				}
				esc.Done(&s.retry)
				break
			}
			if n == nil {
				h = s.randomHeight()
				n = s.newTower(g, v, h)
			}
			for l := 0; l < h; l++ {
				n.next[l].Store(succs[l])
			}
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				if injected = fp.Fail(failpoint.SiteSkipLockNextAt, v); injected {
					s.countInjectedFail(obs.EvValFailSucc, v)
				}
			}
			if injected || !preds[0].lockNextAt(0, succs[0], s.probes, s.backoff) {
				s.restartBatch(&esc, v)
				continue
			}
			n.setLinked(0)
			preds[0].next[0].Store(n)
			preds[0].lock.Unlock()
			s.linkIndex(g, n, h, preds, succs)
			// The new tower precedes every remaining (larger) key: it is
			// the tightest finger for every level it was linked at.
			for l := 0; l < h; l++ {
				fingers[l] = n
			}
			inserted++
			esc.Done(&s.retry)
			break
		}
	}
	g.Unpin()
	b.Put()
	return inserted
}

// RemoveAll deletes every key of keys from the set and returns how
// many were present (and are now absent). The batch is sorted and
// deduplicated first; each key's remove linearizes individually, in
// ascending key order, within the call.
func (s *VB) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	removed := 0
	var fingers [maxLevel]*vbNode
	for _, v := range ks {
		esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
		for {
			if fp := s.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteSkipTraverse, v)
			}
			preds, succs := s.findFrom(g, v, &fingers)
			if succs[0].val != v {
				esc.Done(&s.retry)
				break
			}
			// From here this is the single-key Remove window protocol
			// verbatim: value-lock the predecessor, identity-lock the
			// victim, mark, unlink, sweep the index.
			curr := succs[0]
			next := curr.next[0].Load()
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				if injected = fp.Fail(failpoint.SiteSkipLockNextAt, v); injected {
					s.countInjectedFail(obs.EvValFailValue, v)
				}
			}
			if injected || !preds[0].lockNextAtValue(v, s.probes, s.backoff) {
				s.restartBatch(&esc, v)
				continue
			}
			curr = preds[0].next[0].Load()
			injected = false
			if fp := s.fps; failpoint.On(fp) {
				if injected = fp.Fail(failpoint.SiteSkipLockNextAt, v); injected {
					s.countInjectedFail(obs.EvValFailSucc, v)
				}
			}
			if injected || !curr.lockNextAt(0, next, s.probes, s.backoff) {
				preds[0].lock.Unlock()
				s.restartBatch(&esc, v)
				continue
			}
			if fp := s.fps; failpoint.On(fp) {
				fp.Do(failpoint.SiteUnlink, v)
			}
			curr.deleted.Store(true)
			preds[0].next[0].Store(next)
			curr.clearLinked(0) // after the unlink store: linked==0 now implies unreachable
			curr.lock.Unlock()
			preds[0].lock.Unlock()
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvLogicalDelete, v)
				p.Inc(obs.EvPhysicalUnlink, v)
			}
			s.sweep(g, curr)
			s.maybeRetire(g, curr)
			removed++
			esc.Done(&s.retry)
			break
		}
	}
	g.Unpin()
	b.Put()
	return removed
}

// ContainsAll reports how many of the keys are in the set. Wait-free:
// one pinned pass serves the whole sorted batch via finger-seeded
// descents; each key's query linearizes individually at the load that
// reached its level-0 position.
func (s *VB) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	found := 0
	var fingers [maxLevel]*vbNode
	for _, v := range ks {
		pred := s.head
		for l := s.levels - 1; l >= 1; l-- {
			pred = adoptVBFinger(pred, fingers[l], v)
			curr := pred.next[l].Load()
			for curr.val < v {
				if curr.deleted.Load() {
					curr = curr.next[l].Load() // route through, don't adopt
					continue
				}
				pred = curr
				curr = pred.next[l].Load()
			}
			fingers[l] = pred
		}
		pred = adoptVBFinger(pred, fingers[0], v)
		curr := pred.next[0].Load()
		for curr.val < v {
			pred = curr
			curr = curr.next[0].Load()
		}
		fingers[0] = pred
		if curr.val == v && !curr.deleted.Load() {
			found++
		}
	}
	g.Unpin()
	b.Put()
	return found
}

// RangeScan returns the live keys in [lo, hi) in ascending order: a
// log-time descent to lo, then a wait-free level-0 walk. Values along
// the level-0 chain are strictly increasing even through nodes unlinked
// mid-scan, so the result is sorted and duplicate-free by construction;
// each reported (and skipped) key linearizes at the load that passed
// its position.
func (s *VB) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	g := s.arena.Pin()
	var out []int64
	curr := s.descendTo(lo)
	for curr.val < hi {
		if !curr.deleted.Load() {
			out = append(out, curr.val)
		}
		curr = curr.next[0].Load()
	}
	g.Unpin()
	return out
}

// Ascend calls yield for every live key >= from in ascending order
// until yield returns false or the list ends. The traversal is
// wait-free; the epoch stays pinned for the duration, so yield should
// be short.
func (s *VB) Ascend(from int64, yield func(int64) bool) {
	g := s.arena.Pin()
	curr := s.descendTo(from)
	for curr.val != MaxSentinel {
		if !curr.deleted.Load() && !yield(curr.val) {
			break
		}
		curr = curr.next[0].Load()
	}
	g.Unpin()
}

// descendTo returns the first level-0 node with val >= v, reached by a
// wait-free index descent (no unlinking, deleted towers routed
// through).
func (s *VB) descendTo(v int64) *vbNode {
	pred := s.head
	for l := s.levels - 1; l >= 1; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			if curr.deleted.Load() {
				curr = curr.next[l].Load()
				continue
			}
			pred = curr
			curr = pred.next[l].Load()
		}
	}
	curr := pred.next[0].Load()
	for curr.val < v {
		curr = curr.next[0].Load()
	}
	return curr
}

// Load bulk-inserts keys with finger-seeded unsynchronized descents:
// O(k + log n) on a fresh or dense load, towers and all. It takes no
// locks and must only be used at quiescence (setup/population), before
// the set is shared. Returns how many keys were absent.
func (s *VB) Load(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	g := s.arena.Pin()
	added := 0
	var fingers [maxLevel]*vbNode
	for _, v := range ks {
		preds, succs := s.findFrom(g, v, &fingers)
		if succs[0].val == v {
			continue
		}
		h := s.randomHeight()
		n := s.newTower(g, v, h)
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
		}
		n.setLinked(0)
		preds[0].next[0].Store(n)
		for l := 1; l < h; l++ {
			n.setLinked(l)
			preds[l].next[l].Store(n)
		}
		n.idxDone.Store(true)
		for l := 0; l < h; l++ {
			fingers[l] = n
		}
		added++
	}
	g.Unpin()
	b.Put()
	return added
}

// ---- Lazy skip list ----

// adoptLazyFinger is the Lazy twin of adoptVBFinger: a finger is
// trusted while unmarked (marked towers may already be unlinked).
func adoptLazyFinger(pred, f *lazyNode, v int64) *lazyNode {
	if f != nil && f.val >= pred.val && f.val < v && !f.marked.Load() {
		return f
	}
	return pred
}

// findFrom is Lazy's find() with finger search.
func (s *Lazy) findFrom(v int64, fingers *[maxLevel]*lazyNode) (preds, succs [maxLevel]*lazyNode, lFound int) {
	lFound = -1
	pred := s.head
	for l := s.levels - 1; l >= 0; l-- {
		pred = adoptLazyFinger(pred, fingers[l], v)
		curr := pred.next[l].Load()
		for curr.val < v {
			pred = curr
			curr = pred.next[l].Load()
		}
		if lFound == -1 && curr.val == v {
			lFound = l
		}
		preds[l], succs[l] = pred, curr
		fingers[l] = pred
	}
	return preds, succs, lFound
}

// InsertAll adds every key of keys and returns how many were absent.
// Each key runs the full Lazy insert protocol (lock every distinct
// predecessor, validate, link) — only the descent is amortized.
func (s *Lazy) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	inserted := 0
	var fingers [maxLevel]*lazyNode
	for _, v := range ks {
		if s.insertFrom(v, &fingers) {
			inserted++
		}
	}
	b.Put()
	return inserted
}

// insertFrom is Insert with a finger-seeded descent.
func (s *Lazy) insertFrom(v int64, fingers *[maxLevel]*lazyNode) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	h := s.randomHeight()
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteSkipTraverse, v)
		}
		preds, succs, lFound := s.findFrom(v, fingers)
		if lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				for !found.fullyLinked.Load() {
					runtime.Gosched()
				}
				esc.Done(&s.retry)
				return false
			}
			s.restart(&esc, v)
			continue
		}
		if !s.lockPreds(&preds, &succs, h-1, nil) {
			s.restart(&esc, v)
			continue
		}
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvNodeAlloc, v)
			p.Inc(obs.EvSkipTowerHeight, int64(h))
		}
		//lint:ignore hotalloc the insert path must materialize the new tower; the Lazy skip list has no arena mode
		n := &lazyNode{val: v, height: h}
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
		}
		for l := 0; l < h; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, h-1)
		for l := 0; l < h; l++ {
			fingers[l] = n
		}
		esc.Done(&s.retry)
		return true
	}
}

// RemoveAll deletes every key of keys and returns how many were
// present. Each key runs the full Lazy remove protocol; only the
// descent is amortized.
func (s *Lazy) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	removed := 0
	var fingers [maxLevel]*lazyNode
	for _, v := range ks {
		// Remove's retry state (the marked victim) spans find calls;
		// reuse the single-key protocol, seeding only the first descent.
		if s.removeFrom(v, &fingers) {
			removed++
		}
	}
	b.Put()
	return removed
}

// removeFrom is Remove with a finger-seeded descent.
func (s *Lazy) removeFrom(v int64, fingers *[maxLevel]*lazyNode) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	var victim *lazyNode
	marked := false
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteSkipTraverse, v)
		}
		preds, succs, lFound := s.findFrom(v, fingers)
		if !marked {
			if lFound == -1 {
				esc.Done(&s.retry)
				return false
			}
			victim = succs[lFound]
			if !victim.fullyLinked.Load() ||
				victim.marked.Load() ||
				victim.height-1 != lFound {
				if victim.marked.Load() {
					esc.Done(&s.retry)
					return false
				}
				s.restart(&esc, v)
				continue
			}
			//lint:ignore locksafe the victim lock is intentionally held across retry iterations once marked and is released on the success path below
			s.acquire(victim)
			if victim.marked.Load() {
				victim.lock.Unlock()
				esc.Done(&s.retry)
				return false
			}
			victim.marked.Store(true)
			marked = true
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvLogicalDelete, v)
			}
		}
		if !s.lockPreds(&preds, &succs, victim.height-1, victim) {
			s.restart(&esc, v)
			continue
		}
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteUnlink, v)
		}
		for l := victim.height - 1; l >= 0; l-- {
			preds[l].next[l].Store(victim.next[l].Load())
		}
		victim.lock.Unlock()
		unlockPreds(&preds, victim.height-1)
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvPhysicalUnlink, v)
		}
		esc.Done(&s.retry)
		return true
	}
}

// ContainsAll reports how many of the keys are in the set: wait-free
// finger-seeded descents, Herlihy & Shavit's per-key verdict.
func (s *Lazy) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	found := 0
	var fingers [maxLevel]*lazyNode
	for _, v := range ks {
		_, succs, lFound := s.findFrom(v, &fingers)
		if lFound != -1 &&
			succs[lFound].fullyLinked.Load() &&
			!succs[lFound].marked.Load() {
			found++
		}
	}
	b.Put()
	return found
}

// RangeScan returns the live keys in [lo, hi) in ascending order: a
// log-time descent, then a wait-free level-0 walk.
func (s *Lazy) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	var out []int64
	curr := s.descendTo(lo)
	for curr.val < hi {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			out = append(out, curr.val)
		}
		curr = curr.next[0].Load()
	}
	return out
}

// Ascend calls yield for every live key >= from in ascending order
// until yield returns false or the list ends.
func (s *Lazy) Ascend(from int64, yield func(int64) bool) {
	curr := s.descendTo(from)
	for curr.val != MaxSentinel {
		if curr.fullyLinked.Load() && !curr.marked.Load() && !yield(curr.val) {
			break
		}
		curr = curr.next[0].Load()
	}
}

// descendTo returns the first level-0 node with val >= v.
func (s *Lazy) descendTo(v int64) *lazyNode {
	pred := s.head
	for l := s.levels - 1; l >= 1; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			pred = curr
			curr = pred.next[l].Load()
		}
	}
	curr := pred.next[0].Load()
	for curr.val < v {
		curr = curr.next[0].Load()
	}
	return curr
}

// Load bulk-inserts keys with finger-seeded unsynchronized descents.
// It takes no locks and must only be used at quiescence
// (setup/population), before the set is shared. Returns how many keys
// were absent.
func (s *Lazy) Load(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	added := 0
	var fingers [maxLevel]*lazyNode
	for _, v := range ks {
		preds, succs, lFound := s.findFrom(v, &fingers)
		if lFound != -1 {
			continue
		}
		h := s.randomHeight()
		//lint:ignore hotalloc bulk population materializes towers on the heap by design
		n := &lazyNode{val: v, height: h}
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true)
		for l := 0; l < h; l++ {
			fingers[l] = n
		}
		added++
	}
	b.Put()
	return added
}

// Guard against interface drift: both skip lists carry the full batch
// surface (the root package and the shard façade assert these
// structurally).
type vbBatchSurface interface {
	InsertAll([]int64) int
	RemoveAll([]int64) int
	ContainsAll([]int64) int
	RangeScan(lo, hi int64) []int64
	Ascend(from int64, yield func(int64) bool)
	Load([]int64) int
}

var (
	_ vbBatchSurface = (*VB)(nil)
	_ vbBatchSurface = (*Lazy)(nil)
)
