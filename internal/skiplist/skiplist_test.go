package skiplist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

type set interface {
	Insert(int64) bool
	Remove(int64) bool
	Contains(int64) bool
	Len() int
	Snapshot() []int64
}

func both(t *testing.T, f func(t *testing.T, name string, s set)) {
	t.Helper()
	t.Run("vb", func(t *testing.T) { f(t, "vb", NewVB()) })
	t.Run("lazy", func(t *testing.T) { f(t, "lazy", NewLazy()) })
}

func TestBasics(t *testing.T) {
	both(t, func(t *testing.T, _ string, s set) {
		if !s.Insert(5) || s.Insert(5) {
			t.Fatal("insert semantics wrong")
		}
		if !s.Contains(5) || s.Contains(4) {
			t.Fatal("contains semantics wrong")
		}
		if !s.Remove(5) || s.Remove(5) || s.Contains(5) {
			t.Fatal("remove semantics wrong")
		}
	})
}

func TestSortedSnapshot(t *testing.T) {
	both(t, func(t *testing.T, _ string, s set) {
		vals := []int64{9, 1, 7, 3, 5, -2, 100, 42}
		for _, v := range vals {
			s.Insert(v)
		}
		snap := s.Snapshot()
		if len(snap) != len(vals) {
			t.Fatalf("Snapshot = %v", snap)
		}
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				t.Fatalf("Snapshot not strictly ascending: %v", snap)
			}
		}
		if s.Len() != len(vals) {
			t.Fatalf("Len = %d", s.Len())
		}
	})
}

func TestLargeSequential(t *testing.T) {
	both(t, func(t *testing.T, _ string, s set) {
		const n = 5000
		perm := rand.New(rand.NewSource(3)).Perm(n)
		for _, v := range perm {
			if !s.Insert(int64(v)) {
				t.Fatalf("Insert(%d) failed", v)
			}
		}
		if s.Len() != n {
			t.Fatalf("Len = %d, want %d", s.Len(), n)
		}
		for v := int64(0); v < n; v++ {
			if !s.Contains(v) {
				t.Fatalf("Contains(%d) = false", v)
			}
		}
		for _, v := range perm {
			if v%2 == 0 {
				if !s.Remove(int64(v)) {
					t.Fatalf("Remove(%d) failed", v)
				}
			}
		}
		if s.Len() != n/2 {
			t.Fatalf("Len after removals = %d, want %d", s.Len(), n/2)
		}
		for v := int64(0); v < n; v++ {
			if s.Contains(v) != (v%2 == 1) {
				t.Fatalf("Contains(%d) = %v", v, s.Contains(v))
			}
		}
	})
}

func TestRandomHeightDistribution(t *testing.T) {
	s := NewVB()
	counts := make([]int, maxLevel+1)
	const draws = 200000
	for i := 0; i < draws; i++ {
		h := s.randomHeight()
		if h < 1 || h > maxLevel {
			t.Fatalf("height %d out of [1, %d]", h, maxLevel)
		}
		counts[h]++
	}
	// Geometric(1/2): height 1 about half, each next about halving.
	if counts[1] < draws*2/5 || counts[1] > draws*3/5 {
		t.Fatalf("height-1 frequency %d of %d implausible", counts[1], draws)
	}
	if counts[2] < counts[1]/4 || counts[2] > counts[1] {
		t.Fatalf("height-2 frequency %d vs height-1 %d implausible", counts[2], counts[1])
	}
	if counts[maxLevel] == 0 {
		t.Log("note: no max-height tower in 200k draws (possible but unusual)")
	}
}

func TestVBIndexSweep(t *testing.T) {
	s := NewVB()
	// Insert enough values that some towers exceed level 1.
	for v := int64(0); v < 200; v++ {
		s.Insert(v)
	}
	tall := 0
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if curr.height > 1 {
			tall++
		}
	}
	if tall == 0 {
		t.Fatal("no tall towers among 200 inserts — index never exercised")
	}
	// Remove everything; afterwards no level may retain any tower.
	for v := int64(0); v < 200; v++ {
		if !s.Remove(v) {
			t.Fatalf("Remove(%d) failed", v)
		}
	}
	for l := 0; l < maxLevel; l++ {
		if got := s.head.next[l].Load(); got != s.tail {
			t.Fatalf("level %d retains tower %d after all removals", l, got.val)
		}
	}
}

func TestVBFindWindows(t *testing.T) {
	s := NewVB()
	for _, v := range []int64{10, 20, 30} {
		s.Insert(v)
	}
	preds, succs := s.find(s.arena.Pin(), 20)
	if preds[0].val >= 20 || succs[0].val != 20 {
		t.Fatalf("level-0 window = (%d, %d)", preds[0].val, succs[0].val)
	}
	for l := 0; l < s.levels; l++ {
		if preds[l].val >= 20 {
			t.Fatalf("preds[%d].val = %d, want < 20", l, preds[l].val)
		}
		if succs[l].val < 20 {
			t.Fatalf("succs[%d].val = %d, want >= 20", l, succs[l].val)
		}
	}
}

func TestLazyFullyLinkedGatesContains(t *testing.T) {
	s := NewLazy()
	s.Insert(10)
	_, succs, lFound := s.find(10)
	if lFound == -1 {
		t.Fatal("inserted tower not found")
	}
	n := succs[lFound]
	// Simulate a mid-insert tower: clear fullyLinked.
	n.fullyLinked.Store(false)
	if s.Contains(10) {
		t.Fatal("Contains trusted a not-fully-linked tower")
	}
	n.fullyLinked.Store(true)
	if !s.Contains(10) {
		t.Fatal("Contains false after restoring fullyLinked")
	}
}

func TestQuickVsMap(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	mkProg := func(mk func() set) func(prog []op) bool {
		return func(prog []op) bool {
			s := mk()
			oracle := map[int64]bool{}
			for _, o := range prog {
				k := int64(o.Key % 32)
				switch o.Kind % 3 {
				case 0:
					if s.Insert(k) != !oracle[k] {
						return false
					}
					oracle[k] = true
				case 1:
					if s.Remove(k) != oracle[k] {
						return false
					}
					delete(oracle, k)
				default:
					if s.Contains(k) != oracle[k] {
						return false
					}
				}
			}
			return s.Len() == len(oracle)
		}
	}
	if err := quick.Check(mkProg(func() set { return NewVB() }), &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("vb: %v", err)
	}
	if err := quick.Check(mkProg(func() set { return NewLazy() }), &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("lazy: %v", err)
	}
}

func TestConcurrentSmoke(t *testing.T) {
	both(t, func(t *testing.T, _ string, s set) {
		const keyRange = 64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 15000; i++ {
					k := int64(rng.Intn(keyRange))
					switch rng.Intn(3) {
					case 0:
						s.Insert(k)
					case 1:
						s.Remove(k)
					default:
						s.Contains(k)
					}
				}
			}(int64(g))
		}
		wg.Wait()
		snap := s.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				t.Fatalf("Snapshot not strictly ascending: %v", snap)
			}
		}
		for _, v := range snap {
			if !s.Contains(v) {
				t.Fatalf("snapshot value %d not found by Contains", v)
			}
		}
	})
}

// TestVBLevelInvariants checks the index structure at quiescence after
// concurrent churn: every level sorted, no deleted tower linked at any
// level, and every level-l tower present at level 0.
func TestVBLevelInvariants(t *testing.T) {
	s := NewVB()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				k := int64(rng.Intn(32))
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Remove(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// The index is best-effort: a concurrent-miss in sweep can leave a
	// deleted tower linked at an upper level, to be collected by later
	// traversals. Run the quiescent cleanup that any traversal performs.
	for pass := 0; pass < 2; pass++ {
		for k := int64(0); k < 32; k++ {
			s.find(s.arena.Pin(), k)
		}
	}
	level0 := map[*vbNode]bool{}
	for curr := s.head.next[0].Load(); curr != s.tail; curr = curr.next[0].Load() {
		if curr.deleted.Load() {
			t.Fatal("deleted tower reachable at level 0 at quiescence")
		}
		level0[curr] = true
	}
	for l := 1; l < maxLevel; l++ {
		var last int64 = MinSentinel
		for curr := s.head.next[l].Load(); curr != s.tail; curr = curr.next[l].Load() {
			if curr.deleted.Load() {
				t.Fatalf("deleted tower linked at level %d at quiescence", l)
			}
			if !level0[curr] {
				t.Fatalf("level-%d tower %d missing from level 0", l, curr.val)
			}
			if curr.val <= last {
				t.Fatalf("level-%d order violation: %d after %d", l, curr.val, last)
			}
			last = curr.val
		}
	}
}
