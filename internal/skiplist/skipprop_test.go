package skiplist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"listset/internal/failpoint"
)

// Property tests for the skip lists' probabilistic and reclamation
// machinery: randomHeight must be geometric(1/2) from any seed state
// (the O(log n) expected-cost argument depends on it, not on one lucky
// seed), and the tower arena must recycle without ever recycling more
// than it retired.

// TestRandomHeightGeometricQuick is a quick.Check property: from an
// arbitrary seed position, a block of randomHeight draws looks
// geometric with ratio 1/2 — each level's survivor count is about half
// the previous level's, heights stay within [1, levels], and the cap
// level absorbs the tail. Checked for both skip lists so neither can
// drift to a different ratio (which would silently change the
// height-class arena's size-class economics).
func TestRandomHeightGeometricQuick(t *testing.T) {
	const draws = 1 << 13
	check := func(name string, levels int, draw func() int) bool {
		counts := make([]int, levels+2)
		for i := 0; i < draws; i++ {
			h := draw()
			if h < 1 || h > levels {
				t.Errorf("%s: randomHeight = %d outside [1, %d]", name, h, levels)
				return false
			}
			counts[h]++
		}
		// Survivors at height >= h halve per level while the sample is
		// large enough for the tolerance to be meaningful.
		ge := draws
		for h := 1; h <= 6 && ge >= 512; h++ {
			next := ge - counts[h]
			if f := float64(next) / float64(ge); f < 0.38 || f > 0.62 {
				t.Errorf("%s: P(height > %d | height >= %d) = %.3f, want ~0.5", name, h, h, f)
				return false
			}
			ge = next
		}
		return true
	}
	prop := func(seed uint64) bool {
		vb := NewVB()
		vb.seed.Store(seed)
		lz := NewLazy()
		lz.seed.Store(seed)
		return check("VB", vb.levels, vb.randomHeight) &&
			check("Lazy", lz.levels, lz.randomHeight)
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRandomHeightHonorsLevels pins the configurable cap: a list built
// with fewer levels never draws a taller tower, so raising
// DefaultLevels for 66M-key ranges cannot leak tall towers into
// small-level instances sharing the same array capacity.
func TestRandomHeightHonorsLevels(t *testing.T) {
	for _, levels := range []int{1, 2, 4, DefaultLevels, maxLevel} {
		s := NewVBLevels(levels)
		if s.Levels() != levels {
			t.Fatalf("Levels() = %d, want %d", s.Levels(), levels)
		}
		for i := 0; i < 20000; i++ {
			if h := s.randomHeight(); h < 1 || h > levels {
				t.Fatalf("levels=%d: randomHeight = %d", levels, h)
			}
		}
	}
}

// TestVBArenaChurnRecycles drives the arena-backed skip list through
// enough insert/remove churn — concurrent, then quiescent — that
// retired towers pass their grace period and come back through the
// height-classed free lists, then checks the reclamation ledger
// (Recycled <= Retired always; the quiescent phase must actually
// retire) and the structure invariants after all that recycling.
func TestVBArenaChurnRecycles(t *testing.T) {
	s := NewVBArena()
	const keyRange = 128
	var wg sync.WaitGroup
	workers := 6
	perWorker := 8000
	if testing.Short() {
		workers, perWorker = 4, 2000
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				k := int64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					s.Insert(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
			}
		}(int64(g) + 41)
	}
	wg.Wait()

	// Quiescent churn: single-threaded insert/remove rounds unlink every
	// tower fully, so retirement is guaranteed to fire, and the repeated
	// rounds force recycled towers back into service at fresh heights.
	for round := 0; round < 8; round++ {
		for k := int64(0); k < keyRange; k++ {
			s.Insert(k)
		}
		for k := int64(0); k < keyRange; k++ {
			s.Remove(k)
		}
	}
	st, ok := s.ArenaStats()
	if !ok {
		t.Fatal("NewVBArena reports no arena")
	}
	if st.Retired == 0 {
		t.Fatal("quiescent churn retired no towers; the linked-mask retire protocol never fired")
	}
	if st.Recycled > st.Retired {
		t.Fatalf("Recycled (%d) > Retired (%d): a tower was freed twice", st.Recycled, st.Retired)
	}
	if st.Allocs == 0 || st.Slabs == 0 {
		t.Fatalf("implausible arena ledger after churn: %+v", st)
	}

	// The survivor set must still be a well-formed skip list.
	for k := int64(0); k < keyRange; k++ {
		if s.Contains(k) {
			t.Fatalf("key %d survived a full remove round", k)
		}
		s.Insert(k)
	}
	snap := s.Snapshot()
	if len(snap) != keyRange {
		t.Fatalf("Snapshot has %d keys, want %d", len(snap), keyRange)
	}
	for i := range snap {
		if snap[i] != int64(i) {
			t.Fatalf("Snapshot[%d] = %d after recycling churn", i, snap[i])
		}
	}
}

// TestVBArenaBatchChurn runs the finger-seeded batch passes over the
// arena-backed variant: recycled towers must be just as adoptable as
// fresh ones, and the ledger stays consistent.
func TestVBArenaBatchChurn(t *testing.T) {
	s := NewVBArena()
	const n = 256
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for round := 0; round < rounds; round++ {
		if got := s.InsertAll(keys); got != n {
			t.Fatalf("round %d: InsertAll = %d, want %d", round, got, n)
		}
		if got := s.ContainsAll(keys); got != n {
			t.Fatalf("round %d: ContainsAll = %d, want %d", round, got, n)
		}
		scan := s.RangeScan(0, n)
		if len(scan) != n {
			t.Fatalf("round %d: RangeScan returned %d keys, want %d", round, len(scan), n)
		}
		if got := s.RemoveAll(keys); got != n {
			t.Fatalf("round %d: RemoveAll = %d, want %d", round, got, n)
		}
		if s.Len() != 0 {
			t.Fatalf("round %d: Len = %d after RemoveAll", round, s.Len())
		}
	}
	st, ok := s.ArenaStats()
	if !ok {
		t.Fatal("NewVBArena reports no arena")
	}
	if st.Recycled > st.Retired {
		t.Fatalf("Recycled (%d) > Retired (%d)", st.Recycled, st.Retired)
	}
	if st.Retired == 0 {
		t.Fatal("batch churn retired nothing")
	}
}

// TestGivenUpIndexLevelsParkOnTail pins the stale-pointer invariant
// behind the arena's safety argument: when linkIndex gives up on an
// index level (here: the link site forced to fail on every hit), the
// live tower's pointer at that level must be parked on tail, never
// left frozen at the speculative succ from insert time. Descents read
// next[j] for every level below the adoption level whether or not it
// was linked, and a frozen succ could be unlinked, retired and — with
// an arena attached — recycled into a value-order-breaking edge.
func TestGivenUpIndexLevelsParkOnTail(t *testing.T) {
	s := NewVB()
	fps := failpoint.NewSet()
	if err := fps.Arm(failpoint.Scenario{
		Site:        failpoint.SiteSkipIndexLink,
		Action:      failpoint.ActFail,
		Probability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s.SetFailpoints(fps)
	for v := int64(0); v < 512; v++ {
		if !s.Insert(v) {
			t.Fatalf("Insert(%d) = false on empty slot", v)
		}
	}
	tall := 0
	for curr := s.head.next[0].Load(); curr != s.tail; curr = curr.next[0].Load() {
		if got := curr.linked.Load(); got != 1 {
			t.Fatalf("tower %d linked mask = %b, want exactly bit 0 with the index link site failing", curr.val, got)
		}
		for l := 1; l < curr.height; l++ {
			tall++
			if got := curr.next[l].Load(); got != s.tail {
				t.Fatalf("given-up level %d of tower %d holds %d, want tail", l, curr.val, got.val)
			}
		}
	}
	if tall == 0 {
		t.Fatal("no tower drew height > 1 in 512 inserts; the invariant was never exercised")
	}
}
