package skiplist

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"listset/internal/trylock"
)

// Lazy is the LazySkipList of Herlihy & Shavit (ch. 14.3), the
// established lock-based skip list and the natural baseline for the
// value-aware variant: an update finds its per-level windows, locks
// EVERY distinct predecessor, validates after locking, and only then
// decides — the skip-list analogue of the Lazy list's discipline the
// paper proves concurrency sub-optimal.
type Lazy struct {
	head *lazyNode
	tail *lazyNode
	seed atomic.Uint64
}

// lazyNode is a tower. marked is the logical-deletion flag;
// fullyLinked is set once the tower is linked at every level, making
// the element logically present (the linearization point of insert).
type lazyNode struct {
	val         int64
	height      int
	next        [maxLevel]atomic.Pointer[lazyNode]
	marked      atomic.Bool
	fullyLinked atomic.Bool
	lock        trylock.SpinLock
}

// NewLazy returns an empty Lazy skip list.
func NewLazy() *Lazy {
	s := &Lazy{
		head: &lazyNode{val: MinSentinel, height: maxLevel},
		tail: &lazyNode{val: MaxSentinel, height: maxLevel},
	}
	for l := 0; l < maxLevel; l++ {
		s.head.next[l].Store(s.tail)
	}
	s.head.fullyLinked.Store(true)
	s.tail.fullyLinked.Store(true)
	s.seed.Store(0x2545F4914F6CDD1D)
	return s
}

func (s *Lazy) randomHeight() int {
	z := s.seed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	h := 1 + bits.TrailingZeros64(z|1<<(maxLevel-1))
	if h > maxLevel {
		h = maxLevel
	}
	return h
}

// find fills preds/succs at every level and returns the highest level
// at which a tower holding v was found (-1 if none). Wait-free.
func (s *Lazy) find(v int64) (preds, succs [maxLevel]*lazyNode, lFound int) {
	lFound = -1
	pred := s.head
	for l := maxLevel - 1; l >= 0; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			pred = curr
			curr = pred.next[l].Load()
		}
		if lFound == -1 && curr.val == v {
			lFound = l
		}
		preds[l], succs[l] = pred, curr
	}
	return preds, succs, lFound
}

// Contains reports whether v is in the set: wait-free, trusting the
// found tower's fullyLinked and marked flags (Herlihy & Shavit's
// linearization argument).
func (s *Lazy) Contains(v int64) bool {
	_, succs, lFound := s.find(v)
	return lFound != -1 &&
		succs[lFound].fullyLinked.Load() &&
		!succs[lFound].marked.Load()
}

// lockPreds locks the distinct predecessors of levels [0, top] in
// bottom-up order — which is decreasing-key order, the global order
// that makes the algorithm deadlock-free — and validates every window;
// on validation failure everything is unlocked and ok is false.
//
// victim, when non-nil, is the tower the caller itself marked for
// removal: windows onto it are validated by adjacency only (its mark is
// the caller's own doing). For inserts victim is nil and a marked
// successor invalidates the window.
func lockPreds(preds, succs *[maxLevel]*lazyNode, top int, victim *lazyNode) bool {
	var prevPred *lazyNode
	locked := make([]*lazyNode, 0, top+1)
	valid := true
	for l := 0; valid && l <= top; l++ {
		pred, succ := preds[l], succs[l]
		if pred != prevPred {
			//lint:ignore locksafe the acquired set intentionally survives the loop and the function: on success the caller holds every lock in `locked` and releases them with unlockPreds; on failure the loop below unlocks them all
			pred.lock.Lock()
			locked = append(locked, pred)
			prevPred = pred
		}
		valid = !pred.marked.Load() && pred.next[l].Load() == succ &&
			(succ == victim || !succ.marked.Load())
	}
	if valid {
		return true
	}
	for _, p := range locked {
		p.lock.Unlock()
	}
	return false
}

// unlockPreds releases the distinct predecessors of levels [0, top].
func unlockPreds(preds *[maxLevel]*lazyNode, top int) {
	var prevPred *lazyNode
	for l := 0; l <= top; l++ {
		if preds[l] != prevPred {
			preds[l].lock.Unlock()
			prevPred = preds[l]
		}
	}
}

// Insert adds v to the set and reports whether v was absent.
func (s *Lazy) Insert(v int64) bool {
	h := s.randomHeight()
	for {
		preds, succs, lFound := s.find(v)
		if lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				// Present (or being inserted): wait for the in-flight
				// insert to finish, then report a duplicate.
				for !found.fullyLinked.Load() {
					runtime.Gosched()
				}
				return false
			}
			// Found a marked tower mid-removal: retry until it is gone.
			continue
		}
		if !lockPreds(&preds, &succs, h-1, nil) {
			continue
		}
		//lint:ignore hotalloc the insert path must materialize the new tower; the skip lists have no arena mode
		n := &lazyNode{val: v, height: h}
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
		}
		for l := 0; l < h; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true) // linearization point
		unlockPreds(&preds, h-1)
		return true
	}
}

// Remove deletes v from the set and reports whether v was present.
func (s *Lazy) Remove(v int64) bool {
	var victim *lazyNode
	marked := false
	for {
		preds, succs, lFound := s.find(v)
		if !marked {
			if lFound == -1 {
				return false
			}
			victim = succs[lFound]
			if !victim.fullyLinked.Load() ||
				victim.marked.Load() ||
				victim.height-1 != lFound {
				// Mid-insert, mid-removal by a competitor, or found via
				// a partial tower: not removable by us (the paper's
				// Harris analysis would call this an extra
				// synchronization constraint).
				if victim.marked.Load() {
					return false
				}
				continue
			}
			//lint:ignore locksafe the victim lock is intentionally held across retry iterations once marked (the `marked` flag guards re-locking) and is released on the success path below
			victim.lock.Lock()
			if victim.marked.Load() {
				victim.lock.Unlock()
				return false
			}
			victim.marked.Store(true) // linearization point
			marked = true
		}
		if !lockPreds(&preds, &succs, victim.height-1, victim) {
			continue
		}
		for l := victim.height - 1; l >= 0; l-- {
			preds[l].next[l].Store(victim.next[l].Load())
		}
		victim.lock.Unlock()
		unlockPreds(&preds, victim.height-1)
		return true
	}
}

// Len counts the live elements by a level-0 traversal; exact at
// quiescence.
func (s *Lazy) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Snapshot returns the live elements in ascending order; exact at
// quiescence.
func (s *Lazy) Snapshot() []int64 {
	var out []int64
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			out = append(out, curr.val)
		}
	}
	return out
}
