package skiplist

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"listset/internal/failpoint"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// Lazy is the LazySkipList of Herlihy & Shavit (ch. 14.3), the
// established lock-based skip list and the natural baseline for the
// value-aware variant: an update finds its per-level windows, locks
// EVERY distinct predecessor, validates after locking, and only then
// decides — the skip-list analogue of the Lazy list's discipline the
// paper proves concurrency sub-optimal.
type Lazy struct {
	head   *lazyNode
	tail   *lazyNode
	seed   atomic.Uint64
	levels int

	// probes, when non-nil, receives contention events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the chaos failpoints (internal/failpoint).
	fps *failpoint.Set

	// budget is the failed-validation retry budget K (0 = unbounded),
	// atomic so the adaptive controller can retune it mid-run; retry
	// aggregates what the escalators saw. Lazy's restart is always the
	// full descent from head, so the ladder is head-native.
	budget atomic.Int32
	retry  obs.RetryCounter

	// backoff, when non-nil, supplies the per-set spin bounds for
	// contended predecessor-lock acquisitions; nil = package defaults.
	backoff *trylock.Backoff
}

// lazyNode is a tower. marked is the logical-deletion flag;
// fullyLinked is set once the tower is linked at every level, making
// the element logically present (the linearization point of insert).
type lazyNode struct {
	val         int64
	height      int
	next        [maxLevel]atomic.Pointer[lazyNode]
	marked      atomic.Bool
	fullyLinked atomic.Bool
	lock        trylock.SpinLock
}

// NewLazy returns an empty Lazy skip list with DefaultLevels index
// levels.
func NewLazy() *Lazy { return NewLazyLevels(DefaultLevels) }

// NewLazyLevels returns an empty Lazy skip list with the given number
// of levels, clamped to [1, 20].
func NewLazyLevels(levels int) *Lazy {
	if levels < 1 {
		levels = 1
	}
	if levels > maxLevel {
		levels = maxLevel
	}
	s := &Lazy{
		head:   &lazyNode{val: MinSentinel, height: maxLevel},
		tail:   &lazyNode{val: MaxSentinel, height: maxLevel},
		levels: levels,
	}
	for l := 0; l < maxLevel; l++ {
		s.head.next[l].Store(s.tail)
	}
	s.head.fullyLinked.Store(true)
	s.tail.fullyLinked.Store(true)
	s.seed.Store(0x2545F4914F6CDD1D)
	return s
}

// Levels returns the working index height.
func (s *Lazy) Levels() int { return s.levels }

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the set between goroutines.
func (s *Lazy) SetProbes(p *obs.Probes) { s.probes = p }

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the set between goroutines.
func (s *Lazy) SetFailpoints(fp *failpoint.Set) { s.fps = fp }

// SetRetryBudget sets the failed-validation retry budget K: past K
// restarts an update backs off between attempts. 0 restores unbounded
// retries.
func (s *Lazy) SetRetryBudget(k int) { s.budget.Store(int32(k)) }

// SetBackoff attaches (or with nil detaches) the per-set backoff policy
// for contended predecessor-lock acquisitions.
func (s *Lazy) SetBackoff(b *trylock.Backoff) { s.backoff = b }

// RetryStats reports the aggregated restart/escalation tallies.
func (s *Lazy) RetryStats() obs.RetryStats { return s.retry.Stats() }

func (s *Lazy) randomHeight() int {
	z := s.seed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	h := 1 + bits.TrailingZeros64(z|1<<uint(s.levels-1))
	if h > s.levels {
		h = s.levels
	}
	return h
}

// find fills preds/succs at every level and returns the highest level
// at which a tower holding v was found (-1 if none). Wait-free.
func (s *Lazy) find(v int64) (preds, succs [maxLevel]*lazyNode, lFound int) {
	lFound = -1
	pred := s.head
	for l := s.levels - 1; l >= 0; l-- {
		curr := pred.next[l].Load()
		for curr.val < v {
			pred = curr
			curr = pred.next[l].Load()
		}
		if lFound == -1 && curr.val == v {
			lFound = l
		}
		preds[l], succs[l] = pred, curr
	}
	return preds, succs, lFound
}

// Contains reports whether v is in the set: wait-free, trusting the
// found tower's fullyLinked and marked flags (Herlihy & Shavit's
// linearization argument).
func (s *Lazy) Contains(v int64) bool {
	_, succs, lFound := s.find(v)
	return lFound != -1 &&
		succs[lFound].fullyLinked.Load() &&
		!succs[lFound].marked.Load()
}

// acquire takes n's lock, counting a contended acquisition when probes
// are attached.
func (s *Lazy) acquire(n *lazyNode) {
	if p := s.probes; obs.On(p) {
		if n.lock.LockContendedWith(s.backoff) {
			p.Inc(obs.EvTryLockContended, n.val)
		}
		return
	}
	n.lock.LockWith(s.backoff)
}

// lockPreds locks the distinct predecessors of levels [0, top] in
// bottom-up order — which is decreasing-key order, the global order
// that makes the algorithm deadlock-free — and validates every window;
// on validation failure everything is unlocked and ok is false.
//
// victim, when non-nil, is the tower the caller itself marked for
// removal: windows onto it are validated by adjacency only (its mark is
// the caller's own doing). For inserts victim is nil and a marked
// successor invalidates the window.
func (s *Lazy) lockPreds(preds, succs *[maxLevel]*lazyNode, top int, victim *lazyNode) bool {
	var prevPred *lazyNode
	locked := make([]*lazyNode, 0, top+1)
	valid := true
	deletedFail := false
	for l := 0; valid && l <= top; l++ {
		pred, succ := preds[l], succs[l]
		if pred != prevPred {
			//lint:ignore locksafe the acquired set intentionally survives the loop and the function: on success the caller holds every lock in `locked` and releases them with unlockPreds; on failure the loop below unlocks them all
			s.acquire(pred)
			locked = append(locked, pred)
			prevPred = pred
		}
		valid = !pred.marked.Load() && pred.next[l].Load() == succ &&
			(succ == victim || !succ.marked.Load())
		if !valid {
			deletedFail = pred.marked.Load() || (succ != victim && succ.marked.Load())
		}
	}
	// An injected validation failure exercises the full-height
	// unlock-and-restart path, the expensive one the value-aware variant
	// avoids.
	if fp := s.fps; failpoint.On(fp) && valid && fp.Fail(failpoint.SiteLazyValidate, succs[0].val) {
		valid, deletedFail = false, false
	}
	if valid {
		return true
	}
	for _, p := range locked {
		p.lock.Unlock()
	}
	if p := s.probes; obs.On(p) {
		if deletedFail {
			p.Inc(obs.EvValFailDeleted, succs[0].val)
		} else {
			p.Inc(obs.EvValFailSucc, succs[0].val)
		}
	}
	return false
}

// unlockPreds releases the distinct predecessors of levels [0, top].
func unlockPreds(preds *[maxLevel]*lazyNode, top int) {
	var prevPred *lazyNode
	for l := 0; l <= top; l++ {
		if preds[l] != prevPred {
			preds[l].lock.Unlock()
			prevPred = preds[l]
		}
	}
}

// restart records one failed validation; the Lazy skip list always
// restarts with a full descent from head.
func (s *Lazy) restart(esc *obs.Escalator, v int64) {
	esc.Failed(s.probes, v)
	if p := s.probes; obs.On(p) {
		p.Inc(obs.EvRestartHead, v)
	}
}

// Insert adds v to the set and reports whether v was absent.
func (s *Lazy) Insert(v int64) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	h := s.randomHeight()
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteSkipTraverse, v)
		}
		preds, succs, lFound := s.find(v)
		if lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				// Present (or being inserted): wait for the in-flight
				// insert to finish, then report a duplicate.
				for !found.fullyLinked.Load() {
					runtime.Gosched()
				}
				esc.Done(&s.retry)
				return false
			}
			// Found a marked tower mid-removal: retry until it is gone.
			s.restart(&esc, v)
			continue
		}
		if !s.lockPreds(&preds, &succs, h-1, nil) {
			s.restart(&esc, v)
			continue
		}
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvNodeAlloc, v)
			p.Inc(obs.EvSkipTowerHeight, int64(h))
		}
		//lint:ignore hotalloc the insert path must materialize the new tower; the Lazy skip list has no arena mode (vbskip-arena is the reclaiming variant)
		n := &lazyNode{val: v, height: h}
		for l := 0; l < h; l++ {
			n.next[l].Store(succs[l])
		}
		for l := 0; l < h; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true) // linearization point
		unlockPreds(&preds, h-1)
		esc.Done(&s.retry)
		return true
	}
}

// Remove deletes v from the set and reports whether v was present.
func (s *Lazy) Remove(v int64) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	var victim *lazyNode
	marked := false
	for {
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteSkipTraverse, v)
		}
		preds, succs, lFound := s.find(v)
		if !marked {
			if lFound == -1 {
				esc.Done(&s.retry)
				return false
			}
			victim = succs[lFound]
			if !victim.fullyLinked.Load() ||
				victim.marked.Load() ||
				victim.height-1 != lFound {
				// Mid-insert, mid-removal by a competitor, or found via
				// a partial tower: not removable by us (the paper's
				// Harris analysis would call this an extra
				// synchronization constraint).
				if victim.marked.Load() {
					esc.Done(&s.retry)
					return false
				}
				s.restart(&esc, v)
				continue
			}
			//lint:ignore locksafe the victim lock is intentionally held across retry iterations once marked (the `marked` flag guards re-locking) and is released on the success path below
			s.acquire(victim)
			if victim.marked.Load() {
				victim.lock.Unlock()
				esc.Done(&s.retry)
				return false
			}
			victim.marked.Store(true) // linearization point
			marked = true
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvLogicalDelete, v)
			}
		}
		if !s.lockPreds(&preds, &succs, victim.height-1, victim) {
			s.restart(&esc, v)
			continue
		}
		// The unlink runs under every predecessor lock and must not be
		// skipped, so the site is Do-only: delays and pauses, never
		// forced failure.
		if fp := s.fps; failpoint.On(fp) {
			fp.Do(failpoint.SiteUnlink, v)
		}
		for l := victim.height - 1; l >= 0; l-- {
			preds[l].next[l].Store(victim.next[l].Load())
		}
		victim.lock.Unlock()
		unlockPreds(&preds, victim.height-1)
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvPhysicalUnlink, v)
		}
		esc.Done(&s.retry)
		return true
	}
}

// Len counts the live elements by a level-0 traversal; exact at
// quiescence.
func (s *Lazy) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Snapshot returns the live elements in ascending order; exact at
// quiescence.
func (s *Lazy) Snapshot() []int64 {
	var out []int64
	for curr := s.head.next[0].Load(); curr.val != MaxSentinel; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			out = append(out, curr.val)
		}
	}
	return out
}

var (
	_ obs.Instrumented     = (*Lazy)(nil)
	_ obs.RetryBudgeted    = (*Lazy)(nil)
	_ failpoint.Injectable = (*Lazy)(nil)
)
