package lincheck

// The Wing & Gong linearizability search, in two instantiations: a
// boolean presence register (per-key) and a whole-set model (monolithic
// cross-check). Both walk the same DFS: repeatedly pick an operation
// whose invocation precedes every un-linearized operation's response
// (so placing it next respects real-time order), check its result
// against the model, and recurse; memoize visited (linearized-set,
// state) configurations to prune re-exploration (the Wing-Gong-Lowe
// refinement).

// applyPresence applies op to a presence register holding cur and
// returns the new state and whether op's recorded result is legal.
func applyPresence(cur bool, op Op) (next bool, ok bool) {
	switch op.Kind {
	case OpInsert:
		// insert returns true iff the key was absent; afterwards present.
		return true, op.Result == !cur
	case OpRemove:
		// remove returns true iff the key was present; afterwards absent.
		return false, op.Result == cur
	case OpContains:
		return cur, op.Result == cur
	default:
		return cur, false
	}
}

// checkKey reports whether the single-key history ops is linearizable
// with respect to a presence register initialized to initial.
func checkKey(ops []Op, initial bool) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	ops = append([]Op(nil), ops...)
	sortByInvoke(ops)

	linearized := newBitset(n)
	seen := make(map[string]struct{})
	var dfs func(state bool, done int) bool
	dfs = func(state bool, done int) bool {
		if done == n {
			return true
		}
		// memoization: the reachable futures depend only on which ops
		// are linearized and the current register state.
		key := linearized.key(state)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}

		// minReturn over un-linearized ops: any candidate must be
		// invoked before it, or placing it next would order it after an
		// operation that already returned.
		minReturn := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if !linearized.get(i) && ops[i].Return < minReturn {
				minReturn = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if linearized.get(i) {
				continue
			}
			if ops[i].Invoke > minReturn {
				break // ops are sorted by invoke; no further candidates
			}
			next, ok := applyPresence(state, ops[i])
			if !ok {
				continue
			}
			linearized.set(i)
			if dfs(next, done+1) {
				return true
			}
			linearized.clear(i)
		}
		return false
	}
	return dfs(initial, 0)
}

// CheckMonolithic verifies the whole history against full set semantics
// in one search (state = entire membership map). Exponential in the
// amount of concurrency; intended for small histories and for
// cross-validating the partitioned checker in tests.
func CheckMonolithic(h History, initial map[int64]bool) bool {
	if err := h.Validate(); err != nil {
		return false
	}
	n := len(h.Ops)
	if n == 0 {
		return true
	}
	ops := append([]Op(nil), h.Ops...)
	sortByInvoke(ops)

	state := make(map[int64]bool, len(initial))
	for k, v := range initial {
		if v {
			state[k] = true
		}
	}
	linearized := newBitset(n)
	seen := make(map[string]struct{})

	var dfs func(done int) bool
	dfs = func(done int) bool {
		if done == n {
			return true
		}
		key := linearized.keyWithState(state)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}

		minReturn := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if !linearized.get(i) && ops[i].Return < minReturn {
				minReturn = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if linearized.get(i) {
				continue
			}
			if ops[i].Invoke > minReturn {
				break
			}
			o := ops[i]
			cur := state[o.Key]
			next, ok := applyPresence(cur, o)
			if !ok {
				continue
			}
			linearized.set(i)
			if next {
				state[o.Key] = true
			} else {
				delete(state, o.Key)
			}
			if dfs(done + 1) {
				return true
			}
			// undo
			if cur {
				state[o.Key] = true
			} else {
				delete(state, o.Key)
			}
			linearized.clear(i)
		}
		return false
	}
	return dfs(0)
}
