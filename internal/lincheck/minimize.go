package lincheck

// Minimize shrinks a non-linearizable single-key history to a locally
// minimal violating core by greedy delta-debugging: repeatedly drop any
// operation whose removal preserves the violation, until no single
// removal does. The result is usually a handful of operations that
// exhibit the anomaly directly (a double insert, a vanished element),
// which turns a ten-thousand-operation stress failure into a readable
// bug report.
//
// ops must be a single-key history that checkKey rejects for the given
// initial state; if it is linearizable, Minimize returns it unchanged.
func Minimize(ops []Op, initial bool) []Op {
	if checkKey(ops, initial) {
		return ops
	}
	current := append([]Op(nil), ops...)
	for {
		shrunk := false
		for i := 0; i < len(current); i++ {
			candidate := make([]Op, 0, len(current)-1)
			candidate = append(candidate, current[:i]...)
			candidate = append(candidate, current[i+1:]...)
			if !checkKey(candidate, initial) {
				current = candidate
				shrunk = true
				i-- // the next op shifted into this slot
			}
		}
		if !shrunk {
			return current
		}
	}
}

// Minimize returns a locally minimal violating core of the violation's
// operations (see the package-level Minimize); the initial presence of
// the key is taken from initial.
func (v *Violation) Minimize(initial bool) []Op {
	return Minimize(v.Ops, initial)
}
