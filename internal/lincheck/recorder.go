package lincheck

import "sync/atomic"

// Set is the operation surface the recorder instruments; listset.Set
// satisfies it structurally.
type Set interface {
	Insert(v int64) bool
	Remove(v int64) bool
	Contains(v int64) bool
}

// Recorder instruments a Set so that every completed operation is logged
// with invocation/response timestamps from one global monotone counter.
// Obtain a per-goroutine Session with NewSession; sessions log into
// private buffers, so recording adds no synchronization beyond the
// counter itself (which is the point: the timestamps must order events,
// so a shared atomic is unavoidable).
type Recorder struct {
	clock    atomic.Int64
	sessions []*Session
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Session is a single goroutine's recording handle around the shared
// set. It must not be used from more than one goroutine.
type Session struct {
	rec    *Recorder
	set    Set
	thread int
	ops    []Op
}

// NewSession registers a new per-goroutine session. Call before starting
// the goroutines; NewSession itself is not safe for concurrent use.
func (r *Recorder) NewSession(set Set) *Session {
	s := &Session{rec: r, set: set, thread: len(r.sessions)}
	r.sessions = append(r.sessions, s)
	return s
}

// History merges all sessions' logs. Call only after every recording
// goroutine has finished.
func (r *Recorder) History() History {
	var h History
	for _, s := range r.sessions {
		h.Ops = append(h.Ops, s.ops...)
	}
	return h
}

func (s *Session) record(kind Kind, key int64, call func(int64) bool) bool {
	inv := s.rec.clock.Add(1)
	res := call(key)
	ret := s.rec.clock.Add(1)
	s.ops = append(s.ops, Op{
		Thread: s.thread,
		Kind:   kind,
		Key:    key,
		Result: res,
		Invoke: inv,
		Return: ret,
	})
	return res
}

// Insert performs and records set.Insert(v).
func (s *Session) Insert(v int64) bool { return s.record(OpInsert, v, s.set.Insert) }

// Remove performs and records set.Remove(v).
func (s *Session) Remove(v int64) bool { return s.record(OpRemove, v, s.set.Remove) }

// Contains performs and records set.Contains(v).
func (s *Session) Contains(v int64) bool { return s.record(OpContains, v, s.set.Contains) }
