// Package lincheck verifies linearizability (Herlihy & Wing, TOPLAS
// 1990) of recorded concurrent histories of the integer set type. It is
// the executable stand-in for the paper's hand proofs of Theorem 1: we
// record real interleaved executions of each list implementation and
// check that the observed results admit a legal sequential ordering.
//
// Two checkers are provided:
//
//   - Check: partitions the history by key and verifies each key's
//     subhistory against a boolean register ("is k present") with the
//     Wing & Gong search. The integer set is isomorphic to an array of
//     independent presence registers indexed by key — every operation
//     touches exactly one register — and linearizability is compositional
//     over independent objects, so per-key checking is both sound and
//     complete while scaling to histories the monolithic search cannot.
//   - CheckMonolithic: runs the Wing & Gong search with the whole set as
//     the state. Exponential in the worst case; used on small histories
//     to cross-validate the partitioned checker.
package lincheck

import (
	"fmt"
	"sort"
)

// Kind enumerates the set operations.
type Kind uint8

const (
	// OpInsert is insert(k).
	OpInsert Kind = iota
	// OpRemove is remove(k).
	OpRemove
	// OpContains is contains(k).
	OpContains
)

// String returns the operation name.
func (k Kind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpContains:
		return "contains"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one completed operation of a history. Invoke and Return are
// logical timestamps drawn from a single global monotone counter: op A
// precedes op B in real time iff A.Return < B.Invoke.
type Op struct {
	Thread int
	Kind   Kind
	Key    int64
	Result bool
	Invoke int64
	Return int64
}

func (o Op) String() string {
	return fmt.Sprintf("t%d:%s(%d)=%v@[%d,%d]", o.Thread, o.Kind, o.Key, o.Result, o.Invoke, o.Return)
}

// History is a collection of completed operations.
type History struct {
	Ops []Op
}

// Validate checks structural sanity: every op has Invoke < Return.
func (h History) Validate() error {
	for i, o := range h.Ops {
		if o.Invoke >= o.Return {
			return fmt.Errorf("lincheck: op %d (%v) has Invoke >= Return", i, o)
		}
	}
	return nil
}

// PartitionByKey splits the history into per-key subhistories. Set
// operations on distinct keys act on independent sub-objects, so each
// partition can be checked alone.
func (h History) PartitionByKey() map[int64][]Op {
	out := make(map[int64][]Op)
	for _, o := range h.Ops {
		out[o.Key] = append(out[o.Key], o)
	}
	return out
}

// sortByInvoke orders ops by invocation time (ties broken by return).
func sortByInvoke(ops []Op) {
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Invoke != ops[j].Invoke {
			return ops[i].Invoke < ops[j].Invoke
		}
		return ops[i].Return < ops[j].Return
	})
}

// Violation describes a linearizability failure.
type Violation struct {
	Key int64
	Ops []Op
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("lincheck: history of key %d (%d ops) is not linearizable", v.Key, len(v.Ops))
}

// Check verifies the full history against set semantics with the given
// initial membership (nil means the empty set). It returns nil if the
// history is linearizable and a *Violation describing the first failing
// key otherwise.
func Check(h History, initial map[int64]bool) error {
	if err := h.Validate(); err != nil {
		return err
	}
	parts := h.PartitionByKey()
	// Deterministic key order for reproducible error reporting.
	keys := make([]int64, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		ops := parts[k]
		if !checkKey(ops, initial[k]) {
			return &Violation{Key: k, Ops: ops}
		}
	}
	return nil
}
