package lincheck

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// mkOp builds an op with explicit timestamps.
func mkOp(kind Kind, key int64, result bool, inv, ret int64) Op {
	return Op{Kind: kind, Key: key, Result: result, Invoke: inv, Return: ret}
}

func TestValidateRejectsBackwardsOp(t *testing.T) {
	h := History{Ops: []Op{mkOp(OpInsert, 1, true, 5, 5)}}
	if err := h.Validate(); err == nil {
		t.Fatal("op with Invoke >= Return accepted")
	}
	if err := Check(h, nil); err == nil {
		t.Fatal("Check accepted an invalid history")
	}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	if err := Check(History{}, nil); err != nil {
		t.Fatal(err)
	}
	if !CheckMonolithic(History{}, nil) {
		t.Fatal("monolithic rejected empty history")
	}
}

func TestSequentialLegalHistory(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpContains, 1, false, 1, 2),
		mkOp(OpInsert, 1, true, 3, 4),
		mkOp(OpContains, 1, true, 5, 6),
		mkOp(OpInsert, 1, false, 7, 8),
		mkOp(OpRemove, 1, true, 9, 10),
		mkOp(OpRemove, 1, false, 11, 12),
	}}
	if err := Check(h, nil); err != nil {
		t.Fatal(err)
	}
	if !CheckMonolithic(h, nil) {
		t.Fatal("monolithic rejected a legal sequential history")
	}
}

func TestSequentialIllegalHistory(t *testing.T) {
	// contains(1)=true before any insert: illegal.
	h := History{Ops: []Op{
		mkOp(OpContains, 1, true, 1, 2),
		mkOp(OpInsert, 1, true, 3, 4),
	}}
	if err := Check(h, nil); err == nil {
		t.Fatal("illegal sequential history accepted")
	}
	if CheckMonolithic(h, nil) {
		t.Fatal("monolithic accepted an illegal sequential history")
	}
}

func TestInitialStateRespected(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpContains, 1, true, 1, 2),
		mkOp(OpRemove, 1, true, 3, 4),
	}}
	if err := Check(h, nil); err == nil {
		t.Fatal("history requiring pre-populated key accepted with empty initial state")
	}
	if err := Check(h, map[int64]bool{1: true}); err != nil {
		t.Fatalf("history rejected despite initial presence: %v", err)
	}
	if !CheckMonolithic(h, map[int64]bool{1: true}) {
		t.Fatal("monolithic rejected with initial presence")
	}
}

// TestConcurrentReorderingAllowed: two overlapping ops whose results are
// only explainable by ordering the later-invoked one first.
func TestConcurrentReorderingAllowed(t *testing.T) {
	h := History{Ops: []Op{
		// contains(1)=true invoked before the insert returns — legal
		// because they overlap and the insert can linearize first.
		mkOp(OpInsert, 1, true, 1, 10),
		mkOp(OpContains, 1, true, 2, 9),
	}}
	if err := Check(h, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRealTimeOrderEnforced: the same results with non-overlapping ops
// must be rejected — real-time order forbids the reordering.
func TestRealTimeOrderEnforced(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpContains, 1, true, 1, 2), // returns before insert invoked
		mkOp(OpInsert, 1, true, 3, 4),
	}}
	if err := Check(h, nil); err == nil {
		t.Fatal("real-time violation accepted")
	}
}

// TestLostUpdateDetected encodes the paper's "lost update" anomaly: two
// concurrent inserts both return true, then a contains sees only one of
// the values... per key that's fine; the per-key anomaly is two
// successful inserts of the same key with no remove between them.
func TestLostUpdateDetected(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpInsert, 2, true, 1, 10),
		mkOp(OpInsert, 2, true, 2, 11),
	}}
	if err := Check(h, nil); err == nil {
		t.Fatal("double successful insert of one key accepted")
	}
	if CheckMonolithic(h, nil) {
		t.Fatal("monolithic accepted double successful insert")
	}
}

func TestDoubleRemoveDetected(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpInsert, 3, true, 1, 2),
		mkOp(OpRemove, 3, true, 3, 10),
		mkOp(OpRemove, 3, true, 4, 11),
	}}
	if err := Check(h, nil); err == nil {
		t.Fatal("double successful remove accepted")
	}
}

// TestVanishingElementDetected: remove(k)=false concurrent with nothing,
// while k is present — the classic failed-remove-that-should-succeed.
func TestVanishingElementDetected(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpInsert, 4, true, 1, 2),
		mkOp(OpRemove, 4, false, 3, 4),
		mkOp(OpContains, 4, true, 5, 6),
	}}
	if err := Check(h, nil); err == nil {
		t.Fatal("failed remove of a stably present key accepted")
	}
}

func TestViolationErrorReportsKey(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpInsert, 7, true, 1, 2),
		mkOp(OpInsert, 7, true, 3, 4),
	}}
	err := Check(h, nil)
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error type %T, want *Violation", err)
	}
	if v.Key != 7 || len(v.Ops) != 2 || v.Error() == "" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestPartitionByKey(t *testing.T) {
	h := History{Ops: []Op{
		mkOp(OpInsert, 1, true, 1, 2),
		mkOp(OpInsert, 2, true, 3, 4),
		mkOp(OpRemove, 1, true, 5, 6),
	}}
	parts := h.PartitionByKey()
	if len(parts) != 2 || len(parts[1]) != 2 || len(parts[2]) != 1 {
		t.Fatalf("partition = %v", parts)
	}
}

// TestPartitionedAgreesWithMonolithic cross-validates the two checkers
// on random small histories (both legal-looking and corrupted).
func TestPartitionedAgreesWithMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		h := randomHistory(rng, 8, 3)
		got := Check(h, nil) == nil
		want := CheckMonolithic(h, nil)
		if got != want {
			t.Fatalf("trial %d: partitioned=%v monolithic=%v\nhistory: %v", trial, got, want, h.Ops)
		}
	}
}

// randomHistory generates a small history with random overlapping
// intervals and random results (so roughly half are non-linearizable).
func randomHistory(rng *rand.Rand, nOps int, nKeys int) History {
	var h History
	clock := int64(0)
	type pending struct {
		op  Op
		ret int64
	}
	var open []pending
	for len(h.Ops) < nOps {
		clock++
		// Maybe close an open op.
		if len(open) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(open))
			p := open[i]
			p.op.Return = clock
			h.Ops = append(h.Ops, p.op)
			open = append(open[:i], open[i+1:]...)
			continue
		}
		op := Op{
			Thread: rng.Intn(4),
			Kind:   Kind(rng.Intn(3)),
			Key:    int64(rng.Intn(nKeys)),
			Result: rng.Intn(2) == 0,
			Invoke: clock,
		}
		open = append(open, pending{op: op})
	}
	for _, p := range open {
		clock++
		p.op.Return = clock
		h.Ops = append(h.Ops, p.op)
	}
	// Trim to nOps exactly.
	h.Ops = h.Ops[:nOps]
	return h
}

// TestRecorderProducesOrderedHistory exercises the recorder against a
// correct reference set and checks the result passes.
func TestRecorderLegalHistoryPasses(t *testing.T) {
	ref := newSafeMapSet()
	rec := NewRecorder()
	const goroutines = 4
	sessions := make([]*Session, goroutines)
	for i := range sessions {
		sessions[i] = rec.NewSession(ref)
	}
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(seed int64, s *Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 500; j++ {
				k := int64(rng.Intn(8))
				switch rng.Intn(3) {
				case 0:
					s.Insert(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
			}
		}(int64(i), sess)
	}
	wg.Wait()
	h := rec.History()
	if len(h.Ops) != goroutines*500 {
		t.Fatalf("recorded %d ops, want %d", len(h.Ops), goroutines*500)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Check(h, nil); err != nil {
		t.Fatalf("history of a correct set rejected: %v", err)
	}
}

// TestRecorderCatchesBrokenSet runs the recorder against a deliberately
// racy set (no synchronization) and expects a violation. The set is so
// broken that 4 goroutines hammering 2 keys essentially always produce
// a non-linearizable history; if not, the trial repeats.
func TestRecorderCatchesBrokenSet(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		broken := &racySet{m: map[int64]bool{}}
		rec := NewRecorder()
		const goroutines = 4
		sessions := make([]*Session, goroutines)
		for i := range sessions {
			sessions[i] = rec.NewSession(broken)
		}
		var wg sync.WaitGroup
		for i, sess := range sessions {
			wg.Add(1)
			go func(seed int64, s *Session) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for j := 0; j < 300; j++ {
					k := int64(rng.Intn(2))
					if rng.Intn(2) == 0 {
						s.Insert(k)
					} else {
						s.Remove(k)
					}
				}
			}(int64(trial*10+i), sess)
		}
		wg.Wait()
		if err := Check(rec.History(), nil); err != nil {
			return // violation detected, as expected
		}
	}
	t.Fatal("racy set never produced a linearizability violation in 20 trials")
}

// safeMapSet is a trivially correct locked map set.
type safeMapSet struct {
	mu sync.Mutex
	m  map[int64]bool
}

func newSafeMapSet() *safeMapSet { return &safeMapSet{m: map[int64]bool{}} }

func (s *safeMapSet) Insert(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[v] {
		return false
	}
	s.m[v] = true
	return true
}

func (s *safeMapSet) Remove(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[v] {
		return false
	}
	delete(s.m, v)
	return true
}

func (s *safeMapSet) Contains(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[v]
}

// racySet is an intentionally broken set: a plain map guarded by a lock
// only for memory safety, with a yield inside the read-modify-write so
// atomicity is violated constantly.
type racySet struct {
	mu sync.Mutex
	m  map[int64]bool
}

func (s *racySet) get(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[v]
}

func (s *racySet) put(v int64, present bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if present {
		s.m[v] = true
	} else {
		delete(s.m, v)
	}
}

func (s *racySet) Insert(v int64) bool {
	present := s.get(v)
	// Non-atomic read-modify-write with a widened window: the races are
	// the point.
	runtime.Gosched()
	s.put(v, true)
	return !present
}

func (s *racySet) Remove(v int64) bool {
	present := s.get(v)
	runtime.Gosched()
	s.put(v, false)
	return present
}

func (s *racySet) Contains(v int64) bool { return s.get(v) }

func TestKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpRemove.String() != "remove" || OpContains.String() != "contains" {
		t.Fatal("Kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
	op := mkOp(OpInsert, 5, true, 1, 2)
	if op.String() == "" {
		t.Fatal("Op.String empty")
	}
}
