package lincheck

import (
	"math/rand"
	"testing"
)

func TestMinimizeKeepsViolation(t *testing.T) {
	// A big legal prefix followed by the classic double-insert anomaly.
	var ops []Op
	clock := int64(0)
	tick := func() int64 { clock++; return clock }
	for i := 0; i < 50; i++ {
		inv := tick()
		ops = append(ops, Op{Kind: OpInsert, Key: 1, Result: true, Invoke: inv, Return: tick()})
		inv = tick()
		ops = append(ops, Op{Kind: OpRemove, Key: 1, Result: true, Invoke: inv, Return: tick()})
	}
	// The anomaly: two overlapping successful inserts.
	a, b := tick(), tick()
	ops = append(ops,
		Op{Kind: OpInsert, Key: 1, Result: true, Invoke: a, Return: tick()},
		Op{Kind: OpInsert, Key: 1, Result: true, Invoke: b, Return: tick()},
	)
	if checkKey(ops, false) {
		t.Fatal("constructed history unexpectedly linearizable")
	}
	core := Minimize(ops, false)
	if checkKey(core, false) {
		t.Fatal("minimized core is linearizable")
	}
	if len(core) > 3 {
		t.Fatalf("core has %d ops, want <= 3 (double insert needs at most the pair and a blocker):\n%v", len(core), core)
	}
	// Local minimality: removing any single op fixes it.
	for i := range core {
		reduced := append(append([]Op(nil), core[:i]...), core[i+1:]...)
		if !checkKey(reduced, false) {
			t.Fatalf("core not minimal: dropping op %d still violates", i)
		}
	}
}

func TestMinimizeLinearizableUnchanged(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, Key: 2, Result: true, Invoke: 1, Return: 2},
		{Kind: OpContains, Key: 2, Result: true, Invoke: 3, Return: 4},
	}
	got := Minimize(ops, false)
	if len(got) != len(ops) {
		t.Fatalf("linearizable history was shrunk to %d ops", len(got))
	}
}

func TestMinimizeRandomViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	minimized := 0
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, 12, 1) // single key → single partition
		if checkKey(h.Ops, false) {
			continue
		}
		core := Minimize(h.Ops, false)
		if checkKey(core, false) {
			t.Fatalf("trial %d: core linearizable", trial)
		}
		if len(core) > len(h.Ops) {
			t.Fatalf("trial %d: core grew", trial)
		}
		for i := range core {
			reduced := append(append([]Op(nil), core[:i]...), core[i+1:]...)
			if !checkKey(reduced, false) {
				t.Fatalf("trial %d: core not locally minimal", trial)
			}
		}
		minimized++
	}
	if minimized == 0 {
		t.Fatal("no violating random histories generated — test vacuous")
	}
}

func TestViolationMinimizeMethod(t *testing.T) {
	h := History{Ops: []Op{
		{Kind: OpInsert, Key: 9, Result: true, Invoke: 1, Return: 10},
		{Kind: OpInsert, Key: 9, Result: true, Invoke: 2, Return: 11},
		{Kind: OpContains, Key: 9, Result: true, Invoke: 12, Return: 13},
	}}
	err := Check(h, nil)
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T", err)
	}
	core := v.Minimize(false)
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("minimized violation = %v", core)
	}
}
