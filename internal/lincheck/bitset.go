package lincheck

import (
	"encoding/binary"
	"sort"
	"strconv"
)

// bitset is a fixed-capacity bit vector used to track which operations a
// search branch has linearized, and to build memoization keys.
type bitset struct {
	words []uint64
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64)}
}

func (b *bitset) get(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }
func (b *bitset) set(i int)      { b.words[i/64] |= 1 << uint(i%64) }
func (b *bitset) clear(i int)    { b.words[i/64] &^= 1 << uint(i%64) }

// key serializes the bitset plus a boolean state into a map key.
func (b *bitset) key(state bool) string {
	buf := make([]byte, len(b.words)*8+1)
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	if state {
		buf[len(buf)-1] = 1
	}
	return string(buf)
}

// keyWithState serializes the bitset plus a set-membership state.
func (b *bitset) keyWithState(state map[int64]bool) string {
	buf := make([]byte, 0, len(b.words)*8+len(state)*8)
	var tmp [8]byte
	for _, w := range b.words {
		binary.LittleEndian.PutUint64(tmp[:], w)
		buf = append(buf, tmp[:]...)
	}
	keys := make([]int64, 0, len(state))
	for k, v := range state {
		if v {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, k, 10)
	}
	return string(buf)
}
