package lincheck

import (
	"math/rand"
	"sync"
	"testing"
)

// benchHistory records a history of the given size against the safe map
// set with `threads` goroutines.
func benchHistory(threads, opsPerThread int, keys int64, seed int64) History {
	set := newSafeMapSet()
	rec := NewRecorder()
	sessions := make([]*Session, threads)
	for i := range sessions {
		sessions[i] = rec.NewSession(set)
	}
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(seed int64, sess *Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < opsPerThread; j++ {
				k := rng.Int63n(keys)
				switch rng.Intn(3) {
				case 0:
					sess.Insert(k)
				case 1:
					sess.Remove(k)
				default:
					sess.Contains(k)
				}
			}
		}(seed+int64(i), sess)
	}
	wg.Wait()
	return rec.History()
}

// BenchmarkCheckPartitioned measures the per-key Wing-Gong checker on
// realistic recorded histories.
func BenchmarkCheckPartitioned(b *testing.B) {
	h := benchHistory(6, 1000, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Check(h, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckMonolithic measures the whole-state search on a small
// history (it is exponential in concurrency; keep it small).
func BenchmarkCheckMonolithic(b *testing.B) {
	h := benchHistory(3, 60, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !CheckMonolithic(h, nil) {
			b.Fatal("legal history rejected")
		}
	}
}

// BenchmarkRecorderOverhead measures the cost the recorder adds to each
// operation (two atomic clock ticks plus an append).
func BenchmarkRecorderOverhead(b *testing.B) {
	set := newSafeMapSet()
	rec := NewRecorder()
	sess := rec.NewSession(set)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Contains(int64(i % 16))
	}
}
