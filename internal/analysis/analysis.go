// Package analysis is a stdlib-only static-analysis engine for the
// concurrency invariants this repository's correctness argument rests
// on (Theorem 3 of the paper and the hand-written discipline of the
// baseline lists). It provides a small analyzer framework — diagnostics
// with file:line positions, a per-package runner, and comment-based
// suppression — plus four analyzers tuned to this codebase:
//
//   - locksafe: every successful trylock acquisition is released on
//     every path through the acquiring function (see locksafe.go);
//   - copylock: no by-value copies of structs containing trylock or
//     sync/atomic fields (see copylock.go);
//   - valimmutable: a concurrent node's val field is written only at
//     its composite-literal construction site (see valimmutable.go);
//   - benchhygiene: benchmarks call b.ReportAllocs and b.ResetTimer
//     after setup (see benchhygiene.go);
//   - obshygiene: observability probe calls inside traversal loops sit
//     behind the obs.On enabled-guard (see obshygiene.go);
//   - failpointhygiene: chaos injection sites sit behind the
//     failpoint.On enabled-guard everywhere (see failpointhygiene.go);
//   - hotalloc: no hidden heap allocation (&T{...}, new, capturing
//     closures) inside traversal/validation hot-path functions (see
//     hotalloc.go);
//   - epochpin: every epoch pin is unpinned on all paths, retire
//     happens while pinned and after unlock (see epochpin.go);
//   - lockorder: node locks are acquired in ascending list position —
//     prev before curr (see lockorder.go);
//   - atomicmix: fields accessed via the function-style sync/atomic
//     API are never read or written plainly (see atomicmix.go).
//
// The lock- and epoch-sensitive analyzers are interprocedural: a
// whole-program pass (interproc.go) infers per-function summaries —
// which lock slots a helper acquires or releases, which epoch guards
// it pins into its results — and a shared symbolic executor (exec.go)
// applies those summaries at call sites, so helper contracts like
// lockNextAt's returns-true-holding are verified where they are
// consumed instead of suppressed where they are produced.
//
// The engine deliberately uses only go/ast, go/parser, go/types and
// go/importer (plus `go list` for package metadata): the build
// environment is offline and must not pull golang.org/x/tools.
//
// # Suppression
//
// A finding that is intentional — e.g. the value-aware try-lock
// helpers in internal/core return to their caller with the lock
// deliberately held — is silenced with a justification comment either
// on the flagged line or on the line directly above it:
//
//	//lint:ignore locksafe lock intentionally escapes to the caller
//
// The analyzer name may be a comma-separated list. A reason is
// mandatory; a bare //lint:ignore is itself reported, and so is a
// stale directive — one whose named analyzers all ran but produced no
// finding for it to suppress. A whole file is exempted from one
// analyzer with:
//
//	//lint:file-ignore locksafe hand-over-hand locking is out of scope
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// A Diagnostic is one finding, positioned for clickable file:line
// output.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// An Analyzer is one invariant checker. Run inspects the package held
// by the Pass and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass carries one analyzer over one type-checked package. Prog is
// the whole-program view (call-graph summaries, consumed contracts,
// atomic-field inventory) shared by every pass of one Run; it is nil
// only in unit-test scaffolding.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
	Prog       *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockSafe, CopyLock, ValImmutable, BenchHygiene, ObsHygiene, FailpointHygiene, HotAlloc, EpochPin, LockOrder, AtomicMix}
}

// An AnalyzerTiming records the wall-clock cost of one analyzer summed
// over every package of a Run.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// Run applies every analyzer to every package, filters suppressed
// findings, and returns the survivors sorted by position.
func Run(pkgs []*Pkg, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall-clock timings (in the
// analyzers' given order; the whole-program summary inference is
// reported as the pseudo-analyzer "infer").
func RunTimed(pkgs []*Pkg, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming) {
	t0 := time.Now()
	prog := BuildProgram(pkgs)
	timings := []AnalyzerTiming{{Name: "infer", Elapsed: time.Since(t0)}}
	elapsed := make(map[string]time.Duration)
	active := make(map[string]bool)
	for _, a := range analyzers {
		active[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
				Prog:       prog,
				diags:      &diags,
			}
			ta := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(ta)
		}
		diags = append(diags, suppress(pkg, diags[:0:0])...)
		diags = filterSuppressed(pkg, diags, active)
	}
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings
}

// A suppression is one parsed //lint:ignore or //lint:file-ignore
// directive.
type suppression struct {
	analyzers map[string]bool // nil means malformed
	line      int             // line the directive occupies
	fileWide  bool
	file      string
}

const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
)

// parseSuppressions extracts the lint directives of one file.
// Malformed directives (no analyzer list or no reason) are returned
// with a nil analyzer set so the runner can report them.
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			var rest string
			fileWide := false
			switch {
			case strings.HasPrefix(text, fileIgnorePrefix):
				rest = text[len(fileIgnorePrefix):]
				fileWide = true
			case strings.HasPrefix(text, ignorePrefix):
				rest = text[len(ignorePrefix):]
			default:
				continue
			}
			pos := fset.Position(c.Pos())
			s := suppression{line: pos.Line, fileWide: fileWide, file: pos.Filename}
			fields := strings.Fields(rest)
			if len(fields) >= 2 { // analyzer list + at least one reason word
				s.analyzers = make(map[string]bool)
				for _, name := range strings.Split(fields[0], ",") {
					s.analyzers[name] = true
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// suppress reports malformed lint directives as findings of the
// pseudo-analyzer "lint".
func suppress(pkg *Pkg, diags []Diagnostic) []Diagnostic {
	for _, f := range pkg.Files {
		for _, s := range parseSuppressions(pkg.Fset, f) {
			if s.analyzers == nil {
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
					Message:  "malformed suppression: want //lint:ignore <analyzer[,analyzer]> <reason>",
				})
			}
		}
	}
	return diags
}

// filterSuppressed drops diagnostics covered by a well-formed
// directive on the same line or the line directly above — and reports
// the inverse: a line directive that names only active analyzers but
// matched no finding is itself stale, an invariant that quietly
// stopped needing its exception. Stale checking is restricted to the
// active set so a partial run (-a locksafe) does not flag directives
// it never gave a chance to match; file-wide directives are policy
// statements and exempt.
func filterSuppressed(pkg *Pkg, diags []Diagnostic, active map[string]bool) []Diagnostic {
	type key struct {
		file string
		line int
	}
	var supps []suppression
	lineSupp := make(map[key]map[string]bool)
	fileSupp := make(map[string]map[string]bool)
	for _, f := range pkg.Files {
		for _, s := range parseSuppressions(pkg.Fset, f) {
			if s.analyzers == nil {
				continue
			}
			supps = append(supps, s)
			if s.fileWide {
				m := fileSupp[s.file]
				if m == nil {
					m = make(map[string]bool)
					fileSupp[s.file] = m
				}
				for a := range s.analyzers {
					m[a] = true
				}
				continue
			}
			m := lineSupp[key{s.file, s.line}]
			if m == nil {
				m = make(map[string]bool)
				lineSupp[key{s.file, s.line}] = m
			}
			for a := range s.analyzers {
				m[a] = true
			}
		}
	}
	if len(lineSupp) == 0 && len(fileSupp) == 0 {
		return diags
	}
	used := make(map[key]map[string]bool)
	markUsed := func(k key, analyzer string) {
		if lineSupp[k][analyzer] {
			if used[k] == nil {
				used[k] = make(map[string]bool)
			}
			used[k][analyzer] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if fileSupp[d.Pos.Filename][d.Analyzer] {
			continue
		}
		// A directive suppresses findings on its own line and on the
		// line below it (comment-above style).
		same := key{d.Pos.Filename, d.Pos.Line}
		above := key{d.Pos.Filename, d.Pos.Line - 1}
		if lineSupp[same][d.Analyzer] || lineSupp[above][d.Analyzer] {
			markUsed(same, d.Analyzer)
			markUsed(above, d.Analyzer)
			continue
		}
		kept = append(kept, d)
	}
	for _, s := range supps {
		if s.fileWide {
			continue
		}
		allActive, anyUsed := true, false
		for a := range s.analyzers {
			if !active[a] {
				allActive = false
			}
			if used[key{s.file, s.line}][a] {
				anyUsed = true
			}
		}
		if allActive && !anyUsed {
			kept = append(kept, Diagnostic{
				Analyzer: "lint",
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  "stale suppression: no finding here for the named analyzers; remove the directive or re-justify it",
			})
		}
	}
	return kept
}
