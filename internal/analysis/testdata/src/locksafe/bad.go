// Seeded-bad corpus for the locksafe analyzer. Every "// want" marker
// is asserted by TestAnalyzers to be reported at exactly that line —
// and nothing else in the file may be reported.
package locksafe

import "listset/internal/trylock"

type node struct {
	lock trylock.SpinLock
	next *node
	ok   bool
}

// leakOnEarlyReturn is the paper-relevant bug class: the
// validation-failure early return skips the release.
func leakOnEarlyReturn(n *node) bool {
	n.lock.Lock() // want "can reach the function exit"
	if !n.ok {
		return false // leaks n.lock
	}
	n.lock.Unlock()
	return true
}

// tryLockLeak leaks on the success branch of a TryLock guard.
func tryLockLeak(n *node) bool {
	if n.lock.TryLock() { // want "can reach the function exit"
		return true // leaks n.lock
	}
	return false
}

// loopLeak acquires once per iteration and never releases.
func loopLeak(ns []*node) {
	for _, n := range ns {
		n.lock.Lock() // want "still held when the iteration ends"
	}
}

// doubleLock re-locks a lock this path already holds.
func doubleLock(n *node) {
	n.lock.Lock()
	n.lock.Lock() // want "already held"
	n.lock.Unlock()
	n.lock.Unlock()
}

// unguardedTry discards the TryLock result, so a successful
// acquisition would be untrackable.
func unguardedTry(n *node) {
	n.lock.TryLock() // want "not used directly as a branch condition"
}

// ---- true negatives: nothing below may be reported ----

// balancedDefer releases via defer.
func balancedDefer(n *node) bool {
	n.lock.Lock()
	defer n.lock.Unlock()
	return n.ok
}

// balancedBranches releases on every explicit path, lazy-list style.
func balancedBranches(n *node) bool {
	for {
		n.lock.Lock()
		if !n.ok {
			n.lock.Unlock()
			continue
		}
		if n.next == nil {
			n.lock.Unlock()
			return false
		}
		n.lock.Unlock()
		return true
	}
}

// guardedTry covers both TryLock guard polarities.
func guardedTry(n *node) bool {
	if !n.lock.TryLock() {
		return false
	}
	n.lock.Unlock()
	return true
}

// spinAcquire acquires via a TryLock loop condition, then releases.
func spinAcquire(n *node) {
	for !n.lock.TryLock() {
	}
	n.lock.Unlock()
}

// suppressed demonstrates the sanctioned escape hatch: a true finding
// silenced with a justification.
func suppressed(n *node) {
	//lint:ignore locksafe corpus check that a justified suppression silences the leak report
	n.lock.Lock()
}

// ---- inferred contracts: the interprocedural cases ----

// lockNext is the lockNextAt shape: returns true holding n.lock. Its
// contract is inferred and consumed by useLockNext below, so neither
// function is flagged — the obligation moved to the call sites.
func lockNext(n *node) bool {
	n.lock.Lock()
	if !n.ok {
		n.lock.Unlock()
		return false
	}
	return true
}

// useLockNext discharges lockNext's contract: guard, then unlock.
func useLockNext(n *node) {
	if !lockNext(n) {
		return
	}
	n.lock.Unlock()
}

// ignoreLockNext drops the helper's result: the success-path
// acquisition is untrackable at this call site.
func ignoreLockNext(n *node) {
	lockNext(n) // want "not used directly as a branch condition"
}

// acquireBoth is the lockWindow shape: returns holding both argument
// locks unconditionally.
func acquireBoth(a, b *node) {
	a.lock.Lock()
	b.lock.Lock()
}

// useAcquireBoth releases both: clean on both sides.
func useAcquireBoth(a, b *node) {
	acquireBoth(a, b)
	b.lock.Unlock()
	a.lock.Unlock()
}

// leakFromHelper forgets b's lock, which the summary charged to this
// call site — the finding lands here, not in acquireBoth.
func leakFromHelper(a, b *node) {
	acquireBoth(a, b) // want "can reach the function exit"
	a.lock.Unlock()
}
