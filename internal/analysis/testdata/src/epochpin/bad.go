// Seeded-bad corpus for the epochpin analyzer. Every "// want" marker
// is asserted by TestAnalyzers to be reported at exactly that line —
// and nothing else in the file may be reported.
package epochpin

import (
	"listset/internal/mem"
	"listset/internal/trylock"
)

type node struct {
	lock trylock.SpinLock
	val  int64
}

// leakOnEarlyReturn is the paper-relevant bug class: the early return
// skips the Unpin and wedges the global epoch.
func leakOnEarlyReturn(a *mem.Arena[node], bad bool) {
	g := a.Pin() // want "can reach the function exit"
	if bad {
		return // leaks the pin
	}
	g.Unpin()
}

// loopPinLeak pins once per iteration without unpinning: one wedged
// epoch per round.
func loopPinLeak(a *mem.Arena[node], ks []int) {
	var g mem.Guard[node]
	for range ks {
		g = a.Pin() // want "still active when the iteration ends"
	}
	g.Unpin()
}

// useAfterUnpin touches the arena after giving up the epoch: the node
// may already be recycled.
func useAfterUnpin(a *mem.Arena[node], n *node) {
	g := a.Pin()
	g.Unpin()
	g.Retire(n) // want "after its Unpin"
}

// doubleUnpin returns the pooled worker twice.
func doubleUnpin(a *mem.Arena[node]) {
	g := a.Pin()
	g.Unpin()
	g.Unpin() // want "unpinned twice"
}

// retireWhileLocked retires a node whose lock this path still holds:
// its next life would inherit a locked lock.
func retireWhileLocked(a *mem.Arena[node], n *node) {
	g := a.Pin()
	n.lock.Lock()
	g.Retire(n) // want "is retired while its lock"
	n.lock.Unlock()
	g.Unpin()
}

// discardPin drops the guard on the floor; nothing can ever unpin it.
func discardPin(a *mem.Arena[node]) {
	a.Pin() // want "Pin result is discarded"
}

// rePin overwrites an active guard: the first pin leaks, and the
// survivor still reaches the exit because Unpin only pays one back.
func rePin(a *mem.Arena[node]) {
	g := a.Pin()
	g = a.Pin() // want "re-pinned" "can reach the function exit"
	g.Unpin()
}

// balanced is the canonical correct shape: no finding.
func balanced(a *mem.Arena[node]) *node {
	g := a.Pin()
	defer g.Unpin()
	return g.Get()
}

// pinOnceAroundRetry pins once around a retry loop — the lists'
// discipline; the pin predates the loop, so iteration-end checks
// exempt it.
func pinOnceAroundRetry(a *mem.Arena[node], tries int) {
	g := a.Pin()
	for i := 0; i < tries; i++ {
		_ = i
	}
	g.Unpin()
}

// pinned hands its caller the pinned guard as a result: the inferred
// pins-result contract moves the Unpin obligation to the call sites.
func pinned(a *mem.Arena[node]) mem.Guard[node] {
	g := a.Pin()
	return g
}

// usePinned discharges pinned's contract: no finding on either side.
func usePinned(a *mem.Arena[node]) {
	g := pinned(a)
	g.Unpin()
}

// discardPinned drops the contract-carrying result instead.
func discardPinned(a *mem.Arena[node]) {
	pinned(a) // want "pinned epoch guard that is discarded"
}
