// Seeded-bad corpus for the failpointhygiene analyzer. Every "// want"
// marker is asserted by TestAnalyzers to be reported at exactly that
// line — and nothing else in the file may be reported.
package failpointhygiene

import (
	"listset/internal/failpoint"
)

type node struct {
	val  int64
	next *node
}

type set struct {
	head *node
	fps  *failpoint.Set
}

// unguardedFail is the bug class: a site consulted with no
// enabled-guard — nil panic when failpoints are detached, and the call
// survives the nofailpoint build.
func unguardedFail(s *set, v int64) bool {
	return s.fps.Fail(failpoint.SiteVBLLockNextAt, v) // want "without the failpoint.On enabled-guard"
}

// unguardedDoInLoop: loops are no excuse either.
func unguardedDoInLoop(s *set, v int64) {
	for n := s.head; n != nil; n = n.next {
		s.fps.Do(failpoint.SiteVBLTraverse, v) // want "without the failpoint.On enabled-guard"
	}
}

// guardOnWrongBranch: the enabled path must be the then-branch of a
// != nil check; hitting the site when the pointer is nil is still a
// bug.
func guardOnWrongBranch(s *set, v int64) {
	if s.fps != nil {
		_ = v
	} else {
		s.fps.Do(failpoint.SiteUnlink, v) // want "without the failpoint.On enabled-guard"
	}
}

// closureEscapesGuard: a guard outside the closure does not dominate
// the call inside it.
func closureEscapesGuard(s *set, v int64) func() {
	var f func()
	if fp := s.fps; failpoint.On(fp) {
		f = func() {
			fp.Do(failpoint.SiteShardRoute, v) // want "without the failpoint.On enabled-guard"
		}
	}
	return f
}

// ---- true negatives: nothing below may be reported ----

// canonicalGuard is the idiom the algorithms use.
func canonicalGuard(s *set, v int64) bool {
	injected := false
	if fp := s.fps; failpoint.On(fp) {
		injected = fp.Fail(failpoint.SiteVBLLockNextAtValue, v)
	}
	return injected
}

// nilCheckGuard is the plain-comparison form of the guard.
func nilCheckGuard(fp *failpoint.Set, v int64) {
	if fp != nil {
		fp.Do(failpoint.SiteTryLockAcquire, v)
	}
}

// invertedNilCheckGuard routes the enabled path into the else branch.
func invertedNilCheckGuard(fp *failpoint.Set, v int64) {
	if fp == nil {
		_ = v
	} else {
		fp.Do(failpoint.SiteLazyValidate, v)
	}
}

// shortCircuitGuard is the Lazy list's form: the site call evaluates
// only after failpoint.On returned true earlier in the && chain.
func shortCircuitGuard(s *set, v int64, ok bool) bool {
	if fp := s.fps; failpoint.On(fp) && ok && fp.Fail(failpoint.SiteLazyValidate, v) {
		ok = false
	}
	return ok
}

// guardDominatesLoop: one guard outside the loop covers every hit.
func guardDominatesLoop(s *set, v int64) {
	if fp := s.fps; failpoint.On(fp) {
		for n := s.head; n != nil; n = n.next {
			fp.Do(failpoint.SiteHarrisCAS, v)
		}
	}
}

// otherDoFail: Do/Fail methods on unrelated types are not sites.
type other struct{}

func (other) Do(failpoint.Site, int64)        {}
func (other) Fail(failpoint.Site, int64) bool { return false }

func unrelatedMethods(o other, v int64) {
	o.Do(failpoint.SiteUnlink, v)
	_ = o.Fail(failpoint.SiteUnlink, v)
}
