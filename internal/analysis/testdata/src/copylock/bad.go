// Seeded-bad corpus for the copylock analyzer.
package copylock

import (
	"sync/atomic"
	"unsafe"

	"listset/internal/trylock"
)

type node struct {
	val  int64
	next atomic.Pointer[node]
	lock trylock.SpinLock
}

// atomicOnly has no lock but still must not be copied: its atomics
// detach.
type atomicOnly struct {
	count atomic.Int64
}

// byValueParam receives a detached copy of the node and its lock.
func byValueParam(n node) int64 { // want "parameter passes lock by value"
	return n.val
}

// byValueResult returns a detached copy.
func byValueResult(p *node) node { // want "result passes lock by value"
	return *p // the result declaration is the finding; this read feeds it
}

// copyAssign copies through a dereference.
func copyAssign(p *node) int64 {
	n := *p // want "assignment copies lock by value"
	return n.val
}

// copyArg passes a copy into a call.
func copyArg(p *node) int64 {
	return byValueParam(*p) // want "call passes lock by value"
}

// rangeCopy copies one element per iteration.
func rangeCopy(ns []node) int64 {
	var s int64
	for _, n := range ns { // want "range clause copies lock by value"
		s += n.val
	}
	return s
}

// copyAtomic shows the atomic-only case is caught too.
func copyAtomic(a *atomicOnly) {
	c := *a // want "assignment copies lock by value"
	_ = c.count.Load()
}

// ---- true negatives ----

// okPointer passes by pointer everywhere.
func okPointer(p *node) *trylock.SpinLock {
	return &p.lock
}

// construct builds fresh values; composite literals are not copies.
func construct(v int64) *node {
	n := &node{val: v}
	return n
}

// okIndex ranges by index instead of copying elements.
func okIndex(ns []node) int64 {
	var s int64
	for i := range ns {
		s += ns[i].val
	}
	return s
}

// okUnsafe measures lock-bearing types with the unsafe operators; like
// the builtins these are compile-time type measurements, not run-time
// copies (the layout tests of internal/core and internal/lazy rely on
// this).
func okUnsafe(p *node) uintptr {
	var n node
	return unsafe.Sizeof(n) + unsafe.Offsetof(p.lock) + unsafe.Alignof(n.lock)
}
