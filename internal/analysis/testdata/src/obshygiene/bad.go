// Seeded-bad corpus for the obshygiene analyzer. Every "// want"
// marker is asserted by TestAnalyzers to be reported at exactly that
// line — and nothing else in the file may be reported.
package obshygiene

import (
	"time"

	"listset/internal/obs"
	"listset/internal/obs/trace"
)

type node struct {
	val  int64
	next *node
}

type set struct {
	head   *node
	probes *obs.Probes
}

// unguardedInLoop is the bug class: a probe call on the traversal hot
// path with no enabled-guard — nil panic when probes are detached, and
// the call survives the obsoff build.
func unguardedInLoop(s *set, v int64) {
	for n := s.head; n != nil; n = n.next {
		s.probes.Inc(obs.EvRestartPrev, v) // want "without the obs.On enabled-guard"
	}
}

// unguardedRecordInRange is the same bug on the latency recorder.
func unguardedRecordInRange(r *obs.Recorder, ds []time.Duration) {
	for _, d := range ds {
		r.Record(obs.OpContains, d) // want "without the obs.On enabled-guard"
	}
}

// guardOnWrongBranch: the enabled path must be the then-branch of a
// != nil check; probing when the pointer is nil is still a bug.
func guardOnWrongBranch(s *set, v int64) {
	for n := s.head; n != nil; n = n.next {
		if s.probes != nil {
			_ = n
		} else {
			s.probes.Inc(obs.EvRestartHead, v) // want "without the obs.On enabled-guard"
		}
	}
}

// closureInGuardedLoop: a guard outside the closure does not dominate
// the call inside it — the closure may escape the guard.
func closureInGuardedLoop(s *set, v int64) func() {
	var f func()
	if p := s.probes; obs.On(p) {
		for n := s.head; n != nil; n = n.next {
			f = func() {
				for i := 0; i < 2; i++ {
					p.Inc(obs.EvCASFail, v) // want "without the obs.On enabled-guard"
				}
			}
		}
	}
	return f
}

// unguardedTraceEmitInLoop is the flight-recorder flavour of the bug:
// a span record per iteration with no guard — nil panic when no tracer
// is attached, and cycles wasted when tracing is off.
func unguardedTraceEmitInLoop(tr *trace.Tracer, keys []int64) {
	for i, k := range keys {
		tr.OpBegin(i, obs.OpInsert, k) // want "without the obs.On enabled-guard"
	}
}

// unguardedRawEmitInLoop is the same bug on the low-level emit.
func unguardedRawEmitInLoop(tr *trace.Tracer, keys []int64) {
	for _, k := range keys {
		tr.Emit(0, trace.KindEvent, 0, 0, 0, k) // want "without the obs.On enabled-guard"
	}
}

// ---- true negatives: nothing below may be reported ----

// tracerNilCheckGuard is the harness idiom for the traced worker loop:
// the whole loop sits in the then-branch of a tracer nil-check.
func tracerNilCheckGuard(tr *trace.Tracer, keys []int64) {
	if tr != nil {
		for i, k := range keys {
			tr.OpBegin(i, obs.OpInsert, k)
			tr.OpEnd(i, obs.OpInsert, k, true)
		}
	}
}

// tracerOnGuard: obs.On is generic, so it guards tracers too.
func tracerOnGuard(tr *trace.Tracer, keys []int64) {
	for _, k := range keys {
		if obs.On(tr) {
			tr.Emit(0, trace.KindEvent, 0, 0, 0, k)
		}
	}
}

// canonicalGuard is the idiom the algorithms use.
func canonicalGuard(s *set, v int64) {
	for n := s.head; n != nil; n = n.next {
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvRestartPrev, v)
		}
	}
}

// guardOutsideLoop dominates the whole loop; also fine.
func guardOutsideLoop(s *set, v int64) {
	if p := s.probes; obs.On(p) {
		for n := s.head; n != nil; n = n.next {
			p.Inc(obs.EvRestartHead, v)
		}
	}
}

// nilCheckGuard is the harness idiom: a plain nil comparison on an obs
// pointer, enabled path in the then-branch.
func nilCheckGuard(r *obs.Recorder, ds []time.Duration) {
	for _, d := range ds {
		if r != nil {
			r.Record(obs.OpInsert, d)
		}
	}
}

// invertedNilCheckGuard routes the enabled path into the else branch.
func invertedNilCheckGuard(r *obs.Recorder, ds []time.Duration) {
	for _, d := range ds {
		if r == nil {
			_ = d
		} else {
			r.Record(obs.OpRemove, d)
		}
	}
}

// outsideAnyLoop: straight-line probe calls are not hot paths; the
// guard is still good practice but not this analyzer's business.
func outsideAnyLoop(s *set, v int64) {
	s.probes.Inc(obs.EvLogicalDelete, v)
}
