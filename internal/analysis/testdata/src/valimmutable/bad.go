// Seeded-bad corpus for the valimmutable analyzer.
package valimmutable

import (
	"sync/atomic"

	"listset/internal/trylock"
)

// node is node-like: it has a val field next to synchronization
// fields, so val is read by unsynchronized wait-free traversals.
type node struct {
	val     int64
	next    atomic.Pointer[node]
	deleted atomic.Bool
	lock    trylock.SpinLock
}

// mutateVal rewrites a published node's value — the exact bug the
// value-aware validation of lockNextAtValue would silently corrupt on.
func mutateVal(n *node, v int64) {
	n.val = v // want "outside construction"
}

// addVal compound-assigns.
func addVal(n *node, v int64) {
	n.val += v // want "outside construction"
}

// incVal increments.
func incVal(n *node) {
	n.val++ // want "outside construction"
}

// escapeVal lets a write escape the analysis through a pointer.
func escapeVal(n *node) *int64 {
	return &n.val // want "taking the address"
}

// ---- true negatives ----

// construct is the one sanctioned initialization site.
func construct(v int64) *node {
	return &node{val: v}
}

// readVal only reads.
func readVal(n *node) int64 {
	return n.val
}

// seqNode is sequential (no synchronization fields); its val may be
// rewritten freely, like the seqlist baseline does.
type seqNode struct {
	val  int64
	next *seqNode
}

func seqWrite(n *seqNode, v int64) {
	n.val = v
}

// notAField: a local variable called val is nobody's business.
func notAField() int64 {
	val := int64(1)
	val++
	return val
}

// ---- tower-shaped nodes (the skip lists) ----

// tower is node-like in the skip lists' shape: val beside a per-level
// successor array and synchronization fields. The wait-free index
// descent reads val unsynchronized at every level, so the immutability
// contract is the same as the flat lists' — recycled-tower
// re-initialization (before publication) is the one sanctioned
// exception and must carry a suppression.
type tower struct {
	val     int64
	height  int
	next    [4]atomic.Pointer[tower]
	deleted atomic.Bool
	lock    trylock.SpinLock
}

// retypeTower rewrites a published tower's value — with equal values
// transiently coexisting across lives, this corrupts the level-0
// value-window argument.
func retypeTower(n *tower, v int64) {
	n.val = v // want "outside construction"
}

// buildTower is the sanctioned construction site.
func buildTower(v int64, h int) *tower {
	return &tower{val: v, height: h}
}
