// Seeded-bad corpus for the atomicmix analyzer. Every "// want"
// marker is asserted by TestAnalyzers to be reported at exactly that
// line — and nothing else in the file may be reported.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  int64
	flips int32
	name  string
}

// bump is the field's atomic home: the access that puts hits in the
// program-wide inventory.
func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

// read is also sanctioned: any sync/atomic access is.
func read(c *counter) int64 {
	return atomic.LoadInt64(&c.hits)
}

// flip inventories a second field on another type width.
func flip(c *counter) {
	atomic.StoreInt32(&c.flips, 1)
}

// plainRead races with bump on every platform the memory model does
// not promise single-copy atomicity for.
func plainRead(c *counter) int64 {
	return c.hits // want "mixed atomic/plain access"
}

// plainWrite is the classic "it's under the lock anyway" bug.
func plainWrite(c *counter) {
	c.hits++ // want "mixed atomic/plain access"
}

// escape leaks the address outside sync/atomic: a plain access
// waiting to happen.
func escape(c *counter) *int64 {
	return &c.hits // want "mixed atomic/plain access"
}

// plainFlip mixes on the second inventoried field.
func plainFlip(c *counter) bool {
	return c.flips == 1 // want "mixed atomic/plain access"
}

// okPlain touches a field with no atomic history: no finding.
func okPlain(c *counter) string {
	return c.name
}

// ---- adaptive-contention shapes (DESIGN.md §14) ----

// migrator mirrors the rebalance watermark and the controller's
// backoff ceiling: both are written with function-style atomics from
// the control plane and must never be read plainly from the routing
// or lock paths.
type migrator struct {
	watermark int64
	ceiling   int32
}

// advance is the watermark's atomic home (the migrator publishes it
// under the stripes).
func advance(m *migrator, w int64) {
	atomic.StoreInt64(&m.watermark, w)
}

// widen is the ceiling's atomic home (the controller's AIMD step).
func widen(m *migrator) {
	atomic.AddInt32(&m.ceiling, 1)
}

// route reads the watermark plainly: an op racing the migrator would
// tear or reorder the routing decision.
func route(m *migrator, k int64) bool {
	return k < m.watermark // want "mixed atomic/plain access"
}

// spin reads the ceiling plainly inside the lock loop.
func spin(m *migrator) bool {
	return m.ceiling > 0 // want "mixed atomic/plain access"
}

// snapshotOK reads both through sync/atomic: sanctioned, no finding.
func snapshotOK(m *migrator) (int64, int32) {
	return atomic.LoadInt64(&m.watermark), atomic.LoadInt32(&m.ceiling)
}
