// Seeded-bad corpus for the atomicmix analyzer. Every "// want"
// marker is asserted by TestAnalyzers to be reported at exactly that
// line — and nothing else in the file may be reported.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  int64
	flips int32
	name  string
}

// bump is the field's atomic home: the access that puts hits in the
// program-wide inventory.
func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

// read is also sanctioned: any sync/atomic access is.
func read(c *counter) int64 {
	return atomic.LoadInt64(&c.hits)
}

// flip inventories a second field on another type width.
func flip(c *counter) {
	atomic.StoreInt32(&c.flips, 1)
}

// plainRead races with bump on every platform the memory model does
// not promise single-copy atomicity for.
func plainRead(c *counter) int64 {
	return c.hits // want "mixed atomic/plain access"
}

// plainWrite is the classic "it's under the lock anyway" bug.
func plainWrite(c *counter) {
	c.hits++ // want "mixed atomic/plain access"
}

// escape leaks the address outside sync/atomic: a plain access
// waiting to happen.
func escape(c *counter) *int64 {
	return &c.hits // want "mixed atomic/plain access"
}

// plainFlip mixes on the second inventoried field.
func plainFlip(c *counter) bool {
	return c.flips == 1 // want "mixed atomic/plain access"
}

// okPlain touches a field with no atomic history: no finding.
func okPlain(c *counter) string {
	return c.name
}
