// Seeded-bad corpus for the hotalloc analyzer.
package hotalloc

type node struct {
	val  int64
	next *node
}

type list struct {
	head *node
}

// Insert is hot by name: the composite-literal allocation and the
// capturing closure are both flagged.
func (l *list) Insert(v int64) bool {
	n := &node{val: v} // want "allocates on the hot path Insert"
	sink = func() {    // want "closure captures"
		_ = n
	}
	return n != nil
}

// find is hot by name: new(T) is the same allocation spelled
// differently.
func (l *list) find(v int64) *node {
	spare := new(node) // want "new"
	spare.val = v
	return spare
}

// lockWindow is hot by prefix.
func (l *list) lockWindow(v int64) *node {
	return &node{val: v} // want "allocates on the hot path lockWindow"
}

// Remove is hot, but its allocation is the sanctioned one — the
// suppression silences the finding, which is the escape hatch real
// insert paths use.
func (l *list) Remove(v int64) *node {
	//lint:ignore hotalloc the removal tombstone is an intentional allocation for this corpus
	return &node{val: v}
}

// ---- true negatives ----

var sink func()

// Contains allocates nothing: plain traversal.
func (l *list) Contains(v int64) bool {
	for curr := l.head; curr != nil; curr = curr.next {
		if curr.val == v {
			return true
		}
	}
	return false
}

// validate uses a value composite literal that never has its address
// taken — stack allocated, not flagged.
func validate(prev, curr *node) bool {
	probe := node{val: curr.val}
	return prev.val < probe.val
}

// traverse runs a closure that captures nothing from traverse itself
// (parameters of the literal and package globals are fine).
func traverse(visit func(*node)) {
	each := func(n *node) {
		sink = nil
		visit2(n)
	}
	_ = each
}

func visit2(*node) {}

// helper is not hot: it may allocate freely.
func helper(v int64) *node {
	return &node{val: v}
}

// InsertAll is hot by batch-surface name: a per-window allocation in
// the amortized pass is flagged like any other hot path.
func (l *list) InsertAll(keys []int64) int {
	n := &node{val: 0} // want "allocates on the hot path InsertAll"
	_ = n
	return len(keys)
}

// RangeScan is hot by batch-surface name: the capturing closure forces
// a heap allocation per scan.
func (l *list) RangeScan(lo, hi int64) []int64 {
	sink = func() { // want "closure captures"
		_ = lo
	}
	_ = hi
	return nil
}

// RemoveAll allocates nothing: batch passes that reuse pooled scratch
// stay clean.
func (l *list) RemoveAll(keys []int64) int {
	n := 0
	for range keys {
		n++
	}
	return n
}

// ---- adaptive-contention entry points (DESIGN.md §14) ----

type router struct {
	bounds []int64
}

// shardOf is hot by name: the routing decision runs on every
// operation (twice under a live migration), so a spilled allocation
// here taxes the whole façade.
func (r *router) shardOf(k int64) *node {
	return &node{val: k} // want "allocates on the hot path shardOf"
}

// tick is hot by name: the controller's signal->actuator loop runs
// every interval and must not manufacture closures.
func (r *router) tick(loads []uint64) {
	hot := 0
	each := func(i int) { // want "closure captures"
		if loads[i] > loads[hot] {
			hot = i
		}
	}
	for i := range loads {
		each(i)
	}
}

// rebalance is NOT hot: the migrator may allocate its new generation.
func (r *router) rebalance(n int) []*node {
	out := make([]*node, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &node{val: int64(i)})
	}
	return out
}

// ---- skip-list entry points (DESIGN.md §15) ----

type towerList struct {
	head *node
}

// newTower is hot by skip-list name: it runs on every insert attempt,
// so the heap path must be the deliberate, suppressed one.
func (l *towerList) newTower(v int64, h int) *node {
	return &node{val: v} // want "allocates on the hot path newTower"
}

// findFrom is hot by skip-list name: the finger-seeded descent is the
// batch pass's inner loop.
func (l *towerList) findFrom(v int64) *node {
	spare := new(node) // want "new"
	spare.val = v
	return spare
}

// sweep is hot by skip-list name: it runs on every remove.
func (l *towerList) sweep(n *node) {
	sink = func() { // want "closure captures"
		_ = n
	}
}

// Load is hot as a METHOD (a set's bulk population walks the
// structure).
func (l *towerList) Load(keys []int64) int {
	n := &node{val: 0} // want "allocates on the hot path Load"
	_ = n
	return len(keys)
}

// Load as a plain function is NOT hot: a package loader may allocate
// freely.
func Load(paths []string) []*node {
	out := make([]*node, 0, len(paths))
	for range paths {
		out = append(out, &node{})
	}
	return out
}

// Ascend as a method is hot: no allocation here, no finding.
func (l *towerList) Ascend(from int64, yield func(int64) bool) {
	for curr := l.head; curr != nil; curr = curr.next {
		if curr.val >= from && !yield(curr.val) {
			return
		}
	}
}
