// Seeded-bad corpus for the benchhygiene analyzer. The file is named
// bench_test.go because that is the analyzer's scope.
package benchhygiene

import "testing"

// BenchmarkNoReportAllocs measures but hides its allocation profile.
func BenchmarkNoReportAllocs(b *testing.B) { // want "never calls b.ReportAllocs"
	for i := 0; i < b.N; i++ {
		sink = i
	}
}

// BenchmarkNoResetTimer folds its setup into ns/op.
func BenchmarkNoResetTimer(b *testing.B) { // want "never calls b.ResetTimer"
	b.ReportAllocs()
	data := make([]int, 1024)
	for i := 0; i < b.N; i++ {
		sink = data[i%1024]
	}
}

// BenchmarkBadParallel measures through RunParallel without either.
func BenchmarkBadParallel(b *testing.B) { // want "never calls b.ReportAllocs" "never calls b.ResetTimer"
	data := make([]int, 1024)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sink = data[i%1024]
			i++
		}
	})
}

// BenchmarkBadClosure hides the violation inside a sub-benchmark.
func BenchmarkBadClosure(b *testing.B) {
	b.Run("sub", func(b *testing.B) { // want "never calls b.ReportAllocs"
		for i := 0; i < b.N; i++ {
			sink = i
		}
	})
}

// ---- true negatives ----

// BenchmarkClean does everything right.
func BenchmarkClean(b *testing.B) {
	b.ReportAllocs()
	data := make([]int, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = data[i%1024]
	}
}

// BenchmarkNoSetup needs no ResetTimer: nothing precedes the loop.
func BenchmarkNoSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = i
	}
}

// BenchmarkDriver only dispatches sub-benchmarks; its own body
// measures nothing (the closure's b shadows the outer one).
func BenchmarkDriver(b *testing.B) {
	b.Run("sub", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = i
		}
	})
}

// sink defeats dead-code elimination in the corpus loops.
var sink int
