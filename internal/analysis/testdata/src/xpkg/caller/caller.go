// Package caller consumes helper.LockIfOK across the package
// boundary: Discharge proves the contract is honored (no finding in
// either package), Leak proves the moved obligation is enforced at
// the call site.
package caller

import "listset/internal/analysis/testdata/src/xpkg/helper"

// Discharge guards the call and unlocks on the success branch: clean.
func Discharge(n *helper.Node) {
	if !helper.LockIfOK(n) {
		return
	}
	n.Lock.Unlock()
}

// Leak forgets the unlock the summary charged to this call site.
func Leak(n *helper.Node) {
	if helper.LockIfOK(n) { // want "can reach the function exit"
		_ = n.OK
	}
}
