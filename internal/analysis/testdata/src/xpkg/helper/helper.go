// Package helper exports a value-aware-style lock helper whose
// returns-true-holding contract must be inferred here and applied in
// the sibling caller package: the cross-package half of the
// interprocedural fixture.
package helper

import "listset/internal/trylock"

// Node is a minimal locked list node.
type Node struct {
	Lock trylock.SpinLock
	OK   bool
}

// LockIfOK returns true holding n.Lock (the lockNextAt shape). The
// release obligation belongs to the callers in package caller.
func LockIfOK(n *Node) bool {
	n.Lock.Lock()
	if !n.OK {
		n.Lock.Unlock()
		return false
	}
	return true
}
