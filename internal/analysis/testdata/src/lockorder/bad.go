// Seeded-bad corpus for the lockorder analyzer. Every "// want"
// marker is asserted by TestAnalyzers to be reported at exactly that
// line — and nothing else in the file may be reported.
package lockorder

import "listset/internal/trylock"

type node struct {
	lock trylock.SpinLock
	ok   bool
}

// lockPrevThenCurr respects ascending list position: no finding.
func lockPrevThenCurr(prev, curr *node) {
	prev.lock.Lock()
	curr.lock.Lock()
	curr.lock.Unlock()
	prev.lock.Unlock()
}

// lockCurrThenPrev inverts the order: two updates running this
// against lockPrevThenCurr deadlock.
func lockCurrThenPrev(prev, curr *node) {
	curr.lock.Lock()
	prev.lock.Lock() // want "ascending list position"
	prev.lock.Unlock()
	curr.lock.Unlock()
}

// towers is the skip-list spelling of the same inversion.
func towers(preds, succs []*node, l int) {
	succs[l].lock.Lock()
	preds[l].lock.Lock() // want "ascending list position"
	preds[l].lock.Unlock()
	succs[l].lock.Unlock()
}

// lockIt is an always-contract helper: the acquisition is charged to
// its call sites.
func lockIt(n *node) {
	n.lock.Lock()
}

// helperInversion inverts the order through the helper — the
// interprocedural case: the bad acquisition happens inside lockIt but
// the finding lands at this call site with the caller's names.
func helperInversion(prev, curr *node) {
	curr.lock.Lock()
	lockIt(prev) // want "ascending list position"
	prev.lock.Unlock()
	curr.lock.Unlock()
}

// helperInOrder uses the same helper the right way round: no finding.
func helperInOrder(prev, curr *node) {
	lockIt(prev)
	lockIt(curr)
	curr.lock.Unlock()
	prev.lock.Unlock()
}

// unranked names carry no list position: either order is allowed.
func unranked(a, b *node) {
	b.lock.Lock()
	a.lock.Lock()
	a.lock.Unlock()
	b.lock.Unlock()
}

// sameBase re-ranks one node's own lock against itself: prev-to-prev
// is not an inversion.
func sameBase(prevOuter, prevInner *node) {
	prevOuter.lock.Lock()
	prevInner.lock.Lock()
	prevInner.lock.Unlock()
	prevOuter.lock.Unlock()
}

// batchRelockAnchor models a batch pass gone wrong: with a window's
// successor still locked, the pass re-locks the anchor — a descending
// acquisition, since the anchor precedes every remaining window. The
// multi-window protocol only ever advances the anchor forward.
func batchRelockAnchor(anchor, curr *node) {
	curr.lock.Lock()
	anchor.lock.Lock() // want "ascending list position"
	anchor.lock.Unlock()
	curr.lock.Unlock()
}

// batchAnchorFirst is the protocol done right: anchor, then the
// window's successor; no finding.
func batchAnchorFirst(anchor, curr *node) {
	anchor.lock.Lock()
	curr.lock.Lock()
	curr.lock.Unlock()
	anchor.lock.Unlock()
}

// towersTopDown locks one tower's per-level predecessors top-down with
// literal level indices. The skip lists' lockPreds discipline is
// bottom-up (level 0 first, which is decreasing-key order); mixing the
// two directions deadlocks two concurrent tower updates.
func towersTopDown(preds [4]*node) {
	preds[2].lock.Lock()
	preds[0].lock.Lock() // want "bottom-up"
	preds[0].lock.Unlock()
	preds[2].lock.Unlock()
}

// towersBottomUp is the sanctioned per-level order: no finding.
func towersBottomUp(preds [4]*node) {
	preds[0].lock.Lock()
	preds[2].lock.Lock()
	preds[2].lock.Unlock()
	preds[0].lock.Unlock()
}

// towersDistinctArrays: literal indices into DIFFERENT arrays carry no
// per-level relation (and same-name rank dedup keeps prev-vs-prev
// silent): no finding.
func towersDistinctArrays(preds, others [4]*node) {
	others[2].lock.Lock()
	preds[0].lock.Lock()
	preds[0].lock.Unlock()
	others[2].lock.Unlock()
}
