// The obshygiene analyzer: probe calls on hot paths must sit behind
// the enabled-guard.
//
// The observability layer (internal/obs) is designed so that a
// disabled probe costs one predictable branch: every call to
// Probes.Inc or Recorder.Record inside an algorithm's traversal or
// retry loop is supposed to be wrapped in the guard idiom
//
//	if p := s.probes; obs.On(p) {
//		p.Inc(obs.EvRestartPrev, v)
//	}
//
// which the obsoff build tag compiles away entirely. An unguarded
// probe call inside a loop defeats both properties — it dereferences a
// possibly-nil pointer and survives the probe-free build — so the
// analyzer flags exactly that: Inc/Record calls lexically inside a
// for/range statement of the same function with no enclosing
// enabled-guard between the loop's function and the call.
//
// Two guard forms are recognized, matching the two layers that record
// events: the obs.On(...) call guard used by algorithm code, and a
// plain nil comparison against a value of an obs pointer type
// (`if shard != nil { ... }`, or the inverted `if shard == nil`
// routing the enabled path into the else branch), which the harness
// uses where the probe pointer is a local chosen once per run.
// Test files are exempt: their loops are not measured hot paths.
//
// The flight recorder (internal/obs/trace) is held to the same rule:
// Tracer.Emit/OpBegin/OpEnd in a loop need a guard — obs.On is generic
// and accepts a *trace.Tracer, and the nil-comparison forms work on
// tracer pointers just as on probe pointers.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// obsPkgSuffix matches this module's observability package whether the
// import path is "listset/internal/obs" or a testdata variant.
const obsPkgSuffix = "internal/obs"

// tracePkgSuffix matches the flight-recorder package, whose emit
// methods (Tracer.Emit/OpBegin/OpEnd) are probe calls under the same
// hygiene rule: a few atomic stores when enabled, but a guard away
// from free when the tracer is nil. Note obsPkgSuffix does NOT match
// this path (it ends in "/trace"), so the two suffixes are disjoint.
const tracePkgSuffix = "internal/obs/trace"

// ObsHygiene is the probe-guard hygiene analyzer.
var ObsHygiene = &Analyzer{
	Name: "obshygiene",
	Doc:  "probe calls in loops sit behind the obs.On enabled-guard",
	Run:  runObsHygiene,
}

func runObsHygiene(pass *Pass) {
	if strings.HasSuffix(pass.ImportPath, obsPkgSuffix) || strings.HasSuffix(pass.ImportPath, tracePkgSuffix) {
		return // the obs and trace packages exercise probes unguarded by design
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Walk with an explicit ancestor stack: ast.Inspect signals a
		// pop with a nil node.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				if method, isProbe := probeCall(pass, call); isProbe {
					checkProbeCall(pass, stack, call, method)
				}
			}
			return true
		})
	}
}

// probeCall reports whether call is Probes.Inc, Recorder.Record or a
// Tracer emit method (Emit/OpBegin/OpEnd) and returns the method name.
func probeCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Inc", "Record", "Emit", "OpBegin", "OpEnd":
	default:
		return "", false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	if named := namedPkgType(selection.Recv(), tracePkgSuffix); named != nil {
		if named.Obj().Name() == "Tracer" && method != "Inc" && method != "Record" {
			return method, true
		}
		return "", false
	}
	named := namedObsType(selection.Recv())
	if named == nil {
		return "", false
	}
	switch {
	case method == "Inc" && named.Obj().Name() == "Probes":
		return method, true
	case method == "Record" && named.Obj().Name() == "Recorder":
		return method, true
	}
	return "", false
}

// namedObsType unwraps t (through one pointer) to a named type of the
// obs package, or nil.
func namedObsType(t types.Type) *types.Named {
	return namedPkgType(t, obsPkgSuffix)
}

// namedPkgType unwraps t (through one pointer) to a named type of the
// package whose import path ends in pkgSuffix, or nil.
func namedPkgType(t types.Type, pkgSuffix string) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), pkgSuffix) {
		return nil
	}
	return named
}

// checkProbeCall walks the ancestor stack of one probe call (innermost
// last) and reports it when a for/range statement encloses it within
// its function and no enabled-guard sits between that function and the
// call.
func checkProbeCall(pass *Pass, stack []ast.Node, call *ast.CallExpr, method string) {
	inLoop := false
	// child is the node the path descends into below stack[i].
	for i := len(stack) - 2; i >= 0; i-- {
		child := stack[i+1]
		switch nn := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			// Loops outside the closure run it, not the probe call,
			// per iteration; the guard likewise must be inside.
			if inLoop {
				pass.Reportf(call.Pos(), "%s call inside a loop without the obs.On enabled-guard (see internal/obs)", method)
			}
			return
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		case *ast.IfStmt:
			if guardEnables(pass, nn, child) {
				return // the enabled-guard dominates the call
			}
		}
	}
	if inLoop {
		pass.Reportf(call.Pos(), "%s call inside a loop without the obs.On enabled-guard (see internal/obs)", method)
	}
}

// guardEnables reports whether descending from ifStmt into child stays
// on the probes-enabled side of an enabled-guard: the then-branch of
// `obs.On(...)` or `x != nil`, or the else-branch of `x == nil`, with
// x of an obs or trace pointer type (obs.On is generic, so
// `obs.On(tracer)` guards trace emits through the obs suffix; the
// trace suffix covers the plain nil-check forms on a *trace.Tracer).
func guardEnables(pass *Pass, ifStmt *ast.IfStmt, child ast.Node) bool {
	return guardEnablesPkg(pass, ifStmt, child, obsPkgSuffix) ||
		guardEnablesPkg(pass, ifStmt, child, tracePkgSuffix)
}

// guardEnablesPkg is guardEnables generalized over the guarded
// package: both internal/obs and internal/failpoint share the On-guard
// idiom, differing only in which package's On and pointer types count.
func guardEnablesPkg(pass *Pass, ifStmt *ast.IfStmt, child ast.Node, pkgSuffix string) bool {
	switch child {
	case ifStmt.Body:
		return condHasOnCall(pass, ifStmt.Cond, pkgSuffix) || nilCheckOnPkgPtr(pass, ifStmt.Cond, token.NEQ, pkgSuffix)
	case ifStmt.Else:
		return nilCheckOnPkgPtr(pass, ifStmt.Cond, token.EQL, pkgSuffix)
	}
	return false
}

// condHasOnCall reports whether cond contains a call to the named
// package's On guard.
func condHasOnCall(pass *Pass, cond ast.Expr, pkgSuffix string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "On" {
			return true
		}
		// Package-qualified function: the selector's identifier must
		// resolve to a package whose path is the obs package.
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
		if ok && strings.HasSuffix(pkgName.Imported().Path(), pkgSuffix) {
			found = true
			return false
		}
		return true
	})
	return found
}

// nilCheckOnPkgPtr reports whether cond is `x <op> nil` (either
// operand order) with x a pointer to a named type of the package whose
// import path ends in pkgSuffix.
func nilCheckOnPkgPtr(pass *Pass, cond ast.Expr, op token.Token, pkgSuffix string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil" && pass.Info.Uses[id] == types.Universe.Lookup("nil")
	}
	other := be.X
	switch {
	case isNil(be.X):
		other = be.Y
	case isNil(be.Y):
		// other already be.X
	default:
		return false
	}
	t := pass.Info.TypeOf(other)
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return namedPkgType(t, pkgSuffix) != nil
}
