// The shared symbolic-execution engine behind the protocol analyzers
// (locksafe, epochpin, lockorder). It generalizes the original
// locksafe walker: one path-sensitive pass over a function body tracks
//
//   - the multiset of held try-locks (acquired by Lock/LockContended,
//     by the success branch of a TryLock guard, or by a callee whose
//     inferred summary says it returns holding a lock), keyed by the
//     canonical syntax of the receiver expression;
//   - registered deferred unlocks (direct, via deferred closures, and
//     via deferred calls to helpers whose summary releases locks);
//   - active epoch pins (mem.Arena.Pin results), unpinned guards, and
//     deferred unpins — the state the epochpin analyzer checks.
//
// Call sites are where the interprocedural half (interproc.go) plugs
// in: a call to a function with an inferred summary applies that
// summary's lock and pin effects to the caller's abstract state, with
// the callee's slots (receiver, parameter i, result i) rebound to the
// caller's argument and binding expressions. Calls without a summary
// (unloaded packages, functions too irregular to summarize) are
// opaque: no effects, exactly the pre-interprocedural behavior.
//
// The engine runs in two roles. Summary inference (interproc.go) runs
// it silently and classifies the exit states into a contract. The
// analyzers run it with their report flags set and get the immediate
// findings (self-deadlock, leak-per-iteration, unguarded TryLock,
// retire-after-unpin, ...) plus the collected exits to check against
// the already-inferred contract.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A heldLock is one acquisition on the current path.
type heldLock struct {
	key    string
	pos    token.Pos
	method string // "Lock", "TryLock", "LockContended" or the callee name
}

// A pin is one active epoch pin (a mem.Guard obtained from Pin) on the
// current path, keyed by the syntax of the guard binding ("g").
type pin struct {
	key string
	pos token.Pos
}

// An absState is the abstract state of one control-flow path.
type absState struct {
	held       []heldLock
	deferred   []string // keys with a registered deferred unlock
	relForeign []string // keys unlocked without holding them (caller's locks)
	pins       []pin    // active epoch pins
	unpinned   []string // guard keys already unpinned on this path
	unpForeign []string // guard keys unpinned without a local pin (caller's guards)
	defUnpin   []string // guard keys with a registered deferred unpin
}

func (s absState) clone() absState {
	return absState{
		held:       append([]heldLock(nil), s.held...),
		deferred:   append([]string(nil), s.deferred...),
		relForeign: append([]string(nil), s.relForeign...),
		pins:       append([]pin(nil), s.pins...),
		unpinned:   append([]string(nil), s.unpinned...),
		unpForeign: append([]string(nil), s.unpForeign...),
		defUnpin:   append([]string(nil), s.defUnpin...),
	}
}

func (s absState) holds(key string) bool {
	for _, h := range s.held {
		if h.key == key {
			return true
		}
	}
	return false
}

func (s absState) isDeferred(key string) bool {
	for _, d := range s.deferred {
		if d == key {
			return true
		}
	}
	return false
}

func (s absState) pinnedAt(key string) (pin, bool) {
	for _, p := range s.pins {
		if p.key == key {
			return p, true
		}
	}
	return pin{}, false
}

func (s absState) isUnpinned(key string) bool {
	for _, u := range s.unpinned {
		if u == key {
			return true
		}
	}
	return false
}

func (s absState) isDeferUnpinned(key string) bool {
	for _, u := range s.defUnpin {
		if u == key {
			return true
		}
	}
	return false
}

// sig is a canonical signature for state deduplication.
func (s absState) sig() string {
	parts := make([]string, 0, len(s.held)+len(s.deferred))
	for _, h := range s.held {
		parts = append(parts, h.key+"@"+itoa(int(h.pos)))
	}
	sort.Strings(parts)
	d := append([]string(nil), s.deferred...)
	sort.Strings(d)
	ps := make([]string, 0, len(s.pins)+len(s.unpinned)+len(s.defUnpin))
	for _, p := range s.pins {
		ps = append(ps, "p:"+p.key+"@"+itoa(int(p.pos)))
	}
	for _, u := range s.unpinned {
		ps = append(ps, "u:"+u)
	}
	for _, u := range s.unpForeign {
		ps = append(ps, "uf:"+u)
	}
	for _, u := range s.defUnpin {
		ps = append(ps, "du:"+u)
	}
	for _, r := range s.relForeign {
		ps = append(ps, "rf:"+r)
	}
	sort.Strings(ps)
	return strings.Join(parts, ";") + "|" + strings.Join(d, ";") + "|" + strings.Join(ps, ";")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// boolResult classifies what a bool-returning function's exit returned.
type boolResult int

const (
	resultNone    boolResult = iota // not a single-bool function, or fall-off end
	resultTrue                      // return true
	resultFalse                     // return false
	resultUnknown                   // return <non-literal bool>
)

// An exitRec is one path leaving the function: where, with what bool
// result, holding which locks and pins, and how the return expressions
// map result indices to canonical keys (for result-slot contracts).
type exitRec struct {
	pos        token.Pos
	result     boolResult
	held       []heldLock
	pins       []pin
	resultKeys []string // exprKey of each returned expression ("" if opaque)
	relForeign []string // locks released without acquiring (release contracts)
	unpForeign []string // guards unpinned without pinning (unpin contracts)
}

// maxExecStates caps path explosion; beyond it states are merged by
// truncation (the analysis stays useful but may miss paths in very
// branchy functions — none in this codebase come close).
const maxExecStates = 80

// an execFrame is one enclosing breakable construct during execution.
type execFrame struct {
	isLoop     bool
	label      string
	breaks     []absState
	entryHeld  map[string]bool // key@pos of locks held at loop entry
	entryPin   map[string]bool // key@pos of pins active at loop entry
}

// execEngine symbolically executes one function body.
type execEngine struct {
	pass *Pass
	prog *Program

	// report flags: which immediate findings to emit. All false during
	// summary inference.
	reportLocks bool
	reportEpoch bool

	// onAcquire, when set, observes every lock acquisition with the
	// path state as it was BEFORE the acquisition (lockorder's hook).
	onAcquire func(st absState, key string, pos token.Pos)

	// noteConsume, when set, records in the Program which callee
	// contracts this function's call sites discharge.
	noteConsume bool

	// fn is the declaration under execution (nil for function
	// literals); decl result names back bare returns.
	fn *ast.FuncDecl

	exits    []exitRec
	reported map[token.Pos]bool
	guarded  map[*ast.CallExpr]bool
	queue    []*ast.FuncLit
}

func newExecEngine(pass *Pass, prog *Program) *execEngine {
	return &execEngine{
		pass:     pass,
		prog:     prog,
		reported: make(map[token.Pos]bool),
		guarded:  make(map[*ast.CallExpr]bool),
	}
}

// run executes a function body and returns the exit records (explicit
// returns plus the fall-off-the-end exit).
func (ex *execEngine) run(fn *ast.FuncDecl, body *ast.BlockStmt) []exitRec {
	ex.fn = fn
	out := ex.execBlock(body, []absState{{}}, nil)
	for _, s := range out {
		ex.recordExit(s, body.End(), nil)
	}
	ex.flagUnguardedTryLocks(body)
	return ex.exits
}

func (ex *execEngine) reportOnce(pos token.Pos, format string, args ...any) {
	if ex.reported[pos] {
		return
	}
	ex.reported[pos] = true
	ex.pass.Reportf(pos, format, args...)
}

// recordExit snapshots one path leaving the function.
func (ex *execEngine) recordExit(s absState, pos token.Pos, ret *ast.ReturnStmt) {
	rec := exitRec{pos: pos, result: resultNone}
	for _, h := range s.held {
		if !s.isDeferred(h.key) {
			rec.held = append(rec.held, h)
		}
	}
	for _, p := range s.pins {
		if !s.isDeferUnpinned(p.key) {
			rec.pins = append(rec.pins, p)
		}
	}
	rec.relForeign = append(rec.relForeign, s.relForeign...)
	rec.unpForeign = append(rec.unpForeign, s.unpForeign...)
	if ret != nil {
		for _, r := range ret.Results {
			rec.resultKeys = append(rec.resultKeys, bindableKey(r))
		}
		if len(ret.Results) == 0 && ex.fn != nil {
			// Bare return with named results.
			rec.resultKeys = namedResultKeys(ex.fn)
		}
		if isSingleBoolFunc(ex.fn) {
			rec.result = resultUnknown
			if len(ret.Results) == 1 {
				if id, ok := ret.Results[0].(*ast.Ident); ok {
					switch id.Name {
					case "true":
						rec.result = resultTrue
					case "false":
						rec.result = resultFalse
					}
				}
			}
		}
	} else if ex.fn != nil && isSingleBoolFunc(ex.fn) {
		rec.result = resultUnknown // cannot fall off a bool function; defensive
	}
	ex.exits = append(ex.exits, rec)
}

// bindableKey renders the canonical key of a return expression when it
// is a shape the caller can rebind ("" otherwise).
func bindableKey(e ast.Expr) string {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return exprKey(e)
	}
	return ""
}

// namedResultKeys returns the declared result names of fn ("" for
// anonymous results).
func namedResultKeys(fn *ast.FuncDecl) []string {
	var keys []string
	if fn.Type.Results == nil {
		return nil
	}
	for _, f := range fn.Type.Results.List {
		if len(f.Names) == 0 {
			keys = append(keys, "")
			continue
		}
		for _, n := range f.Names {
			keys = append(keys, n.Name)
		}
	}
	return keys
}

// isSingleBoolFunc reports whether fn returns exactly one bool.
func isSingleBoolFunc(fn *ast.FuncDecl) bool {
	if fn == nil || fn.Type.Results == nil || len(fn.Type.Results.List) != 1 {
		return false
	}
	f := fn.Type.Results.List[0]
	if len(f.Names) > 1 {
		return false
	}
	id, ok := f.Type.(*ast.Ident)
	return ok && id.Name == "bool"
}

// acquire adds one lock acquisition to every incoming state.
func (ex *execEngine) acquire(states []absState, key string, pos token.Pos, method string) []absState {
	out := make([]absState, 0, len(states))
	for _, s := range states {
		if s.holds(key) {
			if ex.reportLocks {
				ex.reportOnce(pos, "%s is locked while already held on this path (SpinLock is not reentrant: self-deadlock)", key)
			}
			out = append(out, s)
			continue
		}
		if ex.onAcquire != nil {
			ex.onAcquire(s, key, pos)
		}
		ns := s.clone()
		ns.held = append(ns.held, heldLock{key: key, pos: pos, method: method})
		out = append(out, ns)
	}
	return out
}

func release(states []absState, key string) []absState {
	out := make([]absState, 0, len(states))
	for _, s := range states {
		ns := s.clone()
		found := false
		for i, h := range ns.held {
			if h.key == key {
				ns.held = append(ns.held[:i], ns.held[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			// Releasing a lock this function never acquired: a
			// caller-held lock being unlocked on the caller's behalf
			// (the raw material of a release contract).
			ns.relForeign = append(ns.relForeign, key)
		}
		out = append(out, ns)
	}
	return out
}

// addPin registers a fresh epoch pin under key.
func (ex *execEngine) addPin(states []absState, key string, pos token.Pos) []absState {
	out := make([]absState, 0, len(states))
	for _, s := range states {
		ns := s.clone()
		if _, ok := ns.pinnedAt(key); ok {
			if ex.reportEpoch {
				ex.reportOnce(pos, "guard %s is re-pinned while its previous pin is still active on this path; the first pin leaks", key)
			}
		}
		ns.pins = append(ns.pins, pin{key: key, pos: pos})
		// A rebinding resurrects the name: it is no longer "unpinned".
		ns.unpinned = removeString(ns.unpinned, key)
		out = append(out, ns)
	}
	return out
}

// unpin processes g.Unpin(): drops the active pin, or flags a double
// unpin (Unpin returns the worker to the pool; a second Unpin corrupts
// the pool).
func (ex *execEngine) unpin(states []absState, key string, pos token.Pos) []absState {
	out := make([]absState, 0, len(states))
	for _, s := range states {
		ns := s.clone()
		if _, ok := ns.pinnedAt(key); ok {
			for i, p := range ns.pins {
				if p.key == key {
					ns.pins = append(ns.pins[:i], ns.pins[i+1:]...)
					break
				}
			}
			ns.unpinned = append(ns.unpinned, key)
		} else if ns.isUnpinned(key) {
			if ex.reportEpoch {
				ex.reportOnce(pos, "guard %s is unpinned twice on this path; Unpin returns the worker to the pool, so a double Unpin hands one worker to two goroutines", key)
			}
		} else {
			// Foreign guard (parameter, receiver field): record the
			// unpin so later uses on this path are flagged, and
			// separately as contract raw material.
			ns.unpinned = append(ns.unpinned, key)
			ns.unpForeign = append(ns.unpForeign, key)
		}
		out = append(out, ns)
	}
	return out
}

// useGuard checks a Retire/Free/Get call against the guard's state.
func (ex *execEngine) useGuard(states []absState, key, method string, pos token.Pos, retired ast.Expr) {
	if !ex.reportEpoch {
		return
	}
	for _, s := range states {
		if s.isUnpinned(key) {
			ex.reportOnce(pos, "%s called on guard %s after its Unpin on this path; the epoch no longer protects this access", method, key)
			continue
		}
		if method == "Retire" && retired != nil {
			base := exprKey(retired)
			for _, h := range s.held {
				if strings.HasPrefix(h.key, base+".") || h.key == base {
					ex.reportOnce(pos, "%s is retired while its lock %s is still held on this path; retire only after the unlink is complete and the lock is released, or the node's next life inherits a held lock", base, h.key)
				}
			}
		}
	}
}

func removeString(ss []string, key string) []string {
	out := ss[:0:0]
	for _, s := range ss {
		if s != key {
			out = append(out, s)
		}
	}
	return out
}

// checkIterEnd verifies that a loop iteration ends without holding a
// lock (or pin) it acquired itself.
func (ex *execEngine) checkIterEnd(s absState, frame *execFrame, at token.Pos) {
	if ex.reportLocks {
		for _, h := range s.held {
			if frame.entryHeld[h.key+"@"+itoa(int(h.pos))] || s.isDeferred(h.key) {
				continue
			}
			ex.reportOnce(h.pos,
				"%s acquired by %s inside this loop is still held when the iteration ends at line %d",
				h.key, h.method, ex.pass.Fset.Position(at).Line)
		}
	}
	if ex.reportEpoch {
		for _, p := range s.pins {
			if frame.entryPin[p.key+"@"+itoa(int(p.pos))] || s.isDeferUnpinned(p.key) {
				continue
			}
			ex.reportOnce(p.pos,
				"epoch pin %s taken inside this loop is still active when the iteration ends at line %d; pin once around the retry loop or unpin before the next round",
				p.key, ex.pass.Fset.Position(at).Line)
		}
	}
}

// mergeStates concatenates and deduplicates path states, capping the
// total.
func mergeStates(groups ...[]absState) []absState {
	var out []absState
	seen := make(map[string]bool)
	for _, g := range groups {
		for _, s := range g {
			sig := s.sig()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			out = append(out, s)
			if len(out) >= maxExecStates {
				return out
			}
		}
	}
	return out
}

// collectFuncLits queues every function literal under n for separate
// analysis. Literal bodies are otherwise opaque to the enclosing
// function's execution.
func (ex *execEngine) collectFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			ex.queue = append(ex.queue, lit)
			return false
		}
		return true
	})
}

// applyCallEffects maps a summarized callee's unconditional effects
// onto the caller's states. lhs, when non-nil, is the assignment
// target list binding the call's results. Returns the updated states.
func (ex *execEngine) applyCallEffects(call *ast.CallExpr, sum *funcSummary, key string, lhs []ast.Expr, states []absState) []absState {
	if sum == nil {
		return states
	}
	bind := newSlotBinding(call, lhs)
	// Unconditional acquisitions, in the callee's acquisition order.
	allResolved := true
	for _, sl := range sum.acquiresAlways {
		k, ok := bind.resolve(sl)
		if !ok {
			allResolved = false
			if sl.kind == slotResult && ex.reportLocks {
				ex.reportOnce(call.Pos(),
					"%s returns holding %s, but the result is discarded; the lock can never be released",
					calleeName(call), sl.describe())
			}
			continue
		}
		states = ex.acquire(states, k, call.Pos(), calleeName(call))
	}
	if ex.noteConsume && allResolved && len(sum.acquiresAlways) > 0 && len(sum.acquiresOnTrue) == 0 {
		ex.prog.consumed[key] = true
	}
	// A conditional contract whose result is not consumed as a branch
	// condition is an untrackable acquisition.
	if len(sum.acquiresOnTrue) > 0 && !ex.guarded[call] && lhs == nil {
		if ex.reportLocks {
			ex.reportOnce(call.Pos(),
				"result of %s is not used directly as a branch condition; on success it returns holding %s, which this call site cannot release",
				calleeName(call), describeSlots(sum.acquiresOnTrue))
		}
	}
	// Unconditional releases.
	for _, sl := range sum.releases {
		if k, ok := bind.resolve(sl); ok {
			states = release(states, k)
		}
	}
	// Pin effects.
	for _, idx := range sum.unpinsParams {
		if k, ok := bind.resolve(slot{kind: slotParam, index: idx}); ok {
			states = ex.unpin(states, k, call.Pos())
		}
	}
	for _, idx := range sum.pinsResults {
		k, ok := bind.resolve(slot{kind: slotResult, index: idx})
		if !ok {
			if ex.reportEpoch && lhs == nil {
				ex.reportOnce(call.Pos(), "%s returns a pinned epoch guard that is discarded; the pin can never be released", calleeName(call))
			}
			continue
		}
		if ex.noteConsume {
			ex.prog.consumed[key] = true
		}
		states = ex.addPin(states, k, call.Pos())
	}
	return states
}

// calleeName renders a short name for a call for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return exprKey(f.X) + "." + f.Sel.Name
	}
	return "call"
}

// execCall processes one call expression in statement position (or as
// a bound assignment RHS), handling intrinsics and summaries.
func (ex *execEngine) execCall(call *ast.CallExpr, lhs []ast.Expr, in []absState) ([]absState, bool) {
	// Try-lock intrinsics.
	if recv, method, isLock := trylockMethod(ex.pass.Info, call); isLock {
		switch method {
		case "Lock", "LockContended":
			return ex.acquire(in, exprKey(recv), call.Pos(), method), true
		case "Unlock":
			return release(in, exprKey(recv)), true
		case "TryLock":
			return in, true // bare TryLock: flagged by flagUnguardedTryLocks
		}
	}
	// Epoch intrinsics.
	if recv, method, isMem := memMethod(ex.pass.Info, call); isMem {
		switch method {
		case "Pin":
			if len(lhs) == 1 {
				if key := bindableKey(lhs[0]); key != "" && key != "_" {
					return ex.addPin(in, key, call.Pos()), true
				}
			}
			if lhs == nil && ex.reportEpoch {
				ex.reportOnce(call.Pos(), "Pin result is discarded; the epoch pin can never be released")
			}
			return in, true
		case "Unpin":
			return ex.unpin(in, exprKey(recv), call.Pos()), true
		case "Retire":
			var arg ast.Expr
			if len(call.Args) == 1 {
				arg = call.Args[0]
			}
			ex.useGuard(in, exprKey(recv), method, call.Pos(), arg)
			return in, true
		case "Free", "Get":
			ex.useGuard(in, exprKey(recv), method, call.Pos(), nil)
			return in, true
		}
	}
	if isNoReturn(ex.pass.Info, call) {
		return nil, true // path ends here; release not required
	}
	// Interprocedural: apply the callee's summary, if one was inferred.
	if ex.prog != nil {
		if sum, key := ex.prog.summaryAndKey(ex.pass, call); sum != nil {
			return ex.applyCallEffects(call, sum, key, lhs, in), true
		}
	}
	return in, false
}

// isNoReturn reports whether a call terminates the current path:
// panic, runtime.Goexit, os.Exit, log.Fatal*, or the terminating
// testing methods (Fatal*, FailNow, Skip*) — t.Fatal runs
// runtime.Goexit, so a test path genuinely ends there and the failed
// branch of a validation check owes no release.
func isNoReturn(info *types.Info, call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		name := f.Sel.Name
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			switch name {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			default:
				return false
			}
			recv := sel.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			named, isNamed := recv.(*types.Named)
			return isNamed && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "testing"
		}
		fn, isFunc := info.Uses[f.Sel].(*types.Func)
		if !isFunc || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return name == "Exit"
		case "runtime":
			return name == "Goexit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
		}
	}
	return false
}

// evalCond evaluates a branch condition, splitting the incoming states
// into those where the condition is true and those where it is false,
// acquiring locks for TryLock calls and conditional-contract helper
// calls used as guards.
func (ex *execEngine) evalCond(cond ast.Expr, in []absState) (t, f []absState) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return ex.evalCond(c.X, in)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			t, f = ex.evalCond(c.X, in)
			return f, t
		}
	case *ast.CallExpr:
		if recv, method, ok := trylockMethod(ex.pass.Info, c); ok {
			switch method {
			case "TryLock":
				ex.guarded[c] = true
				return ex.acquire(in, exprKey(recv), c.Pos(), "TryLock"), in
			case "LockContended":
				// The bool is the contention flag, not success: the
				// acquisition is unconditional on both branches.
				out := ex.acquire(in, exprKey(recv), c.Pos(), "LockContended")
				return out, out
			}
		}
		if ex.prog != nil {
			if sum, key := ex.prog.summaryAndKey(ex.pass, c); sum != nil {
				ex.guarded[c] = true
				bind := newSlotBinding(c, nil)
				t, f = in, in
				// Unconditional effects apply to both branches.
				t = ex.applyCallEffects(c, sum, key, nil, t)
				f = ex.applyCallEffects(c, sum, key, nil, f)
				allResolved := len(sum.acquiresOnTrue) > 0
				for _, sl := range sum.acquiresOnTrue {
					k, ok := bind.resolve(sl)
					if !ok {
						allResolved = false
						continue
					}
					t = ex.acquire(t, k, c.Pos(), calleeName(c))
				}
				if ex.noteConsume && allResolved {
					ex.prog.consumed[key] = true
				}
				return t, f
			}
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			xt, xf := ex.evalCond(c.X, in)
			yt, yf := ex.evalCond(c.Y, xt)
			return yt, mergeStates(xf, yf)
		case token.LOR:
			xt, xf := ex.evalCond(c.X, in)
			yt, yf := ex.evalCond(c.Y, xf)
			return mergeStates(xt, yt), yf
		}
	}
	return in, in
}

// flagUnguardedTryLocks reports TryLock calls whose result did not
// flow through a recognized guard (and so whose success path the
// analysis cannot check). Function literals are skipped: they are
// analyzed — and flagged — separately.
func (ex *execEngine) flagUnguardedTryLocks(body *ast.BlockStmt) {
	if !ex.reportLocks {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, isLock := trylockMethod(ex.pass.Info, call); isLock && method == "TryLock" && !ex.guarded[call] {
			ex.reportOnce(call.Pos(),
				"result of %s.TryLock() is not used directly as a branch condition; a successful acquisition here cannot be tracked",
				exprKey(recv))
		}
		return true
	})
}

func (ex *execEngine) execBlock(b *ast.BlockStmt, in []absState, frames []*execFrame) []absState {
	states := in
	for _, stmt := range b.List {
		if len(states) == 0 {
			// Remaining statements are unreachable on every tracked
			// path (e.g. code after an infinite for with returns).
			break
		}
		states = ex.exec(stmt, states, frames)
	}
	return states
}

// innermost returns the innermost frame satisfying pred (matching
// label if given).
func innermost(frames []*execFrame, label string, loopOnly bool) *execFrame {
	for i := len(frames) - 1; i >= 0; i-- {
		fr := frames[i]
		if loopOnly && !fr.isLoop {
			continue
		}
		if label != "" && fr.label != label {
			continue
		}
		return fr
	}
	return nil
}

func entrySigs(states []absState) (held, pins map[string]bool) {
	held = make(map[string]bool)
	pins = make(map[string]bool)
	for _, s := range states {
		for _, h := range s.held {
			held[h.key+"@"+itoa(int(h.pos))] = true
		}
		for _, p := range s.pins {
			pins[p.key+"@"+itoa(int(p.pos))] = true
		}
	}
	return held, pins
}

// exec symbolically executes one statement, returning the states that
// flow past it.
func (ex *execEngine) exec(stmt ast.Stmt, in []absState, frames []*execFrame) []absState {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return ex.execBlock(s, in, frames)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			out, handled := ex.execCall(call, nil, in)
			if handled {
				for _, arg := range call.Args {
					ex.collectFuncLits(arg)
				}
				return out
			}
		}
		ex.collectFuncLits(s.X)
		return in

	case *ast.DeferStmt:
		if recv, method, isLock := trylockMethod(ex.pass.Info, s.Call); isLock && method == "Unlock" {
			out := make([]absState, 0, len(in))
			for _, st := range in {
				ns := st.clone()
				ns.deferred = append(ns.deferred, exprKey(recv))
				out = append(out, ns)
			}
			return out
		}
		if recv, method, isMem := memMethod(ex.pass.Info, s.Call); isMem && method == "Unpin" {
			out := make([]absState, 0, len(in))
			for _, st := range in {
				ns := st.clone()
				ns.defUnpin = append(ns.defUnpin, exprKey(recv))
				out = append(out, ns)
			}
			return out
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure that unlocks or unpins on behalf of
			// the enclosing function registers those keys as deferred.
			unlockKeys, unpinKeys := deferredReleaseKeys(ex.pass, lit)
			ex.queue = append(ex.queue, lit)
			if len(unlockKeys) > 0 || len(unpinKeys) > 0 {
				out := make([]absState, 0, len(in))
				for _, st := range in {
					ns := st.clone()
					ns.deferred = append(ns.deferred, unlockKeys...)
					ns.defUnpin = append(ns.defUnpin, unpinKeys...)
					out = append(out, ns)
				}
				return out
			}
			return in
		}
		// A deferred call to a helper whose summary releases locks or
		// unpins guards registers those effects as deferred.
		if ex.prog != nil {
			if sum, _ := ex.prog.summaryAndKey(ex.pass, s.Call); sum != nil && (len(sum.releases) > 0 || len(sum.unpinsParams) > 0) {
				bind := newSlotBinding(s.Call, nil)
				out := make([]absState, 0, len(in))
				for _, st := range in {
					ns := st.clone()
					for _, sl := range sum.releases {
						if key, ok := bind.resolve(sl); ok {
							ns.deferred = append(ns.deferred, key)
						}
					}
					for _, idx := range sum.unpinsParams {
						if key, ok := bind.resolve(slot{kind: slotParam, index: idx}); ok {
							ns.defUnpin = append(ns.defUnpin, key)
						}
					}
					out = append(out, ns)
				}
				return out
			}
		}
		ex.collectFuncLits(s.Call)
		return in

	case *ast.IfStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		t, f := ex.evalCond(s.Cond, in)
		thenOut := ex.execBlock(s.Body, t, frames)
		elseOut := f
		if s.Else != nil {
			elseOut = ex.exec(s.Else, f, frames)
		}
		return mergeStates(thenOut, elseOut)

	case *ast.ForStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		frame := &execFrame{isLoop: true}
		frame.entryHeld, frame.entryPin = entrySigs(in)
		bodyIn, exit := in, []absState(nil)
		if s.Cond != nil {
			bodyIn, exit = ex.evalCond(s.Cond, in)
		}
		bodyOut := ex.execBlock(s.Body, bodyIn, append(frames, frame))
		if s.Post != nil {
			bodyOut = ex.exec(s.Post, bodyOut, frames)
		}
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, s.Body.End())
		}
		return mergeStates(exit, frame.breaks)

	case *ast.RangeStmt:
		ex.collectFuncLits(s.X)
		frame := &execFrame{isLoop: true}
		frame.entryHeld, frame.entryPin = entrySigs(in)
		bodyOut := ex.execBlock(s.Body, in, append(frames, frame))
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, s.Body.End())
		}
		return mergeStates(in, frame.breaks) // zero iterations possible

	case *ast.SwitchStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		ex.collectFuncLits(s.Tag)
		return ex.execClauses(s.Body, in, frames)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		return ex.execClauses(s.Body, in, frames)

	case *ast.SelectStmt:
		return ex.execClauses(s.Body, in, frames)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ex.collectFuncLits(r)
		}
		for _, st := range in {
			ex.recordExit(st, s.Pos(), s)
		}
		return nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if fr := innermost(frames, label, false); fr != nil {
				fr.breaks = append(fr.breaks, in...)
			}
			return nil
		case token.CONTINUE:
			if fr := innermost(frames, label, true); fr != nil {
				for _, st := range in {
					ex.checkIterEnd(st, fr, s.Pos())
				}
			}
			return nil
		default: // goto, fallthrough: abandon path tracking
			return nil
		}

	case *ast.LabeledStmt:
		// Attach the label to the statement's own frame by executing
		// it with a wrapper: loops read it via the frames stack.
		return ex.execLabeled(s, in, frames)

	case *ast.GoStmt:
		ex.collectFuncLits(s.Call)
		return in

	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				out, handled := ex.execCall(call, s.Lhs, in)
				if handled {
					for _, arg := range call.Args {
						ex.collectFuncLits(arg)
					}
					return out
				}
			}
		}
		for _, r := range s.Rhs {
			ex.collectFuncLits(r)
		}
		return in

	case *ast.DeclStmt:
		ex.collectFuncLits(s)
		return in

	case *ast.SendStmt:
		// The sent value can itself acquire: `ch <- l.LockContended()`
		// hands the lock to whoever reads the channel.
		if call, ok := s.Value.(*ast.CallExpr); ok {
			if out, handled := ex.execCall(call, nil, in); handled {
				for _, arg := range call.Args {
					ex.collectFuncLits(arg)
				}
				return out
			}
		}
		ex.collectFuncLits(s.Value)
		return in

	case *ast.IncDecStmt, *ast.EmptyStmt:
		ex.collectFuncLits(stmt)
		return in
	}
	ex.collectFuncLits(stmt)
	return in
}

// execLabeled executes a labeled loop so that labeled break/continue
// resolve to its frame.
func (ex *execEngine) execLabeled(s *ast.LabeledStmt, in []absState, frames []*execFrame) []absState {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		if inner.Init != nil {
			in = ex.exec(inner.Init, in, frames)
		}
		frame := &execFrame{isLoop: true, label: s.Label.Name}
		frame.entryHeld, frame.entryPin = entrySigs(in)
		bodyIn, exit := in, []absState(nil)
		if inner.Cond != nil {
			bodyIn, exit = ex.evalCond(inner.Cond, in)
		}
		bodyOut := ex.execBlock(inner.Body, bodyIn, append(frames, frame))
		if inner.Post != nil {
			bodyOut = ex.exec(inner.Post, bodyOut, frames)
		}
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, inner.Body.End())
		}
		return mergeStates(exit, frame.breaks)
	case *ast.RangeStmt:
		ex.collectFuncLits(inner.X)
		frame := &execFrame{isLoop: true, label: s.Label.Name}
		frame.entryHeld, frame.entryPin = entrySigs(in)
		bodyOut := ex.execBlock(inner.Body, in, append(frames, frame))
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, inner.Body.End())
		}
		return mergeStates(in, frame.breaks)
	default:
		return ex.exec(s.Stmt, in, frames)
	}
}

// execClauses executes the case/comm clauses of a switch or select
// body independently and merges their exits (plus break exits, plus
// the fall-past states when no default clause guarantees entry).
func (ex *execEngine) execClauses(body *ast.BlockStmt, in []absState, frames []*execFrame) []absState {
	frame := &execFrame{}
	var outs [][]absState
	hasDefault := false
	for _, clause := range body.List {
		entry := in
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				entry = ex.exec(c.Comm, entry, frames) // recv/send stmt; no lock effects
			}
			stmts = c.Body
		}
		out := entry
		for _, st := range stmts {
			if len(out) == 0 {
				break
			}
			out = ex.exec(st, out, append(frames, frame))
		}
		outs = append(outs, out)
	}
	if !hasDefault {
		outs = append(outs, in)
	}
	outs = append(outs, frame.breaks)
	return mergeStates(outs...)
}

// deferredReleaseKeys returns the receiver keys of every trylock
// Unlock call and every guard Unpin call in a deferred closure body.
func deferredReleaseKeys(pass *Pass, lit *ast.FuncLit) (unlocks, unpins []string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, isLock := trylockMethod(pass.Info, call); isLock && method == "Unlock" {
			unlocks = append(unlocks, exprKey(recv))
		}
		if recv, method, isMem := memMethod(pass.Info, call); isMem && method == "Unpin" {
			unpins = append(unpins, exprKey(recv))
		}
		return true
	})
	return unlocks, unpins
}
