// The interprocedural half of the protocol analyzers: per-function
// summaries, the call graph implied by them, and the worklist fixpoint
// that infers them.
//
// A summary abstracts what a function does to locks and epoch pins in
// terms of its *slots* — receiver, i-th parameter, i-th result — plus a
// selector path ("" for the slot itself, ".lock" for a field of it):
//
//   - acquiresAlways: lock slots held on every exit (core's acquire,
//     lazy's lockWindow, optimistic's lockWindow via result slots);
//   - acquiresOnTrue: for a bool-returning function, lock slots held on
//     every `return true` and on no `return false` — the value-aware
//     try-lock contract of lockNextAt / lockNextAtValue;
//   - releases: lock slots the function unlocks on every exit without
//     having acquired them (unlock helpers);
//   - pinsResults: result indices that carry a still-pinned epoch
//     guard; unpinsParams: parameter indices whose guard the function
//     unpins.
//
// Summaries are inferred by running the symbolic executor (exec.go)
// silently and classifying the exit states; since the executor itself
// applies summaries at call sites, inference iterates to a fixpoint
// (summaries only grow toward the call-depth of the program, so a few
// rounds settle it). Functions whose exit states cannot be expressed
// in slots — locks on locals that never escape, inconsistent branches
// — get no contract and stay opaque: calling them has no tracked
// effect, and the analyzers report their internal leaks directly.
//
// A returns-holding contract is only trusted if some call site in the
// analyzed program actually *consumes* it — uses the bool result as a
// branch condition, binds the returned window, passes resolvable lock
// arguments. An inferred contract nobody consumes is treated as the
// leak it probably is. This is what "verified at call sites" means:
// the helper is checked to uphold the contract (classification), and
// the callers are checked to discharge it (consumption plus the
// caller-side release obligation the executor tracks).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A slotKind says which part of a function's signature a slot names.
type slotKind int

const (
	slotRecv slotKind = iota
	slotParam
	slotResult
)

// A slot names a lock (or guard) reachable from a function's signature:
// the receiver, a parameter, or a result, plus a selector path.
type slot struct {
	kind  slotKind
	index int
	path  string // "" or a selector path like ".lock" or "[0].lock"
}

func (s slot) describe() string {
	switch s.kind {
	case slotRecv:
		return "the receiver's " + strings.TrimPrefix(s.path, ".")
	case slotParam:
		return "parameter " + itoa(s.index) + "'s " + strings.TrimPrefix(s.path, ".")
	default:
		return "result " + itoa(s.index) + "'s " + strings.TrimPrefix(s.path, ".")
	}
}

func describeSlots(slots []slot) string {
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = s.describe()
	}
	return strings.Join(parts, " and ")
}

// A funcSummary is the inferred lock/pin contract of one function.
type funcSummary struct {
	// lockOK reports whether the exits were classifiable at all; when
	// false the acquire/release slices are nil and locksafe reports the
	// function's exit-held locks directly.
	lockOK         bool
	acquiresAlways []slot // in acquisition order (lockorder depends on it)
	acquiresOnTrue []slot
	releases       []slot

	pinsOK       bool
	pinsResults  []int
	unpinsParams []int
}

func slotsEqual(a, b []slot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sumEqual(a, b *funcSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.lockOK == b.lockOK && a.pinsOK == b.pinsOK &&
		slotsEqual(a.acquiresAlways, b.acquiresAlways) &&
		slotsEqual(a.acquiresOnTrue, b.acquiresOnTrue) &&
		slotsEqual(a.releases, b.releases) &&
		intsEqual(a.pinsResults, b.pinsResults) &&
		intsEqual(a.unpinsParams, b.unpinsParams)
}

// hasLockContract reports whether the summary carries a non-empty
// returns-holding obligation that call sites must discharge.
func (s *funcSummary) hasLockContract() bool {
	return s != nil && s.lockOK && (len(s.acquiresAlways) > 0 || len(s.acquiresOnTrue) > 0)
}

// A progFunc is one analyzable function declaration.
type progFunc struct {
	pkg  *Pkg
	decl *ast.FuncDecl
	key  string
}

// A Program is the interprocedural context shared by every analyzer of
// one Run: the indexed function declarations, their inferred
// summaries, which contracts are consumed somewhere, and the fields
// accessed through sync/atomic (for atomicmix).
type Program struct {
	pkgs      []*Pkg
	fns       []*progFunc
	byKey     map[string]*progFunc
	summaries map[string]*funcSummary
	consumed  map[string]bool

	// atomicFields maps "pkg|Type|field" to the position of one
	// sync/atomic access of that field.
	atomicFields map[string]token.Position
}

// memPkgSuffix matches this module's epoch-reclamation package.
const memPkgSuffix = "internal/mem"

// isIntrinsicLockDecl reports whether fd implements one of the trylock
// package's acquisition primitives. Their bodies ARE the lock
// implementation — the analyzers model them as intrinsics at call
// sites and skip the bodies (a spin loop around TryLock would
// otherwise read as an unreleased acquisition).
func isIntrinsicLockDecl(pkgPath string, fd *ast.FuncDecl) bool {
	if !strings.HasSuffix(pkgPath, trylockPkgSuffix) || fd.Recv == nil {
		return false
	}
	switch fd.Name.Name {
	case "Lock", "TryLock", "Unlock", "LockContended":
	default:
		return false
	}
	switch recvTypeName(fd) {
	case "SpinLock", "MutexLock":
		return true
	}
	return false
}

// recvTypeName extracts the receiver's type name from a declaration.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver Arena[T]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// funcKeyOfDecl builds the cross-package identity of a declaration.
// Packages are type-checked in separate universes, so identity is by
// (package path, receiver type name, function name) strings.
func funcKeyOfDecl(pkgPath string, fd *ast.FuncDecl) string {
	return pkgPath + "|" + recvTypeName(fd) + "|" + fd.Name.Name
}

// funcKeyOfCall resolves the callee of a call to the same identity, or
// "" if the callee is not a statically-known function.
func funcKeyOfCall(info *types.Info, call *ast.CallExpr) string {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr: // explicit instantiation f[T](...)
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	recvName := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			recvName = named.Obj().Name()
		} else {
			return "" // interface or otherwise dynamic dispatch
		}
	}
	return fn.Pkg().Path() + "|" + recvName + "|" + fn.Name()
}

// summaryAndKey resolves a call site to the callee's inferred summary.
func (prog *Program) summaryAndKey(pass *Pass, call *ast.CallExpr) (*funcSummary, string) {
	key := funcKeyOfCall(pass.Info, call)
	if key == "" {
		return nil, ""
	}
	return prog.summaries[key], key
}

// A slotBinding maps a callee's slots to the caller's expressions at
// one call site: the receiver to the selector base, parameters to
// arguments, results to assignment targets.
type slotBinding struct {
	recvKey string
	argKeys []string
	lhsKeys []string
}

func newSlotBinding(call *ast.CallExpr, lhs []ast.Expr) slotBinding {
	b := slotBinding{}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		b.recvKey = bindableKey(sel.X)
	}
	for _, a := range call.Args {
		b.argKeys = append(b.argKeys, bindableKey(a))
	}
	for _, l := range lhs {
		b.lhsKeys = append(b.lhsKeys, bindableKey(l))
	}
	return b
}

// resolve renders a callee slot in the caller's key space, reporting
// false when the binding expression is absent or not a trackable shape
// (a literal argument, a discarded result, a blank identifier).
func (b slotBinding) resolve(sl slot) (string, bool) {
	var base string
	switch sl.kind {
	case slotRecv:
		base = b.recvKey
	case slotParam:
		if sl.index < len(b.argKeys) {
			base = b.argKeys[sl.index]
		}
	case slotResult:
		if sl.index < len(b.lhsKeys) {
			base = b.lhsKeys[sl.index]
		}
	}
	if base == "" || base == "_" {
		return "", false
	}
	return base + sl.path, true
}

// inferRuns is the worklist bound: summaries can only deepen along call
// chains, which in this codebase are two or three frames; ten rounds is
// a generous ceiling.
const inferRuns = 10

// inferAnalyzer is the pseudo-analyzer summary inference runs under
// (its diagnostics are discarded).
var inferAnalyzer = &Analyzer{Name: "infer", Doc: "internal summary inference"}

// BuildProgram indexes every function declaration of pkgs, infers
// lock/pin summaries to a fixpoint, records which contracts are
// consumed by some call site, and collects the sync/atomic field-access
// inventory. It is run once per Run, before any analyzer.
func BuildProgram(pkgs []*Pkg) *Program {
	prog := &Program{
		pkgs:         pkgs,
		byKey:        make(map[string]*progFunc),
		summaries:    make(map[string]*funcSummary),
		consumed:     make(map[string]bool),
		atomicFields: make(map[string]token.Position),
	}
	for _, pkg := range pkgs {
		inMem := strings.HasSuffix(pkg.Types.Path(), memPkgSuffix)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// The trylock primitives and the mem package's own
				// internals are modeled as intrinsics at call sites;
				// summarizing their bodies would double-count.
				if isIntrinsicLockDecl(pkg.Types.Path(), fd) || inMem {
					continue
				}
				pf := &progFunc{pkg: pkg, decl: fd, key: funcKeyOfDecl(pkg.Types.Path(), fd)}
				prog.fns = append(prog.fns, pf)
				prog.byKey[pf.key] = pf
			}
		}
	}

	for round := 0; round < inferRuns; round++ {
		changed := false
		for _, pf := range prog.fns {
			sum := prog.infer(pf)
			if !sumEqual(prog.summaries[pf.key], sum) {
				prog.summaries[pf.key] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Consumption pass: one silent execution per function with the
	// final summaries, marking every contract some call site discharges.
	for _, pf := range prog.fns {
		ex := newExecEngine(prog.scratchPass(pf.pkg), prog)
		ex.noteConsume = true
		ex.run(pf.decl, pf.decl.Body)
		for i := 0; i < len(ex.queue); i++ {
			lit := ex.queue[i]
			sub := newExecEngine(prog.scratchPass(pf.pkg), prog)
			sub.noteConsume = true
			sub.run(nil, lit.Body)
			ex.queue = append(ex.queue, sub.queue...)
		}
	}

	prog.collectAtomicFields()
	return prog
}

// scratchPass builds a throwaway Pass for silent engine runs.
func (prog *Program) scratchPass(pkg *Pkg) *Pass {
	var scratch []Diagnostic
	return &Pass{
		Analyzer:   inferAnalyzer,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		ImportPath: pkg.ImportPath,
		Prog:       prog,
		diags:      &scratch,
	}
}

// infer runs the executor silently over one function and classifies
// its exits into a summary.
func (prog *Program) infer(pf *progFunc) *funcSummary {
	ex := newExecEngine(prog.scratchPass(pf.pkg), prog)
	exits := ex.run(pf.decl, pf.decl.Body)
	return classifyExits(pf.decl, exits)
}

// declSlotNames extracts the receiver and parameter names of fd.
func declSlotNames(fd *ast.FuncDecl) (recvName string, paramNames []string) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName = fd.Recv.List[0].Names[0].Name
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				paramNames = append(paramNames, "")
				continue
			}
			for _, n := range f.Names {
				paramNames = append(paramNames, n.Name)
			}
		}
	}
	return recvName, paramNames
}

// matchPrefix reports whether key denotes something reachable from the
// variable name (key == name, or name followed by a selector or index),
// returning the path suffix.
func matchPrefix(key, name string) (string, bool) {
	if name == "" || name == "_" {
		return "", false
	}
	if key == name {
		return "", true
	}
	if strings.HasPrefix(key, name) {
		rest := key[len(name):]
		if rest[0] == '.' || rest[0] == '[' {
			return rest, true
		}
	}
	return "", false
}

// validPath accepts selector/index paths the call-site binder can
// re-render ("‹expr@N›" position keys and call suffixes cannot be).
func validPath(path string) bool {
	for _, r := range path {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '[' || r == ']' || r == '_':
		default:
			return false
		}
	}
	return true
}

// keyToSlot maps one held-lock key at one exit to a signature slot.
func keyToSlot(key, recvName string, paramNames, resultKeys []string) (slot, bool) {
	if path, ok := matchPrefix(key, recvName); ok && validPath(path) {
		return slot{kind: slotRecv, path: path}, true
	}
	for i, p := range paramNames {
		if path, ok := matchPrefix(key, p); ok && validPath(path) {
			return slot{kind: slotParam, index: i, path: path}, true
		}
	}
	for i, rk := range resultKeys {
		if rk == "" {
			continue
		}
		if path, ok := matchPrefix(key, rk); ok && validPath(path) {
			return slot{kind: slotResult, index: i, path: path}, true
		}
	}
	return slot{}, false
}

// slotSetEqual compares two slot sets ignoring order.
func slotSetEqual(a, b []slot) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, s := range a {
		for i, t := range b {
			if !used[i] && s == t {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// classifyExits turns the executor's exit records into a summary.
func classifyExits(fd *ast.FuncDecl, exits []exitRec) *funcSummary {
	recvName, paramNames := declSlotNames(fd)
	sum := &funcSummary{}

	// Lock contract: every held lock at every exit must map to a slot.
	type exitClass struct {
		rec   exitRec
		slots []slot
	}
	classes := make([]exitClass, 0, len(exits))
	expressible := true
	for _, rec := range exits {
		ec := exitClass{rec: rec}
		for _, h := range rec.held {
			sl, ok := keyToSlot(h.key, recvName, paramNames, rec.resultKeys)
			if !ok {
				expressible = false
				break
			}
			ec.slots = append(ec.slots, sl)
		}
		if !expressible {
			break
		}
		classes = append(classes, ec)
	}

	if expressible && len(classes) > 0 {
		allEqual := true
		for _, ec := range classes[1:] {
			if !slotSetEqual(classes[0].slots, ec.slots) {
				allEqual = false
				break
			}
		}
		isBool := false
		for _, ec := range classes {
			if ec.rec.result != resultNone {
				isBool = true
			}
		}
		switch {
		case allEqual:
			sum.lockOK = true
			sum.acquiresAlways = classes[0].slots
		case isBool:
			// The value-aware try-lock shape: held on every literal
			// true exit, empty on every false exit, no unclassifiable
			// exits.
			var onTrue []slot
			ok := true
			haveTrue := false
			for _, ec := range classes {
				switch ec.rec.result {
				case resultTrue:
					if !haveTrue {
						onTrue, haveTrue = ec.slots, true
					} else if !slotSetEqual(onTrue, ec.slots) {
						ok = false
					}
				default: // false, unknown, or a non-bool fall-off
					if len(ec.slots) != 0 {
						ok = false
					}
				}
			}
			if ok && haveTrue && len(onTrue) > 0 {
				sum.lockOK = true
				sum.acquiresOnTrue = onTrue
			}
		}
	} else if expressible {
		sum.lockOK = true // no exits recorded (e.g. infinite loop): vacuous
	}

	// Foreign releases: unlocked-without-holding keys agreed on by all
	// exits, expressible via receiver/parameters.
	if len(exits) > 0 {
		var rel []slot
		ok := true
		for i, rec := range exits {
			var slots []slot
			for _, key := range rec.relForeign {
				sl, found := keyToSlot(key, recvName, paramNames, nil)
				if !found || sl.kind == slotResult {
					ok = false
					break
				}
				slots = append(slots, sl)
			}
			if !ok {
				break
			}
			if i == 0 {
				rel = slots
			} else if !slotSetEqual(rel, slots) {
				ok = false
				break
			}
		}
		if ok {
			sum.releases = rel
		}
	}

	// Pin contract: active pins at exits must ride out through results;
	// foreign unpins must be parameter guards, agreed on by all exits.
	sum.pinsOK = true
	if len(exits) > 0 {
		var pinsRes []int
		var unpins []int
		for i, rec := range exits {
			var thisPins []int
			for _, p := range rec.pins {
				matched := -1
				for ri, rk := range rec.resultKeys {
					if rk != "" && rk == p.key {
						matched = ri
						break
					}
				}
				if matched < 0 {
					sum.pinsOK = false
					break
				}
				thisPins = append(thisPins, matched)
			}
			var thisUnpins []int
			for _, key := range rec.unpForeign {
				sl, found := keyToSlot(key, recvName, paramNames, nil)
				if !found || sl.kind != slotParam || sl.path != "" {
					sum.pinsOK = false
					break
				}
				thisUnpins = append(thisUnpins, sl.index)
			}
			if !sum.pinsOK {
				break
			}
			if i == 0 {
				pinsRes, unpins = thisPins, thisUnpins
			} else if !intsEqual(pinsRes, thisPins) || !intsEqual(unpins, thisUnpins) {
				sum.pinsOK = false
				break
			}
		}
		if sum.pinsOK {
			sum.pinsResults = pinsRes
			sum.unpinsParams = unpins
		}
	}

	return sum
}

// collectAtomicFields records every struct field whose address is
// passed to a sync/atomic function anywhere in the program, keyed
// "pkg|Type|field" — the inventory the atomicmix analyzer checks plain
// accesses against.
func (prog *Program) collectAtomicFields() {
	for _, pkg := range prog.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isSyncAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					sel, okSel := addressedField(arg)
					if !okSel {
						continue
					}
					if key := fieldKeyOf(pkg.Info, sel); key != "" {
						if _, seen := prog.atomicFields[key]; !seen {
							prog.atomicFields[key] = pkg.Fset.Position(sel.Pos())
						}
					}
				}
				return true
			})
		}
	}
}

// isSyncAtomicCall reports whether call invokes a package-level
// function of sync/atomic (the function-style API, e.g.
// atomic.AddInt64; the typed API's methods need no cross-checking —
// the field's type already forbids plain access).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedField unwraps &x.f to the field selector.
func addressedField(arg ast.Expr) (*ast.SelectorExpr, bool) {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, false
	}
	sel, ok := un.X.(*ast.SelectorExpr)
	return sel, ok
}

// fieldKeyOf identifies the struct field a selector denotes, as
// "pkg|Type|field", or "" when the selector is not a named struct's
// field access.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) string {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	t := selection.Recv()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "|" + named.Obj().Name() + "|" + sel.Sel.Name
}
