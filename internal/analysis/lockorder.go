// The lockorder analyzer: node locks are acquired in ascending list
// position, so the hand-over-hand and two-window protocols are
// deadlock-free by construction.
//
// Every lock-based algorithm in this repository orders its
// acquisitions by list position: the Lazy list and the optimistic list
// lock prev before curr, VBL's remove locks prev (value-validated)
// before curr (identity-validated), and the skip lists lock a
// predecessor before the victim it guards. Two writers that both
// respect the order can never hold each other's next lock — the
// classical total-order argument the paper's Theorem 3 leans on. One
// call site that locks curr while holding a later node's predecessor
// the other way round is a latent deadlock no stress test reliably
// triggers.
//
// The analyzer assigns a coarse list-position rank to each lock key
// from the variable naming discipline the codebase already follows —
// prev/pred/head rank before curr/succ/victim — and reports any
// acquisition of an earlier-ranked lock while a later-ranked lock on a
// different node is held. Interprocedural: acquisitions performed by
// summarized helpers (lockNextAt, lockWindow) are attributed to the
// call site with the callee's slots rebound, so the order is checked
// across function boundaries. Unnamed or unconventionally named locks
// are unconstrained.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockOrder is the acquisition-order analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "node locks are acquired in ascending list position (prev before curr)",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIntrinsicLockDecl(pass.Pkg.Path(), fd) {
				continue
			}
			queue := runLockOrderBody(pass, fd, fd.Body)
			for i := 0; i < len(queue); i++ {
				queue = append(queue, runLockOrderBody(pass, nil, queue[i].Body)...)
			}
		}
	}
}

// runLockOrderBody executes one body with the ordering hook installed
// and returns the function literals found inside for separate runs.
func runLockOrderBody(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt) []*ast.FuncLit {
	ex := newExecEngine(pass, pass.Prog)
	ex.onAcquire = func(st absState, key string, pos token.Pos) {
		arr, idx, leveled := levelIndex(key)
		rank, base, ranked := lockRank(key)
		if !ranked && !leveled {
			return
		}
		for _, h := range st.held {
			if leveled {
				if hArr, hIdx, ok := levelIndex(h.key); ok && hArr == arr {
					if hIdx > idx {
						ex.reportOnce(pos,
							"%s (level %d) is acquired while already holding %s (level %d); per-level predecessor locks must be taken bottom-up — level 0 first, the skip lists' decreasing-key global order — or two tower updates can deadlock",
							key, idx, h.key, hIdx)
					}
					continue
				}
			}
			hRank, hBase, hRanked := lockRank(h.key)
			if !ranked || !hRanked || hBase == base {
				continue
			}
			if hRank > rank {
				ex.reportOnce(pos,
					"%s (list position: %s) is acquired while already holding %s (list position: %s); node locks must be taken in ascending list position — prev before curr — or two updates can deadlock",
					key, rankName(rank), h.key, rankName(hRank))
			}
		}
	}
	ex.run(fd, body)
	return ex.queue
}

// rankPrev/rankCurr are the two coarse list positions the naming
// discipline distinguishes.
const (
	rankPrev = 0
	rankCurr = 1
)

func rankName(r int) string {
	if r == rankPrev {
		return "predecessor"
	}
	return "successor"
}

// levelIndex parses a per-level lock key of the shape base[N].lock
// with a literal integer index, returning the array name and the
// level. The skip lists' lockPreds discipline acquires the distinct
// per-level predecessors of one tower bottom-up (level 0 first) —
// which is decreasing-key order, the global order that keeps two
// concurrent tower updates deadlock-free — so literal-indexed
// acquisitions into the same array are ranked by level. Variable
// indices (preds[l]) stay unconstrained: the loop structure, not the
// key, carries their order.
func levelIndex(key string) (arr string, idx int, ok bool) {
	base := key
	if i := strings.LastIndex(base, "."); i >= 0 {
		base = base[:i]
	}
	if !strings.HasSuffix(base, "]") {
		return "", 0, false
	}
	open := strings.LastIndex(base, "[")
	if open < 1 {
		return "", 0, false
	}
	arr, lit := base[:open], base[open+1:len(base)-1]
	if lit == "" {
		return "", 0, false
	}
	for _, r := range lit {
		if r < '0' || r > '9' {
			return "", 0, false
		}
		idx = idx*10 + int(r-'0')
	}
	return arr, idx, true
}

// lockRank assigns a list-position rank to a lock key from its naming:
// the node expression (the key minus its final selector, e.g. "prev"
// of "prev.lock", "preds[0]" of "preds[0].lock") ranks as a
// predecessor when named prev/pred/head/anchor (a batch pass's anchor
// is the predecessor of every remaining key's window, so a helper that
// re-locks a lower-ranked node after it has held an anchor is the same
// ascending-position violation) and as a successor when named
// curr/succ/victim. Everything else is unconstrained.
func lockRank(key string) (rank int, base string, ok bool) {
	base = key
	if i := strings.LastIndex(base, "."); i >= 0 {
		base = base[:i]
	}
	lower := strings.ToLower(base)
	isPrev := strings.Contains(lower, "prev") || strings.Contains(lower, "pred") || strings.Contains(lower, "head") ||
		strings.Contains(lower, "anchor")
	isCurr := strings.Contains(lower, "curr") || strings.Contains(lower, "succ") || strings.Contains(lower, "victim")
	switch {
	case isPrev && !isCurr:
		return rankPrev, base, true
	case isCurr && !isPrev:
		return rankCurr, base, true
	}
	return 0, base, false
}
