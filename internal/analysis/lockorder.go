// The lockorder analyzer: node locks are acquired in ascending list
// position, so the hand-over-hand and two-window protocols are
// deadlock-free by construction.
//
// Every lock-based algorithm in this repository orders its
// acquisitions by list position: the Lazy list and the optimistic list
// lock prev before curr, VBL's remove locks prev (value-validated)
// before curr (identity-validated), and the skip lists lock a
// predecessor before the victim it guards. Two writers that both
// respect the order can never hold each other's next lock — the
// classical total-order argument the paper's Theorem 3 leans on. One
// call site that locks curr while holding a later node's predecessor
// the other way round is a latent deadlock no stress test reliably
// triggers.
//
// The analyzer assigns a coarse list-position rank to each lock key
// from the variable naming discipline the codebase already follows —
// prev/pred/head rank before curr/succ/victim — and reports any
// acquisition of an earlier-ranked lock while a later-ranked lock on a
// different node is held. Interprocedural: acquisitions performed by
// summarized helpers (lockNextAt, lockWindow) are attributed to the
// call site with the callee's slots rebound, so the order is checked
// across function boundaries. Unnamed or unconventionally named locks
// are unconstrained.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockOrder is the acquisition-order analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "node locks are acquired in ascending list position (prev before curr)",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIntrinsicLockDecl(pass.Pkg.Path(), fd) {
				continue
			}
			queue := runLockOrderBody(pass, fd, fd.Body)
			for i := 0; i < len(queue); i++ {
				queue = append(queue, runLockOrderBody(pass, nil, queue[i].Body)...)
			}
		}
	}
}

// runLockOrderBody executes one body with the ordering hook installed
// and returns the function literals found inside for separate runs.
func runLockOrderBody(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt) []*ast.FuncLit {
	ex := newExecEngine(pass, pass.Prog)
	ex.onAcquire = func(st absState, key string, pos token.Pos) {
		rank, base, ranked := lockRank(key)
		if !ranked {
			return
		}
		for _, h := range st.held {
			hRank, hBase, hRanked := lockRank(h.key)
			if !hRanked || hBase == base {
				continue
			}
			if hRank > rank {
				ex.reportOnce(pos,
					"%s (list position: %s) is acquired while already holding %s (list position: %s); node locks must be taken in ascending list position — prev before curr — or two updates can deadlock",
					key, rankName(rank), h.key, rankName(hRank))
			}
		}
	}
	ex.run(fd, body)
	return ex.queue
}

// rankPrev/rankCurr are the two coarse list positions the naming
// discipline distinguishes.
const (
	rankPrev = 0
	rankCurr = 1
)

func rankName(r int) string {
	if r == rankPrev {
		return "predecessor"
	}
	return "successor"
}

// lockRank assigns a list-position rank to a lock key from its naming:
// the node expression (the key minus its final selector, e.g. "prev"
// of "prev.lock", "preds[0]" of "preds[0].lock") ranks as a
// predecessor when named prev/pred/head/anchor (a batch pass's anchor
// is the predecessor of every remaining key's window, so a helper that
// re-locks a lower-ranked node after it has held an anchor is the same
// ascending-position violation) and as a successor when named
// curr/succ/victim. Everything else is unconstrained.
func lockRank(key string) (rank int, base string, ok bool) {
	base = key
	if i := strings.LastIndex(base, "."); i >= 0 {
		base = base[:i]
	}
	lower := strings.ToLower(base)
	isPrev := strings.Contains(lower, "prev") || strings.Contains(lower, "pred") || strings.Contains(lower, "head") ||
		strings.Contains(lower, "anchor")
	isCurr := strings.Contains(lower, "curr") || strings.Contains(lower, "succ") || strings.Contains(lower, "victim")
	switch {
	case isPrev && !isCurr:
		return rankPrev, base, true
	case isCurr && !isPrev:
		return rankCurr, base, true
	}
	return 0, base, false
}
