// The failpointhygiene analyzer: failpoint sites must sit behind the
// enabled-guard — everywhere, not just in loops.
//
// The chaos layer (internal/failpoint) makes the same zero-cost
// promise as internal/obs: a detached failpoint set is one predictable
// nil-check branch, and the nofailpoint build tag compiles the sites
// away outright. Both properties rest on every call to Set.Do or
// Set.Fail in algorithm code sitting behind the guard idiom
//
//	if fp := s.fps; failpoint.On(fp) {
//		if fp.Fail(failpoint.SiteVBLLockNextAt, v) { ... }
//	}
//
// An unguarded site call dereferences a possibly-nil pointer and
// survives the site-free build. Unlike probes (where only loops are
// hot enough to police), every failpoint site marks a paper-relevant
// decision point, so the analyzer flags unguarded Do/Fail calls
// anywhere in non-test code outside the failpoint package itself.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// failpointPkgSuffix matches the module's fault-injection package
// whether the import path is "listset/internal/failpoint" or a
// testdata variant.
const failpointPkgSuffix = "internal/failpoint"

// FailpointHygiene is the failpoint-guard hygiene analyzer.
var FailpointHygiene = &Analyzer{
	Name: "failpointhygiene",
	Doc:  "failpoint site calls (Set.Do, Set.Fail) sit behind the failpoint.On enabled-guard",
	Run:  runFailpointHygiene,
}

func runFailpointHygiene(pass *Pass) {
	if strings.HasSuffix(pass.ImportPath, failpointPkgSuffix) {
		return // the failpoint package exercises its own sites unguarded by design
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests drive sites directly (pause handles, forced hits)
		}
		// Walk with an explicit ancestor stack: ast.Inspect signals a
		// pop with a nil node.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				if method, isSite := failpointSiteCall(pass, call); isSite {
					checkFailpointCall(pass, stack, call, method)
				}
			}
			return true
		})
	}
}

// failpointSiteCall reports whether call is failpoint Set.Do or
// Set.Fail and returns the method name.
func failpointSiteCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	if method != "Do" && method != "Fail" {
		return "", false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	named := namedPkgType(selection.Recv(), failpointPkgSuffix)
	if named == nil || named.Obj().Name() != "Set" {
		return "", false
	}
	return method, true
}

// checkFailpointCall walks the ancestor stack of one site call
// (innermost last) and reports it unless an enabled-guard sits between
// the call and its enclosing function. A guard outside a closure does
// not dominate a call inside it — the closure may escape the guard.
// Two guard positions are recognized: the branch forms of
// guardEnablesPkg, and the short-circuit form the Lazy list uses,
// where the site call sits to the right of failpoint.On in an &&
// chain (`failpoint.On(fp) && ok && fp.Fail(...)`).
func checkFailpointCall(pass *Pass, stack []ast.Node, call *ast.CallExpr, method string) {
	for i := len(stack) - 2; i >= 0; i-- {
		child := stack[i+1]
		switch nn := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			pass.Reportf(call.Pos(), "%s call without the failpoint.On enabled-guard (see internal/failpoint)", method)
			return
		case *ast.BinaryExpr:
			if nn.Op == token.LAND && child == nn.Y && condHasOnCall(pass, nn.X, failpointPkgSuffix) {
				return // short-circuit: On must have returned true first
			}
		case *ast.IfStmt:
			if guardEnablesPkg(pass, nn, child, failpointPkgSuffix) {
				return // the enabled-guard dominates the call
			}
		}
	}
	pass.Reportf(call.Pos(), "%s call without the failpoint.On enabled-guard (see internal/failpoint)", method)
}
