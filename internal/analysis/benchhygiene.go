// The benchhygiene analyzer: benchmark bodies that drive the measured
// loop must call b.ReportAllocs, and must call b.ResetTimer when they
// do setup work first.
//
// Every number this repository publishes (EXPERIMENTS.md, the Figure 1
// and Figure 4 series) comes out of testing.B benchmarks; a benchmark
// that pre-populates a list without resetting the timer folds O(range)
// setup into ns/op, and one that never reports allocations hides the
// per-operation garbage that the paper's GC-reliant reclamation trades
// on. The analyzer scopes itself to the benchmark entry points —
// files named bench_test.go plus every file of the measurement-path
// packages internal/harness and internal/shard — so one-off
// micro-benchmarks elsewhere are not bothered.
//
// A "bench body" is any function or function literal with a
// *testing.B parameter. It is *measuring* when it references b.N or
// calls b.RunParallel. Measuring bodies must call b.ReportAllocs
// (anywhere), and — when any statement precedes the first measuring
// reference other than calls to b's own timer/reporting helpers —
// b.ResetTimer.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// BenchHygiene is the benchmark-hygiene analyzer.
var BenchHygiene = &Analyzer{
	Name: "benchhygiene",
	Doc:  "benchmarks call b.ReportAllocs and b.ResetTimer after setup",
	Run:  runBenchHygiene,
}

func runBenchHygiene(pass *Pass) {
	inScope := strings.HasSuffix(pass.ImportPath, "internal/harness") ||
		strings.HasSuffix(pass.ImportPath, "internal/shard")
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if !inScope && name != "bench_test.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncDecl:
				if nn.Body == nil {
					return true
				}
				if param := benchParam(pass, nn.Type); param != nil {
					checkBenchBody(pass, nn.Name.Pos(), nn.Name.Name, param, nn.Body)
				}
			case *ast.FuncLit:
				if param := benchParam(pass, nn.Type); param != nil {
					checkBenchBody(pass, nn.Pos(), "benchmark closure", param, nn.Body)
				}
			}
			return true
		})
	}
}

// benchParam returns the *testing.B parameter object of ft, if any.
func benchParam(pass *Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !isTestingB(t) {
			continue
		}
		if len(field.Names) > 0 {
			return pass.Info.Defs[field.Names[0]]
		}
	}
	return nil
}

func isTestingB(t types.Type) bool {
	ptr, isPtr := t.(*types.Pointer)
	if !isPtr {
		return false
	}
	named, isNamed := ptr.Elem().(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "B" && obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// checkBenchBody enforces the two hygiene rules on one bench body.
func checkBenchBody(pass *Pass, pos token.Pos, name string, b types.Object, body *ast.BlockStmt) {
	if !nodeMeasures(pass, b, body) {
		return // a driver that only calls b.Run or helpers; nothing measured here
	}
	calls := benchMethodCalls(pass, b, body)
	if !calls["ReportAllocs"] {
		pass.Reportf(pos, "%s measures (references b.N or b.RunParallel) but never calls b.ReportAllocs", name)
	}
	if hasSetupBeforeMeasurement(pass, b, body) && !calls["ResetTimer"] {
		pass.Reportf(pos, "%s does setup before the measured loop but never calls b.ResetTimer", name)
	}
}

// nodeMeasures reports whether n references b.N or calls b.RunParallel
// (with b being the bench parameter object). Nested function literals
// count: a RunParallel body measures on behalf of its enclosing
// benchmark.
func nodeMeasures(pass *Pass, b types.Object, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != b {
			return true
		}
		if sel.Sel.Name == "N" || sel.Sel.Name == "RunParallel" {
			found = true
			return false
		}
		return true
	})
	return found
}

// benchMethodCalls collects the names of b's methods called anywhere
// in body.
func benchMethodCalls(pass *Pass, b types.Object, body *ast.BlockStmt) map[string]bool {
	calls := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == b {
			calls[sel.Sel.Name] = true
		}
		return true
	})
	return calls
}

// hasSetupBeforeMeasurement reports whether any top-level statement of
// body does real work before the first measuring statement. Calls to
// b's own bookkeeping (Helper, ReportAllocs, ResetTimer, StopTimer,
// StartTimer, SetBytes, Cleanup) do not count as setup.
func hasSetupBeforeMeasurement(pass *Pass, b types.Object, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if nodeMeasures(pass, b, stmt) {
			return false
		}
		if isBenchBookkeeping(pass, b, stmt) {
			continue
		}
		return true
	}
	return false
}

// isBenchBookkeeping reports whether stmt is a bare call to one of b's
// own bookkeeping methods.
func isBenchBookkeeping(pass *Pass, b types.Object, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.Info.Uses[id] != b {
		return false
	}
	switch sel.Sel.Name {
	case "Helper", "ReportAllocs", "ResetTimer", "StopTimer", "StartTimer", "SetBytes", "Cleanup", "SetParallelism":
		return true
	}
	return false
}
