package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted message fragments of a // want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want marker: a diagnostic with a message
// containing frag must be reported at exactly file:line.
type expectation struct {
	file string
	line int
	frag string
	hit  bool
}

// parseWants scans every Go file of dir for // want "..." markers.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted fragment", path, pos.Line)
				}
				for _, m := range matches {
					wants = append(wants, &expectation{file: path, line: pos.Line, frag: m[1]})
				}
			}
		}
	}
	return wants
}

// TestAnalyzers runs each analyzer over its seeded-bad corpus and
// asserts it reports exactly the // want-marked file:line diagnostics
// and nothing else.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *Analyzer
	}{
		{"testdata/src/locksafe", LockSafe},
		{"testdata/src/copylock", CopyLock},
		{"testdata/src/valimmutable", ValImmutable},
		{"testdata/src/benchhygiene", BenchHygiene},
		{"testdata/src/obshygiene", ObsHygiene},
		{"testdata/src/failpointhygiene", FailpointHygiene},
		{"testdata/src/hotalloc", HotAlloc},
		{"testdata/src/epochpin", EpochPin},
		{"testdata/src/lockorder", LockOrder},
		{"testdata/src/atomicmix", AtomicMix},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg, err := LoadDir(tc.dir)
			if err != nil {
				t.Fatalf("loading %s: %v", tc.dir, err)
			}
			diags := Run([]*Pkg{pkg}, []*Analyzer{tc.analyzer})
			wants := parseWants(t, tc.dir)

			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.hit || d.Pos.Line != w.line || filepath.Base(d.Pos.Filename) != filepath.Base(w.file) {
						continue
					}
					if strings.Contains(d.Message, w.frag) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.frag)
				}
			}
		})
	}
}

// TestCleanRealPackage runs the whole suite over a real baseline
// package that is known-clean (the Lazy list releases on every path
// without needing suppressions): zero findings expected.
func TestCleanRealPackage(t *testing.T) {
	pkgs, err := Load([]string{"listset/internal/lazy"}, LoadOptions{Tests: false})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestContractRealPackage runs locksafe over the VBL core, whose
// lockNextAt helpers intentionally escape with the lock held. Before
// the interprocedural pass this took //lint:ignore directives; now the
// returns-true-holding contracts are inferred, their consumption by
// Insert/Remove is verified, and zero findings — and zero
// suppressions — must remain.
func TestContractRealPackage(t *testing.T) {
	pkgs, err := Load([]string{"listset/internal/core"}, LoadOptions{Tests: false})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if diags := Run(pkgs, []*Analyzer{LockSafe}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestCrossPackageContracts loads the two-package fixture: helper
// exports a returns-true-holding lock helper, caller consumes it.
// The contract must flow across the package boundary — no finding in
// helper, no finding at the discharging call site, exactly one at the
// leaking one.
func TestCrossPackageContracts(t *testing.T) {
	pkgs, err := Load([]string{"./testdata/src/xpkg/helper", "./testdata/src/xpkg/caller"}, LoadOptions{Tests: false})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	diags := Run(pkgs, []*Analyzer{LockSafe})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != "caller.go" || !strings.Contains(d.Message, "can reach the function exit") {
		t.Errorf("finding landed wrong: %s", d)
	}
	if !strings.Contains(d.Message, "n.Lock") || !strings.Contains(d.Message, "LockIfOK") {
		t.Errorf("finding should name the caller-side lock and the helper: %s", d)
	}
}

// TestEveryAnalyzerFiresOnCorpus locks the registry to its corpora: a
// registered analyzer whose own seeded-bad corpus produces no finding
// is either broken or untested, and either way must not ship.
func TestEveryAnalyzerFiresOnCorpus(t *testing.T) {
	for _, a := range Analyzers() {
		dir := filepath.Join("testdata", "src", a.Name)
		pkg, err := LoadDir(dir)
		if err != nil {
			t.Errorf("%s: no loadable corpus at %s: %v", a.Name, dir, err)
			continue
		}
		fired := false
		for _, d := range Run([]*Pkg{pkg}, []*Analyzer{a}) {
			if d.Analyzer == a.Name {
				fired = true
				break
			}
		}
		if !fired {
			t.Errorf("%s: produced no finding on its own corpus %s", a.Name, dir)
		}
	}
}

// TestParseSuppressions covers the directive grammar: well-formed
// line and file directives parse, a reason is mandatory.
func TestParseSuppressions(t *testing.T) {
	src := `package p

//lint:file-ignore locksafe whole file exempt for the test

func f() {
	//lint:ignore locksafe,copylock two analyzers, one reason
	_ = 1
	//lint:ignore locksafe
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	supps := parseSuppressions(fset, f)
	if len(supps) != 3 {
		t.Fatalf("got %d suppressions, want 3", len(supps))
	}
	if !supps[0].fileWide || !supps[0].analyzers["locksafe"] {
		t.Errorf("file-ignore parsed wrong: %+v", supps[0])
	}
	if supps[1].fileWide || !supps[1].analyzers["locksafe"] || !supps[1].analyzers["copylock"] {
		t.Errorf("line ignore parsed wrong: %+v", supps[1])
	}
	if supps[2].analyzers != nil {
		t.Errorf("reason-less directive should parse as malformed, got %+v", supps[2])
	}
}

// TestDiagnosticString pins the clickable file:line:col format the CI
// gate greps.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "locksafe",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: locksafe: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestExprKey pins the canonical lock keys the locksafe state machine
// matches acquisitions and releases by.
func TestExprKey(t *testing.T) {
	cases := []struct{ src, want string }{
		{"l", "l"},
		{"n.lock", "n.lock"},
		{"preds[0].lock", "preds[0].lock"},
		{"preds[l].lock", "preds[l].lock"},
		{"(*p).lock", "*p.lock"},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := exprKey(e); got != tc.want {
			t.Errorf("exprKey(%s) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

// TestMain keeps go test output quiet about the corpus: nothing —
// it exists so a future -update flag has a home.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

var _ = fmt.Sprintf // keep fmt imported for debugging edits
