// The locksafe analyzer: every successful trylock acquisition must be
// released on every path out of the acquiring function.
//
// This is the code-level half of the paper's deadlock-freedom argument
// (Theorem 3): the value-aware try-lock protocol of Algorithm 2 only
// composes because a failed validation *always* releases the lock
// before restarting the traversal. A leaked lock — the early-return
// bug class in validation failure paths — wedges every later writer of
// that node forever, which no test reliably catches (the stress suite
// just times out). locksafe makes the release obligation mechanical.
//
// The analysis is a path-sensitive symbolic execution over the AST of
// each function body (function literals are analyzed separately): it
// tracks the multiset of held locks per control-flow path, keyed by
// the canonical syntax of the receiver expression ("prev.lock",
// "preds[0].lock"), understands defer x.Unlock(), and recognizes
// TryLock used directly as a branch condition (if x.TryLock(),
// if !x.TryLock(), for !x.TryLock(), and &&/|| combinations).
//
// Reported:
//   - a path from a Lock()/successful TryLock() to a return (or to the
//     end of the function) on which the lock is still held and no
//     matching defer is registered;
//   - a lock acquired inside a loop body that is still held when the
//     iteration ends (leak-per-iteration, or self-deadlock on the next
//     round since SpinLock is not reentrant);
//   - locking a lock that this path already holds (self-deadlock);
//   - a TryLock whose result is not used directly as a branch
//     condition — the acquisition is then untrackable.
//
// Intentional violations — helpers whose contract is "returns true
// with the lock held", cross-goroutine lock transfer in tests — are
// suppressed with //lint:ignore locksafe <why the lock provably gets
// released elsewhere>.
package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockSafe is the lock-release analyzer.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "trylock acquisitions must be released on every path",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeLockBody(pass, fd.Body)
		}
	}
}

// analyzeLockBody runs the symbolic execution on one function body and
// then on every function literal discovered inside it.
func analyzeLockBody(pass *Pass, body *ast.BlockStmt) {
	ex := &lockExec{
		pass:     pass,
		reported: make(map[token.Pos]bool),
		guarded:  make(map[*ast.CallExpr]bool),
	}
	out := ex.execBlock(body, []lockState{{}}, nil)
	for _, s := range out {
		ex.checkRelease(s, body.End())
	}
	ex.flagUnguardedTryLocks(body)
	for _, lit := range ex.queue {
		analyzeLockBody(pass, lit.Body)
	}
}

// A heldLock is one acquisition on the current path.
type heldLock struct {
	key    string
	pos    token.Pos
	method string // "Lock" or "TryLock"
}

// A lockState is the abstract state of one control-flow path: which
// locks are held and which keys have a registered deferred unlock.
type lockState struct {
	held     []heldLock
	deferred []string
}

func (s lockState) clone() lockState {
	return lockState{
		held:     append([]heldLock(nil), s.held...),
		deferred: append([]string(nil), s.deferred...),
	}
}

func (s lockState) holds(key string) bool {
	for _, h := range s.held {
		if h.key == key {
			return true
		}
	}
	return false
}

func (s lockState) isDeferred(key string) bool {
	for _, d := range s.deferred {
		if d == key {
			return true
		}
	}
	return false
}

// sig is a canonical signature for state deduplication.
func (s lockState) sig() string {
	parts := make([]string, 0, len(s.held)+len(s.deferred))
	for _, h := range s.held {
		parts = append(parts, h.key+"@"+itoa(int(h.pos)))
	}
	sort.Strings(parts)
	d := append([]string(nil), s.deferred...)
	sort.Strings(d)
	return strings.Join(parts, ";") + "|" + strings.Join(d, ";")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// maxLockStates caps path explosion; beyond it states are merged by
// truncation (the analysis stays useful but may miss paths in very
// branchy functions — none in this codebase come close).
const maxLockStates = 80

// a lockFrame is one enclosing breakable construct during execution.
type lockFrame struct {
	isLoop    bool
	label     string
	breaks    []lockState
	entryHeld map[string]bool // key@pos of locks held at loop entry
}

type lockExec struct {
	pass     *Pass
	reported map[token.Pos]bool
	guarded  map[*ast.CallExpr]bool
	queue    []*ast.FuncLit
}

func (ex *lockExec) reportOnce(pos token.Pos, format string, args ...any) {
	if ex.reported[pos] {
		return
	}
	ex.reported[pos] = true
	ex.pass.Reportf(pos, format, args...)
}

// checkRelease verifies that a path leaving the function holds no lock
// without a deferred unlock.
func (ex *lockExec) checkRelease(s lockState, exit token.Pos) {
	for _, h := range s.held {
		if s.isDeferred(h.key) {
			continue
		}
		ex.reportOnce(h.pos,
			"%s acquired by %s here can reach the function exit at line %d still held (no Unlock or defer on that path)",
			h.key, h.method, ex.pass.Fset.Position(exit).Line)
	}
}

// checkIterEnd verifies that a loop iteration ends without holding a
// lock it acquired itself (SpinLock is not reentrant, so re-locking on
// the next iteration self-deadlocks; not re-locking leaks one
// acquisition per iteration).
func (ex *lockExec) checkIterEnd(s lockState, frame *lockFrame, at token.Pos) {
	for _, h := range s.held {
		if frame.entryHeld[h.key+"@"+itoa(int(h.pos))] || s.isDeferred(h.key) {
			continue
		}
		ex.reportOnce(h.pos,
			"%s acquired by %s inside this loop is still held when the iteration ends at line %d",
			h.key, h.method, ex.pass.Fset.Position(at).Line)
	}
}

func (ex *lockExec) acquire(states []lockState, key string, pos token.Pos, method string) []lockState {
	out := make([]lockState, 0, len(states))
	for _, s := range states {
		if s.holds(key) {
			ex.reportOnce(pos, "%s is locked while already held on this path (SpinLock is not reentrant: self-deadlock)", key)
			out = append(out, s)
			continue
		}
		ns := s.clone()
		ns.held = append(ns.held, heldLock{key: key, pos: pos, method: method})
		out = append(out, ns)
	}
	return out
}

func release(states []lockState, key string) []lockState {
	out := make([]lockState, 0, len(states))
	for _, s := range states {
		ns := s.clone()
		for i, h := range ns.held {
			if h.key == key {
				ns.held = append(ns.held[:i], ns.held[i+1:]...)
				break
			}
		}
		out = append(out, ns)
	}
	return out
}

// mergeStates concatenates and deduplicates path states, capping the
// total.
func mergeStates(groups ...[]lockState) []lockState {
	var out []lockState
	seen := make(map[string]bool)
	for _, g := range groups {
		for _, s := range g {
			sig := s.sig()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			out = append(out, s)
			if len(out) >= maxLockStates {
				return out
			}
		}
	}
	return out
}

// collectFuncLits queues every function literal under n for separate
// analysis. Literal bodies are otherwise opaque to the enclosing
// function's execution.
func (ex *lockExec) collectFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			ex.queue = append(ex.queue, lit)
			return false
		}
		return true
	})
}

// evalCond evaluates a branch condition, splitting the incoming states
// into those where the condition is true and those where it is false,
// and acquiring locks for TryLock calls used as guards.
func (ex *lockExec) evalCond(cond ast.Expr, in []lockState) (t, f []lockState) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return ex.evalCond(c.X, in)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			t, f = ex.evalCond(c.X, in)
			return f, t
		}
	case *ast.CallExpr:
		if recv, method, ok := trylockMethod(ex.pass.Info, c); ok && method == "TryLock" {
			ex.guarded[c] = true
			return ex.acquire(in, exprKey(recv), c.Pos(), "TryLock"), in
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			xt, xf := ex.evalCond(c.X, in)
			yt, yf := ex.evalCond(c.Y, xt)
			return yt, mergeStates(xf, yf)
		case token.LOR:
			xt, xf := ex.evalCond(c.X, in)
			yt, yf := ex.evalCond(c.Y, xf)
			return mergeStates(xt, yt), yf
		}
	}
	return in, in
}

// flagUnguardedTryLocks reports TryLock calls whose result did not
// flow through a recognized guard (and so whose success path the
// analysis cannot check). Function literals are skipped: they are
// analyzed — and flagged — separately.
func (ex *lockExec) flagUnguardedTryLocks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, isLock := trylockMethod(ex.pass.Info, call); isLock && method == "TryLock" && !ex.guarded[call] {
			ex.reportOnce(call.Pos(),
				"result of %s.TryLock() is not used directly as a branch condition; a successful acquisition here cannot be tracked",
				exprKey(recv))
		}
		return true
	})
}

func (ex *lockExec) execBlock(b *ast.BlockStmt, in []lockState, frames []*lockFrame) []lockState {
	states := in
	for _, stmt := range b.List {
		if len(states) == 0 {
			// Remaining statements are unreachable on every tracked
			// path (e.g. code after an infinite for with returns).
			break
		}
		states = ex.exec(stmt, states, frames)
	}
	return states
}

// innermost returns the innermost frame satisfying pred (matching
// label if given).
func innermost(frames []*lockFrame, label string, loopOnly bool) *lockFrame {
	for i := len(frames) - 1; i >= 0; i-- {
		fr := frames[i]
		if loopOnly && !fr.isLoop {
			continue
		}
		if label != "" && fr.label != label {
			continue
		}
		return fr
	}
	return nil
}

func entryHeldSigs(states []lockState) map[string]bool {
	m := make(map[string]bool)
	for _, s := range states {
		for _, h := range s.held {
			m[h.key+"@"+itoa(int(h.pos))] = true
		}
	}
	return m
}

// exec symbolically executes one statement, returning the states that
// flow past it.
func (ex *lockExec) exec(stmt ast.Stmt, in []lockState, frames []*lockFrame) []lockState {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return ex.execBlock(s, in, frames)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, method, isLock := trylockMethod(ex.pass.Info, call); isLock {
				switch method {
				case "Lock":
					return ex.acquire(in, exprKey(recv), call.Pos(), "Lock")
				case "Unlock":
					return release(in, exprKey(recv))
				}
				return in // bare TryLock: flagged by flagUnguardedTryLocks
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return nil // path ends in a crash; release not required
			}
		}
		ex.collectFuncLits(s.X)
		return in

	case *ast.DeferStmt:
		if recv, method, isLock := trylockMethod(ex.pass.Info, s.Call); isLock && method == "Unlock" {
			out := make([]lockState, 0, len(in))
			for _, st := range in {
				ns := st.clone()
				ns.deferred = append(ns.deferred, exprKey(recv))
				out = append(out, ns)
			}
			return out
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure that unlocks on behalf of the
			// enclosing function registers those keys as deferred.
			keys := deferredUnlockKeys(ex.pass, lit)
			ex.queue = append(ex.queue, lit)
			if len(keys) > 0 {
				out := make([]lockState, 0, len(in))
				for _, st := range in {
					ns := st.clone()
					ns.deferred = append(ns.deferred, keys...)
					out = append(out, ns)
				}
				return out
			}
			return in
		}
		ex.collectFuncLits(s.Call)
		return in

	case *ast.IfStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		t, f := ex.evalCond(s.Cond, in)
		thenOut := ex.execBlock(s.Body, t, frames)
		elseOut := f
		if s.Else != nil {
			elseOut = ex.exec(s.Else, f, frames)
		}
		return mergeStates(thenOut, elseOut)

	case *ast.ForStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		frame := &lockFrame{isLoop: true, entryHeld: entryHeldSigs(in)}
		bodyIn, exit := in, []lockState(nil)
		if s.Cond != nil {
			bodyIn, exit = ex.evalCond(s.Cond, in)
		}
		bodyOut := ex.execBlock(s.Body, bodyIn, append(frames, frame))
		if s.Post != nil {
			bodyOut = ex.exec(s.Post, bodyOut, frames)
		}
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, s.Body.End())
		}
		return mergeStates(exit, frame.breaks)

	case *ast.RangeStmt:
		ex.collectFuncLits(s.X)
		frame := &lockFrame{isLoop: true, entryHeld: entryHeldSigs(in)}
		bodyOut := ex.execBlock(s.Body, in, append(frames, frame))
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, s.Body.End())
		}
		return mergeStates(in, frame.breaks) // zero iterations possible

	case *ast.SwitchStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		ex.collectFuncLits(s.Tag)
		return ex.execClauses(s.Body, in, frames)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = ex.exec(s.Init, in, frames)
		}
		return ex.execClauses(s.Body, in, frames)

	case *ast.SelectStmt:
		return ex.execClauses(s.Body, in, frames)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ex.collectFuncLits(r)
		}
		for _, st := range in {
			ex.checkRelease(st, s.Pos())
		}
		return nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if fr := innermost(frames, label, false); fr != nil {
				fr.breaks = append(fr.breaks, in...)
			}
			return nil
		case token.CONTINUE:
			if fr := innermost(frames, label, true); fr != nil {
				for _, st := range in {
					ex.checkIterEnd(st, fr, s.Pos())
				}
			}
			return nil
		default: // goto, fallthrough: abandon path tracking
			return nil
		}

	case *ast.LabeledStmt:
		// Attach the label to the statement's own frame by executing
		// it with a wrapper: loops read it via the frames stack.
		return ex.execLabeled(s, in, frames)

	case *ast.GoStmt:
		ex.collectFuncLits(s.Call)
		return in

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ex.collectFuncLits(r)
		}
		return in

	case *ast.DeclStmt:
		ex.collectFuncLits(s)
		return in

	case *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		ex.collectFuncLits(stmt)
		return in
	}
	ex.collectFuncLits(stmt)
	return in
}

// execLabeled executes a labeled loop so that labeled break/continue
// resolve to its frame.
func (ex *lockExec) execLabeled(s *ast.LabeledStmt, in []lockState, frames []*lockFrame) []lockState {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		if inner.Init != nil {
			in = ex.exec(inner.Init, in, frames)
		}
		frame := &lockFrame{isLoop: true, label: s.Label.Name, entryHeld: entryHeldSigs(in)}
		bodyIn, exit := in, []lockState(nil)
		if inner.Cond != nil {
			bodyIn, exit = ex.evalCond(inner.Cond, in)
		}
		bodyOut := ex.execBlock(inner.Body, bodyIn, append(frames, frame))
		if inner.Post != nil {
			bodyOut = ex.exec(inner.Post, bodyOut, frames)
		}
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, inner.Body.End())
		}
		return mergeStates(exit, frame.breaks)
	case *ast.RangeStmt:
		ex.collectFuncLits(inner.X)
		frame := &lockFrame{isLoop: true, label: s.Label.Name, entryHeld: entryHeldSigs(in)}
		bodyOut := ex.execBlock(inner.Body, in, append(frames, frame))
		for _, st := range bodyOut {
			ex.checkIterEnd(st, frame, inner.Body.End())
		}
		return mergeStates(in, frame.breaks)
	default:
		return ex.exec(s.Stmt, in, frames)
	}
}

// execClauses executes the case/comm clauses of a switch or select
// body independently and merges their exits (plus break exits, plus
// the fall-past states when no default clause guarantees entry).
func (ex *lockExec) execClauses(body *ast.BlockStmt, in []lockState, frames []*lockFrame) []lockState {
	frame := &lockFrame{}
	var outs [][]lockState
	hasDefault := false
	for _, clause := range body.List {
		entry := in
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				entry = ex.exec(c.Comm, entry, frames) // recv/send stmt; no lock effects
			}
			stmts = c.Body
		}
		out := entry
		for _, st := range stmts {
			if len(out) == 0 {
				break
			}
			out = ex.exec(st, out, append(frames, frame))
		}
		outs = append(outs, out)
	}
	if !hasDefault {
		outs = append(outs, in)
	}
	outs = append(outs, frame.breaks)
	return mergeStates(outs...)
}

// deferredUnlockKeys returns the receiver keys of every trylock Unlock
// call in a deferred closure body.
func deferredUnlockKeys(pass *Pass, lit *ast.FuncLit) []string {
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, isLock := trylockMethod(pass.Info, call); isLock && method == "Unlock" {
			keys = append(keys, exprKey(recv))
		}
		return true
	})
	return keys
}
