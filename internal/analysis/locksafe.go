// The locksafe analyzer: every successful trylock acquisition must be
// released on every path out of the acquiring function — or escape
// through an inferred, call-site-verified contract.
//
// This is the code-level half of the paper's deadlock-freedom argument
// (Theorem 3): the value-aware try-lock protocol of Algorithm 2 only
// composes because a failed validation *always* releases the lock
// before restarting the traversal. A leaked lock — the early-return
// bug class in validation failure paths — wedges every later writer of
// that node forever, which no test reliably catches (the stress suite
// just times out). locksafe makes the release obligation mechanical.
//
// The analysis runs the shared symbolic executor (exec.go) over each
// function body (function literals are analyzed separately) with the
// interprocedural summaries of interproc.go plugged into call sites:
// a call to lazy's lockWindow acquires both window locks in the
// caller, `if !prev.lockNextAt(...)` splits into a holding true-branch
// and an empty false-branch, and a helper whose own exits match an
// inferred contract that some caller consumes is exempt from the
// release obligation — the obligation moved to its callers, where it
// is checked for real instead of suppressed.
//
// Reported:
//   - a path from an acquisition (Lock, LockContended, successful
//     TryLock, or a summarized helper call) to a return or the end of
//     the function on which the lock is still held, no matching defer
//     is registered, and no consumed contract sanctions the escape;
//   - a lock acquired inside a loop body that is still held when the
//     iteration ends (leak-per-iteration, or self-deadlock on the next
//     round since SpinLock is not reentrant);
//   - locking a lock that this path already holds (self-deadlock);
//   - a TryLock — or a try-lock-contract helper call — whose result is
//     not used directly as a branch condition: the acquisition is then
//     untrackable.
//
// Remaining intentional violations — cross-goroutine lock transfer in
// tests, loop-carried acquisitions the summary language cannot express
// — are suppressed with //lint:ignore locksafe <why the lock provably
// gets released elsewhere>; the stale-suppression check keeps that
// inventory honest.
package analysis

import (
	"go/ast"
	"go/token"
)

// LockSafe is the lock-release analyzer.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "trylock acquisitions must be released on every path or escape via a verified contract",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIntrinsicLockDecl(pass.Pkg.Path(), fd) {
				continue // the lock implementation itself is the intrinsic
			}
			ex := newExecEngine(pass, pass.Prog)
			ex.reportLocks = true
			exits := ex.run(fd, fd.Body)
			checkLockExits(pass, fd, exits)
			runLockSafeLits(pass, ex.queue)
		}
	}
}

// runLockSafeLits analyzes queued function literals (and their nested
// literals). Literals have no inferable contract: any lock they hold
// at exit is reported.
func runLockSafeLits(pass *Pass, queue []*ast.FuncLit) {
	for i := 0; i < len(queue); i++ {
		ex := newExecEngine(pass, pass.Prog)
		ex.reportLocks = true
		exits := ex.run(nil, queue[i].Body)
		for _, rec := range exits {
			reportHeldExit(ex, rec, nil)
		}
		queue = append(queue, ex.queue...)
	}
}

// checkLockExits reports every lock held at a function exit that is
// not sanctioned by the function's own inferred-and-consumed contract.
func checkLockExits(pass *Pass, fd *ast.FuncDecl, exits []exitRec) {
	var sum *funcSummary
	if pass.Prog != nil {
		key := funcKeyOfDecl(pass.Pkg.Path(), fd)
		s := pass.Prog.summaries[key]
		// A contract nobody consumes is treated as the leak it
		// probably is: sanctioning requires a discharging call site.
		if s != nil && s.hasLockContract() && pass.Prog.consumed[key] {
			sum = s
		}
	}
	recvName, paramNames := declSlotNames(fd)
	// reportOnce state spans exits: the same acquisition can reach
	// several exits but is one finding.
	ex := &execEngine{pass: pass, reported: make(map[token.Pos]bool)}
	for _, rec := range exits {
		sanctioned := map[string]bool{}
		if sum != nil {
			slots := sum.acquiresAlways
			if rec.result == resultTrue {
				slots = append(append([]slot(nil), slots...), sum.acquiresOnTrue...)
			}
			for _, sl := range slots {
				if key, ok := renderOwnSlot(sl, recvName, paramNames, rec.resultKeys); ok {
					sanctioned[key] = true
				}
			}
		}
		reportHeldExit(ex, rec, sanctioned)
	}
}

// renderOwnSlot renders a contract slot in the function's own key
// space (the inverse of the call-site binding): the receiver or
// parameter name, or the expression a given exit returns.
func renderOwnSlot(sl slot, recvName string, paramNames, resultKeys []string) (string, bool) {
	var base string
	switch sl.kind {
	case slotRecv:
		base = recvName
	case slotParam:
		if sl.index < len(paramNames) {
			base = paramNames[sl.index]
		}
	case slotResult:
		if sl.index < len(resultKeys) {
			base = resultKeys[sl.index]
		}
	}
	if base == "" || base == "_" {
		return "", false
	}
	return base + sl.path, true
}

// reportHeldExit emits the exit-leak findings of one exit record.
func reportHeldExit(ex *execEngine, rec exitRec, sanctioned map[string]bool) {
	for _, h := range rec.held {
		if sanctioned != nil && sanctioned[h.key] {
			continue
		}
		ex.reportOnce(h.pos,
			"%s acquired by %s here can reach the function exit at line %d still held (no Unlock or defer on that path)",
			h.key, h.method, ex.pass.Fset.Position(rec.pos).Line)
	}
}
