// Package loading for the analysis engine. The environment is offline
// and stdlib-only, so instead of golang.org/x/tools/go/packages this
// loader drives the go command directly:
//
//  1. `go list -json <patterns>` enumerates the target packages and
//     their source files;
//  2. `go list -deps -test -export -json <patterns>` compiles (or
//     reuses from the build cache) every dependency and yields the
//     path of its gc export data;
//  3. each target package is parsed with go/parser and type-checked
//     with go/types, resolving imports through go/importer's gc
//     importer pointed at the export files from step 2.
//
// Only the target packages themselves are type-checked from source —
// dependencies (including the standard library) come from export
// data, which is what `go vet` itself does.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Pkg is one parsed and type-checked package ready for analysis.
type Pkg struct {
	ImportPath string
	Dir        string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	ForTest      string
	DepsErrors   []struct{ Err string }
	Error        *struct{ Err string }
	Incomplete   bool
	Standard     bool
	TestImports  []string
	XTestImports []string
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadOptions configures Load.
type LoadOptions struct {
	// Dir is the working directory for the go command; "" means the
	// process working directory (it must be inside the module).
	Dir string
	// Tests includes _test.go files: in-package test files are merged
	// into their package, external (package foo_test) files become an
	// additional package.
	Tests bool
}

// Load lists, parses and type-checks the packages matching the go
// package patterns (e.g. "./...").
func Load(patterns []string, opts LoadOptions) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	jsonFields := "-json=ImportPath,Dir,Name,GoFiles,TestGoFiles,XTestGoFiles,Error,DepsErrors,Incomplete"
	targets, err := goList(opts.Dir, append([]string{jsonFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
	}

	// Compile the dependency closure (test variants included, so that
	// test files of the targets can resolve their imports) and map
	// import paths to export-data files.
	listArgs := []string{"-deps", "-export", "-json=ImportPath,Export,ForTest"}
	if opts.Tests {
		listArgs = append([]string{"-test"}, listArgs...)
	}
	deps, err := goList(opts.Dir, append(listArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, d := range deps {
		if d.Export == "" {
			continue
		}
		// Test-augmented variants are listed as "path [root.test]";
		// prefer the augmented export under its plain path only via
		// the explicit testVariant map below.
		if base, _, isVariant := strings.Cut(d.ImportPath, " "); isVariant {
			exports[d.ImportPath] = d.Export
			_ = base
			continue
		}
		exports[d.ImportPath] = d.Export
	}
	testVariant := func(path string) string {
		// Export data of "p [p.test]" (the test-augmented build of p).
		return path + " [" + path + ".test]"
	}

	fset := token.NewFileSet()
	var pkgs []*Pkg
	for _, t := range targets {
		if t.Name == "" || len(t.GoFiles)+len(t.TestGoFiles)+len(t.XTestGoFiles) == 0 {
			continue
		}
		files := append([]string{}, t.GoFiles...)
		if opts.Tests {
			files = append(files, t.TestGoFiles...)
		}
		pkg, err := check(fset, t.ImportPath, t.Dir, files, func(path string) (string, bool) {
			// The package's own in-package test files may import
			// packages only its test build depends on; plain lookup
			// covers those because -deps -test listed them.
			e, ok := exports[path]
			return e, ok
		})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)

		if opts.Tests && len(t.XTestGoFiles) > 0 {
			// External test package: resolve the base import path to
			// the test-augmented export so export_test.go symbols are
			// visible.
			base := t.ImportPath
			xpkg, err := check(fset, base+"_test", t.Dir, t.XTestGoFiles, func(path string) (string, bool) {
				if path == base {
					if e, ok := exports[testVariant(base)]; ok {
						return e, true
					}
				}
				e, ok := exports[path]
				return e, ok
			})
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single directory dir as one
// package with a synthetic import path, resolving its imports inside
// the enclosing module. It exists for analyzer self-tests over
// testdata trees, which wildcard patterns deliberately skip.
func LoadDir(dir string) (*Pkg, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	// Collect the directory's imports and resolve their export data
	// in one go-list invocation from within the module.
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, f := range files {
		parsed, err := parser.ParseFile(fset, filepath.Join(abs, f), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range parsed.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := []string{"-deps", "-export", "-json=ImportPath,Export"}
		for imp := range imports {
			args = append(args, imp)
		}
		deps, err := goList(abs, args...)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			if d.Export != "" {
				exports[d.ImportPath] = d.Export
			}
		}
	}
	return check(fset, "testdata/"+filepath.Base(abs), abs, files, func(path string) (string, bool) {
		e, ok := exports[path]
		return e, ok
	})
}

// check parses the named files of one directory and type-checks them
// as a single package, resolving imports via the export lookup.
func check(fset *token.FileSet, importPath, dir string, fileNames []string, lookup func(string) (string, bool)) (*Pkg, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Pkg{
		ImportPath: importPath,
		Dir:        dir,
		Name:       name,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
