// The valimmutable analyzer: a concurrent list node's val field is
// written exactly once, at its composite-literal construction site.
//
// The paper's linearizability argument (and the value-aware validation
// of lockNextAtValue in particular) leans on val being immutable: the
// wait-free traversal reads curr.val with no synchronization at all,
// which is only race-free because no code path ever stores to val
// after the node is published. The invariant lives in a comment on
// every node struct ("val is immutable"); this analyzer enforces it.
//
// A struct is node-like when it has a field named "val" alongside at
// least one synchronization field (an atomic or a trylock/sync lock) —
// i.e. it is a node meant to be shared between goroutines. For such
// structs the analyzer flags every assignment to .val (including
// compound assignment and ++/--) and every &.val address-taking, which
// would let a write escape the analysis. Composite literals
// (node{val: v}) are not assignments and remain the one sanctioned
// initialization.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ValImmutable is the val-field immutability analyzer.
var ValImmutable = &Analyzer{
	Name: "valimmutable",
	Doc:  "node val fields are written only at construction",
	Run:  runValImmutable,
}

func runValImmutable(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range nn.Lhs {
					checkValWrite(pass, lhs, "assignment to")
				}
			case *ast.IncDecStmt:
				checkValWrite(pass, nn.X, "increment/decrement of")
			case *ast.UnaryExpr:
				if nn.Op == token.AND {
					checkValWrite(pass, nn.X, "taking the address of")
				}
			}
			return true
		})
	}
}

// checkValWrite reports e when it denotes the val field of a node-like
// struct.
func checkValWrite(pass *Pass, e ast.Expr, what string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "val" {
		return
	}
	selection, found := pass.Info.Selections[sel]
	if !found || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	st, owner := underlyingStruct(recv)
	if st == nil || !isNodeLike(st) {
		return
	}
	pass.Reportf(e.Pos(),
		"%s %s.val outside construction: val is immutable after the node is published (wait-free readers load it unsynchronized)",
		what, owner)
}

// underlyingStruct unwraps a (possibly named) type to its struct
// underlying, returning a display name for diagnostics.
func underlyingStruct(t types.Type) (*types.Struct, string) {
	name := "struct"
	if named, isNamed := t.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	st, isStruct := t.Underlying().(*types.Struct)
	if !isStruct {
		return nil, ""
	}
	return st, name
}

// isNodeLike reports whether st is a concurrent node: it has a "val"
// field and at least one synchronization field. Purely sequential
// structs that happen to have a val field (e.g. the seqlist node) are
// exempt — nothing races on them.
func isNodeLike(st *types.Struct) bool {
	hasVal, hasSync := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "val" {
			hasVal = true
		}
		if _, sync := lockPath(f.Type()); sync {
			hasSync = true
		}
	}
	return hasVal && hasSync
}
