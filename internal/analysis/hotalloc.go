// The hotalloc analyzer: no hidden heap allocation on traversal and
// validation hot paths.
//
// The lists' performance argument (and the arena work in internal/mem)
// rests on the hot paths — traversals, window location, validation,
// lock acquisition — allocating nothing: at millions of operations per
// second even one small allocation per operation turns the GC into the
// bottleneck the paper's contention analysis never priced. The
// analyzer flags the three allocation shapes that creep into such
// functions:
//
//   - address-taken composite literals (&T{...}), which escape to the
//     heap when the pointer outlives the frame;
//   - new(T) calls, the same allocation spelled differently;
//   - function literals capturing variables of the enclosing function,
//     which force both the closure and the captured variable into the
//     heap.
//
// A function is "hot" when its name is one of the traversal/validation
// verbs the implementations share (contains, insert, remove, traverse,
// find, validate, search, locate) or starts with "lock" (lockWindow,
// lockNextAt, ...). Matching is case-insensitive on the declared name,
// so Contains and contains are both covered.
//
// Value composite literals that are not address-taken (obs.Escalator{}
// and friends) stay on the stack and are deliberately not flagged.
// Intentional allocations — an insert has to materialize its node
// somewhere — are silenced the usual way:
//
//	//lint:ignore hotalloc the insert path must allocate the new node
//
// Test files are exempt: their loops are not measured hot paths.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc is the hot-path allocation analyzer.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no hidden heap allocation in traversal/validation hot-path functions",
	Run:  runHotAlloc,
}

// hotNames are the traversal/validation verbs that make a function a
// measured hot path, lowercased.
var hotNames = map[string]bool{
	"contains": true,
	"insert":   true,
	"remove":   true,
	"traverse": true,
	"find":     true,
	"validate": true,
	"search":   true,
	"locate":   true,
	// The batch surface's one-pass traversals (DESIGN.md §13): a batch
	// amortizes k operations, so a hidden allocation per window costs
	// k times less than in a point op — but the whole point of the
	// pooled scratch buffers is that steady state allocates nothing.
	"insertall":   true,
	"removeall":   true,
	"containsall": true,
	"rangescan":   true,
	// The adaptive-contention layer (DESIGN.md §14): shardOf is the
	// façade's routing decision, taken on every operation — twice
	// while a migration is in flight — and the controller's tick runs
	// its whole signal->actuator loop; a hidden closure there turns
	// every control interval into GC pressure the backoff math never
	// priced.
	"shardof": true,
	"tick":    true,
	// The skip lists' entry points (DESIGN.md §15): tower
	// materialization, index maintenance, the per-level descents and
	// the finger-seeded batch passes all run on the measured path — a
	// hidden allocation in any of them multiplies by the operation
	// rate exactly like a flat list's.
	"newtower":        true,
	"randomheight":    true,
	"linkindex":       true,
	"sweep":           true,
	"tryunlinklevel":  true,
	"findpredatlevel": true,
	"findfrom":        true,
	"descendto":       true,
	"insertfrom":      true,
	"removefrom":      true,
}

// methodHotNames are set-surface verbs that mark a hot path only when
// declared as a method: a plain function named Load (the analysis
// package's loader, say) is not a set traversal, but a set's
// Load/Ascend walks the structure like any other hot path.
var methodHotNames = map[string]bool{
	"load":   true,
	"ascend": true,
}

// hotFunc reports whether the declaration marks a hot path.
func hotFunc(fn *ast.FuncDecl) bool {
	lower := strings.ToLower(fn.Name.Name)
	if hotNames[lower] || strings.HasPrefix(lower, "lock") {
		return true
	}
	return fn.Recv != nil && methodHotNames[lower]
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotFunc(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

// checkHotFunc walks one hot function's body for the three allocation
// shapes.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if cl, ok := compositeAddr(e); ok {
				pass.Reportf(e.Pos(), "&%s{...} allocates on the hot path %s; hoist it out or draw the node from the arena (internal/mem)",
					typeName(pass, cl), fn.Name.Name)
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" &&
				pass.Info.Uses[id] == types.Universe.Lookup("new") && len(e.Args) == 1 {
				pass.Reportf(e.Pos(), "new(%s) allocates on the hot path %s; hoist it out or draw the node from the arena (internal/mem)",
					typeName(pass, e.Args[0]), fn.Name.Name)
			}
		case *ast.FuncLit:
			if captured := captures(pass, e, fn); captured != "" {
				pass.Reportf(e.Pos(), "closure captures %s, forcing heap allocation on the hot path %s; pass it as a parameter or hoist the closure",
					captured, fn.Name.Name)
			}
			return false // inner literals are the closure's problem, not fn's
		}
		return true
	})
}

// compositeAddr matches &T{...}.
func compositeAddr(e *ast.UnaryExpr) (*ast.CompositeLit, bool) {
	if e.Op.String() != "&" {
		return nil, false
	}
	cl, ok := e.X.(*ast.CompositeLit)
	return cl, ok
}

// typeName renders the allocated type for the message, best-effort.
func typeName(pass *Pass, e ast.Expr) string {
	var typ ast.Expr = e
	if cl, ok := e.(*ast.CompositeLit); ok {
		typ = cl.Type
	}
	if typ == nil {
		return "T"
	}
	if t := pass.Info.TypeOf(typ); t != nil {
		s := t.String()
		// Trim the module path down to pkg.Type for readability.
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	return "T"
}

// captures returns the name of a variable the function literal captures
// from the enclosing function fn ("" when it captures nothing): an
// identifier used inside lit whose object is declared inside fn but
// outside lit.
func captures(pass *Pass, lit *ast.FuncLit, fn *ast.FuncDecl) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		pos := obj.Pos()
		declaredInFn := pos >= fn.Pos() && pos < fn.End()
		declaredInLit := pos >= lit.Pos() && pos < lit.End()
		if declaredInFn && !declaredInLit {
			found = obj.Name()
			return false
		}
		return true
	})
	return found
}
