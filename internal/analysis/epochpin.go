// The epochpin analyzer: the arena's grace-period argument (DESIGN.md
// §10) as a checkable contract.
//
// Epoch-based reclamation is only safe if every operation brackets its
// traversal in a Pin/Unpin pair and retires nodes while the epoch
// still protects them. The failure modes are silent: a leaked pin
// wedges the global epoch forever (the arena degrades to leaking
// memory, no test fails), an access after Unpin races with recycling
// (a value-validation CAN paper over it — which is exactly why it must
// never happen), and retiring a node whose lock is still held hands
// the next life of that node a locked lock.
//
// epochpin runs the shared symbolic executor with pin tracking on and
// reports:
//   - a path from Arena.Pin() to a return (or the end of the function)
//     on which the guard is still pinned, no deferred Unpin is
//     registered, and no inferred pin contract (a helper returning the
//     pinned guard as a result) sanctions the escape;
//   - a pin taken inside a loop body still active when the iteration
//     ends (one leaked epoch per iteration) — pins taken BEFORE a
//     retry loop are exempt, matching the lists' pin-once-per-
//     operation discipline;
//   - Retire/Free/Get called on a guard after its Unpin on that path;
//   - unpinning a guard twice (the pooled worker would be handed to
//     two goroutines);
//   - Retire(n) while still holding n's lock;
//   - discarding the Guard returned by Pin.
//
// The mem package itself is exempt: its internals implement the
// epochs and are modeled as intrinsics at call sites.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// EpochPin is the epoch pin-balance analyzer.
var EpochPin = &Analyzer{
	Name: "epochpin",
	Doc:  "every epoch pin is unpinned on all paths; retire happens while pinned and after unlock",
	Run:  runEpochPin,
}

func runEpochPin(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), memPkgSuffix) {
		return // the epoch implementation itself
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ex := newExecEngine(pass, pass.Prog)
			ex.reportEpoch = true
			exits := ex.run(fd, fd.Body)
			checkPinExits(pass, fd, exits)
			runEpochPinLits(pass, ex.queue)
		}
	}
}

// runEpochPinLits analyzes queued function literals; literals have no
// pin contract, so any pin still active at their exit is reported.
func runEpochPinLits(pass *Pass, queue []*ast.FuncLit) {
	for i := 0; i < len(queue); i++ {
		ex := newExecEngine(pass, pass.Prog)
		ex.reportEpoch = true
		exits := ex.run(nil, queue[i].Body)
		for _, rec := range exits {
			reportPinExit(ex, rec, nil)
		}
		queue = append(queue, ex.queue...)
	}
}

// checkPinExits reports every pin active at a function exit that does
// not ride out through the function's inferred-and-consumed pin
// contract (a result carrying the pinned guard).
func checkPinExits(pass *Pass, fd *ast.FuncDecl, exits []exitRec) {
	var sum *funcSummary
	if pass.Prog != nil {
		key := funcKeyOfDecl(pass.Pkg.Path(), fd)
		s := pass.Prog.summaries[key]
		if s != nil && s.pinsOK && len(s.pinsResults) > 0 && pass.Prog.consumed[key] {
			sum = s
		}
	}
	ex := &execEngine{pass: pass, reported: make(map[token.Pos]bool)}
	for _, rec := range exits {
		var sanctioned map[string]bool
		if sum != nil {
			sanctioned = map[string]bool{}
			for _, i := range sum.pinsResults {
				if i < len(rec.resultKeys) && rec.resultKeys[i] != "" {
					sanctioned[rec.resultKeys[i]] = true
				}
			}
		}
		reportPinExit(ex, rec, sanctioned)
	}
}

// reportPinExit emits the leaked-pin findings of one exit record.
func reportPinExit(ex *execEngine, rec exitRec, sanctioned map[string]bool) {
	for _, p := range rec.pins {
		if sanctioned != nil && sanctioned[p.key] {
			continue
		}
		ex.reportOnce(p.pos,
			"epoch pin %s taken here can reach the function exit at line %d still active (no Unpin or defer on that path); a leaked pin wedges the global epoch and the arena stops recycling",
			p.key, ex.pass.Fset.Position(rec.pos).Line)
	}
}
