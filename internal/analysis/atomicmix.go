// The atomicmix analyzer: a field accessed through sync/atomic
// anywhere must never be read or written plainly anywhere else.
//
// Mixing atomic and plain access to the same memory is a Go
// memory-model violation that -race only catches when a schedule
// actually exposes the pair — the paper's wait-free traversals read
// hot fields (next pointers, deletion marks) concurrently with locked
// writers, which is exactly the pattern that makes a stray plain
// access both tempting ("it's under the lock anyway") and wrong (the
// unlocked readers still race with it). The repository's own style
// avoids the trap by using the typed atomic API (atomic.Pointer,
// atomic.Bool), whose field types make plain access unrepresentable;
// atomicmix guards the remaining function-style surface
// (atomic.AddInt64(&x.f), atomic.StoreInt64, ...), where nothing stops
// a plain `x.f++` from compiling.
//
// The check is program-wide and two-phase, riding on the Program built
// for the interprocedural pass: BuildProgram inventories every struct
// field whose address is passed to a sync/atomic function in any
// analyzed package; the analyzer then flags every other appearance of
// those fields — plain reads, plain writes, and addresses taken
// outside a sync/atomic call (an escaped pointer is a plain access
// waiting to happen).
package analysis

import (
	"go/ast"
)

// AtomicMix is the atomic/plain mixed-access analyzer.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	if pass.Prog == nil || len(pass.Prog.atomicFields) == 0 {
		return
	}
	for _, file := range pass.Files {
		// Pass 1: mark the selectors sanctioned by being the &-operand
		// of a sync/atomic call argument.
		sanctioned := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if sel, isField := addressedField(arg); isField {
					sanctioned[sel] = true
				}
			}
			return true
		})
		// Pass 2: every other appearance of an inventoried field is a
		// mixed access.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key := fieldKeyOf(pass.Info, sel)
			if key == "" {
				return true
			}
			atomicAt, isAtomic := pass.Prog.atomicFields[key]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"%s is accessed via sync/atomic (e.g. at %s:%d) but plainly here; mixed atomic/plain access to the same field races even when -race stays quiet",
				fieldLabel(key), shortFile(atomicAt.Filename), atomicAt.Line)
			return true
		})
	}
}

// fieldLabel renders the "pkg|Type|field" inventory key for humans.
func fieldLabel(key string) string {
	parts := splitKeyParts(key)
	if len(parts) != 3 {
		return key
	}
	pkg := parts[0]
	if i := lastSlash(pkg); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + parts[1] + "." + parts[2]
}

func splitKeyParts(key string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			parts = append(parts, key[start:i])
			start = i + 1
		}
	}
	return append(parts, key[start:])
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// shortFile trims a path to its final element for compact messages.
func shortFile(path string) string {
	if i := lastSlash(path); i >= 0 {
		return path[i+1:]
	}
	return path
}
