// The copylock analyzer: values of types that contain a trylock lock
// or a sync/atomic primitive must never be copied.
//
// This is `go vet`'s copylocks pass taught about this repository's
// custom lock type. The paper's node metadata — next, deleted, lock —
// only means anything at a stable address: a copied node has a
// disconnected lock word and detached atomics, so writers of the copy
// and writers of the original silently stop excluding each other.
// go vet catches sync.Mutex copies but knows nothing about
// trylock.SpinLock, which is what every list node here embeds.
//
// Flagged contexts: by-value function/method parameters, results and
// receivers; assignments whose right-hand side reads an existing
// lock-bearing value (dereference, variable, field, element);
// by-value call arguments; and range clauses that copy lock-bearing
// elements. Composite literals and function-call results are not
// flagged — constructing a fresh value is not a copy.
package analysis

import (
	"go/ast"
	"go/types"
)

// CopyLock is the lock-copy analyzer.
var CopyLock = &Analyzer{
	Name: "copylock",
	Doc:  "no by-value copies of structs containing trylock or atomic fields",
	Run:  runCopyLock,
}

func runCopyLock(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncDecl:
				if nn.Recv != nil {
					checkFieldList(pass, nn.Recv, "receiver")
				}
				if nn.Type.Params != nil {
					checkFieldList(pass, nn.Type.Params, "parameter")
				}
				if nn.Type.Results != nil {
					checkFieldList(pass, nn.Type.Results, "result")
				}
			case *ast.FuncLit:
				if nn.Type.Params != nil {
					checkFieldList(pass, nn.Type.Params, "parameter")
				}
				if nn.Type.Results != nil {
					checkFieldList(pass, nn.Type.Results, "result")
				}
			case *ast.AssignStmt:
				for _, rhs := range nn.Rhs {
					checkCopyRead(pass, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range nn.Values {
					checkCopyRead(pass, v, "assignment copies")
				}
			case *ast.CallExpr:
				if isBuiltinCall(pass, nn) || isUnsafeCall(pass, nn) {
					break
				}
				for _, arg := range nn.Args {
					checkCopyRead(pass, arg, "call passes")
				}
			case *ast.RangeStmt:
				if nn.Value != nil {
					if t := pass.Info.TypeOf(nn.Value); t != nil {
						if path, bad := lockPath(t); bad {
							pass.Reportf(nn.Value.Pos(),
								"range clause copies lock by value: %s", path)
						}
					}
				}
			}
			return true
		})
	}
}

// checkFieldList flags by-value lock-bearing entries of a receiver,
// parameter or result list.
func checkFieldList(pass *Pass, fl *ast.FieldList, kind string) {
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if path, bad := lockPath(t); bad {
			pass.Reportf(field.Type.Pos(), "%s passes lock by value: %s", kind, path)
		}
	}
}

// checkCopyRead flags expressions that read an existing lock-bearing
// value by copy. Fresh values (composite literals, call results) and
// address-taking are exempt.
func checkCopyRead(pass *Pass, e ast.Expr, verb string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
	default:
		return
	}
	if p, isParen := e.(*ast.ParenExpr); isParen {
		checkCopyRead(pass, p.X, verb)
		return
	}
	t := pass.Info.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	// Selector expressions can denote fields, package-level variables,
	// methods or types; only value reads matter.
	if sel, isSel := e.(*ast.SelectorExpr); isSel {
		if s, found := pass.Info.Selections[sel]; found {
			if s.Kind() != types.FieldVal {
				return
			}
		} else if _, isVar := pass.Info.Uses[sel.Sel].(*types.Var); !isVar {
			return
		}
	}
	if path, bad := lockPath(t); bad {
		pass.Reportf(e.Pos(), "%s lock by value: %s", verb, path)
	}
}

// isBuiltinCall reports whether call invokes a builtin (len, cap, new,
// append, ...) — those do not copy their operands in a way that
// detaches a lock.
func isBuiltinCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isUnsafeCall reports whether call invokes a package unsafe operator
// (Sizeof, Offsetof, Alignof). Like the builtins, these are compile-
// time measurements of their operand's type — nothing is copied at
// run time, so layout tests may pass lock-bearing values to them.
func isUnsafeCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "unsafe"
}
