// Shared type- and expression-classification helpers for the
// analyzers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// trylockPkgSuffix matches this module's try-lock package whether the
// import path is "listset/internal/trylock" (the real module) or a
// testdata variant.
const trylockPkgSuffix = "internal/trylock"

// isTrylockType reports whether named is trylock.SpinLock,
// trylock.MutexLock or the trylock.TryLocker interface.
func isTrylockType(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(obj.Pkg().Path(), trylockPkgSuffix) {
		return false
	}
	switch obj.Name() {
	case "SpinLock", "MutexLock", "TryLocker":
		return true
	}
	return false
}

// isSyncPrimitive reports whether named is a standard-library
// synchronization primitive that must not be copied (sync and
// sync/atomic types other than trivially copyable ones).
func isSyncPrimitive(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Map", "Pool":
			return true
		}
	case "sync/atomic":
		// Every exported sync/atomic type carries a noCopy sentinel.
		switch obj.Name() {
		case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
			return true
		}
	}
	return false
}

// lockPath reports whether t contains (directly, via a struct field,
// an embedded field, or an array element) a non-copyable
// synchronization primitive, and if so returns a human-readable path
// to it, e.g. "node.lock (trylock.SpinLock)".
func lockPath(t types.Type) (string, bool) {
	return lockPathRec(t, "", make(map[types.Type]bool))
}

func lockPathRec(t types.Type, prefix string, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if _, isIface := tt.Underlying().(*types.Interface); isIface {
			// Copying an interface value copies a pointer-sized header,
			// not the lock behind it (e.g. trylock.TryLocker).
			return "", false
		}
		if isTrylockType(tt) || isSyncPrimitive(tt) {
			name := obj.Name()
			if obj.Pkg() != nil {
				name = obj.Pkg().Name() + "." + name
			}
			if prefix == "" {
				return name, true
			}
			return fmt.Sprintf("%s (%s)", prefix, name), true
		}
		return lockPathRec(tt.Underlying(), prefix, seen)
	case *types.Alias:
		return lockPathRec(types.Unalias(tt), prefix, seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			p := f.Name()
			if prefix != "" {
				p = prefix + "." + p
			}
			if path, ok := lockPathRec(f.Type(), p, seen); ok {
				return path, true
			}
		}
	case *types.Array:
		p := prefix + "[...]"
		if prefix == "" {
			p = "[...]"
		}
		return lockPathRec(tt.Elem(), p, seen)
	}
	return "", false
}

// trylockMethod reports whether call is a Lock/TryLock/Unlock/
// LockContended method call whose receiver is one of the trylock
// package's lock types, and returns the receiver expression and
// method name.
func trylockMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "TryLock", "Unlock", "LockContended":
	default:
		return nil, "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	recvType := selection.Recv()
	if ptr, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = ptr.Elem()
	}
	named, isNamed := recvType.(*types.Named)
	if !isNamed || !isTrylockType(named) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// memMethod reports whether call is a Pin/Unpin/Retire/Free/Get
// method call whose receiver is the mem package's Arena or Guard
// type, and returns the receiver expression and method name. The mem
// package's epoch machinery is modeled as intrinsics at call sites —
// its own body is exempt from analysis.
func memMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Pin", "Unpin", "Retire", "Free", "Get":
	default:
		return nil, "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	recvType := selection.Recv()
	if ptr, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = ptr.Elem()
	}
	named, isNamed := recvType.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), memPkgSuffix) {
		return nil, "", false
	}
	switch obj.Name() {
	case "Arena", "Guard":
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// exprKey renders a canonical, purely syntactic key for a lock
// receiver expression, e.g. "prev.lock" or "preds[0].lock". Two
// occurrences with equal keys are assumed to denote the same lock —
// a heuristic that matches this codebase's style (lock expressions
// are short selector chains that are not reassigned while held).
// Expressions outside the supported shapes get a position-unique key,
// which makes any Lock on them unmatched by construction.
func exprKey(e ast.Expr) string {
	switch ee := e.(type) {
	case *ast.Ident:
		return ee.Name
	case *ast.SelectorExpr:
		return exprKey(ee.X) + "." + ee.Sel.Name
	case *ast.IndexExpr:
		return exprKey(ee.X) + "[" + exprKey(ee.Index) + "]"
	case *ast.BasicLit:
		return ee.Value
	case *ast.ParenExpr:
		return exprKey(ee.X)
	case *ast.StarExpr:
		return "*" + exprKey(ee.X)
	case *ast.CallExpr:
		return exprKey(ee.Fun) + "(…)"
	default:
		return fmt.Sprintf("‹expr@%d›", e.Pos())
	}
}
