package fomitchev

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeletionProtocolSteps(t *testing.T) {
	l := New()
	l.Insert(10)
	l.Insert(20)
	prev, curr := l.searchFrom(10, l.head)
	if prev != l.head || curr.val != 10 {
		t.Fatalf("window = (%d, %d), want (head, 10)", prev.val, curr.val)
	}

	// Step 1: flag the predecessor.
	flagged, won := l.tryFlag(prev, curr)
	if !won || flagged != prev {
		t.Fatalf("tryFlag = (%v, %v), want (head, true)", flagged, won)
	}
	ps := prev.succ.Load()
	if !ps.flag || ps.mark || ps.right != curr {
		t.Fatalf("prev.succ after flag = %+v", ps)
	}

	// Step 2+3: complete the deletion.
	helpFlagged(flagged, curr)
	cs := curr.succ.Load()
	if !cs.mark {
		t.Fatal("victim not marked after helpFlagged")
	}
	if curr.backlink.Load() != prev {
		t.Fatal("backlink not installed")
	}
	ps = prev.succ.Load()
	if ps.flag || ps.right.val != 20 {
		t.Fatalf("prev.succ after removal = %+v, want unflagged -> 20", ps)
	}
	if l.Contains(10) || !l.Contains(20) {
		t.Fatal("membership wrong after manual deletion")
	}
}

func TestTryFlagLoserReportsFalse(t *testing.T) {
	l := New()
	l.Insert(10)
	prev, curr := l.searchFrom(10, l.head)
	if _, won := l.tryFlag(prev, curr); !won {
		t.Fatal("first flag should win")
	}
	// A second flag attempt on the same window must not claim the win.
	flagged, won := l.tryFlag(prev, curr)
	if won {
		t.Fatal("second flag claimed the win")
	}
	if flagged != prev {
		t.Fatalf("loser should still learn the flagged predecessor")
	}
	helpFlagged(flagged, curr)
	if l.Contains(10) {
		t.Fatal("10 still present after completed deletion")
	}
}

func TestTryFlagDetectsRemovedTarget(t *testing.T) {
	l := New()
	l.Insert(10)
	prev, curr := l.searchFrom(10, l.head)
	if !l.Remove(10) {
		t.Fatal("Remove failed")
	}
	flagged, won := l.tryFlag(prev, curr)
	if flagged != nil || won {
		t.Fatalf("tryFlag on removed target = (%v, %v), want (nil, false)", flagged, won)
	}
}

func TestBacklinkBacktracking(t *testing.T) {
	l := New()
	for _, v := range []int64{10, 20, 30} {
		l.Insert(v)
	}
	_, n10 := l.searchFrom(10, l.head)
	_, n20 := l.searchFrom(20, l.head)
	l.Remove(20)
	l.Remove(10)
	// Backtracking from the deleted 20 walks its backlink chain (20 ->
	// 10, also deleted -> head).
	if got := l.backtrack(n20); got != l.head {
		t.Fatalf("backtrack from deleted 20 = %d, want head", got.val)
	}
	if got := l.backtrack(n10); got != l.head {
		t.Fatalf("backtrack from deleted 10 = %d, want head", got.val)
	}
	if !l.Contains(30) {
		t.Fatal("30 lost during deletions")
	}
}

func TestSearchFromHelpsCompleteDeletes(t *testing.T) {
	l := New()
	l.Insert(10)
	l.Insert(20)
	prev, curr := l.searchFrom(10, l.head)
	// Flag + mark by hand, leaving the physical removal undone.
	flagged, won := l.tryFlag(prev, curr)
	if !won {
		t.Fatal("flag failed")
	}
	curr.backlink.Store(flagged)
	tryMark(curr)
	// A search past the victim must complete the removal.
	p2, c2 := l.searchFrom(20, l.head)
	if p2 != l.head || c2.val != 20 {
		t.Fatalf("window after helping = (%d, %d), want (head, 20)", p2.val, c2.val)
	}
	if ps := l.head.succ.Load(); ps.flag || ps.right != c2 {
		t.Fatalf("head.succ = %+v after helping", ps)
	}
}

func TestInsertOverFlaggedPredecessorHelps(t *testing.T) {
	l := New()
	l.Insert(10)
	l.Insert(20)
	prev, curr := l.searchFrom(10, l.head)
	if _, won := l.tryFlag(prev, curr); !won {
		t.Fatal("flag failed")
	}
	// head is flagged at 10; an insert of 5 must help finish 10's
	// deletion before linking.
	if !l.Insert(5) {
		t.Fatal("Insert(5) failed over flagged predecessor")
	}
	if l.Contains(10) {
		t.Fatal("10 survived the helped deletion")
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0] != 5 || snap[1] != 20 {
		t.Fatalf("Snapshot = %v, want [5 20]", snap)
	}
}

func TestReinsertAfterRemove(t *testing.T) {
	l := New()
	for i := 0; i < 200; i++ {
		if !l.Insert(7) {
			t.Fatalf("round %d: Insert failed", i)
		}
		if !l.Remove(7) {
			t.Fatalf("round %d: Remove failed", i)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after balanced rounds", l.Len())
	}
}

func TestQuickVsMap(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(prog []op) bool {
		l := New()
		oracle := map[int64]bool{}
		for _, o := range prog {
			k := int64(o.Key % 16)
			switch o.Kind % 3 {
			case 0:
				if l.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if l.Remove(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if l.Contains(k) != oracle[k] {
					return false
				}
			}
		}
		return l.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSmokeFomitchev(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20000; i++ {
				k := int64(rng.Intn(24))
				switch rng.Intn(3) {
				case 0:
					l.Insert(k)
				case 1:
					l.Remove(k)
				default:
					l.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Quiescent structure: live chain strictly ascending, no flags left
	// behind, every reachable marked node eventually unlinkable.
	var last int64 = MinSentinel
	curr := l.head.succ.Load().right
	for curr.val != MaxSentinel {
		s := curr.succ.Load()
		if !s.mark {
			if curr.val <= last {
				t.Fatalf("live chain order violation: %d after %d", curr.val, last)
			}
			if s.flag {
				// A flag with no concurrent deleter means the deletion
				// stalled — helping should have cleared it; tolerate
				// only if the successor is marked (mid-protocol is
				// impossible at quiescence).
				t.Fatalf("dangling flag on live node %d at quiescence", curr.val)
			}
			last = curr.val
		}
		curr = s.right
	}
}
