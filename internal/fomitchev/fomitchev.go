// Package fomitchev implements the lock-free linked list of Fomitchev
// and Ruppert (PODC 2004), the related-work algorithm the paper's §5
// singles out: nodes carry a *backlink* to their predecessor, set when
// they are deleted, so an operation that loses a race backtracks a few
// nodes instead of restarting from head. The contains operation is the
// wait-free one of Gibson and Gramoli's "selfish" refinement (DISC
// 2015) — it never helps and never restarts.
//
// Deletion is a three-step protocol, each step one CAS on a node's
// (right, mark, flag) successor word:
//
//  1. FLAG the predecessor (right unchanged, flag=1): freezes prev.succ
//     so the victim cannot be bypassed while it is being deleted;
//  2. MARK the victim (mark=1): the logical deletion — after this the
//     node is absent; its backlink points at the flagged predecessor;
//  3. physically remove it: CAS the predecessor from (victim,0,1) to
//     (victim.right,0,0), clearing the flag and the victim together.
//
// Any thread that encounters an intermediate state can complete it
// (helping), and a thread whose CAS fails because its predecessor got
// marked walks backlinks to an unmarked node rather than re-traversing.
//
// As the paper notes, this algorithm is also not concurrency-optimal —
// the Figure-3 construction (helping + restart) applies to it as well.
package fomitchev

import "sync/atomic"

// Sentinel values stored in the head and tail nodes.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

// succ is the immutable (right, mark, flag) successor word of a node.
// mark and flag are mutually exclusive.
type succ struct {
	right *node
	mark  bool // this node is logically deleted
	flag  bool // this node's successor is being deleted; right is frozen
}

type node struct {
	val      int64
	succ     atomic.Pointer[succ]
	backlink atomic.Pointer[node]
}

func newNode(v int64, right *node) *node {
	n := &node{val: v}
	n.succ.Store(&succ{right: right})
	return n
}

// List is the Fomitchev-Ruppert list.
type List struct {
	head *node
	tail *node
}

// New returns an empty Fomitchev-Ruppert set.
func New() *List {
	tail := newNode(MaxSentinel, nil)
	head := newNode(MinSentinel, tail)
	return &List{head: head, tail: tail}
}

// searchFrom returns a window (prev, curr) with prev.val < v <=
// curr.val, starting from start (which must satisfy start.val < v).
// It helps complete deletions it encounters: a marked successor whose
// predecessor is flagged gets physically removed on the way past.
func (l *List) searchFrom(v int64, start *node) (prev, curr *node) {
	prev = start
	ps := prev.succ.Load()
	curr = ps.right
	for {
		cs := curr.succ.Load()
		// Skip/help past marked nodes unless we are inside a deleted
		// region (prev itself marked still pointing at curr) — the
		// caller resolves that via backlinks.
		for cs.mark && (!ps.mark || ps.right != curr) {
			if ps.right == curr {
				// prev must be flagged at curr (mark implies flagged
				// predecessor); complete the removal.
				helpMarked(prev, curr)
			}
			ps = prev.succ.Load()
			curr = ps.right
			cs = curr.succ.Load()
		}
		if curr.val >= v {
			return prev, curr
		}
		prev = curr
		ps = cs
		curr = cs.right
	}
}

// helpMarked physically removes the marked node del, whose predecessor
// prev must be flagged at del: CAS prev.succ (del,0,1) -> (del.right,0,0).
func helpMarked(prev, del *node) {
	expected := prev.succ.Load()
	if !expected.flag || expected.right != del {
		return // already completed by someone else
	}
	next := del.succ.Load().right
	prev.succ.CompareAndSwap(expected, &succ{right: next})
}

// helpFlagged completes the deletion of del, whose predecessor prev is
// flagged at del: install the backlink, mark del, then remove it.
func helpFlagged(prev, del *node) {
	del.backlink.Store(prev)
	if !del.succ.Load().mark {
		tryMark(del)
	}
	helpMarked(prev, del)
}

// tryMark sets del's mark bit, helping any deletion of del's successor
// that blocks it (del flagged means del's OWN successor is being
// deleted; that must finish before del's succ word can change).
func tryMark(del *node) {
	for {
		s := del.succ.Load()
		if s.mark {
			return
		}
		if s.flag {
			helpFlagged(del, s.right)
			continue
		}
		if del.succ.CompareAndSwap(s, &succ{right: s.right, mark: true}) {
			return
		}
	}
}

// backtrack walks backlinks from n to the nearest unmarked node.
func (l *List) backtrack(n *node) *node {
	for n.succ.Load().mark {
		b := n.backlink.Load()
		if b == nil {
			return l.head
		}
		n = b
	}
	return n
}

// tryFlag flags prev at target, the first step of deleting target. It
// returns the predecessor that is flagged at target (possibly a
// different node than the given prev after races) and whether THIS call
// installed the flag; (nil, false) means target is no longer in the
// list.
func (l *List) tryFlag(prev, target *node) (*node, bool) {
	for {
		ps := prev.succ.Load()
		if ps.flag && ps.right == target {
			return prev, false // already flagged by a competitor
		}
		if !ps.mark && ps.right == target {
			if prev.succ.CompareAndSwap(ps, &succ{right: target, flag: true}) {
				return prev, true
			}
			continue // prev.succ changed; reinspect
		}
		// prev no longer points cleanly at target: backtrack over
		// marked nodes, then re-search for target.
		prev = l.backtrack(prev)
		var curr *node
		prev, curr = l.searchFrom(target.val, prev)
		if curr != target {
			return nil, false // target was removed
		}
	}
}

// Contains reports whether v is in the set: the wait-free traversal of
// the selfish variant — no helping, no restarts, a single mark check
// on the landing node.
func (l *List) Contains(v int64) bool {
	curr := l.head
	for curr.val < v {
		curr = curr.succ.Load().right
	}
	s := curr.succ.Load()
	return curr.val == v && !s.mark
}

// Insert adds v to the set and reports whether v was absent.
func (l *List) Insert(v int64) bool {
	prev, curr := l.searchFrom(v, l.head)
	for {
		if curr.val == v && !curr.succ.Load().mark {
			return false
		}
		ps := prev.succ.Load()
		switch {
		case ps.flag:
			// prev's successor is mid-deletion; help and retry.
			helpFlagged(prev, ps.right)
		case ps.mark:
			// prev itself was deleted; back off over backlinks.
			prev = l.backtrack(prev)
		case ps.right != curr:
			// Window shifted; fall through to re-search below.
		default:
			n := newNode(v, curr)
			//lint:ignore hotalloc the (right, mark, flag) triple is an immutable cell by design; every successful CAS allocates one
			if prev.succ.CompareAndSwap(ps, &succ{right: n}) {
				return true
			}
			continue // inspect the new prev.succ without re-searching
		}
		prev, curr = l.searchFrom(v, prev)
	}
}

// Remove deletes v from the set and reports whether v was present. The
// linearization point of a successful remove is the mark CAS performed
// by whoever completes step 2 after this call's flag succeeded.
func (l *List) Remove(v int64) bool {
	prev, curr := l.searchFrom(v, l.head)
	if curr.val != v {
		return false
	}
	flagged, won := l.tryFlag(prev, curr)
	if flagged != nil {
		helpFlagged(flagged, curr)
	}
	return won
}

// Len counts the live elements by traversal; exact at quiescence.
func (l *List) Len() int {
	n := 0
	curr := l.head.succ.Load().right
	for curr.val != MaxSentinel {
		s := curr.succ.Load()
		if !s.mark {
			n++
		}
		curr = s.right
	}
	return n
}

// Snapshot returns the live elements in ascending order; exact at
// quiescence.
func (l *List) Snapshot() []int64 {
	var out []int64
	curr := l.head.succ.Load().right
	for curr.val != MaxSentinel {
		s := curr.succ.Load()
		if !s.mark {
			out = append(out, curr.val)
		}
		curr = s.right
	}
	return out
}
