// Package stats provides the summary statistics the benchmark harness
// reports: mean, standard deviation, min/max/median, and relative
// speedups between series. Only what the experiments need — this is not
// a general statistics library.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// RelStdDev returns the coefficient of variation (stddev/mean), or 0 for
// a zero mean.
func (s Summary) RelStdDev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// String formats the summary as "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean, s.StdDev, s.N)
}

// Speedup returns a/b, the factor by which a outperforms b. It returns
// +Inf for b == 0 with a > 0, and 1 when both are zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// HumanCount renders a count with K/M/G suffixes, as throughput numbers
// in the paper's figures are plotted (ops/sec in the millions).
func HumanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
