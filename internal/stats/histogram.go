package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of buckets of a Histogram: one per power
// of two of a nanosecond duration, which covers the full int64 range.
const HistBuckets = 64

// Histogram is a lock-free, log-bucketed latency histogram: bucket 0
// counts zero-duration samples and bucket i (i > 0) counts samples in
// [2^(i-1), 2^i) nanoseconds. Recording is a single atomic add, so
// any number of goroutines may record concurrently; the intended
// deployment is still one shard per worker merged after the run, so
// that sampled hot paths do not bounce a shared cache line.
//
// The zero value is an empty histogram ready for use. A Histogram
// must not be copied after first use.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for a sample of ns nanoseconds.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	return bits.Len64(uint64(ns))
}

// BucketBounds returns the half-open value range [lo, hi) of bucket i
// in nanoseconds.
func BucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), math.Ldexp(1, i)
}

// Record adds one sample of ns nanoseconds. Negative samples (clock
// steps) count as zero.
func (h *Histogram) Record(ns int64) {
	h.counts[bucketOf(ns)].Add(1)
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Merge adds every bucket of o into h. Merging is commutative and
// associative, so per-worker shards may be combined in any order.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
}

// BucketCounts is a plain (non-atomic) bucket-count snapshot. Counter
// snapshots are monotone, so the difference of two snapshots of the
// same histogram is itself a valid count set — the basis of the
// interval-metrics windows (internal/obs/trace).
type BucketCounts [HistBuckets]uint64

// Buckets returns a plain snapshot of the bucket counts.
func (h *Histogram) Buckets() BucketCounts {
	var out BucketCounts
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Add returns the bucket-wise sum of c and o.
func (c BucketCounts) Add(o BucketCounts) BucketCounts {
	for i := range c {
		c[i] += o[i]
	}
	return c
}

// Sub returns the bucket-wise difference c − o (for deltas over an
// interval; counts are monotone, so c must postdate o).
func (c BucketCounts) Sub(o BucketCounts) BucketCounts {
	for i := range c {
		c[i] -= o[i]
	}
	return c
}

// Count returns the total number of samples in the counts.
func (c BucketCounts) Count() uint64 {
	var n uint64
	for _, b := range c {
		n += b
	}
	return n
}

// Quantile estimates the q-quantile of the counted samples; see
// Histogram.Quantile.
func (c BucketCounts) Quantile(q float64) float64 {
	total := c.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i, n := range c {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := BucketBounds(i)
			frac := float64(target-cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return 0 // unreachable: target <= total
}

// Percentiles digests the counts into the report percentiles.
func (c BucketCounts) Percentiles() LatencySummary {
	return LatencySummary{
		Count: c.Count(),
		P50:   c.Quantile(0.50),
		P90:   c.Quantile(0.90),
		P99:   c.Quantile(0.99),
		P999:  c.Quantile(0.999),
	}
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// recorded samples in nanoseconds, interpolating linearly inside the
// log-sized bucket holding the target rank; the estimate is therefore
// accurate to within a factor of two, the bucket resolution. An empty
// histogram yields 0.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Buckets().Quantile(q)
}

// LatencySummary is the percentile digest the benchmark reports emit
// for one operation type. All percentiles are in nanoseconds.
type LatencySummary struct {
	Count uint64
	P50   float64
	P90   float64
	P99   float64
	P999  float64
}

// Percentiles digests the histogram into the report percentiles. Call
// it at quiescence: each quantile snapshots the buckets independently.
func (h *Histogram) Percentiles() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
