package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{4.5})
	if s.N != 1 || s.Mean != 4.5 || s.StdDev != 0 || s.Min != 4.5 || s.Max != 4.5 || s.Median != 4.5 {
		t.Fatalf("Summarize single = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.Mean, 5) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic example is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, math.Sqrt(32.0/7.0))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeMedianOdd(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("Median = %v, want 5", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip non-finite inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			// Mean must lie within [min, max] barring fp noise on
			// extreme magnitudes.
			return math.Abs(s.Mean) > 1e300
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRelStdDev(t *testing.T) {
	if got := (Summary{}).RelStdDev(); got != 0 {
		t.Fatalf("RelStdDev of zero summary = %v", got)
	}
	s := Summary{Mean: 10, StdDev: 2}
	if !almostEqual(s.RelStdDev(), 0.2) {
		t.Fatalf("RelStdDev = %v, want 0.2", s.RelStdDev())
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(3, 2) != 1.5 {
		t.Fatal("Speedup(3,2) != 1.5")
	}
	if Speedup(0, 0) != 1 {
		t.Fatal("Speedup(0,0) != 1")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("Speedup(1,0) != +Inf")
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{1500, "1.5K"},
		{2500000, "2.50M"},
		{3200000000, "3.20G"},
	}
	for _, c := range cases {
		if got := HumanCount(c.in); got != c.want {
			t.Errorf("HumanCount(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
