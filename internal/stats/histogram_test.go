package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if n := h.Count(); n != 0 {
		t.Fatalf("empty histogram Count = %d", n)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	p := h.Percentiles()
	if p != (LatencySummary{}) {
		t.Errorf("empty histogram Percentiles = %+v, want zero", p)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(1000) // bucket [512, 1024)
	if n := h.Count(); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
	lo, hi := BucketBounds(bucketOf(1000))
	if lo != 512 || hi != 1024 {
		t.Fatalf("bucketOf(1000) bounds = [%v, %v), want [512, 1024)", lo, hi)
	}
	// Every quantile of a single sample must land in its bucket.
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	var h Histogram
	h.Record(-5) // clock step: counts as zero
	h.Record(0)
	if got := h.Buckets()[0]; got != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (zero and negative samples)", got)
	}
	if got := h.Quantile(0.5); got < 0 || got >= 1 {
		t.Errorf("Quantile(0.5) = %v, want in [0, 1)", got)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for ns := int64(1); ns < 1<<20; ns *= 3 {
		h.Record(ns)
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %v < Quantile at lower q = %v", q, got, prev)
		}
		prev = got
	}
}

func TestBucketBoundsPartition(t *testing.T) {
	// The buckets must tile [0, 2^63) with no gaps or overlaps.
	_, hi := BucketBounds(0)
	for i := 1; i < HistBuckets; i++ {
		lo, next := BucketBounds(i)
		if lo != hi {
			t.Fatalf("bucket %d starts at %v, previous ended at %v", i, lo, hi)
		}
		if next <= lo {
			t.Fatalf("bucket %d empty: [%v, %v)", i, lo, next)
		}
		hi = next
	}
	// And bucketOf must agree with the bounds on the edges.
	for _, ns := range []int64{0, 1, 2, 3, 511, 512, 1023, 1024} {
		b := bucketOf(ns)
		lo, hi := BucketBounds(b)
		if float64(ns) < lo || float64(ns) >= hi {
			t.Errorf("bucketOf(%d) = %d with bounds [%v, %v): sample outside", ns, b, lo, hi)
		}
	}
	// MaxInt64 rounds up to 2^63 in float64, so check its bucket index
	// directly rather than via the float bounds.
	if b := bucketOf(math.MaxInt64); b != HistBuckets-1 {
		t.Errorf("bucketOf(MaxInt64) = %d, want %d", b, HistBuckets-1)
	}
}

// TestHistogramMergeAssociative checks that merging per-worker shards is
// order-independent: (a+b)+c and a+(b+c) must agree bucket for bucket.
func TestHistogramMergeAssociative(t *testing.T) {
	fill := func(h *Histogram, samples []int64) {
		for _, s := range samples {
			h.Record(s)
		}
	}
	check := func(sa, sb, sc []int64) bool {
		var a1, b1, c1, a2, b2, c2 Histogram
		fill(&a1, sa)
		fill(&b1, sb)
		fill(&c1, sc)
		fill(&a2, sa)
		fill(&b2, sb)
		fill(&c2, sc)
		// left: (a+b)+c, folded into a1
		a1.Merge(&b1)
		a1.Merge(&c1)
		// right: a+(b+c), folded into b2 then a2
		b2.Merge(&c2)
		a2.Merge(&b2)
		return a1.Buckets() == a2.Buckets()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMergePreservesCount(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i * 7)
		b.Record(i * 13)
	}
	a.Merge(&b)
	if n := a.Count(); n != 200 {
		t.Fatalf("merged Count = %d, want 200", n)
	}
	if n := b.Count(); n != 100 {
		t.Fatalf("Merge mutated its argument: Count = %d, want 100", n)
	}
}
