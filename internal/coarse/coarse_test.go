package coarse

import (
	"sync"
	"testing"
)

func TestBasics(t *testing.T) {
	l := New()
	if !l.Insert(2) || l.Insert(2) || !l.Contains(2) || l.Contains(3) {
		t.Fatal("basic insert/contains semantics wrong")
	}
	if !l.Remove(2) || l.Remove(2) || l.Contains(2) {
		t.Fatal("basic remove semantics wrong")
	}
	if l.Len() != 0 || len(l.Snapshot()) != 0 {
		t.Fatal("empty after balanced ops expected")
	}
}

func TestSnapshotSorted(t *testing.T) {
	l := New()
	for _, v := range []int64{5, 1, 3, 2, 4} {
		l.Insert(v)
	}
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("snapshot not ascending: %v", snap)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// TestMutualExclusion: exact final counts under concurrent updates.
func TestMutualExclusion(t *testing.T) {
	l := New()
	const goroutines, keys = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				l.Insert(base + k)
			}
		}(int64(g * keys))
	}
	wg.Wait()
	if l.Len() != goroutines*keys {
		t.Fatalf("Len = %d, want %d", l.Len(), goroutines*keys)
	}
}
