// Package coarse implements the coarse-grained locking list: a single
// mutex around the sequential list of Algorithm 1. It is the sanity
// floor of the benchmark suite — every algorithm in the paper must beat
// it as soon as there is any parallelism to exploit.
package coarse

import (
	"sync"

	"listset/internal/seqlist"
)

// Sentinel values stored in the head and tail nodes.
const (
	MinSentinel = seqlist.MinSentinel
	MaxSentinel = seqlist.MaxSentinel
)

// List is a sequential list behind one global mutex.
type List struct {
	mu   sync.Mutex
	list *seqlist.List
}

// New returns an empty coarse-grained locking set.
func New() *List {
	return &List{list: seqlist.New()}
}

// Insert adds v to the set and reports whether v was absent.
func (l *List) Insert(v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.list.Insert(v)
}

// Remove deletes v from the set and reports whether v was present.
func (l *List) Remove(v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.list.Remove(v)
}

// Contains reports whether v is in the set.
func (l *List) Contains(v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.list.Contains(v)
}

// Len returns the number of elements.
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.list.Len()
}

// Snapshot returns the elements in ascending order.
func (l *List) Snapshot() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.list.Snapshot()
}
