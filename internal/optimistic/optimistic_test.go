package optimistic

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestValidateDetectsUnlinkedPrev(t *testing.T) {
	l := New()
	l.Insert(10)
	l.Insert(20)
	prev, curr := l.find(20) // window (10, 20)
	if prev.val != 10 || curr.val != 20 {
		t.Fatalf("window = (%d, %d)", prev.val, curr.val)
	}
	prev.lock.Lock()
	curr.lock.Lock()
	if !l.validate(prev, curr) {
		t.Fatal("fresh window failed validation")
	}
	curr.lock.Unlock()
	prev.lock.Unlock()

	// Physically remove prev; the stale window must now fail.
	if !l.Remove(10) {
		t.Fatal("Remove(10) failed")
	}
	prev.lock.Lock()
	curr.lock.Lock()
	if l.validate(prev, curr) {
		t.Fatal("validation passed though prev is unreachable")
	}
	curr.lock.Unlock()
	prev.lock.Unlock()
}

func TestValidateDetectsWindowShift(t *testing.T) {
	l := New()
	l.Insert(10)
	l.Insert(30)
	prev, curr := l.find(30) // window (10, 30)
	l.Insert(20)             // shifts the window: 10 -> 20 -> 30
	prev.lock.Lock()
	curr.lock.Lock()
	if l.validate(prev, curr) {
		t.Fatal("validation passed though a node was inserted into the window")
	}
	curr.lock.Unlock()
	prev.lock.Unlock()
}

func TestLockWindowRetriesUntilStable(t *testing.T) {
	l := New()
	l.Insert(10)
	prev, curr := l.lockWindow(10)
	if prev != l.head || curr.val != 10 {
		t.Fatalf("lockWindow = (%d, %d)", prev.val, curr.val)
	}
	if !prev.lock.Locked() || !curr.lock.Locked() {
		t.Fatal("window returned without both locks held")
	}
	curr.lock.Unlock()
	prev.lock.Unlock()
}

func TestQuickVsMap(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(prog []op) bool {
		l := New()
		oracle := map[int64]bool{}
		for _, o := range prog {
			k := int64(o.Key % 16)
			switch o.Kind % 3 {
			case 0:
				if l.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if l.Remove(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if l.Contains(k) != oracle[k] {
					return false
				}
			}
		}
		return l.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSmokeOptimistic(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				k := int64(rng.Intn(24))
				switch rng.Intn(3) {
				case 0:
					l.Insert(k)
				case 1:
					l.Remove(k)
				default:
					l.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	var last int64 = MinSentinel
	for curr := l.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		if curr.val <= last {
			t.Fatalf("order violation: %d after %d", curr.val, last)
		}
		if curr.lock.Locked() {
			t.Fatal("reachable node lock held at quiescence")
		}
		last = curr.val
	}
}
