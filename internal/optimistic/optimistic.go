// Package optimistic implements the Optimistic locking list ("The Art
// of Multiprocessor Programming", ch. 9.6), the historical step between
// hand-over-hand locking and the Lazy list, and the prototypical
// "pessimistic validation" design in the paper's §5 discussion of
// optimistic vs pessimistic techniques.
//
// Traversal is lock-free, but with no deletion marks an update (and
// even contains!) must, after locking the window, validate it by
// RE-TRAVERSING the list from head to check that prev is still
// reachable and still points at curr. Every operation therefore pays
// two traversals, and read-only operations take locks — the very
// metadata traffic the paper's framework charges against an algorithm's
// concurrency.
package optimistic

import (
	"sync/atomic"

	"listset/internal/trylock"
)

// Sentinel values stored in the head and tail nodes.
const (
	MinSentinel = -1 << 63
	MaxSentinel = 1<<63 - 1
)

type node struct {
	val  int64
	next atomic.Pointer[node]
	lock trylock.SpinLock
}

// List is the Optimistic locking list.
type List struct {
	head *node
	tail *node
}

// New returns an empty Optimistic list.
func New() *List {
	l := &List{
		head: &node{val: MinSentinel},
		tail: &node{val: MaxSentinel},
	}
	l.head.next.Store(l.tail)
	return l
}

// find traverses without locks and returns the window (prev, curr).
func (l *List) find(v int64) (prev, curr *node) {
	prev = l.head
	curr = prev.next.Load()
	for curr.val < v {
		prev = curr
		curr = curr.next.Load()
	}
	return prev, curr
}

// validate re-traverses from head and reports whether prev is still
// reachable with curr as its successor. Both nodes must be locked by
// the caller.
func (l *List) validate(prev, curr *node) bool {
	n := l.head
	for n.val <= prev.val {
		if n == prev {
			return prev.next.Load() == curr
		}
		n = n.next.Load()
	}
	return false
}

// lockWindow locates and locks a validated window for v. The caller
// must unlock curr then prev.
func (l *List) lockWindow(v int64) (prev, curr *node) {
	for {
		prev, curr = l.find(v)
		prev.lock.Lock()
		curr.lock.Lock()
		if l.validate(prev, curr) {
			return prev, curr
		}
		curr.lock.Unlock()
		prev.lock.Unlock()
	}
}

// Contains reports whether v is in the set. Unlike the Lazy list and
// VBL, the optimistic list has no deletion marks, so even a membership
// query locks and validates its window.
func (l *List) Contains(v int64) bool {
	prev, curr := l.lockWindow(v)
	defer prev.lock.Unlock()
	defer curr.lock.Unlock()
	return curr.val == v
}

// Insert adds v to the set and reports whether v was absent.
func (l *List) Insert(v int64) bool {
	prev, curr := l.lockWindow(v)
	defer prev.lock.Unlock()
	defer curr.lock.Unlock()
	if curr.val == v {
		return false
	}
	//lint:ignore hotalloc the insert path must materialize the new node; the optimistic baseline has no arena mode
	n := &node{val: v}
	n.next.Store(curr)
	prev.next.Store(n)
	return true
}

// Remove deletes v from the set and reports whether v was present.
func (l *List) Remove(v int64) bool {
	prev, curr := l.lockWindow(v)
	defer prev.lock.Unlock()
	defer curr.lock.Unlock()
	if curr.val != v {
		return false
	}
	prev.next.Store(curr.next.Load())
	return true
}

// Len counts the elements by traversal; exact at quiescence.
func (l *List) Len() int {
	n := 0
	for curr := l.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		n++
	}
	return n
}

// Snapshot returns the elements in ascending order; exact at quiescence.
func (l *List) Snapshot() []int64 {
	var out []int64
	for curr := l.head.next.Load(); curr.val != MaxSentinel; curr = curr.next.Load() {
		out = append(out, curr.val)
	}
	return out
}
