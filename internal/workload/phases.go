package workload

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Time-varying and adversarial workloads. A Schedule is a cyclic list
// of phases — full workload Configs with durations — advanced by one
// shared Clock that every worker's Generator polls with a single
// atomic load per draw. The presets encode the three shapes the
// adaptive controller (internal/adapt) is evaluated against:
//
//   - "bursts": read-heavy → write-burst → delete-churn, the
//     time-varying mix that forces the retry-budget and backoff
//     actuators to track a moving operating point;
//   - "seam": all hot traffic parked on the key-space midpoint, which
//     is a shard boundary for every power-of-two shard count — the
//     worst case for a static range partition;
//   - "moving": a hot window that jumps across the range each phase,
//     so a rebalanced partition is wrong again a phase later.

// Phase is one leg of a Schedule: a complete workload configuration
// and how long it runs before the clock moves on.
type Phase struct {
	// Name labels the phase in reports ("write-burst").
	Name string
	// Dur is the phase's dwell time before the schedule advances.
	Dur time.Duration
	// Cfg is the full workload for the phase's duration.
	Cfg Config
}

// Schedule is a cyclic time-varying workload: phases plus the shared
// clock naming the current one. Construct with NewSchedule or Preset;
// drive with Drive (or Advance from a custom driver).
type Schedule struct {
	Phases []Phase
	Clock  Clock
}

// NewSchedule validates the phases and returns a schedule positioned
// on phase 0.
func NewSchedule(phases []Phase) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: schedule needs at least one phase")
	}
	for i, ph := range phases {
		if err := ph.Cfg.Validate(); err != nil {
			return nil, fmt.Errorf("workload: phase %d (%s): %w", i, ph.Name, err)
		}
		if ph.Dur <= 0 {
			return nil, fmt.Errorf("workload: phase %d (%s) has non-positive duration %v", i, ph.Name, ph.Dur)
		}
	}
	return &Schedule{Phases: phases}, nil
}

// Advance moves the clock to phase i (mod the phase count).
func (s *Schedule) Advance(i int) {
	s.Clock.phase.Store(int32(i % len(s.Phases)))
}

// Current returns the clock's phase index and that phase.
func (s *Schedule) Current() (int, Phase) {
	i := int(s.Clock.Phase())
	return i, s.Phases[i]
}

// Drive cycles the clock through the phases, dwelling each phase's
// duration, until stop closes. Run it in its own goroutine alongside
// the workers; generators pick the change up on their next draw.
func (s *Schedule) Drive(stop <-chan struct{}) {
	t := time.NewTimer(s.Phases[0].Dur)
	defer t.Stop()
	for i := 0; ; {
		select {
		case <-stop:
			return
		case <-t.C:
			i++
			s.Advance(i)
			t.Reset(s.Phases[i%len(s.Phases)].Dur)
		}
	}
}

// MaxRange returns the largest key range any phase draws from — what a
// harness must size its set (and focus range) for.
func (s *Schedule) MaxRange() int64 {
	var r int64
	for _, ph := range s.Phases {
		if ph.Cfg.Range > r {
			r = ph.Cfg.Range
		}
	}
	return r
}

// String renders the cycle compactly for reports.
func (s *Schedule) String() string {
	out := ""
	for i, ph := range s.Phases {
		if i > 0 {
			out += " → "
		}
		out += fmt.Sprintf("%s(%v)", ph.Name, ph.Dur)
	}
	return out
}

// Clock is the shared phase pointer: one writer (the driver), many
// readers (the generators), one atomic load per draw.
type Clock struct {
	phase atomic.Int32
}

// Phase returns the current phase index.
func (c *Clock) Phase() int32 { return c.phase.Load() }

// DefaultPhaseDur is the per-phase dwell used by presets when the
// caller passes 0: several controller intervals long, so the adaptive
// loop has time to converge inside each phase.
const DefaultPhaseDur = 150 * time.Millisecond

// PresetNames lists the phase-schedule presets Preset accepts.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]func(base Config, dur time.Duration) []Phase{
	"bursts": func(base Config, dur time.Duration) []Phase {
		read, burst, churn := base, base, base
		read.UpdatePercent, read.InsertShare = 10, 0
		burst.UpdatePercent, burst.InsertShare = 80, 70
		churn.UpdatePercent, churn.InsertShare = 80, 20
		return []Phase{
			{Name: "read-heavy", Dur: dur, Cfg: read},
			{Name: "write-burst", Dur: dur, Cfg: burst},
			{Name: "delete-churn", Dur: dur, Cfg: churn},
		}
	},
	"seam": func(base Config, dur time.Duration) []Phase {
		hot := base
		hot.Dist = DistHotspot
		w := hot.HotSpan()
		hot.HotLo = clampHot(base.Range/2-w/2, w, base.Range)
		return []Phase{{Name: "seam-attack", Dur: dur, Cfg: hot}}
	},
	"moving": func(base Config, dur time.Duration) []Phase {
		const hops = 8
		phases := make([]Phase, hops)
		for i := range phases {
			hot := base
			hot.Dist = DistHotspot
			w := hot.HotSpan()
			hot.HotLo = clampHot(int64(i)*base.Range/hops, w, base.Range)
			phases[i] = Phase{Name: fmt.Sprintf("hotspot-%d", i), Dur: dur, Cfg: hot}
		}
		return phases
	},
}

// clampHot keeps a hot window of width w inside [0, r).
func clampHot(lo, w, r int64) int64 {
	if lo < 0 {
		return 0
	}
	if lo+w > r {
		return r - w
	}
	return lo
}

// Preset builds one of the named adversarial schedules over base.
// dur 0 means DefaultPhaseDur per phase.
func Preset(name string, base Config, dur time.Duration) (*Schedule, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown phase preset %q (have: %v)", name, PresetNames())
	}
	if dur <= 0 {
		dur = DefaultPhaseDur
	}
	return NewSchedule(mk(base, dur))
}
