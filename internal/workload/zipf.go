package workload

import "math"

// Zipfian key distribution (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD 1994 — the generator
// YCSB popularized): key rank r is drawn with probability
// proportional to 1/r^theta, theta in (0, 1). Key 0 is the hottest.
// Synchrobench's uniform draw shows the lists at their friendliest —
// every window equally likely — while a skewed draw concentrates both
// the traversal prefix and the lock contention on the low keys, which
// is exactly the regime where batch amortization and the value-aware
// validation earn (or lose) their keep.

// zipfExactMax bounds the exact zeta summation; beyond it the tail is
// approximated by its integral, which keeps construction O(1)-ish for
// huge ranges at <1% distribution error.
const zipfExactMax = 1 << 20

// zipfGen draws Zipf-distributed ranks in [0, n) from a caller-owned
// uniform source. The zero value is not usable; call newZipf.
type zipfGen struct {
	n     int64
	theta float64
	alpha float64 // 1/(1-theta)
	zetan float64 // zeta(n, theta)
	eta   float64
	half  float64 // 0.5^theta
}

// zeta returns sum_{i=1..n} 1/i^theta, switching to the integral
// approximation past zipfExactMax.
func zeta(n int64, theta float64) float64 {
	m := n
	if m > zipfExactMax {
		m = zipfExactMax
	}
	sum := 0.0
	for i := int64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// Integral tail: ∫_m^n x^-theta dx.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

// newZipf returns a generator over [0, n) with skew theta in (0, 1).
func newZipf(n int64, theta float64) zipfGen {
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return zipfGen{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

// draw maps one uniform draw to a Zipf rank in [0, z.n).
func (z *zipfGen) draw(rng *XorShift) int64 {
	// 53-bit mantissa uniform in [0, 1).
	u := float64(rng.Next()>>11) / (1 << 53)
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r < 0 {
		return 0
	}
	if r >= z.n {
		return z.n - 1
	}
	return r
}
