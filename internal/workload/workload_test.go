package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{UpdatePercent: 0, Range: 1}, true},
		{Config{UpdatePercent: 100, Range: 50}, true},
		{Config{UpdatePercent: 20, Range: 20000}, true},
		{Config{UpdatePercent: -1, Range: 50}, false},
		{Config{UpdatePercent: 101, Range: 50}, false},
		{Config{UpdatePercent: 20, Range: 0}, false},
		{Config{UpdatePercent: 20, Range: -5}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) error = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestOpString(t *testing.T) {
	if Contains.String() != "contains" || Insert.String() != "insert" || Remove.String() != "remove" {
		t.Fatal("Op.String names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown Op should still render")
	}
}

// TestGeneratorMixMatchesConfig draws a large stream and checks the
// empirical mix: x/2% inserts, x/2% removes, (100-x)% contains, within
// a small tolerance.
func TestGeneratorMixMatchesConfig(t *testing.T) {
	for _, update := range []int{0, 10, 20, 50, 100} {
		cfg := Config{UpdatePercent: update, Range: 1000}
		g := NewGenerator(cfg, 7)
		const n = 400000
		var ins, rem, con int
		for i := 0; i < n; i++ {
			op, k := g.Next()
			if k < 0 || k >= cfg.Range {
				t.Fatalf("key %d out of range [0, %d)", k, cfg.Range)
			}
			switch op {
			case Insert:
				ins++
			case Remove:
				rem++
			case Contains:
				con++
			}
		}
		wantIns := float64(update) / 200
		wantCon := float64(100-update) / 100
		if got := float64(ins) / n; math.Abs(got-wantIns) > 0.01 {
			t.Errorf("update=%d%%: insert fraction %.3f, want %.3f", update, got, wantIns)
		}
		if got := float64(rem) / n; math.Abs(got-wantIns) > 0.01 {
			t.Errorf("update=%d%%: remove fraction %.3f, want %.3f", update, got, wantIns)
		}
		if got := float64(con) / n; math.Abs(got-wantCon) > 0.01 {
			t.Errorf("update=%d%%: contains fraction %.3f, want %.3f", update, got, wantCon)
		}
	}
}

// TestGeneratorKeysRoughlyUniform checks no key bucket is wildly off the
// uniform expectation.
func TestGeneratorKeysRoughlyUniform(t *testing.T) {
	cfg := Config{UpdatePercent: 50, Range: 16}
	g := NewGenerator(cfg, 3)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		_, k := g.Next()
		buckets[k]++
	}
	want := n / 16
	for k, got := range buckets {
		if got < want*8/10 || got > want*12/10 {
			t.Errorf("key %d drawn %d times, want about %d", k, got, want)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{UpdatePercent: 20, Range: 100}
	a := NewGenerator(cfg, 42)
	b := NewGenerator(cfg, 42)
	for i := 0; i < 1000; i++ {
		opA, kA := a.Next()
		opB, kB := b.Next()
		if opA != opB || kA != kB {
			t.Fatalf("step %d: streams diverge with equal seeds", i)
		}
	}
	c := NewGenerator(cfg, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		_, kA := a.Next()
		_, kC := c.Next()
		if kA == kC {
			same++
		}
	}
	if same > 500 {
		t.Fatalf("different seeds produced near-identical streams (%d/1000 equal keys)", same)
	}
}

func TestPrepopulateHalfProbability(t *testing.T) {
	cfg := Config{UpdatePercent: 20, Range: 10000}
	inserted := map[int64]bool{}
	n := Prepopulate(cfg, 5, func(v int64) bool {
		if inserted[v] {
			return false
		}
		inserted[v] = true
		return true
	})
	if n != len(inserted) {
		t.Fatalf("returned %d but inserted %d", n, len(inserted))
	}
	// Binomial(10000, 1/2): 5 sigma is 250.
	if n < 4750 || n > 5250 {
		t.Fatalf("prepopulated %d of 10000, want about 5000", n)
	}
	for v := range inserted {
		if v < 0 || v >= cfg.Range {
			t.Fatalf("prepopulated key %d out of range", v)
		}
	}
}

func TestPrepopulateDeterministic(t *testing.T) {
	cfg := Config{UpdatePercent: 0, Range: 500}
	var a, b []int64
	Prepopulate(cfg, 9, func(v int64) bool { a = append(a, v); return true })
	Prepopulate(cfg, 9, func(v int64) bool { b = append(b, v); return true })
	if len(a) != len(b) {
		t.Fatal("same seed gave different population sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different populations")
		}
	}
}

func TestPrepopulateHalfExact(t *testing.T) {
	cfg := Config{UpdatePercent: 0, Range: 100}
	var got []int64
	n := PrepopulateHalf(cfg, func(v int64) bool { got = append(got, v); return true })
	if n != 50 || len(got) != 50 {
		t.Fatalf("PrepopulateHalf inserted %d keys, want 50", n)
	}
	for i, v := range got {
		if v != int64(i*2) {
			t.Fatalf("key %d = %d, want %d", i, v, i*2)
		}
	}
}

// TestGeneratorScanMix checks the scan band comes out of the contains
// share and scans carry in-range lower bounds.
func TestGeneratorScanMix(t *testing.T) {
	cfg := Config{UpdatePercent: 20, ScanPercent: 10, Range: 1000}
	g := NewGenerator(cfg, 13)
	const n = 400000
	var scans, cons int
	for i := 0; i < n; i++ {
		op, k := g.Next()
		if k < 0 || k >= cfg.Range {
			t.Fatalf("key %d out of range", k)
		}
		switch op {
		case Scan:
			scans++
		case Contains:
			cons++
		}
	}
	if got := float64(scans) / n; math.Abs(got-0.10) > 0.01 {
		t.Errorf("scan fraction %.3f, want 0.10", got)
	}
	if got := float64(cons) / n; math.Abs(got-0.70) > 0.01 {
		t.Errorf("contains fraction %.3f, want 0.70", got)
	}
}

func TestScanSpanDefault(t *testing.T) {
	if got := (Config{Range: 10}).ScanSpan(); got != DefaultScanWidth {
		t.Fatalf("default scan span = %d, want %d", got, DefaultScanWidth)
	}
	if got := (Config{Range: 10, ScanWidth: 7}).ScanSpan(); got != 7 {
		t.Fatalf("explicit scan span = %d, want 7", got)
	}
}

// TestNextBatch checks batch draws: k keys in range, buffer reuse, and
// scans degenerating to a single lower bound.
func TestNextBatch(t *testing.T) {
	cfg := Config{UpdatePercent: 50, ScanPercent: 10, Range: 500}
	g := NewGenerator(cfg, 21)
	buf := make([]int64, 0, 64)
	for i := 0; i < 2000; i++ {
		op, ks := g.NextBatch(buf, 32)
		if op == Scan {
			if len(ks) != 1 {
				t.Fatalf("scan batch has %d keys, want 1", len(ks))
			}
		} else if len(ks) != 32 {
			t.Fatalf("batch has %d keys, want 32", len(ks))
		}
		for _, k := range ks {
			if k < 0 || k >= cfg.Range {
				t.Fatalf("batch key %d out of range", k)
			}
		}
		if cap(buf) >= 32 && &ks[0] != &buf[:1][0] {
			t.Fatal("NextBatch did not reuse the caller's buffer")
		}
	}
}

func TestNextBatchDeterministic(t *testing.T) {
	cfg := Config{UpdatePercent: 30, Range: 200}
	a := NewGenerator(cfg, 8)
	b := NewGenerator(cfg, 8)
	ba, bb := make([]int64, 0, 16), make([]int64, 0, 16)
	for i := 0; i < 500; i++ {
		opA, ksA := a.NextBatch(ba, 16)
		opB, ksB := b.NextBatch(bb, 16)
		if opA != opB || len(ksA) != len(ksB) {
			t.Fatal("batch streams diverge with equal seeds")
		}
		for j := range ksA {
			if ksA[j] != ksB[j] {
				t.Fatal("batch keys diverge with equal seeds")
			}
		}
	}
}

// TestPrepopulateKeysAgree checks PrepopulateKeys returns exactly the
// keys Prepopulate inserts, ascending.
func TestPrepopulateKeysAgree(t *testing.T) {
	cfg := Config{UpdatePercent: 0, Range: 2000}
	var streamed []int64
	Prepopulate(cfg, 17, func(v int64) bool { streamed = append(streamed, v); return true })
	keys := PrepopulateKeys(cfg, 17)
	if len(keys) != len(streamed) {
		t.Fatalf("PrepopulateKeys returned %d keys, Prepopulate inserted %d", len(keys), len(streamed))
	}
	for i := range keys {
		if keys[i] != streamed[i] {
			t.Fatalf("key %d: %d != %d", i, keys[i], streamed[i])
		}
		if i > 0 && keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly ascending at %d", i)
		}
	}
}

func TestXorShiftZeroSeed(t *testing.T) {
	x := NewXorShift(0)
	if x.Next() == 0 && x.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestXorShiftIntnBounds(t *testing.T) {
	f := func(seed uint64, n int64) bool {
		if n <= 0 {
			n = 1 - n%100 // force positive
		}
		x := NewXorShift(seed)
		for i := 0; i < 100; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorShiftNotObviouslyPeriodic(t *testing.T) {
	x := NewXorShift(1)
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		v := x.Next()
		if seen[v] {
			t.Fatalf("value repeated after %d draws", i)
		}
		seen[v] = true
	}
}
