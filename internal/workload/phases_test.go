package workload

import (
	"testing"
	"time"
)

// TestHotspotConcentration: the hotspot distribution must place its
// configured share (±ε) of draws inside the hot window and spread the
// rest over the whole range.
func TestHotspotConcentration(t *testing.T) {
	cfg := Config{
		UpdatePercent: 50,
		Range:         20000,
		Dist:          DistHotspot,
		HotLo:         9900,
		HotWidth:      200,
		HotPercent:    90,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(cfg, 42)
	const draws = 200000
	hot, outside := 0, 0
	for i := 0; i < draws; i++ {
		k := g.Key()
		if k < 0 || k >= cfg.Range {
			t.Fatalf("key %d escaped the range [0, %d)", k, cfg.Range)
		}
		if k >= cfg.HotLo && k < cfg.HotLo+cfg.HotWidth {
			hot++
		} else {
			outside++
		}
	}
	// 90% targeted + ~1% of the uniform remainder falls in the window; accept a
	// generous band around it.
	frac := float64(hot) / draws
	if frac < 0.87 || frac > 0.95 {
		t.Fatalf("hot-window fraction = %.3f, want ≈0.90", frac)
	}
	if outside == 0 {
		t.Fatal("no draws outside the hot window; background traffic missing")
	}
}

// TestInsertShareBias: InsertShare must skew the insert/remove split
// of the update half without touching the read share.
func TestInsertShareBias(t *testing.T) {
	cfg := Config{UpdatePercent: 80, Range: 1000, InsertShare: 20}
	g := NewGenerator(cfg, 7)
	const draws = 100000
	var ins, rem, rd int
	for i := 0; i < draws; i++ {
		switch op, _ := g.Next(); op {
		case Insert:
			ins++
		case Remove:
			rem++
		default:
			rd++
		}
	}
	if f := float64(ins) / draws; f < 0.14 || f > 0.18 {
		t.Errorf("insert fraction = %.3f, want ≈0.16 (20%% of 80%%)", f)
	}
	if f := float64(rem) / draws; f < 0.61 || f > 0.67 {
		t.Errorf("remove fraction = %.3f, want ≈0.64", f)
	}
	if f := float64(rd) / draws; f < 0.17 || f > 0.23 {
		t.Errorf("read fraction = %.3f, want ≈0.20", f)
	}
}

// TestPresetSchedulesValid: every preset must compile into a valid
// schedule over a typical benchmark base config.
func TestPresetSchedulesValid(t *testing.T) {
	base := Config{UpdatePercent: 50, Range: 20000}
	for _, name := range PresetNames() {
		sched, err := Preset(name, base, 0)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if len(sched.Phases) == 0 {
			t.Fatalf("preset %q: empty schedule", name)
		}
		if sched.MaxRange() != base.Range {
			t.Errorf("preset %q: MaxRange = %d, want %d", name, sched.MaxRange(), base.Range)
		}
		// Every phase must draw keys that stay in range.
		g := NewPhasedGenerator(sched, 3)
		for i := range sched.Phases {
			sched.Advance(i)
			for j := 0; j < 2000; j++ {
				if _, k := g.Next(); k < 0 || k >= base.Range {
					t.Fatalf("preset %q phase %d: key %d out of range", name, i, k)
				}
			}
		}
	}
	if _, err := Preset("nope", base, 0); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestSeamPresetStraddlesMidpoint: the seam preset's hot window must
// contain the key-space midpoint — a shard boundary for every
// power-of-two shard count over [0, Range).
func TestSeamPresetStraddlesMidpoint(t *testing.T) {
	base := Config{UpdatePercent: 50, Range: 1 << 14}
	sched, err := Preset("seam", base, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.Phases[0].Cfg
	mid := base.Range / 2
	if cfg.HotLo >= mid || cfg.HotLo+cfg.HotSpan() <= mid {
		t.Fatalf("seam window [%d, %d) misses the midpoint %d", cfg.HotLo, cfg.HotLo+cfg.HotSpan(), mid)
	}
}

// TestPhasedGeneratorFollowsClock: advancing the shared clock must
// switch the op mix the generator samples.
func TestPhasedGeneratorFollowsClock(t *testing.T) {
	base := Config{UpdatePercent: 50, Range: 1000}
	sched, err := Preset("bursts", base, time.Hour) // advanced by hand
	if err != nil {
		t.Fatal(err)
	}
	g := NewPhasedGenerator(sched, 9)
	mix := func() float64 {
		upd := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			if op, _ := g.Next(); op == Insert || op == Remove {
				upd++
			}
		}
		return float64(upd) / draws
	}
	sched.Advance(0) // read-heavy: 10% updates
	if f := mix(); f > 0.15 {
		t.Errorf("read-heavy update fraction = %.3f, want ≈0.10", f)
	}
	sched.Advance(1) // write-burst: 80% updates
	if f := mix(); f < 0.75 {
		t.Errorf("write-burst update fraction = %.3f, want ≈0.80", f)
	}
	if i, ph := sched.Current(); i != 1 || ph.Name != "write-burst" {
		t.Errorf("Current() = %d/%q, want 1/write-burst", i, ph.Name)
	}
}
