package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// TestZipfQuickBoundsAndDeterminism is the satellite's property check:
// for arbitrary seed/range/theta, every draw lands in [0, n) and two
// generators with equal parameters produce identical streams.
func TestZipfQuickBoundsAndDeterminism(t *testing.T) {
	f := func(seed uint64, n int64, th uint16) bool {
		if n <= 0 {
			n = 1 - n%10000
		}
		// theta in (0, 1) from the raw uint16.
		theta := 0.01 + 0.98*float64(th)/math.MaxUint16
		cfg := Config{UpdatePercent: 50, Range: n, Dist: DistZipf, Theta: theta}
		if err := cfg.Validate(); err != nil {
			return false
		}
		a := NewGenerator(cfg, seed)
		b := NewGenerator(cfg, seed)
		for i := 0; i < 200; i++ {
			opA, kA := a.Next()
			opB, kB := b.Next()
			if opA != opB || kA != kB {
				return false
			}
			if kA < 0 || kA >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestZipfSkew checks the draw is actually Zipfian-shaped: key 0 is the
// hottest, and the head of the range absorbs far more mass than uniform
// would give it.
func TestZipfSkew(t *testing.T) {
	cfg := Config{UpdatePercent: 0, Range: 1000, Dist: DistZipf, Theta: 0.99}
	g := NewGenerator(cfg, 11)
	const n = 200000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		_, k := g.Next()
		counts[k]++
	}
	for k, c := range counts {
		if k != 0 && c > counts[0] {
			t.Fatalf("key %d drawn %d times > key 0's %d; 0 should be hottest", k, c, counts[0])
		}
	}
	// Under theta=0.99 the top 10 keys carry ~55% of the mass; uniform
	// would give them 1%.
	head := 0
	for k := int64(0); k < 10; k++ {
		head += counts[k]
	}
	if frac := float64(head) / n; frac < 0.25 {
		t.Fatalf("top-10 keys carry only %.1f%% of draws; not Zipfian", frac*100)
	}
}

// TestZipfLargeRangeApproximation exercises the integral-tail zeta
// path (n > zipfExactMax) and checks draws stay in bounds.
func TestZipfLargeRangeApproximation(t *testing.T) {
	n := int64(zipfExactMax) * 8
	cfg := Config{UpdatePercent: 50, Range: n, Dist: DistZipf, Theta: 0.6}
	g := NewGenerator(cfg, 3)
	for i := 0; i < 50000; i++ {
		_, k := g.Next()
		if k < 0 || k >= n {
			t.Fatalf("draw %d out of [0, %d)", k, n)
		}
	}
}

func TestZipfConfigValidate(t *testing.T) {
	bad := []Config{
		{UpdatePercent: 10, Range: 100, Dist: DistZipf},              // theta unset
		{UpdatePercent: 10, Range: 100, Dist: DistZipf, Theta: 1.0},  // theta too big
		{UpdatePercent: 10, Range: 100, Dist: DistZipf, Theta: -0.5}, // negative
		{UpdatePercent: 10, Range: 100, Dist: "pareto"},              // unknown dist
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad config", cfg)
		}
	}
	good := []Config{
		{UpdatePercent: 10, Range: 100},
		{UpdatePercent: 10, Range: 100, Dist: DistUniform},
		{UpdatePercent: 10, Range: 100, Dist: DistZipf, Theta: 0.99},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
}
