// Package workload implements the Synchrobench workload model used by
// the paper's evaluation (Section 4):
//
//   - a workload is characterized by its update percentage x: the set
//     receives x/2 % insert calls, x/2 % remove calls and (100-x) %
//     contains calls;
//   - every operation draws its argument uniformly at random from a
//     fixed key range [0, Range);
//   - before measuring, the set is pre-populated so that each key of the
//     range is present with probability 1/2, putting the list at its
//     steady-state size of about Range/2.
//
// Each worker goroutine owns a private xorshift generator so that drawing
// operations costs a few nanoseconds and shares nothing.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is the kind of a generated set operation.
type Op uint8

const (
	// Contains is a membership query.
	Contains Op = iota
	// Insert adds a key.
	Insert
	// Remove deletes a key.
	Remove
	// Scan is a range scan [lo, lo+ScanSpan()); the generated key is the
	// scan's lower bound. Only produced when Config.ScanPercent > 0.
	Scan
)

// String returns the lower-case operation name.
func (o Op) String() string {
	switch o {
	case Contains:
		return "contains"
	case Insert:
		return "insert"
	case Remove:
		return "remove"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Key distributions accepted by Config.Dist.
const (
	// DistUniform draws keys uniformly from [0, Range); the empty string
	// means the same (Synchrobench's default).
	DistUniform = "uniform"
	// DistZipf draws keys Zipfian with skew Theta: key 0 hottest. See
	// zipf.go for why a skewed draw is the interesting stress.
	DistZipf = "zipf"
	// DistHotspot sends HotPercent% of the traffic into the window
	// [HotLo, HotLo+HotWidth) and the rest uniformly over the range —
	// the adversarial shape for a range partitioner, because unlike
	// Zipf the hot mass can be parked on an arbitrary point of the key
	// space (a shard seam, say) and moved between phases.
	DistHotspot = "hotspot"
)

// Config describes a Synchrobench workload.
type Config struct {
	// UpdatePercent is x in the paper's terminology: x/2 % inserts,
	// x/2 % removes, (100-x) % contains. Must be in [0, 100].
	UpdatePercent int
	// Range is the size of the key range; keys are drawn from
	// [0, Range). The steady-state set size is about Range/2.
	Range int64
	// Dist selects the key distribution: DistUniform (also the empty
	// string) or DistZipf.
	Dist string
	// Theta is the Zipfian skew, in (0, 1); consulted only when Dist is
	// DistZipf. Larger is more skewed (0.99 is YCSB's "hotspot" default).
	Theta float64
	// ScanPercent carves range scans out of the contains share: x/2 %
	// inserts, x/2 % removes, ScanPercent % scans, the rest contains.
	// Must satisfy UpdatePercent + ScanPercent <= 100.
	ScanPercent int
	// ScanWidth is the key width of each generated scan [lo, lo+width).
	// Zero means the DefaultScanWidth.
	ScanWidth int64
	// InsertShare is the percentage of update operations that are
	// inserts; 0 means the paper's even 50/50 split. Phase presets use
	// it to shape write bursts (inserts dominate) and delete churn
	// (removes dominate).
	InsertShare int
	// HotPercent is the share of traffic drawn from the hot window,
	// consulted only when Dist is DistHotspot; 0 means
	// DefaultHotPercent.
	HotPercent int
	// HotLo is the hot window's inclusive lower key bound.
	HotLo int64
	// HotWidth is the hot window's key width; 0 means
	// max(Range/128, 1).
	HotWidth int64
}

// DefaultHotPercent is the hot-window traffic share used when
// Config.HotPercent is 0: hot enough that a static partition melts,
// with enough uniform background that the rest of the set stays live.
const DefaultHotPercent = 90

// HotSpan returns the effective hot-window width.
func (c Config) HotSpan() int64 {
	if c.HotWidth > 0 {
		return c.HotWidth
	}
	if w := c.Range / 128; w > 0 {
		return w
	}
	return 1
}

// HotShare returns the effective hot-window traffic percentage.
func (c Config) HotShare() int {
	if c.HotPercent > 0 {
		return c.HotPercent
	}
	return DefaultHotPercent
}

// DefaultScanWidth is the scan width used when Config.ScanWidth is 0:
// wide enough to cover ~50 resident keys at steady state on the small
// benchmark range, so a scan is clearly heavier than a point read.
const DefaultScanWidth int64 = 100

// ScanSpan returns the effective scan width.
func (c Config) ScanSpan() int64 {
	if c.ScanWidth > 0 {
		return c.ScanWidth
	}
	return DefaultScanWidth
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.UpdatePercent < 0 || c.UpdatePercent > 100 {
		return fmt.Errorf("workload: update percent %d out of [0, 100]", c.UpdatePercent)
	}
	if c.Range <= 0 {
		return fmt.Errorf("workload: key range %d must be positive", c.Range)
	}
	switch c.Dist {
	case "", DistUniform:
	case DistZipf:
		if c.Theta <= 0 || c.Theta >= 1 {
			return fmt.Errorf("workload: zipf theta %v out of (0, 1)", c.Theta)
		}
	case DistHotspot:
		if c.HotPercent < 0 || c.HotPercent > 100 {
			return fmt.Errorf("workload: hot percent %d out of [0, 100]", c.HotPercent)
		}
		if c.HotLo < 0 || c.HotWidth < 0 || c.HotLo+c.HotSpan() > c.Range {
			return fmt.Errorf("workload: hot window [%d, %d) escapes the key range [0, %d)", c.HotLo, c.HotLo+c.HotSpan(), c.Range)
		}
	default:
		return fmt.Errorf("workload: unknown distribution %q (have: %s, %s, %s)", c.Dist, DistUniform, DistZipf, DistHotspot)
	}
	if c.InsertShare < 0 || c.InsertShare > 100 {
		return fmt.Errorf("workload: insert share %d out of [0, 100]", c.InsertShare)
	}
	if c.ScanPercent < 0 || c.ScanPercent > 100 {
		return fmt.Errorf("workload: scan percent %d out of [0, 100]", c.ScanPercent)
	}
	if c.UpdatePercent+c.ScanPercent > 100 {
		return fmt.Errorf("workload: update %d%% + scan %d%% exceed 100%%", c.UpdatePercent, c.ScanPercent)
	}
	if c.ScanWidth < 0 {
		return fmt.Errorf("workload: scan width %d must be non-negative", c.ScanWidth)
	}
	return nil
}

// String renders the config in the paper's notation.
func (c Config) String() string {
	s := fmt.Sprintf("%d%%-updates/range=%d", c.UpdatePercent, c.Range)
	if c.InsertShare > 0 && c.InsertShare != 50 {
		s += fmt.Sprintf("/insert-share=%d%%", c.InsertShare)
	}
	if c.Dist == DistZipf {
		s += fmt.Sprintf("/zipf=%.2f", c.Theta)
	}
	if c.Dist == DistHotspot {
		s += fmt.Sprintf("/hot=%d%%@[%d,%d)", c.HotShare(), c.HotLo, c.HotLo+c.HotSpan())
	}
	if c.ScanPercent > 0 {
		s += fmt.Sprintf("/%d%%-scans(w=%d)", c.ScanPercent, c.ScanSpan())
	}
	return s
}

// genState is the compiled sampling state for one Config: thresholds
// and distribution tables precomputed so Next is a few arithmetic ops.
// A phased generator holds one genState per phase and swaps them
// wholesale when the shared clock advances.
type genState struct {
	cfg       Config
	updateCut uint64 // thresholds over a 0..9999 roll
	insertCut uint64
	scanCut   uint64 // scans occupy [updateCut, scanCut)
	zipf      zipfGen
	useZipf   bool
	useHot    bool
	hotCut    uint64 // hot-window share of a 0..9999 roll
	hotLo     int64
	hotWidth  int64
}

// compile precomputes cfg's sampling state.
func compile(cfg Config) genState {
	share := uint64(cfg.InsertShare)
	if share == 0 {
		share = 50
	}
	st := genState{
		cfg:       cfg,
		updateCut: uint64(cfg.UpdatePercent) * 100, // out of 10000
		insertCut: uint64(cfg.UpdatePercent) * share,
	}
	st.scanCut = st.updateCut + uint64(cfg.ScanPercent)*100
	switch cfg.Dist {
	case DistZipf:
		st.zipf = newZipf(cfg.Range, cfg.Theta)
		st.useZipf = true
	case DistHotspot:
		st.useHot = true
		st.hotCut = uint64(cfg.HotShare()) * 100
		st.hotLo = cfg.HotLo
		st.hotWidth = cfg.HotSpan()
	}
	return st
}

// Generator produces the operation stream for one worker goroutine. It
// is NOT safe for concurrent use: give each goroutine its own Generator.
type Generator struct {
	genState
	rng XorShift

	// Phased operation (NewPhasedGenerator): states holds one compiled
	// genState per phase and sched's clock says which is current.
	sched     *Schedule
	states    []genState
	lastPhase int32
}

// NewGenerator returns a generator for cfg seeded with seed. Two
// generators with equal seeds produce identical streams.
func NewGenerator(cfg Config, seed uint64) *Generator {
	return &Generator{genState: compile(cfg), rng: NewXorShift(seed)}
}

// NewPhasedGenerator returns a generator that follows sched's clock:
// each draw samples from the phase the clock currently names. The
// phase check is one atomic load per draw; recompiling on a phase
// switch is O(1) because every phase was compiled up front.
func NewPhasedGenerator(sched *Schedule, seed uint64) *Generator {
	states := make([]genState, len(sched.Phases))
	for i, ph := range sched.Phases {
		states[i] = compile(ph.Cfg)
	}
	return &Generator{
		genState: states[0],
		rng:      NewXorShift(seed),
		sched:    sched,
		states:   states,
	}
}

// syncPhase swaps in the current phase's compiled state if the shared
// clock moved since the last draw.
func (g *Generator) syncPhase() {
	if g.sched == nil {
		return
	}
	if ph := g.sched.Clock.Phase(); ph != g.lastPhase {
		g.lastPhase = ph
		g.genState = g.states[ph]
	}
}

// Key draws one key from the configured distribution.
func (g *Generator) Key() int64 {
	if g.useZipf {
		return g.zipf.draw(&g.rng)
	}
	if g.useHot && g.rng.Next()%10000 < g.hotCut {
		return g.hotLo + int64(g.rng.Next()%uint64(g.hotWidth))
	}
	return int64(g.rng.Next() % uint64(g.cfg.Range))
}

// Next draws the next operation and key. For Scan ops the key is the
// scan's lower bound; the width is Config.ScanSpan().
func (g *Generator) Next() (Op, int64) {
	g.syncPhase()
	roll := g.rng.Next() % 10000
	key := g.Key()
	switch {
	case roll < g.insertCut:
		return Insert, key
	case roll < g.updateCut:
		return Remove, key
	case roll < g.scanCut:
		return Scan, key
	default:
		return Contains, key
	}
}

// NextBatch draws the next batched operation: one op kind and up to k
// keys appended into dst[:0] (the returned slice aliases dst's array
// when it has capacity). The keys are raw draws — unsorted, possibly
// duplicated — exactly what the sets' batch entry points are specified
// to accept. Scan ops carry a single key, the scan's lower bound.
func (g *Generator) NextBatch(dst []int64, k int) (Op, []int64) {
	op, key := g.Next()
	dst = append(dst[:0], key)
	if op == Scan {
		return op, dst
	}
	for i := 1; i < k; i++ {
		dst = append(dst, g.Key())
	}
	return op, dst
}

// Prepopulate inserts each key of cfg's range into insert with
// probability 1/2, reproducing the paper's initialization ("each element
// is present with probability 1/2"). It uses math/rand (seeded) rather
// than the worker xorshift so population is reproducible independently
// of the op stream. It returns how many keys were inserted.
func Prepopulate(cfg Config, seed int64, insert func(int64) bool) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for k := int64(0); k < cfg.Range; k++ {
		if rng.Intn(2) == 0 {
			if insert(k) {
				n++
			}
		}
	}
	return n
}

// PrepopulateKeys returns the exact key set Prepopulate(cfg, seed, ·)
// would insert, in ascending order, without touching a set — the input
// for a bulk Load. Prepopulate and PrepopulateKeys with equal seeds
// always agree, so a harness may use either interchangeably.
func PrepopulateKeys(cfg Config, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, 0, cfg.Range/2+1)
	for k := int64(0); k < cfg.Range; k++ {
		if rng.Intn(2) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// PrepopulateHalf deterministically inserts every even key, yielding an
// exactly-half-full set; useful when tests need a known layout.
func PrepopulateHalf(cfg Config, insert func(int64) bool) int {
	n := 0
	for k := int64(0); k < cfg.Range; k += 2 {
		if insert(k) {
			n++
		}
	}
	return n
}
