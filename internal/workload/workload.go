// Package workload implements the Synchrobench workload model used by
// the paper's evaluation (Section 4):
//
//   - a workload is characterized by its update percentage x: the set
//     receives x/2 % insert calls, x/2 % remove calls and (100-x) %
//     contains calls;
//   - every operation draws its argument uniformly at random from a
//     fixed key range [0, Range);
//   - before measuring, the set is pre-populated so that each key of the
//     range is present with probability 1/2, putting the list at its
//     steady-state size of about Range/2.
//
// Each worker goroutine owns a private xorshift generator so that drawing
// operations costs a few nanoseconds and shares nothing.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is the kind of a generated set operation.
type Op uint8

const (
	// Contains is a membership query.
	Contains Op = iota
	// Insert adds a key.
	Insert
	// Remove deletes a key.
	Remove
	// Scan is a range scan [lo, lo+ScanSpan()); the generated key is the
	// scan's lower bound. Only produced when Config.ScanPercent > 0.
	Scan
)

// String returns the lower-case operation name.
func (o Op) String() string {
	switch o {
	case Contains:
		return "contains"
	case Insert:
		return "insert"
	case Remove:
		return "remove"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Key distributions accepted by Config.Dist.
const (
	// DistUniform draws keys uniformly from [0, Range); the empty string
	// means the same (Synchrobench's default).
	DistUniform = "uniform"
	// DistZipf draws keys Zipfian with skew Theta: key 0 hottest. See
	// zipf.go for why a skewed draw is the interesting stress.
	DistZipf = "zipf"
)

// Config describes a Synchrobench workload.
type Config struct {
	// UpdatePercent is x in the paper's terminology: x/2 % inserts,
	// x/2 % removes, (100-x) % contains. Must be in [0, 100].
	UpdatePercent int
	// Range is the size of the key range; keys are drawn from
	// [0, Range). The steady-state set size is about Range/2.
	Range int64
	// Dist selects the key distribution: DistUniform (also the empty
	// string) or DistZipf.
	Dist string
	// Theta is the Zipfian skew, in (0, 1); consulted only when Dist is
	// DistZipf. Larger is more skewed (0.99 is YCSB's "hotspot" default).
	Theta float64
	// ScanPercent carves range scans out of the contains share: x/2 %
	// inserts, x/2 % removes, ScanPercent % scans, the rest contains.
	// Must satisfy UpdatePercent + ScanPercent <= 100.
	ScanPercent int
	// ScanWidth is the key width of each generated scan [lo, lo+width).
	// Zero means the DefaultScanWidth.
	ScanWidth int64
}

// DefaultScanWidth is the scan width used when Config.ScanWidth is 0:
// wide enough to cover ~50 resident keys at steady state on the small
// benchmark range, so a scan is clearly heavier than a point read.
const DefaultScanWidth int64 = 100

// ScanSpan returns the effective scan width.
func (c Config) ScanSpan() int64 {
	if c.ScanWidth > 0 {
		return c.ScanWidth
	}
	return DefaultScanWidth
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.UpdatePercent < 0 || c.UpdatePercent > 100 {
		return fmt.Errorf("workload: update percent %d out of [0, 100]", c.UpdatePercent)
	}
	if c.Range <= 0 {
		return fmt.Errorf("workload: key range %d must be positive", c.Range)
	}
	switch c.Dist {
	case "", DistUniform:
	case DistZipf:
		if c.Theta <= 0 || c.Theta >= 1 {
			return fmt.Errorf("workload: zipf theta %v out of (0, 1)", c.Theta)
		}
	default:
		return fmt.Errorf("workload: unknown distribution %q (have: %s, %s)", c.Dist, DistUniform, DistZipf)
	}
	if c.ScanPercent < 0 || c.ScanPercent > 100 {
		return fmt.Errorf("workload: scan percent %d out of [0, 100]", c.ScanPercent)
	}
	if c.UpdatePercent+c.ScanPercent > 100 {
		return fmt.Errorf("workload: update %d%% + scan %d%% exceed 100%%", c.UpdatePercent, c.ScanPercent)
	}
	if c.ScanWidth < 0 {
		return fmt.Errorf("workload: scan width %d must be non-negative", c.ScanWidth)
	}
	return nil
}

// String renders the config in the paper's notation.
func (c Config) String() string {
	s := fmt.Sprintf("%d%%-updates/range=%d", c.UpdatePercent, c.Range)
	if c.Dist == DistZipf {
		s += fmt.Sprintf("/zipf=%.2f", c.Theta)
	}
	if c.ScanPercent > 0 {
		s += fmt.Sprintf("/%d%%-scans(w=%d)", c.ScanPercent, c.ScanSpan())
	}
	return s
}

// Generator produces the operation stream for one worker goroutine. It
// is NOT safe for concurrent use: give each goroutine its own Generator.
type Generator struct {
	cfg       Config
	rng       XorShift
	updateCut uint64 // thresholds over a 0..9999 roll
	insertCut uint64
	scanCut   uint64 // scans occupy [updateCut, scanCut)
	zipf      zipfGen
	useZipf   bool
}

// NewGenerator returns a generator for cfg seeded with seed. Two
// generators with equal seeds produce identical streams.
func NewGenerator(cfg Config, seed uint64) *Generator {
	g := &Generator{
		cfg:       cfg,
		rng:       NewXorShift(seed),
		updateCut: uint64(cfg.UpdatePercent) * 100, // out of 10000
		insertCut: uint64(cfg.UpdatePercent) * 50,
	}
	g.scanCut = g.updateCut + uint64(cfg.ScanPercent)*100
	if cfg.Dist == DistZipf {
		g.zipf = newZipf(cfg.Range, cfg.Theta)
		g.useZipf = true
	}
	return g
}

// Key draws one key from the configured distribution.
func (g *Generator) Key() int64 {
	if g.useZipf {
		return g.zipf.draw(&g.rng)
	}
	return int64(g.rng.Next() % uint64(g.cfg.Range))
}

// Next draws the next operation and key. For Scan ops the key is the
// scan's lower bound; the width is Config.ScanSpan().
func (g *Generator) Next() (Op, int64) {
	roll := g.rng.Next() % 10000
	key := g.Key()
	switch {
	case roll < g.insertCut:
		return Insert, key
	case roll < g.updateCut:
		return Remove, key
	case roll < g.scanCut:
		return Scan, key
	default:
		return Contains, key
	}
}

// NextBatch draws the next batched operation: one op kind and up to k
// keys appended into dst[:0] (the returned slice aliases dst's array
// when it has capacity). The keys are raw draws — unsorted, possibly
// duplicated — exactly what the sets' batch entry points are specified
// to accept. Scan ops carry a single key, the scan's lower bound.
func (g *Generator) NextBatch(dst []int64, k int) (Op, []int64) {
	op, key := g.Next()
	dst = append(dst[:0], key)
	if op == Scan {
		return op, dst
	}
	for i := 1; i < k; i++ {
		dst = append(dst, g.Key())
	}
	return op, dst
}

// Prepopulate inserts each key of cfg's range into insert with
// probability 1/2, reproducing the paper's initialization ("each element
// is present with probability 1/2"). It uses math/rand (seeded) rather
// than the worker xorshift so population is reproducible independently
// of the op stream. It returns how many keys were inserted.
func Prepopulate(cfg Config, seed int64, insert func(int64) bool) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for k := int64(0); k < cfg.Range; k++ {
		if rng.Intn(2) == 0 {
			if insert(k) {
				n++
			}
		}
	}
	return n
}

// PrepopulateKeys returns the exact key set Prepopulate(cfg, seed, ·)
// would insert, in ascending order, without touching a set — the input
// for a bulk Load. Prepopulate and PrepopulateKeys with equal seeds
// always agree, so a harness may use either interchangeably.
func PrepopulateKeys(cfg Config, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, 0, cfg.Range/2+1)
	for k := int64(0); k < cfg.Range; k++ {
		if rng.Intn(2) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// PrepopulateHalf deterministically inserts every even key, yielding an
// exactly-half-full set; useful when tests need a known layout.
func PrepopulateHalf(cfg Config, insert func(int64) bool) int {
	n := 0
	for k := int64(0); k < cfg.Range; k += 2 {
		if insert(k) {
			n++
		}
	}
	return n
}
