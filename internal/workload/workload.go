// Package workload implements the Synchrobench workload model used by
// the paper's evaluation (Section 4):
//
//   - a workload is characterized by its update percentage x: the set
//     receives x/2 % insert calls, x/2 % remove calls and (100-x) %
//     contains calls;
//   - every operation draws its argument uniformly at random from a
//     fixed key range [0, Range);
//   - before measuring, the set is pre-populated so that each key of the
//     range is present with probability 1/2, putting the list at its
//     steady-state size of about Range/2.
//
// Each worker goroutine owns a private xorshift generator so that drawing
// operations costs a few nanoseconds and shares nothing.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is the kind of a generated set operation.
type Op uint8

const (
	// Contains is a membership query.
	Contains Op = iota
	// Insert adds a key.
	Insert
	// Remove deletes a key.
	Remove
)

// String returns the lower-case operation name.
func (o Op) String() string {
	switch o {
	case Contains:
		return "contains"
	case Insert:
		return "insert"
	case Remove:
		return "remove"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Config describes a Synchrobench workload.
type Config struct {
	// UpdatePercent is x in the paper's terminology: x/2 % inserts,
	// x/2 % removes, (100-x) % contains. Must be in [0, 100].
	UpdatePercent int
	// Range is the size of the key range; keys are drawn uniformly from
	// [0, Range). The steady-state set size is about Range/2.
	Range int64
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.UpdatePercent < 0 || c.UpdatePercent > 100 {
		return fmt.Errorf("workload: update percent %d out of [0, 100]", c.UpdatePercent)
	}
	if c.Range <= 0 {
		return fmt.Errorf("workload: key range %d must be positive", c.Range)
	}
	return nil
}

// String renders the config in the paper's notation.
func (c Config) String() string {
	return fmt.Sprintf("%d%%-updates/range=%d", c.UpdatePercent, c.Range)
}

// Generator produces the operation stream for one worker goroutine. It
// is NOT safe for concurrent use: give each goroutine its own Generator.
type Generator struct {
	cfg       Config
	rng       XorShift
	updateCut uint64 // thresholds over a 0..9999 roll
	insertCut uint64
}

// NewGenerator returns a generator for cfg seeded with seed. Two
// generators with equal seeds produce identical streams.
func NewGenerator(cfg Config, seed uint64) *Generator {
	return &Generator{
		cfg:       cfg,
		rng:       NewXorShift(seed),
		updateCut: uint64(cfg.UpdatePercent) * 100, // out of 10000
		insertCut: uint64(cfg.UpdatePercent) * 50,
	}
}

// Next draws the next operation and key.
func (g *Generator) Next() (Op, int64) {
	roll := g.rng.Next() % 10000
	key := int64(g.rng.Next() % uint64(g.cfg.Range))
	switch {
	case roll < g.insertCut:
		return Insert, key
	case roll < g.updateCut:
		return Remove, key
	default:
		return Contains, key
	}
}

// Prepopulate inserts each key of cfg's range into insert with
// probability 1/2, reproducing the paper's initialization ("each element
// is present with probability 1/2"). It uses math/rand (seeded) rather
// than the worker xorshift so population is reproducible independently
// of the op stream. It returns how many keys were inserted.
func Prepopulate(cfg Config, seed int64, insert func(int64) bool) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for k := int64(0); k < cfg.Range; k++ {
		if rng.Intn(2) == 0 {
			if insert(k) {
				n++
			}
		}
	}
	return n
}

// PrepopulateHalf deterministically inserts every even key, yielding an
// exactly-half-full set; useful when tests need a known layout.
func PrepopulateHalf(cfg Config, insert func(int64) bool) int {
	n := 0
	for k := int64(0); k < cfg.Range; k += 2 {
		if insert(k) {
			n++
		}
	}
	return n
}
