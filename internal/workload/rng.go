package workload

// XorShift is a tiny, allocation-free xorshift64* pseudo-random
// generator. Synchrobench uses a thread-local xorshift for exactly the
// same reason we do: operation drawing must cost almost nothing compared
// to the operation itself, or the harness measures the RNG instead of
// the list.
type XorShift struct {
	state uint64
}

// NewXorShift returns a generator seeded with seed (0 is mapped to a
// fixed non-zero constant, since xorshift has an all-zeroes fixed point).
func NewXorShift(seed uint64) XorShift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return XorShift{state: seed}
}

// Next returns the next pseudo-random value.
func (x *XorShift) Next() uint64 {
	s := x.state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random value in [0, n). n must be positive.
func (x *XorShift) Intn(n int64) int64 {
	return int64(x.Next() % uint64(n))
}
