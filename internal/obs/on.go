//go:build !obsoff

package obs

// Compiled reports whether probe sites are compiled into this binary.
// Build with -tags obsoff for the probe-free build the overhead
// regression compares against.
const Compiled = true

// On is the canonical enabled-guard for probe sites: it reports
// whether the probe pointer (a *Probes or *Recorder) is attached. It
// inlines to a nil check — or, under -tags obsoff, to false, deleting
// the guarded block at compile time. The obshygiene analyzer requires
// probe calls in traversal loops to sit behind this guard.
func On[T any](p *T) bool { return p != nil }
