// Package obs is the repository's low-overhead contention
// observability layer. The paper's argument is about which schedules
// an algorithm *rejects* — Lazy's post-lock validation failures, VBL's
// prev-restarts, Harris's failed CASes — and this package makes those
// rejections countable on production-sized runs without perturbing
// the hot paths being measured.
//
// Two primitives:
//
//   - Probes: sharded, cache-line-padded event counters, one counter
//     per contention phenomenon (Event). An increment is a single
//     atomic add on a stripe selected by the operation's key, so
//     concurrent updates on different keys do not share a cache line.
//   - Recorder: per-operation-type latency histograms (see
//     stats.Histogram), one shard per worker, merged after a run.
//
// Probes are attached to an algorithm with SetProbes (the Instrumented
// interface); a nil *Probes means "disabled" and every probe site in
// algorithm code sits behind the On guard:
//
//	if p := s.probes; obs.On(p) {
//		p.Inc(obs.EvRestartPrev, v)
//	}
//
// so the disabled cost is one predictable branch on a field already in
// cache. Building with -tags obsoff turns On into a constant false and
// the compiler deletes the probe sites outright — the probe-free build
// the overhead regression test compares against. The obshygiene
// analyzer (internal/analysis) enforces the guard on probe calls in
// traversal loops.
package obs

import "sync/atomic"

// Event enumerates the contention phenomena the probes count. The
// per-algorithm mapping to the paper's rejected schedules is tabulated
// in DESIGN.md §7.
type Event uint8

const (
	// EvRestartPrev counts update traversals restarted from prev after
	// a failed validation (VBL's locality optimization).
	EvRestartPrev Event = iota
	// EvRestartHead counts update traversals restarted from head: every
	// Lazy validation failure, Harris's failed unlink/insert CASes, and
	// the VBL head-restart ablation.
	EvRestartHead
	// EvTryLockContended counts lock acquisitions whose immediate
	// try-lock CAS failed (the lock was held by a competitor).
	EvTryLockContended
	// EvValFailDeleted counts validations that failed because the
	// locked-for node was logically deleted.
	EvValFailDeleted
	// EvValFailSucc counts identity validations that failed because the
	// successor pointer changed (Figure 2's rejected schedules).
	EvValFailSucc
	// EvValFailValue counts value validations that failed because no
	// node holding the sought value follows prev any more (the check
	// that distinguishes VBL from Lazy).
	EvValFailValue
	// EvCASFail counts algorithmic compare-and-swaps that failed and
	// forced a retry (Harris insert/mark/unlink; Figure 3's rejected
	// schedules).
	EvCASFail
	// EvLogicalDelete counts nodes marked deleted (the linearization
	// point of a successful remove).
	EvLogicalDelete
	// EvPhysicalUnlink counts nodes unlinked by their own remover.
	EvPhysicalUnlink
	// EvHelpedUnlink counts marked nodes unlinked by a traversing
	// helper rather than their remover (Harris-Michael helping).
	EvHelpedUnlink
	// EvRetryEscalateHead counts operations that exhausted their
	// failed-validation retry budget and escalated their restart
	// locality from prev to head (meaningful for VBL, whose native
	// policy is the prev-restart; head-native lists never fire it).
	EvRetryEscalateHead
	// EvRetryEscalateBackoff counts operations that kept failing past
	// twice the retry budget and started backing off onto the
	// scheduler between restarts.
	EvRetryEscalateBackoff
	// EvNodeAlloc counts list nodes handed out to inserts — from a
	// slab or recycled from a free list when an arena is attached, from
	// the Go heap otherwise (internal/mem).
	EvNodeAlloc
	// EvNodeRecycle counts retired nodes whose grace period expired and
	// that moved from a limbo bucket back onto a free list for reuse.
	EvNodeRecycle
	// EvLimboRetire counts physically-unlinked nodes retired to a
	// per-worker limbo list to wait out the two-epoch grace period.
	EvLimboRetire
	// EvEpochAdvance counts successful global epoch advances of an
	// arena (internal/mem); the gap between this and EvLimboRetire is
	// how long retired memory waits.
	EvEpochAdvance
	// EvBatchWindowRestart counts windows of a batched multi-window
	// pass (InsertAll/RemoveAll) whose validation failed and restarted
	// from the pass's last good anchor — the batch analog of
	// EvRestartPrev.
	EvBatchWindowRestart
	// EvBatchSplit counts per-shard sub-batches the sharded façade
	// split a batch into (one count per non-empty sub-batch routed).
	EvBatchSplit
	// EvAdaptBackoffWiden counts adaptive-controller decisions that
	// widened a shard's try-lock spin ceiling (additive increase under
	// contention); the key is the shard index (internal/adapt).
	EvAdaptBackoffWiden
	// EvAdaptBackoffDecay counts controller decisions that decayed a
	// shard's spin ceiling back toward the default (multiplicative
	// decrease when quiet).
	EvAdaptBackoffDecay
	// EvAdaptBudgetTighten counts controller decisions that tightened
	// the retry budget under a validation-failure storm.
	EvAdaptBudgetTighten
	// EvAdaptBudgetRelax counts controller decisions that relaxed the
	// retry budget back toward its configured value when quiet.
	EvAdaptBudgetRelax
	// EvAdaptRebalance counts shard-boundary rebalances: one count per
	// completed weighted-quantile repartition + migration.
	EvAdaptRebalance
	// EvAdaptShed counts transitions into overload shedding (batch
	// serialization forced, backoff widened, budget floored).
	EvAdaptShed
	// EvAdaptUnshed counts recoveries out of overload shedding.
	EvAdaptUnshed
	// EvSkipRestartL0 counts skip-list update operations restarted after
	// a failed level-0 validation — the VB-skip analogue of
	// EvRestartHead (the skip list's native restart locality is the head,
	// since the descent re-derives every level's predecessor).
	EvSkipRestartL0
	// EvSkipIndexLinkRetry counts retried index-level link attempts: the
	// per-level predecessor moved (or died) between the descent and the
	// try-lock, so the inserter re-derived the level and tried again.
	EvSkipIndexLinkRetry
	// EvSkipIndexUnlink counts index-level unlinks of deleted towers
	// (by the remover's sweep or an opportunistic traversing helper) —
	// the upper-level analogue of EvPhysicalUnlink.
	EvSkipIndexUnlink
	// EvSkipTowerHeight counts tower allocations, keyed by the tower's
	// height rather than the operation's key, so a trace or stripe
	// snapshot reconstructs the height histogram the geometric
	// distribution promises.
	EvSkipTowerHeight

	// NumEvents is the number of distinct events.
	NumEvents
)

// eventNames are the stable identifiers used in JSON reports and
// expvar output. Treat them as a schema: append, never rename.
var eventNames = [NumEvents]string{
	EvRestartPrev:          "restart_prev",
	EvRestartHead:          "restart_head",
	EvTryLockContended:     "trylock_contended",
	EvValFailDeleted:       "valfail_deleted",
	EvValFailSucc:          "valfail_succ",
	EvValFailValue:         "valfail_value",
	EvCASFail:              "cas_fail",
	EvLogicalDelete:        "logical_delete",
	EvPhysicalUnlink:       "physical_unlink",
	EvHelpedUnlink:         "helped_unlink",
	EvRetryEscalateHead:    "retry_escalate_head",
	EvRetryEscalateBackoff: "retry_escalate_backoff",
	EvNodeAlloc:            "node_alloc",
	EvNodeRecycle:          "node_recycle",
	EvLimboRetire:          "limbo_retire",
	EvEpochAdvance:         "epoch_advance",
	EvBatchWindowRestart:   "batch_window_restart",
	EvBatchSplit:           "batch_split",
	EvAdaptBackoffWiden:    "adapt_backoff_widen",
	EvAdaptBackoffDecay:    "adapt_backoff_decay",
	EvAdaptBudgetTighten:   "adapt_budget_tighten",
	EvAdaptBudgetRelax:     "adapt_budget_relax",
	EvAdaptRebalance:       "adapt_rebalance",
	EvAdaptShed:            "adapt_shed",
	EvAdaptUnshed:          "adapt_unshed",
	EvSkipRestartL0:        "skip_restart_l0",
	EvSkipIndexLinkRetry:   "skip_index_link_retry",
	EvSkipIndexUnlink:      "skip_index_unlink",
	EvSkipTowerHeight:      "skip_tower_height",
}

// String returns the event's stable report identifier.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return "event(?)"
}

const (
	shardBits = 4
	// NumShards is the number of counter stripes per event.
	NumShards = 1 << shardBits
)

// shard is one counter stripe, padded so adjacent shards never share a
// cache line (two lines, to defeat adjacent-line prefetching).
type shard struct {
	counts [NumEvents]atomic.Uint64
	_      [(128 - (NumEvents*8)%128) % 128]byte
}

// EventSink receives a copy of every counted event — the hook the
// flight recorder (internal/obs/trace) attaches to turn aggregate
// counters into an ordered event stream. ObsEvent is called from the
// operation's own goroutine, inside the probe site, so implementations
// must be lock-free and allocation-free.
type EventSink interface {
	ObsEvent(ev Event, key int64)
}

// Probes is a set of sharded event counters. The zero value is ready
// to use; a Probes must not be copied after first use. Use one Probes
// per benchmark cell and read it with Snapshot.
type Probes struct {
	shards [NumShards]shard
	// sink, when non-nil, mirrors every Inc. A plain field: SetSink
	// must happen-before the workers that Inc start (and detaching
	// must happen-after they drain), which is how the harness brackets
	// a measured interval.
	sink EventSink
}

// NewProbes returns an empty counter set.
func NewProbes() *Probes { return &Probes{} }

// shardOf maps an operation key to a stripe (Fibonacci hashing, so
// near-sequential keys spread across stripes).
func shardOf(key int64) uint64 {
	return (uint64(key) * 0x9E3779B97F4A7C15) >> (64 - shardBits)
}

// SetSink attaches (or, with nil, detaches) an event sink. See the
// sink field for the required ordering discipline.
func (p *Probes) SetSink(s EventSink) { p.sink = s }

// Inc adds one to ev on the stripe selected by key — pass the key the
// operation is working on, so contention on the counters mirrors (and
// never exceeds) contention on the list itself.
func (p *Probes) Inc(ev Event, key int64) {
	p.shards[shardOf(key)].counts[ev].Add(1)
	if s := p.sink; s != nil {
		s.ObsEvent(ev, key)
	}
}

// Snapshot sums the stripes into a plain per-event view. It is a racy
// (per-counter atomic) snapshot, exact at quiescence.
func (p *Probes) Snapshot() Snapshot {
	var out Snapshot
	for i := range p.shards {
		for ev := range out {
			out[ev] += p.shards[i].counts[ev].Load()
		}
	}
	return out
}

// StripeSnapshot reads every stripe separately — one Snapshot per
// counter shard, indexable by the shardOf hash of the keys it serves.
// The interval-metrics streamer diffs consecutive stripe snapshots
// into per-stripe contention heatmap rows. Like Snapshot it is racy
// per counter, exact at quiescence.
func (p *Probes) StripeSnapshot() [NumShards]Snapshot {
	var out [NumShards]Snapshot
	for i := range p.shards {
		for ev := range out[i] {
			out[i][ev] = p.shards[i].counts[ev].Load()
		}
	}
	return out
}

// Snapshot is a plain per-event counter view, indexable by Event.
type Snapshot [NumEvents]uint64

// Add returns the event-wise sum of s and o.
func (s Snapshot) Add(o Snapshot) Snapshot {
	for i := range s {
		s[i] += o[i]
	}
	return s
}

// Sub returns the event-wise difference s - o (for deltas over an
// interval; counters are monotonic, so s must postdate o).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	for i := range s {
		s[i] -= o[i]
	}
	return s
}

// Total returns the sum over all events.
func (s Snapshot) Total() uint64 {
	var n uint64
	for _, c := range s {
		n += c
	}
	return n
}

// Map renders the snapshot with the stable event names, one entry per
// event (zeros included, so the report schema does not vary with the
// run).
func (s Snapshot) Map() map[string]uint64 {
	out := make(map[string]uint64, NumEvents)
	for ev, c := range s {
		out[Event(ev).String()] = c
	}
	return out
}

// Instrumented is implemented by set algorithms that can export
// contention events. SetProbes(nil) detaches.
type Instrumented interface {
	SetProbes(*Probes)
}

// Attach connects p to set if the algorithm supports instrumentation
// and reports whether it did.
func Attach(set any, p *Probes) bool {
	if in, ok := set.(Instrumented); ok {
		in.SetProbes(p)
		return true
	}
	return false
}
