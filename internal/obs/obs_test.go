package obs

import (
	"sync"
	"testing"
	"time"
)

// TestProbesConcurrentSum is the shard-correctness test: many goroutines
// hammering Inc across keys must sum, per event, to exactly the number
// of increments issued. Run under -race this also proves the shards
// synchronize properly.
func TestProbesConcurrentSum(t *testing.T) {
	const (
		workers = 8
		perW    = 12_000
	)
	p := NewProbes()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Spread keys so every stripe sees traffic.
				key := int64(w*perW + i)
				p.Inc(Event(i%int(NumEvents)), key)
			}
		}(w)
	}
	wg.Wait()
	s := p.Snapshot()
	if got, want := s.Total(), uint64(workers*perW); got != want {
		t.Fatalf("Snapshot total = %d, want %d", got, want)
	}
	// Each worker walks i%NumEvents over [0, perW), so an event's count
	// is perW/NumEvents, plus one for the events before perW%NumEvents.
	for ev := Event(0); ev < NumEvents; ev++ {
		per := uint64(perW / int(NumEvents))
		if int(ev) < perW%int(NumEvents) {
			per++
		}
		per *= workers
		if s[ev] != per {
			t.Errorf("event %s = %d, want %d", ev, s[ev], per)
		}
	}
}

func TestSnapshotAddSubTotal(t *testing.T) {
	p := NewProbes()
	p.Inc(EvCASFail, 1)
	p.Inc(EvCASFail, 2)
	p.Inc(EvLogicalDelete, 3)
	before := p.Snapshot()
	p.Inc(EvCASFail, 4)
	delta := p.Snapshot().Sub(before)
	if delta[EvCASFail] != 1 || delta.Total() != 1 {
		t.Fatalf("delta = %v, want exactly one cas_fail", delta)
	}
	sum := before.Add(delta)
	if sum != p.Snapshot() {
		t.Fatalf("before + delta = %v, want %v", sum, p.Snapshot())
	}
}

// TestEventNamesStable pins the JSON/expvar identifiers: renaming one
// breaks every committed BENCH_*.json, so a rename must fail here first.
func TestEventNamesStable(t *testing.T) {
	want := map[Event]string{
		EvRestartPrev:          "restart_prev",
		EvRestartHead:          "restart_head",
		EvTryLockContended:     "trylock_contended",
		EvValFailDeleted:       "valfail_deleted",
		EvValFailSucc:          "valfail_succ",
		EvValFailValue:         "valfail_value",
		EvCASFail:              "cas_fail",
		EvLogicalDelete:        "logical_delete",
		EvPhysicalUnlink:       "physical_unlink",
		EvHelpedUnlink:         "helped_unlink",
		EvRetryEscalateHead:    "retry_escalate_head",
		EvRetryEscalateBackoff: "retry_escalate_backoff",
		EvNodeAlloc:            "node_alloc",
		EvNodeRecycle:          "node_recycle",
		EvLimboRetire:          "limbo_retire",
		EvEpochAdvance:         "epoch_advance",
		EvBatchWindowRestart:   "batch_window_restart",
		EvBatchSplit:           "batch_split",
		EvAdaptBackoffWiden:    "adapt_backoff_widen",
		EvAdaptBackoffDecay:    "adapt_backoff_decay",
		EvAdaptBudgetTighten:   "adapt_budget_tighten",
		EvAdaptBudgetRelax:     "adapt_budget_relax",
		EvAdaptRebalance:       "adapt_rebalance",
		EvAdaptShed:            "adapt_shed",
		EvAdaptUnshed:          "adapt_unshed",
		EvSkipRestartL0:        "skip_restart_l0",
		EvSkipIndexLinkRetry:   "skip_index_link_retry",
		EvSkipIndexUnlink:      "skip_index_unlink",
		EvSkipTowerHeight:      "skip_tower_height",
	}
	if len(want) != int(NumEvents) {
		t.Fatalf("test covers %d events, package has %d", len(want), NumEvents)
	}
	for ev, name := range want {
		if ev.String() != name {
			t.Errorf("event %d = %q, want %q", ev, ev.String(), name)
		}
	}
	m := Snapshot{}.Map()
	if len(m) != int(NumEvents) {
		t.Errorf("Map has %d keys, want %d (zeros must be included)", len(m), NumEvents)
	}
}

func TestOnGuard(t *testing.T) {
	var p *Probes
	if On(p) {
		t.Error("On(nil) = true")
	}
	if got := On(NewProbes()); got != Compiled {
		t.Errorf("On(non-nil) = %v, want Compiled (%v)", got, Compiled)
	}
}

type attachable struct{ p *Probes }

func (a *attachable) SetProbes(p *Probes) { a.p = p }

func TestAttach(t *testing.T) {
	a := &attachable{}
	p := NewProbes()
	if !Attach(a, p) {
		t.Fatal("Attach to Instrumented type = false")
	}
	if a.p != p {
		t.Fatal("Attach did not forward the probes")
	}
	if Attach(struct{}{}, p) {
		t.Error("Attach to plain struct = true")
	}
}

func TestRecorderMergeAndPercentiles(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	for i := 0; i < 100; i++ {
		a.Record(OpContains, time.Microsecond)
		b.Record(OpInsert, 2*time.Microsecond)
	}
	a.Merge(b)
	if n := a.Count(); n != 200 {
		t.Fatalf("merged Count = %d, want 200", n)
	}
	pc := a.Percentiles(OpContains)
	pi := a.Percentiles(OpInsert)
	if pc.Count != 100 || pi.Count != 100 {
		t.Fatalf("per-op counts = %d/%d, want 100/100", pc.Count, pi.Count)
	}
	if a.Percentiles(OpRemove).Count != 0 {
		t.Error("remove histogram has samples from nowhere")
	}
	// 1µs lands in [512, 1024); all its percentiles must stay there.
	if pc.P50 < 512 || pc.P999 > 1024 {
		t.Errorf("contains percentiles [%v, %v] escaped bucket [512, 1024]", pc.P50, pc.P999)
	}
}

func TestOpKindNames(t *testing.T) {
	want := map[OpKind]string{OpContains: "contains", OpInsert: "insert", OpRemove: "remove", OpScan: "scan"}
	if len(want) != int(NumOps) {
		t.Fatalf("test covers %d kinds, package has %d", len(want), NumOps)
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("kind %d = %q, want %q", op, op.String(), name)
		}
	}
}
