package obs

import (
	"encoding/json"
	"expvar"
	"testing"
)

// TestPublishIdempotent is the regression test for the duplicate-name
// panic: expvar.Publish panics on reuse, so repeated harness runs in
// one process (sweeps, tests) must be able to re-publish the same name
// and have the variable read through to the LATEST probes.
func TestPublishIdempotent(t *testing.T) {
	const name = "test.publish.idempotent"
	p1 := NewProbes()
	p1.Inc(EvRestartPrev, 1)
	Publish(name, p1) // must not panic on the second call either
	p2 := NewProbes()
	p2.Inc(EvCASFail, 2)
	p2.Inc(EvCASFail, 3)
	Publish(name, p2)

	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	var m map[string]uint64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar %q is not a JSON counter map: %v", name, err)
	}
	if m[EvCASFail.String()] != 2 || m[EvRestartPrev.String()] != 0 {
		t.Fatalf("expvar %q reads %v; must reflect the latest Probes", name, m)
	}
}

func TestPublishRecorderIdempotent(t *testing.T) {
	const name = "test.publish.recorder"
	PublishRecorder(name, NewRecorder())
	r2 := NewRecorder()
	r2.Record(OpInsert, 100)
	PublishRecorder(name, r2)
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	var m map[string]map[string]any
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar %q: %v", name, err)
	}
	if count, ok := m[OpInsert.String()]["count"].(float64); !ok || count != 1 {
		t.Fatalf("expvar %q insert count = %v, want 1 (latest recorder)", name, m)
	}
}

func TestPublishFuncReplaces(t *testing.T) {
	const name = "test.publish.func"
	PublishFunc(name, func() any { return 1 })
	PublishFunc(name, func() any { return 2 })
	if got := expvar.Get(name).String(); got != "2" {
		t.Fatalf("expvar %q = %s, want 2", name, got)
	}
}
