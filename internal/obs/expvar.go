package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// published maps each name this package has registered with expvar to
// the swappable reader behind it. expvar.Publish itself panics on a
// duplicate name, which used to make repeated harness runs in one
// process (tests, sweeps, long-lived servers) fatal; instead this
// package registers each name exactly once, with an expvar.Func that
// reads through an atomic slot, and re-publishing a name just swaps
// the slot.
var published sync.Map // string -> *atomic.Value holding func() any

// PublishFunc registers f as the expvar variable name, replacing any
// reader previously installed under that name by this package.
// Idempotent across calls with the same name; it still panics if the
// name was claimed directly through the expvar package by someone
// else.
func PublishFunc(name string, f func() any) {
	slot, loaded := published.LoadOrStore(name, &atomic.Value{})
	slot.(*atomic.Value).Store(f)
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			return slot.(*atomic.Value).Load().(func() any)()
		}))
	}
}

// Publish registers p's live counter snapshot under name in the
// process-wide expvar registry, so a metrics HTTP endpoint
// (/debug/vars) exposes the events of a running benchmark.
// Re-publishing a name replaces the probes behind it, so one name can
// follow a sequence of runs in one process.
func Publish(name string, p *Probes) {
	PublishFunc(name, func() any {
		return p.Snapshot().Map()
	})
}

// PublishRecorder registers r's live per-operation percentile digest
// under name in the expvar registry. Percentile extraction walks 64
// buckets per kind — trivial next to a benchmark run, but the values
// are racy snapshots until the run quiesces. Re-publishing a name
// replaces the recorder behind it.
func PublishRecorder(name string, r *Recorder) {
	PublishFunc(name, func() any {
		out := make(map[string]any, NumOps)
		for k := OpKind(0); k < NumOps; k++ {
			s := r.Percentiles(k)
			out[k.String()] = map[string]any{
				"count":   s.Count,
				"p50_ns":  s.P50,
				"p90_ns":  s.P90,
				"p99_ns":  s.P99,
				"p999_ns": s.P999,
			}
		}
		return out
	})
}
