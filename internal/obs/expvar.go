package obs

import "expvar"

// Publish registers p's live counter snapshot under name in the
// process-wide expvar registry, so a metrics HTTP endpoint
// (/debug/vars) exposes the events of a running benchmark. Like
// expvar.Publish it panics on a duplicate name — call once per
// process per name.
func Publish(name string, p *Probes) {
	expvar.Publish(name, expvar.Func(func() any {
		return p.Snapshot().Map()
	}))
}

// PublishRecorder registers r's live per-operation percentile digest
// under name in the expvar registry. Percentile extraction walks 64
// buckets per kind — trivial next to a benchmark run, but the values
// are racy snapshots until the run quiesces.
func PublishRecorder(name string, r *Recorder) {
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any, NumOps)
		for k := OpKind(0); k < NumOps; k++ {
			s := r.Percentiles(k)
			out[k.String()] = map[string]any{
				"count":   s.Count,
				"p50_ns":  s.P50,
				"p90_ns":  s.P90,
				"p99_ns":  s.P99,
				"p999_ns": s.P999,
			}
		}
		return out
	}))
}
