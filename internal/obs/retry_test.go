package obs

import (
	"sync"
	"testing"
)

func TestEscalatorZeroValueNeverEscalates(t *testing.T) {
	var e Escalator
	p := NewProbes()
	for i := 0; i < 100; i++ {
		if e.Failed(p, 1) {
			t.Fatalf("zero-budget escalator demanded a head restart on restart %d", i)
		}
	}
	s := p.Snapshot()
	if s[EvRetryEscalateHead] != 0 || s[EvRetryEscalateBackoff] != 0 {
		t.Fatalf("zero-budget escalator fired escalation events: %v", s)
	}
	var c RetryCounter
	e.Done(&c)
	got := c.Stats()
	if got.Ops != 1 || got.Restarts != 100 || got.MaxRestarts != 100 {
		t.Fatalf("Stats = %+v", got)
	}
	if got.EscalatedHead != 0 || got.EscalatedBackoff != 0 {
		t.Fatalf("zero-budget op recorded as escalated: %+v", got)
	}
}

func TestEscalatorLadder(t *testing.T) {
	const k = 3
	e := Escalator{Budget: k}
	p := NewProbes()
	// Restarts [1, K): native policy.
	for i := 1; i < k; i++ {
		if e.Failed(p, 7) {
			t.Fatalf("restart %d escalated before the budget", i)
		}
	}
	// Restart K: head escalation begins and the event fires exactly once.
	if !e.Failed(p, 7) {
		t.Fatal("restart K did not escalate to head")
	}
	for i := k + 1; i < 2*k; i++ {
		if !e.Failed(p, 7) {
			t.Fatalf("restart %d dropped back below head escalation", i)
		}
	}
	s := p.Snapshot()
	if s[EvRetryEscalateHead] != 1 {
		t.Fatalf("retry_escalate_head = %d, want 1", s[EvRetryEscalateHead])
	}
	if s[EvRetryEscalateBackoff] != 0 {
		t.Fatal("backoff event fired before 2K restarts")
	}
	// Restart 2K: backoff begins, one event, still head-restarting.
	if !e.Failed(p, 7) {
		t.Fatal("restart 2K did not stay escalated")
	}
	e.Failed(p, 7)
	s = p.Snapshot()
	if s[EvRetryEscalateBackoff] != 1 {
		t.Fatalf("retry_escalate_backoff = %d, want 1", s[EvRetryEscalateBackoff])
	}
	var c RetryCounter
	e.Done(&c)
	got := c.Stats()
	if got.EscalatedHead != 1 || got.EscalatedBackoff != 1 {
		t.Fatalf("Stats = %+v", got)
	}
}

func TestEscalatorHeadNativeSkipsStageOne(t *testing.T) {
	const k = 2
	e := Escalator{Budget: k, HeadNative: true}
	p := NewProbes()
	for i := 0; i < 3*k; i++ {
		if e.Failed(p, 1) {
			t.Fatal("head-native escalator demanded a head restart (its caller already does that)")
		}
	}
	s := p.Snapshot()
	if s[EvRetryEscalateHead] != 0 {
		t.Fatal("head-native list fired retry_escalate_head")
	}
	// Backoff begins at K, not 2K, for head-native lists.
	if s[EvRetryEscalateBackoff] != 1 {
		t.Fatalf("retry_escalate_backoff = %d, want 1", s[EvRetryEscalateBackoff])
	}
	var c RetryCounter
	e.Done(&c)
	got := c.Stats()
	if got.EscalatedHead != 0 || got.EscalatedBackoff != 1 {
		t.Fatalf("Stats = %+v", got)
	}
}

func TestEscalatorDoneSkipsCleanOps(t *testing.T) {
	var c RetryCounter
	e := Escalator{Budget: 4}
	e.Done(&c)  // no restarts: not recorded
	e.Done(nil) // nil counter: safe
	if !c.Stats().Zero() {
		t.Fatalf("clean op recorded: %+v", c.Stats())
	}
}

func TestRetryStatsAddAndZero(t *testing.T) {
	a := RetryStats{Ops: 1, Restarts: 5, MaxRestarts: 5}
	b := RetryStats{Ops: 2, Restarts: 3, EscalatedHead: 1, MaxRestarts: 2}
	sum := a.Add(b)
	want := RetryStats{Ops: 3, Restarts: 8, EscalatedHead: 1, MaxRestarts: 5}
	if sum != want {
		t.Fatalf("Add = %+v, want %+v", sum, want)
	}
	if !(RetryStats{}).Zero() || sum.Zero() {
		t.Fatal("Zero misclassified")
	}
}

func TestRetryCounterConcurrent(t *testing.T) {
	var c RetryCounter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e := Escalator{Budget: 1}
				e.Failed(nil, int64(i))
				if w == 0 && i == 0 {
					e.Failed(nil, 0) // one op with two restarts
				}
				e.Done(&c)
			}
		}(w)
	}
	wg.Wait()
	got := c.Stats()
	if got.Ops != 8000 || got.Restarts != 8001 || got.MaxRestarts != 2 {
		t.Fatalf("Stats = %+v", got)
	}
}

func TestAttachRetryBudget(t *testing.T) {
	var b budgeted
	if !AttachRetryBudget(&b, 7) {
		t.Fatal("AttachRetryBudget refused a RetryBudgeted")
	}
	if b.k != 7 {
		t.Fatalf("budget = %d, want 7", b.k)
	}
	if AttachRetryBudget(struct{}{}, 7) {
		t.Fatal("AttachRetryBudget accepted a plain struct")
	}
}

type budgeted struct{ k int }

func (b *budgeted) SetRetryBudget(k int)   { b.k = k }
func (b *budgeted) RetryStats() RetryStats { return RetryStats{} }
