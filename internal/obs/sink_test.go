package obs

import "testing"

type recordingSink struct {
	events []Event
	keys   []int64
}

func (r *recordingSink) ObsEvent(ev Event, key int64) {
	r.events = append(r.events, ev)
	r.keys = append(r.keys, key)
}

// TestProbesSinkForwarding checks Inc both counts and forwards to the
// attached sink, and that detaching stops the forwarding without
// disturbing the counters.
func TestProbesSinkForwarding(t *testing.T) {
	p := NewProbes()
	sink := &recordingSink{}
	p.Inc(EvRestartPrev, 4) // pre-attach: counted, not forwarded
	p.SetSink(sink)
	p.Inc(EvCASFail, 9)
	p.SetSink(nil)
	p.Inc(EvCASFail, 10) // post-detach: counted, not forwarded

	if len(sink.events) != 1 || sink.events[0] != EvCASFail || sink.keys[0] != 9 {
		t.Fatalf("sink saw %v/%v, want exactly [EvCASFail]/[9]", sink.events, sink.keys)
	}
	snap := p.Snapshot()
	if snap[EvRestartPrev] != 1 || snap[EvCASFail] != 2 {
		t.Fatalf("counters = %v; the sink must not affect counting", snap.Map())
	}
}

// TestStripeSnapshot checks the per-stripe view: stripe rows sum to
// the flat snapshot, and two keys of the same stripe land together.
func TestStripeSnapshot(t *testing.T) {
	p := NewProbes()
	for k := int64(0); k < 100; k++ {
		p.Inc(EvPhysicalUnlink, k)
	}
	stripes := p.StripeSnapshot()
	var sum Snapshot
	for _, s := range stripes {
		sum = sum.Add(s)
	}
	if flat := p.Snapshot(); sum != flat {
		t.Fatalf("stripe sum %v != flat snapshot %v", sum.Map(), flat.Map())
	}
	if sum[EvPhysicalUnlink] != 100 {
		t.Fatalf("unlinks = %d, want 100", sum[EvPhysicalUnlink])
	}
	// Same key, same stripe: incrementing one key twice moves exactly
	// one stripe.
	p2 := NewProbes()
	p2.Inc(EvCASFail, 7)
	p2.Inc(EvCASFail, 7)
	var touched int
	for _, s := range p2.StripeSnapshot() {
		if s.Total() > 0 {
			touched++
			if s[EvCASFail] != 2 {
				t.Fatalf("stripe holds %d, want both increments of key 7", s[EvCASFail])
			}
		}
	}
	if touched != 1 {
		t.Fatalf("key 7 touched %d stripes, want 1", touched)
	}
}
