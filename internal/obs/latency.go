package obs

import (
	"time"

	"listset/internal/stats"
)

// OpKind classifies a set operation for latency reporting.
type OpKind uint8

const (
	// OpContains is a membership query.
	OpContains OpKind = iota
	// OpInsert is an insertion.
	OpInsert
	// OpRemove is a removal.
	OpRemove
	// OpScan is a range scan (RangeScan); its latency covers the whole
	// scan, not one key.
	OpScan

	// NumOps is the number of operation kinds.
	NumOps
)

// String returns the kind's stable report identifier.
func (k OpKind) String() string {
	switch k {
	case OpContains:
		return "contains"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpScan:
		return "scan"
	default:
		return "op(?)"
	}
}

// Recorder holds one latency histogram per operation kind. The
// histograms are lock-free, but the intended use is one Recorder per
// worker goroutine, merged into a run-level Recorder afterwards, so
// sampling never bounces a shared cache line mid-measurement. The
// zero value is ready to use; a Recorder must not be copied after
// first use.
type Recorder struct {
	hists [NumOps]stats.Histogram
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one sampled operation latency.
func (r *Recorder) Record(op OpKind, d time.Duration) {
	r.hists[op].Record(int64(d))
}

// Hist returns the histogram of one operation kind.
func (r *Recorder) Hist(op OpKind) *stats.Histogram {
	return &r.hists[op]
}

// Merge folds o's histograms into r.
func (r *Recorder) Merge(o *Recorder) {
	for i := range r.hists {
		r.hists[i].Merge(&o.hists[i])
	}
}

// Count returns the total number of samples across all kinds.
func (r *Recorder) Count() uint64 {
	var n uint64
	for i := range r.hists {
		n += r.hists[i].Count()
	}
	return n
}

// Percentiles digests one operation kind's histogram.
func (r *Recorder) Percentiles(op OpKind) stats.LatencySummary {
	return r.hists[op].Percentiles()
}
