// Bounded-retry observability: the paper's update operations retry
// through failed validations and failed CASes without any bound — fine
// for the theorems, hostile in production, where one adversarial
// interleaving (or an injected failpoint) can spin an operation
// forever. This file holds the retry *budget* machinery shared by the
// instrumented lists: a per-operation Escalator that walks the ladder
//
//	native restart policy  →  head-restart  →  head-restart + backoff
//
// after K and 2K failed-validation restarts, and a RetryCounter that
// aggregates what the escalators saw into per-run RetryStats.
package obs

import (
	"runtime"
	"sync/atomic"
)

// RetryStats is the aggregated view of the restarts a set's update
// operations needed. Zero value = no operation ever restarted.
type RetryStats struct {
	// Ops counts update operations that restarted at least once.
	Ops uint64
	// Restarts counts failed-validation (or failed-CAS) restarts.
	Restarts uint64
	// EscalatedHead counts operations that crossed the retry budget
	// and escalated their restart locality to head.
	EscalatedHead uint64
	// EscalatedBackoff counts operations that crossed twice the budget
	// and started backing off between restarts.
	EscalatedBackoff uint64
	// MaxRestarts is the most restarts any single operation needed.
	MaxRestarts uint64
}

// Add returns the field-wise sum of s and o (MaxRestarts: the max).
func (s RetryStats) Add(o RetryStats) RetryStats {
	s.Ops += o.Ops
	s.Restarts += o.Restarts
	s.EscalatedHead += o.EscalatedHead
	s.EscalatedBackoff += o.EscalatedBackoff
	if o.MaxRestarts > s.MaxRestarts {
		s.MaxRestarts = o.MaxRestarts
	}
	return s
}

// Sub returns the field-wise difference s - o, for bracketing a
// measured interval with two Stats reads. MaxRestarts carries s's
// value unchanged: a maximum has no meaningful delta, and the worst op
// seen by the later snapshot is still the honest "worst so far". The
// subtraction saturates at zero per field: an online rebalance swaps
// fresh shard slots (fresh retry counters) into the aggregate
// mid-interval, so a later snapshot can legitimately read lower — the
// saturated delta undercounts the migrated shards' tail, which is the
// honest floor, instead of wrapping to 2^64.
func (s RetryStats) Sub(o RetryStats) RetryStats {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	s.Ops = sat(s.Ops, o.Ops)
	s.Restarts = sat(s.Restarts, o.Restarts)
	s.EscalatedHead = sat(s.EscalatedHead, o.EscalatedHead)
	s.EscalatedBackoff = sat(s.EscalatedBackoff, o.EscalatedBackoff)
	return s
}

// Zero reports whether no operation ever restarted.
func (s RetryStats) Zero() bool { return s == RetryStats{} }

// RetryCounter accumulates RetryStats from concurrent operations. The
// zero value is ready to use; it must not be copied after first use.
type RetryCounter struct {
	ops, restarts, escHead, escBackoff, maxRestarts atomic.Uint64
}

// observe folds one finished operation's escalator into the counter.
func (c *RetryCounter) observe(restarts uint64, escHead, escBackoff bool) {
	c.ops.Add(1)
	c.restarts.Add(restarts)
	if escHead {
		c.escHead.Add(1)
	}
	if escBackoff {
		c.escBackoff.Add(1)
	}
	for {
		max := c.maxRestarts.Load()
		if restarts <= max || c.maxRestarts.CompareAndSwap(max, restarts) {
			return
		}
	}
}

// Stats returns the counter's current aggregate. Exact at quiescence.
func (c *RetryCounter) Stats() RetryStats {
	return RetryStats{
		Ops:              c.ops.Load(),
		Restarts:         c.restarts.Load(),
		EscalatedHead:    c.escHead.Load(),
		EscalatedBackoff: c.escBackoff.Load(),
		MaxRestarts:      c.maxRestarts.Load(),
	}
}

// RetryBudgeted is implemented by set algorithms with a bounded-retry
// escalation ladder. SetRetryBudget(0) restores the paper's unbounded
// behaviour; RetryStats reports what the ladder saw either way.
type RetryBudgeted interface {
	SetRetryBudget(k int)
	RetryStats() RetryStats
}

// AttachRetryBudget sets the retry budget on set if the algorithm
// supports one and reports whether it did.
func AttachRetryBudget(set any, k int) bool {
	if rb, ok := set.(RetryBudgeted); ok {
		rb.SetRetryBudget(k)
		return true
	}
	return false
}

// Escalator tracks one operation's failed-validation restarts against
// the list's retry budget K. Restarts [0, K) keep the list's native
// restart policy; [K, 2K) escalate the restart locality to head (a
// no-op for lists whose native policy already is the head-restart —
// construct those with HeadNative and the ladder collapses to
// "backoff after K"); from the backoff threshold on, every restart
// also yields to the scheduler with a budget that grows with the
// overshoot, so a stampede of doomed retries degrades into polite
// polling instead of a cache-line war.
//
// The zero value (Budget 0) never escalates, reproducing the paper's
// unbounded retry loop exactly.
type Escalator struct {
	// Budget is the list's retry budget K; 0 disables escalation.
	Budget int
	// HeadNative marks lists whose native restart policy is already
	// the head-restart (Lazy, Harris): stage one of the ladder is
	// skipped and backoff begins at K instead of 2K.
	HeadNative bool

	n int
}

// Restarts returns the number of failed-validation restarts so far.
func (e *Escalator) Restarts() int { return e.n }

// escalatedHead reports whether the op crossed into the head-restart
// stage (never for head-native lists, whose ladder has no such stage).
func (e *Escalator) escalatedHead() bool {
	return e.Budget > 0 && !e.HeadNative && e.n >= e.Budget
}

// backoffAt returns the restart count at which backoff begins.
func (e *Escalator) backoffAt() int {
	if e.HeadNative {
		return e.Budget
	}
	return 2 * e.Budget
}

// Failed records one failed-validation restart and reports whether the
// operation must now restart from head rather than its native restart
// point. It performs the backoff itself once the op is past the
// backoff threshold, and counts the two escalation transitions into p
// (which may be nil).
func (e *Escalator) Failed(p *Probes, key int64) (headRestart bool) {
	e.n++
	if e.Budget <= 0 {
		return false
	}
	if !e.HeadNative && e.n == e.Budget {
		if On(p) {
			p.Inc(EvRetryEscalateHead, key)
		}
	}
	if at := e.backoffAt(); e.n >= at {
		if e.n == at {
			if On(p) {
				p.Inc(EvRetryEscalateBackoff, key)
			}
		}
		// Brief backoff, linear in the overshoot and capped: enough to
		// let the competitors the op keeps losing to drain, bounded so
		// a single unlucky op never parks for long.
		rounds := e.n - at + 1
		if rounds > 8 {
			rounds = 8
		}
		for i := 0; i < rounds; i++ {
			runtime.Gosched()
		}
	}
	return e.escalatedHead()
}

// Done folds the finished operation into c (nil-safe); call it once on
// every return path of an op that may have restarted.
func (e *Escalator) Done(c *RetryCounter) {
	if e.n == 0 || c == nil {
		return
	}
	c.observe(uint64(e.n), e.escalatedHead(), e.n >= e.backoffAt() && e.Budget > 0)
}
