//go:build obsoff

package obs

// Compiled reports whether probe sites are compiled into this binary.
const Compiled = false

// On is constant false in the probe-free build: every guarded probe
// site is dead code and the compiler deletes it.
func On[T any](*T) bool { return false }
