package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the capture rendered in the JSON format
// Perfetto and chrome://tracing load directly. Op spans become
// complete ("ph":"X") events on one track per worker; probe and
// failpoint records become instant ("ph":"i") events — thread-scoped
// on the worker track when a surrounding span attributes them, on a
// synthetic "probes" track otherwise. Timestamps are microseconds (the
// format's unit) with sub-microsecond fractions preserved.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the whole export: the JSON-object form, which lets
// viewers read metadata alongside the event array.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const microsPerNano = 1e-3

// WriteChrome writes the capture as Chrome trace-event JSON. Unpaired
// op-begin/op-end records (spans cut off by ring wraparound or the
// snapshot moment) are rendered as instants so no captured record is
// silently omitted.
func (c *Capture) WriteChrome(w io.Writer) error {
	out := chromeFile{
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]chromeEvent, 0, len(c.Records)+c.Workers+1),
		OtherData: map[string]any{
			"workers": c.Workers,
			"depth":   c.Depth,
			"drops":   c.Drops,
		},
	}
	probeTID := c.Workers // synthetic track after the worker tracks
	// Thread names, so Perfetto labels the tracks.
	for w := 0; w < c.Workers; w++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Phase: "M", PID: 1, TID: w,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "thread_name", Cat: "__metadata", Phase: "M", PID: 1, TID: probeTID,
		Args: map[string]any{"name": "probes"},
	})

	// open tracks each worker's current span so op-ends pair up and
	// instants falling inside a span inherit its track.
	open := make(map[int32]*openSpan)
	instant := func(r Record, name string, args map[string]any) {
		tid := probeTID
		if r.Worker >= 0 && int(r.Worker) < c.Workers {
			tid = int(r.Worker)
		} else if sp := spanForKey(open, r.Key); sp != nil {
			tid = int(sp.rec.Worker)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "probe", Phase: "i", Scope: "t",
			TS: float64(r.Time) * microsPerNano, PID: 1, TID: tid, Args: args,
		})
	}
	for _, r := range c.Records {
		switch r.Kind {
		case KindOpBegin:
			if sp := open[r.Worker]; sp != nil {
				// Lost the matching end to wraparound: emit what we know.
				instant(sp.rec, sp.rec.OpKind().String()+"(begin only)", map[string]any{"key": sp.rec.Key})
			}
			open[r.Worker] = &openSpan{rec: r}
		case KindOpEnd:
			sp := open[r.Worker]
			if sp == nil || sp.rec.Key != r.Key || sp.rec.Op != r.Op {
				instant(r, r.OpKind().String()+"(end only)", map[string]any{"key": r.Key, "result": r.Result()})
				continue
			}
			delete(open, r.Worker)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  fmt.Sprintf("%s(%d)", r.OpKind(), r.Key),
				Cat:   "op",
				Phase: "X",
				TS:    float64(sp.rec.Time) * microsPerNano,
				Dur:   float64(r.Time-sp.rec.Time) * microsPerNano,
				PID:   1,
				TID:   int(r.Worker),
				Args:  map[string]any{"key": r.Key, "result": r.Result(), "seq": sp.rec.Seq},
			})
		case KindEvent:
			instant(r, r.Event().String(), map[string]any{"key": r.Key})
		case KindFailpointFire:
			instant(r, fmt.Sprintf("failpoint %s:%s", r.Site(), r.Action()), map[string]any{"key": r.Key})
		case KindFailpointRelease:
			instant(r, fmt.Sprintf("failpoint %s released", r.Site()), map[string]any{"key": r.Key})
		case KindRunBegin:
			instant(r, fmt.Sprintf("run %d", r.Key), nil)
		}
	}
	for _, sp := range open {
		instant(sp.rec, sp.rec.OpKind().String()+"(begin only)", map[string]any{"key": sp.rec.Key})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// openSpan is a worker's currently open operation span.
type openSpan struct {
	rec Record
}

// spanForKey attributes an unattributed record to the unique open span
// on its key, or nil when zero or several workers are mid-operation on
// that key (ambiguous; the probes track keeps it honest).
func spanForKey(open map[int32]*openSpan, key int64) *openSpan {
	var found *openSpan
	for _, sp := range open {
		if sp.rec.Key == key {
			if found != nil {
				return nil
			}
			found = sp
		}
	}
	return found
}
