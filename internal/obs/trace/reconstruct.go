package trace

import (
	"fmt"

	"listset/internal/failpoint"
	"listset/internal/lincheck"
	"listset/internal/obs"
	"listset/internal/schedule"
)

// Post-hoc audit bridge: a capture with complete span coverage lifts
// into a lincheck history (were the observed results linearizable?)
// and into schedule.TraceOp form (which paper schedule explains the
// interleaving?). Both refuse captures with ring drops — a flight
// recorder that lost records cannot certify anything about the run,
// only illustrate it.

// span is one completed operation reassembled from its begin/end pair.
type span struct {
	worker int32
	op     obs.OpKind
	key    int64
	result bool
	begin  Record
	end    Record
}

// spans pairs each worker's op-begin/op-end records in global order.
// Every begin must close before the capture ends: callers audit
// quiesced replays, not live rings.
func (c *Capture) spans() ([]span, error) {
	if c.Drops > 0 {
		return nil, fmt.Errorf("trace: capture dropped %d records; span reconstruction would be unsound", c.Drops)
	}
	open := make(map[int32]*Record)
	var out []span
	for i := range c.Records {
		r := c.Records[i]
		switch r.Kind {
		case KindOpBegin:
			if prev := open[r.Worker]; prev != nil {
				return nil, fmt.Errorf("trace: worker %d begins %s while %s is open", r.Worker, r, prev)
			}
			open[r.Worker] = &c.Records[i]
		case KindOpEnd:
			b := open[r.Worker]
			if b == nil || b.Key != r.Key || b.Op != r.Op {
				return nil, fmt.Errorf("trace: unmatched op end %s", r)
			}
			delete(open, r.Worker)
			out = append(out, span{
				worker: r.Worker, op: r.OpKind(), key: r.Key, result: r.Result(),
				begin: *b, end: r,
			})
		}
	}
	for _, b := range open {
		return nil, fmt.Errorf("trace: op never completed: %s", b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: capture holds no completed operation spans")
	}
	return out, nil
}

// History lifts the capture's operation spans into a lincheck history:
// invocation and return stamps are the global trace sequence numbers,
// which order exactly like the lincheck recorder's logical clock.
func (c *Capture) History() (lincheck.History, error) {
	spans, err := c.spans()
	if err != nil {
		return lincheck.History{}, err
	}
	h := lincheck.History{Ops: make([]lincheck.Op, 0, len(spans))}
	for _, sp := range spans {
		var kind lincheck.Kind
		switch sp.op {
		case obs.OpInsert:
			kind = lincheck.OpInsert
		case obs.OpRemove:
			kind = lincheck.OpRemove
		default:
			kind = lincheck.OpContains
		}
		h.Ops = append(h.Ops, lincheck.Op{
			Thread: int(sp.worker),
			Kind:   kind,
			Key:    sp.key,
			Result: sp.result,
			Invoke: int64(sp.begin.Seq),
			Return: int64(sp.end.Seq),
		})
	}
	return h, nil
}

// constraintSites are the pre-lock pause sites whose fire marks the
// exact boundary between an operation's read phase and its write
// phase: when a VBL update parks there it has completed precisely its
// wait-free traversal (and, for insert, its node creation), leaving
// only the locked writes and the return.
func constraintSite(s failpoint.Site) bool {
	return s == failpoint.SiteVBLLockNextAt || s == failpoint.SiteVBLLockNextAtValue
}

// ScheduleOps lifts the capture into schedule.TraceOp form. Span
// boundaries become Begin/End positions. A pause fired at a pre-lock
// site inside a span adds phase constraints: WritesAfter the release
// always (nothing can have been written while parked), and ReadsBefore
// the fire only when the trace shows no restart for that key after the
// release — a restart re-reads, so its reads postdate the fire.
func (c *Capture) ScheduleOps() ([]schedule.TraceOp, error) {
	spans, err := c.spans()
	if err != nil {
		return nil, err
	}
	ops := make([]schedule.TraceOp, len(spans))
	for i, sp := range spans {
		var kind schedule.OpKind
		switch sp.op {
		case obs.OpInsert:
			kind = schedule.OpInsert
		case obs.OpRemove:
			kind = schedule.OpRemove
		default:
			kind = schedule.OpContains
		}
		ops[i] = schedule.TraceOp{
			Spec:   schedule.OpSpec{Kind: kind, Arg: sp.key},
			Result: sp.result,
			Begin:  sp.begin.Seq,
			End:    sp.end.Seq,
		}
		fire, release, ok := c.pauseBracket(sp)
		if !ok {
			continue
		}
		ops[i].WritesAfter = release
		if !c.restartBetween(sp.key, release, sp.end.Seq) {
			ops[i].ReadsBefore = fire
		}
	}
	return ops, nil
}

// pauseBracket finds a pre-lock pause fired on the span's key inside
// the span, and its matching release.
func (c *Capture) pauseBracket(sp span) (fire, release uint64, ok bool) {
	for _, r := range c.Records {
		if r.Seq <= sp.begin.Seq || r.Seq >= sp.end.Seq || r.Key != sp.key {
			continue
		}
		if r.Kind == KindFailpointFire && r.Action() == failpoint.ActPause && constraintSite(r.Site()) {
			fire = r.Seq
		} else if r.Kind == KindFailpointRelease && constraintSite(r.Site()) && fire != 0 && release == 0 {
			release = r.Seq
		}
	}
	return fire, release, fire != 0 && release != 0 && fire < release
}

// restartBetween reports whether a restart event for key lies in the
// open position interval (lo, hi).
func (c *Capture) restartBetween(key int64, lo, hi uint64) bool {
	for _, r := range c.Records {
		if r.Kind != KindEvent || r.Key != key || r.Seq <= lo || r.Seq >= hi {
			continue
		}
		if ev := r.Event(); ev == obs.EvRestartPrev || ev == obs.EvRestartHead {
			return true
		}
	}
	return false
}
