package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"listset/internal/obs"
	"listset/internal/stats"
)

// Interval metrics streaming: a Streamer samples the probe counters
// and latency recorder shards on a ticker and emits windowed deltas —
// what happened in the last window, not cumulatively since the run
// began. Counters are monotone, so a delta of two snapshots is itself
// a valid snapshot; percentiles over a window come from the bucket-
// count difference of the log-histograms (stats.BucketCounts.Sub).
// Each row also carries the per-stripe event totals for the window, a
// contention heatmap row across the key space.

// StreamSchema identifies the JSON-lines row format.
const StreamSchema = "listset/stream/v1"

// StreamRow is one window of metrics. All counts are deltas over the
// window, not cumulative totals.
type StreamRow struct {
	Schema    string  `json:"schema"`
	Window    int     `json:"window"`     // 1-based window index
	ElapsedMS float64 `json:"elapsed_ms"` // since streaming started
	WindowMS  float64 `json:"window_ms"`  // actual width of this window
	// Events maps event name to its count in the window (zero counts
	// omitted). Empty when no probes are attached.
	Events map[string]uint64 `json:"events,omitempty"`
	// Stripes is the per-stripe total event count in the window — one
	// heatmap row across the obs.NumShards key stripes.
	Stripes []uint64 `json:"stripes,omitempty"`
	// Latency maps op name ("contains"/"insert"/"remove") to the
	// window's sampled-latency digest. Empty when no recorders are
	// attached or nothing was sampled.
	Latency map[string]stats.LatencySummary `json:"latency_ns,omitempty"`
}

// Streamer periodically digests probe and recorder state into
// StreamRows. Attach the sources before Start; Stop flushes a final
// partial window and waits for the ticker goroutine to exit.
type Streamer struct {
	interval time.Duration
	probes   *obs.Probes
	recs     []*obs.Recorder
	sink     func(StreamRow)

	prevStripes [obs.NumShards]obs.Snapshot
	prevHists   [obs.NumOps]stats.BucketCounts
	window      int
	start       time.Time
	lastTick    time.Time

	last atomic.Pointer[StreamRow]
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewStreamer builds a streamer over the given sources. probes may be
// nil (no event counters), recs may be empty (no latency windows); the
// sink receives each completed row and must be safe to call from the
// streamer's goroutine.
func NewStreamer(interval time.Duration, probes *obs.Probes, recs []*obs.Recorder, sink func(StreamRow)) *Streamer {
	if interval <= 0 {
		interval = time.Second
	}
	return &Streamer{
		interval: interval,
		probes:   probes,
		recs:     recs,
		sink:     sink,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start baselines the counters and launches the ticker goroutine.
func (s *Streamer) Start() {
	now := time.Now()
	s.start, s.lastTick = now, now
	s.baseline()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.emit(time.Now())
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the ticker, emits one final partial window (so the tail
// of a run is never silently dropped), and waits for the goroutine.
func (s *Streamer) Stop() {
	s.once.Do(func() {
		close(s.stop)
		<-s.done
		s.emit(time.Now())
	})
}

// Last returns the most recently emitted row, for pull-style surfaces
// (the expvar endpoint). ok is false before the first window closes.
func (s *Streamer) Last() (StreamRow, bool) {
	row := s.last.Load()
	if row == nil {
		return StreamRow{}, false
	}
	return *row, true
}

// baseline records the current counter state as window zero.
func (s *Streamer) baseline() {
	if s.probes != nil {
		s.prevStripes = s.probes.StripeSnapshot()
	}
	s.prevHists = s.histCounts()
}

// histCounts sums the recorder shards' bucket counts per op kind.
func (s *Streamer) histCounts() [obs.NumOps]stats.BucketCounts {
	var out [obs.NumOps]stats.BucketCounts
	for _, r := range s.recs {
		if r == nil {
			continue
		}
		for op := obs.OpKind(0); op < obs.NumOps; op++ {
			out[op] = out[op].Add(r.Hist(op).Buckets())
		}
	}
	return out
}

// emit closes the current window and hands the row to the sink. Only
// the ticker goroutine and the post-join Stop call it, never both
// concurrently.
func (s *Streamer) emit(now time.Time) {
	s.window++
	row := StreamRow{
		Schema:    StreamSchema,
		Window:    s.window,
		ElapsedMS: float64(now.Sub(s.start)) / float64(time.Millisecond),
		WindowMS:  float64(now.Sub(s.lastTick)) / float64(time.Millisecond),
	}
	s.lastTick = now

	if s.probes != nil {
		stripes := s.probes.StripeSnapshot()
		var total obs.Snapshot
		row.Stripes = make([]uint64, obs.NumShards)
		for i := range stripes {
			delta := stripes[i].Sub(s.prevStripes[i])
			row.Stripes[i] = delta.Total()
			total = total.Add(delta)
		}
		s.prevStripes = stripes
		events := make(map[string]uint64)
		for ev, n := range total.Map() {
			if n != 0 {
				events[ev] = n
			}
		}
		if len(events) > 0 {
			row.Events = events
		}
	}

	hists := s.histCounts()
	lat := make(map[string]stats.LatencySummary)
	for op := obs.OpKind(0); op < obs.NumOps; op++ {
		delta := hists[op].Sub(s.prevHists[op])
		if delta.Count() > 0 {
			lat[op.String()] = delta.Percentiles()
		}
	}
	s.prevHists = hists
	if len(lat) > 0 {
		row.Latency = lat
	}

	s.last.Store(&row)
	if s.sink != nil {
		s.sink(row)
	}
}
