package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compact binary trace format — the on-disk twin of the ring slots, so
// a capture round-trips losslessly and cmd/tracecat can summarize,
// convert or audit it offline.
//
// Layout (all little-endian):
//
//	offset size  field
//	0      8     magic "LSTRACE1"
//	8      4     workers (uint32)
//	12     4     depth (uint32)
//	16     8     drops (uint64)
//	24     8     record count (uint64)
//	32     32×n  records: seq, time, key (8 bytes each),
//	             worker (int32), kind, op, aux, flags (1 byte each)

// binaryMagic identifies (and versions) the format.
const binaryMagic = "LSTRACE1"

// recordSize is the on-disk size of one record.
const recordSize = 32

// WriteBinary writes the capture in the compact binary format.
func (c *Capture) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(c.Workers))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.Depth))
	binary.LittleEndian.PutUint64(hdr[8:], c.Drops)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(c.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, r := range c.Records {
		binary.LittleEndian.PutUint64(buf[0:], r.Seq)
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Time))
		binary.LittleEndian.PutUint64(buf[16:], uint64(r.Key))
		binary.LittleEndian.PutUint32(buf[24:], uint32(r.Worker))
		buf[28] = uint8(r.Kind)
		buf[29] = r.Op
		buf[30] = r.Aux
		buf[31] = r.Flags
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a capture previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Capture, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic[:], binaryMagic)
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	c := &Capture{
		Workers: int(binary.LittleEndian.Uint32(hdr[0:])),
		Depth:   int(binary.LittleEndian.Uint32(hdr[4:])),
		Drops:   binary.LittleEndian.Uint64(hdr[8:]),
	}
	count := binary.LittleEndian.Uint64(hdr[16:])
	const sanityMax = 1 << 32 // refuse absurd counts before allocating
	if count > sanityMax {
		return nil, fmt.Errorf("trace: record count %d exceeds sanity bound", count)
	}
	c.Records = make([]Record, 0, count)
	var buf [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d of %d: %w", i, count, err)
		}
		rec := Record{
			Seq:    binary.LittleEndian.Uint64(buf[0:]),
			Time:   int64(binary.LittleEndian.Uint64(buf[8:])),
			Key:    int64(binary.LittleEndian.Uint64(buf[16:])),
			Worker: int32(binary.LittleEndian.Uint32(buf[24:])),
			Kind:   Kind(buf[28]),
			Op:     buf[29],
			Aux:    buf[30],
			Flags:  buf[31],
		}
		if rec.Kind == KindInvalid || rec.Kind >= NumKinds {
			return nil, fmt.Errorf("trace: record %d has invalid kind %d", i, rec.Kind)
		}
		c.Records = append(c.Records, rec)
	}
	return c, nil
}
