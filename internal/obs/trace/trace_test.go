package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

func TestMetaPackUnpack(t *testing.T) {
	cases := []struct {
		worker int32
		kind   Kind
		op     uint8
		aux    uint8
		flags  uint8
	}{
		{0, KindOpBegin, 0, 0, 0},
		{-1, KindEvent, 0, uint8(obs.EvRestartPrev), 0},
		{41, KindOpEnd, uint8(obs.OpRemove), 0, FlagResult},
		{1 << 20, KindFailpointFire, uint8(failpoint.ActPause), uint8(failpoint.SiteVBLLockNextAt), 0xFF},
	}
	for _, c := range cases {
		w, k, op, aux, fl := unpackMeta(packMeta(c.worker, c.kind, c.op, c.aux, c.flags))
		if w != c.worker || k != c.kind || op != c.op || aux != c.aux || fl != c.flags {
			t.Errorf("pack/unpack(%+v) = (%d %v %d %d %d)", c, w, k, op, aux, fl)
		}
	}
}

func TestEmitAndSnapshotOrder(t *testing.T) {
	tr := NewTracer(2, 16)
	tr.OpBegin(0, obs.OpInsert, 7)
	tr.OpBegin(1, obs.OpContains, 9)
	tr.OpEnd(1, obs.OpContains, 9, true)
	tr.OpEnd(0, obs.OpInsert, 7, false)
	c := tr.Snapshot()
	if len(c.Records) != 4 || c.Drops != 0 {
		t.Fatalf("records = %d, drops = %d; want 4, 0", len(c.Records), c.Drops)
	}
	for i := 1; i < len(c.Records); i++ {
		if c.Records[i].Seq <= c.Records[i-1].Seq {
			t.Fatalf("snapshot not seq-sorted: %v", c.Records)
		}
	}
	// Records interleave across the two worker rings in emit order.
	last := c.Records[3]
	if last.Kind != KindOpEnd || last.OpKind() != obs.OpInsert || last.Result() {
		t.Fatalf("last record = %s, want insert op_end result=false", last)
	}
	if c.Records[2].Worker != 1 || !c.Records[2].Result() {
		t.Fatalf("third record = %s, want worker 1 contains hit", c.Records[2])
	}
}

// TestRingWraparound fills one worker ring past its depth and checks
// flight-recorder semantics: the newest records survive, the drop
// counter reports exactly how many were overwritten.
func TestRingWraparound(t *testing.T) {
	const depth = 16
	tr := NewTracer(1, depth)
	const emitted = 100
	for i := 0; i < emitted; i++ {
		tr.OpBegin(0, obs.OpInsert, int64(i))
	}
	c := tr.Snapshot()
	if c.Drops != emitted-depth {
		t.Fatalf("Drops = %d, want %d", c.Drops, emitted-depth)
	}
	if len(c.Records) != depth {
		t.Fatalf("records = %d, want %d", len(c.Records), depth)
	}
	// The survivors are the newest `depth` emissions, in order.
	for i, r := range c.Records {
		if want := int64(emitted - depth + i); r.Key != want {
			t.Fatalf("record %d key = %d, want %d (oldest must be overwritten)", i, r.Key, want)
		}
	}
}

func TestDepthRoundsUpToPowerOfTwo(t *testing.T) {
	tr := NewTracer(1, 100)
	if tr.Depth() != 128 {
		t.Fatalf("Depth() = %d, want 128", tr.Depth())
	}
	if d := NewTracer(1, 0).Depth(); d != DefaultDepth {
		t.Fatalf("Depth() for 0 = %d, want DefaultDepth %d", d, DefaultDepth)
	}
}

// TestConcurrentEmitSnapshot hammers the rings from several emitters —
// including the key-hashed sink path — while snapshots run throughout.
// Under -race this exercises the seqlock publication protocol; every
// record a snapshot accepts must be internally consistent.
func TestConcurrentEmitSnapshot(t *testing.T) {
	tr := NewTracer(4, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.OpBegin(id, obs.OpInsert, int64(i))
				tr.OpEnd(id, obs.OpInsert, int64(i), i%2 == 0)
				tr.ObsEvent(obs.EvRestartPrev, int64(i)) // worker -1: hashed ring
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		c := tr.Snapshot()
		for _, r := range c.Records {
			if r.Kind == KindInvalid || r.Kind >= NumKinds {
				t.Fatalf("torn record surfaced: %s", r)
			}
			switch r.Kind {
			case KindOpBegin, KindOpEnd:
				if r.OpKind() != obs.OpInsert {
					t.Fatalf("span record with wrong op: %s", r)
				}
			case KindEvent:
				if r.Event() != obs.EvRestartPrev {
					t.Fatalf("event record with wrong event: %s", r)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := NewTracer(2, 16)
	tr.RunBegin(3)
	tr.OpBegin(0, obs.OpRemove, 5)
	tr.FailpointFired(failpoint.SiteVBLLockNextAtValue, failpoint.ActPause, 5)
	tr.FailpointReleased(failpoint.SiteVBLLockNextAtValue, 5)
	tr.OpEnd(0, obs.OpRemove, 5, true)
	c := tr.Snapshot()

	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != c.Workers || got.Depth != c.Depth || got.Drops != c.Drops {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	if len(got.Records) != len(c.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(c.Records))
	}
	for i := range c.Records {
		if got.Records[i] != c.Records[i] {
			t.Fatalf("record %d: %s != %s", i, got.Records[i], c.Records[i])
		}
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTATRACE........"))); err == nil {
		t.Fatal("ReadBinary accepted a bad magic")
	}
}

// TestChromeExportParses checks the Chrome trace-event export is valid
// JSON with the structure Perfetto needs: paired spans become "X"
// events, probe records become "i" instants, every worker has a
// thread-name metadata record.
func TestChromeExportParses(t *testing.T) {
	tr := NewTracer(2, 32)
	tr.OpBegin(0, obs.OpInsert, 5)
	tr.ObsEvent(obs.EvTryLockContended, 5) // attributed to worker 0's open span
	tr.OpEnd(0, obs.OpInsert, 5, true)
	tr.OpBegin(1, obs.OpContains, 9) // left open: must render as instant
	c := tr.Snapshot()

	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TID   int     `json:"tid"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range parsed.TraceEvents {
		switch e.Phase {
		case "X":
			spans++
			if e.Name != "insert(5)" || e.TID != 0 {
				t.Errorf("span = %+v, want insert(5) on tid 0", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 1 {
		t.Errorf("complete spans = %d, want 1", spans)
	}
	if instants != 2 { // the probe event + the unpaired contains begin
		t.Errorf("instants = %d, want 2", instants)
	}
	if meta != 3 { // 2 workers + probes track
		t.Errorf("metadata records = %d, want 3", meta)
	}
}

// TestSinkInterfaces nails the tracer to the probe and failpoint sink
// contracts and checks the records carry the right payloads through.
func TestSinkInterfaces(t *testing.T) {
	tr := NewTracer(1, 16)
	var es obs.EventSink = tr
	var fs failpoint.Sink = tr
	es.ObsEvent(obs.EvCASFail, 11)
	fs.FailpointFired(failpoint.SiteVBLTraverse, failpoint.ActDelay, 12)
	fs.FailpointReleased(failpoint.SiteVBLTraverse, 12)
	c := tr.Snapshot()
	if len(c.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(c.Records))
	}
	if r := c.Records[0]; r.Event() != obs.EvCASFail || r.Key != 11 || r.Worker != -1 {
		t.Fatalf("event record = %s", r)
	}
	if r := c.Records[1]; r.Site() != failpoint.SiteVBLTraverse || r.Action() != failpoint.ActDelay {
		t.Fatalf("fire record = %s", r)
	}
	if r := c.Records[2]; r.Kind != KindFailpointRelease || r.Site() != failpoint.SiteVBLTraverse {
		t.Fatalf("release record = %s", r)
	}
}
