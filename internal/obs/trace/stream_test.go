package trace

import (
	"sync"
	"testing"
	"time"

	"listset/internal/obs"
)

// TestStreamerWindows drives the streamer's windowing by hand (via
// emit) and checks rows carry deltas, not cumulative totals.
func TestStreamerWindows(t *testing.T) {
	probes := obs.NewProbes()
	rec := obs.NewRecorder()
	var rows []StreamRow
	s := NewStreamer(time.Hour, probes, []*obs.Recorder{rec}, func(r StreamRow) {
		rows = append(rows, r)
	})
	s.start = time.Now()
	s.lastTick = s.start
	s.baseline()

	probes.Inc(obs.EvRestartPrev, 1)
	probes.Inc(obs.EvRestartPrev, 1)
	rec.Record(obs.OpInsert, 100)
	s.emit(time.Now())

	probes.Inc(obs.EvCASFail, 2)
	s.emit(time.Now())

	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Schema != StreamSchema || rows[0].Window != 1 || rows[1].Window != 2 {
		t.Fatalf("row headers wrong: %+v", rows)
	}
	if rows[0].Events[obs.EvRestartPrev.String()] != 2 {
		t.Errorf("window 1 restarts = %d, want 2", rows[0].Events[obs.EvRestartPrev.String()])
	}
	if got := rows[0].Latency[obs.OpInsert.String()]; got.Count != 1 {
		t.Errorf("window 1 insert latency count = %d, want 1", got.Count)
	}
	// Window 2 must show only the window's activity: the restart and
	// the latency sample belong to window 1.
	if _, ok := rows[1].Events[obs.EvRestartPrev.String()]; ok {
		t.Error("window 2 repeats window 1's restart count; rows must be deltas")
	}
	if rows[1].Events[obs.EvCASFail.String()] != 1 {
		t.Errorf("window 2 cas fails = %d, want 1", rows[1].Events[obs.EvCASFail.String()])
	}
	if len(rows[1].Latency) != 0 {
		t.Errorf("window 2 latency = %+v, want empty", rows[1].Latency)
	}
	// Stripe rows span the full shard map and sum to the window total.
	if len(rows[0].Stripes) != obs.NumShards {
		t.Fatalf("stripe row width = %d, want %d", len(rows[0].Stripes), obs.NumShards)
	}
	var total uint64
	for _, n := range rows[0].Stripes {
		total += n
	}
	if total != 2 {
		t.Errorf("window 1 stripe total = %d, want 2", total)
	}
}

// TestStreamerLifecycle runs the real ticker path: Start, let at least
// one window close, Stop — which must flush a final partial window and
// make Last observable.
func TestStreamerLifecycle(t *testing.T) {
	probes := obs.NewProbes()
	var mu chanRows
	s := NewStreamer(10*time.Millisecond, probes, nil, mu.add)
	s.Start()
	probes.Inc(obs.EvRestartHead, 3)
	time.Sleep(35 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent

	rows := mu.get()
	if len(rows) < 2 {
		t.Fatalf("rows = %d, want at least 2 (ticker + final flush)", len(rows))
	}
	last, ok := s.Last()
	if !ok || last.Window != rows[len(rows)-1].Window {
		t.Fatalf("Last() = %+v/%v, want the final row", last, ok)
	}
	var restarts uint64
	for _, r := range rows {
		restarts += r.Events[obs.EvRestartHead.String()]
	}
	if restarts != 1 {
		t.Fatalf("restart appears %d times across windows, want exactly once", restarts)
	}
}

// chanRows collects rows across goroutines.
type chanRows struct {
	mu   sync.Mutex
	rows []StreamRow
}

func (c *chanRows) add(r StreamRow) {
	c.mu.Lock()
	c.rows = append(c.rows, r)
	c.mu.Unlock()
}

func (c *chanRows) get() []StreamRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]StreamRow(nil), c.rows...)
}
