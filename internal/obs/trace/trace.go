// Package trace is the flight recorder behind internal/obs: lock-free,
// cache-line-padded per-worker ring buffers of fixed-size event records
// capturing *when* the contention phenomena the probes count actually
// happened — each restart, failed validation, CAS loss, unlink, epoch
// event and failpoint injection, plus op-begin/op-end span events from
// the harness — in one globally ordered stream.
//
// The paper's argument is about which interleavings an algorithm
// accepts; aggregate counters cannot show an interleaving. A captured
// trace can: the Chrome trace-event exporter (chrome.go) renders one
// track per worker for Perfetto, the schedule bridge (reconstruct.go)
// lifts a capture into internal/schedule form and re-validates it with
// internal/lincheck, and the interval streamer (stream.go) turns the
// same probes into windowed heatmap rows.
//
// Emission follows the obs guard idiom: a nil *Tracer means disabled,
// call sites guard with obs.On (which -tags obsoff turns into constant
// false), and an enabled emit is a handful of atomic stores into a
// reserved ring slot — no locks, no allocation, no channel.
//
// Ring slots are seqlock-published: a writer reserves an index with one
// atomic add on the ring head, invalidates the slot (seq = 0), stores
// the fields, then stores the record's globally unique sequence number
// last. A reader validates seq-before == seq-after ≠ 0, so concurrent
// snapshots are race-free and torn reads are discarded. When a ring
// wraps, the oldest records are silently overwritten — flight-recorder
// semantics — and the loss is accounted per ring (head minus capacity).
// The one theoretical tear (a writer stalled between its two seq
// stores for a full ring revolution of the same ring) is bounded by
// the semantic validation in Snapshot and documented in DESIGN.md §12.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Kind enumerates record types. The zero value is reserved as
// "invalid" so an unwritten ring slot can never decode into a record.
type Kind uint8

const (
	// KindInvalid marks an empty or torn slot; never emitted.
	KindInvalid Kind = iota
	// KindOpBegin opens an operation span: Op is the obs.OpKind, Key
	// the operand, Worker the driving goroutine.
	KindOpBegin
	// KindOpEnd closes the worker's current span; Flags bit 0 carries
	// the operation's boolean result.
	KindOpEnd
	// KindEvent is a forwarded probe increment: Aux is the obs.Event.
	// Worker is -1 — probe sites inside algorithm code do not know
	// which worker runs them; attribution is by key and time.
	KindEvent
	// KindFailpointFire records an armed failpoint firing: Aux is the
	// failpoint.Site, Op the failpoint.Action.
	KindFailpointFire
	// KindFailpointRelease records a goroutine resuming from an
	// ActPause park: Aux is the failpoint.Site.
	KindFailpointRelease
	// KindRunBegin marks the start of a measured interval (harness
	// run); Key carries the run index.
	KindRunBegin

	// NumKinds is the number of distinct kinds.
	NumKinds
)

// kindNames are the stable identifiers used in exports.
var kindNames = [NumKinds]string{
	KindInvalid:          "invalid",
	KindOpBegin:          "op_begin",
	KindOpEnd:            "op_end",
	KindEvent:            "event",
	KindFailpointFire:    "failpoint_fire",
	KindFailpointRelease: "failpoint_release",
	KindRunBegin:         "run_begin",
}

// String returns the kind's stable identifier.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind(?)"
}

// FlagResult is the Flags bit carrying an op-end's boolean result.
const FlagResult = 1 << 0

// Record is one decoded trace event — the logical view of a 32-byte
// ring slot. Seq is a global emission order (1-based, dense across all
// rings); Time is nanoseconds since the tracer was created.
type Record struct {
	Seq    uint64
	Time   int64
	Key    int64
	Worker int32
	Kind   Kind
	Op     uint8 // obs.OpKind (spans) or failpoint.Action (fires)
	Aux    uint8 // obs.Event (events) or failpoint.Site (fires/releases)
	Flags  uint8
}

// Result decodes an op-end's boolean result.
func (r Record) Result() bool { return r.Flags&FlagResult != 0 }

// OpKind decodes a span record's operation kind.
func (r Record) OpKind() obs.OpKind { return obs.OpKind(r.Op) }

// Event decodes a probe record's event.
func (r Record) Event() obs.Event { return obs.Event(r.Aux) }

// Site decodes a failpoint record's site.
func (r Record) Site() failpoint.Site { return failpoint.Site(r.Aux) }

// Action decodes a failpoint-fire record's action.
func (r Record) Action() failpoint.Action { return failpoint.Action(r.Op) }

// String renders the record for diagnostics.
func (r Record) String() string {
	switch r.Kind {
	case KindOpBegin:
		return fmt.Sprintf("#%d w%d %s(%d) begin", r.Seq, r.Worker, r.OpKind(), r.Key)
	case KindOpEnd:
		return fmt.Sprintf("#%d w%d %s(%d) end=%v", r.Seq, r.Worker, r.OpKind(), r.Key, r.Result())
	case KindEvent:
		return fmt.Sprintf("#%d %s key=%d", r.Seq, r.Event(), r.Key)
	case KindFailpointFire:
		return fmt.Sprintf("#%d failpoint %s:%s key=%d", r.Seq, r.Site(), r.Action(), r.Key)
	case KindFailpointRelease:
		return fmt.Sprintf("#%d failpoint %s released key=%d", r.Seq, r.Site(), r.Key)
	case KindRunBegin:
		return fmt.Sprintf("#%d run %d begin", r.Seq, r.Key)
	default:
		return fmt.Sprintf("#%d %s", r.Seq, r.Kind)
	}
}

// slot is one seqlock-published ring entry: 32 bytes, all-atomic so
// concurrent snapshots are race-free. seq is stored last by writers
// (after an invalidating zero store) and validated twice by readers.
type slot struct {
	seq  atomic.Uint64
	time atomic.Int64
	key  atomic.Int64
	meta atomic.Uint64 // worker(32) | kind(8) | op(8) | aux(8) | flags(8)
}

func packMeta(worker int32, kind Kind, op, aux, flags uint8) uint64 {
	return uint64(uint32(worker))<<32 | uint64(kind)<<24 | uint64(op)<<16 | uint64(aux)<<8 | uint64(flags)
}

func unpackMeta(m uint64) (worker int32, kind Kind, op, aux, flags uint8) {
	return int32(uint32(m >> 32)), Kind(m >> 24), uint8(m >> 16), uint8(m >> 8), uint8(m)
}

// ring is one per-worker record buffer. The head counts reservations
// ever made, so head − len(slots) (when positive) is exactly how many
// oldest records were overwritten. It is padded so two rings' heads —
// bumped by different workers on every emission — never share a cache
// line (two lines, against adjacent-line prefetching).
type ring struct {
	head  atomic.Uint64
	_     [120]byte
	slots []slot
}

// Tracer is the flight recorder: one ring per worker plus a global
// sequence counter establishing a total order across rings. The zero
// value is not usable; construct with NewTracer. All methods are safe
// for concurrent use.
type Tracer struct {
	start   time.Time
	seq     atomic.Uint64
	rings   []ring
	mask    uint64
	workers int
}

// DefaultDepth is the per-worker ring capacity NewTracer applies when
// given a non-positive depth: 64Ki records ≈ 2 MiB per worker, a few
// hundred milliseconds of a hot benchmark loop.
const DefaultDepth = 1 << 16

// NewTracer returns a tracer with one ring per worker (minimum one
// ring; unattributed events are hashed over the rings by key) holding
// depth records each, rounded up to a power of two.
func NewTracer(workers, depth int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	depthPow := 1
	for depthPow < depth {
		depthPow <<= 1
	}
	t := &Tracer{start: time.Now(), rings: make([]ring, workers), mask: uint64(depthPow - 1), workers: workers}
	for i := range t.rings {
		t.rings[i].slots = make([]slot, depthPow)
	}
	return t
}

// Workers returns the number of rings.
func (t *Tracer) Workers() int { return t.workers }

// Depth returns the per-ring record capacity.
func (t *Tracer) Depth() int { return int(t.mask + 1) }

// Drops returns how many records have been overwritten before being
// snapshotted, summed over the rings. Racy while emission is live.
func (t *Tracer) Drops() uint64 {
	var d uint64
	capacity := t.mask + 1
	for i := range t.rings {
		if h := t.rings[i].head.Load(); h > capacity {
			d += h - capacity
		}
	}
	return d
}

// ringFor picks the destination ring: the worker's own for attributed
// records, a key-hashed one for probe events emitted from inside
// algorithm code (which does not know its worker).
func (t *Tracer) ringFor(worker int32, key int64) *ring {
	if worker >= 0 && int(worker) < t.workers {
		return &t.rings[worker]
	}
	return &t.rings[(uint64(key)*0x9E3779B97F4A7C15)>>32%uint64(t.workers)]
}

// Emit appends one record. Callers on hot paths must sit behind the
// obs.On guard, exactly like a Probes.Inc.
func (t *Tracer) Emit(worker int, kind Kind, op, aux, flags uint8, key int64) {
	seq := t.seq.Add(1)
	now := int64(time.Since(t.start))
	r := t.ringFor(int32(worker), key)
	s := &r.slots[(r.head.Add(1)-1)&t.mask]
	s.seq.Store(0) // invalidate: readers discard the slot mid-write
	s.time.Store(now)
	s.key.Store(key)
	s.meta.Store(packMeta(int32(worker), kind, op, aux, flags))
	s.seq.Store(seq)
}

// OpBegin opens an operation span on the worker's ring.
func (t *Tracer) OpBegin(worker int, op obs.OpKind, key int64) {
	t.Emit(worker, KindOpBegin, uint8(op), 0, 0, key)
}

// OpEnd closes the worker's current span with the op's result.
func (t *Tracer) OpEnd(worker int, op obs.OpKind, key int64, result bool) {
	var flags uint8
	if result {
		flags = FlagResult
	}
	t.Emit(worker, KindOpEnd, uint8(op), 0, flags, key)
}

// RunBegin marks the start of measured interval run (0-based).
func (t *Tracer) RunBegin(run int) {
	t.Emit(-1, KindRunBegin, 0, 0, 0, int64(run))
}

// ObsEvent implements obs.EventSink: every probe increment becomes an
// unattributed event record.
func (t *Tracer) ObsEvent(ev obs.Event, key int64) {
	t.Emit(-1, KindEvent, 0, uint8(ev), 0, key)
}

// FailpointFired implements failpoint.Sink.
func (t *Tracer) FailpointFired(site failpoint.Site, action failpoint.Action, key int64) {
	t.Emit(-1, KindFailpointFire, uint8(action), uint8(site), 0, key)
}

// FailpointReleased implements failpoint.Sink.
func (t *Tracer) FailpointReleased(site failpoint.Site, key int64) {
	t.Emit(-1, KindFailpointRelease, 0, uint8(site), 0, key)
}

var (
	_ obs.EventSink  = (*Tracer)(nil)
	_ failpoint.Sink = (*Tracer)(nil)
)

// Capture is a decoded snapshot of the rings: the surviving records in
// global emission order, plus how many were lost to wraparound.
type Capture struct {
	// Records is sorted by Seq. Seq numbers are dense over everything
	// ever emitted, so gaps identify exactly the dropped records.
	Records []Record
	// Drops counts records overwritten before the snapshot.
	Drops uint64
	// Workers and Depth echo the tracer's geometry.
	Workers int
	Depth   int
}

// Snapshot decodes every live ring slot into a Capture. It is safe
// concurrently with emission: slots being overwritten mid-read fail
// seq validation and are retried, then skipped (the record they held
// was being dropped anyway). For an exact capture, quiesce first.
func (t *Tracer) Snapshot() *Capture {
	c := &Capture{Workers: t.workers, Depth: t.Depth()}
	capacity := t.mask + 1
	for ri := range t.rings {
		r := &t.rings[ri]
		if h := r.head.Load(); h > capacity {
			c.Drops += h - capacity
		}
		for i := range r.slots {
			s := &r.slots[i]
			for attempt := 0; attempt < 4; attempt++ {
				s1 := s.seq.Load()
				if s1 == 0 {
					break // empty or mid-write; nothing stable to read
				}
				tm := s.time.Load()
				key := s.key.Load()
				meta := s.meta.Load()
				if s.seq.Load() != s1 {
					continue // torn by a racing writer; retry
				}
				worker, kind, op, aux, flags := unpackMeta(meta)
				if kind == KindInvalid || kind >= NumKinds {
					break // semantic backstop (see package comment)
				}
				c.Records = append(c.Records, Record{
					Seq: s1, Time: tm, Key: key,
					Worker: worker, Kind: kind, Op: op, Aux: aux, Flags: flags,
				})
				break
			}
		}
	}
	sort.Slice(c.Records, func(i, j int) bool { return c.Records[i].Seq < c.Records[j].Seq })
	return c
}

// CountByKind tallies the capture's records per kind.
func (c *Capture) CountByKind() [NumKinds]int {
	var out [NumKinds]int
	for _, r := range c.Records {
		out[r.Kind]++
	}
	return out
}
