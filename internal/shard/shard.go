// Package shard is the order-preserving range partitioner that scales
// the repository's list-based sets past the paper's single-list regime:
// S independent lists ("shards"), each covering one contiguous slice of
// the key space, behind a façade that still satisfies the full Set
// contract.
//
// The paper proves VBL extracts every schedule a single list can
// accept; what it cannot change is that a traversal still walks O(n)
// nodes and every operation's first hop loads the one head node's
// cache line. Partitioning the key range into S contiguous sub-ranges
// attacks both costs at once: expected traversal length drops to
// O(n/S), and contended try-lock acquisitions spread across S
// independent head regions (each shard's sentinels are cache-line
// padded by the underlying lists, and the shard header array here is
// padded so adjacent slots never share a line).
//
// Why the composition stays linearizable (DESIGN.md §8 for the long
// form): the partition function is a pure function of the key, so
// every operation on key k — Insert(k), Remove(k), Contains(k) — is
// executed verbatim by exactly one shard, and each shard is itself a
// linearizable set. Operations on different shards touch disjoint
// state and disjoint keys, so ordering them by their per-shard
// linearization points yields a legal sequential history of the whole
// set: linearizability composes by key locality.
//
// The partitioner is order-preserving: the map key→shard is monotone,
// so shard i's keys all precede shard i+1's and Snapshot is a plain
// concatenation of per-shard snapshots, still in ascending order.
//
// Routing is a comparison, a subtraction, one shift and one clamp —
// no division, no hashing. The shard count is rounded up to a power
// of two and the per-shard span is a power of two covering the focus
// range [lo, hi): keys below lo clamp to shard 0, keys at or above the
// covered prefix clamp to shard S-1, so the whole int64 domain
// (including the sets' MinKey/MaxKey extremes) routes somewhere.
package shard

import (
	"fmt"
	"math/bits"
	"unsafe"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Set is the operation surface a shard must provide. The root
// package's implementations satisfy it structurally; this package
// deliberately does not import them (they import it).
type Set interface {
	Insert(v int64) bool
	Remove(v int64) bool
	Contains(v int64) bool
	Len() int
	Snapshot() []int64
}

const (
	// DefaultShards is the shard count used by the convenience
	// constructors in the root package.
	DefaultShards = 16
	// DefaultFocus is the default focus range [0, DefaultFocus): the
	// slice of the key space split evenly across shards when the
	// caller does not supply one. Synchrobench-style workloads draw
	// keys from [0, range), so benchmark tools pass their range
	// explicitly instead.
	DefaultFocus int64 = 1 << 16
	// MaxShards bounds the shard count: past a few hundred shards the
	// per-shard lists are a handful of nodes and the façade's fixed
	// costs dominate.
	MaxShards = 1 << 10

	// cacheLine is the coherence granularity the slot layout targets:
	// 64 bytes covers x86-64 and the common arm64 parts.
	cacheLine = 64
)

// slot is one shard header: the shard's set, padded so adjacent
// headers never share a cache line. The header itself is read-only
// after construction, but without padding two neighbouring interface
// words would sit on one line and pull both shards' metadata into
// every miss on either.
type slot struct {
	set Set
	_   [(cacheLine - unsafe.Sizeof(Set(nil))%cacheLine) % cacheLine]byte
}

// Sharded is the range-partitioned façade: S independent Sets, each
// owning one contiguous slice of the key space. The zero value is not
// usable; call New or NewRange.
//
// Sharded is safe for concurrent use iff the underlying sets are; it
// adds no locking of its own.
type Sharded struct {
	lo    int64 // lower edge of the focus range
	shift uint  // log2 of the per-shard key span
	slots []slot

	// parallel, when true, fans batch sub-batches out to one goroutine
	// per non-empty shard (SetBatchParallel).
	parallel bool

	// fps, when non-nil, arms the chaos failpoints: the façade's own
	// SiteShardRoute site plus whatever sites the shards expose.
	fps *failpoint.Set

	// probes, when non-nil, receives the façade's own events (batch
	// splits); the shards' events are attached separately by SetProbes.
	probes *obs.Probes
}

// New returns a Sharded over the given number of shards (rounded up to
// a power of two, clamped to [1, MaxShards]) focused on the default
// key range [0, DefaultFocus). newSet constructs each shard's backing
// set.
func New(shards int, newSet func() Set) *Sharded {
	return NewRange(shards, 0, DefaultFocus, newSet)
}

// NewRange returns a Sharded whose focus range [lo, hi) is split
// evenly across the shards: each shard owns a power-of-two span of at
// least (hi-lo)/S keys. Keys below lo route to shard 0 and keys above
// the covered prefix to the last shard, so every int64 key is owned by
// exactly one shard. Panics if hi <= lo or newSet is nil, mirroring
// the "misuse panics at construction" convention of the root package.
func NewRange(shards int, lo, hi int64, newSet func() Set) *Sharded {
	if newSet == nil {
		panic("shard: NewRange called with nil constructor")
	}
	if hi <= lo {
		panic(fmt.Sprintf("shard: empty focus range [%d, %d)", lo, hi))
	}
	n := ceilPow2(shards)
	s := &Sharded{
		lo:    lo,
		shift: spanShift(lo, hi, n),
		slots: make([]slot, n),
	}
	for i := range s.slots {
		s.slots[i].set = newSet()
	}
	return s
}

// ceilPow2 rounds n up to a power of two within [1, MaxShards].
func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// spanShift returns log2 of the per-shard key span: the smallest
// power-of-two span such that shards×span covers the width of
// [lo, hi). Width arithmetic is done in uint64 so the full-domain
// range works (hi-lo may exceed MaxInt64).
func spanShift(lo, hi int64, shards int) uint {
	width := uint64(hi) - uint64(lo)
	totalBits := bits.Len64(width - 1) // 2^totalBits >= width
	shardBits := bits.TrailingZeros(uint(shards))
	if totalBits <= shardBits {
		return 0 // more shards than keys; the tail shards stay empty
	}
	return uint(totalBits - shardBits)
}

// shardOf maps a key to its owning slot index. It is a pure, monotone
// function of the key: k1 <= k2 implies shardOf(k1) <= shardOf(k2),
// which is what keeps Snapshot a plain concatenation.
func (s *Sharded) shardOf(k int64) int {
	if k < s.lo {
		return 0
	}
	idx := (uint64(k) - uint64(s.lo)) >> s.shift
	if idx >= uint64(len(s.slots)) {
		idx = uint64(len(s.slots) - 1)
	}
	return int(idx)
}

// route is the façade's own failpoint site: a delay/yield/pause between
// computing v's owning shard and entering it widens the window in which
// a concurrent operation on a seam key can overtake, the interleaving
// the seam-fault conformance tests hammer.
func (s *Sharded) route(v int64) int {
	if fp := s.fps; failpoint.On(fp) {
		fp.Do(failpoint.SiteShardRoute, v)
	}
	return s.shardOf(v)
}

// Insert adds v and reports whether v was absent. It is executed
// entirely by v's owning shard.
func (s *Sharded) Insert(v int64) bool { return s.slots[s.route(v)].set.Insert(v) }

// Remove deletes v and reports whether v was present.
func (s *Sharded) Remove(v int64) bool { return s.slots[s.route(v)].set.Remove(v) }

// Contains reports whether v is in the set.
func (s *Sharded) Contains(v int64) bool { return s.slots[s.route(v)].set.Contains(v) }

// Len sums the shard lengths. Like the underlying lists' Len it is a
// best-effort traversal under concurrent updates and exact at
// quiescence; O(n) total across shards.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.slots {
		n += s.slots[i].set.Len()
	}
	return n
}

// Snapshot returns the elements in ascending order by concatenating
// the per-shard snapshots: the partition is order-preserving, so every
// key of shard i precedes every key of shard i+1. Best-effort under
// concurrent updates, exact at quiescence.
func (s *Sharded) Snapshot() []int64 {
	var out []int64
	for i := range s.slots {
		out = append(out, s.slots[i].set.Snapshot()...)
	}
	return out
}

// Shards returns the number of shards (after power-of-two rounding).
func (s *Sharded) Shards() int { return len(s.slots) }

// Boundaries returns the inclusive lower key bound of each shard in
// ascending order; element 0 is conceptually -inf (shard 0 also owns
// every key below the focus range) and is reported as the focus lower
// edge. Bounds that would overflow int64 saturate at MaxInt64.
// Intended for tests and diagnostics.
func (s *Sharded) Boundaries() []int64 {
	out := make([]int64, len(s.slots))
	for i := range out {
		off := uint64(i) << s.shift
		b := int64(uint64(s.lo) + off)
		// Saturate on wraparound: either the shift itself overflowed
		// 64 bits, or lo+off crossed MaxInt64 (detected as b < lo,
		// impossible without overflow since off >= 0).
		if off>>s.shift != uint64(i) || b < s.lo {
			out[i] = 1<<63 - 1
			continue
		}
		out[i] = b
	}
	return out
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters to every shard that supports instrumentation, so per-shard
// events aggregate into one obs.Probes and surface in the existing
// listset/bench/v1 report unchanged. Call before sharing the set.
func (s *Sharded) SetProbes(p *obs.Probes) {
	s.probes = p
	for i := range s.slots {
		obs.Attach(s.slots[i].set, p)
	}
}

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer: the façade consults it at SiteShardRoute and forwards it to
// every shard that is itself Injectable, so one armed Set drives both
// the seam and the per-shard algorithm sites. Call before sharing.
func (s *Sharded) SetFailpoints(fp *failpoint.Set) {
	s.fps = fp
	for i := range s.slots {
		failpoint.Attach(s.slots[i].set, fp)
	}
}

// SetRetryBudget forwards the retry budget to every shard that
// supports one. Call before sharing the set.
func (s *Sharded) SetRetryBudget(k int) {
	for i := range s.slots {
		obs.AttachRetryBudget(s.slots[i].set, k)
	}
}

// RetryStats sums the per-shard restart/escalation tallies (zero for
// shards without a retry ladder).
func (s *Sharded) RetryStats() obs.RetryStats {
	var sum obs.RetryStats
	for i := range s.slots {
		if rb, ok := s.slots[i].set.(obs.RetryBudgeted); ok {
			sum = sum.Add(rb.RetryStats())
		}
	}
	return sum
}

var (
	_ obs.Instrumented     = (*Sharded)(nil)
	_ obs.RetryBudgeted    = (*Sharded)(nil)
	_ failpoint.Injectable = (*Sharded)(nil)
)
