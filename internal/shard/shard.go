// Package shard is the order-preserving range partitioner that scales
// the repository's list-based sets past the paper's single-list regime:
// S independent lists ("shards"), each covering one contiguous slice of
// the key space, behind a façade that still satisfies the full Set
// contract.
//
// The paper proves VBL extracts every schedule a single list can
// accept; what it cannot change is that a traversal still walks O(n)
// nodes and every operation's first hop loads the one head node's
// cache line. Partitioning the key range into S contiguous sub-ranges
// attacks both costs at once: expected traversal length drops to
// O(n/S), and contended try-lock acquisitions spread across S
// independent head regions (each shard's sentinels are cache-line
// padded by the underlying lists, and the shard header array here is
// padded so adjacent slots never share a line).
//
// Why the composition stays linearizable (DESIGN.md §8 for the long
// form): the partition function is a pure function of the key, so
// every operation on key k — Insert(k), Remove(k), Contains(k) — is
// executed verbatim by exactly one shard, and each shard is itself a
// linearizable set. Operations on different shards touch disjoint
// state and disjoint keys, so ordering them by their per-shard
// linearization points yields a legal sequential history of the whole
// set: linearizability composes by key locality.
//
// The partitioner is order-preserving: the map key→shard is monotone,
// so shard i's keys all precede shard i+1's and Snapshot is a plain
// concatenation of per-shard snapshots, still in ascending order.
//
// # Generations and online rebalancing
//
// The partition lives in an immutable generation: a boundary table
// plus the slots it routes into. A static set keeps one generation for
// its whole life and routing is a comparison, a subtraction, one shift
// and one clamp — no division, no hashing. EnableRebalance arms the
// façade for online repartitioning (DESIGN.md §14): Rebalance builds a
// fresh generation from an explicit boundary table (weighted-quantile
// splits come from internal/adapt) and migrates keys chunk by chunk
// behind a watermark, routing every operation through a striped
// read-lock so each op executes against exactly one routing state.
// Unarmed sets never touch the stripes: the fast path is one atomic
// generation-pointer load on top of the original routing.
package shard

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"listset/internal/failpoint"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// Set is the operation surface a shard must provide. The root
// package's implementations satisfy it structurally; this package
// deliberately does not import them (they import it).
type Set interface {
	Insert(v int64) bool
	Remove(v int64) bool
	Contains(v int64) bool
	Len() int
	Snapshot() []int64
}

const (
	// DefaultShards is the shard count used by the convenience
	// constructors in the root package.
	DefaultShards = 16
	// DefaultFocus is the default focus range [0, DefaultFocus): the
	// slice of the key space split evenly across shards when the
	// caller does not supply one. Synchrobench-style workloads draw
	// keys from [0, range), so benchmark tools pass their range
	// explicitly instead.
	DefaultFocus int64 = 1 << 16
	// MaxShards bounds the shard count: past a few hundred shards the
	// per-shard lists are a handful of nodes and the façade's fixed
	// costs dominate.
	MaxShards = 1 << 10

	// cacheLine is the coherence granularity the slot layout targets:
	// 64 bytes covers x86-64 and the common arm64 parts.
	cacheLine = 64
)

// slot is one shard header: the shard's set, padded so adjacent
// headers never share a cache line. The header itself is read-only
// after construction, but without padding two neighbouring interface
// words would sit on one line and pull both shards' metadata into
// every miss on either.
type slot struct {
	set Set
	_   [(cacheLine - unsafe.Sizeof(Set(nil))%cacheLine) % cacheLine]byte
}

// generation is one immutable routing epoch: the boundary table and
// the slots it routes into. Every field is fixed at construction, so a
// generation can be read without synchronization once published
// through the façade's atomic pointer.
type generation struct {
	lo    int64 // lower edge of the focus range
	shift uint  // log2 of the per-shard key span (uniform routing)
	// bounds, when non-nil, replaces the uniform shift routing: element
	// i is the inclusive lower key bound of shard i, strictly
	// increasing from index 1. Element 0 is conceptually -inf (shard 0
	// also owns every key below the focus range) and stores the focus
	// lower edge for reporting. Routing is a binary search, still a
	// monotone function of the key.
	bounds []int64
	slots  []slot
}

// shardOf maps a key to its owning slot index. It is a pure, monotone
// function of the key: k1 <= k2 implies shardOf(k1) <= shardOf(k2),
// which is what keeps Snapshot a plain concatenation.
func (g *generation) shardOf(k int64) int {
	if g.bounds != nil {
		// Greatest i with bounds[i] <= k; keys below bounds[1] belong
		// to shard 0 regardless of the stored bounds[0].
		i, j := 1, len(g.bounds)
		for i < j {
			h := int(uint(i+j) >> 1)
			if g.bounds[h] <= k {
				i = h + 1
			} else {
				j = h
			}
		}
		return i - 1
	}
	if k < g.lo {
		return 0
	}
	idx := (uint64(k) - uint64(g.lo)) >> g.shift
	if idx >= uint64(len(g.slots)) {
		idx = uint64(len(g.slots) - 1)
	}
	return int(idx)
}

// boundary returns the inclusive lower key bound of shard i, saturated
// at MaxInt64 on overflow.
func (g *generation) boundary(i int) int64 {
	if g.bounds != nil {
		return g.bounds[i]
	}
	off := uint64(i) << g.shift
	b := int64(uint64(g.lo) + off)
	if off>>g.shift != uint64(i) || b < g.lo {
		return 1<<63 - 1
	}
	return b
}

// boundaries returns the full boundary table (see Sharded.Boundaries).
func (g *generation) boundaries() []int64 {
	out := make([]int64, len(g.slots))
	for i := range out {
		out[i] = g.boundary(i)
	}
	return out
}

// length sums the shard lengths of this generation.
func (g *generation) length() int {
	n := 0
	for i := range g.slots {
		n += g.slots[i].set.Len()
	}
	return n
}

// snapshot concatenates the per-shard snapshots (ascending: the
// partition is order-preserving).
func (g *generation) snapshot() []int64 {
	var out []int64
	for i := range g.slots {
		out = append(out, g.slots[i].set.Snapshot()...)
	}
	return out
}

// rangeScan returns this generation's keys in [lo, hi), ascending.
func (g *generation) rangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	var out []int64
	for i := g.shardOf(lo); i <= g.shardOf(hi-1); i++ {
		set := g.slots[i].set
		if r, ok := set.(Ranger); ok {
			out = append(out, r.RangeScan(lo, hi)...)
			continue
		}
		for _, v := range set.Snapshot() {
			if v >= lo && v < hi {
				out = append(out, v)
			}
		}
	}
	return out
}

// ascend walks this generation's keys >= from in ascending order until
// yield returns false; reports whether the walk was stopped by yield.
func (g *generation) ascend(from int64, yield func(int64) bool) (stopped bool) {
	for i := g.shardOf(from); i < len(g.slots) && !stopped; i++ {
		set := g.slots[i].set
		if r, ok := set.(Ranger); ok {
			//lint:ignore hotalloc the stop-propagating wrapper must capture yield and stopped to end the walk across shard boundaries; one closure per shard per scan, amortized over the whole walk
			r.Ascend(from, func(v int64) bool {
				if !yield(v) {
					stopped = true
					return false
				}
				return true
			})
			continue
		}
		for _, v := range set.Snapshot() {
			if v >= from && !yield(v) {
				stopped = true
				break
			}
		}
	}
	return stopped
}

// migration is the transient state of one online rebalance: keys below
// the watermark have moved to the new generation, keys at or above it
// are still owned by the old one. The watermark only advances while
// the migrator holds every routing stripe exclusively, so an operation
// (which holds its key's stripe shared) always sees a stable routing
// decision for the duration of its critical section.
type migration struct {
	from, to  *generation
	watermark atomic.Int64
}

// migStripes is the number of routing stripes an armed façade routes
// operations through; 16 matches the obs counter striping so the
// per-key hash spreads identically.
const migStripes = 16

// paddedRWMutex keeps adjacent stripes off each other's cache lines;
// the read-lock fast path is an atomic RMW on the mutex word, which
// would otherwise bounce between stripes.
type paddedRWMutex struct {
	sync.RWMutex
	_ [(cacheLine - unsafe.Sizeof(sync.RWMutex{})%cacheLine) % cacheLine]byte
}

// stripedLocks is the routing-stripe table: single-key operations take
// their key's stripe shared; whole-set operations (Len, Snapshot,
// scans, batches) take every stripe shared; the migrator takes every
// stripe exclusive. All multi-stripe acquisitions walk the table in
// index order, so the lock order is global and acyclic.
type stripedLocks struct {
	ls [migStripes]paddedRWMutex
}

// forKey maps a key to its stripe (Fibonacci hashing, mirroring
// obs.shardOf so near-sequential keys spread across stripes).
func (sl *stripedLocks) forKey(k int64) *sync.RWMutex {
	return &sl.ls[(uint64(k)*0x9E3779B97F4A7C15)>>(64-4)].RWMutex
}

func (sl *stripedLocks) lockAll() {
	for i := range sl.ls {
		sl.ls[i].Lock()
	}
}

func (sl *stripedLocks) unlockAll() {
	for i := range sl.ls {
		sl.ls[i].Unlock()
	}
}

func (sl *stripedLocks) rlockAll() {
	for i := range sl.ls {
		sl.ls[i].RLock()
	}
}

func (sl *stripedLocks) runlockAll() {
	for i := range sl.ls {
		sl.ls[i].RUnlock()
	}
}

// loadSlot is one shard's padded operation counter (EnableLoadStats).
type loadSlot struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// Sharded is the range-partitioned façade: S independent Sets, each
// owning one contiguous slice of the key space. The zero value is not
// usable; call New or NewRange.
//
// Sharded is safe for concurrent use iff the underlying sets are; an
// unarmed façade adds no locking of its own, and an armed one
// (EnableRebalance) adds one striped read-lock per operation.
type Sharded struct {
	// gen is the current routing generation; replaced wholesale by a
	// completed rebalance, never mutated in place.
	gen atomic.Pointer[generation]
	// mig is non-nil exactly while a rebalance is migrating keys.
	mig atomic.Pointer[migration]

	lo, hi int64      // focus range [lo, hi) (immutable)
	newSet func() Set // shard constructor, kept for rebuilds

	// rebalanceable arms the striped routing locks; set only by
	// EnableRebalance, before the set is shared. Unarmed façades never
	// touch locks and pay no per-op synchronization beyond the
	// generation pointer load.
	rebalanceable bool
	locks         *stripedLocks
	// rebalanceMu serializes migrators: one rebalance at a time.
	rebalanceMu sync.Mutex

	// loads, when non-nil (EnableLoadStats, before sharing), counts
	// routed operations per shard — the weights the adaptive
	// controller's quantile split uses. Best-effort during a
	// migration, exact between them.
	loads []loadSlot

	// parallel, when true, fans batch sub-batches out to one goroutine
	// per non-empty shard (SetBatchParallel). Atomic: the adaptive
	// controller toggles it mid-run to shed overload.
	parallel atomic.Bool

	// fps, when non-nil, arms the chaos failpoints: the façade's own
	// SiteShardRoute site plus whatever sites the shards expose.
	fps *failpoint.Set

	// probes, when non-nil, receives the façade's own events (batch
	// splits); the shards' events are attached separately by SetProbes.
	probes *obs.Probes

	// budget is the last attached retry budget, kept so a rebalance can
	// hand it to the fresh generation's shards. Atomic: the controller
	// and the harness watchdog may race a rebalance.
	budget atomic.Int32

	// backoffs, when non-nil, holds the per-shard backoff policies last
	// attached by SetShardBackoffs, re-attached to fresh generations.
	backoffs atomic.Pointer[[]*trylock.Backoff]
}

// New returns a Sharded over the given number of shards (rounded up to
// a power of two, clamped to [1, MaxShards]) focused on the default
// key range [0, DefaultFocus). newSet constructs each shard's backing
// set.
func New(shards int, newSet func() Set) *Sharded {
	return NewRange(shards, 0, DefaultFocus, newSet)
}

// NewRange returns a Sharded whose focus range [lo, hi) is split
// evenly across the shards: each shard owns a power-of-two span of at
// least (hi-lo)/S keys. Keys below lo route to shard 0 and keys above
// the covered prefix to the last shard, so every int64 key is owned by
// exactly one shard. Panics if hi <= lo or newSet is nil, mirroring
// the "misuse panics at construction" convention of the root package.
func NewRange(shards int, lo, hi int64, newSet func() Set) *Sharded {
	if newSet == nil {
		panic("shard: NewRange called with nil constructor")
	}
	if hi <= lo {
		panic(fmt.Sprintf("shard: empty focus range [%d, %d)", lo, hi))
	}
	n := ceilPow2(shards)
	g := &generation{
		lo:    lo,
		shift: spanShift(lo, hi, n),
		slots: make([]slot, n),
	}
	for i := range g.slots {
		g.slots[i].set = newSet()
	}
	s := &Sharded{lo: lo, hi: hi, newSet: newSet}
	s.gen.Store(g)
	return s
}

// FocusRange returns the focus range [lo, hi) the set was constructed
// over. Rebalancing moves the interior boundaries, never the edges.
func (s *Sharded) FocusRange() (lo, hi int64) { return s.lo, s.hi }

// ceilPow2 rounds n up to a power of two within [1, MaxShards].
func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// spanShift returns log2 of the per-shard key span: the smallest
// power-of-two span such that shards×span covers the width of
// [lo, hi). Width arithmetic is done in uint64 so the full-domain
// range works (hi-lo may exceed MaxInt64).
func spanShift(lo, hi int64, shards int) uint {
	width := uint64(hi) - uint64(lo)
	totalBits := bits.Len64(width - 1) // 2^totalBits >= width
	shardBits := bits.TrailingZeros(uint(shards))
	if totalBits <= shardBits {
		return 0 // more shards than keys; the tail shards stay empty
	}
	return uint(totalBits - shardBits)
}

// shardOf maps a key to its owning slot index in the current
// generation (tests and diagnostics; operations route through their
// generation explicitly).
func (s *Sharded) shardOf(k int64) int {
	return s.gen.Load().shardOf(k)
}

// route is the façade's own failpoint site plus the per-shard load
// accounting: a delay/yield/pause between computing v's owning shard
// and entering it widens the window in which a concurrent operation on
// a seam key can overtake, the interleaving the seam-fault conformance
// tests hammer.
func (s *Sharded) route(g *generation, v int64) int {
	if fp := s.fps; failpoint.On(fp) {
		fp.Do(failpoint.SiteShardRoute, v)
	}
	i := g.shardOf(v)
	if ls := s.loads; ls != nil {
		ls[i].n.Add(1)
	}
	return i
}

// owner returns the set currently owning v. When a migration is in
// flight, keys below the watermark have moved to the new generation.
// An armed façade's caller must hold v's routing stripe (shared) so
// the watermark cannot advance mid-operation.
func (s *Sharded) owner(v int64) Set {
	if m := s.mig.Load(); m != nil {
		g := m.from
		if v < m.watermark.Load() {
			g = m.to
		}
		return g.slots[s.route(g, v)].set
	}
	g := s.gen.Load()
	return g.slots[s.route(g, v)].set
}

// Insert adds v and reports whether v was absent. It is executed
// entirely by v's owning shard, under a stable routing decision.
func (s *Sharded) Insert(v int64) bool {
	if !s.rebalanceable {
		g := s.gen.Load()
		return g.slots[s.route(g, v)].set.Insert(v)
	}
	mu := s.locks.forKey(v)
	mu.RLock()
	ok := s.owner(v).Insert(v)
	mu.RUnlock()
	return ok
}

// Remove deletes v and reports whether v was present.
func (s *Sharded) Remove(v int64) bool {
	if !s.rebalanceable {
		g := s.gen.Load()
		return g.slots[s.route(g, v)].set.Remove(v)
	}
	mu := s.locks.forKey(v)
	mu.RLock()
	ok := s.owner(v).Remove(v)
	mu.RUnlock()
	return ok
}

// Contains reports whether v is in the set.
func (s *Sharded) Contains(v int64) bool {
	if !s.rebalanceable {
		g := s.gen.Load()
		return g.slots[s.route(g, v)].set.Contains(v)
	}
	mu := s.locks.forKey(v)
	mu.RLock()
	ok := s.owner(v).Contains(v)
	mu.RUnlock()
	return ok
}

// Len sums the shard lengths. Like the underlying lists' Len it is a
// best-effort traversal under concurrent updates and exact at
// quiescence; O(n) total across shards.
func (s *Sharded) Len() int {
	if !s.rebalanceable {
		return s.gen.Load().length()
	}
	s.locks.rlockAll()
	defer s.locks.runlockAll()
	if m := s.mig.Load(); m != nil {
		// Disjoint by the watermark invariant: to holds the migrated
		// prefix, from the rest.
		return m.to.length() + m.from.length()
	}
	return s.gen.Load().length()
}

// Snapshot returns the elements in ascending order by concatenating
// the per-shard snapshots: the partition is order-preserving, so every
// key of shard i precedes every key of shard i+1. Best-effort under
// concurrent updates, exact at quiescence.
func (s *Sharded) Snapshot() []int64 {
	if !s.rebalanceable {
		return s.gen.Load().snapshot()
	}
	s.locks.rlockAll()
	defer s.locks.runlockAll()
	if m := s.mig.Load(); m != nil {
		// Every migrated key is below the watermark and every
		// unmigrated key at or above it, so the concatenation is sorted.
		return append(m.to.snapshot(), m.from.snapshot()...)
	}
	return s.gen.Load().snapshot()
}

// Shards returns the number of shards (after power-of-two rounding).
func (s *Sharded) Shards() int { return len(s.gen.Load().slots) }

// Boundaries returns the inclusive lower key bound of each shard of
// the current generation in ascending order; element 0 is conceptually
// -inf (shard 0 also owns every key below the focus range) and is
// reported as the focus lower edge. Bounds that would overflow int64
// saturate at MaxInt64.
func (s *Sharded) Boundaries() []int64 {
	return s.gen.Load().boundaries()
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters to every shard that supports instrumentation, so per-shard
// events aggregate into one obs.Probes and surface in the existing
// listset/bench/v1 report unchanged. Call before sharing the set.
func (s *Sharded) SetProbes(p *obs.Probes) {
	s.probes = p
	g := s.gen.Load()
	for i := range g.slots {
		obs.Attach(g.slots[i].set, p)
	}
}

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer: the façade consults it at SiteShardRoute and forwards it to
// every shard that is itself Injectable, so one armed Set drives both
// the seam and the per-shard algorithm sites. Call before sharing.
func (s *Sharded) SetFailpoints(fp *failpoint.Set) {
	s.fps = fp
	g := s.gen.Load()
	for i := range g.slots {
		failpoint.Attach(g.slots[i].set, fp)
	}
}

// SetRetryBudget forwards the retry budget to every shard that
// supports one. Safe to call while operations are in flight (the
// shards store their budgets atomically); a migration in progress
// hands the latest budget to the generation it is building.
func (s *Sharded) SetRetryBudget(k int) {
	s.budget.Store(int32(k))
	g := s.gen.Load()
	for i := range g.slots {
		obs.AttachRetryBudget(g.slots[i].set, k)
	}
	if m := s.mig.Load(); m != nil {
		for i := range m.to.slots {
			obs.AttachRetryBudget(m.to.slots[i].set, k)
		}
	}
}

// RetryStats sums the per-shard restart/escalation tallies (zero for
// shards without a retry ladder).
func (s *Sharded) RetryStats() obs.RetryStats {
	var sum obs.RetryStats
	g := s.gen.Load()
	for i := range g.slots {
		if rb, ok := g.slots[i].set.(obs.RetryBudgeted); ok {
			sum = sum.Add(rb.RetryStats())
		}
	}
	return sum
}

// SetShardBackoffs attaches one try-lock backoff policy per shard (the
// adaptive controller's per-shard actuator) and keeps the table so
// rebalances re-attach it to fresh generations: policy i always
// governs slot i of the current partition. len(bs) must equal
// Shards(); call before sharing the set (retuning the attached
// policies afterwards is safe — their fields are atomic).
func (s *Sharded) SetShardBackoffs(bs []*trylock.Backoff) {
	g := s.gen.Load()
	if len(bs) != len(g.slots) {
		panic(fmt.Sprintf("shard: SetShardBackoffs with %d policies for %d shards", len(bs), len(g.slots)))
	}
	s.backoffs.Store(&bs)
	for i := range g.slots {
		trylock.AttachBackoff(g.slots[i].set, bs[i])
	}
}

// EnableLoadStats turns on per-shard operation counting, the weight
// source for adaptive repartitioning. Call before sharing the set.
func (s *Sharded) EnableLoadStats() {
	if s.loads == nil {
		s.loads = make([]loadSlot, len(s.gen.Load().slots))
	}
}

// LoadCounts returns the cumulative routed-operation count per shard
// of the current partition (nil unless EnableLoadStats was called).
// Counts are monotone; diff two reads for an interval's weights.
func (s *Sharded) LoadCounts() []uint64 {
	if s.loads == nil {
		return nil
	}
	out := make([]uint64, len(s.loads))
	for i := range s.loads {
		out[i] = s.loads[i].n.Load()
	}
	return out
}

// EnableRebalance arms the façade for online repartitioning: every
// operation routes through a striped read-lock from now on, which is
// what lets Rebalance freeze routing per chunk. Call before sharing
// the set; an unarmed façade rejects Rebalance and pays none of the
// striping cost.
func (s *Sharded) EnableRebalance() {
	if s.locks == nil {
		s.locks = &stripedLocks{}
		s.rebalanceable = true
	}
}

// RebalanceEnabled reports whether EnableRebalance armed the façade.
func (s *Sharded) RebalanceEnabled() bool { return s.rebalanceable }

var (
	_ obs.Instrumented     = (*Sharded)(nil)
	_ obs.RetryBudgeted    = (*Sharded)(nil)
	_ failpoint.Injectable = (*Sharded)(nil)
)
