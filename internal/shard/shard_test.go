package shard

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"unsafe"

	"listset/internal/obs"
)

// sliceSet is a minimal sorted-slice Set used to test the façade
// without importing the root package (which imports this one). It is
// single-threaded; the façade's concurrent behaviour is covered by the
// root package's conformance, stress and linearizability suites.
type sliceSet struct {
	keys []int64
}

func newSliceSet() Set { return &sliceSet{} }

func (s *sliceSet) find(v int64) int {
	return sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= v })
}

func (s *sliceSet) Insert(v int64) bool {
	i := s.find(v)
	if i < len(s.keys) && s.keys[i] == v {
		return false
	}
	s.keys = append(s.keys, 0)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = v
	return true
}

func (s *sliceSet) Remove(v int64) bool {
	i := s.find(v)
	if i == len(s.keys) || s.keys[i] != v {
		return false
	}
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
	return true
}

func (s *sliceSet) Contains(v int64) bool {
	i := s.find(v)
	return i < len(s.keys) && s.keys[i] == v
}

func (s *sliceSet) Len() int { return len(s.keys) }

func (s *sliceSet) Snapshot() []int64 {
	out := make([]int64, len(s.keys))
	copy(out, s.keys)
	return out
}

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{16, 16}, {17, 32}, {MaxShards, MaxShards}, {MaxShards + 1, MaxShards},
	}
	for _, c := range cases {
		if got := New(c.in, newSliceSet).Shards(); got != c.want {
			t.Errorf("New(%d).Shards() = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRoutingTotalAndMonotone is the shard-routing invariant property
// test: every int64 key maps to exactly one in-range shard, and the
// mapping is monotone (order-preserving).
func TestRoutingTotalAndMonotone(t *testing.T) {
	partitions := []*Sharded{
		New(16, newSliceSet),
		NewRange(4, 0, 32, newSliceSet),
		NewRange(8, -1000, 1000, newSliceSet),
		NewRange(64, 0, 20000, newSliceSet),
		NewRange(2, math.MinInt64, math.MaxInt64, newSliceSet),
		NewRange(1, 0, 1, newSliceSet),
	}
	for _, s := range partitions {
		s := s
		// Totality + range: every key owned by exactly one shard index
		// in [0, S). (shardOf is a pure function, so "exactly one"
		// reduces to determinism plus range membership.)
		total := func(k int64) bool {
			i := s.shardOf(k)
			return i >= 0 && i < s.Shards() && i == s.shardOf(k)
		}
		if err := quick.Check(total, nil); err != nil {
			t.Errorf("totality (S=%d lo=%d): %v", s.Shards(), s.lo, err)
		}
		// Monotonicity: k1 <= k2 implies shard(k1) <= shard(k2).
		mono := func(k1, k2 int64) bool {
			if k1 > k2 {
				k1, k2 = k2, k1
			}
			return s.shardOf(k1) <= s.shardOf(k2)
		}
		if err := quick.Check(mono, nil); err != nil {
			t.Errorf("monotonicity (S=%d lo=%d): %v", s.Shards(), s.lo, err)
		}
	}
}

// TestBoundariesMonotone checks the published shard boundaries are
// non-decreasing and consistent with routing: a boundary key routes to
// its shard, and its predecessor key routes strictly below.
func TestBoundariesMonotone(t *testing.T) {
	for _, s := range []*Sharded{
		New(16, newSliceSet),
		NewRange(4, 0, 32, newSliceSet),
		NewRange(8, -512, 512, newSliceSet),
		NewRange(16, math.MinInt64+1, math.MaxInt64-1, newSliceSet),
		NewRange(16, math.MaxInt64-20, math.MaxInt64, newSliceSet),
	} {
		bs := s.Boundaries()
		if len(bs) != s.Shards() {
			t.Fatalf("Boundaries() has %d entries, want %d", len(bs), s.Shards())
		}
		for i := 1; i < len(bs); i++ {
			if bs[i-1] > bs[i] {
				t.Fatalf("boundaries not monotone: %v", bs)
			}
			if bs[i] == math.MaxInt64 {
				continue // saturated tail: shard unused by the focus range
			}
			if got := s.shardOf(bs[i]); got != i {
				t.Errorf("shardOf(boundary %d = %d) = %d", i, bs[i], got)
			}
			if got := s.shardOf(bs[i] - 1); got != i-1 {
				t.Errorf("shardOf(boundary %d - 1 = %d) = %d, want %d", i, bs[i]-1, got, i-1)
			}
		}
	}
}

// TestSnapshotIsSortedUnionOfShards: the façade's Snapshot equals the
// sorted union of the per-shard snapshots (property test over random
// operation sequences).
func TestSnapshotIsSortedUnionOfShards(t *testing.T) {
	prop := func(keys []int64, removeEvery uint8) bool {
		s := NewRange(8, -64, 192, newSliceSet)
		for _, k := range keys {
			s.Insert(k)
		}
		step := int(removeEvery%5) + 2
		for i, k := range keys {
			if i%step == 0 {
				s.Remove(k)
			}
		}
		var union []int64
		g := s.gen.Load()
		for i := range g.slots {
			union = append(union, g.slots[i].set.Snapshot()...)
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		snap := s.Snapshot()
		if len(snap) != len(union) {
			return false
		}
		for i := range snap {
			if snap[i] != union[i] {
				return false
			}
		}
		// The concatenated snapshot must itself be strictly ascending.
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				return false
			}
		}
		return len(snap) == s.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOracleAcrossBoundaries drives a tightly focused façade against a
// map oracle with keys clustered on the shard boundaries.
func TestOracleAcrossBoundaries(t *testing.T) {
	s := NewRange(4, 0, 32, newSliceSet) // spans of 8: boundaries 0, 8, 16, 24
	oracle := map[int64]bool{}
	rng := rand.New(rand.NewSource(7))
	candidates := []int64{-9, -1, 0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33, 100}
	for i := 0; i < 20000; i++ {
		k := candidates[rng.Intn(len(candidates))]
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(k), !oracle[k]; got != want {
				t.Fatalf("step %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			oracle[k] = true
		case 1:
			if got, want := s.Remove(k), oracle[k]; got != want {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", i, k, got, want)
			}
			delete(oracle, k)
		default:
			if got := s.Contains(k); got != oracle[k] {
				t.Fatalf("step %d: Contains(%d) = %v, want %v", i, k, got, oracle[k])
			}
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(oracle))
	}
}

// TestSlotLayout pins the shard-header padding: a slot occupies a
// whole number of cache lines so adjacent headers cannot false-share.
func TestSlotLayout(t *testing.T) {
	if sz := unsafe.Sizeof(slot{}); sz%cacheLine != 0 {
		t.Fatalf("slot size %d is not a multiple of the %d-byte cache line", sz, cacheLine)
	}
	s := New(4, newSliceSet)
	g := s.gen.Load()
	for i := 1; i < len(g.slots); i++ {
		a := uintptr(unsafe.Pointer(&g.slots[i-1]))
		b := uintptr(unsafe.Pointer(&g.slots[i]))
		if b-a < cacheLine {
			t.Fatalf("slots %d and %d are %d bytes apart, want >= %d", i-1, i, b-a, cacheLine)
		}
	}
}

// probeSet records SetProbes calls so the test can verify the façade
// forwards instrumentation to every shard.
type probeSet struct {
	sliceSet
	attached *obs.Probes
}

func (p *probeSet) SetProbes(pr *obs.Probes) { p.attached = pr }

func TestSetProbesForwardsToEveryShard(t *testing.T) {
	var made []*probeSet
	s := New(8, func() Set {
		p := &probeSet{}
		made = append(made, p)
		return p
	})
	pr := obs.NewProbes()
	if !obs.Attach(s, pr) {
		t.Fatal("obs.Attach did not recognize the façade as Instrumented")
	}
	if len(made) != s.Shards() {
		t.Fatalf("constructor ran %d times, want %d", len(made), s.Shards())
	}
	for i, p := range made {
		if p.attached != pr {
			t.Fatalf("shard %d did not receive the probes", i)
		}
	}
	s.SetProbes(nil)
	for i, p := range made {
		if p.attached != nil {
			t.Fatalf("shard %d still attached after detach", i)
		}
	}
}

func TestNewRangePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty range": func() { NewRange(4, 10, 10, newSliceSet) },
		"nil ctor":    func() { NewRange(4, 0, 10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
