package shard

import (
	"sort"
	"sync"
	"sync/atomic"

	"listset/internal/batch"
	"listset/internal/obs"
)

// Batched and ranged operations for the sharded façade: sort and
// deduplicate the batch ONCE, split it into per-shard sub-batches by
// binary search against the shard boundaries (the partition is
// monotone, so each sub-batch is one contiguous sub-slice — no copy),
// apply each sub-batch to its shard, and sum the results. Because the
// partition is a pure function of the key, each key is still served by
// exactly one shard and linearizes at its per-shard point, so the
// composition argument of the package doc carries over unchanged.
//
// Shards whose backing set implements Batcher get the sub-batch in one
// native call; others fall back to a per-key loop over the same
// (already sorted, deduplicated) sub-slice. With SetBatchParallel the
// non-empty sub-batches run concurrently, one goroutine per shard —
// safe because sub-batches touch disjoint shards and disjoint keys.
//
// On a rebalance-armed façade a batch holds every routing stripe
// shared for its duration, so it executes against one routing state;
// mid-migration the batch splits at the watermark and the two halves
// run against the generation that owns them.

// Batcher is the native batch surface a shard's backing set may
// provide. Keys passed down are sorted and deduplicated already;
// re-preparing them in the shard is cheap (it is a no-op sort) but
// wasteful, which is why the façade calls the native method directly.
type Batcher interface {
	InsertAll(keys []int64) int
	RemoveAll(keys []int64) int
	ContainsAll(keys []int64) int
}

// Ranger is the native range surface a shard's backing set may provide.
type Ranger interface {
	RangeScan(lo, hi int64) []int64
	Ascend(from int64, yield func(int64) bool)
}

// Loader is the native bulk-load surface a shard's backing set may
// provide.
type Loader interface {
	Load(keys []int64) int
}

// SetBatchParallel enables (or disables) fanning a batch's per-shard
// sub-batches out to one goroutine per non-empty shard. Off by
// default: parallel pays off for large batches over many shards, and
// costs a goroutine spawn per shard otherwise. Safe to toggle while
// operations are in flight — the adaptive controller forces batches
// serial to shed overload.
func (s *Sharded) SetBatchParallel(on bool) { s.parallel.Store(on) }

// BatchParallel reports the current batch fan-out setting.
func (s *Sharded) BatchParallel() bool { return s.parallel.Load() }

// batchOp is one per-shard batch primitive: apply ks to the slot's set
// and return the effective-operation count.
type batchOp func(set Set, ks []int64) int

func batchInsert(set Set, ks []int64) int {
	if b, ok := set.(Batcher); ok {
		return b.InsertAll(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Insert(v) {
			n++
		}
	}
	return n
}

func batchRemove(set Set, ks []int64) int {
	if b, ok := set.(Batcher); ok {
		return b.RemoveAll(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Remove(v) {
			n++
		}
	}
	return n
}

func batchContains(set Set, ks []int64) int {
	if b, ok := set.(Batcher); ok {
		return b.ContainsAll(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Contains(v) {
			n++
		}
	}
	return n
}

func batchLoad(set Set, ks []int64) int {
	if l, ok := set.(Loader); ok {
		return l.Load(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Insert(v) {
			n++
		}
	}
	return n
}

// apply routes the sorted, deduplicated keys ks to the generation (or,
// mid-migration, generations) that own them and returns the summed
// count.
func (s *Sharded) apply(ks []int64, op batchOp) int {
	if len(ks) == 0 {
		return 0
	}
	if !s.rebalanceable {
		return s.applyGen(s.gen.Load(), ks, op)
	}
	s.locks.rlockAll()
	defer s.locks.runlockAll()
	if m := s.mig.Load(); m != nil {
		// Split at the watermark: the migrated prefix belongs to the
		// new generation, the rest to the old. ks is sorted, so both
		// halves stay contiguous sub-slices.
		w := m.watermark.Load()
		cut := sort.Search(len(ks), func(i int) bool { return ks[i] >= w })
		return s.applyGen(m.to, ks[:cut], op) + s.applyGen(m.from, ks[cut:], op)
	}
	return s.applyGen(s.gen.Load(), ks, op)
}

// applyGen splits ks into per-shard sub-batches of one generation and
// applies op to each non-empty one, sequentially or in parallel.
func (s *Sharded) applyGen(g *generation, ks []int64, op batchOp) int {
	if len(ks) == 0 {
		return 0
	}
	// Locate each shard's sub-slice by binary search against its key
	// span [start, end): start bounds come from the monotone partition,
	// so the sub-slices tile ks exactly.
	type sub struct {
		slot int
		ks   []int64
	}
	var subs []sub
	lo, hi := g.shardOf(ks[0]), g.shardOf(ks[len(ks)-1])
	rest := ks
	for i := lo; i <= hi && len(rest) > 0; i++ {
		var part []int64
		if i == hi {
			part, rest = rest, nil
		} else {
			end := g.boundary(i + 1)
			part = batch.Span(rest, rest[0], end)
			rest = rest[len(part):]
		}
		if len(part) == 0 {
			continue
		}
		subs = append(subs, sub{slot: i, ks: part})
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvBatchSplit, part[0])
		}
	}
	if s.parallel.Load() && len(subs) > 1 {
		var total atomic.Int64
		var wg sync.WaitGroup
		for _, sb := range subs {
			wg.Add(1)
			go func(sb sub) {
				defer wg.Done()
				total.Add(int64(op(g.slots[sb.slot].set, sb.ks)))
			}(sb)
		}
		wg.Wait()
		return int(total.Load())
	}
	total := 0
	for _, sb := range subs {
		total += op(g.slots[sb.slot].set, sb.ks)
	}
	return total
}

// InsertAll adds every key of keys and returns how many were absent.
// The batch is sorted and deduplicated once, here; each key linearizes
// individually in its owning shard.
func (s *Sharded) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchInsert)
	b.Put()
	return n
}

// RemoveAll deletes every key of keys and returns how many were
// present.
func (s *Sharded) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchRemove)
	b.Put()
	return n
}

// ContainsAll reports how many of the keys are in the set.
func (s *Sharded) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchContains)
	b.Put()
	return n
}

// Load bulk-inserts keys (see the lists' Load: quiescent use only) and
// returns how many were absent.
func (s *Sharded) Load(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchLoad)
	b.Put()
	return n
}

// RangeScan returns the keys in [lo, hi) in ascending order: the
// partition is order-preserving, so the concatenation of per-shard
// scans (restricted to the shards that can intersect [lo, hi)) is
// already sorted. Shards without a native RangeScan contribute their
// filtered Snapshot.
func (s *Sharded) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	if !s.rebalanceable {
		return s.gen.Load().rangeScan(lo, hi)
	}
	s.locks.rlockAll()
	defer s.locks.runlockAll()
	if m := s.mig.Load(); m != nil {
		// Migrated keys all precede unmigrated ones, so the
		// concatenation stays sorted.
		return append(m.to.rangeScan(lo, hi), m.from.rangeScan(lo, hi)...)
	}
	return s.gen.Load().rangeScan(lo, hi)
}

// Ascend calls yield for every key >= from in ascending order until
// yield returns false or the set ends, walking the shards in partition
// order. Shards without a native Ascend iterate their Snapshot.
func (s *Sharded) Ascend(from int64, yield func(int64) bool) {
	if !s.rebalanceable {
		s.gen.Load().ascend(from, yield)
		return
	}
	s.locks.rlockAll()
	defer s.locks.runlockAll()
	if m := s.mig.Load(); m != nil {
		if !m.to.ascend(from, yield) {
			m.from.ascend(from, yield)
		}
		return
	}
	s.gen.Load().ascend(from, yield)
}

var (
	_ Batcher = (*Sharded)(nil)
	_ Ranger  = (*Sharded)(nil)
	_ Loader  = (*Sharded)(nil)
)
