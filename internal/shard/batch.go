package shard

import (
	"sync"
	"sync/atomic"

	"listset/internal/batch"
	"listset/internal/obs"
)

// Batched and ranged operations for the sharded façade: sort and
// deduplicate the batch ONCE, split it into per-shard sub-batches by
// binary search against the shard boundaries (the partition is
// monotone, so each sub-batch is one contiguous sub-slice — no copy),
// apply each sub-batch to its shard, and sum the results. Because the
// partition is a pure function of the key, each key is still served by
// exactly one shard and linearizes at its per-shard point, so the
// composition argument of the package doc carries over unchanged.
//
// Shards whose backing set implements Batcher get the sub-batch in one
// native call; others fall back to a per-key loop over the same
// (already sorted, deduplicated) sub-slice. With SetBatchParallel the
// non-empty sub-batches run concurrently, one goroutine per shard —
// safe because sub-batches touch disjoint shards and disjoint keys.

// Batcher is the native batch surface a shard's backing set may
// provide. Keys passed down are sorted and deduplicated already;
// re-preparing them in the shard is cheap (it is a no-op sort) but
// wasteful, which is why the façade calls the native method directly.
type Batcher interface {
	InsertAll(keys []int64) int
	RemoveAll(keys []int64) int
	ContainsAll(keys []int64) int
}

// Ranger is the native range surface a shard's backing set may provide.
type Ranger interface {
	RangeScan(lo, hi int64) []int64
	Ascend(from int64, yield func(int64) bool)
}

// Loader is the native bulk-load surface a shard's backing set may
// provide.
type Loader interface {
	Load(keys []int64) int
}

// SetBatchParallel enables (or disables) fanning a batch's per-shard
// sub-batches out to one goroutine per non-empty shard. Off by
// default: parallel pays off for large batches over many shards, and
// costs a goroutine spawn per shard otherwise. Call before sharing the
// set; the field is read without synchronization by every batch op.
func (s *Sharded) SetBatchParallel(on bool) { s.parallel = on }

// batchOp is one per-shard batch primitive: apply ks to the slot's set
// and return the effective-operation count.
type batchOp func(set Set, ks []int64) int

func batchInsert(set Set, ks []int64) int {
	if b, ok := set.(Batcher); ok {
		return b.InsertAll(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Insert(v) {
			n++
		}
	}
	return n
}

func batchRemove(set Set, ks []int64) int {
	if b, ok := set.(Batcher); ok {
		return b.RemoveAll(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Remove(v) {
			n++
		}
	}
	return n
}

func batchContains(set Set, ks []int64) int {
	if b, ok := set.(Batcher); ok {
		return b.ContainsAll(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Contains(v) {
			n++
		}
	}
	return n
}

func batchLoad(set Set, ks []int64) int {
	if l, ok := set.(Loader); ok {
		return l.Load(ks)
	}
	n := 0
	for _, v := range ks {
		if set.Insert(v) {
			n++
		}
	}
	return n
}

// apply splits the sorted, deduplicated keys ks into per-shard
// sub-batches and applies op to each non-empty one, sequentially or in
// parallel, returning the summed count.
func (s *Sharded) apply(ks []int64, op batchOp) int {
	if len(ks) == 0 {
		return 0
	}
	// Locate each shard's sub-slice by binary search against its key
	// span [start, end): start bounds come from the monotone partition,
	// so the sub-slices tile ks exactly.
	type sub struct {
		slot int
		ks   []int64
	}
	var subs []sub
	lo, hi := s.shardOf(ks[0]), s.shardOf(ks[len(ks)-1])
	rest := ks
	for i := lo; i <= hi && len(rest) > 0; i++ {
		var part []int64
		if i == hi {
			part, rest = rest, nil
		} else {
			end := s.boundary(i + 1)
			part = batch.Span(rest, rest[0], end)
			rest = rest[len(part):]
		}
		if len(part) == 0 {
			continue
		}
		subs = append(subs, sub{slot: i, ks: part})
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvBatchSplit, part[0])
		}
	}
	if s.parallel && len(subs) > 1 {
		var total atomic.Int64
		var wg sync.WaitGroup
		for _, sb := range subs {
			wg.Add(1)
			go func(sb sub) {
				defer wg.Done()
				total.Add(int64(op(s.slots[sb.slot].set, sb.ks)))
			}(sb)
		}
		wg.Wait()
		return int(total.Load())
	}
	total := 0
	for _, sb := range subs {
		total += op(s.slots[sb.slot].set, sb.ks)
	}
	return total
}

// boundary returns the inclusive lower key bound of shard i, saturated
// at MaxInt64 on overflow (mirrors Boundaries without the slice).
func (s *Sharded) boundary(i int) int64 {
	off := uint64(i) << s.shift
	b := int64(uint64(s.lo) + off)
	if off>>s.shift != uint64(i) || b < s.lo {
		return 1<<63 - 1
	}
	return b
}

// InsertAll adds every key of keys and returns how many were absent.
// The batch is sorted and deduplicated once, here; each key linearizes
// individually in its owning shard.
func (s *Sharded) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchInsert)
	b.Put()
	return n
}

// RemoveAll deletes every key of keys and returns how many were
// present.
func (s *Sharded) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchRemove)
	b.Put()
	return n
}

// ContainsAll reports how many of the keys are in the set.
func (s *Sharded) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchContains)
	b.Put()
	return n
}

// Load bulk-inserts keys (see the lists' Load: quiescent use only) and
// returns how many were absent.
func (s *Sharded) Load(keys []int64) int {
	b := batch.Prep(keys)
	n := s.apply(b.K, batchLoad)
	b.Put()
	return n
}

// RangeScan returns the keys in [lo, hi) in ascending order: the
// partition is order-preserving, so the concatenation of per-shard
// scans (restricted to the shards that can intersect [lo, hi)) is
// already sorted. Shards without a native RangeScan contribute their
// filtered Snapshot.
func (s *Sharded) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	var out []int64
	for i := s.shardOf(lo); i <= s.shardOf(hi-1); i++ {
		set := s.slots[i].set
		if r, ok := set.(Ranger); ok {
			out = append(out, r.RangeScan(lo, hi)...)
			continue
		}
		for _, v := range set.Snapshot() {
			if v >= lo && v < hi {
				out = append(out, v)
			}
		}
	}
	return out
}

// Ascend calls yield for every key >= from in ascending order until
// yield returns false or the set ends, walking the shards in partition
// order. Shards without a native Ascend iterate their Snapshot.
func (s *Sharded) Ascend(from int64, yield func(int64) bool) {
	stopped := false
	for i := s.shardOf(from); i < len(s.slots) && !stopped; i++ {
		set := s.slots[i].set
		if r, ok := set.(Ranger); ok {
			r.Ascend(from, func(v int64) bool {
				if !yield(v) {
					stopped = true
					return false
				}
				return true
			})
			continue
		}
		for _, v := range set.Snapshot() {
			if v >= from && !yield(v) {
				stopped = true
				break
			}
		}
	}
}

var (
	_ Batcher = (*Sharded)(nil)
	_ Ranger  = (*Sharded)(nil)
	_ Loader  = (*Sharded)(nil)
)
