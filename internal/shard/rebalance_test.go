package shard

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// lockedSet wraps sliceSet behind a mutex: the concurrent backing set
// for rebalance tests (the façade's stripes serialize routing, not
// same-shard operations on different keys).
type lockedSet struct {
	mu sync.Mutex
	s  sliceSet
}

func newLockedSet() Set { return &lockedSet{} }

func (l *lockedSet) Insert(v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Insert(v)
}

func (l *lockedSet) Remove(v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Remove(v)
}

func (l *lockedSet) Contains(v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Contains(v)
}

func (l *lockedSet) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Len()
}

func (l *lockedSet) Snapshot() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Snapshot()
}

// TestRebalanceErrors pins the misuse surface: unarmed façades refuse,
// and malformed boundary tables are rejected before any key moves.
func TestRebalanceErrors(t *testing.T) {
	s := NewRange(4, 0, 100, newSliceSet)
	if _, err := s.Rebalance([]int64{0, 25, 50, 75}); err != ErrRebalanceDisabled {
		t.Fatalf("unarmed Rebalance error = %v, want ErrRebalanceDisabled", err)
	}
	s = NewRange(4, 0, 100, newSliceSet)
	s.EnableRebalance()
	if !s.RebalanceEnabled() {
		t.Fatal("RebalanceEnabled() = false after EnableRebalance")
	}
	if _, err := s.Rebalance([]int64{0, 25, 50}); err == nil {
		t.Fatal("Rebalance with wrong bound count succeeded")
	}
	if _, err := s.Rebalance([]int64{0, 25, 25, 75}); err == nil {
		t.Fatal("Rebalance with non-increasing bounds succeeded")
	}
}

// TestRebalanceSequentialOracle repartitions a quiescent set twice —
// uniform → skewed → uniform — and checks after each migration that
// the contents, ordering, routing and boundary table all agree with a
// map oracle.
func TestRebalanceSequentialOracle(t *testing.T) {
	s := NewRange(4, 0, 1000, newSliceSet)
	s.EnableRebalance()
	oracle := map[int64]bool{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 600; i++ {
		k := int64(rng.Intn(1100) - 50) // spill past the focus range on both sides
		s.Insert(k)
		oracle[k] = true
	}

	check := func(tag string) {
		t.Helper()
		if got, want := s.Len(), len(oracle); got != want {
			t.Fatalf("%s: Len = %d, want %d", tag, got, want)
		}
		snap := s.Snapshot()
		if len(snap) != len(oracle) {
			t.Fatalf("%s: Snapshot has %d keys, want %d", tag, len(snap), len(oracle))
		}
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				t.Fatalf("%s: Snapshot not strictly ascending at %d", tag, i)
			}
		}
		for _, k := range snap {
			if !oracle[k] {
				t.Fatalf("%s: Snapshot has phantom key %d", tag, k)
			}
		}
		// Routing agreement: every key lives in exactly the shard the
		// current partition assigns it.
		g := s.gen.Load()
		for i := range g.slots {
			for _, k := range g.slots[i].set.Snapshot() {
				if got := s.shardOf(k); got != i {
					t.Fatalf("%s: key %d resides in shard %d but routes to %d", tag, k, i, got)
				}
			}
		}
	}
	check("pre-rebalance")

	// Skew hard: give shard 0 almost everything.
	skew := []int64{0, 900, 950, 975}
	moved, err := s.Rebalance(skew)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("skewed rebalance moved no keys")
	}
	if got := s.Boundaries(); !boundsEqual(got, skew) {
		t.Fatalf("Boundaries = %v, want %v", got, skew)
	}
	check("post-skew")

	// Operations against the oracle on the new partition.
	for i := 0; i < 4000; i++ {
		k := int64(rng.Intn(1100) - 50)
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(k), !oracle[k]; got != want {
				t.Fatalf("Insert(%d) = %v, want %v", k, got, want)
			}
			oracle[k] = true
		case 1:
			if got, want := s.Remove(k), oracle[k]; got != want {
				t.Fatalf("Remove(%d) = %v, want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			if got := s.Contains(k); got != oracle[k] {
				t.Fatalf("Contains(%d) = %v, want %v", k, got, oracle[k])
			}
		}
	}
	check("post-skew churn")

	if _, err := s.Rebalance([]int64{0, 250, 500, 750}); err != nil {
		t.Fatal(err)
	}
	check("post-uniform")
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRebalanceDuringChurn is the generation-swap linearizability
// test the CI race leg runs: workers churn insert/remove/contains on
// disjoint key stripes — so each worker's view must be exactly
// sequential — while the main goroutine drives repeated rebalances
// between contradictory partitions. Any op routed to a shard that no
// longer (or does not yet) own its key surfaces as an oracle mismatch;
// any missed happens-before edge in the stripe/watermark protocol
// surfaces under -race.
func TestRebalanceDuringChurn(t *testing.T) {
	const (
		workers  = 4
		keySpace = 8192
		steps    = 6000
	)
	s := NewRange(8, 0, keySpace, newLockedSet)
	s.EnableRebalance()
	s.EnableLoadStats()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			oracle := map[int64]bool{}
			for i := 0; i < steps; i++ {
				// Worker w owns keys ≡ w (mod workers): disjoint, so the
				// façade must look sequential to each worker.
				k := int64(rng.Intn(keySpace/workers))*workers + int64(w)
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Insert(k), !oracle[k]; got != want {
						t.Errorf("worker %d: Insert(%d) = %v, want %v", w, k, got, want)
						return
					}
					oracle[k] = true
				case 1:
					if got, want := s.Remove(k), oracle[k]; got != want {
						t.Errorf("worker %d: Remove(%d) = %v, want %v", w, k, got, want)
						return
					}
					delete(oracle, k)
				default:
					if got := s.Contains(k); got != oracle[k] {
						t.Errorf("worker %d: Contains(%d) = %v, want %v", w, k, got, oracle[k])
						return
					}
				}
			}
		}(w)
	}

	// One batch worker exercises apply() across the watermark split: it
	// owns a key range disjoint from the modular stripes above (keys >=
	// keySpace), inserts a block, verifies it, removes it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		block := make([]int64, 64)
		for round := 0; round < 60; round++ {
			for i := range block {
				block[i] = int64(keySpace + round*len(block) + i)
			}
			if got := s.InsertAll(block); got != len(block) {
				t.Errorf("batch: InsertAll = %d, want %d", got, len(block))
				return
			}
			if got := s.ContainsAll(block); got != len(block) {
				t.Errorf("batch: ContainsAll = %d, want %d", got, len(block))
				return
			}
			if got := s.RemoveAll(block); got != len(block) {
				t.Errorf("batch: RemoveAll = %d, want %d", got, len(block))
				return
			}
		}
	}()

	// Rebalancer: swing the partition between contradictory shapes
	// until the workers drain.
	go func() {
		shapes := [][]int64{
			{0, 512, 1024, 1536, 2048, 2560, 3072, 3584},
			{0, 7000, 7200, 7400, 7600, 7800, 8000, 8200},
			{0, 100, 200, 300, 400, 500, 600, 700},
			{0, 1024, 2048, 3072, 4096, 5120, 6144, 7168},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Rebalance(shapes[i%len(shapes)]); err != nil {
				t.Errorf("rebalance %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)

	// Quiescent sanity: the snapshot is strictly ascending and scans
	// agree with it.
	snap := s.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
		t.Fatal("post-churn Snapshot not sorted")
	}
	if got := s.RangeScan(0, keySpace*2); len(got) != len(snap) {
		t.Fatalf("RangeScan = %d keys, Snapshot = %d", len(got), len(snap))
	}
	if lc := s.LoadCounts(); lc == nil {
		t.Fatal("LoadCounts = nil after EnableLoadStats")
	}
}
