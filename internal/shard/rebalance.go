package shard

import (
	"errors"
	"fmt"
	"math"

	"listset/internal/failpoint"
	"listset/internal/obs"
	"listset/internal/trylock"
)

// Online shard-range rebalancing (DESIGN.md §14). A rebalance replaces
// the current generation's boundary table with a caller-supplied one
// (the adaptive controller derives it as a weighted quantile of the
// observed per-shard load) and migrates every key to its new shard.
//
// The migration runs chunk by chunk in key order behind a watermark:
// keys below the watermark live in the new generation, keys at or
// above it in the old one. Each chunk transfer — range-scan the old
// generation, bulk-load the new shard, remove from the old shards,
// advance the watermark — happens while the migrator holds every
// routing stripe exclusively, so no operation is in flight anywhere in
// the façade during a transfer and the per-shard bulk Load (a
// quiescent-only primitive) is safe. Between chunks the stripes are
// released and operations proceed, routed by the watermark: each op
// holds its key's stripe shared for its whole critical section, so it
// executes against exactly one routing state and lands on the one list
// that owns its key at its linearization point. Linearizability is
// therefore preserved by the same key-locality argument as the static
// partition — the owner function changes only at stripe-exclusive
// instants that no operation spans.
//
// Lock order: all multi-stripe acquisitions (migrator, whole-set
// reads, batches) walk the stripe table in index order, so there is no
// circular wait; single-key operations hold exactly one stripe.

// ErrRebalanceDisabled is returned by Rebalance on a façade that was
// not armed with EnableRebalance before sharing.
var ErrRebalanceDisabled = errors.New("shard: rebalance not enabled (call EnableRebalance before sharing the set)")

// maxChunkKeys caps the keys one chunk transfer moves while holding
// every routing stripe. The cap bounds the pause a migration imposes
// on concurrent operations' tail latency; larger shards migrate as a
// sequence of slices with the stripes released between them.
const maxChunkKeys = 512

// Rebalance repartitions the key space along bounds — element i the
// new inclusive lower bound of shard i, strictly increasing from index
// 1, element 0 ignored (shard 0 keeps owning everything below) — and
// migrates every resident key to its new shard. It returns the number
// of keys moved. Concurrent Rebalance calls serialize; operations on
// the set proceed concurrently except during chunk transfers.
func (s *Sharded) Rebalance(bounds []int64) (moved int, err error) {
	if !s.rebalanceable {
		return 0, ErrRebalanceDisabled
	}
	cur := s.gen.Load()
	if len(bounds) != len(cur.slots) {
		return 0, fmt.Errorf("shard: Rebalance with %d bounds for %d shards", len(bounds), len(cur.slots))
	}
	nb := make([]int64, len(bounds))
	copy(nb, bounds)
	nb[0] = s.lo // reported edge; routing treats bounds[0] as -inf
	for i := 1; i < len(nb); i++ {
		if i > 1 && nb[i] <= nb[i-1] {
			return 0, fmt.Errorf("shard: Rebalance bounds not strictly increasing at %d (%d <= %d)", i, nb[i], nb[i-1])
		}
	}

	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()
	// Reload under the migrator lock: a previous rebalance may have
	// swapped generations since the validation read.
	cur = s.gen.Load()

	to := &generation{
		lo:     cur.lo,
		shift:  cur.shift,
		bounds: nb,
		slots:  make([]slot, len(cur.slots)),
	}
	for i := range to.slots {
		to.slots[i].set = s.newSet()
		obs.Attach(to.slots[i].set, s.probes)
		failpoint.Attach(to.slots[i].set, s.fps)
		if k := s.budget.Load(); k != 0 {
			obs.AttachRetryBudget(to.slots[i].set, int(k))
		}
		if bp := s.backoffs.Load(); bp != nil && i < len(*bp) {
			trylock.AttachBackoff(to.slots[i].set, (*bp)[i])
		}
	}

	m := &migration{from: cur, to: to}
	m.watermark.Store(math.MinInt64)

	// Publish the migration under all stripes: operations already past
	// their mig load hold a stripe, so taking them all drains every
	// in-flight op routed by the old state.
	s.locks.lockAll()
	s.mig.Store(m)
	s.locks.unlockAll()

	// Transfer one new-shard chunk at a time, in key order. A chunk
	// never moves more than maxChunkKeys at once: the stripes are held
	// exclusively for the whole transfer, so the chunk size IS the
	// pause the migration imposes on the tail latency of every
	// concurrent operation. Oversized shards migrate as several slices,
	// the watermark advancing to just past each slice's last key.
	for i := range to.slots {
		hi := int64(math.MaxInt64)
		if i+1 < len(to.slots) {
			hi = nb[i+1]
		}
		for {
			s.locks.lockAll()
			w := m.watermark.Load()
			if w >= hi {
				s.locks.unlockAll()
				break
			}
			if w == math.MinInt64 {
				// The lists' head sentinel carries MinInt64; real keys
				// are strictly above it, so nudging the first chunk's
				// lower edge keeps the sentinel out of the scan.
				w = math.MinInt64 + 1
			}
			// Bounded collection: the walk stops at the chunk cap, so
			// the stripe-held pause is O(maxChunkKeys), not O(shard).
			// Keys below the watermark were removed from the old
			// generation by earlier slices, so each walk resumes at the
			// frontier rather than re-traversing migrated territory.
			keys := make([]int64, 0, maxChunkKeys)
			cur.ascend(w, func(v int64) bool {
				if v >= hi {
					return false
				}
				keys = append(keys, v)
				return len(keys) < maxChunkKeys
			})
			next := hi
			if len(keys) == maxChunkKeys {
				next = keys[len(keys)-1] + 1
			}
			if len(keys) > 0 {
				// Quiescent bulk load: every stripe is held, no
				// operation is in flight anywhere in the façade.
				batchLoad(to.slots[i].set, keys)
				removeRuns(cur, keys)
				moved += len(keys)
			}
			m.watermark.Store(next)
			s.locks.unlockAll()
			if next >= hi {
				break
			}
		}
	}

	// Swap: the new generation now owns every key; retire the
	// migration and the old slots together.
	s.locks.lockAll()
	s.gen.Store(to)
	s.mig.Store(nil)
	s.locks.unlockAll()
	return moved, nil
}

// removeRuns deletes keys (sorted ascending) from g, batching each
// contiguous run that lands on one shard into a single native call.
// The partition is monotone, so the runs tile the slice.
func removeRuns(g *generation, keys []int64) {
	for len(keys) > 0 {
		i := g.shardOf(keys[0])
		end := 1
		for end < len(keys) && g.shardOf(keys[end]) == i {
			end++
		}
		batchRemove(g.slots[i].set, keys[:end])
		keys = keys[end:]
	}
}
