package shard

import "testing"

// nopSet is an empty Set whose operations do nothing, so benchmarks
// over it measure the façade's own routing and dispatch cost.
type nopSet struct{}

func (nopSet) Insert(int64) bool   { return true }
func (nopSet) Remove(int64) bool   { return true }
func (nopSet) Contains(int64) bool { return true }
func (nopSet) Len() int            { return 0 }
func (nopSet) Snapshot() []int64   { return nil }

// BenchmarkRoutingOverhead prices one façade hop — shardOf plus the
// interface call — which is the per-operation tax every sharded
// configuration pays on top of its shard's list work.
func BenchmarkRoutingOverhead(b *testing.B) {
	b.ReportAllocs()
	s := NewRange(16, 0, 1<<14, func() Set { return nopSet{} })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(int64(i) & (1<<14 - 1))
	}
}

// BenchmarkRoutingOverheadEdges routes keys outside the focus range,
// exercising the clamp paths.
func BenchmarkRoutingOverheadEdges(b *testing.B) {
	b.ReportAllocs()
	s := NewRange(16, 0, 1<<14, func() Set { return nopSet{} })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(int64(i%2)<<40 - 1) // alternates below lo / far above hi
	}
}
