// Package harris implements the lock-free Harris-Michael list-based set
// (Harris DISC 2001; Michael SPAA 2002) with the wait-free contains of
// Herlihy & Shavit's book — the lock-free baseline of the paper.
//
// Two variants are provided, mirroring the two Java implementations the
// paper benchmarks:
//
//   - AMR: the textbook variant built on an AtomicMarkableReference
//     equivalent — each node's (next, marked) pair lives in an immutable
//     heap cell swapped atomically. Every read of a next pointer pays an
//     extra indirection, the overhead the paper measures against.
//   - Marker (marker.go): the RTTI-style optimization suggested by
//     Heller et al. — deletion marks are carried by the dynamic type of
//     a successor node instead of a wrapper cell, restoring
//     single-indirection traversals.
//
// In both variants remove performs logical deletion with a CAS and then
// best-effort physical removal; traversing updates help unlink marked
// nodes and restart when their unlinking CAS fails — precisely the
// helping that makes the algorithm reject the schedule of Figure 3.
package harris

import (
	"math"
	"sync/atomic"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Sentinel values stored in the head and tail nodes.
const (
	MinSentinel = math.MinInt64
	MaxSentinel = math.MaxInt64
)

// amrCell is the immutable (next, marked) pair of the AMR variant: the
// Go equivalent of Java's AtomicMarkableReference state. A node is
// logically deleted iff its cell's marked flag is set.
type amrCell struct {
	next   *amrNode
	marked bool
}

type amrNode struct {
	val  int64
	cell atomic.Pointer[amrCell]
}

func newAMRNode(v int64, next *amrNode) *amrNode {
	n := &amrNode{val: v}
	n.cell.Store(&amrCell{next: next})
	return n
}

// AMR is the Harris-Michael list built on AtomicMarkableReference-style
// (pointer, mark) cells.
type AMR struct {
	head *amrNode
	tail *amrNode

	// probes, when non-nil, receives contention events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the chaos failpoints (internal/failpoint).
	fps *failpoint.Set

	// budget is the failed-CAS retry budget K (0 = unbounded retries, atomic for mid-run retuning);
	// retry aggregates what the escalators saw. Harris restarts natively
	// from head, so the ladder's only live stage is the backoff at K.
	budget atomic.Int32
	retry  obs.RetryCounter
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the set between goroutines.
func (s *AMR) SetProbes(p *obs.Probes) { s.probes = p }

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the set between goroutines.
func (s *AMR) SetFailpoints(fp *failpoint.Set) { s.fps = fp }

// SetRetryBudget sets the failed-CAS retry budget K: past K restarts an
// update backs off between attempts. 0 restores unbounded retries.
// Call before sharing the set.
func (s *AMR) SetRetryBudget(k int) { s.budget.Store(int32(k)) }

// RetryStats reports the aggregated restart/escalation tallies.
func (s *AMR) RetryStats() obs.RetryStats { return s.retry.Stats() }

// NewAMR returns an empty Harris-Michael (AMR variant) set.
func NewAMR() *AMR {
	tail := newAMRNode(MaxSentinel, nil)
	head := newAMRNode(MinSentinel, tail)
	return &AMR{head: head, tail: tail}
}

// find locates the window (prev, curr) with prev.val < v <= curr.val,
// physically removing every marked node it encounters on the way
// (Michael's helping). If a removal CAS fails the traversal restarts
// from head — esc counts those internal restarts against the caller's
// retry budget. It returns prev's cell as read, so callers can CAS
// against the exact cell they validated.
func (s *AMR) find(v int64, esc *obs.Escalator) (prev *amrNode, prevCell *amrCell, curr *amrNode) {
retry:
	for {
		prev = s.head
		prevCell = prev.cell.Load()
		curr = prevCell.next
		for {
			currCell := curr.cell.Load()
			for currCell.marked {
				// curr is logically deleted: help unlink it. Failure
				// means a concurrent update changed prev's cell — the
				// paper's Figure 3 shows this restart rejecting an
				// otherwise correct schedule. An injected failure takes
				// the same restart path without touching the list.
				injected := false
				if fp := s.fps; failpoint.On(fp) {
					injected = fp.Fail(failpoint.SiteUnlink, curr.val)
				}
				//lint:ignore hotalloc AMR cells are immutable by design; unlinking allocates the replacement cell (the indirection this variant prices)
				snipped := &amrCell{next: currCell.next}
				if injected || !prev.cell.CompareAndSwap(prevCell, snipped) {
					if p := s.probes; obs.On(p) {
						p.Inc(obs.EvCASFail, curr.val)
						p.Inc(obs.EvRestartHead, curr.val)
					}
					esc.Failed(s.probes, curr.val)
					continue retry
				}
				if p := s.probes; obs.On(p) {
					p.Inc(obs.EvHelpedUnlink, curr.val)
				}
				prevCell = snipped
				curr = currCell.next
				currCell = curr.cell.Load()
			}
			if curr.val >= v {
				return prev, prevCell, curr
			}
			prev, prevCell = curr, currCell
			curr = currCell.next
		}
	}
}

// Contains reports whether v is in the set. Wait-free: it never helps
// and never restarts; it checks the mark only of the node it lands on.
func (s *AMR) Contains(v int64) bool {
	curr := s.head
	cell := curr.cell.Load()
	for curr.val < v {
		curr = cell.next
		cell = curr.cell.Load()
	}
	return curr.val == v && !cell.marked
}

// Insert adds v to the set and reports whether v was absent.
func (s *AMR) Insert(v int64) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	for {
		prev, prevCell, curr := s.find(v, &esc)
		if curr.val == v {
			esc.Done(&s.retry)
			return false
		}
		// An injected CAS failure skips the real CAS (which would
		// succeed) and takes the same restart path a lost race does.
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			injected = fp.Fail(failpoint.SiteHarrisCAS, v)
		}
		if !injected {
			n := newAMRNode(v, curr)
			//lint:ignore hotalloc AMR cells are immutable by design; linking allocates the replacement cell
			if prev.cell.CompareAndSwap(prevCell, &amrCell{next: n}) {
				esc.Done(&s.retry)
				return true
			}
		}
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvCASFail, v)
			p.Inc(obs.EvRestartHead, v)
		}
		esc.Failed(s.probes, v)
	}
}

// Remove deletes v from the set and reports whether v was present.
// Logical deletion (marking the cell) is the linearization point;
// physical removal is attempted once and otherwise left to future
// traversals.
func (s *AMR) Remove(v int64) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	for {
		prev, prevCell, curr := s.find(v, &esc)
		if curr.val != v {
			esc.Done(&s.retry)
			return false
		}
		currCell := curr.cell.Load()
		if currCell.marked {
			// Deleted by a competitor after find validated it; retry to
			// settle who removed it.
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvRestartHead, v)
			}
			esc.Failed(s.probes, v)
			continue
		}
		// An injected failure of the mark-install CAS takes the same
		// restart path a lost race does, without touching the list.
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			injected = fp.Fail(failpoint.SiteHarrisCAS, v)
		}
		//lint:ignore hotalloc AMR cells are immutable by design; the logical delete allocates the marked cell
		marked := &amrCell{next: currCell.next, marked: true}
		if injected || !curr.cell.CompareAndSwap(currCell, marked) {
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvCASFail, v)
				p.Inc(obs.EvRestartHead, v)
			}
			esc.Failed(s.probes, v)
			continue
		}
		// Best-effort physical removal; failure delegates the unlink.
		// (A failed attempt forces no retry, so it is not a CAS-failure
		// event — the unlink becomes a future helper's EvHelpedUnlink.)
		// An injected failure here exercises exactly that delegation.
		skipUnlink := false
		if fp := s.fps; failpoint.On(fp) {
			skipUnlink = fp.Fail(failpoint.SiteUnlink, v)
		}
		//lint:ignore hotalloc AMR cells are immutable by design; the physical unlink allocates the replacement cell
		unlinked := !skipUnlink && prev.cell.CompareAndSwap(prevCell, &amrCell{next: currCell.next})
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvLogicalDelete, v)
			if unlinked {
				p.Inc(obs.EvPhysicalUnlink, v)
			}
		}
		esc.Done(&s.retry)
		return true
	}
}

// Len counts the unmarked elements by traversal; exact at quiescence.
func (s *AMR) Len() int {
	n := 0
	curr := s.head.cell.Load().next
	for curr.val != MaxSentinel {
		cell := curr.cell.Load()
		if !cell.marked {
			n++
		}
		curr = cell.next
	}
	return n
}

// Snapshot returns the unmarked elements in ascending order; exact at
// quiescence.
func (s *AMR) Snapshot() []int64 {
	var out []int64
	curr := s.head.cell.Load().next
	for curr.val != MaxSentinel {
		cell := curr.cell.Load()
		if !cell.marked {
			out = append(out, curr.val)
		}
		curr = cell.next
	}
	return out
}
