package harris

import (
	"listset/internal/batch"
	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Batched and ranged operations for the Harris-Michael marker list.
//
// The lock-based lists batch by holding a window lock while linking a
// whole run of keys; a lock-free list has no lock to hold, so the
// batch here is a CAS batch with per-key retry: one sorted pass keeps
// an anchor node and re-finds each key's window from it, but every key
// is still applied by its own CAS, and only that key retries on a
// lost race. Stale anchors are harmless: marking a node rewrites its
// next pointer (to the marker), so any insert/unlink CAS through a
// deleted anchor fails and the key re-finds from head — the same
// observation that makes the single-key algorithm safe.

// findFrom is find starting at the anchor instead of head. If the
// anchor is already deleted (its successor is a marker) the search
// falls back to head; after the first failed unlink CAS it also
// restarts from head, like find.
func (s *Marker) findFrom(anchor *markNode, v int64, esc *obs.Escalator) (prev, curr *markNode) {
	prev = anchor
	curr = prev.next.Load()
	if curr.marker {
		// The anchor was deleted since the pass last advanced it; its
		// frozen next points at its marker. Resume from head.
		prev = s.head
		curr = prev.next.Load()
	}
	for {
		succ := curr.next.Load()
		for succ.marker {
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				injected = fp.Fail(failpoint.SiteUnlink, curr.val)
			}
			if injected || !prev.next.CompareAndSwap(curr, succ.next.Load()) {
				if p := s.probes; obs.On(p) {
					p.Inc(obs.EvCASFail, curr.val)
					p.Inc(obs.EvRestartHead, curr.val)
				}
				esc.Failed(s.probes, curr.val)
				// Lost the unlink race (or the anchor is stale): fall
				// back to the head-rooted find.
				return s.find(v, esc)
			}
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvHelpedUnlink, curr.val)
			}
			curr = succ.next.Load()
			succ = curr.next.Load()
		}
		if curr.val >= v {
			return prev, curr
		}
		prev, curr = curr, succ
	}
}

// InsertAll adds every key of keys to the set and returns how many
// were absent (and are now present). The batch is sorted and
// deduplicated first; each key is inserted by its own CAS and
// linearizes individually, in ascending key order, within the call.
func (s *Marker) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	inserted := 0
	anchor := s.head
	for _, v := range ks {
		esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
		for {
			prev, curr := s.findFrom(anchor, v, &esc)
			if curr.val == v {
				esc.Done(&s.retry)
				anchor = curr
				break
			}
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				injected = fp.Fail(failpoint.SiteHarrisCAS, v)
			}
			if !injected {
				n := newMarkNode(v, curr)
				if prev.next.CompareAndSwap(curr, n) {
					esc.Done(&s.retry)
					inserted++
					anchor = n
					break
				}
			}
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvCASFail, v)
				p.Inc(obs.EvRestartHead, v)
				p.Inc(obs.EvBatchWindowRestart, v)
			}
			esc.Failed(s.probes, v)
		}
	}
	b.Put()
	return inserted
}

// RemoveAll deletes every key of keys from the set and returns how
// many were present (and are now absent). Per-key CAS retry, ascending
// order; each key's remove linearizes at its marker-install CAS.
func (s *Marker) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	removed := 0
	anchor := s.head
	for _, v := range ks {
		esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
		for {
			prev, curr := s.findFrom(anchor, v, &esc)
			if curr.val != v {
				esc.Done(&s.retry)
				anchor = prev
				break
			}
			succ := curr.next.Load()
			if succ.marker {
				// Lost the race to a competing remove; re-find.
				if p := s.probes; obs.On(p) {
					p.Inc(obs.EvRestartHead, v)
					p.Inc(obs.EvBatchWindowRestart, v)
				}
				esc.Failed(s.probes, v)
				continue
			}
			injected := false
			if fp := s.fps; failpoint.On(fp) {
				injected = fp.Fail(failpoint.SiteHarrisCAS, v)
			}
			//lint:ignore hotalloc the marker node IS the deletion mark in this variant; removal allocates it by design (and recycling would re-introduce ABA)
			m := &markNode{val: curr.val, marker: true}
			m.next.Store(succ)
			if injected || !curr.next.CompareAndSwap(succ, m) {
				if p := s.probes; obs.On(p) {
					p.Inc(obs.EvCASFail, v)
					p.Inc(obs.EvRestartHead, v)
					p.Inc(obs.EvBatchWindowRestart, v)
				}
				esc.Failed(s.probes, v)
				continue
			}
			skipUnlink := false
			if fp := s.fps; failpoint.On(fp) {
				skipUnlink = fp.Fail(failpoint.SiteUnlink, v)
			}
			unlinked := !skipUnlink && prev.next.CompareAndSwap(curr, succ)
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvLogicalDelete, v)
				if unlinked {
					p.Inc(obs.EvPhysicalUnlink, v)
				}
			}
			removed++
			esc.Done(&s.retry)
			anchor = prev
			break
		}
	}
	b.Put()
	return removed
}

// ContainsAll reports how many of the keys are in the set. One
// wait-free pass serves the whole sorted batch; each key's query
// linearizes individually at the load that reached its position.
func (s *Marker) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	found := 0
	curr := s.head
	for _, v := range ks {
		for curr.val < v {
			curr = curr.next.Load()
			if curr.marker {
				curr = curr.next.Load()
			}
		}
		if curr.val == v && !isDeleted(curr) {
			found++
		}
	}
	b.Put()
	return found
}

// RangeScan returns the live keys in [lo, hi) in ascending order.
// Wait-free; sorted and duplicate-free by construction — real nodes
// along any next-chain carry strictly increasing values (a marker
// mirrors its victim's value but is skipped, and a marker's frozen
// next is always a real node).
func (s *Marker) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	var out []int64
	curr := s.head
	for curr.val < lo {
		curr = curr.next.Load()
		if curr.marker {
			curr = curr.next.Load()
		}
	}
	for curr.val < hi {
		if !isDeleted(curr) {
			out = append(out, curr.val)
		}
		curr = curr.next.Load()
		if curr.marker {
			curr = curr.next.Load()
		}
	}
	return out
}

// Ascend calls yield for every live key >= from in ascending order
// until yield returns false or the list ends. Wait-free.
func (s *Marker) Ascend(from int64, yield func(int64) bool) {
	curr := s.head
	for curr.val < from {
		curr = curr.next.Load()
		if curr.marker {
			curr = curr.next.Load()
		}
	}
	for curr.val != MaxSentinel {
		if !isDeleted(curr) && !yield(curr.val) {
			break
		}
		curr = curr.next.Load()
		if curr.marker {
			curr = curr.next.Load()
		}
	}
}

// Load bulk-inserts keys with a single merge walk: O(n + k) total,
// O(k) on an empty set. It uses plain stores (no CAS) and must only be
// used at quiescence (setup/population), before the set is shared; any
// logically deleted nodes left reachable by earlier concurrent use are
// physically unlinked along the walk. Returns how many keys were
// absent.
func (s *Marker) Load(keys []int64) int {
	b := batch.Prep(keys)
	ks := b.K
	added := 0
	prev := s.head
	curr := prev.next.Load()
	for _, v := range ks {
		for {
			succ := curr.next.Load()
			if succ.marker {
				// curr is deleted; snip curr and its marker (plain
				// store: quiescence is the contract).
				curr = succ.next.Load()
				prev.next.Store(curr)
				continue
			}
			if curr.val >= v {
				break
			}
			prev, curr = curr, succ
		}
		if curr.val == v {
			continue
		}
		n := newMarkNode(v, curr)
		prev.next.Store(n)
		prev = n
		added++
	}
	b.Put()
	return added
}
