package harris

import (
	"sync/atomic"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

// The Marker variant reproduces the RTTI optimization of the paper's
// Java implementation. In Java, marked and unmarked states are two
// subclasses of a node class, so traversals learn a node's deletion
// state with `instanceof` instead of unwrapping an
// AtomicMarkableReference. The Go analog: logical deletion CASes a
// fresh immutable *marker node* in behind the victim —
//
//	victim.next: succ  ==>  victim.next: marker{next: succ}
//
// A node is logically deleted iff its successor is a marker. Ordinary
// reads of next are a single load (no wrapper cell), which is exactly
// the saving the paper measures on read-dominated workloads.
//
// Marker nodes are immutable after construction: their next pointer
// never changes, so unlinking CASes the predecessor straight to
// marker.next.

type markNode struct {
	val    int64
	marker bool // immutable; true for marker nodes
	next   atomic.Pointer[markNode]
}

func newMarkNode(v int64, next *markNode) *markNode {
	n := &markNode{val: v}
	n.next.Store(next)
	return n
}

// Marker is the Harris-Michael list with RTTI-style marker nodes.
type Marker struct {
	head *markNode
	tail *markNode

	// probes, when non-nil, receives contention events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the chaos failpoints (internal/failpoint).
	fps *failpoint.Set

	// budget is the failed-CAS retry budget K (0 = unbounded retries, atomic for mid-run retuning);
	// retry aggregates what the escalators saw. See AMR.
	budget atomic.Int32
	retry  obs.RetryCounter
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the set between goroutines.
func (s *Marker) SetProbes(p *obs.Probes) { s.probes = p }

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the set between goroutines.
func (s *Marker) SetFailpoints(fp *failpoint.Set) { s.fps = fp }

// SetRetryBudget sets the failed-CAS retry budget K: past K restarts an
// update backs off between attempts. 0 restores unbounded retries.
// Call before sharing the set.
func (s *Marker) SetRetryBudget(k int) { s.budget.Store(int32(k)) }

// RetryStats reports the aggregated restart/escalation tallies.
func (s *Marker) RetryStats() obs.RetryStats { return s.retry.Stats() }

// NewMarker returns an empty Harris-Michael (marker variant) set.
func NewMarker() *Marker {
	// The tail's successor is a permanent non-marker stand-in so that
	// "is the successor a marker" needs no nil check anywhere.
	end := &markNode{val: MaxSentinel}
	tail := newMarkNode(MaxSentinel, end)
	head := newMarkNode(MinSentinel, tail)
	return &Marker{head: head, tail: tail}
}

// find locates the window (prev, curr), prev.val < v <= curr.val,
// unlinking every logically deleted node (one whose successor is a
// marker) it passes. A failed unlink CAS restarts from head, as in the
// AMR variant; esc counts those internal restarts against the caller's
// retry budget.
func (s *Marker) find(v int64, esc *obs.Escalator) (prev, curr *markNode) {
retry:
	for {
		prev = s.head
		curr = prev.next.Load()
		for {
			succ := curr.next.Load()
			for succ.marker {
				// curr is deleted; snip curr and its marker together. An
				// injected failure takes the same restart path a failed
				// CAS does, without touching the list.
				injected := false
				if fp := s.fps; failpoint.On(fp) {
					injected = fp.Fail(failpoint.SiteUnlink, curr.val)
				}
				if injected || !prev.next.CompareAndSwap(curr, succ.next.Load()) {
					if p := s.probes; obs.On(p) {
						p.Inc(obs.EvCASFail, curr.val)
						p.Inc(obs.EvRestartHead, curr.val)
					}
					esc.Failed(s.probes, curr.val)
					continue retry
				}
				if p := s.probes; obs.On(p) {
					p.Inc(obs.EvHelpedUnlink, curr.val)
				}
				curr = succ.next.Load()
				succ = curr.next.Load()
			}
			if curr.val >= v {
				return prev, curr
			}
			prev, curr = curr, succ
		}
	}
}

// isDeleted reports whether n is logically deleted (successor is a
// marker). n must not itself be a marker.
func isDeleted(n *markNode) bool {
	return n.next.Load().marker
}

// Contains reports whether v is in the set. Wait-free, and — unlike the
// AMR variant — each hop is a single pointer load; the deleted-check of
// the landing node reads the dynamic kind of its successor, the
// `instanceof` of the Java RTTI version.
func (s *Marker) Contains(v int64) bool {
	curr := s.head
	for curr.val < v {
		curr = curr.next.Load()
		if curr.marker {
			// Stepped through a deleted node; the marker's val mirrors
			// its victim's, but skip to the true successor regardless.
			curr = curr.next.Load()
		}
	}
	return curr.val == v && !isDeleted(curr)
}

// Insert adds v to the set and reports whether v was absent.
func (s *Marker) Insert(v int64) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	for {
		prev, curr := s.find(v, &esc)
		if curr.val == v {
			esc.Done(&s.retry)
			return false
		}
		// An injected CAS failure skips the real CAS (which would
		// succeed) and takes the same restart path a lost race does.
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			injected = fp.Fail(failpoint.SiteHarrisCAS, v)
		}
		if !injected {
			n := newMarkNode(v, curr)
			if prev.next.CompareAndSwap(curr, n) {
				esc.Done(&s.retry)
				return true
			}
		}
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvCASFail, v)
			p.Inc(obs.EvRestartHead, v)
		}
		esc.Failed(s.probes, v)
	}
}

// Remove deletes v from the set and reports whether v was present. The
// linearization point of a successful remove is the CAS that installs
// the marker; the subsequent unlink is best-effort.
func (s *Marker) Remove(v int64) bool {
	esc := obs.Escalator{Budget: int(s.budget.Load()), HeadNative: true}
	for {
		prev, curr := s.find(v, &esc)
		if curr.val != v {
			esc.Done(&s.retry)
			return false
		}
		succ := curr.next.Load()
		if succ.marker {
			// Lost the race to a competing remove; re-find.
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvRestartHead, v)
			}
			esc.Failed(s.probes, v)
			continue
		}
		// An injected failure of the marker-install CAS takes the same
		// restart path a lost race does, without touching the list.
		injected := false
		if fp := s.fps; failpoint.On(fp) {
			injected = fp.Fail(failpoint.SiteHarrisCAS, v)
		}
		//lint:ignore hotalloc the marker node IS the deletion mark in this variant; removal allocates it by design (and recycling would re-introduce ABA)
		m := &markNode{val: curr.val, marker: true}
		m.next.Store(succ)
		if injected || !curr.next.CompareAndSwap(succ, m) {
			if p := s.probes; obs.On(p) {
				p.Inc(obs.EvCASFail, v)
				p.Inc(obs.EvRestartHead, v)
			}
			esc.Failed(s.probes, v)
			continue
		}
		// Best-effort physical removal of curr and its marker; a failed
		// attempt is left to a future helper (EvHelpedUnlink there). An
		// injected failure here exercises exactly that delegation.
		skipUnlink := false
		if fp := s.fps; failpoint.On(fp) {
			skipUnlink = fp.Fail(failpoint.SiteUnlink, v)
		}
		unlinked := !skipUnlink && prev.next.CompareAndSwap(curr, succ)
		if p := s.probes; obs.On(p) {
			p.Inc(obs.EvLogicalDelete, v)
			if unlinked {
				p.Inc(obs.EvPhysicalUnlink, v)
			}
		}
		esc.Done(&s.retry)
		return true
	}
}

// Len counts the live elements by traversal; exact at quiescence.
func (s *Marker) Len() int {
	n := 0
	curr := s.head.next.Load()
	for curr.val != MaxSentinel || curr.marker {
		succ := curr.next.Load()
		if curr.marker {
			curr = succ
			continue
		}
		if !succ.marker {
			n++
		}
		curr = succ
	}
	return n
}

// Snapshot returns the live elements in ascending order; exact at
// quiescence.
func (s *Marker) Snapshot() []int64 {
	var out []int64
	curr := s.head.next.Load()
	for curr.val != MaxSentinel || curr.marker {
		succ := curr.next.Load()
		if curr.marker {
			curr = succ
			continue
		}
		if !succ.marker {
			out = append(out, curr.val)
		}
		curr = succ
	}
	return out
}
