package harris

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"listset/internal/obs"
)

// --- AMR variant -----------------------------------------------------

func TestAMRLogicalDeletionIsLinearizationPoint(t *testing.T) {
	s := NewAMR()
	s.Insert(10)
	s.Insert(20)
	_, _, n10 := s.find(10, &obs.Escalator{})
	if n10.val != 10 {
		t.Fatalf("find(10) landed on %d", n10.val)
	}
	// Mark n10 by hand (logical deletion) without unlinking.
	cell := n10.cell.Load()
	if !n10.cell.CompareAndSwap(cell, &amrCell{next: cell.next, marked: true}) {
		t.Fatal("manual marking CAS failed")
	}
	// Contains must already report absence.
	if s.Contains(10) {
		t.Fatal("Contains(10) = true for logically deleted node")
	}
	// A traversing update helps: after find, 10 is physically gone.
	_, _, curr := s.find(15, &obs.Escalator{})
	if curr.val != 20 {
		t.Fatalf("find after helping landed on %d, want 20", curr.val)
	}
	if got := s.head.cell.Load().next.val; got != 20 {
		t.Fatalf("head successor after helping = %d, want 20", got)
	}
}

func TestAMRInsertAfterMarkedNeighbour(t *testing.T) {
	s := NewAMR()
	s.Insert(10)
	s.Insert(20)
	s.Remove(10)
	if !s.Insert(10) {
		t.Fatal("reinsert after remove failed")
	}
	if !s.Contains(10) || !s.Contains(20) {
		t.Fatal("membership wrong after reinsert")
	}
}

func TestAMRRemoveCompetition(t *testing.T) {
	s := NewAMR()
	s.Insert(10)
	// Two sequential removes: exactly one wins.
	if !s.Remove(10) {
		t.Fatal("first Remove(10) failed")
	}
	if s.Remove(10) {
		t.Fatal("second Remove(10) succeeded")
	}
}

// --- Marker variant ----------------------------------------------------

func TestMarkerDeletionInstallsMarker(t *testing.T) {
	s := NewMarker()
	s.Insert(10)
	s.Insert(20)
	_, n10 := s.find(10, &obs.Escalator{})
	if !s.Remove(10) {
		t.Fatal("Remove(10) failed")
	}
	// n10 is unlinked, but its structure shows the marker protocol: its
	// successor is a marker whose successor is the old successor.
	m := n10.next.Load()
	if !m.marker {
		t.Fatal("removed node's successor is not a marker")
	}
	if m.next.Load().val != 20 {
		t.Fatalf("marker's successor = %d, want 20", m.next.Load().val)
	}
	if isDeleted(m.next.Load()) {
		t.Fatal("live successor wrongly reported deleted")
	}
}

func TestMarkerContainsSkipsMarkers(t *testing.T) {
	s := NewMarker()
	for _, v := range []int64{10, 20, 30} {
		s.Insert(v)
	}
	// Logically delete 20 by hand, leaving it linked: readers must skip
	// through the marker and still find 30, and report 20 absent.
	_, n20 := s.find(20, &obs.Escalator{})
	succ := n20.next.Load()
	m := &markNode{val: 20, marker: true}
	m.next.Store(succ)
	if !n20.next.CompareAndSwap(succ, m) {
		t.Fatal("manual marker CAS failed")
	}
	if s.Contains(20) {
		t.Fatal("Contains(20) = true for marked-but-linked node")
	}
	if !s.Contains(30) {
		t.Fatal("Contains(30) = false while traversing through a marker")
	}
	if !s.Contains(10) {
		t.Fatal("Contains(10) = false")
	}
}

func TestMarkerFindUnlinksDeleted(t *testing.T) {
	s := NewMarker()
	for _, v := range []int64{10, 20, 30} {
		s.Insert(v)
	}
	_, n20 := s.find(20, &obs.Escalator{})
	succ := n20.next.Load()
	m := &markNode{val: 20, marker: true}
	m.next.Store(succ)
	if !n20.next.CompareAndSwap(succ, m) {
		t.Fatal("manual marker CAS failed")
	}
	// find for any key must snip 20 on its way past.
	prev, curr := s.find(30, &obs.Escalator{})
	if prev.val != 10 || curr.val != 30 {
		t.Fatalf("find(30) = (%d, %d), want (10, 30)", prev.val, curr.val)
	}
	if got := s.Snapshot(); len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("Snapshot = %v, want [10 30]", got)
	}
}

func TestMarkerReinsertCycle(t *testing.T) {
	s := NewMarker()
	for i := 0; i < 100; i++ {
		if !s.Insert(7) {
			t.Fatalf("cycle %d: Insert failed", i)
		}
		if !s.Contains(7) {
			t.Fatalf("cycle %d: Contains false after insert", i)
		}
		if !s.Remove(7) {
			t.Fatalf("cycle %d: Remove failed", i)
		}
		if s.Contains(7) {
			t.Fatalf("cycle %d: Contains true after remove", i)
		}
	}
}

// --- shared property & stress tests ------------------------------------

type setLike interface {
	Insert(int64) bool
	Remove(int64) bool
	Contains(int64) bool
	Len() int
	Snapshot() []int64
}

func quickVsMap(t *testing.T, mk func() setLike) {
	t.Helper()
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(prog []op) bool {
		s := mk()
		oracle := map[int64]bool{}
		for _, o := range prog {
			k := int64(o.Key % 16)
			switch o.Kind % 3 {
			case 0:
				if s.Insert(k) != !oracle[k] {
					return false
				}
				oracle[k] = true
			case 1:
				if s.Remove(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			default:
				if s.Contains(k) != oracle[k] {
					return false
				}
			}
		}
		return s.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAMRVsMap(t *testing.T)    { quickVsMap(t, func() setLike { return NewAMR() }) }
func TestQuickMarkerVsMap(t *testing.T) { quickVsMap(t, func() setLike { return NewMarker() }) }

func stress(t *testing.T, s setLike) {
	t.Helper()
	const keyRange = 24
	iterations := 20000
	if testing.Short() {
		iterations = 2000
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				k := int64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					s.Insert(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("Snapshot not strictly ascending: %v", snap)
		}
	}
	for _, v := range snap {
		if !s.Contains(v) {
			t.Fatalf("snapshot value %d not reported by Contains", v)
		}
	}
}

func TestConcurrentSmokeAMR(t *testing.T)    { stress(t, NewAMR()) }
func TestConcurrentSmokeMarker(t *testing.T) { stress(t, NewMarker()) }

// TestMarkerQuiescentStructure verifies the structural invariants after
// churn: no reachable markers dangling mid-chain without their victim,
// strictly sorted live chain.
func TestMarkerQuiescentStructure(t *testing.T) {
	s := NewMarker()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				k := int64(rng.Intn(16))
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Remove(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Walk the raw chain: every marker must directly follow its victim,
	// and stripping deleted (victim, marker) pairs yields a sorted chain.
	var live []int64
	curr := s.head.next.Load()
	for curr != s.tail {
		if curr.marker {
			t.Fatal("orphan marker encountered as a chain element")
		}
		succ := curr.next.Load()
		if succ.marker {
			// curr is deleted; skip the pair.
			curr = succ.next.Load()
			continue
		}
		live = append(live, curr.val)
		curr = succ
	}
	for i := 1; i < len(live); i++ {
		if live[i-1] >= live[i] {
			t.Fatalf("live chain not strictly ascending: %v", live)
		}
	}
}
