// Package mem is the repository's node-memory layer: slab-backed
// arenas with per-worker free lists and epoch-based reclamation.
//
// The paper's evaluation runs against C/C++ and Java implementations
// that manage node lifetimes manually (or lean on a generational GC
// tuned for exactly this churn); our Go reproduction heap-allocates a
// fresh node per insert and abandons unlinked nodes to the garbage
// collector, so update-heavy workloads pay allocator and GC-scan costs
// the original never did. This package removes both:
//
//   - Slabs: nodes are carved bump-pointer style out of contiguous
//     fixed-size slabs (one make([]T, SlabSize) per refill), so nodes
//     allocated together sit together — the cache-locality property a
//     per-node heap allocator cannot promise — and the allocator is
//     touched once per SlabSize nodes instead of once per node.
//   - Per-worker free lists: each worker goroutine owns a private
//     stack of reusable nodes, so steady-state churn (insert, remove,
//     re-insert) recycles memory with no shared-state coordination at
//     all on the hot path.
//   - Epoch-based reclamation: the single global rule that makes reuse
//     safe under wait-free traversal. Every operation pins the global
//     epoch for its duration; a physically-unlinked node is retired
//     into the worker's limbo bucket for the pin epoch; the global
//     epoch only advances when every pinned worker has caught up with
//     it; and a bucket is recycled only once the global epoch is two
//     ahead of it. A traversal that could still hold a pointer to a
//     retired node therefore pins an epoch that blocks the advances
//     the recycling needs — the two-epoch grace period.
//
// # Why recycling is safe for VBL and Lazy but not Harris
//
// Recycling re-introduces the ABA problem in general: a traversal
// parked on node X can observe X reincarnated with a different value.
// The grace period removes exactly that hazard for pointer *reads*: no
// node is reused while any operation that might have seen it is still
// pinned. What the grace period cannot repair is a CAS on a *recycled
// pointer value*: Harris-Michael's unlink CAS succeeds if prev.next
// still equals the remembered pointer, and a recycled node makes
// "equal pointer" stop implying "same logical node" — the classic ABA
// that manual-reclamation Harris implementations need hazard pointers
// or tags for. The lock-based VBL and Lazy lists have no such CAS:
// every structural write happens under per-node locks after a
// validation that re-reads the list's *current* state (VBL even
// validates by value, not identity, so a reincarnated successor is
// semantically welcome — Section 3.1's lockNextAtValue). Hence the
// arena is wired into VBL and Lazy, while Harris keeps GC allocation.
//
// # Memory-model argument (why the -race detector agrees)
//
// A recycled node's plain fields (val) are rewritten by its next
// owner. The happens-before chain from the last possible reader to
// that write is built entirely from the package's atomics: the reader
// unpins (atomic state store) → a later epoch advance's scan loads
// that state and CASes the global epoch → the recycler loads the
// advanced epoch before moving the bucket to the free list. Go's
// sync/atomic operations are sequentially consistent, so each link is
// a synchronizes-with edge and the whole chain is visible to the race
// detector — the -race stress tests in this package and internal/core
// exercise it directly.
package mem

import (
	"sync"
	"sync/atomic"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

// Options configures an Arena. The zero value selects the defaults.
type Options struct {
	// SlabSize is the number of nodes per slab (default 256). Bigger
	// slabs touch the Go allocator less and pack nodes denser; note
	// that a slab stays reachable as long as any one of its nodes is
	// linked into the list (retention amplification), so pathological
	// workloads that keep one node per slab alive pin SlabSize nodes
	// of memory each.
	SlabSize int
	// AdvanceEvery is how many retires a worker performs between
	// attempts to advance the global epoch (default 64). Smaller
	// values shorten the limbo queue at the cost of more advance
	// scans.
	AdvanceEvery int
	// Classes is the number of size classes the arena partitions its
	// free lists, slabs and limbo buckets into (default 1, max
	// MaxClasses). Nodes of one class only ever recycle into
	// allocations of the same class — the discipline the skip lists
	// use to keep towers of similar height on shared slabs (cache
	// density) and to guarantee a recycled "tower" always has at least
	// the height the allocation asked for. Class indices are
	// caller-defined; the classless Get/Retire/Free methods operate on
	// class 0, so single-class users never see the partition.
	Classes int
}

// MaxClasses is the size-class cap. The per-worker class state is a
// fixed-size embedded array rather than a heap slice so the classless
// hot path (class 0, the flat lists) costs one constant-index access —
// a slice-of-slices here measurably taxes every Get on the flat lists
// for a partition they never use.
const MaxClasses = 4

const (
	defaultSlabSize     = 256
	defaultAdvanceEvery = 64
	// limboBuckets is the grace-period ring: a node retired at epoch e
	// goes into bucket e%3 and is recycled once the global epoch is at
	// least e+2, which the rotation guarantees (a bucket is only
	// reused at e+3).
	limboBuckets = 3
)

// Arena is a slab-backed node allocator with epoch-based reclamation,
// generic over the node type so each list keeps its unexported node
// struct. An Arena serves one list instance (one per shard behind the
// sharded façade); the zero value is not usable, call New.
type Arena[T any] struct {
	// epoch is the global epoch. It starts at 1 so a pinned state
	// (epoch<<1 | 1) can never collide with the plain "claimed" state.
	epoch atomic.Uint64

	// workers is the copy-on-write registry of every worker ever
	// created for this arena, read lock-free by epoch-advance scans
	// and Stats; mu serializes registration only.
	workers atomic.Pointer[[]*worker[T]]
	mu      sync.Mutex

	// pool recycles idle workers across operations. Ownership is not
	// granted by Get alone: a worker is owned by whoever wins the
	// state CAS 0→1, so a worker the GC cleared from the pool is
	// reclaimed by the registry scan instead of leaking.
	pool sync.Pool

	slabSize     int
	advanceEvery uint64
	classes      int

	// probes, when non-nil, receives reclamation events (internal/obs).
	probes *obs.Probes
	// fps, when non-nil, arms the epoch-advance failpoint.
	fps *failpoint.Set
}

// New returns an empty arena.
func New[T any](opts Options) *Arena[T] {
	if opts.SlabSize <= 0 {
		opts.SlabSize = defaultSlabSize
	}
	if opts.AdvanceEvery <= 0 {
		opts.AdvanceEvery = defaultAdvanceEvery
	}
	if opts.Classes <= 0 {
		opts.Classes = 1
	}
	if opts.Classes > MaxClasses {
		opts.Classes = MaxClasses
	}
	a := &Arena[T]{slabSize: opts.SlabSize, advanceEvery: uint64(opts.AdvanceEvery), classes: opts.Classes}
	a.epoch.Store(1)
	empty := make([]*worker[T], 0)
	a.workers.Store(&empty)
	return a
}

// SetProbes attaches (or with nil detaches) the contention-event
// counters. Call it before sharing the arena between goroutines.
func (a *Arena[T]) SetProbes(p *obs.Probes) { a.probes = p }

// Classes returns the number of size classes the arena was built with.
func (a *Arena[T]) Classes() int { return a.classes }

// SetFailpoints attaches (or with nil detaches) the fault-injection
// layer. Call it before sharing the arena between goroutines.
func (a *Arena[T]) SetFailpoints(fp *failpoint.Set) { a.fps = fp }

// worker is the per-goroutine allocation context: a private free
// list, the current slab, and the limbo ring. The hot fields are
// owner-private; only state (read by epoch-advance scans) and the
// stat counters (read by Stats) are shared, and both sit on their own
// cache lines so a scan never bounces the owner's working set.
type worker[T any] struct {
	_ [64]byte
	// state encodes ownership and pinning in one word the advance scan
	// can read lock-free: 0 = free (claimable by CAS), 1 = claimed but
	// not pinned, e<<1|1 with e >= 1 = pinned at epoch e.
	state atomic.Uint64
	_     [56]byte

	arena *Arena[T]
	id    int64 // probe key: registration index

	// free, slab and used are indexed by size class (single-class
	// arenas see only index 0): one private reusable-node stack and one
	// bump-pointer slab per class, so recycling never crosses classes.
	// Fixed-size arrays, not slices: class 0 is the flat lists' whole
	// hot path and must not pay a pointer chase per Get.
	free  [MaxClasses][]*T
	slab  [MaxClasses][]T
	used  [MaxClasses]int
	limbo [limboBuckets]limbo[T]
	// retires counts retires since the last epoch-advance attempt.
	retires uint64

	// Lifetime tallies, owner-written with atomic adds so Stats can
	// read them concurrently; padded against neighbour workers.
	statAllocs   atomic.Uint64 // nodes handed out (slab + recycled)
	statSlabs    atomic.Uint64 // slabs carved
	statRetired  atomic.Uint64 // nodes retired to limbo
	statRecycled atomic.Uint64 // nodes moved limbo → free list
	_            [64]byte
}

// limbo is one grace-period bucket: nodes retired at a single epoch,
// kept per size class so recycling restores each node to the free
// list it must come back out of.
type limbo[T any] struct {
	epoch uint64
	nodes [MaxClasses][]*T
}

// total returns the number of nodes waiting in the bucket.
func (b *limbo[T]) total() int {
	n := 0
	for _, ns := range &b.nodes {
		n += len(ns)
	}
	return n
}

// Guard is a pinned worker handle: the capability to allocate, retire
// and recycle nodes, valid from Pin to Unpin on a single goroutine.
// The zero Guard (from a nil arena) is inert: Active reports false and
// Unpin is a no-op, so call sites need no arena nil-checks of their
// own.
type Guard[T any] struct {
	w *worker[T]
}

// Active reports whether the guard is backed by an arena.
func (g Guard[T]) Active() bool { return g.w != nil }

// Pin enters the global epoch and returns the allocation guard. Every
// list operation that can touch arena-managed nodes — updates and
// wait-free traversals alike — must hold a guard for its whole
// duration, retries included: the pin is what blocks the epoch
// advances that would let a node under the operation's feet be
// recycled. A nil arena returns the inert zero Guard.
func (a *Arena[T]) Pin() Guard[T] {
	if a == nil {
		return Guard[T]{}
	}
	var w *worker[T]
	if v := a.pool.Get(); v != nil {
		w = v.(*worker[T])
		if !w.state.CompareAndSwap(0, 1) {
			// A registry scan claimed it between Put and Get; the CAS
			// winner owns it, so fall through to claim another.
			w = nil
		}
	}
	if w == nil {
		w = a.claim()
	}
	// Publish the pin, then re-read the global epoch: if it moved, the
	// advancer may have scanned past our not-yet-visible pin, so
	// republish at the new epoch. A pin that survives the re-read is
	// guaranteed visible to every advance beyond e — which is exactly
	// the fact the grace period's safety argument needs.
	for {
		e := a.epoch.Load()
		w.state.Store(e<<1 | 1)
		if a.epoch.Load() == e {
			return Guard[T]{w: w}
		}
	}
}

// claim finds a free registered worker (one the GC dropped from the
// pool, typically) or registers a new one. Ownership is the state CAS.
func (a *Arena[T]) claim() *worker[T] {
	for _, w := range *a.workers.Load() {
		if w.state.Load() == 0 && w.state.CompareAndSwap(0, 1) {
			return w
		}
	}
	w := &worker[T]{arena: a}
	w.state.Store(1)
	a.mu.Lock()
	old := *a.workers.Load()
	next := make([]*worker[T], len(old)+1)
	copy(next, old)
	w.id = int64(len(old))
	next[len(old)] = w
	a.workers.Store(&next)
	a.mu.Unlock()
	return w
}

// Unpin leaves the epoch and returns the worker to the pool. No
// pointer obtained from arena-managed nodes may be dereferenced after
// Unpin. No-op on the zero Guard.
func (g Guard[T]) Unpin() {
	w := g.w
	if w == nil {
		return
	}
	w.state.Store(0)
	w.arena.pool.Put(w)
}

// Get returns a class-0 node; see GetClass.
func (g Guard[T]) Get() *T { return g.GetClass(0) }

// GetClass returns a node of size class c: from the class's free list,
// from a limbo bucket whose grace period expired, or carved from the
// class's current slab. The node's contents are whatever its previous
// life left there — the caller re-initializes every field before
// publishing it.
func (g Guard[T]) GetClass(c int) *T {
	w := g.w
	if len(w.free[c]) == 0 {
		w.scavenge()
	}
	w.statAllocs.Add(1)
	if p := w.arena.probes; obs.On(p) {
		p.Inc(obs.EvNodeAlloc, w.id)
	}
	if n := len(w.free[c]); n > 0 {
		p := w.free[c][n-1]
		w.free[c][n-1] = nil
		w.free[c] = w.free[c][:n-1]
		return p
	}
	if w.used[c] == len(w.slab[c]) {
		w.slab[c] = make([]T, w.arena.slabSize)
		w.used[c] = 0
		w.statSlabs.Add(1)
	}
	p := &w.slab[c][w.used[c]]
	w.used[c]++
	return p
}

// scavenge moves every limbo bucket whose grace period has expired
// (bucket epoch + 2 <= global epoch) onto the free lists.
func (w *worker[T]) scavenge() {
	ge := w.arena.epoch.Load()
	for i := range w.limbo {
		b := &w.limbo[i]
		if b.total() > 0 && b.epoch+2 <= ge {
			w.recycleBucket(b)
		}
	}
}

// recycleBucket empties one expired bucket onto the per-class free
// lists.
func (w *worker[T]) recycleBucket(b *limbo[T]) {
	n := 0
	for c, ns := range &b.nodes {
		if len(ns) == 0 {
			continue
		}
		w.free[c] = append(w.free[c], ns...)
		n += len(ns)
		clear(ns)
		b.nodes[c] = ns[:0]
	}
	w.statRecycled.Add(uint64(n))
	if p := w.arena.probes; obs.On(p) {
		p.Inc(obs.EvNodeRecycle, w.id)
	}
}

// Retire queues a physically-unlinked node for reclamation after the
// grace period. The caller must have made the node unreachable for new
// traversals (the unlink) before retiring it; pinned traversals that
// may still stand on it are what the grace period protects. Retire
// must not be called twice for one node — the lists' locking protocol
// guarantees each node is unlinked exactly once.
//
// The node is bucketed by the global epoch read here, NOT the guard's
// pin epoch: a reader that could hold the node pinned before the
// unlink, so its pin epoch is at most this read (epochs are
// monotonic), and a reader pinned at e blocks the e+1 → e+2 advance
// the bucket's recycling waits for. Bucketing by the (possibly older)
// pin epoch would recycle one epoch too early for readers pinned
// after the global moved past the retirer.
func (g Guard[T]) Retire(p *T) { g.RetireClass(p, 0) }

// RetireClass queues a node of size class c for reclamation; the class
// must match the one the node was allocated with, so the grace-period
// expiry returns it to the free list GetClass(c) draws from. See
// Retire for the epoch-bucketing argument.
func (g Guard[T]) RetireClass(p *T, c int) {
	w := g.w
	e := w.arena.epoch.Load()
	b := &w.limbo[e%limboBuckets]
	if b.epoch != e {
		// The bucket holds nodes from epoch b.epoch <= e-3 (the ring
		// reuses a slot every third epoch), so their grace period has
		// long expired: recycle them as we rotate the bucket to e.
		if b.total() > 0 {
			w.recycleBucket(b)
		}
		b.epoch = e
	}
	b.nodes[c] = append(b.nodes[c], p)
	w.statRetired.Add(1)
	if pr := w.arena.probes; obs.On(pr) {
		pr.Inc(obs.EvLimboRetire, w.id)
	}
	w.retires++
	if w.retires >= w.arena.advanceEvery {
		w.retires = 0
		w.arena.tryAdvance()
	}
}

// Free returns a node that was never published (a failed insert's
// speculative node) straight to the free list: nothing can hold a
// pointer to it, so it needs no grace period.
func (g Guard[T]) Free(p *T) { g.FreeClass(p, 0) }

// FreeClass is Free for a node of size class c.
func (g Guard[T]) FreeClass(p *T, c int) {
	g.w.free[c] = append(g.w.free[c], p)
}

// tryAdvance attempts one global epoch advance e → e+1. The advance is
// refused while any worker is pinned at an epoch other than e: a
// worker still at e-1 must not see the epoch reach e+1, or the bucket
// it could be reading from (retired at e-1) would become recyclable
// (e-1+2 = e+1) under its feet.
func (a *Arena[T]) tryAdvance() bool {
	e := a.epoch.Load()
	if fp := a.fps; failpoint.On(fp) {
		if fp.Fail(failpoint.SiteEpochAdvance, int64(e)) {
			return false
		}
	}
	for _, w := range *a.workers.Load() {
		if st := w.state.Load(); st > 1 && st>>1 != e {
			return false
		}
	}
	if !a.epoch.CompareAndSwap(e, e+1) {
		return false
	}
	if p := a.probes; obs.On(p) {
		p.Inc(obs.EvEpochAdvance, int64(e))
	}
	return true
}

// Stats is a point-in-time aggregate view of an arena, exact at
// quiescence (per-counter atomic reads, like obs.Snapshot).
type Stats struct {
	// Epoch is the current global epoch.
	Epoch uint64
	// Workers is the number of registered workers.
	Workers int
	// Allocs counts nodes handed out by Get (slab-carved + recycled).
	Allocs uint64
	// Slabs counts slabs carved from the Go heap.
	Slabs uint64
	// Retired counts nodes retired into limbo.
	Retired uint64
	// Recycled counts nodes whose grace period expired and that moved
	// back onto a free list. Retired - Recycled is the limbo backlog.
	Recycled uint64
}

// Stats sums the per-worker tallies.
func (a *Arena[T]) Stats() Stats {
	s := Stats{Epoch: a.epoch.Load()}
	ws := *a.workers.Load()
	s.Workers = len(ws)
	for _, w := range ws {
		s.Allocs += w.statAllocs.Load()
		s.Slabs += w.statSlabs.Load()
		s.Retired += w.statRetired.Load()
		s.Recycled += w.statRecycled.Load()
	}
	return s
}
