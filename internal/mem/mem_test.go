package mem

import (
	"testing"

	"listset/internal/failpoint"
	"listset/internal/obs"
)

// tnode stands in for a list node: one plain field the recycling
// rewrites.
type tnode struct {
	val int64
}

// churn performs one full allocate-retire cycle on its own pin, which
// is the most epoch progress a single goroutine can make per pin (an
// advance needs every pinned worker at the current epoch, so a worker
// can witness at most one advance per pin).
func churn(a *Arena[tnode]) {
	g := a.Pin()
	p := g.Get()
	p.val = -1
	g.Retire(p)
	g.Unpin()
}

func TestRecycleRoundTrip(t *testing.T) {
	a := New[tnode](Options{SlabSize: 4, AdvanceEvery: 1})
	g := a.Pin()
	p1 := g.Get()
	p1.val = 42
	g.Retire(p1)
	g.Unpin()

	// Drive epochs forward until the grace period expires and p1 is
	// recycled back out of Get.
	seen := false
	for i := 0; i < 100 && !seen; i++ {
		g := a.Pin()
		p := g.Get()
		if p == p1 {
			seen = true
		}
		g.Retire(p)
		g.Unpin()
	}
	if !seen {
		t.Fatalf("retired node was never recycled: %+v", a.Stats())
	}
	st := a.Stats()
	if st.Recycled == 0 {
		t.Errorf("Stats.Recycled = 0 after observed reuse")
	}
	if st.Epoch < 3 {
		t.Errorf("Stats.Epoch = %d, want >= 3 after recycling", st.Epoch)
	}
}

func TestRecycleWaitsTwoEpochs(t *testing.T) {
	a := New[tnode](Options{AdvanceEvery: 1})
	e0 := a.Stats().Epoch

	g := a.Pin()
	p := g.Get()
	g.Retire(p) // retired at e0: recyclable only once the epoch is e0+2
	g.Unpin()

	if st := a.Stats(); st.Recycled != 0 {
		t.Fatalf("node recycled at epoch %d, %d epochs before its grace period expired", st.Epoch, e0+2-st.Epoch)
	}
	churn(a) // advances to e0+1 at most
	churn(a) // advances to e0+2; p's bucket expires here
	churn(a) // next Get may scavenge it
	st := a.Stats()
	if st.Epoch < e0+2 {
		t.Fatalf("epoch %d after three churn cycles, want >= %d", st.Epoch, e0+2)
	}
	if st.Recycled == 0 {
		t.Errorf("nothing recycled at epoch %d though the first retire's grace period expired", st.Epoch)
	}
}

func TestPinBlocksAdvanceAndRecycle(t *testing.T) {
	a := New[tnode](Options{AdvanceEvery: 1})
	e0 := a.Stats().Epoch

	// Park one pin at e0 (a second worker does the churning; the
	// arena serves any number of concurrent pins per goroutine).
	parked := a.Pin()
	for i := 0; i < 50; i++ {
		churn(a)
	}
	st := a.Stats()
	if st.Epoch > e0+1 {
		t.Errorf("epoch advanced to %d past a worker pinned at %d (max legal %d)", st.Epoch, e0, e0+1)
	}
	if st.Recycled != 0 {
		t.Errorf("%d nodes recycled while a pin from epoch %d was live", st.Recycled, e0)
	}

	// Releasing the pin unblocks the world.
	parked.Unpin()
	for i := 0; i < 50; i++ {
		churn(a)
	}
	st = a.Stats()
	if st.Epoch < e0+2 {
		t.Errorf("epoch %d after unpin and churn, want >= %d", st.Epoch, e0+2)
	}
	if st.Recycled == 0 {
		t.Errorf("nothing recycled after the blocking pin released")
	}
}

func TestFreeSkipsGracePeriod(t *testing.T) {
	a := New[tnode](Options{})
	g := a.Pin()
	defer g.Unpin()
	p := g.Get()
	g.Free(p) // never published: no grace period needed
	if q := g.Get(); q != p {
		t.Errorf("Get after Free returned a different node (%p, want %p)", q, p)
	}
}

func TestSlabCarving(t *testing.T) {
	a := New[tnode](Options{SlabSize: 8})
	g := a.Pin()
	defer g.Unpin()
	for i := 0; i < 20; i++ {
		g.Get()
	}
	st := a.Stats()
	if st.Allocs != 20 {
		t.Errorf("Stats.Allocs = %d, want 20", st.Allocs)
	}
	if st.Slabs != 3 {
		t.Errorf("Stats.Slabs = %d, want 3 (20 nodes / slab of 8)", st.Slabs)
	}
}

func TestWorkerReuseAcrossPins(t *testing.T) {
	a := New[tnode](Options{})
	for i := 0; i < 200; i++ {
		g := a.Pin()
		g.Free(g.Get())
		g.Unpin()
	}
	// Sequential pins reuse one worker via the pool (or reclaim it
	// from the registry if the GC cleared the pool); growth would mean
	// leaked worker state.
	if st := a.Stats(); st.Workers > 2 {
		t.Errorf("Stats.Workers = %d after sequential pins, want 1 (2 if the GC intervened)", st.Workers)
	}
}

func TestZeroGuardIsInert(t *testing.T) {
	var a *Arena[tnode]
	g := a.Pin()
	if g.Active() {
		t.Fatal("nil arena produced an active guard")
	}
	g.Unpin() // must not panic
}

func TestProbesAndFailpoint(t *testing.T) {
	a := New[tnode](Options{AdvanceEvery: 1})
	p := obs.NewProbes()
	a.SetProbes(p)
	fps := failpoint.NewSet()
	a.SetFailpoints(fps)

	// Probability-1 advance failure freezes the epoch (and therefore
	// recycling) but nothing else.
	if err := fps.Arm(failpoint.Scenario{Site: failpoint.SiteEpochAdvance, Action: failpoint.ActFail, Probability: 1}); err != nil {
		t.Fatal(err)
	}
	e0 := a.Stats().Epoch
	for i := 0; i < 20; i++ {
		churn(a)
	}
	st := a.Stats()
	if st.Epoch != e0 {
		t.Errorf("epoch advanced to %d under a probability-1 advance failpoint", st.Epoch)
	}
	if st.Recycled != 0 {
		t.Errorf("%d nodes recycled with the epoch frozen", st.Recycled)
	}

	fps.Disarm(failpoint.SiteEpochAdvance)
	for i := 0; i < 20; i++ {
		churn(a)
	}
	if st := a.Stats(); st.Recycled == 0 {
		t.Errorf("nothing recycled after disarming the advance failpoint")
	}

	snap := p.Snapshot()
	for _, ev := range []obs.Event{obs.EvNodeAlloc, obs.EvLimboRetire, obs.EvEpochAdvance, obs.EvNodeRecycle} {
		if snap[ev] == 0 {
			t.Errorf("probe %s = 0 after churn", ev)
		}
	}
}

func TestStatsConservation(t *testing.T) {
	a := New[tnode](Options{SlabSize: 16, AdvanceEvery: 2})
	for i := 0; i < 500; i++ {
		churn(a)
	}
	st := a.Stats()
	if st.Recycled > st.Retired {
		t.Errorf("Recycled %d > Retired %d", st.Recycled, st.Retired)
	}
	// Every Get was served by a slab slot or a recycled node; slabs
	// provide Slabs*16 slots and recycling provides Recycled nodes.
	if max := st.Slabs*16 + st.Recycled; st.Allocs > max {
		t.Errorf("Allocs %d exceeds slab capacity + recycled = %d", st.Allocs, max)
	}
}
