package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceSharedSlots is the package-level model of the lists' usage,
// shaped so the race detector checks the reclamation happens-before
// chain directly: writers publish arena nodes into shared slots, swap
// them out (the "unlink") and retire them; readers dereference the
// published nodes' plain fields under a pin. If recycling ever
// re-initializes a node before every possible reader unpinned, the
// detector reports the plain-field write/read pair.
func TestRaceSharedSlots(t *testing.T) {
	const slots = 16
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	a := New[tnode](Options{SlabSize: 32, AdvanceEvery: 4})
	var shared [slots]atomic.Pointer[tnode]

	var wg sync.WaitGroup
	workers := 4
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				slot := &shared[(seed+i)%slots]
				g := a.Pin()
				if i%2 == 0 {
					// Writer: publish a fresh node, unlink the old
					// one, retire it.
					n := g.Get()
					n.val = int64(seed*iters + i)
					if old := slot.Swap(n); old != nil {
						g.Retire(old)
					}
				} else {
					// Reader: wait-free dereference of whatever is
					// published, valid for exactly the pin's duration.
					if p := slot.Load(); p != nil && p.val < 0 {
						t.Errorf("read torn/recycled value %d", p.val)
					}
				}
				g.Unpin()
				if i%1024 == 0 {
					runtime.Gosched()
				}
			}
		}(wkr)
	}
	wg.Wait()

	st := a.Stats()
	if st.Recycled == 0 {
		t.Errorf("stress run recycled nothing (epoch %d, retired %d): the reclamation path went unexercised", st.Epoch, st.Retired)
	}
	if st.Recycled > st.Retired {
		t.Errorf("Recycled %d > Retired %d", st.Recycled, st.Retired)
	}
}

// TestRacePinChurn hammers the worker claim/release protocol: many
// goroutines pinning and unpinning with no payload, so pool reuse and
// the registry-scan claim path interleave under the race detector.
func TestRacePinChurn(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	a := New[tnode](Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g := a.Pin()
				g.Free(g.Get())
				g.Unpin()
			}
		}()
	}
	wg.Wait()
	if st := a.Stats(); st.Workers > 8 {
		t.Errorf("Stats.Workers = %d with 8 goroutines: workers leaked past the pool/registry reclaim", st.Workers)
	}
}
