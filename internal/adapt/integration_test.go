package adapt

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"listset/internal/obs"
	"listset/internal/shard"
)

// The shard façade must satisfy the controller's actuator surface
// structurally — this assertion breaks the build if either side
// drifts.
var _ rebalancer = (*shard.Sharded)(nil)

// mutexSet is a minimal thread-safe backing set for the integration
// test (the real lists live above this package's import line).
type mutexSet struct {
	mu   sync.Mutex
	keys map[int64]bool
}

func newMutexSet() shard.Set { return &mutexSet{keys: map[int64]bool{}} }

func (m *mutexSet) Insert(v int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.keys[v] {
		return false
	}
	m.keys[v] = true
	return true
}

func (m *mutexSet) Remove(v int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.keys[v] {
		return false
	}
	delete(m.keys, v)
	return true
}

func (m *mutexSet) Contains(v int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.keys[v]
}

func (m *mutexSet) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.keys)
}

func (m *mutexSet) Snapshot() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.keys))
	for k := range m.keys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestControllerRebalancesRealSharded runs the whole loop against the
// real façade: hotspot traffic on one shard must drive a quantile
// rebalance that visibly moves the boundaries, without disturbing the
// set's contents.
func TestControllerRebalancesRealSharded(t *testing.T) {
	const keyRange = 4096
	s := shard.NewRange(4, 0, keyRange, newMutexSet)
	p := obs.NewProbes()
	var ops atomic.Uint64
	c := New(s, p, ops.Load, Config{Rebalance: true, HotStreak: 2, Cooldown: 3})

	// Seed contents across the whole range so the migration has keys
	// to move everywhere.
	for k := int64(0); k < keyRange; k += 4 {
		s.Insert(k)
	}
	want := s.Len()
	before := s.Boundaries()

	// Hot phase: hammer shard 0 with point ops (loads accrue via the
	// façade's own routing) and mark the intervals contended.
	for tick := 0; tick < 4; tick++ {
		for i := 0; i < 4000; i++ {
			s.Contains(int64(i % 512)) // shard 0 only
		}
		ops.Add(4000)
		for i := 0; i < 800; i++ {
			p.Inc(obs.EvTryLockContended, int64(i%512))
		}
		c.tick()
	}
	st := c.snapshotStats()
	if st.Rebalances == 0 {
		t.Fatal("controller never rebalanced the real façade under hotspot load")
	}
	after := s.Boundaries()
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("boundaries unchanged after rebalance: %v", after)
	}
	// The hot prefix [0, 512) must own more shards than before.
	if after[1] >= before[1] {
		t.Fatalf("bound[1] = %d, want pulled below %d toward the hot window", after[1], before[1])
	}
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d after migration, want %d", got, want)
	}
	snap := s.Snapshot()
	if len(snap) != want {
		t.Fatalf("Snapshot = %d keys, want %d", len(snap), want)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatal("Snapshot not sorted after migration")
		}
	}
	for k := int64(0); k < keyRange; k++ {
		if got, wantK := s.Contains(k), k%4 == 0; got != wantK {
			t.Fatalf("Contains(%d) = %v after migration, want %v", k, got, wantK)
		}
	}
}
