package adapt

// quantileBounds computes the weighted-quantile repartition: given the
// current shard lower bounds over the focus range [lo, hi) and the
// operations each shard served this interval, place new boundaries so
// every shard would have carried ~1/S of the observed load. Load is
// assumed uniform *within* a shard (the histogram cannot see finer),
// so each new boundary is a linear interpolation inside the old shard
// whose cumulative weight crosses the quantile.
//
// Returns nil when no useful split exists: zero total load, or the
// skew is so extreme the interpolated bounds collapse (each boundary
// is forced at least one key past its predecessor, and a table that
// cannot fit inside [lo, hi) that way is rejected rather than
// clamped into a partition the trigger would immediately re-fire on).
func quantileBounds(cur []int64, lo, hi int64, loads []uint64) []int64 {
	s := len(cur)
	if s < 2 || len(loads) != s || hi <= lo {
		return nil
	}
	var total uint64
	for _, w := range loads {
		total += w
	}
	if total == 0 {
		return nil
	}
	// Old shard i spans [edge(i), edge(i+1)) clipped to the focus
	// range; shard 0's conceptual -inf edge is the focus lower bound
	// (keys outside the focus clamp to the edge shards and are counted
	// against them — close enough for weights).
	edge := func(i int) int64 {
		if i <= 0 {
			return lo
		}
		if i >= s {
			return hi
		}
		b := cur[i]
		if b < lo {
			return lo
		}
		if b > hi {
			return hi
		}
		return b
	}

	out := make([]int64, s)
	out[0] = lo
	target := float64(total) / float64(s)
	var acc float64 // cumulative load below the current position
	i := 0          // old shard whose span we are consuming
	for j := 1; j < s; j++ {
		want := target * float64(j)
		for i < s-1 && acc+float64(loads[i]) < want {
			acc += float64(loads[i])
			i++
		}
		span := float64(edge(i+1) - edge(i))
		w := float64(loads[i])
		var pos int64
		if w <= 0 || span <= 0 {
			pos = edge(i)
		} else {
			pos = edge(i) + int64((want-acc)/w*span)
		}
		// Boundaries must strictly increase; push forward at minimum
		// key width when the interpolation collapses.
		if pos <= out[j-1] {
			pos = out[j-1] + 1
		}
		if pos >= hi {
			return nil // cannot fit the remaining shards into the range
		}
		out[j] = pos
	}
	// Reject a no-op split: identical to the current table.
	same := true
	for j := 1; j < s; j++ {
		if out[j] != cur[j] {
			same = false
			break
		}
	}
	if same {
		return nil
	}
	return out
}
