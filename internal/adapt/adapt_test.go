package adapt

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"listset/internal/obs"
	"listset/internal/trylock"
)

// fakeShard is a minimal rebalancer + RetryBudgeted the state-machine
// tests drive: the test feeds per-interval loads and reads back what
// the controller actuated.
type fakeShard struct {
	bounds     []int64
	lo, hi     int64
	cum        []uint64 // cumulative per-shard loads (test appends)
	backoffs   []*trylock.Backoff
	parallel   bool
	budget     int
	rebalanced [][]int64
	loadStats  bool
	armed      bool
}

func newFakeShard(shards int, lo, hi int64) *fakeShard {
	f := &fakeShard{lo: lo, hi: hi, cum: make([]uint64, shards), parallel: true}
	span := (hi - lo) / int64(shards)
	for i := 0; i < shards; i++ {
		f.bounds = append(f.bounds, lo+int64(i)*span)
	}
	return f
}

func (f *fakeShard) Shards() int                            { return len(f.cum) }
func (f *fakeShard) Boundaries() []int64                    { return append([]int64(nil), f.bounds...) }
func (f *fakeShard) FocusRange() (int64, int64)             { return f.lo, f.hi }
func (f *fakeShard) EnableRebalance()                       { f.armed = true }
func (f *fakeShard) EnableLoadStats()                       { f.loadStats = true }
func (f *fakeShard) SetShardBackoffs(bs []*trylock.Backoff) { f.backoffs = bs }
func (f *fakeShard) SetBatchParallel(on bool)               { f.parallel = on }
func (f *fakeShard) BatchParallel() bool                    { return f.parallel }
func (f *fakeShard) SetRetryBudget(k int)                   { f.budget = k }
func (f *fakeShard) RetryStats() obs.RetryStats             { return obs.RetryStats{} }

func (f *fakeShard) LoadCounts() []uint64 { return append([]uint64(nil), f.cum...) }

func (f *fakeShard) Rebalance(bounds []int64) (int, error) {
	f.rebalanced = append(f.rebalanced, append([]int64(nil), bounds...))
	f.bounds = append([]int64(nil), bounds...)
	return 42, nil
}

// harness bundles a controller with hand-cranked signal sources.
type harness struct {
	c      *Controller
	p      *obs.Probes
	ops    atomic.Uint64
	f      *fakeShard
	budget *int
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{p: obs.NewProbes(), f: newFakeShard(4, 0, 4000)}
	h.c = New(h.f, h.p, h.ops.Load, cfg)
	if h.f.budget != h.c.cfg.BudgetBase {
		t.Fatalf("New did not pre-position the budget: %d, want %d", h.f.budget, h.c.cfg.BudgetBase)
	}
	if !h.f.loadStats {
		t.Fatal("New did not enable load stats")
	}
	if len(h.f.backoffs) != 4 {
		t.Fatalf("New attached %d backoff policies, want 4", len(h.f.backoffs))
	}
	return h
}

// interval feeds one control interval's worth of signal and ticks:
// nOps operations, contention·nOps contended locks, valfail·nOps
// failed validations, and per-shard load weights.
func (h *harness) interval(contention, valfail float64, weights []uint64) {
	const nOps = 10000
	h.ops.Add(nOps)
	for i := 0; i < int(contention*nOps); i++ {
		h.p.Inc(obs.EvTryLockContended, int64(i))
	}
	for i := 0; i < int(valfail*nOps); i++ {
		h.p.Inc(obs.EvValFailSucc, int64(i))
	}
	for i, w := range weights {
		h.f.cum[i] += w
	}
	h.c.tick()
}

var uniform = []uint64{100, 100, 100, 100}

// TestAIMDStationaryConvergence is the stability property the ISSUE
// demands: on a stationary workload — any fixed contention ratio, any
// fixed load split — the AIMD loop must converge, not oscillate.
// After a transient the spin ceilings have to sit still.
func TestAIMDStationaryConvergence(t *testing.T) {
	prop := func(ratioPct uint8, hotShard uint8, skewed bool) bool {
		ratio := float64(ratioPct%100) / 100
		h := newHarness(t, Config{Rebalance: false})
		weights := append([]uint64(nil), uniform...)
		if skewed {
			weights[int(hotShard)%4] = 5000
		}
		// Transient: let the loop move as far as it wants.
		for i := 0; i < 80; i++ {
			h.interval(ratio, 0.0, weights)
		}
		// Stationary regime: every ceiling must now be a fixed point.
		var frozen [4]int32
		for i, b := range h.f.backoffs {
			frozen[i] = b.Ceiling()
		}
		for i := 0; i < 40; i++ {
			h.interval(ratio, 0.0, weights)
			for j, b := range h.f.backoffs {
				if b.Ceiling() != frozen[j] {
					t.Logf("ratio %.2f: shard %d ceiling moved %d → %d after transient", ratio, j, frozen[j], b.Ceiling())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAIMDDirection pins the loop's sign: high contention widens the
// hot shard's ceiling (and only the hot shard's), low contention
// decays it back to the default.
func TestAIMDDirection(t *testing.T) {
	h := newHarness(t, Config{})
	hot := []uint64{5000, 100, 100, 100}
	for i := 0; i < 10; i++ {
		h.interval(0.30, 0.0, hot)
	}
	if c := h.f.backoffs[0].Ceiling(); c <= trylock.DefaultMaxSpin {
		t.Fatalf("hot shard ceiling = %d after sustained contention, want > default %d", c, trylock.DefaultMaxSpin)
	}
	if c := h.f.backoffs[2].Ceiling(); c != trylock.DefaultMaxSpin {
		t.Fatalf("cold shard ceiling = %d, want untouched default %d", c, trylock.DefaultMaxSpin)
	}
	for i := 0; i < 60; i++ {
		h.interval(0.005, 0.0, uniform)
	}
	if c := h.f.backoffs[0].Ceiling(); c != trylock.DefaultMaxSpin {
		t.Fatalf("hot shard ceiling = %d after sustained quiet, want decayed to %d", c, trylock.DefaultMaxSpin)
	}
	st := h.c.snapshotStats()
	if st.BackoffWiden == 0 || st.BackoffDecay == 0 {
		t.Fatalf("stats = %+v, want both widen and decay counted", st)
	}
	// Decisions must be auditable: the widen/decay events are in the
	// probes the flight recorder taps.
	snap := h.p.Snapshot()
	if snap[obs.EvAdaptBackoffWiden] == 0 || snap[obs.EvAdaptBackoffDecay] == 0 {
		t.Fatal("adapt backoff events not emitted to probes")
	}
}

// TestBudgetStormAndRecovery: a validation-failure storm must walk the
// retry budget down to the floor; calm must walk it back to base.
func TestBudgetStormAndRecovery(t *testing.T) {
	h := newHarness(t, Config{BudgetBase: 32, BudgetMin: 4})
	for i := 0; i < 6; i++ {
		h.interval(0.05, 0.60, uniform)
	}
	if h.f.budget != 4 {
		t.Fatalf("budget = %d after storm, want floor 4", h.f.budget)
	}
	for i := 0; i < 6; i++ {
		h.interval(0.05, 0.0, uniform)
	}
	if h.f.budget != 32 {
		t.Fatalf("budget = %d after recovery, want base 32", h.f.budget)
	}
	snap := h.p.Snapshot()
	if snap[obs.EvAdaptBudgetTighten] == 0 || snap[obs.EvAdaptBudgetRelax] == 0 {
		t.Fatal("budget adaptation events not emitted")
	}
}

// TestSheddingTripsAndRecovers: sustained overload must serialize
// batches, pin ceilings and floor the budget — then restore all three
// after the recovery streak.
func TestSheddingTripsAndRecovers(t *testing.T) {
	h := newHarness(t, Config{ShedRecover: 3})
	h.interval(0.80, 0.0, uniform)
	if !h.f.parallel {
		t.Fatal("shed tripped after a single hot interval; needs two")
	}
	h.interval(0.80, 0.0, uniform)
	if h.f.parallel {
		t.Fatal("batches still parallel under overload")
	}
	if h.f.budget != h.c.cfg.BudgetMin {
		t.Fatalf("budget = %d under shed, want floor %d", h.f.budget, h.c.cfg.BudgetMin)
	}
	for _, b := range h.f.backoffs {
		if b.Ceiling() != trylock.CeilingLimit {
			t.Fatalf("ceiling = %d under shed, want pinned at %d", b.Ceiling(), trylock.CeilingLimit)
		}
	}
	for i := 0; i < 3; i++ {
		h.interval(0.01, 0.0, uniform)
	}
	if !h.f.parallel {
		t.Fatal("batch parallelism not restored after recovery")
	}
	if h.f.budget != h.c.cfg.BudgetBase {
		t.Fatalf("budget = %d after unshed, want base %d", h.f.budget, h.c.cfg.BudgetBase)
	}
	st := h.c.snapshotStats()
	if st.Sheds != 1 || st.Unsheds != 1 {
		t.Fatalf("sheds/unsheds = %d/%d, want 1/1", st.Sheds, st.Unsheds)
	}
	snap := h.p.Snapshot()
	if snap[obs.EvAdaptShed] != 1 || snap[obs.EvAdaptUnshed] != 1 {
		t.Fatal("shed/unshed events not emitted")
	}
}

// TestRebalanceTriggerAndCooldown: sustained skew arms the boundary
// actuator after HotStreak intervals, exactly once per cooldown.
func TestRebalanceTriggerAndCooldown(t *testing.T) {
	h := newHarness(t, Config{Rebalance: true, HotStreak: 3, Cooldown: 5})
	if !h.f.armed {
		t.Fatal("New with Rebalance did not arm the façade")
	}
	skew := []uint64{3700, 100, 100, 100}
	for i := 0; i < 3; i++ {
		if len(h.f.rebalanced) != 0 {
			t.Fatalf("rebalanced after only %d hot intervals", i)
		}
		h.interval(0.05, 0.0, skew)
	}
	if len(h.f.rebalanced) != 1 {
		t.Fatalf("rebalances = %d after the streak, want 1", len(h.f.rebalanced))
	}
	nb := h.f.rebalanced[0]
	// The quantile split must shrink the hot shard: its upper bound
	// moves down toward the load mass.
	if nb[1] >= 1000 {
		t.Fatalf("new bound[1] = %d, want < 1000 (hot shard 0 must shrink)", nb[1])
	}
	for i := 1; i < len(nb); i++ {
		if nb[i] <= nb[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", nb)
		}
	}
	// Cooldown: five more skewed intervals must not re-trigger.
	for i := 0; i < 5; i++ {
		h.interval(0.05, 0.0, skew)
	}
	if len(h.f.rebalanced) != 1 {
		t.Fatalf("rebalances = %d during cooldown, want still 1", len(h.f.rebalanced))
	}
	st := h.c.snapshotStats()
	if st.Rebalances != 1 || st.KeysMigrated != 42 {
		t.Fatalf("stats rebalances/keys = %d/%d, want 1/42", st.Rebalances, st.KeysMigrated)
	}
	if h.p.Snapshot()[obs.EvAdaptRebalance] != 1 {
		t.Fatal("rebalance event not emitted")
	}
}

// TestStartStop exercises the timer path end to end (everything else
// drives tick() directly).
func TestStartStop(t *testing.T) {
	h := newHarness(t, Config{Interval: time.Millisecond})
	h.c.Start()
	for i := 0; i < 50; i++ {
		h.ops.Add(100)
		time.Sleep(time.Millisecond)
	}
	st := h.c.Stop()
	if st.Ticks == 0 {
		t.Fatal("controller never ticked")
	}
	if st.FinalBudget != h.c.cfg.BudgetBase {
		t.Fatalf("FinalBudget = %d, want %d", st.FinalBudget, h.c.cfg.BudgetBase)
	}
	if len(st.FinalCeilings) != 4 {
		t.Fatalf("FinalCeilings = %v, want 4 entries", st.FinalCeilings)
	}
}

// TestPlainSetGetsSinglePolicy: a non-sharded Tunable set still gets
// the backoff actuator, as one set-wide policy.
func TestPlainSetGetsSinglePolicy(t *testing.T) {
	set := &tunableSet{}
	p := obs.NewProbes()
	var ops atomic.Uint64
	c := New(set, p, ops.Load, Config{})
	if set.b == nil {
		t.Fatal("controller did not attach a policy to a plain Tunable set")
	}
	if len(c.backoffs) != 1 {
		t.Fatalf("controller holds %d policies for a plain set, want 1", len(c.backoffs))
	}
	// High contention with no load histogram: the single policy widens.
	ops.Add(10000)
	for i := 0; i < 3000; i++ {
		p.Inc(obs.EvTryLockContended, int64(i))
	}
	c.tick()
	if set.b.Ceiling() <= trylock.DefaultMaxSpin {
		t.Fatalf("plain-set ceiling = %d, want widened past %d", set.b.Ceiling(), trylock.DefaultMaxSpin)
	}
}

type tunableSet struct{ b *trylock.Backoff }

func (s *tunableSet) SetBackoff(b *trylock.Backoff) { s.b = b }
