// Package adapt is the contention-control feedback loop that closes
// the repository's observability layer onto its tuning knobs. The obs
// probes count which schedules the lists reject — contended try-lock
// acquisitions, failed validations, escalated retries — and this
// package samples those counters every control interval and drives
// three actuators in response (DESIGN.md §14):
//
//   - per-shard try-lock backoff: AIMD on each shard's spin ceiling
//     (additive widen for above-fair-share shards while the global
//     contended-acquisition ratio is high, multiplicative decay when
//     it is low), through the per-instance trylock.Backoff policies
//     PR 9's satellite fix introduced;
//   - retry budget: tighten the prev→head→backoff escalation ladder
//     under a validation-failure storm, relax it back to the
//     configured baseline when the storm passes;
//   - shard boundaries: when the per-shard load histogram stays skewed
//     for HotStreak intervals, repartition along the weighted quantile
//     of the observed load (shard.Rebalance's online migration).
//
// On top of the loops sits overload shedding: when the contended ratio
// crosses ShedContention the controller forces batch serialization,
// pins ceilings at the limit and floors the retry budget — degrading
// throughput deliberately so the harness watchdog never has to fire —
// and undoes all of it after ShedRecover quiet intervals.
//
// Every decision is emitted as an obs event (EvAdapt*), so the flight
// recorder orders adaptations against the contention that caused them
// and `tracecat -dump` audits the whole control history.
//
// The controller is deliberately a single goroutine ticking a pure
// state machine: tick() reads counter deltas and writes actuator
// values, with no locks shared with the data path beyond the atomics
// the actuators already are. Stability comes from hysteresis — the
// widen and decay thresholds are separated, so a stationary workload
// settles into the dead band instead of oscillating (the property
// TestAIMDStationaryConvergence pins).
package adapt

import (
	"time"

	"listset/internal/obs"
	"listset/internal/trylock"
)

// Config tunes the controller. The zero value of any field means its
// default; Config{} is a fully usable configuration.
type Config struct {
	// Interval is the control period. Default 50ms: long enough that
	// counter deltas are statistically meaningful, short enough to
	// react within a benchmark's measured window.
	Interval time.Duration

	// ContentionHigh and ContentionLow bound the hysteresis band on
	// the contended-acquisition ratio (contended try-locks per
	// operation). Above High, hot shards' ceilings widen; below Low,
	// all ceilings decay. Defaults 0.10 and 0.02.
	ContentionHigh float64
	ContentionLow  float64
	// CeilingStep is the additive spin-ceiling increase per widen.
	// Default 512.
	CeilingStep int32

	// BudgetBase is the retry budget the controller starts from and
	// relaxes back to; BudgetMin is the floor tightening stops at.
	// Defaults 32 and 4. (The max is the base: the controller never
	// loosens the ladder past what the operator configured.)
	BudgetBase int
	BudgetMin  int
	// ValFailHigh and ValFailLow bound the hysteresis band on the
	// validation-failure ratio (failed validations + failed CASes per
	// operation). Defaults 0.25 and 0.05.
	ValFailHigh float64
	ValFailLow  float64

	// Rebalance enables the shard-boundary actuator (requires a set
	// with the shard façade's rebalancing surface).
	Rebalance bool
	// HotFactor is the skew trigger: an interval is "hot" when the
	// busiest shard carries more than HotFactor times its fair share
	// of the routed operations. Default 2.0.
	HotFactor float64
	// HotStreak is how many consecutive hot intervals arm a
	// rebalance. Default 3.
	HotStreak int
	// Cooldown is how many intervals after a rebalance the trigger
	// stays disarmed, giving the migrated partition time to show in
	// the load histogram. Default 10.
	Cooldown int

	// ShedContention is the contended-acquisition ratio that trips
	// overload shedding (two consecutive intervals). Default 0.50.
	ShedContention float64
	// ShedRecover is how many intervals below ContentionHigh end
	// shedding. Default 5.
	ShedRecover int
}

// WithDefaults returns the configuration with every zero field
// replaced by its documented default — the exact Config New runs.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.ContentionHigh == 0 {
		c.ContentionHigh = 0.10
	}
	if c.ContentionLow == 0 {
		c.ContentionLow = 0.02
	}
	if c.CeilingStep == 0 {
		c.CeilingStep = 512
	}
	if c.BudgetBase == 0 {
		c.BudgetBase = 32
	}
	if c.BudgetMin == 0 {
		c.BudgetMin = 4
	}
	if c.ValFailHigh == 0 {
		c.ValFailHigh = 0.25
	}
	if c.ValFailLow == 0 {
		c.ValFailLow = 0.05
	}
	if c.HotFactor == 0 {
		c.HotFactor = 2.0
	}
	if c.HotStreak == 0 {
		c.HotStreak = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10
	}
	if c.ShedContention == 0 {
		c.ShedContention = 0.50
	}
	if c.ShedRecover == 0 {
		c.ShedRecover = 5
	}
	return c
}

// Stats is the controller's decision tally, returned by Stop and
// rendered into the benchmark report's "adapt" section.
type Stats struct {
	Ticks         uint64 `json:"ticks"`
	BackoffWiden  uint64 `json:"backoff_widen"`
	BackoffDecay  uint64 `json:"backoff_decay"`
	BudgetTighten uint64 `json:"budget_tighten"`
	BudgetRelax   uint64 `json:"budget_relax"`
	Rebalances    uint64 `json:"rebalances"`
	KeysMigrated  uint64 `json:"keys_migrated"`
	Sheds         uint64 `json:"sheds"`
	Unsheds       uint64 `json:"unsheds"`
	// FinalBudget and FinalCeilings are the actuator positions at
	// Stop, for post-run inspection.
	FinalBudget   int     `json:"final_budget"`
	FinalCeilings []int32 `json:"final_ceilings,omitempty"`
	Shedding      bool    `json:"shedding"`
}

// rebalancer is the shard-façade surface the boundary and per-shard
// actuators need; *shard.Sharded satisfies it. Declared here so the
// controller works against any set exposing the same shape without an
// import cycle.
type rebalancer interface {
	Shards() int
	Boundaries() []int64
	FocusRange() (lo, hi int64)
	EnableRebalance()
	EnableLoadStats()
	LoadCounts() []uint64
	SetShardBackoffs([]*trylock.Backoff)
	Rebalance(bounds []int64) (moved int, err error)
	SetBatchParallel(on bool)
	BatchParallel() bool
}

// Controller is one feedback loop bound to one set. Construct with
// New before the set is shared, Start it alongside the workers, Stop
// it after they drain.
type Controller struct {
	cfg    Config
	probes *obs.Probes
	ops    func() uint64 // cumulative operation count, monotone

	// Actuator surfaces (nil when the set does not support one).
	rb       obs.RetryBudgeted
	sharded  rebalancer
	backoffs []*trylock.Backoff // per shard, or one entry for plain sets

	// Tick state (single-goroutine; tests drive tick() directly).
	prev      obs.Snapshot
	prevOps   uint64
	prevLoads []uint64
	budget    int
	hotTicks  int
	cooldown  int
	hiTicks   int // consecutive intervals at/above ShedContention
	quiet     int // consecutive intervals below ContentionHigh while shedding
	shedding  bool
	wasPar    bool // batch-parallel setting to restore on unshed

	stats Stats
	stop  chan struct{}
	done  chan struct{}
}

// New binds a controller to set, discovering which actuator surfaces
// it offers, and pre-positions them (budget at BudgetBase, default
// ceilings). Must run before the set is shared: it arms the shard
// façade's load stats and, with cfg.Rebalance, its routing stripes.
// ops must return the cumulative operation count the controller
// normalizes counter deltas by (monotone, safe to call concurrently).
func New(set any, p *obs.Probes, ops func() uint64, cfg Config) *Controller {
	cfg = cfg.WithDefaults()
	c := &Controller{
		cfg:    cfg,
		probes: p,
		ops:    ops,
		budget: cfg.BudgetBase,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if rb, ok := set.(obs.RetryBudgeted); ok {
		c.rb = rb
		rb.SetRetryBudget(c.budget)
	}
	if sh, ok := set.(rebalancer); ok {
		c.sharded = sh
		sh.EnableLoadStats()
		if cfg.Rebalance {
			sh.EnableRebalance()
		}
		bs := make([]*trylock.Backoff, sh.Shards())
		for i := range bs {
			bs[i] = trylock.NewBackoff()
		}
		sh.SetShardBackoffs(bs)
		c.backoffs = bs
		c.prevLoads = make([]uint64, len(bs))
		c.wasPar = sh.BatchParallel()
	} else if b := trylock.NewBackoff(); trylock.AttachBackoff(set, b) {
		c.backoffs = []*trylock.Backoff{b}
	}
	return c
}

// Start launches the control loop.
func (c *Controller) Start() {
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.tick()
			}
		}
	}()
}

// Stop halts the loop and returns the decision tally.
func (c *Controller) Stop() Stats {
	close(c.stop)
	<-c.done
	return c.snapshotStats()
}

func (c *Controller) snapshotStats() Stats {
	st := c.stats
	st.FinalBudget = c.budget
	st.Shedding = c.shedding
	for _, b := range c.backoffs {
		st.FinalCeilings = append(st.FinalCeilings, b.Ceiling())
	}
	return st
}

// emit records a controller decision as an obs event so the flight
// recorder can order it against the contention that caused it.
func (c *Controller) emit(ev obs.Event, key int64) {
	if p := c.probes; obs.On(p) {
		p.Inc(ev, key)
	}
}

// tick runs one control interval: sample deltas, update each
// actuator. It is the whole controller; Start merely calls it on a
// timer, and the stability test calls it directly.
func (c *Controller) tick() {
	c.stats.Ticks++
	snap := c.probes.Snapshot()
	ops := c.ops()
	d := snap.Sub(c.prev)
	dOps := ops - c.prevOps
	c.prev, c.prevOps = snap, ops
	if dOps == 0 {
		return // idle interval; no signal to act on
	}

	contention := float64(d[obs.EvTryLockContended]) / float64(dOps)
	valfail := float64(d[obs.EvValFailDeleted]+d[obs.EvValFailSucc]+d[obs.EvValFailValue]+d[obs.EvCASFail]) / float64(dOps)

	loads := c.loadDeltas()
	c.adaptShedding(contention)
	if !c.shedding {
		c.adaptBackoff(contention, loads)
		c.adaptBudget(valfail)
		c.adaptBoundaries(loads)
	}
}

// adaptShedding is the overload breaker around the finer loops.
func (c *Controller) adaptShedding(contention float64) {
	if !c.shedding {
		if contention >= c.cfg.ShedContention {
			c.hiTicks++
			if c.hiTicks >= 2 {
				c.shed()
			}
		} else {
			c.hiTicks = 0
		}
		return
	}
	if contention < c.cfg.ContentionHigh {
		c.quiet++
		if c.quiet >= c.cfg.ShedRecover {
			c.unshed()
		}
	} else {
		c.quiet = 0
	}
}

// shed trips the overload state: serialize batches, pin ceilings at
// the limit (waiters sleep instead of stampeding the lock words),
// floor the retry budget (doomed ops give up their window early).
func (c *Controller) shed() {
	c.shedding = true
	c.hiTicks, c.quiet = 0, 0
	c.stats.Sheds++
	if c.sharded != nil {
		c.wasPar = c.sharded.BatchParallel()
		c.sharded.SetBatchParallel(false)
	}
	for _, b := range c.backoffs {
		b.SetCeiling(trylock.CeilingLimit)
	}
	c.setBudget(c.cfg.BudgetMin)
	c.emit(obs.EvAdaptShed, 0)
}

// unshed restores the pre-shed actuator positions; the finer loops
// take over again next tick.
func (c *Controller) unshed() {
	c.shedding = false
	c.stats.Unsheds++
	if c.sharded != nil {
		c.sharded.SetBatchParallel(c.wasPar)
	}
	for _, b := range c.backoffs {
		b.SetCeiling(trylock.DefaultMaxSpin)
	}
	c.setBudget(c.cfg.BudgetBase)
	c.emit(obs.EvAdaptUnshed, 0)
}

// adaptBackoff runs the AIMD loop on the spin ceilings. Additive
// increase targets only the shards carrying more than their fair
// share of the load (the per-shard load histogram localizes what the
// stripe heatmap can only detect); multiplicative decrease relaxes
// everyone once the contention signal clears the low-water mark.
// Between the marks: the hysteresis dead band where a stationary
// workload comes to rest.
func (c *Controller) adaptBackoff(contention float64, loads []uint64) {
	if len(c.backoffs) == 0 {
		return
	}
	switch {
	case contention > c.cfg.ContentionHigh:
		for i, b := range c.backoffs {
			if !c.aboveFairShare(loads, i) {
				continue
			}
			next := b.Ceiling() + c.cfg.CeilingStep
			b.SetCeiling(next) // clamps at CeilingLimit
			c.stats.BackoffWiden++
			c.emit(obs.EvAdaptBackoffWiden, int64(i))
		}
	case contention < c.cfg.ContentionLow:
		for i, b := range c.backoffs {
			cur := b.Ceiling()
			if cur <= trylock.DefaultMaxSpin {
				continue
			}
			next := cur * 3 / 4
			if next < trylock.DefaultMaxSpin {
				next = trylock.DefaultMaxSpin
			}
			b.SetCeiling(next)
			c.stats.BackoffDecay++
			c.emit(obs.EvAdaptBackoffDecay, int64(i))
		}
	}
}

// loadDeltas returns this interval's per-shard routed-op counts (nil
// for non-sharded sets).
func (c *Controller) loadDeltas() []uint64 {
	if c.sharded == nil {
		return nil
	}
	cur := c.sharded.LoadCounts()
	if cur == nil {
		return nil
	}
	d := make([]uint64, len(cur))
	for i := range cur {
		if i < len(c.prevLoads) && cur[i] >= c.prevLoads[i] {
			d[i] = cur[i] - c.prevLoads[i]
		}
	}
	c.prevLoads = cur
	return d
}

// aboveFairShare reports whether shard i carried more than its fair
// share this interval. With no load histogram (plain sets, disabled
// stats) every policy is eligible — the single-policy degenerate case.
func (c *Controller) aboveFairShare(loads []uint64, i int) bool {
	if len(loads) <= 1 {
		return true
	}
	var total uint64
	for _, l := range loads {
		total += l
	}
	if total == 0 {
		return false
	}
	return loads[i]*uint64(len(loads)) > total
}

// adaptBudget runs the hysteresis loop on the retry budget: halve
// toward the floor under a validation-failure storm (ops that keep
// losing re-validation should escalate and back off sooner), double
// back toward the configured baseline when the storm passes.
func (c *Controller) adaptBudget(valfail float64) {
	if c.rb == nil {
		return
	}
	switch {
	case valfail > c.cfg.ValFailHigh && c.budget > c.cfg.BudgetMin:
		next := c.budget / 2
		if next < c.cfg.BudgetMin {
			next = c.cfg.BudgetMin
		}
		c.setBudget(next)
		c.stats.BudgetTighten++
		c.emit(obs.EvAdaptBudgetTighten, int64(next))
	case valfail < c.cfg.ValFailLow && c.budget < c.cfg.BudgetBase:
		next := c.budget * 2
		if next > c.cfg.BudgetBase {
			next = c.cfg.BudgetBase
		}
		c.setBudget(next)
		c.stats.BudgetRelax++
		c.emit(obs.EvAdaptBudgetRelax, int64(next))
	}
}

func (c *Controller) setBudget(k int) {
	c.budget = k
	if c.rb != nil {
		c.rb.SetRetryBudget(k)
	}
}

// adaptBoundaries watches the load histogram for sustained skew and
// repartitions along its weighted quantile.
func (c *Controller) adaptBoundaries(loads []uint64) {
	if c.sharded == nil || !c.cfg.Rebalance || loads == nil {
		return
	}
	if c.cooldown > 0 {
		c.cooldown--
		return
	}
	if !c.skewed(loads) {
		c.hotTicks = 0
		return
	}
	c.hotTicks++
	if c.hotTicks < c.cfg.HotStreak {
		return
	}
	c.hotTicks = 0
	lo, hi := c.sharded.FocusRange()
	bounds := quantileBounds(c.sharded.Boundaries(), lo, hi, loads)
	if bounds == nil {
		return
	}
	moved, err := c.sharded.Rebalance(bounds)
	if err != nil {
		return
	}
	c.stats.Rebalances++
	c.stats.KeysMigrated += uint64(moved)
	c.cooldown = c.cfg.Cooldown
	c.emit(obs.EvAdaptRebalance, int64(moved))
	// The histogram now describes a dead partition; resample fresh.
	c.prevLoads = c.sharded.LoadCounts()
}

// skewed reports whether the busiest shard exceeds HotFactor times
// its fair share.
func (c *Controller) skewed(loads []uint64) bool {
	var total, max uint64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return false
	}
	return float64(max)*float64(len(loads)) > c.cfg.HotFactor*float64(total)
}
