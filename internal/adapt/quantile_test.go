package adapt

import (
	"testing"
	"testing/quick"
)

// TestQuantileBoundsSkew: all load on shard 0 → the new partition
// carves shard 0's old span into S pieces.
func TestQuantileBoundsSkew(t *testing.T) {
	cur := []int64{0, 1000, 2000, 3000}
	out := quantileBounds(cur, 0, 4000, []uint64{4000, 0, 0, 0})
	if out == nil {
		t.Fatal("no split for maximal skew")
	}
	// Quartiles of [0, 1000): 250, 500, 750.
	want := []int64{0, 250, 500, 750}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", out, want)
		}
	}
}

// TestQuantileBoundsUniformIsNoop: a balanced histogram reproduces the
// current partition, which the function rejects as a no-op.
func TestQuantileBoundsUniformIsNoop(t *testing.T) {
	cur := []int64{0, 1000, 2000, 3000}
	if out := quantileBounds(cur, 0, 4000, []uint64{500, 500, 500, 500}); out != nil {
		t.Fatalf("uniform load produced a split: %v", out)
	}
}

// TestQuantileBoundsDegenerate: zero load, bad shapes, empty ranges.
func TestQuantileBoundsDegenerate(t *testing.T) {
	cur := []int64{0, 1000, 2000, 3000}
	if out := quantileBounds(cur, 0, 4000, []uint64{0, 0, 0, 0}); out != nil {
		t.Fatalf("zero load produced a split: %v", out)
	}
	if out := quantileBounds(cur, 0, 4000, []uint64{1, 2}); out != nil {
		t.Fatalf("mismatched load length produced a split: %v", out)
	}
	if out := quantileBounds([]int64{0}, 0, 4000, []uint64{5}); out != nil {
		t.Fatalf("single shard produced a split: %v", out)
	}
	if out := quantileBounds(cur, 10, 10, []uint64{1, 1, 1, 1}); out != nil {
		t.Fatalf("empty focus range produced a split: %v", out)
	}
	// A range too narrow for strictly increasing bounds must be
	// rejected, not clamped into nonsense.
	if out := quantileBounds([]int64{0, 1, 2, 3}, 0, 3, []uint64{100, 0, 0, 0}); out != nil {
		t.Fatalf("unsatisfiable range produced a split: %v", out)
	}
}

// TestQuantileBoundsInvariants: for arbitrary loads the split is
// either nil or a valid boundary table — strictly increasing, inside
// the focus range, starting at its lower edge.
func TestQuantileBoundsInvariants(t *testing.T) {
	prop := func(w0, w1, w2, w3 uint16, loQ int8) bool {
		lo := int64(loQ)
		hi := lo + 4096
		cur := []int64{lo, lo + 1024, lo + 2048, lo + 3072}
		loads := []uint64{uint64(w0), uint64(w1), uint64(w2), uint64(w3)}
		out := quantileBounds(cur, lo, hi, loads)
		if out == nil {
			return true
		}
		if len(out) != len(cur) || out[0] != lo {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] || out[i] >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileThenRealRebalance closes the loop against the real
// façade math: a hot window's load histogram must produce bounds that,
// after shard.Rebalance, give the hot window more shards than before.
// (The shard side of the migration is tested in internal/shard; this
// pins that the quantile output is a *useful* input to it.)
func TestQuantileThenRealRebalance(t *testing.T) {
	// 4 shards over [0, 4000), hot window [900, 1100): spans the seam
	// at 1000 between shards 0 and 1.
	cur := []int64{0, 1000, 2000, 3000}
	loads := []uint64{1800, 1800, 200, 200}
	out := quantileBounds(cur, 0, 4000, loads)
	if out == nil {
		t.Fatal("seam skew produced no split")
	}
	// Half the load sits in each of shards 0 and 1, so the split must
	// pull boundaries 2 and 3 down into the old hot territory.
	if out[2] > 2000 || out[3] > 2600 {
		t.Fatalf("split %v did not concentrate shards on the hot span", out)
	}
}
