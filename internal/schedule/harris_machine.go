package schedule

// harrisMachine is the abstract Harris-Michael operation, analyzed (as
// in §2.3) against the *adjusted* sequential implementation: removals
// are logical marks, and traversing update operations physically unlink
// the marked nodes they encounter. All pointer updates are CAS-based:
// a failed CAS on the traversal path restarts the operation from head —
// the restart that makes the algorithm reject Figure 3.
//
// Schedule mapping (per the paper): exported events are the reads and
// writes of the operation's LAST traversal, node creations by inserts,
// and successful logical deletions by removes. A remove's best-effort
// physical unlink and any helping writes of abandoned traversals mutate
// the heap silently.
type harrisMachine struct {
	algBase
}

func (m *harrisMachine) clone() machine {
	c := *m
	return &c
}

func (m *harrisMachine) enabled(h *Heap) bool {
	// Lock-free: every live state is enabled.
	return m.pc != aDone && m.pc != aPoisoned
}

func (m *harrisMachine) step(h *Heap) *Event {
	v := m.spec.Arg
	switch m.pc {
	case aStart:
		m.beginTraversal()
		return nil

	case aReadNext:
		// contains does not help; updates check the mark next.
		next := aCheckMark
		if m.spec.Kind == OpContains {
			next = aReadVal
		}
		return m.traversalReadNext(h, next)

	case aCheckMark: // internal read of curr's mark
		if h.Deleted(m.curr) {
			m.pc = aHelpRead
		} else {
			m.pc = aReadVal
		}
		return nil

	case aHelpRead: // succ <- read(curr.next), part of the traversal
		m.tnext = h.Next(m.curr)
		m.pc = aHelpCAS
		return m.export(Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext})

	case aHelpCAS:
		// CAS(prev.next: curr -> succ); prev must also be unmarked (the
		// expected cell carries an unmarked flag).
		if h.Deleted(m.prev) || h.Next(m.prev) != m.curr {
			m.restart() // failed helping CAS restarts the operation
			return nil
		}
		h.SetNext(m.prev, m.tnext)
		ev := m.export(Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext})
		m.curr = m.tnext
		m.pc = aCheckMark
		return ev

	case aReadVal:
		m.tval = h.Val(m.curr)
		ev := m.export(Event{Op: m.op, Kind: EvReadVal, Node: m.curr, Val: m.tval})
		if m.tval < v {
			m.prev = m.curr
			m.pc = aReadNext
			return ev
		}
		switch m.spec.Kind {
		case OpContains:
			m.pc = aContainsCheck
		case OpInsert:
			if m.tval == v {
				m.complete(false)
			} else {
				m.pc = aInsNew
			}
		case OpRemove:
			if m.tval != v {
				m.complete(false)
			} else {
				m.pc = aRemReadNext
			}
		}
		return ev

	case aContainsCheck: // wait-free contains: check landing node's mark
		m.retval = m.tval == v && !h.Deleted(m.curr)
		m.pc = aReturn
		return nil

	// --- insert path ---
	case aInsNew:
		if m.freeRun {
			// Reuse one node across attempts (see the VBL machine).
			if m.created == None {
				m.created = h.NewNode(v, m.curr)
			} else {
				h.SetNext(m.created, m.curr)
			}
			m.pc = aInsCAS
			return nil
		}
		if m.final {
			m.created = h.NewNode(v, m.curr)
			m.pc = aInsCAS
			return &Event{Op: m.op, Kind: EvNewNode, Node: m.created, Val: v, Target: m.curr}
		}
		m.created = None
		m.pc = aInsCAS
		return nil

	case aInsCAS:
		// CAS(prev.next: curr -> new), prev unmarked expected.
		if h.Deleted(m.prev) || h.Next(m.prev) != m.curr {
			m.restart()
			return nil
		}
		if !m.freeRun && !m.final {
			// The CAS would have succeeded — wrong non-final guess.
			m.pc = aPoisoned
			return nil
		}
		h.SetNext(m.prev, m.created)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.created}
		m.retval = true
		m.pc = aReturn
		return &ev

	// --- remove path ---
	case aRemReadNext: // succ <- read(curr.next)
		m.tnext = h.Next(m.curr)
		m.pc = aRemMarkCAS
		return m.export(Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext})

	case aRemMarkCAS:
		// Logical deletion: CAS(curr.(next,mark): (succ,false) -> (succ,true)).
		if h.Deleted(m.curr) || h.Next(m.curr) != m.tnext {
			m.restart()
			return nil
		}
		if !m.freeRun && !m.final {
			m.pc = aPoisoned
			return nil
		}
		h.SetDeleted(m.curr)
		m.pc = aRemUnlinkTry
		// Successful logical deletions are schedule events.
		return &Event{Op: m.op, Kind: EvMark, Node: m.curr}

	case aRemUnlinkTry:
		// Best-effort physical unlink: CAS(prev.next: curr -> succ).
		// Success or failure, it is not part of the schedule — the
		// adjusted model delegates physical removal to traversals.
		if !h.Deleted(m.prev) && h.Next(m.prev) == m.curr {
			h.SetNext(m.prev, m.tnext)
		}
		m.retval = true
		m.pc = aReturn
		return nil

	case aReturn:
		return m.emitReturn()

	default:
		panic("schedule: harris machine stepped in invalid state")
	}
}
