package schedule

// Acceptance machines for the two pedagogical baselines, extending the
// paper's analysis downward: the coarse-grained list (one global lock)
// and the hand-over-hand locking list. Neither ever restarts — every
// operation is its own final attempt — so all their steps are exported;
// their (lack of) concurrency shows up purely through lock-induced
// scheduling constraints:
//
//   - coarse: the global lock is modelled as the head node's lock held
//     for the whole operation, so accepted schedules are exactly the
//     block-sequential ones;
//   - hand-over-hand: the traversal holds a sliding pair of node locks,
//     admitting pipelined traversals but nothing out of order.
//
// Together with Lazy, Harris-Michael and VBL this yields the
// concurrency hierarchy reported by cmd/schedcheck -enumerate:
// coarse < hand-over-hand < lazy < vbl = all correct schedules.

// Additional algorithm identifiers (see Algorithm in machines.go).
const (
	// AlgCoarse is the global-mutex list (standard model).
	AlgCoarse Algorithm = 100 + iota
	// AlgHOH is the hand-over-hand locking list (standard model).
	AlgHOH
)

// Extra program counters for the coarse/hoh machines.
const (
	cAcquireGlobal = 1000 + iota // coarse: take the global lock
	hLockFirst                   // hoh: lock the starting node
	hLockCurr                    // hoh: lock curr before examining it
	hAdvanceUnlock               // hoh: release prev after moving on
)

// coarseMachine runs the sequential operation under one global lock
// (the head node's lock stands in for the global mutex).
type coarseMachine struct {
	algBase
	seq *seqMachine // the sequential op, driven under the lock
}

func newCoarseMachine(op int, spec OpSpec) *coarseMachine {
	m := &coarseMachine{algBase: newAlgBase(op, spec)}
	m.final = true
	m.finalChosen = true
	m.pc = cAcquireGlobal
	m.seq = newSeqMachine(op, spec, false)
	return m
}

func (m *coarseMachine) clone() machine {
	c := *m
	seqCopy := *m.seq
	c.seq = &seqCopy
	return &c
}

func (m *coarseMachine) needsFinalityChoice() bool { return false }

func (m *coarseMachine) enabled(h *Heap) bool {
	switch m.pc {
	case cAcquireGlobal:
		return h.LockedBy(Head) < 0
	case aDone, aPoisoned:
		return false
	default:
		return true
	}
}

func (m *coarseMachine) done() bool { return m.pc == aDone }

func (m *coarseMachine) step(h *Heap) *Event {
	switch m.pc {
	case cAcquireGlobal:
		if !h.TryLock(Head, m.op) {
			panic("schedule: coarse lock step while not enabled")
		}
		m.pc = aReadNext // marker: "inside the critical section"
		return nil
	case aDone, aPoisoned:
		panic("schedule: coarse machine stepped in terminal state")
	default:
		ev := m.seq.step(h)
		if m.seq.done() {
			m.retval = m.seq.result()
			h.Unlock(Head, m.op)
			m.pc = aDone
		}
		return ev
	}
}

// hohMachine is the hand-over-hand locking list: the traversal carries
// a sliding window of two node locks down the list.
type hohMachine struct {
	algBase
}

func newHOHMachine(op int, spec OpSpec) *hohMachine {
	m := &hohMachine{algBase: newAlgBase(op, spec)}
	m.final = true // single attempt: every step is exported
	m.finalChosen = true
	m.pc = hLockFirst
	return m
}

func (m *hohMachine) clone() machine {
	c := *m
	return &c
}

func (m *hohMachine) needsFinalityChoice() bool { return false }

func (m *hohMachine) enabled(h *Heap) bool {
	switch m.pc {
	case hLockFirst:
		return h.LockedBy(Head) < 0
	case hLockCurr:
		return h.LockedBy(m.curr) < 0
	case aDone, aPoisoned:
		return false
	default:
		return true
	}
}

func (m *hohMachine) done() bool { return m.pc == aDone }

func (m *hohMachine) step(h *Heap) *Event {
	v := m.spec.Arg
	switch m.pc {
	case hLockFirst:
		if !h.TryLock(Head, m.op) {
			panic("schedule: hoh lock step while not enabled")
		}
		m.prev = Head
		m.pc = aReadNext
		return nil

	case aReadNext: // curr <- read(prev.next), prev's lock held
		m.curr = h.Next(m.prev)
		m.pc = hLockCurr
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.prev, Target: m.curr}

	case hLockCurr:
		if !h.TryLock(m.curr, m.op) {
			panic("schedule: hoh lock step while not enabled")
		}
		m.pc = aReadVal
		return nil

	case aReadVal:
		m.tval = h.Val(m.curr)
		ev := Event{Op: m.op, Kind: EvReadVal, Node: m.curr, Val: m.tval}
		if m.tval < v {
			m.pc = hAdvanceUnlock
			return &ev
		}
		switch m.spec.Kind {
		case OpContains:
			m.retval = m.tval == v
			m.pc = aReturn
		case OpInsert:
			if m.tval == v {
				m.retval = false
				m.pc = aReturn
			} else {
				m.pc = aInsNew
			}
		case OpRemove:
			if m.tval != v {
				m.retval = false
				m.pc = aReturn
			} else {
				m.pc = aRemReadNext
			}
		}
		return &ev

	case hAdvanceUnlock: // release prev, slide the window
		h.Unlock(m.prev, m.op)
		m.prev = m.curr
		m.pc = aReadNext
		return nil

	case aInsNew:
		m.created = h.NewNode(v, m.curr)
		m.pc = aInsWrite
		return &Event{Op: m.op, Kind: EvNewNode, Node: m.created, Val: v, Target: m.curr}

	case aInsWrite:
		h.SetNext(m.prev, m.created)
		m.retval = true
		m.pc = aReturn
		return &Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.created}

	case aRemReadNext:
		m.tnext = h.Next(m.curr)
		m.pc = aRemUnlink
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext}

	case aRemUnlink:
		h.SetNext(m.prev, m.tnext)
		m.retval = true
		m.pc = aReturn
		return &Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext}

	case aReturn:
		h.Unlock(m.curr, m.op)
		h.Unlock(m.prev, m.op)
		return m.emitReturn()

	default:
		panic("schedule: hoh machine stepped in invalid state")
	}
}
